package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWadsackValidation(t *testing.T) {
	if _, err := NewWadsack(0); err == nil {
		t.Error("yield 0 should error")
	}
	if _, err := NewWadsack(1); err == nil {
		t.Error("yield 1 should error")
	}
	if _, err := NewWadsack(0.07); err != nil {
		t.Errorf("valid yield errored: %v", err)
	}
}

func TestWadsackSection7Numbers(t *testing.T) {
	// §7: "From this formula, for r = 0.01, y = 0.07, we get f = 99
	// percent and for r = 0.001, f = 99.9 percent."
	w, err := NewWadsack(0.07)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := w.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1-0.99) > 0.002 {
		t.Errorf("r=1%%: f = %v, paper says 0.99", f1)
	}
	f2, err := w.RequiredCoverage(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2-0.999) > 0.0002 {
		t.Errorf("r=0.1%%: f = %v, paper says 0.999", f2)
	}
}

func TestWadsackRejectRateForm(t *testing.T) {
	w := Wadsack{Y: 0.8}
	if !almostEq(w.RejectRate(0.5), 0.1, 1e-12) {
		t.Errorf("r = %v, want (1-0.8)(1-0.5) = 0.1", w.RejectRate(0.5))
	}
	if w.RejectRate(1) != 0 {
		t.Error("full coverage should give zero rejects")
	}
}

func TestWadsackRoundTrip(t *testing.T) {
	prop := func(ry, rr uint8) bool {
		y := 0.05 + float64(ry)/256*0.9
		r := 0.0005 + float64(rr)/256*0.05
		w := Wadsack{Y: y}
		f, err := w.RequiredCoverage(r)
		if err != nil {
			return false
		}
		if f == 0 {
			return w.RejectRate(0) <= r
		}
		return almostEq(w.RejectRate(f), r, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWadsackCoverageClamped(t *testing.T) {
	// High yield: target met trivially, coverage clamps to 0.
	w := Wadsack{Y: 0.999}
	f, err := w.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("f = %v, want 0", f)
	}
}

func TestWadsackRequiredCoverageValidation(t *testing.T) {
	w := Wadsack{Y: 0.5}
	for _, r := range []float64{0, 1, -1} {
		if _, err := w.RequiredCoverage(r); err == nil {
			t.Errorf("r=%v should error", r)
		}
	}
}

func TestCoverageSavingsSection7(t *testing.T) {
	// §7 headline: the paper's model needs ~80% where Wadsack needs
	// ~99% (r=1%), and ~95% vs ~99.9% (r=0.1%).
	m := Model{Y: 0.07, N0: 8}
	paper, wadsack, savings, err := CoverageSavings(m, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(paper-0.80) > 0.02 || math.Abs(wadsack-0.99) > 0.002 {
		t.Errorf("paper %v wadsack %v", paper, wadsack)
	}
	if savings < 0.15 {
		t.Errorf("savings %v, expected ≈0.19", savings)
	}
	paper2, wadsack2, _, err := CoverageSavings(m, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(paper2-0.95) > 0.02 || math.Abs(wadsack2-0.999) > 0.0002 {
		t.Errorf("r=0.1%%: paper %v wadsack %v", paper2, wadsack2)
	}
}

func TestWadsackAlwaysDemandsMoreCoverage(t *testing.T) {
	// For n0 well above 1 the paper's model requires less coverage than
	// Wadsack at the same (y, r): multiple faults per bad chip make bad
	// chips easier to catch. The two can cross at low n0, because
	// Wadsack's r = (1-y)(1-f) is not normalized by the passing
	// fraction y + Ybg — an exhaustive grid scan puts the crossover
	// near n0 ≈ 4.4 (at y = 0.05, r = 0.02), so the property is only
	// claimed from n0 = 5 up, the LSI regime the paper's own
	// comparison uses (n0 ≈ 8).
	prop := func(ry, rn, rr uint8) bool {
		y := 0.05 + float64(ry)/256*0.9
		n0 := 5 + float64(rn)/16
		r := 0.0005 + float64(rr)/256*0.02
		m := Model{Y: y, N0: n0}
		paper, wadsack, _, err := CoverageSavings(m, r)
		if err != nil {
			return false
		}
		return paper <= wadsack+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGriffinValidation(t *testing.T) {
	if _, err := NewGriffinMixed(0, 5); err == nil {
		t.Error("yield 0 should error")
	}
	if _, err := NewGriffinMixed(0.5, 0); err == nil {
		t.Error("theta 0 should error")
	}
	if _, err := NewGriffinMixed(0.07, 8); err != nil {
		t.Errorf("valid params errored: %v", err)
	}
}

func TestGriffinEndpoints(t *testing.T) {
	g, _ := NewGriffinMixed(0.07, 8)
	if !almostEq(g.Ybg(0), 0.93, 1e-12) {
		t.Errorf("Ybg(0) = %v, want 1-y", g.Ybg(0))
	}
	if !almostEq(g.Ybg(1), 0, 1e-12) {
		t.Errorf("Ybg(1) = %v, want 0", g.Ybg(1))
	}
}

func TestGriffinBetweenWadsackAndPaper(t *testing.T) {
	// Griffin's mixed Poisson also credits multiple faults per chip, so
	// like the paper's model it requires far less coverage than Wadsack
	// at LSI yields.
	g, _ := NewGriffinMixed(0.07, 8.8)
	w, _ := NewWadsack(0.07)
	fg, err := g.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	fw, _ := w.RequiredCoverage(0.01)
	if fg >= fw {
		t.Errorf("Griffin %v should beat Wadsack %v", fg, fw)
	}
}

func TestGriffinRoundTrip(t *testing.T) {
	g, _ := NewGriffinMixed(0.2, 6)
	f, err := g.RequiredCoverage(0.004)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g.RejectRate(f), 0.004, 1e-6) {
		t.Errorf("round trip r = %v", g.RejectRate(f))
	}
}

func TestQualityModelInterface(t *testing.T) {
	models := []QualityModel{
		Model{Y: 0.07, N0: 8},
		Wadsack{Y: 0.07},
		GriffinMixed{Y: 0.07, Theta: 8},
	}
	for i, qm := range models {
		r0 := qm.RejectRate(0)
		if !almostEq(r0, 0.93, 1e-9) {
			t.Errorf("model %d: r(0) = %v, want 0.93", i, r0)
		}
		if qm.RejectRate(1) > 1e-12 {
			t.Errorf("model %d: r(1) = %v, want 0", i, qm.RejectRate(1))
		}
	}
}
