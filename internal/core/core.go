// Package core implements the statistical model of Agrawal, Seth &
// Agrawal, "LSI Product Quality and Fault Coverage" (DAC 1981): the
// relationship between the single-stuck-at fault coverage f of a test
// set and the field reject rate r(f) of the tested product.
//
// The model has two parameters:
//
//   - Y:  the chip yield, the probability that a manufactured chip is
//     fault-free (Eq. 3 of the paper, or measured);
//   - N0: the average number of logical faults on a *defective* chip.
//     The number of faults on a defective chip is shifted-Poisson
//     distributed with mean N0 (Eq. 1).
//
// With a test set covering a fraction f of the N possible faults, the
// probability that a chip carrying n faults escapes is
// q0(n) ≈ (1-f)^n (Eq. 5, hypergeometric urn model of Eq. 4), which
// gives the closed forms
//
//	Ybg(f) = (1-f)(1-Y) e^{-(N0-1) f}                    (Eq. 7)
//	r(f)   = Ybg(f) / (Y + Ybg(f))                       (Eq. 8)
//	P(f)   = (1-Y) [1 - (1-f) e^{-(N0-1) f}]             (Eq. 9)
//	P'(0)  = (1-Y) N0 = nav                              (Eq. 10, Eq. 2)
//
// All equation numbers in the doc comments refer to the paper.
package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/numeric"
)

// Model is the paper's two-parameter quality model.
type Model struct {
	Y  float64 // yield: probability a manufactured chip is fault-free
	N0 float64 // mean number of faults on a defective chip (>= 1)
}

// New validates and constructs a Model. Yield must lie in (0, 1) —
// zero yield ships nothing and unit yield needs no testing — and N0
// must be at least 1 because a defective chip has at least one fault.
func New(y, n0 float64) (Model, error) {
	if !(y > 0 && y < 1) {
		return Model{}, fmt.Errorf("core: yield must be in (0,1), got %v", y)
	}
	if !(n0 >= 1) || math.IsInf(n0, 1) {
		return Model{}, fmt.Errorf("core: n0 must be >= 1 and finite, got %v", n0)
	}
	return Model{Y: y, N0: n0}, nil
}

// FaultCount returns the distribution of the number of faults on a
// manufactured chip (Eq. 1, both clauses: p(0)=Y and the shifted
// Poisson for n >= 1).
func (m Model) FaultCount() dist.ChipFaultCount {
	return dist.ChipFaultCount{Y: m.Y, Defective: dist.ShiftedPoisson{N0: m.N0}}
}

// Nav returns the average number of faults per manufactured chip,
// nav = (1-Y) N0 (Eq. 2).
func (m Model) Nav() float64 { return (1 - m.Y) * m.N0 }

// checkCoverage validates f in [0, 1].
func checkCoverage(f float64) error {
	if !(f >= 0 && f <= 1) {
		return fmt.Errorf("core: fault coverage must be in [0,1], got %v", f)
	}
	return nil
}

// Ybg returns the probability that a manufactured chip is bad yet
// passes tests with fault coverage f (Eq. 7):
//
//	Ybg(f) = (1-f)(1-Y) e^{-(N0-1) f}.
func (m Model) Ybg(f float64) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	return (1 - f) * (1 - m.Y) * math.Exp(-(m.N0-1)*f)
}

// RejectRate returns the field reject rate r(f) (Eq. 8): the fraction
// of chips passing the tests that are actually defective.
func (m Model) RejectRate(f float64) float64 {
	ybg := m.Ybg(f)
	return ybg / (m.Y + ybg)
}

// Fallout returns P(f) (Eq. 9): the fraction of all manufactured chips
// rejected by tests with cumulative fault coverage f.
func (m Model) Fallout(f float64) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	return (1 - m.Y) * (1 - (1-f)*math.Exp(-(m.N0-1)*f))
}

// FalloutSlope returns P'(f), the derivative of the fallout curve
// (the expression above Eq. 10):
//
//	P'(f) = (1-Y) [1 + (1-f)(N0-1)] e^{-(N0-1) f}.
func (m Model) FalloutSlope(f float64) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	return (1 - m.Y) * (1 + (1-f)*(m.N0-1)) * math.Exp(-(m.N0-1)*f)
}

// FalloutSlope0 returns P'(0) = (1-Y) N0 (Eq. 10), which equals the
// average fault count nav of Eq. 2. Measuring this slope on a
// production lot estimates N0.
func (m Model) FalloutSlope0() float64 { return m.Nav() }

// RequiredCoverage inverts Eq. 8: it returns the minimum fault coverage
// f such that the field reject rate does not exceed r. If even 100%
// coverage cannot reach r (impossible, since r(1) = 0 for Y > 0) or the
// target is met at zero coverage, the corresponding endpoint is
// returned.
func (m Model) RequiredCoverage(r float64) (float64, error) {
	if !(r > 0 && r < 1) {
		return 0, fmt.Errorf("core: target reject rate must be in (0,1), got %v", r)
	}
	if m.RejectRate(0) <= r {
		return 0, nil
	}
	// r(f) is strictly decreasing on [0,1] with r(1) = 0 < r, so a
	// bracketed root always exists.
	f, err := numeric.Brent(func(f float64) float64 { return m.RejectRate(f) - r }, 0, 1, 1e-12)
	if err != nil {
		return 0, fmt.Errorf("core: inverting reject rate: %w", err)
	}
	return numeric.Clamp(f, 0, 1), nil
}

// YieldForReject implements Eq. 11: the yield y at which tests with
// fault coverage f deliver exactly the field reject rate r, holding N0
// fixed. Figs. 2-4 of the paper plot f against this y for families of
// N0.
func (m Model) YieldForReject(r, f float64) (float64, error) {
	if !(r > 0 && r < 1) {
		return 0, fmt.Errorf("core: reject rate must be in (0,1), got %v", r)
	}
	if err := checkCoverage(f); err != nil {
		return 0, err
	}
	t := (1 - r) * (1 - f) * math.Exp(-(m.N0-1)*f)
	return t / (r + t), nil
}

// DefectLevelDPM converts a reject rate to defects per million shipped,
// the unit modern practice quotes defect level in.
func DefectLevelDPM(r float64) float64 { return r * 1e6 }
