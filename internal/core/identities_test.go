package core

import (
	"math"
	"testing"
	"testing/quick"
)

// randomModel maps two bytes to a valid model across the full regime.
func randomModel(ry, rn uint8) Model {
	return Model{
		Y:  0.02 + float64(ry)/256*0.96,
		N0: 1 + float64(rn)/8, // 1 .. ~33
	}
}

func TestIdentityFalloutPlusYbg(t *testing.T) {
	// From the definitions: a chip is either good (y), escapes (Ybg),
	// or is rejected (P): P(f) + Ybg(f) = 1 - y at every coverage.
	prop := func(ry, rn, rf uint8) bool {
		m := randomModel(ry, rn)
		f := float64(rf) / 255
		return almostEq(m.Fallout(f)+m.Ybg(f), 1-m.Y, 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityRejectRateDefinition(t *testing.T) {
	// Eq. 8 is exactly Ybg/(y + Ybg) — the fraction of passers that
	// are bad, with passers = y + Ybg.
	prop := func(ry, rn, rf uint8) bool {
		m := randomModel(ry, rn)
		f := float64(rf) / 255
		ybg := m.Ybg(f)
		return almostEq(m.RejectRate(f), ybg/(m.Y+ybg), 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityFalloutIsExpectedDetection(t *testing.T) {
	// P(f) must equal the probability that a random chip carries at
	// least one detected fault: Σ_n p(n) (1 - (1-f)^n). Connects Eq. 9
	// back to Eq. 1 + Eq. 5 without the closed-form shortcut.
	prop := func(ry, rn, rf uint8) bool {
		m := randomModel(ry, rn%120) // keep the sum short
		f := float64(rf) / 255
		fc := m.FaultCount()
		var sum float64
		for n := 1; n <= 400; n++ {
			p := fc.PMF(n)
			if p == 0 && n > int(m.N0)*4+20 {
				break
			}
			sum += p * (1 - math.Pow(1-f, float64(n)))
		}
		return almostEq(m.Fallout(f), sum, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRejectRateDecreasesWithN0(t *testing.T) {
	// At fixed yield and coverage, more faults per bad chip means bad
	// chips are caught more easily: r decreases in n0 for f > 0.
	prop := func(ry, rf uint8) bool {
		y := 0.02 + float64(ry)/256*0.96
		f := 0.05 + float64(rf)/255*0.9
		prev := math.Inf(1)
		for n0 := 1.0; n0 <= 20; n0 += 1.5 {
			r := Model{Y: y, N0: n0}.RejectRate(f)
			if r > prev+1e-15 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRequiredCoverageMonotoneInTarget(t *testing.T) {
	// A stricter quality target can never need less coverage.
	prop := func(ry, rn uint8) bool {
		m := randomModel(ry, rn)
		prev := 1.1
		for _, r := range []float64{0.0005, 0.001, 0.005, 0.01, 0.05} {
			f, err := m.RequiredCoverage(r)
			if err != nil {
				return false
			}
			if f > prev+1e-9 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFalloutSaturatesAtDefectRate(t *testing.T) {
	// P(f) can never exceed the defective fraction 1 - y.
	prop := func(ry, rn, rf uint8) bool {
		m := randomModel(ry, rn)
		f := float64(rf) / 255
		p := m.Fallout(f)
		return p >= 0 && p <= 1-m.Y+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
