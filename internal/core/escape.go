package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/numeric"
)

// EscapeApprox selects which approximation of the escape probability
// q0(n) — the probability that a chip with n faults passes a test with
// coverage f = m/N — is used. The three tiers are derived in the
// paper's Appendix.
type EscapeApprox int

const (
	// EscapeExact is the exact hypergeometric product (Eq. A.1):
	// q0(n) = Π_{i=0}^{n-1} (N-m-i)/(N-i).
	EscapeExact EscapeApprox = iota
	// EscapeCorrected is Eq. A.2: (1-f)^n exp{-f n(n-1) / [2N(1-f)]},
	// which the paper shows coincides with the exact value even for
	// large n.
	EscapeCorrected
	// EscapeSimple is Eq. A.3 (= Eq. 5): (1-f)^n, accurate when
	// n² << N(1-f)/f. This is the approximation the closed-form model
	// (Eqs. 7-9) is built on.
	EscapeSimple
)

// String names the approximation for reports.
func (e EscapeApprox) String() string {
	switch e {
	case EscapeExact:
		return "exact (A.1)"
	case EscapeCorrected:
		return "corrected (A.2)"
	case EscapeSimple:
		return "simple (A.3)"
	default:
		return fmt.Sprintf("EscapeApprox(%d)", int(e))
	}
}

// Q0 returns the escape probability q0(n) for a chip with n of N
// possible faults under a test covering m faults, using the requested
// approximation tier. It panics on invalid arguments (n or m outside
// [0, N]); the inputs come from enumeration loops, not user data.
func Q0(n, m, total int, approx EscapeApprox) float64 {
	if total <= 0 || n < 0 || n > total || m < 0 || m > total {
		panic(fmt.Sprintf("core: invalid Q0 arguments n=%d m=%d N=%d", n, m, total))
	}
	switch approx {
	case EscapeExact:
		h := dist.Hypergeometric{N: total, K: n, M: m}
		return h.PZeroExact()
	case EscapeCorrected:
		f := float64(m) / float64(total)
		if f == 1 {
			if n == 0 {
				return 1
			}
			return 0
		}
		nn := float64(n)
		corr := -f * nn * (nn - 1) / (2 * float64(total) * (1 - f))
		return math.Pow(1-f, nn) * math.Exp(corr)
	case EscapeSimple:
		f := float64(m) / float64(total)
		return math.Pow(1-f, float64(n))
	default:
		panic(fmt.Sprintf("core: unknown escape approximation %d", approx))
	}
}

// YbgSummed computes the bad-chip pass probability by the defining sum
// (Eq. 6), Ybg(f) = Σ_{n>=1} q0(n) p(n), with a selectable escape
// approximation and an explicit fault universe size N. With
// EscapeSimple and large N this converges to the closed form of Eq. 7;
// the difference quantifies the closed form's truncation error.
func (m Model) YbgSummed(f float64, total int, approx EscapeApprox) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	if total <= 0 {
		panic("core: fault universe must be positive")
	}
	covered := int(math.Round(f * float64(total)))
	pn := m.FaultCount()
	var sum numeric.KahanSum
	for n := 1; n <= total; n++ {
		p := pn.PMF(n)
		if p == 0 && n > int(m.N0)*4+20 {
			break // Poisson tail has vanished
		}
		sum.Add(Q0(n, covered, total, approx) * p)
	}
	return sum.Sum()
}

// RejectRateSummed is RejectRate computed from YbgSummed instead of the
// closed form; used to validate Eq. 8 against Eq. 6 directly.
func (m Model) RejectRateSummed(f float64, total int, approx EscapeApprox) float64 {
	ybg := m.YbgSummed(f, total, approx)
	return ybg / (m.Y + ybg)
}
