package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func mustModel(t *testing.T, y, n0 float64) Model {
	t.Helper()
	m, err := New(y, n0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		y, n0 float64
		ok    bool
	}{
		{0.5, 8, true},
		{0.07, 1, true},
		{0, 8, false},
		{1, 8, false},
		{-0.1, 8, false},
		{0.5, 0.5, false},
		{0.5, math.Inf(1), false},
	}
	for _, c := range cases {
		_, err := New(c.y, c.n0)
		if (err == nil) != c.ok {
			t.Errorf("New(%v,%v): err=%v, want ok=%v", c.y, c.n0, err, c.ok)
		}
	}
}

func TestNavEq2(t *testing.T) {
	m := mustModel(t, 0.2, 10)
	if !almostEq(m.Nav(), 8, 1e-12) {
		t.Errorf("Nav = %v, want (1-0.2)*10 = 8", m.Nav())
	}
	if m.FalloutSlope0() != m.Nav() {
		t.Error("Eq. 10: P'(0) must equal nav")
	}
}

func TestYbgClosedForm(t *testing.T) {
	// Eq. 7 spelled out for a hand case.
	m := mustModel(t, 0.8, 2)
	f := 0.5
	want := 0.5 * 0.2 * math.Exp(-0.5)
	if got := m.Ybg(f); !almostEq(got, want, 1e-12) {
		t.Errorf("Ybg(0.5) = %v, want %v", got, want)
	}
	// Endpoints: all bad chips pass at f=0; none at f=1.
	if !almostEq(m.Ybg(0), 0.2, 1e-12) {
		t.Error("Ybg(0) should equal 1-y")
	}
	if m.Ybg(1) != 0 {
		t.Error("Ybg(1) should be 0")
	}
}

func TestRejectRateEndpoints(t *testing.T) {
	m := mustModel(t, 0.07, 8)
	// r(0) = (1-y)/(y + 1-y) = 1-y: shipping untested chips rejects at
	// the defect rate.
	if !almostEq(m.RejectRate(0), 0.93, 1e-12) {
		t.Errorf("r(0) = %v, want 0.93", m.RejectRate(0))
	}
	if m.RejectRate(1) != 0 {
		t.Errorf("r(1) = %v, want 0", m.RejectRate(1))
	}
}

func TestRejectRateMonotoneDecreasing(t *testing.T) {
	prop := func(ry, rn uint8) bool {
		y := 0.02 + float64(ry)/256*0.96
		n0 := 1 + float64(rn)/16
		m := Model{Y: y, N0: n0}
		prev := m.RejectRate(0)
		for f := 0.01; f <= 1.0001; f += 0.01 {
			r := m.RejectRate(math.Min(f, 1))
			if r > prev+1e-15 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFig1SpotChecks(t *testing.T) {
	// §4 of the paper, reading Fig. 1: for a field reject rate below
	// 0.5 percent the required coverage is
	//   y=0.80: f ≈ 0.95 (n0=2) or 0.38 (n0=10)
	//   y=0.20: f ≈ 0.99 (n0=2) or 0.63 (n0=10)
	// The figures were read off a log-scale graph; tolerate ±0.02
	// (±0.01 absolute on the near-1 value).
	cases := []struct {
		y, n0, wantF, tol float64
	}{
		{0.80, 2, 0.95, 0.02},
		{0.80, 10, 0.38, 0.02},
		{0.20, 2, 0.99, 0.01},
		{0.20, 10, 0.63, 0.02},
	}
	for _, c := range cases {
		m := mustModel(t, c.y, c.n0)
		f, err := m.RequiredCoverage(0.005)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-c.wantF) > c.tol {
			t.Errorf("y=%v n0=%v: required f = %v, paper reads %v", c.y, c.n0, f, c.wantF)
		}
	}
}

func TestSection7ExampleNumbers(t *testing.T) {
	// §7: for the 25k-transistor LSI chip, y=0.07, fitted n0=8:
	// 1%% reject rate needs ~80%% coverage, 0.1%% needs ~95%%.
	m := mustModel(t, 0.07, 8)
	f1, err := m.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1-0.80) > 0.02 {
		t.Errorf("r=1%%: required f = %v, paper says ~0.80", f1)
	}
	f2, err := m.RequiredCoverage(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2-0.95) > 0.02 {
		t.Errorf("r=0.1%%: required f = %v, paper says ~0.95", f2)
	}
}

func TestFig4SpotCheck(t *testing.T) {
	// §6: "if the field reject rate was specified as one in a thousand
	// ... for yield y = 0.3 and n0 = 8, the fault coverage should be
	// about 85 percent" (Fig. 4).
	m := mustModel(t, 0.3, 8)
	f, err := m.RequiredCoverage(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.85) > 0.02 {
		t.Errorf("required f = %v, paper reads ~0.85", f)
	}
}

func TestHigherN0NeedsLessCoverage(t *testing.T) {
	// The paper's core qualitative claim: for a given yield and reject
	// target, larger n0 (more faults per defective chip) lowers the
	// required coverage.
	prop := func(ry uint8) bool {
		y := 0.05 + float64(ry)/256*0.9
		m2 := Model{Y: y, N0: 2}
		m10 := Model{Y: y, N0: 10}
		f2, err1 := m2.RequiredCoverage(0.005)
		f10, err2 := m10.RequiredCoverage(0.005)
		return err1 == nil && err2 == nil && f10 < f2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRequiredCoverageRoundTrip(t *testing.T) {
	prop := func(ry, rn, rr uint8) bool {
		y := 0.05 + float64(ry)/256*0.9
		n0 := 1 + float64(rn)/16
		r := 0.0005 + float64(rr)/256*0.05
		m := Model{Y: y, N0: n0}
		f, err := m.RequiredCoverage(r)
		if err != nil {
			return false
		}
		if f == 0 {
			return m.RejectRate(0) <= r
		}
		return almostEq(m.RejectRate(f), r, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRequiredCoverageZeroWhenTargetLoose(t *testing.T) {
	m := mustModel(t, 0.99, 2) // 99% yield: r(0) = 0.01
	f, err := m.RequiredCoverage(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("loose target should need no coverage, got %v", f)
	}
}

func TestRequiredCoverageValidation(t *testing.T) {
	m := mustModel(t, 0.5, 5)
	for _, r := range []float64{0, 1, -0.5, 1.5} {
		if _, err := m.RequiredCoverage(r); err == nil {
			t.Errorf("r=%v should error", r)
		}
	}
}

func TestYieldForRejectEq11(t *testing.T) {
	// Eq. 11 must be the exact inverse of Eq. 8: if y solves
	// YieldForReject(r, f), then Model{y, n0}.RejectRate(f) = r.
	prop := func(rn, rf, rr uint8) bool {
		n0 := 1 + float64(rn)/16
		f := float64(rf) / 256 * 0.98
		r := 0.0005 + float64(rr)/256*0.05
		m := Model{Y: 0.5, N0: n0} // Y unused by YieldForReject
		y, err := m.YieldForReject(r, f)
		if err != nil {
			return false
		}
		if y <= 0 || y >= 1 {
			// r(f) can exceed r for every yield; in that regime Eq. 11
			// still yields a valid probability.
			return y >= 0 && y <= 1
		}
		check := Model{Y: y, N0: n0}
		return almostEq(check.RejectRate(f), r, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFalloutShape(t *testing.T) {
	m := mustModel(t, 0.07, 8.8)
	if m.Fallout(0) != 0 {
		t.Error("P(0) must be 0")
	}
	if !almostEq(m.Fallout(1), 0.93, 1e-12) {
		t.Errorf("P(1) = %v, want 1-y", m.Fallout(1))
	}
	// Monotone increasing and concave for n0 > 1 in the LSI regime.
	prev := 0.0
	for f := 0.01; f <= 1.0; f += 0.01 {
		p := m.Fallout(f)
		if p < prev {
			t.Fatalf("fallout not monotone at f=%v", f)
		}
		prev = p
	}
}

func TestFalloutSlopeMatchesDerivative(t *testing.T) {
	m := mustModel(t, 0.2, 6)
	for _, f := range []float64{0.01, 0.1, 0.3, 0.6, 0.9} {
		h := 1e-6
		num := (m.Fallout(f+h) - m.Fallout(f-h)) / (2 * h)
		if got := m.FalloutSlope(f); !almostEq(got, num, 1e-4) {
			t.Errorf("slope at %v: analytic %v, numeric %v", f, got, num)
		}
	}
	// Eq. 10 at the origin.
	if !almostEq(m.FalloutSlope(0), m.Nav(), 1e-12) {
		t.Error("P'(0) != nav")
	}
}

func TestTable1SlopeArithmetic(t *testing.T) {
	// §7: P'(0) ≈ 0.41/0.05 = 8.2, and n0 = 8.2/0.93 = 8.8 (Eq. 10).
	slope := 0.41 / 0.05
	if !almostEq(slope, 8.2, 1e-12) {
		t.Fatal("slope arithmetic")
	}
	n0 := slope / (1 - 0.07)
	if math.Abs(n0-8.8) > 0.02 {
		t.Errorf("n0 from slope = %v, paper says 8.8", n0)
	}
	// A model with that n0 reproduces the slope.
	m := mustModel(t, 0.07, n0)
	if !almostEq(m.FalloutSlope0(), 8.2, 1e-9) {
		t.Errorf("FalloutSlope0 = %v", m.FalloutSlope0())
	}
}

func TestDefectLevelDPM(t *testing.T) {
	if DefectLevelDPM(0.001) != 1000 {
		t.Error("0.1% should be 1000 DPM")
	}
}

func TestCoveragePanicsOutOfRange(t *testing.T) {
	m := mustModel(t, 0.5, 5)
	for _, fn := range []func(){
		func() { m.Ybg(-0.1) },
		func() { m.Fallout(1.1) },
		func() { m.FalloutSlope(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range coverage")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkRejectRate(b *testing.B) {
	m := Model{Y: 0.07, N0: 8.8}
	for i := 0; i < b.N; i++ {
		m.RejectRate(float64(i%100) / 100)
	}
}

func BenchmarkRequiredCoverage(b *testing.B) {
	m := Model{Y: 0.07, N0: 8.8}
	for i := 0; i < b.N; i++ {
		if _, err := m.RequiredCoverage(0.001); err != nil {
			b.Fatal(err)
		}
	}
}
