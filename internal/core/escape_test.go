package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQ0ExactMatchesHypergeometricDefinition(t *testing.T) {
	// A.1 product form vs explicit binomial-coefficient ratio for a
	// small case: N=10, m=4, n=3:
	// q0 = C(6,3)... the draw analogy: (6/10)(5/9)(4/8) with n=3 draws
	// of the fault sites. Product over i: (N-m-i)/(N-i) = 6/10*5/9*4/8.
	want := 6.0 / 10 * 5.0 / 9 * 4.0 / 8
	if got := Q0(3, 4, 10, EscapeExact); !almostEq(got, want, 1e-12) {
		t.Errorf("Q0 exact = %v, want %v", got, want)
	}
}

func TestQ0Endpoints(t *testing.T) {
	for _, ap := range []EscapeApprox{EscapeExact, EscapeCorrected, EscapeSimple} {
		if got := Q0(0, 500, 1000, ap); got != 1 {
			t.Errorf("%v: zero faults must always escape, got %v", ap, got)
		}
		if got := Q0(5, 1000, 1000, ap); got != 0 {
			t.Errorf("%v: full coverage must never escape, got %v", ap, got)
		}
		if got := Q0(5, 0, 1000, ap); got != 1 {
			t.Errorf("%v: zero coverage must always escape, got %v", ap, got)
		}
	}
}

func TestQ0ApproximationAccuracy(t *testing.T) {
	// Fig. 6 of the paper (N=1000): for n <= 4 all three forms agree;
	// A.2 coincides with A.1 even for larger n; A.3's error is "small
	// but can be noticed".
	const N = 1000
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := int(f * N)
		for _, n := range []int{1, 2, 4} {
			exact := Q0(n, m, N, EscapeExact)
			for _, ap := range []EscapeApprox{EscapeCorrected, EscapeSimple} {
				got := Q0(n, m, N, ap)
				if !almostEq(got, exact, 0.01) {
					t.Errorf("n=%d f=%v %v: %v vs exact %v", n, f, ap, got, exact)
				}
			}
		}
		// Larger n: A.2 coincides with A.1 throughout the range Fig. 6
		// plots (q0 >= 1e-6); A.3 overestimates escape there.
		for _, n := range []int{16, 32} {
			exact := Q0(n, m, N, EscapeExact)
			if exact < 1e-6 {
				continue // below the floor of Fig. 6's log axis
			}
			corrected := Q0(n, m, N, EscapeCorrected)
			if rel := math.Abs(corrected-exact) / exact; rel > 0.02 {
				t.Errorf("A.2 relative error %v at n=%d f=%v", rel, n, f)
			}
			simple := Q0(n, m, N, EscapeSimple)
			if simple < exact {
				t.Errorf("A.3 should overestimate escape (underestimate detection) at n=%d f=%v: %v < %v",
					n, f, simple, exact)
			}
		}
	}
}

func TestQ0OrderingProperty(t *testing.T) {
	// Without replacement detects more than with replacement, so the
	// exact escape probability is never above the simple approximation:
	// q0_exact <= (1-f)^n. A.2's correction factor is <= 1 and sits
	// between them.
	prop := func(rn, rm uint8) bool {
		const N = 500
		n := int(rn%30) + 1
		m := int(float64(rm) / 256 * N)
		exact := Q0(n, m, N, EscapeExact)
		corrected := Q0(n, m, N, EscapeCorrected)
		simple := Q0(n, m, N, EscapeSimple)
		return exact <= corrected+1e-12 && corrected <= simple+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQ0MonotoneInCoverageAndFaults(t *testing.T) {
	const N = 200
	for _, ap := range []EscapeApprox{EscapeExact, EscapeCorrected, EscapeSimple} {
		// More coverage, lower escape.
		prev := 1.0
		for m := 0; m <= N; m += 10 {
			q := Q0(3, m, N, ap)
			if q > prev+1e-12 {
				t.Errorf("%v: escape rose with coverage at m=%d", ap, m)
			}
			prev = q
		}
		// More faults, lower escape.
		prev = 1.0
		for n := 0; n <= 20; n++ {
			q := Q0(n, 100, N, ap)
			if q > prev+1e-12 {
				t.Errorf("%v: escape rose with fault count at n=%d", ap, n)
			}
			prev = q
		}
	}
}

func TestQ0Panics(t *testing.T) {
	for _, fn := range []func(){
		func() { Q0(-1, 0, 10, EscapeExact) },
		func() { Q0(0, 11, 10, EscapeExact) },
		func() { Q0(0, 0, 0, EscapeExact) },
		func() { Q0(1, 1, 10, EscapeApprox(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEscapeApproxString(t *testing.T) {
	if EscapeExact.String() == "" || EscapeCorrected.String() == "" || EscapeSimple.String() == "" {
		t.Error("empty String()")
	}
	if EscapeApprox(42).String() != "EscapeApprox(42)" {
		t.Error("unknown approx String()")
	}
}

func TestYbgSummedConvergesToClosedForm(t *testing.T) {
	// Eq. 6 with the simple escape approximation and a large fault
	// universe must agree with the closed form Eq. 7 (the infinite-sum
	// simplification the paper argues is "numerically quite accurate").
	m := Model{Y: 0.07, N0: 8.8}
	const N = 20000
	for _, f := range []float64{0, 0.1, 0.3, 0.5, 0.8, 0.95} {
		summed := m.YbgSummed(f, N, EscapeSimple)
		closed := m.Ybg(f)
		if !almostEq(summed, closed, 1e-3) {
			t.Errorf("f=%v: summed %v vs closed %v", f, summed, closed)
		}
	}
}

func TestYbgSummedExactVsSimpleSmallUniverse(t *testing.T) {
	// With a small fault universe the exact hypergeometric escape is
	// visibly below the closed form (finite-population correction) —
	// this is the error the Appendix quantifies.
	m := Model{Y: 0.2, N0: 10}
	const N = 100
	f := 0.5
	exact := m.YbgSummed(f, N, EscapeExact)
	simple := m.YbgSummed(f, N, EscapeSimple)
	if exact > simple {
		t.Errorf("exact %v should not exceed simple %v", exact, simple)
	}
	if almostEq(exact, simple, 1e-6) {
		t.Error("finite-population correction should be visible at N=100")
	}
}

func TestRejectRateSummedMatchesClosedForm(t *testing.T) {
	m := Model{Y: 0.3, N0: 5}
	const N = 20000
	for _, f := range []float64{0.2, 0.5, 0.9} {
		if got, want := m.RejectRateSummed(f, N, EscapeSimple), m.RejectRate(f); !almostEq(got, want, 1e-3) {
			t.Errorf("f=%v: summed r %v vs closed %v", f, got, want)
		}
	}
}

func TestYbgSummedPanics(t *testing.T) {
	m := Model{Y: 0.3, N0: 5}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for N=0")
			}
		}()
		m.YbgSummed(0.5, 0, EscapeSimple)
	}()
}

func BenchmarkQ0Exact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Q0(9, 650, 1000, EscapeExact)
	}
}

func BenchmarkQ0Simple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Q0(9, 650, 1000, EscapeSimple)
	}
}

func BenchmarkYbgSummedExact(b *testing.B) {
	m := Model{Y: 0.07, N0: 8.8}
	for i := 0; i < b.N; i++ {
		m.YbgSummed(0.65, 5000, EscapeExact)
	}
}
