package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Wadsack is the baseline model the paper compares against (its
// reference [5], R. L. Wadsack, "Fault Coverage in Digital Integrated
// Circuits", BSTJ 1978). It assumes in effect a single fault per
// defective chip, giving the field reject rate
//
//	r = (1 - y)(1 - f)
//
// (the form quoted in §7 of the paper). For high-yield SSI/MSI chips it
// is adequate; for low-yield LSI it demands nearly unachievable
// coverage, which is the gap the paper's model closes.
type Wadsack struct {
	Y float64 // yield in (0,1)
}

// NewWadsack validates the yield.
func NewWadsack(y float64) (Wadsack, error) {
	if !(y > 0 && y < 1) {
		return Wadsack{}, fmt.Errorf("core: Wadsack yield must be in (0,1), got %v", y)
	}
	return Wadsack{Y: y}, nil
}

// RejectRate returns r = (1-y)(1-f).
func (w Wadsack) RejectRate(f float64) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	return (1 - w.Y) * (1 - f)
}

// RequiredCoverage inverts the Wadsack reject rate: f = 1 - r/(1-y).
// If the target is met at zero coverage, zero is returned.
func (w Wadsack) RequiredCoverage(r float64) (float64, error) {
	if !(r > 0 && r < 1) {
		return 0, fmt.Errorf("core: target reject rate must be in (0,1), got %v", r)
	}
	f := 1 - r/(1-w.Y)
	return numeric.Clamp(f, 0, 1), nil
}

var _ QualityModel = Wadsack{}
var _ QualityModel = Model{}

// QualityModel is the interface shared by the paper's model and the
// Wadsack baseline: both convert a fault coverage to a field reject
// rate and invert that relation.
type QualityModel interface {
	// RejectRate returns the field reject rate at fault coverage f.
	RejectRate(f float64) float64
	// RequiredCoverage returns the minimum coverage meeting target r.
	RequiredCoverage(r float64) (float64, error)
}

// CoverageSavings reports how much coverage the paper's model saves
// over the Wadsack baseline for the same yield and target reject rate.
// Positive values mean the paper's model requires less coverage.
func CoverageSavings(m Model, r float64) (paper, wadsack, savings float64, err error) {
	w, err := NewWadsack(m.Y)
	if err != nil {
		return 0, 0, 0, err
	}
	paper, err = m.RequiredCoverage(r)
	if err != nil {
		return 0, 0, 0, err
	}
	wadsack, err = w.RequiredCoverage(r)
	if err != nil {
		return 0, 0, 0, err
	}
	return paper, wadsack, wadsack - paper, nil
}

// GriffinMixed is the mixed-Poisson defect-level model of Griffin (the
// paper's reference [15], ICCC 1980), included as a second historical
// comparator. The defective-chip fault count is Poisson with mean θ
// truncated at zero (no shift), so
//
//	Ybg(f) = (1-y) * (e^{-θ f} - e^{-θ}) / (1 - e^{-θ})
//
// which follows from averaging (1-f)^n ≈ e^{-θ f} over the zero-
// truncated Poisson weights. θ plays the role of the paper's n0 but
// without the unit shift.
type GriffinMixed struct {
	Y     float64
	Theta float64 // mean of the untruncated Poisson, > 0
}

// NewGriffinMixed validates the parameters.
func NewGriffinMixed(y, theta float64) (GriffinMixed, error) {
	if !(y > 0 && y < 1) {
		return GriffinMixed{}, fmt.Errorf("core: Griffin yield must be in (0,1), got %v", y)
	}
	if !(theta > 0) {
		return GriffinMixed{}, fmt.Errorf("core: Griffin theta must be > 0, got %v", theta)
	}
	return GriffinMixed{Y: y, Theta: theta}, nil
}

// Ybg returns the bad-chip pass probability.
func (g GriffinMixed) Ybg(f float64) float64 {
	if err := checkCoverage(f); err != nil {
		panic(err)
	}
	den := 1 - math.Exp(-g.Theta)
	num := math.Exp(-g.Theta*f) - math.Exp(-g.Theta)
	// Zero-truncated Poisson average of (1-f)^n with the standard
	// e^{-θf} continuous approximation; exact at f=0 (Ybg=(1-y)) and
	// f=1 (Ybg=0).
	return (1 - g.Y) * num / den
}

// RejectRate returns Ybg/(y + Ybg).
func (g GriffinMixed) RejectRate(f float64) float64 {
	ybg := g.Ybg(f)
	return ybg / (g.Y + ybg)
}

// RequiredCoverage inverts the Griffin reject rate numerically.
func (g GriffinMixed) RequiredCoverage(r float64) (float64, error) {
	if !(r > 0 && r < 1) {
		return 0, fmt.Errorf("core: target reject rate must be in (0,1), got %v", r)
	}
	if g.RejectRate(0) <= r {
		return 0, nil
	}
	f, err := numeric.Brent(func(f float64) float64 { return g.RejectRate(f) - r }, 0, 1, 1e-12)
	if err != nil {
		return 0, err
	}
	return numeric.Clamp(f, 0, 1), nil
}

var _ QualityModel = GriffinMixed{}
