// Package diagnose implements fault-dictionary diagnosis, the LAMP-era
// companion workflow to fault simulation: pre-compute every fault's
// full tester response (which outputs fail on which patterns), then
// locate a failing chip's defect by matching its observed syndrome
// against the dictionary. The paper's experiment records only the
// first failing pattern; the dictionary shows how much more the same
// tester run can reveal.
package diagnose

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Syndrome is a chip's observed failure signature: for each pattern,
// a bitmask of failing outputs (bit o set = output o mismatched).
// A passing pattern has mask 0.
type Syndrome []uint64

// Fails reports whether any pattern failed.
func (s Syndrome) Fails() bool {
	for _, m := range s {
		if m != 0 {
			return true
		}
	}
	return false
}

// FirstFail returns the first failing pattern index, or -1.
func (s Syndrome) FirstFail() int {
	for i, m := range s {
		if m != 0 {
			return i
		}
	}
	return -1
}

// distance returns the Hamming-like distance between syndromes: the
// number of (pattern, output) cells where they disagree.
func distance(a, b Syndrome) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		d += popcount(a[i] ^ b[i])
	}
	for i := n; i < len(a); i++ {
		d += popcount(a[i])
	}
	for i := n; i < len(b); i++ {
		d += popcount(b[i])
	}
	return d
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Dictionary holds the precomputed response of every modelled fault.
type Dictionary struct {
	c         *netlist.Circuit
	patterns  []logicsim.Pattern
	faults    []fault.Fault
	syndromes []Syndrome
}

// Build fault-simulates every fault against the ordered pattern set
// and stores full response signatures. Cost is one faulty-machine
// simulation per fault (64 patterns per pass), so it is run once per
// test program release.
func Build(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) (*Dictionary, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("diagnose: no patterns")
	}
	if len(c.Outputs) > 64 {
		return nil, fmt.Errorf("diagnose: more than 64 outputs (%d) does not fit the syndrome mask", len(c.Outputs))
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	d := &Dictionary{c: c, patterns: patterns, faults: faults,
		syndromes: make([]Syndrome, len(faults))}
	for i := range d.syndromes {
		d.syndromes[i] = make(Syndrome, len(patterns))
	}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return nil, err
		}
		mask := block.Mask()
		good, err := sim.Run(block)
		if err != nil {
			return nil, err
		}
		goodCopy := append([]uint64(nil), good...)
		for fi, f := range faults {
			bad, err := sim.RunWithFault(block, f.Gate, f.Pin, f.Stuck)
			if err != nil {
				return nil, err
			}
			for o := range bad {
				diff := (bad[o] ^ goodCopy[o]) & mask
				for diff != 0 {
					p := trailing(diff)
					d.syndromes[fi][base+p] |= 1 << uint(o)
					diff &= diff - 1
				}
			}
		}
	}
	return d, nil
}

func trailing(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// ObserveChip runs the tester on a chip carrying the given faults
// simultaneously and returns its syndrome — the input a real ATE's
// datalog would provide.
func (d *Dictionary) ObserveChip(inj []logicsim.Injection) (Syndrome, error) {
	sim, err := logicsim.NewSimulator(d.c)
	if err != nil {
		return nil, err
	}
	syn := make(Syndrome, len(d.patterns))
	for base := 0; base < len(d.patterns); base += 64 {
		end := base + 64
		if end > len(d.patterns) {
			end = len(d.patterns)
		}
		block, err := logicsim.PackPatterns(d.patterns[base:end])
		if err != nil {
			return nil, err
		}
		mask := block.Mask()
		good, err := sim.Run(block)
		if err != nil {
			return nil, err
		}
		goodCopy := append([]uint64(nil), good...)
		bad, err := sim.RunWithFaults(block, inj)
		if err != nil {
			return nil, err
		}
		for o := range bad {
			diff := (bad[o] ^ goodCopy[o]) & mask
			for diff != 0 {
				p := trailing(diff)
				syn[base+p] |= 1 << uint(o)
				diff &= diff - 1
			}
		}
	}
	return syn, nil
}

// Candidate is one diagnosis result.
type Candidate struct {
	Fault    fault.Fault
	Distance int // syndrome distance; 0 = exact match
}

// Diagnose ranks the modelled faults by syndrome distance to the
// observation and returns the best `limit` candidates (all exact
// matches are always included).
func (d *Dictionary) Diagnose(observed Syndrome, limit int) []Candidate {
	cands := make([]Candidate, len(d.faults))
	for i := range d.faults {
		cands[i] = Candidate{Fault: d.faults[i], Distance: distance(observed, d.syndromes[i])}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Distance != cands[b].Distance {
			return cands[a].Distance < cands[b].Distance
		}
		// Deterministic tie-break.
		fa, fb := cands[a].Fault, cands[b].Fault
		if fa.Gate != fb.Gate {
			return fa.Gate < fb.Gate
		}
		if fa.Pin != fb.Pin {
			return fa.Pin < fb.Pin
		}
		return !fa.Stuck && fb.Stuck
	})
	if limit <= 0 || limit > len(cands) {
		limit = len(cands)
	}
	// Extend past the limit to keep all exact matches.
	for limit < len(cands) && cands[limit].Distance == 0 {
		limit++
	}
	return cands[:limit]
}

// Resolution reports how well the dictionary separates faults: the
// number of syndrome-equivalence classes and the largest class size.
// Faults in one class are indistinguishable by this pattern set.
func (d *Dictionary) Resolution() (classes, largest int) {
	byKey := make(map[string][]int)
	for i, syn := range d.syndromes {
		key := syndromeKey(syn)
		byKey[key] = append(byKey[key], i)
	}
	for _, members := range byKey {
		if len(members) > largest {
			largest = len(members)
		}
	}
	return len(byKey), largest
}

// syndromeKey builds a compact string key for grouping.
func syndromeKey(s Syndrome) string {
	b := make([]byte, 0, len(s)*8)
	for _, w := range s {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>uint(8*k)))
		}
	}
	return string(b)
}
