package diagnose

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

func buildDict(t *testing.T) (*Dictionary, []fault.Fault) {
	t.Helper()
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	src, err := atpg.NewRandomSource(len(c.Inputs), 5)
	if err != nil {
		t.Fatal(err)
	}
	patterns := atpg.Take(src, 96)
	d, err := Build(c, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	return d, faults
}

func TestBuildErrors(t *testing.T) {
	c := netlist.C17()
	if _, err := Build(c, nil, nil); err == nil {
		t.Error("no patterns should error")
	}
}

func TestSyndromeHelpers(t *testing.T) {
	s := Syndrome{0, 0b101, 0}
	if !s.Fails() || s.FirstFail() != 1 {
		t.Error("syndrome helpers")
	}
	empty := Syndrome{0, 0}
	if empty.Fails() || empty.FirstFail() != -1 {
		t.Error("passing syndrome helpers")
	}
}

func TestDistance(t *testing.T) {
	a := Syndrome{0b11, 0}
	b := Syndrome{0b01, 0b1}
	if got := distance(a, b); got != 2 {
		t.Errorf("distance = %d, want 2", got)
	}
	// Length mismatch counts the overhang.
	if got := distance(Syndrome{0b1}, Syndrome{0b1, 0b11}); got != 2 {
		t.Errorf("ragged distance = %d, want 2", got)
	}
}

func TestSingleFaultExactDiagnosis(t *testing.T) {
	// A chip with exactly one modelled fault must diagnose to a
	// candidate set that contains that fault at distance 0.
	d, faults := buildDict(t)
	for fi := 0; fi < len(faults); fi += 5 {
		f := faults[fi]
		syn, err := d.ObserveChip([]logicsim.Injection{{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}})
		if err != nil {
			t.Fatal(err)
		}
		if !syn.Fails() {
			continue // undetected by this pattern set; nothing to locate
		}
		cands := d.Diagnose(syn, 5)
		found := false
		for _, cand := range cands {
			if cand.Fault == f {
				if cand.Distance != 0 {
					t.Errorf("fault %v diagnosed at distance %d", f, cand.Distance)
				}
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault %v not in top candidates", f)
		}
	}
}

func TestDiagnoseTopCandidateIsExact(t *testing.T) {
	d, faults := buildDict(t)
	f := faults[3]
	syn, err := d.ObserveChip([]logicsim.Injection{{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}})
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Diagnose(syn, 1)
	if len(cands) == 0 || cands[0].Distance != 0 {
		t.Fatalf("best candidate %+v", cands)
	}
}

func TestDoubleFaultDiagnosisNearby(t *testing.T) {
	// Multi-fault chips aren't in the single-fault dictionary, but the
	// nearest candidates should usually include one of the two injected
	// faults (the classic dictionary-diagnosis heuristic).
	d, faults := buildDict(t)
	rng := rand.New(rand.NewSource(3))
	hits, trials := 0, 0
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(len(faults))
		j := rng.Intn(len(faults))
		if i == j {
			continue
		}
		fi, fj := faults[i], faults[j]
		syn, err := d.ObserveChip([]logicsim.Injection{
			{Gate: fi.Gate, Pin: fi.Pin, Stuck: fi.Stuck},
			{Gate: fj.Gate, Pin: fj.Pin, Stuck: fj.Stuck},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !syn.Fails() {
			continue
		}
		trials++
		for _, cand := range d.Diagnose(syn, 5) {
			if cand.Fault == fi || cand.Fault == fj {
				hits++
				break
			}
		}
	}
	if trials == 0 {
		t.Fatal("no usable double-fault trials")
	}
	if float64(hits) < 0.7*float64(trials) {
		t.Errorf("double-fault diagnosis hit rate %d/%d", hits, trials)
	}
}

func TestResolution(t *testing.T) {
	d, faults := buildDict(t)
	classes, largest := d.Resolution()
	if classes < 2 || classes > len(faults) {
		t.Errorf("classes = %d", classes)
	}
	if largest < 1 {
		t.Errorf("largest = %d", largest)
	}
	// With a near-complete random set, most faults should be
	// distinguishable: classes close to the fault count.
	if float64(classes) < 0.5*float64(len(faults)) {
		t.Errorf("resolution too poor: %d classes for %d faults", classes, len(faults))
	}
}

func TestDiagnoseLimitExpansion(t *testing.T) {
	d, _ := buildDict(t)
	// Diagnosing an all-pass syndrome: every undetected fault matches
	// at distance 0 and the limit must expand to include them all.
	syn := make(Syndrome, 96)
	cands := d.Diagnose(syn, 1)
	for i := 1; i < len(cands); i++ {
		if cands[i].Distance == 0 && cands[i-1].Distance != 0 {
			t.Fatal("exact matches not contiguous at front")
		}
	}
	if len(cands) >= 1 && cands[0].Distance == 0 {
		// All leading zero-distance candidates kept.
		last := 0
		for last < len(cands) && cands[last].Distance == 0 {
			last++
		}
		if last < 1 {
			t.Error("limit expansion failed")
		}
	}
}

func BenchmarkDictionaryBuild(b *testing.B) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	src, _ := atpg.NewRandomSource(len(c.Inputs), 5)
	patterns := atpg.Take(src, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(c, faults, patterns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagnose(b *testing.B) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	src, _ := atpg.NewRandomSource(len(c.Inputs), 5)
	patterns := atpg.Take(src, 96)
	d, err := Build(c, faults, patterns)
	if err != nil {
		b.Fatal(err)
	}
	f := faults[7]
	syn, err := d.ObserveChip([]logicsim.Injection{{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Diagnose(syn, 5)
	}
}
