package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

func TestRandomSource(t *testing.T) {
	if _, err := NewRandomSource(0, 1); err == nil {
		t.Error("width 0 should error")
	}
	s, err := NewRandomSource(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	a := Take(s, 10)
	s2, _ := NewRandomSource(8, 42)
	b := Take(s2, 10)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed should reproduce")
			}
		}
	}
}

func TestLFSRSource(t *testing.T) {
	if _, err := NewLFSRSource(4, 0); err == nil {
		t.Error("zero seed should error")
	}
	if _, err := NewLFSRSource(0, 1); err == nil {
		t.Error("zero width should error")
	}
	s, err := NewLFSRSource(16, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	// The stream must be balanced-ish and not constant.
	ones, total := 0, 0
	for i := 0; i < 100; i++ {
		p := s.Next()
		for _, b := range p {
			total++
			if b {
				ones++
			}
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("LFSR bit balance %v", frac)
	}
}

func TestExhaustive(t *testing.T) {
	c := netlist.C17()
	ps, err := Exhaustive(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 32 {
		t.Errorf("c17 exhaustive = %d", len(ps))
	}
	big, err := netlist.RandomCircuit("big", 30, 40, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(big); err == nil {
		t.Error("30 inputs should refuse exhaustive")
	}
}

func TestPodemDetectsKnownFault(t *testing.T) {
	// c17, gate 10 output s-a-1: a known-testable fault. The generated
	// pattern must be confirmed by the fault simulator.
	c := netlist.C17()
	gen, err := NewPodem(c)
	if err != nil {
		t.Fatal(err)
	}
	g10, _ := c.GateByName("10")
	f := fault.Fault{Gate: g10, Pin: -1, Stuck: true}
	pattern, status := gen.Generate(f)
	if status != Detected {
		t.Fatalf("status = %v", status)
	}
	res, err := faultsim.Run(c, []fault.Fault{f}, []logicsim.Pattern{pattern}, faultsim.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetect[0] != 0 {
		t.Error("PODEM pattern does not detect its target")
	}
}

func TestPodemAllC17Faults(t *testing.T) {
	// Every collapsed c17 fault is testable; PODEM must find a test for
	// each and every test must check out in the simulator.
	c := netlist.C17()
	u := fault.BuildUniverse(c)
	gen, err := NewPodem(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range u.Collapsed {
		pattern, status := gen.Generate(cl.Rep)
		if status != Detected {
			t.Errorf("fault %v: status %v", cl.Rep.Name(c), status)
			continue
		}
		res, err := faultsim.Run(c, []fault.Fault{cl.Rep}, []logicsim.Pattern{pattern}, faultsim.Serial)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstDetect[0] != 0 {
			t.Errorf("fault %v: generated pattern misses it", cl.Rep.Name(c))
		}
	}
}

func TestPodemFindsRedundantFault(t *testing.T) {
	// Build a circuit with a classic redundancy: z = OR(AND(a, na), b)
	// where na = NOT(a). AND output s-a-0 is untestable (AND is
	// constant 0).
	c := netlist.New("redundant")
	mustAdd(t, c, "a", netlist.Input)
	mustAdd(t, c, "b", netlist.Input)
	mustAdd(t, c, "na", netlist.Not, "a")
	mustAdd(t, c, "const0", netlist.And, "a", "na")
	mustAdd(t, c, "z", netlist.Or, "const0", "b")
	if err := c.MarkOutput("z"); err != nil {
		t.Fatal(err)
	}
	gen, err := NewPodem(c)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.GateByName("const0")
	_, status := gen.Generate(fault.Fault{Gate: id, Pin: -1, Stuck: false})
	if status != Untestable {
		t.Errorf("redundant fault status = %v, want untestable", status)
	}
	// The stuck-at-1 on the same line IS testable (set b=0, observe z).
	p, status := gen.Generate(fault.Fault{Gate: id, Pin: -1, Stuck: true})
	if status != Detected {
		t.Fatalf("s-a-1 status = %v", status)
	}
	res, err := faultsim.Run(c, []fault.Fault{{Gate: id, Pin: -1, Stuck: true}},
		[]logicsim.Pattern{p}, faultsim.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetect[0] != 0 {
		t.Error("test for s-a-1 not confirmed")
	}
}

func mustAdd(t *testing.T, c *netlist.Circuit, name string, typ netlist.GateType, fanin ...string) {
	t.Helper()
	if _, err := c.AddGate(name, typ, fanin...); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAllC17(t *testing.T) {
	res, err := GenerateAll(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("c17 ATPG coverage = %v, want 1", res.Coverage)
	}
	if res.Untestable != 0 || res.Aborted != 0 {
		t.Errorf("c17 should have no untestable/aborted: %+v", res)
	}
	if len(res.Patterns) == 0 || len(res.Patterns) > res.Faults {
		t.Errorf("pattern count %d implausible", len(res.Patterns))
	}
}

func TestGenerateAllAdder(t *testing.T) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("adder ATPG coverage = %v (untestable %d aborted %d)",
			res.Coverage, res.Untestable, res.Aborted)
	}
	// Verify the claimed coverage by independent fault simulation.
	u := fault.BuildUniverse(c)
	check, err := faultsim.Run(c, fault.Reps(u.Collapsed), res.Patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if check.Coverage() != res.Coverage {
		t.Errorf("claimed %v, fault simulator says %v", res.Coverage, check.Coverage())
	}
}

func TestGenerateAllDecoder(t *testing.T) {
	// Decoders are random-resistant but fully deterministic-testable.
	c, err := netlist.Decoder(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("decoder coverage = %v", res.Coverage)
	}
}

func TestCompactPreservesCoverage(t *testing.T) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	src, _ := NewRandomSource(len(c.Inputs), 77)
	patterns := Take(src, 400)
	before, err := faultsim.Run(c, reps, patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Compact(c, reps, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) >= len(patterns)/2 {
		t.Errorf("compaction kept %d of %d patterns", len(compacted), len(patterns))
	}
	after, err := faultsim.Run(c, reps, compacted, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() != before.Coverage() {
		t.Errorf("compaction changed coverage: %v -> %v", before.Coverage(), after.Coverage())
	}
}

func TestCompactEmpty(t *testing.T) {
	got, err := Compact(netlist.C17(), nil, nil)
	if err != nil || got != nil {
		t.Error("empty compaction should be a no-op")
	}
}

func TestHybridTestsReachFullCoverage(t *testing.T) {
	// Random + PODEM cleanup should reach 100% of testable faults on a
	// decoder (random alone usually cannot, cheaply).
	c, err := netlist.Decoder(4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := HybridTests(c, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	res, err := faultsim.Run(c, fault.Reps(u.Collapsed), patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("hybrid coverage = %v", res.Coverage())
	}
}

func TestStatusString(t *testing.T) {
	if Detected.String() != "detected" || Untestable.String() != "untestable" || Aborted.String() != "aborted" {
		t.Error("status names")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status name")
	}
}

func BenchmarkPodemC17(b *testing.B) {
	c := netlist.C17()
	u := fault.BuildUniverse(c)
	gen, err := NewPodem(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := u.Collapsed[i%len(u.Collapsed)]
		gen.Generate(cl.Rep)
	}
}

func BenchmarkGenerateAllAdder8(b *testing.B) {
	c, err := netlist.RippleAdder(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateAll(c); err != nil {
			b.Fatal(err)
		}
	}
}
