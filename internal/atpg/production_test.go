package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func TestProductionPatternsStructure(t *testing.T) {
	ps, err := ProductionPatterns(8, 40, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Counting phase: pattern i encodes i in binary over the inputs.
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			want := i>>uint(j)&1 == 1
			if ps[i][j] != want {
				t.Fatalf("counting pattern %d bit %d = %v, want %v", i, j, ps[i][j], want)
			}
		}
	}
	// All patterns full width.
	for i, p := range ps {
		if len(p) != 8 {
			t.Fatalf("pattern %d width %d", i, len(p))
		}
	}
	// Walking-one block follows the counting block.
	countSteps := 16
	for i := 0; i < 8; i++ {
		p := ps[countSteps+i]
		ones := 0
		for _, b := range p {
			if b {
				ones++
			}
		}
		if ones != 1 || !p[i] {
			t.Fatalf("walking-one pattern %d malformed: %v", i, p)
		}
	}
}

func TestProductionPatternsErrors(t *testing.T) {
	if _, err := ProductionPatterns(0, 10, 10, 1); err == nil {
		t.Error("zero width should error")
	}
	if _, err := ProductionPatterns(4, -1, 10, 1); err == nil {
		t.Error("negative counts should error")
	}
}

func TestProductionTestsReachFullCoverage(t *testing.T) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := ProductionTests(c, 32, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	res, err := faultsim.Run(c, reps, patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("production tests reach %v coverage", res.Coverage())
	}
}

func TestProductionRampGentlerThanUniform(t *testing.T) {
	// The point of production order: the first strobe-granular
	// checkpoint covers less than a uniform-random opening pattern.
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	prod, err := ProductionPatterns(len(c.Inputs), 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewRandomSource(len(c.Inputs), 3)
	uni := Take(src, len(prod))
	prodRes, err := faultsim.RunSteps(c, reps, prod)
	if err != nil {
		t.Fatal(err)
	}
	uniRes, err := faultsim.RunSteps(c, reps, uni)
	if err != nil {
		t.Fatal(err)
	}
	pc := faultsim.CurveFromResult(prodRes)
	uc := faultsim.CurveFromResult(uniRes)
	if pc[0].Coverage >= uc[0].Coverage {
		t.Errorf("first production strobe %v should cover less than uniform %v",
			pc[0].Coverage, uc[0].Coverage)
	}
}

func TestCleanupTestsEmptyBase(t *testing.T) {
	c := netlist.C17()
	patterns, err := CleanupTests(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	res, err := faultsim.Run(c, reps, patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("cleanup-only coverage %v", res.Coverage())
	}
}
