package atpg

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Status reports the outcome of deterministic test generation for one
// fault.
type Status int

// PODEM outcomes.
const (
	// Detected: a test was generated.
	Detected Status = iota
	// Untestable: the search space was exhausted; the fault is
	// redundant (no test exists).
	Untestable
	// Aborted: the backtrack limit was hit before a conclusion.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Podem is a deterministic single-stuck-at test generator implementing
// the PODEM algorithm: branch-and-bound over primary-input assignments
// with a pair (good, faulty) three-valued simulation for implication.
type Podem struct {
	c     *netlist.Circuit
	order []int
	// BacktrackLimit bounds the search; 0 means the default (10000).
	BacktrackLimit int

	good []logicsim.Trit
	bad  []logicsim.Trit
	pi   []logicsim.Trit // current PI assignment
}

// NewPodem prepares a generator for the circuit.
func NewPodem(c *netlist.Circuit) (*Podem, error) {
	order, err := c.Order()
	if err != nil {
		return nil, err
	}
	return &Podem{
		c:     c,
		order: order,
		good:  make([]logicsim.Trit, len(c.Gates)),
		bad:   make([]logicsim.Trit, len(c.Gates)),
		pi:    make([]logicsim.Trit, len(c.Inputs)),
	}, nil
}

// stuckTrit converts a stuck value to a Trit.
func stuckTrit(stuck bool) logicsim.Trit {
	if stuck {
		return logicsim.T
	}
	return logicsim.F
}

// imply simulates both machines under the current PI assignment with
// fault f injected in the faulty copy.
func (p *Podem) imply(f fault.Fault) {
	for i, id := range p.c.Inputs {
		p.good[id] = p.pi[i]
		p.bad[id] = p.pi[i]
	}
	var buf [8]logicsim.Trit
	for _, id := range p.order {
		g := &p.c.Gates[id]
		if g.Type != netlist.Input {
			in := buf[:0]
			for _, fi := range g.Fanin {
				in = append(in, p.good[fi])
			}
			p.good[id] = logicsim.EvalT(g.Type, in)
			in = buf[:0]
			for pin, fi := range g.Fanin {
				v := p.bad[fi]
				if f.Pin >= 0 && f.Gate == id && pin == f.Pin {
					v = stuckTrit(f.Stuck)
				}
				in = append(in, v)
			}
			p.bad[id] = logicsim.EvalT(g.Type, in)
		}
		if f.Pin < 0 && f.Gate == id {
			p.bad[id] = stuckTrit(f.Stuck)
		}
	}
}

// effectAt reports whether gate id carries a fault effect: both copies
// binary and different.
func (p *Podem) effectAt(id int) bool {
	return p.good[id] != logicsim.X && p.bad[id] != logicsim.X && p.good[id] != p.bad[id]
}

// detected reports whether any primary output shows the effect.
func (p *Podem) detected() bool {
	for _, o := range p.c.Outputs {
		if p.effectAt(o) {
			return true
		}
	}
	return false
}

// faultLine returns the gate whose value activates the fault: the gate
// itself for a stem fault, the driver for a branch fault.
func faultLine(c *netlist.Circuit, f fault.Fault) int {
	if f.Pin < 0 {
		return f.Gate
	}
	return c.Gates[f.Gate].Fanin[f.Pin]
}

// branchActivated reports whether a branch fault's effect is present at
// its pin: the driving line is binary and differs from the stuck value.
func (p *Podem) branchActivated(f fault.Fault) bool {
	if f.Pin < 0 {
		return false
	}
	drv := p.c.Gates[f.Gate].Fanin[f.Pin]
	return p.good[drv] != logicsim.X && p.good[drv] != stuckTrit(f.Stuck)
}

// dFrontier returns gates with at least one fault-effect input and an
// output still unknown in either copy. For a branch fault, the faulted
// gate itself joins the frontier once the fault is activated, because
// the effect lives on the pin, which is invisible to gate-level values.
func (p *Podem) dFrontier(f fault.Fault) []int {
	var out []int
	for id := range p.c.Gates {
		g := &p.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		if p.good[id] != logicsim.X && p.bad[id] != logicsim.X {
			continue
		}
		if f.Gate == id && p.branchActivated(f) {
			out = append(out, id)
			continue
		}
		for _, fi := range g.Fanin {
			if p.effectAt(fi) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// xPathExists checks that some D-frontier gate reaches a primary output
// through gates whose value is still unknown in either copy.
func (p *Podem) xPathExists(frontier []int) bool {
	if len(frontier) == 0 {
		return false
	}
	isPO := make(map[int]bool, len(p.c.Outputs))
	for _, o := range p.c.Outputs {
		isPO[o] = true
	}
	seen := make([]bool, len(p.c.Gates))
	stack := append([]int(nil), frontier...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if isPO[id] {
			return true
		}
		for _, out := range p.c.Gates[id].Fanout {
			if p.good[out] == logicsim.X || p.bad[out] == logicsim.X {
				stack = append(stack, out)
			}
		}
	}
	return false
}

// controlling returns the controlling input value of a gate type and
// whether it has one.
func controlling(t netlist.GateType) (logicsim.Trit, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return logicsim.F, true
	case netlist.Or, netlist.Nor:
		return logicsim.T, true
	default:
		return logicsim.X, false
	}
}

// inverts reports whether the gate type inverts its (combined) input.
func inverts(t netlist.GateType) bool {
	switch t {
	case netlist.Nand, netlist.Nor, netlist.Not, netlist.Xnor:
		return true
	default:
		return false
	}
}

// backtrace maps an objective (gate, value) to an unassigned primary
// input and a value that tends to achieve the objective.
func (p *Podem) backtrace(id int, v logicsim.Trit) (piIndex int, value logicsim.Trit, ok bool) {
	for {
		g := &p.c.Gates[id]
		if g.Type == netlist.Input {
			for i, pid := range p.c.Inputs {
				if pid == id {
					if p.pi[i] != logicsim.X {
						return 0, logicsim.X, false // already assigned: dead objective
					}
					return i, v, true
				}
			}
			return 0, logicsim.X, false
		}
		if inverts(g.Type) {
			v = logicsim.NotT(v)
		}
		// Choose an X-valued fanin; prefer the first.
		next := -1
		for _, fi := range g.Fanin {
			if p.good[fi] == logicsim.X {
				next = fi
				break
			}
		}
		if next < 0 {
			return 0, logicsim.X, false
		}
		id = next
	}
}

// objective picks the next goal: activate the fault if not yet
// activated, otherwise advance the D-frontier.
func (p *Podem) objective(f fault.Fault) (id int, v logicsim.Trit, ok bool) {
	line := faultLine(p.c, f)
	if p.good[line] == logicsim.X {
		return line, logicsim.NotT(stuckTrit(f.Stuck)), true
	}
	frontier := p.dFrontier(f)
	for _, gid := range frontier {
		g := &p.c.Gates[gid]
		ctrl, has := controlling(g.Type)
		want := logicsim.T
		if has {
			want = logicsim.NotT(ctrl)
		}
		for _, fi := range g.Fanin {
			if p.good[fi] == logicsim.X {
				return fi, want, true
			}
		}
	}
	return 0, logicsim.X, false
}

// decision is one node of the backtracking stack.
type decision struct {
	pi      int
	value   logicsim.Trit
	flipped bool
}

// Generate attempts to produce a test pattern for fault f. Unassigned
// inputs in a successful test are filled with 0 (deterministic), which
// keeps full runs reproducible; callers wanting random fill can
// post-process the returned assignment via FillX.
func (p *Podem) Generate(f fault.Fault) (logicsim.Pattern, Status) {
	if f.Gate < 0 || f.Gate >= len(p.c.Gates) {
		return nil, Untestable
	}
	limit := p.BacktrackLimit
	if limit <= 0 {
		limit = 10000
	}
	for i := range p.pi {
		p.pi[i] = logicsim.X
	}
	var stack []decision
	backtracks := 0
	for {
		p.imply(f)
		if p.detected() {
			return p.extractPattern(), Detected
		}
		line := faultLine(p.c, f)
		failed := false
		// Activation impossible?
		if p.good[line] != logicsim.X && p.good[line] == stuckTrit(f.Stuck) {
			failed = true
		}
		// Fault activated but effect vanished and no frontier to push.
		if !failed && p.good[line] != logicsim.X {
			frontier := p.dFrontier(f)
			if !p.effectAnywhere() && !(p.branchActivated(f) && (p.good[f.Gate] == logicsim.X || p.bad[f.Gate] == logicsim.X)) {
				failed = true
			} else if !p.xPathExists(frontier) && !p.detected() {
				failed = true
			}
		}
		if !failed {
			id, v, ok := p.objective(f)
			if ok {
				if pi, val, ok2 := p.backtrace(id, v); ok2 {
					stack = append(stack, decision{pi: pi, value: val})
					p.pi[pi] = val
					continue
				}
			}
			failed = true
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return nil, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = logicsim.NotT(top.value)
				p.pi[top.pi] = top.value
				backtracks++
				if backtracks > limit {
					return nil, Aborted
				}
				break
			}
			p.pi[top.pi] = logicsim.X
			stack = stack[:len(stack)-1]
		}
	}
}

// effectAnywhere reports whether any gate carries the fault effect.
func (p *Podem) effectAnywhere() bool {
	for id := range p.c.Gates {
		if p.effectAt(id) {
			return true
		}
	}
	return false
}

// extractPattern converts the PI assignment to a concrete pattern,
// filling X with 0.
func (p *Podem) extractPattern() logicsim.Pattern {
	out := make(logicsim.Pattern, len(p.pi))
	for i, v := range p.pi {
		out[i] = v == logicsim.T
	}
	return out
}
