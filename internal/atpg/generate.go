package atpg

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// RunResult summarizes a full ATPG run.
type RunResult struct {
	Patterns   []logicsim.Pattern
	Coverage   float64 // coverage of the collapsed fault list
	Detected   int
	Untestable int
	Aborted    int
	Faults     int
}

// GenerateAll runs deterministic ATPG over the circuit's equivalence-
// collapsed fault list with fault dropping: each PODEM test is fault-
// simulated against the remaining faults so one pattern usually retires
// many faults. Random-fill is not used; the run is fully reproducible.
func GenerateAll(c *netlist.Circuit) (RunResult, error) {
	if err := c.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	gen, err := NewPodem(c)
	if err != nil {
		return RunResult{}, err
	}
	detected := make([]bool, len(reps))
	res := RunResult{Faults: len(reps)}
	for fi, f := range reps {
		if detected[fi] {
			continue
		}
		pattern, status := gen.Generate(f)
		switch status {
		case Untestable:
			res.Untestable++
			continue
		case Aborted:
			res.Aborted++
			continue
		}
		res.Patterns = append(res.Patterns, pattern)
		// Drop everything this pattern detects.
		var remaining []fault.Fault
		var remainingIdx []int
		for ri, rf := range reps {
			if !detected[ri] {
				remaining = append(remaining, rf)
				remainingIdx = append(remainingIdx, ri)
			}
		}
		sim, err := faultsim.Run(c, remaining, []logicsim.Pattern{pattern}, faultsim.PPSFP)
		if err != nil {
			return RunResult{}, err
		}
		for ri, d := range sim.FirstDetect {
			if d != faultsim.NotDetected {
				detected[remainingIdx[ri]] = true
				res.Detected++
			}
		}
		if !detected[fi] {
			// The generated pattern must detect its target; a miss means
			// the generator and simulator disagree.
			return RunResult{}, fmt.Errorf("atpg: internal inconsistency: PODEM test for %v not confirmed by fault simulation", f.Name(c))
		}
	}
	res.Coverage = float64(res.Detected) / float64(res.Faults)
	return res, nil
}

// Compact performs reverse-order compaction: patterns are fault-
// simulated in reverse order with dropping, and any pattern that
// detects no fresh fault is discarded. The compacted set preserves
// total coverage.
func Compact(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) ([]logicsim.Pattern, error) {
	return CompactEngine(c, faults, patterns, faultsim.PPSFP, faultsim.Options{})
}

// CompactEngine is Compact with an explicit fault-simulation engine and
// options (every engine returns identical first-detects, so the
// compacted set is engine-independent; only wall-clock changes).
func CompactEngine(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine faultsim.Engine, opt faultsim.Options) ([]logicsim.Pattern, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	reversed := make([]logicsim.Pattern, len(patterns))
	for i, p := range patterns {
		reversed[len(patterns)-1-i] = p
	}
	res, err := faultsim.RunOpts(c, faults, reversed, engine, opt)
	if err != nil {
		return nil, err
	}
	useful := make(map[int]bool)
	for _, d := range res.FirstDetect {
		if d != faultsim.NotDetected {
			useful[d] = true
		}
	}
	var out []logicsim.Pattern
	for i := range reversed {
		if useful[i] {
			out = append(out, reversed[i])
		}
	}
	return out, nil
}

// HybridTests produces the realistic production test order the paper
// describes: a burst of pseudo-random patterns first (cheap, catches
// the easy faults fast, giving the steep initial fallout ramp), then
// deterministic PODEM tests for the random-resistant remainder.
func HybridTests(c *netlist.Circuit, randomCount int, seed int64) ([]logicsim.Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	src, err := NewRandomSource(len(c.Inputs), seed)
	if err != nil {
		return nil, err
	}
	return CleanupTests(c, Take(src, randomCount))
}

// CleanupTests appends deterministic PODEM tests for every collapsed
// fault the base pattern sequence misses, preserving the base order.
func CleanupTests(c *netlist.Circuit, base []logicsim.Pattern) ([]logicsim.Pattern, error) {
	return CleanupTestsEngine(c, base, faultsim.PPSFP, faultsim.Options{})
}

// CleanupTestsEngine is CleanupTests with an explicit fault-simulation
// engine and options for the grading and dropping passes. The fault-
// parallel engine suits the one-pattern-many-faults dropping loop; the
// default cone-restricted PPSFP suits the long base sequence.
func CleanupTestsEngine(c *netlist.Circuit, base []logicsim.Pattern, engine faultsim.Engine, opt faultsim.Options) ([]logicsim.Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	reps := fault.Reps(fault.BuildUniverse(c).Collapsed)
	patterns, _, err := CleanupTestsBudget(c, base, reps, 0, engine, opt)
	return patterns, err
}

// Tally is the per-fault ATPG outcome accounting over one target fault
// list: how many faults the final pattern set detects, how many PODEM
// proved untestable, and how many it abandoned at the backtrack budget.
// The three buckets partition the fault list.
type Tally struct {
	Faults     int `json:"faults"`
	Detected   int `json:"detected"`
	Untestable int `json:"untestable"`
	Aborted    int `json:"aborted"`
}

// CleanupTestsBudget is the accounting core of the cleanup pass: it
// targets an explicit fault list (the caller's collapsed universe, or a
// sample of it), bounds PODEM to backtrackLimit backtracks per fault
// (0 = the generator's 10000 default), and reports the outcome tally
// instead of silently skipping untestable and aborted faults. The
// pattern set is identical to CleanupTestsEngine's when given the full
// collapsed list and a zero budget.
func CleanupTestsBudget(c *netlist.Circuit, base []logicsim.Pattern, reps []fault.Fault, backtrackLimit int, engine faultsim.Engine, opt faultsim.Options) ([]logicsim.Pattern, Tally, error) {
	if err := c.Validate(); err != nil {
		return nil, Tally{}, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	if backtrackLimit < 0 {
		return nil, Tally{}, fmt.Errorf("atpg: backtrack limit must be >= 0, got %d", backtrackLimit)
	}
	patterns := base
	tally := Tally{Faults: len(reps)}
	detected := make([]bool, len(reps))
	if len(patterns) > 0 && len(reps) > 0 {
		res, err := faultsim.RunOpts(c, reps, patterns, engine, opt)
		if err != nil {
			return nil, Tally{}, err
		}
		for fi, d := range res.FirstDetect {
			detected[fi] = d != faultsim.NotDetected
		}
	}
	gen, err := NewPodem(c)
	if err != nil {
		return nil, Tally{}, err
	}
	gen.BacktrackLimit = backtrackLimit
	// Aborts are provisional: a fault abandoned at its own budget may
	// still fall to a later fault's pattern during dropping, so the
	// abort bucket is settled only after the loop, over the faults that
	// stayed undetected. Untestable is a proof and final immediately.
	aborted := make([]bool, len(reps))
	for fi, f := range reps {
		if detected[fi] {
			continue
		}
		pattern, status := gen.Generate(f)
		if status != Detected {
			switch status {
			case Untestable:
				tally.Untestable++
			case Aborted:
				aborted[fi] = true
			}
			continue
		}
		patterns = append(patterns, pattern)
		var remaining []fault.Fault
		var idx []int
		for ri := range reps {
			if !detected[ri] {
				remaining = append(remaining, reps[ri])
				idx = append(idx, ri)
			}
		}
		one, err := faultsim.RunOpts(c, remaining, []logicsim.Pattern{pattern}, engine, opt)
		if err != nil {
			return nil, Tally{}, err
		}
		for ri, d := range one.FirstDetect {
			if d != faultsim.NotDetected {
				detected[idx[ri]] = true
			}
		}
	}
	for fi, d := range detected {
		switch {
		case d:
			tally.Detected++
		case aborted[fi]:
			tally.Aborted++
		}
	}
	return patterns, tally, nil
}
