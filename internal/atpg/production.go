package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// ProductionPatterns emits a pattern set in realistic production test
// order: bring-up patterns first (all-zeros, all-ones, walking ones and
// zeros — each exercising little logic, like the initialization
// sequence preceding the paper's first tester strobe), then random
// patterns of gradually increasing weight, and finally uniform random.
// The resulting cumulative coverage ramp rises gently at first and
// then steeply, which spreads fallout observations across the low-
// coverage region where the P(f) curves for different n0 separate.
func ProductionPatterns(width, lowWeight, uniform int, seed int64) ([]logicsim.Pattern, error) {
	if width < 1 {
		return nil, fmt.Errorf("atpg: width must be >= 1, got %d", width)
	}
	if lowWeight < 0 || uniform < 0 {
		return nil, fmt.Errorf("atpg: pattern counts must be non-negative")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []logicsim.Pattern
	// Functional bring-up: a binary counting sequence over the inputs.
	// Consecutive patterns are highly correlated and exercise only the
	// low-order logic at first, so each adds little coverage — the way
	// hand-written functional test programs behave, and the reason the
	// paper's tester saw only 5% coverage at its first strobe.
	countSteps := 2 * width
	if countSteps > 64 {
		countSteps = 64
	}
	for i := 0; i < countSteps; i++ {
		p := make(logicsim.Pattern, width)
		for j := 0; j < width && j < 63; j++ {
			p[j] = i>>uint(j)&1 == 1
		}
		out = append(out, p)
	}
	// Walking one and walking zero.
	for i := 0; i < width; i++ {
		w1 := make(logicsim.Pattern, width)
		w1[i] = true
		out = append(out, w1)
	}
	for i := 0; i < width; i++ {
		w0 := make(logicsim.Pattern, width)
		for j := range w0 {
			w0[j] = j != i
		}
		out = append(out, w0)
	}
	// Weighted random with rising activity.
	weights := []float64{0.05, 0.1, 0.2, 0.35}
	per := lowWeight / len(weights)
	for _, w := range weights {
		for k := 0; k < per; k++ {
			p := make(logicsim.Pattern, width)
			for j := range p {
				p[j] = rng.Float64() < w
			}
			out = append(out, p)
		}
	}
	// Uniform tail.
	for k := 0; k < uniform; k++ {
		p := make(logicsim.Pattern, width)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		out = append(out, p)
	}
	return out, nil
}

// ProductionTests builds the full ordered production test program for a
// circuit: ProductionPatterns bring-up and random phases followed by
// deterministic PODEM tests for whatever remains undetected.
func ProductionTests(c *netlist.Circuit, lowWeight, uniform int, seed int64) ([]logicsim.Pattern, error) {
	return ProductionTestsEngine(c, lowWeight, uniform, seed, faultsim.PPSFP, faultsim.Options{})
}

// ProductionTestsEngine is ProductionTests with an explicit fault-
// simulation engine and options for the grading and PODEM fault-
// dropping passes. The pattern set produced is engine-independent (all
// engines agree on first-detects); the engine only changes how fast it
// is built.
func ProductionTestsEngine(c *netlist.Circuit, lowWeight, uniform int, seed int64, engine faultsim.Engine, opt faultsim.Options) ([]logicsim.Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	base, err := ProductionPatterns(len(c.Inputs), lowWeight, uniform, seed)
	if err != nil {
		return nil, err
	}
	return CleanupTestsEngine(c, base, engine, opt)
}

// ProductionTestsBudget is ProductionTestsEngine with an explicit
// target fault list and a per-fault PODEM backtrack budget, returning
// the outcome tally. It is the circuits-layer staged-pipeline entry
// point: sampling hands it a subset of the collapsed universe, and the
// budget bounds the worst-case cleanup cost on LSI-scale circuits
// instead of burning the 10k-backtrack default on every hard fault.
func ProductionTestsBudget(c *netlist.Circuit, lowWeight, uniform int, seed int64, reps []fault.Fault, backtrackLimit int, engine faultsim.Engine, opt faultsim.Options) ([]logicsim.Pattern, Tally, error) {
	if err := c.Validate(); err != nil {
		return nil, Tally{}, fmt.Errorf("atpg: invalid circuit: %w", err)
	}
	base, err := ProductionPatterns(len(c.Inputs), lowWeight, uniform, seed)
	if err != nil {
		return nil, Tally{}, err
	}
	return CleanupTestsBudget(c, base, reps, backtrackLimit, engine, opt)
}
