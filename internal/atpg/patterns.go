// Package atpg generates test patterns: pseudo-random sources (uniform
// and LFSR) and a deterministic PODEM test generator with fault
// dropping, plus reverse-order compaction. Together they produce the
// ordered pattern sets whose cumulative coverage ramp drives the
// paper's lot experiment.
package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Source produces an endless stream of test patterns.
type Source interface {
	// Next returns the next pattern (width = circuit inputs).
	Next() logicsim.Pattern
}

// RandomSource draws uniform random patterns.
type RandomSource struct {
	width int
	rng   *rand.Rand
}

// NewRandomSource returns a reproducible uniform pattern source.
func NewRandomSource(width int, seed int64) (*RandomSource, error) {
	if width < 1 {
		return nil, fmt.Errorf("atpg: width must be >= 1, got %d", width)
	}
	return &RandomSource{width: width, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns a fresh uniform random pattern.
func (s *RandomSource) Next() logicsim.Pattern {
	p := make(logicsim.Pattern, s.width)
	for i := range p {
		p[i] = s.rng.Intn(2) == 1
	}
	return p
}

// LFSRSource generates patterns from a maximal-length Fibonacci LFSR,
// modelling built-in self-test pattern generators. The register is
// 32 bits wide with taps 32,22,2,1 (maximal length); each pattern takes
// `width` fresh bits.
type LFSRSource struct {
	width int
	state uint32
}

// NewLFSRSource returns an LFSR source; seed must be non-zero (an LFSR
// stuck at zero never leaves it).
func NewLFSRSource(width int, seed uint32) (*LFSRSource, error) {
	if width < 1 {
		return nil, fmt.Errorf("atpg: width must be >= 1, got %d", width)
	}
	if seed == 0 {
		return nil, fmt.Errorf("atpg: LFSR seed must be non-zero")
	}
	return &LFSRSource{width: width, state: seed}, nil
}

// step advances the LFSR one bit and returns it.
func (s *LFSRSource) step() bool {
	// Taps at positions 32, 22, 2, 1 (x^32 + x^22 + x^2 + x + 1).
	bit := (s.state ^ (s.state >> 10) ^ (s.state >> 30) ^ (s.state >> 31)) & 1
	s.state = s.state>>1 | bit<<31
	return bit == 1
}

// Next returns the next LFSR pattern.
func (s *LFSRSource) Next() logicsim.Pattern {
	p := make(logicsim.Pattern, s.width)
	for i := range p {
		p[i] = s.step()
	}
	return p
}

// Take collects n patterns from a source.
func Take(s Source, n int) []logicsim.Pattern {
	out := make([]logicsim.Pattern, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Exhaustive returns all 2^width patterns for a small circuit. It
// refuses widths above 24 to avoid surprise memory blowups.
func Exhaustive(c *netlist.Circuit) ([]logicsim.Pattern, error) {
	w := len(c.Inputs)
	if w > 24 {
		return nil, fmt.Errorf("atpg: exhaustive patterns infeasible for %d inputs", w)
	}
	n := 1 << uint(w)
	out := make([]logicsim.Pattern, n)
	for v := 0; v < n; v++ {
		p := make(logicsim.Pattern, w)
		for i := 0; i < w; i++ {
			p[i] = v>>uint(i)&1 == 1
		}
		out[v] = p
	}
	return out, nil
}
