package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// TestCleanupTestsBudgetMatchesUnbudgeted pins the compatibility
// contract: over the full collapsed list with a zero (default) budget,
// CleanupTestsBudget emits exactly CleanupTestsEngine's pattern set,
// and the tally buckets partition the fault list.
func TestCleanupTestsBudgetMatchesUnbudgeted(t *testing.T) {
	c, err := netlist.Decoder(3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ProductionPatterns(len(c.Inputs), 8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CleanupTestsEngine(c, base, faultsim.PPSFP, faultsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.BuildUniverse(c).Collapsed)
	got, tally, err := CleanupTestsBudget(c, base, reps, 0, faultsim.PPSFP, faultsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("budgeted cleanup emitted %d patterns, unbudgeted %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("pattern %d differs at bit %d", i, j)
			}
		}
	}
	if tally.Faults != len(reps) {
		t.Fatalf("tally.Faults = %d, want %d", tally.Faults, len(reps))
	}
	if sum := tally.Detected + tally.Untestable + tally.Aborted; sum != tally.Faults {
		t.Fatalf("tally buckets sum to %d, want %d (%+v)", sum, tally.Faults, tally)
	}
	if tally.Aborted != 0 {
		t.Fatalf("default budget aborted %d faults on a small circuit", tally.Aborted)
	}
}

// TestCleanupTestsBudgetAborts forces a one-backtrack budget on a
// random-pattern-resistant circuit with no base patterns: the PODEM
// pass must abandon some faults and account for every one of them.
func TestCleanupTestsBudgetAborts(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.BuildUniverse(c).Collapsed)
	_, tight, err := CleanupTestsBudget(c, nil, reps, 1, faultsim.PPSFP, faultsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Aborted == 0 {
		t.Fatalf("backtrack budget 1 aborted nothing on %s: %+v", c.Name, tight)
	}
	if sum := tight.Detected + tight.Untestable + tight.Aborted; sum != tight.Faults {
		t.Fatalf("tally buckets sum to %d, want %d (%+v)", sum, tight.Faults, tight)
	}
	_, loose, err := CleanupTestsBudget(c, nil, reps, 0, faultsim.PPSFP, faultsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Detected <= tight.Detected {
		t.Fatalf("default budget detected %d faults, tight budget %d — budget had no effect", loose.Detected, tight.Detected)
	}
	if _, _, err := CleanupTestsBudget(c, nil, reps, -1, faultsim.PPSFP, faultsim.Options{}); err == nil {
		t.Fatal("negative backtrack budget must be rejected")
	}
}
