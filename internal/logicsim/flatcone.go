package logicsim

import (
	"fmt"
	"slices"

	"repro/internal/netlist"
)

// FlatCone is the output cone of a fault site in slot space: every slot
// the site can disturb, as a sorted list of slot indices. Because slot
// order is topological, the ascending list is itself a valid evaluation
// order and the site is always first (everything else is a strict
// successor, hence a higher slot). This is the flat counterpart of
// Cone: where Cone carries gate IDs that each walk must chase through
// netlist.Gate structs, a FlatCone is consumed directly by the flat
// walks — no per-gate lookups, no level sorts.
type FlatCone struct {
	// Slots lists the cone in ascending (= topological) slot order; the
	// site's slot is Slots[0].
	Slots []int32
	// Outputs lists the indices into Circuit.Outputs (not slots) of the
	// primary outputs reachable from the site, ascending.
	Outputs []int32
	// OutPos[j] is the position within Slots of the slot driving
	// Outputs[j], so diffing needs no per-output lookup.
	OutPos []int32
	// Prog is the cone compiled to a flat instruction stream, one record
	// per slot of Slots[1:]. A 1- or 2-input gate is a fixed four-word
	// record [op, dst, a, b] (1-input gates duplicate their operand);
	// a wider gate is [op | fanin-count<<8, dst, operands...]. dst and
	// the operands are slot indices. The walk decodes the stream
	// sequentially instead of chasing the op/faninAt/fanin arrays slot
	// by slot — three data-dependent loads per gate become one
	// prefetchable stream — and the fixed shape lets one length test
	// per record stand in for four bounds checks (see coneWalk).
	Prog []int32
	// Bound is the cone's boundary: the distinct out-of-cone slots the
	// program reads (the fault cannot disturb them), in first-reference
	// order. The walk copies their good values into its shadow plane up
	// front, which is what lets its body run entirely on the shadow with
	// no membership test per operand (see coneWalk).
	Bound []int32
}

// FlatConeSet precomputes the output cone of every slot of a flat
// circuit, stored as flattened ranges over shared arrays (one
// allocation each, no per-cone slice headers). It is immutable after
// construction and safe for concurrent readers; it is cached on the
// circuit beside the Flat and the ConeSet (one simCaches bundle, one
// invalidation rule).
type FlatConeSet struct {
	f      *Flat
	coneAt []int32 // slot -> offset of its cone in slots; len = slots+1
	slots  []int32 // concatenated cone slot lists
	outAt  []int32 // slot -> offset of its outputs in outIdx/outPos
	outIdx []int32 // concatenated reachable-output index lists
	outPos []int32 // concatenated within-cone positions, aligned with outIdx
	progAt []int32 // slot -> offset of its instruction stream in prog
	prog   []int32 // concatenated cone programs (see FlatCone.Prog)
	bndAt  []int32 // slot -> offset of its boundary list in bnd
	bnd    []int32 // concatenated boundary slot lists (see FlatCone.Bound)
	// cones holds every slot's assembled FlatCone view over the arrays
	// above, so per-fault hot paths borrow a pointer (ConeOfPtr) instead
	// of copying five slice headers per lookup — and sessions need no
	// per-fault cone cache of their own, which kept showing up as
	// allocation and GC write-barrier traffic on short runs.
	cones []FlatCone
}

// NewFlatConeSet builds all slot cones of the flat circuit.
func NewFlatConeSet(f *Flat) (*FlatConeSet, error) {
	n := f.Slots()
	// Fanout in slot space, rebuilt from the fanin arrays: count, prefix
	// sums, fill.
	cnt := make([]int32, n+1)
	for _, fs := range f.fanin {
		cnt[fs+1]++
	}
	for s := 0; s < n; s++ {
		cnt[s+1] += cnt[s]
	}
	fanout := make([]int32, len(f.fanin))
	fill := make([]int32, n)
	for slot := 0; slot < n; slot++ {
		for _, fs := range f.fanin[f.faninAt[slot]:f.faninAt[slot+1]] {
			fanout[cnt[fs]+fill[fs]] = int32(slot)
			fill[fs]++
		}
	}
	// Per-slot output index (into Circuit.Outputs), -1 when the slot
	// drives no primary output.
	outOf := make([]int32, n)
	for i := range outOf {
		outOf[i] = -1
	}
	for oi, os := range f.outSlot {
		outOf[os] = int32(oi)
	}
	cs := &FlatConeSet{
		f:      f,
		coneAt: make([]int32, n+1),
		outAt:  make([]int32, n+1),
		progAt: make([]int32, n+1),
		bndAt:  make([]int32, n+1),
	}
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	// seen[slot] == site marks a slot as already part of the cone being
	// compiled — a cone member or an emitted boundary slot.
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	queue := make([]int32, 0, n)
	cone := make([]int32, 0, n)
	for site := 0; site < n; site++ {
		cone = cone[:0]
		queue = append(queue[:0], int32(site))
		mark[site] = int32(site)
		cone = append(cone, int32(site))
		for len(queue) > 0 {
			slot := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, fo := range fanout[cnt[slot]:cnt[slot+1]] {
				if mark[fo] != int32(site) {
					mark[fo] = int32(site)
					cone = append(cone, fo)
					queue = append(queue, fo)
				}
			}
		}
		// Ascending slot order is topological, so a plain integer sort
		// levelizes the cone.
		slices.Sort(cone)
		if cone[0] != int32(site) {
			return nil, fmt.Errorf("logicsim: cone of slot %d does not start at the site (cycle?)", site)
		}
		cs.coneAt[site] = int32(len(cs.slots))
		cs.slots = append(cs.slots, cone...)
		cs.outAt[site] = int32(len(cs.outIdx))
		for pos, slot := range cone {
			if oi := outOf[slot]; oi >= 0 {
				cs.outIdx = append(cs.outIdx, oi)
				cs.outPos = append(cs.outPos, int32(pos))
			}
		}
		// Keep Outputs ascending by output index (consumers rely on it to
		// find the first strobed output), carrying the positions along.
		sortOutPair(cs.outIdx[cs.outAt[site]:], cs.outPos[cs.outAt[site]:])
		// Compile the cone body to its instruction stream (see
		// FlatCone.Prog for the record shapes), collecting the boundary
		// (distinct out-of-cone fanins) on first reference. 1-input gates
		// duplicate their operand so every non-wide record is exactly
		// four words.
		for _, slot := range cone {
			seen[slot] = int32(site)
		}
		cs.progAt[site] = int32(len(cs.prog))
		cs.bndAt[site] = int32(len(cs.bnd))
		for _, slot := range cone[1:] {
			lo, hi := f.faninAt[slot], f.faninAt[slot+1]
			op := f.op[slot]
			if op <= opXnor2 {
				a := f.fanin[lo]
				b := a
				if hi-lo == 2 {
					b = f.fanin[lo+1]
				}
				cs.prog = append(cs.prog, int32(op), slot, a, b)
				if seen[a] != int32(site) {
					seen[a] = int32(site)
					cs.bnd = append(cs.bnd, a)
				}
				if seen[b] != int32(site) {
					seen[b] = int32(site)
					cs.bnd = append(cs.bnd, b)
				}
				continue
			}
			cs.prog = append(cs.prog, int32(op)|(hi-lo)<<8, slot)
			for _, fs := range f.fanin[lo:hi] {
				if seen[fs] != int32(site) {
					seen[fs] = int32(site)
					cs.bnd = append(cs.bnd, fs)
				}
				cs.prog = append(cs.prog, fs)
			}
		}
	}
	cs.coneAt[n] = int32(len(cs.slots))
	cs.outAt[n] = int32(len(cs.outIdx))
	cs.progAt[n] = int32(len(cs.prog))
	cs.bndAt[n] = int32(len(cs.bnd))
	cs.cones = make([]FlatCone, n)
	for slot := 0; slot < n; slot++ {
		cs.cones[slot] = FlatCone{
			Slots:   cs.slots[cs.coneAt[slot]:cs.coneAt[slot+1]],
			Outputs: cs.outIdx[cs.outAt[slot]:cs.outAt[slot+1]],
			OutPos:  cs.outPos[cs.outAt[slot]:cs.outAt[slot+1]],
			Prog:    cs.prog[cs.progAt[slot]:cs.progAt[slot+1]],
			Bound:   cs.bnd[cs.bndAt[slot]:cs.bndAt[slot+1]],
		}
	}
	return cs, nil
}

// sortOutPair sorts the parallel (outIdx, outPos) tails by output index
// (insertion sort: the lists are tiny — a cone rarely reaches more than
// a handful of outputs — and almost sorted already).
func sortOutPair(idx, pos []int32) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
}

// FlatConeSetFor returns the circuit's flat cone set, building it (and
// the Flat underneath, if needed) on first use and caching both on the
// circuit. Like every lazy circuit cache it is safe for concurrent
// callers but must not race with mutation.
func FlatConeSetFor(c *netlist.Circuit) (*FlatConeSet, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	sc := cachesFor(c)
	if sc.flatCones != nil {
		return sc.flatCones, nil
	}
	if sc.flat == nil {
		f, err := NewFlat(c)
		if err != nil {
			return nil, err
		}
		sc.flat = f
	}
	cs, err := NewFlatConeSet(sc.flat)
	if err != nil {
		return nil, err
	}
	sc.flatCones = cs
	return cs, nil
}

// Flat returns the compiled form the cones are expressed in.
func (cs *FlatConeSet) Flat() *Flat { return cs.f }

// ConeOf returns the output cone of the slot. Both stem faults and
// input-pin faults of a gate disturb the gate's own output first, so
// one cone serves every fault on the slot's gate. The returned slices
// alias the set's arrays; callers must not mutate them.
func (cs *FlatConeSet) ConeOf(slot int) FlatCone {
	return cs.cones[slot]
}

// ConeOfPtr is ConeOf for hot loops: it borrows the set's own FlatCone
// for the slot instead of copying five slice headers per lookup. The
// pointee is shared and immutable; callers must not mutate it.
//
//repolint:hotpath
func (cs *FlatConeSet) ConeOfPtr(slot int) *FlatCone {
	return &cs.cones[slot]
}

// Size reports the total number of (slot, cone) memberships — the same
// measure ConeSet.Size reports for the pointer cones.
func (cs *FlatConeSet) Size() int { return len(cs.slots) }

// RunCone re-simulates a single stuck-at *stem* fault on top of the
// good-machine state left in the simulator by the immediately preceding
// RunInto: only the fault's cone slots are re-evaluated (into a shadow
// plane — the good machine is never touched), and only the reachable
// primary outputs are diffed. An inactive fault — the stuck value
// equals the good value on every pattern of the block — returns
// immediately without touching the cone. The flat analogue of
// Simulator.RunWithFaultCone with pin < 0.
//
// The returned word has bit p set iff pattern p of the block produces a
// different value on some reachable output; if outDiffs is non-nil it
// must have one slot per primary output, and the entries of every
// reachable output are overwritten with that output's diff word
// (unreachable outputs are left untouched — they cannot differ). After
// the call the simulator again holds the good-machine values, so cone
// runs for many faults share one good evaluation.
//
//repolint:hotpath
func (s *FlatSim) RunCone(slot int, stuck bool, cone *FlatCone, outDiffs []uint64) (uint64, error) {
	if err := s.checkCone(slot, cone); err != nil {
		return 0, err
	}
	var v uint64
	if stuck {
		v = ^uint64(0)
	}
	return s.coneWalk(v, cone, outDiffs), nil
}

// RunConeForced is RunCone for an *input-pin* fault: input pin `pin` of
// the slot's gate is forced to the stuck value during the site's
// evaluation only (the fanout-branch semantics), and the resulting site
// value propagates through the cone. The flat analogue of
// Simulator.RunWithFaultCone with pin >= 0.
//
//repolint:hotpath
func (s *FlatSim) RunConeForced(slot, pin int, stuck bool, cone *FlatCone, outDiffs []uint64) (uint64, error) {
	if err := s.checkCone(slot, cone); err != nil {
		return 0, err
	}
	f := s.f
	if pin < 0 || int32(pin) >= f.faninAt[slot+1]-f.faninAt[slot] {
		return 0, errNoPin(slot, pin)
	}
	var stuckWord uint64
	if stuck {
		stuckWord = ^uint64(0)
	}
	return s.coneWalk(s.evalForcedPin(slot, pin, stuckWord), cone, outDiffs), nil
}

// checkCone validates the cone-walk preconditions shared by RunCone and
// RunConeForced.
//
//repolint:hotpath
func (s *FlatSim) checkCone(slot int, cone *FlatCone) error {
	if slot < 0 || slot >= len(s.f.op) {
		return errSlotRange(slot)
	}
	if len(cone.Slots) == 0 || cone.Slots[0] != int32(slot) {
		return errConeSite(slot)
	}
	if len(cone.Slots) > 1 && len(cone.Prog) == 0 {
		// A hand-assembled cone without its compiled program would walk
		// nothing and report every fault undetected.
		return errConeProg(slot)
	}
	if s.mask == 0 {
		// A real RunInto always leaves a non-zero mask; catching the
		// violated precondition beats silently reporting every fault
		// undetected.
		return errNoGoodRun()
	}
	return nil
}

// coneWalk propagates a forced site value through the cone and returns
// the diff word over the reachable outputs. v is the site's faulty
// value; cone.Slots[0] is the site. A fault the block never activates
// (faulty site value equals the good one on every valid lane) exits
// before touching the cone.
//
// The faulty values live entirely in a slot-indexed shadow plane: the
// prologue copies the cone's boundary values in, the body then reads
// and writes nothing but the shadow, decoding the compiled instruction
// stream in one linear pass — op and fanin slots arrive as one
// sequential read (hardware-prefetched) instead of three data-dependent
// loads through op/faninAt/fanin per gate, with the common 1- and
// 2-input gates evaluated inline. The good machine in s.val is never
// mutated, so there is no save/restore traffic, and no clearing between
// walks either: topological order means every in-cone slot is written
// (site in the prologue, the rest as the body reaches them) before
// anything reads it, and every out-of-cone read is covered by the
// boundary copy. Evaluating the whole cone unconditionally beats
// divergence-suppressed variants here — with activation early-exit
// culling the all-clean walks, the surviving walks diverge enough that
// per-gate dirty tracking costs more than it skips.
//
// The body consumes the stream through a shrinking slice window whose
// `len(p) > 3` loop condition proves every access of a four-word record
// in bounds: the only bounds checks left per gate are the data-indexed
// shadow accesses, which measurably matters at this loop's intensity.
//
//repolint:hotpath
func (s *FlatSim) coneWalk(v uint64, cone *FlatCone, outDiffs []uint64) uint64 {
	val := s.val
	if outDiffs != nil {
		for _, oi := range cone.Outputs {
			outDiffs[oi] = 0
		}
	}
	slots := cone.Slots
	site := slots[0]
	if (v^val[site])&s.mask == 0 {
		return 0 // fault not activated by any pattern of the block
	}
	if len(s.shadow) < len(val) {
		s.shadow = make([]uint64, len(val))
	}
	shadow := s.shadow
	shadow[site] = v
	for _, b := range cone.Bound {
		shadow[b] = val[b]
	}
	for p := cone.Prog; len(p) > 3; {
		h := p[0]
		var nv uint64
		switch uint8(h) {
		case opBuf:
			nv = shadow[p[2]]
		case opNot:
			nv = ^shadow[p[2]]
		case opAnd2:
			nv = shadow[p[2]] & shadow[p[3]]
		case opNand2:
			nv = ^(shadow[p[2]] & shadow[p[3]])
		case opOr2:
			nv = shadow[p[2]] | shadow[p[3]]
		case opNor2:
			nv = ^(shadow[p[2]] | shadow[p[3]])
		case opXor2:
			nv = shadow[p[2]] ^ shadow[p[3]]
		case opXnor2:
			nv = ^(shadow[p[2]] ^ shadow[p[3]])
		default:
			nf := int(h >> 8)
			// The shadow is indexed by slot exactly like the value
			// plane, so the shared N-ary evaluator applies unchanged.
			shadow[p[1]] = evalFlatN(uint8(h), p[2:2+nf], shadow)
			p = p[2+nf:]
			continue
		}
		shadow[p[1]] = nv
		p = p[4:]
	}
	var diff uint64
	for j, oi := range cone.Outputs {
		os := slots[cone.OutPos[j]]
		d := (shadow[os] ^ val[os]) & s.mask
		diff |= d
		if outDiffs != nil {
			outDiffs[oi] = d
		}
	}
	return diff
}

// evalForcedPin evaluates one slot with a single fanin word replaced by
// the forced word — the site evaluation of an input-pin fault. No
// staging buffer: each op family folds its fanin inline, substituting
// at the forced pin.
//
//repolint:hotpath
func (s *FlatSim) evalForcedPin(slot, pin int, forced uint64) uint64 {
	f := s.f
	val := s.val
	fanin := f.fanin[f.faninAt[slot]:f.faninAt[slot+1]]
	pick := forced
	if pin != 0 {
		pick = val[fanin[0]]
	}
	op := f.op[slot]
	switch op {
	case opBuf:
		return pick
	case opNot:
		return ^pick
	}
	v := pick
	switch op {
	case opAnd2, opNand2, opAndN, opNandN:
		for i := 1; i < len(fanin); i++ {
			w := val[fanin[i]]
			if i == pin {
				w = forced
			}
			v &= w
		}
		if op == opNand2 || op == opNandN {
			v = ^v
		}
	case opOr2, opNor2, opOrN, opNorN:
		for i := 1; i < len(fanin); i++ {
			w := val[fanin[i]]
			if i == pin {
				w = forced
			}
			v |= w
		}
		if op == opNor2 || op == opNorN {
			v = ^v
		}
	case opXor2, opXnor2, opXorN, opXnorN:
		for i := 1; i < len(fanin); i++ {
			w := val[fanin[i]]
			if i == pin {
				w = forced
			}
			v ^= w
		}
		if op == opXnor2 || op == opXnorN {
			v = ^v
		}
	}
	return v
}

// Cold-path error constructors for the annotated cone walks: the
// formatting machinery stays out of the hot functions.

func errSlotRange(slot int) error {
	return fmt.Errorf("logicsim: fault slot %d out of range", slot)
}

func errConeSite(slot int) error {
	return fmt.Errorf("logicsim: cone does not start at fault slot %d", slot)
}

func errConeProg(slot int) error {
	return fmt.Errorf("logicsim: cone of slot %d carries no compiled program (not built by ConeOf?)", slot)
}

func errNoGoodRun() error {
	return fmt.Errorf("logicsim: cone walk requires a preceding RunInto")
}

func errNoPin(slot, pin int) error {
	return fmt.Errorf("logicsim: slot %d has no pin %d", slot, pin)
}
