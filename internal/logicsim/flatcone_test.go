package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// TestFlatConeSetMatchesConeSet pins the slot cones to the gate cones:
// same membership (modulo the slot↔gate mapping), same reachable
// outputs, slots ascending with the site first.
func TestFlatConeSetMatchesConeSet(t *testing.T) {
	circuits := []*netlist.Circuit{netlist.C17()}
	for seed := int64(1); seed <= 3; seed++ {
		c, err := netlist.RandomCircuit("r", 7, 70, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	for _, c := range circuits {
		cs, err := NewConeSet(c)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFlat(c)
		if err != nil {
			t.Fatal(err)
		}
		fcs, err := NewFlatConeSet(f)
		if err != nil {
			t.Fatal(err)
		}
		if fcs.Size() != cs.Size() {
			t.Fatalf("%s: flat cone set size %d, gate cone set size %d", c.Name, fcs.Size(), cs.Size())
		}
		for gate := range c.Gates {
			slot := f.SlotOf(gate)
			fc := fcs.ConeOf(slot)
			gc := cs.Cone(gate)
			if len(fc.Slots) != len(gc.Gates) {
				t.Fatalf("%s gate %d: flat cone %d slots, gate cone %d gates", c.Name, gate, len(fc.Slots), len(gc.Gates))
			}
			if fc.Slots[0] != int32(slot) {
				t.Fatalf("%s gate %d: cone does not start at the site slot", c.Name, gate)
			}
			in := make(map[int]bool, len(gc.Gates))
			for _, g := range gc.Gates {
				in[g] = true
			}
			for i, s := range fc.Slots {
				if i > 0 && fc.Slots[i-1] >= s {
					t.Fatalf("%s gate %d: cone slots not ascending", c.Name, gate)
				}
				if !in[f.GateAt(int(s))] {
					t.Fatalf("%s gate %d: slot %d (gate %d) not in the gate cone", c.Name, gate, s, f.GateAt(int(s)))
				}
			}
			if len(fc.Outputs) != len(gc.Outputs) || len(fc.OutPos) != len(fc.Outputs) {
				t.Fatalf("%s gate %d: output lists disagree", c.Name, gate)
			}
			for j, oi := range fc.Outputs {
				if int(oi) != gc.Outputs[j] {
					t.Fatalf("%s gate %d: output %d is %d, gate cone says %d", c.Name, gate, j, oi, gc.Outputs[j])
				}
				if got := int(fc.Slots[fc.OutPos[j]]); got != f.SlotOf(c.Outputs[oi]) {
					t.Fatalf("%s gate %d: OutPos[%d] points at slot %d, output %d lives at slot %d",
						c.Name, gate, j, got, oi, f.SlotOf(c.Outputs[oi]))
				}
			}
		}
	}
}

// TestRunConeMatchesRunWithFaultCone is the core flat-cone correctness
// property: for every fault site, pin, and polarity, the flat cone walk
// must return the same diff word and per-output diffs as the pointer
// cone walk — and, transitively through cone_test.go, the full-circuit
// faulty-vs-good diff.
func TestRunConeMatchesRunWithFaultCone(t *testing.T) {
	circuits := []*netlist.Circuit{netlist.C17()}
	for seed := int64(4); seed <= 5; seed++ {
		c, err := netlist.RandomCircuit("r", 8, 80, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	for _, c := range circuits {
		sim, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewConeSet(c)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFlat(c)
		if err != nil {
			t.Fatal(err)
		}
		fcs, err := NewFlatConeSet(f)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFlatSim(f)
		block := randomBlock(t, c, 1+int(int64(len(c.Gates))%64), int64(len(c.Gates)))
		if _, err := sim.Run(block); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.RunInto(block, nil); err != nil {
			t.Fatal(err)
		}
		wantDiffs := make([]uint64, len(c.Outputs))
		gotDiffs := make([]uint64, len(c.Outputs))
		for gate, g := range c.Gates {
			slot := f.SlotOf(gate)
			cone := fcs.ConeOf(slot)
			pins := make([]int, 0, len(g.Fanin)+1)
			pins = append(pins, -1)
			for pin := range g.Fanin {
				pins = append(pins, pin)
			}
			for _, pin := range pins {
				for _, stuck := range []bool{false, true} {
					want, err := sim.RunWithFaultCone(gate, pin, stuck, cs.Cone(gate), wantDiffs)
					if err != nil {
						t.Fatal(err)
					}
					var got uint64
					if pin < 0 {
						got, err = fs.RunCone(slot, stuck, &cone, gotDiffs)
					} else {
						got, err = fs.RunConeForced(slot, pin, stuck, &cone, gotDiffs)
					}
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%s gate %d pin %d stuck %v: flat diff %x, pointer diff %x",
							c.Name, gate, pin, stuck, got, want)
					}
					for _, oi := range cone.Outputs {
						if gotDiffs[oi] != wantDiffs[oi] {
							t.Fatalf("%s gate %d pin %d stuck %v: output %d flat diff %x, pointer %x",
								c.Name, gate, pin, stuck, oi, gotDiffs[oi], wantDiffs[oi])
						}
					}
				}
			}
		}
		// After all the cone runs the flat value plane must again hold
		// the good machine.
		for slot := 0; slot < f.Slots(); slot++ {
			if fs.Value(slot)&block.Mask() != sim.Value(f.GateAt(slot))&block.Mask() {
				t.Fatalf("%s slot %d: good machine not restored after cone runs", c.Name, slot)
			}
		}
	}
}

// TestRunWithFaultIntoMatchesSimulator pins the scalar flat fault walk
// (the faultsim Serial baseline) to the pointer-walking
// Simulator.RunWithFault.
func TestRunWithFaultIntoMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		c, err := netlist.RandomCircuit("r", 6+rng.Intn(5), 40+rng.Intn(80), 3+rng.Intn(5), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFlat(c)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFlatSim(f)
		block := randomBlock(t, c, 1+rng.Intn(64), rng.Int63())
		var out []uint64
		for gate, g := range c.Gates {
			pins := make([]int, 0, len(g.Fanin)+1)
			pins = append(pins, -1)
			for pin := range g.Fanin {
				pins = append(pins, pin)
			}
			for _, pin := range pins {
				stuck := rng.Intn(2) == 1
				want, err := sim.RunWithFault(block, gate, pin, stuck)
				if err != nil {
					t.Fatal(err)
				}
				out, err = fs.RunWithFaultInto(block, f.SlotOf(gate), pin, stuck, out)
				if err != nil {
					t.Fatal(err)
				}
				mask := block.Mask()
				for o := range want {
					if want[o]&mask != out[o]&mask {
						t.Fatalf("trial %d gate %d pin %d: output %d flat %x, simulator %x",
							trial, gate, pin, o, out[o]&mask, want[o]&mask)
					}
				}
			}
		}
	}
}

// TestRunConeZeroAllocs pins the steady-state flat cone walk — the
// PPSFP inner loop — to zero allocations per fault.
func TestRunConeZeroAllocs(t *testing.T) {
	c, err := netlist.RandomCircuit("a", 10, 200, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	fcs, err := NewFlatConeSet(f)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlatSim(f)
	block, err := PackPatterns(randomPatterns(c, 64, rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.RunInto(block, nil); err != nil {
		t.Fatal(err)
	}
	outDiffs := make([]uint64, len(c.Outputs))
	// Warm once so the save/restore scratch reaches its high-water mark.
	if _, err := fs.RunCone(f.NumInputs(), true, conePtr(fcs.ConeOf(f.NumInputs())), outDiffs); err != nil {
		t.Fatal(err)
	}
	slot := 0
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := fs.RunCone(slot%f.Slots(), slot%2 == 0, conePtr(fcs.ConeOf(slot%f.Slots())), outDiffs); err != nil {
			t.Fatal(err)
		}
		slot++
	}); allocs != 0 {
		t.Errorf("FlatSim.RunCone allocates %v per run, want 0", allocs)
	}
	pinSlot := f.NumInputs() // first logic slot always has a pin 0
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := fs.RunConeForced(pinSlot, 0, true, conePtr(fcs.ConeOf(pinSlot)), nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("FlatSim.RunConeForced allocates %v per run, want 0", allocs)
	}
}

// TestFlatConeErrors exercises the cone-walk validation paths.
func TestFlatConeErrors(t *testing.T) {
	c := netlist.C17()
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	fcs, err := NewFlatConeSet(f)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlatSim(f)
	// A cone walk without a preceding good run must be rejected, not
	// silently report every fault undetected.
	if _, err := fs.RunCone(0, true, conePtr(fcs.ConeOf(0)), nil); err == nil {
		t.Error("cone walk without a preceding RunInto accepted")
	}
	block := randomBlock(t, c, 8, 1)
	if _, err := fs.RunInto(block, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.RunCone(-1, false, conePtr(fcs.ConeOf(0)), nil); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := fs.RunCone(1, false, conePtr(fcs.ConeOf(0)), nil); err == nil {
		t.Error("mismatched cone accepted")
	}
	logic := f.NumInputs()
	if _, err := fs.RunConeForced(logic, 99, false, conePtr(fcs.ConeOf(logic)), nil); err == nil {
		t.Error("bad pin accepted")
	}
	if _, err := fs.RunWithFaultInto(block, 0, 0, false, nil); err == nil {
		t.Error("pin fault on a primary input accepted")
	}
	if _, err := fs.RunWithFaultInto(block, -1, -1, false, nil); err == nil {
		t.Error("out-of-range fault slot accepted")
	}
}

// TestFlatConeSetForCachesAndInvalidates checks the third member of the
// simCaches bundle obeys the one invalidation rule: cached alongside
// the Flat and ConeSet, dropped with them on any mutation.
func TestFlatConeSetForCachesAndInvalidates(t *testing.T) {
	c := netlist.C17()
	cs1, err := FlatConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := FlatConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if cs1 != cs2 {
		t.Error("FlatConeSetFor rebuilt on second call")
	}
	// The slot cones build over (and share) the cached Flat.
	f, err := FlatFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if cs1.Flat() != f {
		t.Error("slot cones built over a different Flat than the cached one")
	}
	if _, err := c.AddGate("extra", netlist.Not, "22"); err != nil {
		t.Fatal(err)
	}
	cs3, err := FlatConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if cs3 == cs1 {
		t.Error("mutation did not invalidate the slot cones")
	}
}

// conePtr lets test call sites pass an rvalue cone by address.
func conePtr(c FlatCone) *FlatCone { return &c }
