// Package logicsim simulates combinational circuits. It provides
//
//   - a 64-way bit-parallel levelized simulator (Simulator): each uint64
//     word carries 64 independent input patterns, the standard trick the
//     fault simulator builds on;
//   - a scalar three-valued (0/1/X) simulator used by the PODEM test
//     generator's implication step;
//   - an event-driven simulator that only re-evaluates gates whose
//     inputs changed, with activity accounting;
//   - precomputed per-gate output cones (ConeSet) and cone-restricted
//     faulty re-simulation (RunWithFaultCone), the structural machinery
//     the fault simulator's fast engines are built on.
package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Pattern assigns one bit per primary input, in the circuit's input
// order.
type Pattern []bool

// PatternBlock packs up to 64 patterns: word i of the block is the
// values of input i across the patterns (bit p = pattern p's value).
type PatternBlock struct {
	Inputs []uint64 // one word per primary input
	Count  int      // number of valid patterns (1..64)
}

// PackPatterns packs up to 64 patterns into a block. All patterns must
// have the same width (the circuit's input count).
func PackPatterns(patterns []Pattern) (PatternBlock, error) {
	if len(patterns) == 0 || len(patterns) > 64 {
		return PatternBlock{}, fmt.Errorf("logicsim: block needs 1..64 patterns, got %d", len(patterns))
	}
	width := len(patterns[0])
	words := make([]uint64, width)
	for p, pat := range patterns {
		if len(pat) != width {
			return PatternBlock{}, fmt.Errorf("logicsim: pattern %d width %d != %d", p, len(pat), width)
		}
		// Branchless bit scatter: a bool is 0 or 1, so converting and
		// shifting beats a per-bit branch that mispredicts half the time
		// on random patterns (packing is a measurable slice of a short
		// fault-simulation run).
		bit := uint(p)
		for i, v := range pat {
			var b uint64
			if v {
				b = 1
			}
			words[i] |= b << bit
		}
	}
	return PatternBlock{Inputs: words, Count: len(patterns)}, nil
}

// Mask returns the valid-pattern mask of the block. Count is assumed
// valid (1..64, as PackPatterns produces); the Run entry points reject
// anything else before Mask is consulted, because a negative Count
// would shift-wrap into an all-ones mask and silently treat 64 garbage
// lanes as real patterns.
func (b PatternBlock) Mask() uint64 {
	if b.Count >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b.Count)) - 1
}

// validate rejects a block whose shape cannot have come from
// PackPatterns: wrong input count, or a Count outside 1..64 (the
// zero-value PatternBlock being the classic way to hit it).
func (b PatternBlock) validate(nIn int) error {
	if len(b.Inputs) != nIn {
		return fmt.Errorf("logicsim: block has %d inputs, circuit %d", len(b.Inputs), nIn)
	}
	if b.Count < 1 || b.Count > 64 {
		return fmt.Errorf("logicsim: block Count %d outside 1..64 (zero-value PatternBlock?)", b.Count)
	}
	return nil
}

// Simulator evaluates a circuit 64 patterns at a time. It owns a value
// array indexed by gate ID and is reused across blocks; it is not safe
// for concurrent use (create one per goroutine).
type Simulator struct {
	c      *netlist.Circuit
	order  []int
	val    []uint64
	mask   uint64      // valid-pattern mask of the last Run block
	saved  []uint64    // scratch for RunWithFaultCone save/restore
	forces *LaneForces // scratch forcing table for RunWithFaults
}

// NewSimulator prepares a simulator for the circuit, levelizing it. A
// zero-fanin logic gate is rejected here with its name — the eval hot
// loops index fanin[0] unconditionally, so a malformed netlist must
// fail at load, not panic mid-walk.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	order, err := c.Order()
	if err != nil {
		return nil, err
	}
	for id := range c.Gates {
		g := &c.Gates[id]
		if g.Type != netlist.Input && len(g.Fanin) == 0 {
			return nil, fmt.Errorf("logicsim: gate %q (%v) has no fanin and is not a primary input", g.Name, g.Type)
		}
	}
	return &Simulator{c: c, order: order, val: make([]uint64, len(c.Gates))}, nil
}

// EvalWords evaluates one gate of type t over explicit fanin words:
// the shared bit-parallel gate function, exposed for engines (like the
// fault simulator's fault-parallel one) that stage fanin words
// themselves before evaluation.
func EvalWords(t netlist.GateType, words []uint64) uint64 {
	switch t {
	case netlist.Buf:
		return words[0]
	case netlist.Not:
		return ^words[0]
	case netlist.And, netlist.Nand:
		v := words[0]
		for _, w := range words[1:] {
			v &= w
		}
		if t == netlist.Nand {
			return ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := words[0]
		for _, w := range words[1:] {
			v |= w
		}
		if t == netlist.Nor {
			return ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := words[0]
		for _, w := range words[1:] {
			v ^= w
		}
		if t == netlist.Xnor {
			return ^v
		}
		return v
	default:
		panic(fmt.Sprintf("logicsim: cannot evaluate gate type %v", t))
	}
}

// eval computes a gate's word from its fanin words. It is the hot
// inner loop of every simulator pass, so it indexes val directly
// instead of staging through EvalWords; the two switches (plus the
// 1/2-input fast path in RunWithFaultCone) must implement the same
// gate functions.
func eval(t netlist.GateType, fanin []int, val []uint64) uint64 {
	switch t {
	case netlist.Buf:
		return val[fanin[0]]
	case netlist.Not:
		return ^val[fanin[0]]
	case netlist.And, netlist.Nand:
		v := val[fanin[0]]
		for _, f := range fanin[1:] {
			v &= val[f]
		}
		if t == netlist.Nand {
			return ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := val[fanin[0]]
		for _, f := range fanin[1:] {
			v |= val[f]
		}
		if t == netlist.Nor {
			return ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := val[fanin[0]]
		for _, f := range fanin[1:] {
			v ^= val[f]
		}
		if t == netlist.Xnor {
			return ^v
		}
		return v
	default:
		panic(fmt.Sprintf("logicsim: cannot evaluate gate type %v", t))
	}
}

// Run simulates the block and returns the output words (one per
// primary output, in output order). The returned slice is freshly
// allocated; hot paths use RunInto to reuse a caller buffer.
func (s *Simulator) Run(block PatternBlock) ([]uint64, error) {
	return s.RunInto(block, nil)
}

// RunInto is Run appending the output words to out (reusing its
// capacity): with a pre-sized buffer the steady state allocates
// nothing.
func (s *Simulator) RunInto(block PatternBlock, out []uint64) ([]uint64, error) {
	if err := block.validate(len(s.c.Inputs)); err != nil {
		return nil, err
	}
	s.mask = block.Mask()
	for i, id := range s.c.Inputs {
		s.val[id] = block.Inputs[i]
	}
	for _, id := range s.order {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		s.val[id] = eval(g.Type, g.Fanin, s.val)
	}
	out = out[:0]
	for _, id := range s.c.Outputs {
		out = append(out, s.val[id])
	}
	return out, nil
}

// RunWithFault simulates the block with a single stuck-at fault
// injected. site is the gate whose *output* is faulty when pin < 0;
// otherwise the fault is on input pin `pin` of gate `site` (a fanout-
// branch fault affecting only that receiver). stuck is the stuck value.
func (s *Simulator) RunWithFault(block PatternBlock, site, pin int, stuck bool) ([]uint64, error) {
	return s.RunWithFaultInto(block, site, pin, stuck, nil)
}

// RunWithFaultInto is RunWithFault appending the output words to out
// (reusing its capacity).
func (s *Simulator) RunWithFaultInto(block PatternBlock, site, pin int, stuck bool, out []uint64) ([]uint64, error) {
	if err := block.validate(len(s.c.Inputs)); err != nil {
		return nil, err
	}
	if site < 0 || site >= len(s.c.Gates) {
		return nil, fmt.Errorf("logicsim: fault site %d out of range", site)
	}
	var stuckWord uint64
	if stuck {
		stuckWord = ^uint64(0)
	}
	for i, id := range s.c.Inputs {
		s.val[id] = block.Inputs[i]
		if id == site && pin < 0 {
			s.val[id] = stuckWord
		}
	}
	for _, id := range s.order {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		var v uint64
		if id == site && pin >= 0 {
			// Input-pin fault: evaluate with the faulty pin forced.
			if pin >= len(g.Fanin) {
				return nil, fmt.Errorf("logicsim: gate %d has no pin %d", site, pin)
			}
			v = evalWithForcedPin(g.Type, g.Fanin, s.val, pin, stuckWord)
		} else {
			v = eval(g.Type, g.Fanin, s.val)
		}
		if id == site && pin < 0 {
			v = stuckWord
		}
		s.val[id] = v
	}
	out = out[:0]
	for _, id := range s.c.Outputs {
		out = append(out, s.val[id])
	}
	return out, nil
}

// evalWithForcedPin evaluates a gate with one fanin word replaced. It
// stages the fanin words and defers to EvalWords — this path runs once
// per fault site, not per gate, so the copy is cheap and keeps the
// gate-function switch in one place.
func evalWithForcedPin(t netlist.GateType, fanin []int, val []uint64, pin int, forced uint64) uint64 {
	var stage [8]uint64
	words := stage[:0]
	if len(fanin) > len(stage) {
		words = make([]uint64, 0, len(fanin))
	}
	for i, f := range fanin {
		w := val[f]
		if i == pin {
			w = forced
		}
		words = append(words, w)
	}
	return EvalWords(t, words)
}

// RunSingle simulates one pattern and returns the output bits.
func (s *Simulator) RunSingle(p Pattern) ([]bool, error) {
	block, err := PackPatterns([]Pattern{p})
	if err != nil {
		return nil, err
	}
	words, err := s.Run(block)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(words))
	for i, w := range words {
		out[i] = w&1 == 1
	}
	return out, nil
}

// Values exposes the internal value of gate id after the last Run; used
// by the fault simulator for stem analysis.
func (s *Simulator) Value(id int) uint64 { return s.val[id] }
