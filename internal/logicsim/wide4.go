package logicsim

// The 4-word (256-lane) specialization of the wide walk. The generic
// stride loops in wide.go pay a bounds check and a loop branch per
// word; at the width the pf256 and chipparallel256 engines actually
// run, that overhead dominates the gate function itself. Converting
// each lane block to a *[4]uint64 (a plain slice-to-array-pointer
// conversion, one length check per block) lets the compiler emit
// straight-line unchecked word ops — the moral equivalent of the
// scalar walk's single-op gate evaluation, four words wide.

// block4 returns slot's lane block as a fixed-size array pointer.
func (s *WideSim) block4(slot int) *[4]uint64 {
	return (*[4]uint64)(s.val[slot*4:])
}

// evalForcedSlot4 is evalForcedSlot at words == 4.
//
//repolint:hotpath
func (s *WideSim) evalForcedSlot4(slot int, lf *WideLaneForces) {
	dst := s.block4(slot)
	if lf.forced(slot) {
		if pins := lf.pins[slot]; len(pins) > 0 {
			s.evalStaged4(slot, dst, pins)
		} else {
			s.evalSlot4(slot, dst)
		}
		cf := (*[8]uint64)(lf.stem[slot*8:]) // care words 0..3, force 4..7
		dst[0] = dst[0]&^cf[0] | cf[4]
		dst[1] = dst[1]&^cf[1] | cf[5]
		dst[2] = dst[2]&^cf[2] | cf[6]
		dst[3] = dst[3]&^cf[3] | cf[7]
		return
	}
	s.evalSlot4(slot, dst)
}

// evalSlot4 is the unforced gate evaluation at words == 4: one op
// switch, unrolled fixed-size word ops.
//
//repolint:hotpath
func (s *WideSim) evalSlot4(slot int, dst *[4]uint64) {
	f := s.f
	val, fanin := s.val, f.fanin
	lo := f.faninAt[slot]
	switch f.op[slot] {
	case opBuf:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		*dst = *a
	case opNot:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		dst[0], dst[1], dst[2], dst[3] = ^a[0], ^a[1], ^a[2], ^a[3]
	case opAnd2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
	case opNand2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
	case opOr2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
	case opNor2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
	case opXor2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
	case opXnor2:
		a := (*[4]uint64)(val[int(fanin[lo])*4:])
		b := (*[4]uint64)(val[int(fanin[lo+1])*4:])
		dst[0], dst[1], dst[2], dst[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
	default:
		s.evalWideN4(slot, dst)
	}
}

// evalStaged4 evaluates a pin-forced slot at words == 4. In a dense
// chip-parallel batch most of the circuit carries forces, so this runs
// for a large fraction of gates per walk: the ubiquitous 1- and 2-input
// shapes are evaluated inline on local copies with no staging pass, and
// only wider gates pay the generic staged path.
func (s *WideSim) evalStaged4(slot int, dst *[4]uint64, pins []widePin) {
	f := s.f
	lo, hi := f.faninAt[slot], f.faninAt[slot+1]
	op := f.op[slot]
	switch hi - lo {
	case 1:
		a := *(*[4]uint64)(s.val[int(f.fanin[lo])*4:])
		for i := range pins {
			pl := &pins[i]
			a[0] = a[0]&^pl.care[0] | pl.force[0]
			a[1] = a[1]&^pl.care[1] | pl.force[1]
			a[2] = a[2]&^pl.care[2] | pl.force[2]
			a[3] = a[3]&^pl.care[3] | pl.force[3]
		}
		if op == opNot {
			dst[0], dst[1], dst[2], dst[3] = ^a[0], ^a[1], ^a[2], ^a[3]
		} else { // opBuf: 1-fanin gates compile to buf or not only
			*dst = a
		}
	case 2:
		a := *(*[4]uint64)(s.val[int(f.fanin[lo])*4:])
		b := *(*[4]uint64)(s.val[int(f.fanin[lo+1])*4:])
		for i := range pins {
			pl := &pins[i]
			if pl.pin == 0 {
				a[0] = a[0]&^pl.care[0] | pl.force[0]
				a[1] = a[1]&^pl.care[1] | pl.force[1]
				a[2] = a[2]&^pl.care[2] | pl.force[2]
				a[3] = a[3]&^pl.care[3] | pl.force[3]
			} else {
				b[0] = b[0]&^pl.care[0] | pl.force[0]
				b[1] = b[1]&^pl.care[1] | pl.force[1]
				b[2] = b[2]&^pl.care[2] | pl.force[2]
				b[3] = b[3]&^pl.care[3] | pl.force[3]
			}
		}
		switch op {
		case opAnd2:
			dst[0], dst[1], dst[2], dst[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
		case opNand2:
			dst[0], dst[1], dst[2], dst[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
		case opOr2:
			dst[0], dst[1], dst[2], dst[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
		case opNor2:
			dst[0], dst[1], dst[2], dst[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
		case opXor2:
			dst[0], dst[1], dst[2], dst[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
		case opXnor2:
			dst[0], dst[1], dst[2], dst[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
		}
	default:
		s.evalStaged(slot, dst[:], pins)
	}
}

// evalWideN4 evaluates the wide (3+ fanin) op codes at words == 4.
func (s *WideSim) evalWideN4(slot int, dst *[4]uint64) {
	f := s.f
	val := s.val
	fanin := f.fanin[f.faninAt[slot]:f.faninAt[slot+1]]
	op := f.op[slot]
	*dst = *(*[4]uint64)(val[int(fanin[0])*4:])
	switch op {
	case opAndN, opNandN:
		for _, fs := range fanin[1:] {
			b := (*[4]uint64)(val[int(fs)*4:])
			dst[0], dst[1], dst[2], dst[3] = dst[0]&b[0], dst[1]&b[1], dst[2]&b[2], dst[3]&b[3]
		}
	case opOrN, opNorN:
		for _, fs := range fanin[1:] {
			b := (*[4]uint64)(val[int(fs)*4:])
			dst[0], dst[1], dst[2], dst[3] = dst[0]|b[0], dst[1]|b[1], dst[2]|b[2], dst[3]|b[3]
		}
	case opXorN, opXnorN:
		for _, fs := range fanin[1:] {
			b := (*[4]uint64)(val[int(fs)*4:])
			dst[0], dst[1], dst[2], dst[3] = dst[0]^b[0], dst[1]^b[1], dst[2]^b[2], dst[3]^b[3]
		}
	}
	if op == opNandN || op == opNorN || op == opXnorN {
		dst[0], dst[1], dst[2], dst[3] = ^dst[0], ^dst[1], ^dst[2], ^dst[3]
	}
}
