package logicsim_test

import (
	"fmt"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// ExamplePackPatterns shows the 64-way bit-parallel packing: each
// primary input becomes one machine word whose bit p carries pattern
// p's value, so one pass through the circuit simulates all packed
// patterns at once.
func ExamplePackPatterns() {
	patterns := []logicsim.Pattern{
		{false, false}, // pattern 0: a=0 b=0
		{true, false},  // pattern 1: a=1 b=0
		{true, true},   // pattern 2: a=1 b=1
	}
	block, err := logicsim.PackPatterns(patterns)
	if err != nil {
		panic(err)
	}
	fmt.Printf("input a word: %03b\n", block.Inputs[0])
	fmt.Printf("input b word: %03b\n", block.Inputs[1])
	fmt.Printf("valid-pattern mask: %03b\n", block.Mask())

	c := netlist.New("and2")
	mustAdd := func(name string, t netlist.GateType, fanin ...string) {
		if _, err := c.AddGate(name, t, fanin...); err != nil {
			panic(err)
		}
	}
	mustAdd("a", netlist.Input)
	mustAdd("b", netlist.Input)
	mustAdd("y", netlist.And, "a", "b")
	if err := c.MarkOutput("y"); err != nil {
		panic(err)
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		panic(err)
	}
	out, err := sim.Run(block)
	if err != nil {
		panic(err)
	}
	fmt.Printf("output y word: %03b\n", out[0]&block.Mask())
	// Output:
	// input a word: 110
	// input b word: 100
	// valid-pattern mask: 111
	// output y word: 100
}
