package logicsim

import (
	"errors"
	"fmt"
)

// The wide lane layer generalizes the 64-bit machine word to an N-word
// lane block: 64*N independent bit-lanes ride one flat circuit walk.
// The fault simulator's pf256 engine puts the good machine plus 255
// faulty machines in the lanes of a 4-word block; the ATE's
// chipparallel256 lot engine puts the good machine plus 255 defective
// chips there. Lane blocks are stored stride-packed: a slot's block is
// the W contiguous words at [slot*W, slot*W+W), lane L living in word
// L/64 bit L%64 — so the whole value plane is one contiguous []uint64
// and the walk stays a linear sweep.

// MaxLaneWords bounds the lane-block width: up to 512 lanes per walk.
// Wider blocks stop paying — the value plane falls out of cache before
// the per-gate overhead amortizes any further.
const MaxLaneWords = 8

// ErrLaneWords marks a lane-block word count outside 1..MaxLaneWords.
// Every wide-layer entry point (simulators, forcing tables, block
// packing and conversion) wraps it, so callers can errors.Is a shape
// mistake regardless of which layer caught it.
var ErrLaneWords = errors.New("lane-block word count outside range")

// validLaneWords rejects widths outside 1..MaxLaneWords.
func validLaneWords(words int) error {
	if words < 1 || words > MaxLaneWords {
		return fmt.Errorf("logicsim: lane block of %d words outside 1..%d: %w", words, MaxLaneWords, ErrLaneWords)
	}
	return nil
}

// WidePatternBlock packs up to 64*Words patterns: lane p of input i's
// block is pattern p's value of input i — the N-word generalization of
// PatternBlock. Input i's block is Inputs[i*Words : (i+1)*Words].
type WidePatternBlock struct {
	Inputs []uint64 // stride-packed lane blocks, one per primary input
	Words  int      // words per lane block (1..MaxLaneWords)
	Count  int      // number of valid patterns (1..64*Words)
}

// PackWidePatterns packs up to 64*words patterns into a wide block. All
// patterns must have the same width (the circuit's input count).
func PackWidePatterns(patterns []Pattern, words int) (WidePatternBlock, error) {
	if err := validLaneWords(words); err != nil {
		return WidePatternBlock{}, err
	}
	if max := 64 * words; len(patterns) == 0 || len(patterns) > max {
		return WidePatternBlock{}, fmt.Errorf("logicsim: wide block needs 1..%d patterns, got %d", max, len(patterns))
	}
	width := len(patterns[0])
	inputs := make([]uint64, width*words)
	for p, pat := range patterns {
		if len(pat) != width {
			return WidePatternBlock{}, fmt.Errorf("logicsim: pattern %d width %d != %d", p, len(pat), width)
		}
		for i, v := range pat {
			if v {
				inputs[i*words+p>>6] |= 1 << uint(p&63)
			}
		}
	}
	return WidePatternBlock{Inputs: inputs, Words: words, Count: len(patterns)}, nil
}

// WidenBlock converts a packed 64-pattern block to a words-wide lane
// block: the block's patterns occupy lanes 0..Count-1 (word 0 of every
// input's lane block), the remaining lanes are zero. A word count
// outside 1..MaxLaneWords is rejected with ErrLaneWords, and a block
// whose shape cannot have come from PackPatterns (Count outside 1..64)
// is rejected before any allocation — the zero-value PatternBlock being
// the classic way to hit it.
func WidenBlock(b PatternBlock, words int) (WidePatternBlock, error) {
	if err := validLaneWords(words); err != nil {
		return WidePatternBlock{}, err
	}
	if b.Count < 1 || b.Count > 64 {
		return WidePatternBlock{}, fmt.Errorf("logicsim: block Count %d outside 1..64 (zero-value PatternBlock?)", b.Count)
	}
	inputs := make([]uint64, len(b.Inputs)*words)
	for i, w := range b.Inputs {
		inputs[i*words] = w
	}
	return WidePatternBlock{Inputs: inputs, Words: words, Count: b.Count}, nil
}

// MaskInto appends the valid-lane mask (Words words) to dst.
func (b WidePatternBlock) MaskInto(dst []uint64) []uint64 {
	dst = dst[:0]
	for k := 0; k < b.Words; k++ {
		lo := k * 64
		switch {
		case b.Count >= lo+64:
			dst = append(dst, ^uint64(0))
		case b.Count > lo:
			dst = append(dst, (uint64(1)<<uint(b.Count-lo))-1)
		default:
			dst = append(dst, 0)
		}
	}
	return dst
}

// validate rejects a wide block whose shape cannot have come from
// PackWidePatterns, mirroring PatternBlock.validate.
func (b WidePatternBlock) validate(nIn int) error {
	if err := validLaneWords(b.Words); err != nil {
		return err
	}
	if len(b.Inputs) != nIn*b.Words {
		return fmt.Errorf("logicsim: wide block has %d words for %d inputs × %d words", len(b.Inputs), nIn, b.Words)
	}
	if max := 64 * b.Words; b.Count < 1 || b.Count > max {
		return fmt.Errorf("logicsim: wide block Count %d outside 1..%d (zero-value block?)", b.Count, max)
	}
	return nil
}

// WideLaneForces is the N-word generalization of LaneForces, indexed by
// *slot* so it pairs with the flat walk: each forced slot carries a
// care mask (which lanes are forced there) and force bits (their stuck
// values), applied as v = (v &^ care) | force word by word. Stem forces
// overwrite a slot's output block; pin forces overwrite one fanin block
// during that slot's evaluation only. Adding the same site twice on an
// overlapping lane keeps the last value, and Reset is O(1) via an epoch
// bump — the same contracts as LaneForces. Not safe for concurrent
// use.
type WideLaneForces struct {
	f     *Flat
	words int
	epoch int32
	mark  []int32 // per slot: epoch its entries belong to
	// stem holds the stride-packed stem masks of every slot, care and
	// force interleaved: slot s owns stem[s*2*words : (s+1)*2*words),
	// care block first, force block second. Builds and force application
	// always touch a slot's care and force words together, and slots are
	// visited in scattered order — keeping the pair adjacent makes the
	// common case one cache line per site instead of two (a measurable
	// share of lot-engine time on shallow circuits, where tables are
	// rebuilt far more often than they are walked). An all-zero care
	// block means no stem fault on the slot this epoch.
	stem []uint64
	// pins holds the per-input-pin masks of each slot, truncated to zero
	// length when the slot is first touched in a new epoch.
	pins [][]widePin
}

// widePin is one forced input pin of a slot. The masks are fixed-size
// so pin entries recycle across epochs without reallocation; only the
// leading `words` entries are meaningful.
type widePin struct {
	pin         int32
	care, force [MaxLaneWords]uint64
}

// NewWideLaneForces allocates a forcing table of 64*words lanes sized
// for the flat circuit.
func NewWideLaneForces(f *Flat, words int) (*WideLaneForces, error) {
	if err := validLaneWords(words); err != nil {
		return nil, err
	}
	n := f.Slots()
	return &WideLaneForces{
		f:     f,
		words: words,
		epoch: 1,
		mark:  make([]int32, n),
		stem:  make([]uint64, n*2*words),
		pins:  make([][]widePin, n),
	}, nil
}

// Lanes returns the number of bit-lanes of the table.
func (lf *WideLaneForces) Lanes() int { return 64 * lf.words }

// Words returns the lane-block width in machine words.
func (lf *WideLaneForces) Words() int { return lf.words }

// Reset empties the table for reuse in O(1).
func (lf *WideLaneForces) Reset() { lf.epoch++ }

// Add forces the fault onto one lane. On a lane already forced at the
// same site, the new stuck value wins.
func (lf *WideLaneForces) Add(f Injection, lane int) error {
	if f.Gate < 0 || f.Gate >= lf.f.Slots() {
		return fmt.Errorf("logicsim: fault site %d out of range", f.Gate)
	}
	if lane < 0 || lane >= lf.Lanes() {
		return fmt.Errorf("logicsim: lane %d outside 0..%d", lane, lf.Lanes()-1)
	}
	slot := lf.f.slotOf[f.Gate]
	if f.Pin >= 0 {
		if nf := int(lf.f.faninAt[slot+1] - lf.f.faninAt[slot]); f.Pin >= nf {
			return fmt.Errorf("logicsim: gate %d has no pin %d", f.Gate, f.Pin)
		}
	}
	lf.AddResolved(SlotInjection{Slot: slot, Pin: int32(f.Pin), Stuck: f.Stuck}, lane)
	return nil
}

// SlotInjection is an Injection resolved to slot space: the fault site
// as a flat slot index, with site and pin validation already done. A
// negative Pin is an output-stem fault, as in Injection.
// Flat.ResolveInjections produces them; AddResolved consumes them
// without revalidating — the bulk-build path of the lot engines, which
// rebuild forcing tables from the same fault universe every batch and
// would otherwise pay the gate-range check and gate→slot lookup on
// every one of those adds.
type SlotInjection struct {
	Slot  int32
	Pin   int32
	Stuck bool
}

// ResolveInjections validates a fault list and resolves it to slot
// space in one pass, so repeated table builds over the same universe
// can use AddResolved instead of revalidating every fault.
func (f *Flat) ResolveInjections(faults []Injection) ([]SlotInjection, error) {
	out := make([]SlotInjection, len(faults))
	for i, fi := range faults {
		if fi.Gate < 0 || fi.Gate >= f.Slots() {
			return nil, fmt.Errorf("logicsim: fault site %d out of range", fi.Gate)
		}
		slot := f.slotOf[fi.Gate]
		if fi.Pin >= 0 {
			if nf := int(f.faninAt[slot+1] - f.faninAt[slot]); fi.Pin >= nf {
				return nil, fmt.Errorf("logicsim: gate %d has no pin %d", fi.Gate, fi.Pin)
			}
		}
		out[i] = SlotInjection{Slot: slot, Pin: int32(fi.Pin), Stuck: fi.Stuck}
	}
	return out, nil
}

// AddResolved forces a pre-resolved fault onto one lane. The caller
// guarantees the injection came from ResolveInjections on the same
// flat circuit and that lane is inside 0..Lanes()-1; no per-call
// validation is repeated. Overlap semantics match Add: the new stuck
// value wins.
//
//repolint:hotpath
func (lf *WideLaneForces) AddResolved(f SlotInjection, lane int) {
	slot := int(f.Slot)
	base := slot * 2 * lf.words
	if lf.mark[slot] != lf.epoch {
		lf.mark[slot] = lf.epoch
		for k := 0; k < 2*lf.words; k++ {
			lf.stem[base+k] = 0
		}
		lf.pins[slot] = lf.pins[slot][:0]
	}
	word, bit := lane>>6, uint(lane&63)
	if f.Pin < 0 {
		o := base + word
		lf.stem[o] |= 1 << bit
		if f.Stuck {
			lf.stem[o+lf.words] |= 1 << bit
		} else {
			lf.stem[o+lf.words] &^= 1 << bit
		}
		return
	}
	for i := range lf.pins[slot] {
		if pl := &lf.pins[slot][i]; pl.pin == f.Pin {
			pl.care[word] |= 1 << bit
			if f.Stuck {
				pl.force[word] |= 1 << bit
			} else {
				pl.force[word] &^= 1 << bit
			}
			return
		}
	}
	var pl widePin
	pl.pin = f.Pin
	pl.care[word] |= 1 << bit
	if f.Stuck {
		pl.force[word] |= 1 << bit
	}
	lf.pins[slot] = append(lf.pins[slot], pl)
}

// forced reports whether the slot carries forces this epoch.
func (lf *WideLaneForces) forced(slot int) bool {
	return lf != nil && lf.mark[slot] == lf.epoch
}

// WideSim is the N-word walk state over a Flat: one stride-packed lane
// block per slot, reused across runs. Not safe for concurrent use;
// create one per goroutine over the shared Flat.
type WideSim struct {
	f     *Flat
	words int
	val   []uint64 // stride-packed value plane, slot s at [s*words, s*words+words)
	stage []uint64 // fanin staging scratch for pin-forced gates
}

// NewWideSim allocates wide walk state of 64*words lanes for the flat
// circuit.
func NewWideSim(f *Flat, words int) (*WideSim, error) {
	if err := validLaneWords(words); err != nil {
		return nil, err
	}
	return &WideSim{f: f, words: words, val: make([]uint64, f.Slots()*words)}, nil
}

// Flat returns the compiled form the simulator walks.
func (s *WideSim) Flat() *Flat { return s.f }

// Words returns the lane-block width in machine words.
func (s *WideSim) Words() int { return s.words }

// Lanes returns the number of bit-lanes per walk.
func (s *WideSim) Lanes() int { return 64 * s.words }

// ValueWords returns the lane block of a slot after the last run. The
// returned slice aliases the value plane; callers must not mutate it.
func (s *WideSim) ValueWords(slot int) []uint64 {
	return s.val[slot*s.words : (slot+1)*s.words]
}

// Broadcast spreads bit p of a 64-bit word across every lane of the
// slot's value — how engines seed frontier slots with good-machine
// values before a subset walk.
func (s *WideSim) Broadcast(slot int, word uint64, p int) {
	b := -(word >> uint(p) & 1)
	o := slot * s.words
	for k := 0; k < s.words; k++ {
		s.val[o+k] = b
	}
}

// RunInto simulates a wide pattern block (lanes carry patterns) and
// appends the stride-packed primary-output lane blocks to out, reusing
// its capacity: the N-word counterpart of Simulator.RunInto.
func (s *WideSim) RunInto(block WidePatternBlock, out []uint64) ([]uint64, error) {
	f := s.f
	if err := block.validate(f.numIn); err != nil {
		return nil, err
	}
	if block.Words != s.words {
		return nil, fmt.Errorf("logicsim: %d-word block through a %d-word simulator", block.Words, s.words)
	}
	copy(s.val[:f.numIn*s.words], block.Inputs)
	s.walkForced(nil)
	return s.appendOutputs(out), nil
}

// RunLaneForced evaluates pattern p of the block across all 64*Words
// lanes in one flat walk: every lane sees the same input bits
// (broadcast from bit p of each packed input word) and each forced site
// applies its lane masks. Lanes carrying no fault — lane 0 by engine
// convention — compute the good circuit. Output lane blocks are
// appended stride-packed to out (reused when capacity allows) in
// primary-output order: the wide counterpart of
// Simulator.RunLaneForced.
//
//repolint:hotpath
func (s *WideSim) RunLaneForced(block PatternBlock, p int, lf *WideLaneForces, out []uint64) ([]uint64, error) {
	f := s.f
	if err := block.validate(f.numIn); err != nil {
		return nil, err
	}
	if p < 0 || p >= block.Count {
		return nil, errPatternRange(p, block.Count)
	}
	if lf.f != f || lf.words != s.words {
		return nil, errForcesShape(lf.words)
	}
	w := s.words
	for i := 0; i < f.numIn; i++ {
		b := -(block.Inputs[i] >> uint(p) & 1)
		o := i * w
		if lf.forced(i) {
			sb := i * 2 * w
			for k := 0; k < w; k++ {
				s.val[o+k] = b&^lf.stem[sb+k] | lf.stem[sb+w+k]
			}
		} else {
			for k := 0; k < w; k++ {
				s.val[o+k] = b
			}
		}
	}
	s.walkForced(lf)
	return s.appendOutputs(out), nil
}

// EvalSlotsForced evaluates only the given slots, in order, with the
// forcing table applied — the subset walk behind the pf256 engine's
// union-cone passes. slots must be ascending (slot order is
// topological); values of fanins outside the subset are whatever the
// caller staged (typically good-machine Broadcasts). Input slots inside
// the subset are re-broadcast from the good simulator's value before
// stem forcing, so a forced primary input works like any other site.
func (s *WideSim) EvalSlotsForced(good *FlatSim, p int, slots []int32, lf *WideLaneForces) error {
	if good.f != s.f {
		return fmt.Errorf("logicsim: good-machine simulator walks a different flat circuit")
	}
	if lf != nil && (lf.f != s.f || lf.words != s.words) {
		return fmt.Errorf("logicsim: forcing table shape (%d words) does not match simulator", lf.words)
	}
	w := s.words
	for _, s32 := range slots {
		slot := int(s32)
		if s.f.op[slot] == opInput {
			b := -(good.val[slot] >> uint(p) & 1)
			o := slot * w
			if lf.forced(slot) {
				sb := slot * 2 * w
				for k := 0; k < w; k++ {
					s.val[o+k] = b&^lf.stem[sb+k] | lf.stem[sb+w+k]
				}
			} else {
				for k := 0; k < w; k++ {
					s.val[o+k] = b
				}
			}
			continue
		}
		s.evalForcedSlot(slot, lf)
	}
	return nil
}

// appendOutputs appends the primary-output lane blocks to out.
func (s *WideSim) appendOutputs(out []uint64) []uint64 {
	out = out[:0]
	w := s.words
	for _, os := range s.f.outSlot {
		o := int(os) * w
		out = append(out, s.val[o:o+w]...)
	}
	return out
}

// errForcesShape builds RunLaneForced's shape-mismatch error outside
// the annotated hot function, keeping fmt off the hot path.
func errForcesShape(words int) error {
	return fmt.Errorf("logicsim: forcing table shape (%d words) does not match simulator", words)
}

// walkForced is the wide hot loop: one linear pass over the logic
// slots; lf == nil walks unforced. The width dispatch is hoisted out
// of the loop so the specialized widths pay one kernel call per slot
// instead of riding through evalForcedSlot's per-slot switch — at
// width 1, the steady state of the compacting lot engine, that inner
// dispatch was a second dynamic call on every gate.
//
//repolint:hotpath
func (s *WideSim) walkForced(lf *WideLaneForces) {
	f := s.f
	switch s.words {
	case 1:
		for slot := f.numIn; slot < len(f.op); slot++ {
			s.evalForcedSlot1(slot, lf)
		}
	case 4:
		for slot := f.numIn; slot < len(f.op); slot++ {
			s.evalForcedSlot4(slot, lf)
		}
	default:
		for slot := f.numIn; slot < len(f.op); slot++ {
			s.evalForcedSlot(slot, lf)
		}
	}
}

// evalForcedSlot evaluates one logic slot into the value plane,
// applying the slot's pin forces during evaluation and its stem force
// to the result. Width dispatch: the 4-word width the engines batch at
// gets the unrolled kernel in wide4.go, the 1-word width their dead-lane
// compaction collapses to gets the scalar kernel in wide1.go, and every
// other width (2, 3, 5..8) takes the generic stride loops below. An
// 8-word unroll does not earn its bytes: BenchmarkWideWidths shows
// per-lane cost improving only through W≈5 and regressing by W=8, where
// the stride-8 value plane spills the close caches and the walk goes
// memory-bound — the stride loop's bounds checks hide behind the
// misses, and the engines batch at 4 words anyway.
//
//repolint:hotpath
func (s *WideSim) evalForcedSlot(slot int, lf *WideLaneForces) {
	switch s.words {
	case 1:
		s.evalForcedSlot1(slot, lf)
		return
	case 4:
		s.evalForcedSlot4(slot, lf)
		return
	}
	w := s.words
	o := slot * w
	dst := s.val[o : o+w]
	if lf.forced(slot) {
		if pins := lf.pins[slot]; len(pins) > 0 {
			s.evalStaged(slot, dst, pins)
		} else {
			s.evalSlot(slot, dst)
		}
		sb := slot * 2 * w
		for k := 0; k < w; k++ {
			dst[k] = dst[k]&^lf.stem[sb+k] | lf.stem[sb+w+k]
		}
		return
	}
	s.evalSlot(slot, dst)
}

// evalSlot is the unforced wide gate evaluation: a single op switch,
// word loops over the stride-packed fanin blocks.
//
//repolint:hotpath
func (s *WideSim) evalSlot(slot int, dst []uint64) {
	f := s.f
	w := s.words
	val, fanin := s.val, f.fanin
	lo := f.faninAt[slot]
	switch f.op[slot] {
	case opBuf:
		a := int(fanin[lo]) * w
		copy(dst, val[a:a+w])
	case opNot:
		a := int(fanin[lo]) * w
		for k := 0; k < w; k++ {
			dst[k] = ^val[a+k]
		}
	case opAnd2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = val[a+k] & val[b+k]
		}
	case opNand2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = ^(val[a+k] & val[b+k])
		}
	case opOr2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = val[a+k] | val[b+k]
		}
	case opNor2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = ^(val[a+k] | val[b+k])
		}
	case opXor2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = val[a+k] ^ val[b+k]
		}
	case opXnor2:
		a, b := int(fanin[lo])*w, int(fanin[lo+1])*w
		for k := 0; k < w; k++ {
			dst[k] = ^(val[a+k] ^ val[b+k])
		}
	default:
		s.evalWideN(slot, dst)
	}
}

// evalWideN evaluates the wide (3+ fanin) op codes.
func (s *WideSim) evalWideN(slot int, dst []uint64) {
	f := s.f
	w := s.words
	val := s.val
	fanin := f.fanin[f.faninAt[slot]:f.faninAt[slot+1]]
	op := f.op[slot]
	a := int(fanin[0]) * w
	copy(dst, val[a:a+w])
	switch op {
	case opAndN, opNandN:
		for _, fs := range fanin[1:] {
			b := int(fs) * w
			for k := 0; k < w; k++ {
				dst[k] &= val[b+k]
			}
		}
	case opOrN, opNorN:
		for _, fs := range fanin[1:] {
			b := int(fs) * w
			for k := 0; k < w; k++ {
				dst[k] |= val[b+k]
			}
		}
	case opXorN, opXnorN:
		for _, fs := range fanin[1:] {
			b := int(fs) * w
			for k := 0; k < w; k++ {
				dst[k] ^= val[b+k]
			}
		}
	default:
		panic(fmt.Sprintf("logicsim: evalWideN on op %d", op))
	}
	if op == opNandN || op == opNorN || op == opXnorN {
		for k := 0; k < w; k++ {
			dst[k] = ^dst[k]
		}
	}
}

// evalStaged evaluates a pin-forced slot: fanin lane blocks are staged,
// the pin masks applied, then the op evaluated over the staged blocks.
func (s *WideSim) evalStaged(slot int, dst []uint64, pins []widePin) {
	f := s.f
	w := s.words
	lo, hi := f.faninAt[slot], f.faninAt[slot+1]
	n := int(hi-lo) * w
	if cap(s.stage) < n {
		s.stage = make([]uint64, n)
	}
	stage := s.stage[:n]
	for i, fs := range f.fanin[lo:hi] {
		copy(stage[i*w:(i+1)*w], s.val[int(fs)*w:int(fs)*w+w])
	}
	for i := range pins {
		pl := &pins[i]
		o := int(pl.pin) * w
		for k := 0; k < w; k++ {
			stage[o+k] = stage[o+k]&^pl.care[k] | pl.force[k]
		}
	}
	op := f.op[slot]
	copy(dst, stage[:w])
	switch op {
	case opBuf:
	case opNot:
		for k := 0; k < w; k++ {
			dst[k] = ^dst[k]
		}
	case opAnd2, opNand2, opAndN, opNandN:
		for o := w; o < n; o += w {
			for k := 0; k < w; k++ {
				dst[k] &= stage[o+k]
			}
		}
		if op == opNand2 || op == opNandN {
			for k := 0; k < w; k++ {
				dst[k] = ^dst[k]
			}
		}
	case opOr2, opNor2, opOrN, opNorN:
		for o := w; o < n; o += w {
			for k := 0; k < w; k++ {
				dst[k] |= stage[o+k]
			}
		}
		if op == opNor2 || op == opNorN {
			for k := 0; k < w; k++ {
				dst[k] = ^dst[k]
			}
		}
	case opXor2, opXnor2, opXorN, opXnorN:
		for o := w; o < n; o += w {
			for k := 0; k < w; k++ {
				dst[k] ^= stage[o+k]
			}
		}
		if op == opXnor2 || op == opXnorN {
			for k := 0; k < w; k++ {
				dst[k] = ^dst[k]
			}
		}
	default:
		panic(fmt.Sprintf("logicsim: evalStaged on op %d", op))
	}
}
