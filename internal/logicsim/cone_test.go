package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func randomBlock(t *testing.T, c *netlist.Circuit, count int, seed int64) PatternBlock {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	patterns := make([]Pattern, count)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	return block
}

func TestConeSetStructure(t *testing.T) {
	c := netlist.C17()
	cs, err := NewConeSet(c)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := c.Order()
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for site := range c.Gates {
		cone := cs.Cone(site)
		if len(cone.Gates) == 0 || cone.Gates[0] != site {
			t.Fatalf("cone of %d does not start at the site: %v", site, cone.Gates)
		}
		for i := 1; i < len(cone.Gates); i++ {
			if pos[cone.Gates[i-1]] >= pos[cone.Gates[i]] {
				t.Fatalf("cone of %d not topologically ordered: %v", site, cone.Gates)
			}
		}
		// Every cone member must be reachable: it is either the site or
		// has a fanin inside the cone.
		in := make(map[int]bool, len(cone.Gates))
		for _, g := range cone.Gates {
			in[g] = true
		}
		for _, g := range cone.Gates[1:] {
			reachable := false
			for _, f := range c.Gates[g].Fanin {
				if in[f] {
					reachable = true
					break
				}
			}
			if !reachable {
				t.Fatalf("cone of %d contains unreachable gate %d", site, g)
			}
		}
		// Outputs agree with cone membership.
		for _, oi := range cone.Outputs {
			if !in[c.Outputs[oi]] {
				t.Fatalf("cone of %d lists output %d outside the cone", site, oi)
			}
		}
		for oi, o := range c.Outputs {
			if in[o] {
				found := false
				for _, x := range cone.Outputs {
					if x == oi {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("cone of %d misses reachable output %d", site, oi)
				}
			}
		}
	}
	// A primary output's own cone is just itself (no fanout beyond).
	if cs.Size() < len(c.Gates) {
		t.Fatal("cone set smaller than the gate count")
	}
}

// TestRunWithFaultConeMatchesRunWithFault is the core correctness
// property: for every fault site of several circuits, the cone-
// restricted diff must equal the full-circuit faulty-vs-good diff.
func TestRunWithFaultConeMatchesRunWithFault(t *testing.T) {
	circuits := []*netlist.Circuit{netlist.C17()}
	if c, err := netlist.RippleAdder(4); err == nil {
		circuits = append(circuits, c)
	} else {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 2; seed++ {
		c, err := netlist.RandomCircuit("r", 8, 80, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	for _, c := range circuits {
		sim, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewConeSet(c)
		if err != nil {
			t.Fatal(err)
		}
		block := randomBlock(t, c, 64, int64(len(c.Gates)))
		mask := block.Mask()
		good, err := sim.Run(block)
		if err != nil {
			t.Fatal(err)
		}
		goodCopy := append([]uint64(nil), good...)
		outDiffs := make([]uint64, len(c.Outputs))
		type site struct {
			gate, pin int
		}
		var sites []site
		for id, g := range c.Gates {
			sites = append(sites, site{id, -1})
			for pin := range g.Fanin {
				sites = append(sites, site{id, pin})
			}
		}
		for _, st := range sites {
			for _, stuck := range []bool{false, true} {
				coneDiff, err := sim.RunWithFaultCone(st.gate, st.pin, stuck, cs.Cone(st.gate), outDiffs)
				if err != nil {
					t.Fatal(err)
				}
				bad, err := sim.RunWithFault(block, st.gate, st.pin, stuck)
				if err != nil {
					t.Fatal(err)
				}
				// RunWithFault trashed the value array; restore the good
				// machine for the next cone call.
				if _, err := sim.Run(block); err != nil {
					t.Fatal(err)
				}
				var fullDiff uint64
				for o := range bad {
					d := (bad[o] ^ goodCopy[o]) & mask
					fullDiff |= d
					if d != outDiffs[o] {
						in := false
						for _, oi := range cs.Cone(st.gate).Outputs {
							if oi == o {
								in = true
							}
						}
						if in {
							t.Fatalf("%s gate %d pin %d stuck %v: output %d diff %x, cone says %x",
								c.Name, st.gate, st.pin, stuck, o, d, outDiffs[o])
						}
						if d != 0 {
							t.Fatalf("%s gate %d pin %d stuck %v: unreachable output %d differs",
								c.Name, st.gate, st.pin, stuck, o)
						}
					}
				}
				if coneDiff != fullDiff {
					t.Fatalf("%s gate %d pin %d stuck %v: cone diff %x, full diff %x",
						c.Name, st.gate, st.pin, stuck, coneDiff, fullDiff)
				}
			}
		}
	}
}

// TestRunWithFaultConeRestoresGoodMachine checks the save/restore: after
// a cone run the simulator must again hold the good-machine values, so
// back-to-back cone runs need no re-simulation.
func TestRunWithFaultConeRestoresGoodMachine(t *testing.T) {
	c, err := netlist.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewConeSet(c)
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(t, c, 40, 7)
	if _, err := sim.Run(block); err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, len(c.Gates))
	for id := range c.Gates {
		before[id] = sim.Value(id)
	}
	for id := range c.Gates {
		if _, err := sim.RunWithFaultCone(id, -1, true, cs.Cone(id), nil); err != nil {
			t.Fatal(err)
		}
	}
	for id := range c.Gates {
		if sim.Value(id) != before[id] {
			t.Fatalf("gate %d value changed after cone runs", id)
		}
	}
}

func TestRunWithFaultConeErrors(t *testing.T) {
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewConeSet(c)
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(t, c, 8, 1)
	if _, err := sim.Run(block); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWithFaultCone(-1, -1, false, cs.Cone(0), nil); err == nil {
		t.Error("out-of-range site should error")
	}
	if _, err := sim.RunWithFaultCone(1, -1, false, cs.Cone(0), nil); err == nil {
		t.Error("mismatched cone should error")
	}
	if _, err := sim.RunWithFaultCone(0, 99, false, cs.Cone(0), nil); err == nil {
		t.Error("bad pin should error")
	}
}
