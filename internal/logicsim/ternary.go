package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Trit is a three-valued logic level: 0, 1, or X (unknown).
type Trit uint8

// Ternary logic values.
const (
	F Trit = iota // logic 0
	T             // logic 1
	X             // unknown
)

// String renders the trit.
func (t Trit) String() string {
	switch t {
	case F:
		return "0"
	case T:
		return "1"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Trit(%d)", uint8(t))
	}
}

// NotT returns three-valued NOT.
func NotT(a Trit) Trit {
	switch a {
	case F:
		return T
	case T:
		return F
	default:
		return X
	}
}

// AndT returns three-valued AND: 0 dominates X.
func AndT(a, b Trit) Trit {
	if a == F || b == F {
		return F
	}
	if a == T && b == T {
		return T
	}
	return X
}

// OrT returns three-valued OR: 1 dominates X.
func OrT(a, b Trit) Trit {
	if a == T || b == T {
		return T
	}
	if a == F && b == F {
		return F
	}
	return X
}

// XorT returns three-valued XOR: any X poisons the result.
func XorT(a, b Trit) Trit {
	if a == X || b == X {
		return X
	}
	if a != b {
		return T
	}
	return F
}

// EvalT evaluates a gate in three-valued logic over its fanin values.
func EvalT(t netlist.GateType, in []Trit) Trit {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return NotT(in[0])
	case netlist.And, netlist.Nand:
		v := in[0]
		for _, x := range in[1:] {
			v = AndT(v, x)
		}
		if t == netlist.Nand {
			return NotT(v)
		}
		return v
	case netlist.Or, netlist.Nor:
		v := in[0]
		for _, x := range in[1:] {
			v = OrT(v, x)
		}
		if t == netlist.Nor {
			return NotT(v)
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v = XorT(v, x)
		}
		if t == netlist.Xnor {
			return NotT(v)
		}
		return v
	default:
		panic(fmt.Sprintf("logicsim: cannot evaluate gate type %v", t))
	}
}

// TernarySim is a scalar three-valued simulator. PODEM uses it to
// propagate partial input assignments (unassigned inputs are X).
type TernarySim struct {
	c     *netlist.Circuit
	order []int
	val   []Trit
	buf   []Trit
}

// NewTernarySim prepares a ternary simulator.
func NewTernarySim(c *netlist.Circuit) (*TernarySim, error) {
	order, err := c.Order()
	if err != nil {
		return nil, err
	}
	return &TernarySim{c: c, order: order, val: make([]Trit, len(c.Gates)), buf: make([]Trit, 8)}, nil
}

// Run evaluates the circuit for the given primary-input assignment
// (one Trit per input, in input order) and returns the full per-gate
// value slice, valid until the next Run.
func (s *TernarySim) Run(inputs []Trit) ([]Trit, error) {
	if len(inputs) != len(s.c.Inputs) {
		return nil, fmt.Errorf("logicsim: %d input trits for %d inputs", len(inputs), len(s.c.Inputs))
	}
	for i, id := range s.c.Inputs {
		s.val[id] = inputs[i]
	}
	for _, id := range s.order {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		in := s.buf[:0]
		for _, f := range g.Fanin {
			in = append(in, s.val[f])
		}
		s.val[id] = EvalT(g.Type, in)
	}
	return s.val, nil
}
