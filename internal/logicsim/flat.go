package logicsim

import (
	"fmt"
	"sync"

	"repro/internal/netlist"
)

// Flat is a compiled, struct-of-arrays form of a circuit built for the
// hot walks: gate functions, fanin references, and output positions
// live in contiguous arrays indexed by *slot* (a position in a fixed
// topological evaluation order), so a full-circuit pass is one linear
// sweep with no per-gate struct dereferences, no fanin slice headers,
// and no Input-type branch — inputs occupy slots [0, NumInputs) and
// the walk starts after them.
//
// Slot order: primary inputs first, in Circuit.Inputs order (so a
// PatternBlock loads with one copy), then every logic gate in
// topological order. Because fanins are stored as slot indices, slot
// order is itself a valid evaluation order, and ascending-slot subsets
// (like the union cones the pf256 engine walks) stay topological with a
// plain integer sort.
//
// A Flat is immutable after construction and safe for concurrent
// readers; per-goroutine walk state lives in FlatSim / WideSim. It is
// cached on the circuit next to the ConeSet (see FlatFor) and dropped
// on any mutation.
type Flat struct {
	c     *netlist.Circuit
	numIn int

	op      []uint8 // flat gate function per slot (op* codes)
	faninAt []int32 // slot -> offset of its first fanin; len = slots+1
	fanin   []int32 // flattened fanin slot indices, pin order preserved

	slotOf  []int32 // gate ID -> slot
	gateOf  []int32 // slot -> gate ID
	outSlot []int32 // primary-output index -> slot
}

// Flat op codes: the gate-function switch of the flat walks. The
// ubiquitous 1- and 2-input shapes get their own codes so the inner
// loop evaluates them without a fanin-count branch; *N codes loop.
const (
	opInput uint8 = iota
	opBuf
	opNot
	opAnd2
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
	opAndN
	opNandN
	opOrN
	opNorN
	opXorN
	opXnorN
)

// opFor compiles a gate type + fanin count to a flat op code.
func opFor(t netlist.GateType, fanins int) (uint8, error) {
	if t == netlist.Input {
		return opInput, nil
	}
	if fanins == 1 {
		// Degenerate 1-input logic gates reduce to a buffer or inverter,
		// matching eval/EvalWords semantics.
		switch t {
		case netlist.Buf, netlist.And, netlist.Or, netlist.Xor:
			return opBuf, nil
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			return opNot, nil
		}
	}
	if fanins == 2 {
		switch t {
		case netlist.And:
			return opAnd2, nil
		case netlist.Nand:
			return opNand2, nil
		case netlist.Or:
			return opOr2, nil
		case netlist.Nor:
			return opNor2, nil
		case netlist.Xor:
			return opXor2, nil
		case netlist.Xnor:
			return opXnor2, nil
		}
	}
	switch t {
	case netlist.And:
		return opAndN, nil
	case netlist.Nand:
		return opNandN, nil
	case netlist.Or:
		return opOrN, nil
	case netlist.Nor:
		return opNorN, nil
	case netlist.Xor:
		return opXorN, nil
	case netlist.Xnor:
		return opXnorN, nil
	}
	return 0, fmt.Errorf("logicsim: cannot compile gate type %v", t)
}

// NewFlat compiles the circuit, levelizing it and validating that every
// logic gate has fanin (a zero-fanin non-input gate would otherwise
// panic mid-walk in every simulator; failing at compile names the
// gate).
func NewFlat(c *netlist.Circuit) (*Flat, error) {
	order, err := c.Order()
	if err != nil {
		return nil, err
	}
	for id := range c.Gates {
		g := &c.Gates[id]
		if g.Type != netlist.Input && len(g.Fanin) == 0 {
			return nil, fmt.Errorf("logicsim: gate %q (%v) has no fanin and is not a primary input", g.Name, g.Type)
		}
	}
	n := len(c.Gates)
	f := &Flat{
		c:       c,
		numIn:   len(c.Inputs),
		op:      make([]uint8, n),
		faninAt: make([]int32, n+1),
		slotOf:  make([]int32, n),
		gateOf:  make([]int32, n),
		outSlot: make([]int32, len(c.Outputs)),
	}
	// Inputs claim the leading slots in declaration order; the remaining
	// gates follow in topological order.
	slot := 0
	for _, id := range c.Inputs {
		f.slotOf[id] = int32(slot)
		f.gateOf[slot] = int32(id)
		slot++
	}
	for _, id := range order {
		if c.Gates[id].Type == netlist.Input {
			continue
		}
		f.slotOf[id] = int32(slot)
		f.gateOf[slot] = int32(id)
		slot++
	}
	if slot != n {
		// An Input-typed gate missing from Circuit.Inputs (hand-built
		// circuit skipping AddGate) would silently corrupt the layout.
		return nil, fmt.Errorf("logicsim: circuit %q has %d gates but %d slots (input list inconsistent)", c.Name, n, slot)
	}
	total := 0
	for _, g := range c.Gates {
		total += len(g.Fanin)
	}
	f.fanin = make([]int32, 0, total)
	for s := 0; s < n; s++ {
		g := &c.Gates[f.gateOf[s]]
		f.faninAt[s] = int32(len(f.fanin))
		for _, fid := range g.Fanin {
			f.fanin = append(f.fanin, f.slotOf[fid])
		}
		op, err := opFor(g.Type, len(g.Fanin))
		if err != nil {
			return nil, fmt.Errorf("logicsim: gate %q: %w", g.Name, err)
		}
		f.op[s] = op
	}
	f.faninAt[n] = int32(len(f.fanin))
	for oi, id := range c.Outputs {
		f.outSlot[oi] = f.slotOf[id]
	}
	return f, nil
}

// FlatFor returns the circuit's flat compiled form, building it on
// first use and caching it on the circuit next to the ConeSet (both
// live in the same SimCache slot and are dropped together on any
// mutation). Safe for concurrent callers on a levelized circuit —
// sweep workers lazily compile the shared circuit from per-worker
// ATEs — but like every lazy circuit cache it must not race with
// mutation.
func FlatFor(c *netlist.Circuit) (*Flat, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	sc := cachesFor(c)
	if sc.flat != nil {
		return sc.flat, nil
	}
	f, err := NewFlat(c)
	if err != nil {
		return nil, err
	}
	sc.flat = f
	return f, nil
}

// Circuit returns the circuit the flat form was compiled from.
func (f *Flat) Circuit() *netlist.Circuit { return f.c }

// Slots returns the number of slots (== gates).
func (f *Flat) Slots() int { return len(f.op) }

// NumInputs returns the number of primary-input slots; slots
// [0, NumInputs) are the inputs in Circuit.Inputs order.
func (f *Flat) NumInputs() int { return f.numIn }

// SlotOf maps a gate ID to its slot.
func (f *Flat) SlotOf(gate int) int { return int(f.slotOf[gate]) }

// GateAt maps a slot back to its gate ID.
func (f *Flat) GateAt(slot int) int { return int(f.gateOf[slot]) }

// IsInputSlot reports whether the slot holds a primary input.
func (f *Flat) IsInputSlot(slot int) bool { return slot < f.numIn }

// FaninSlots returns the fanin of a slot as slot indices, in pin order.
// The returned slice aliases the flat arrays; callers must not mutate
// it.
func (f *Flat) FaninSlots(slot int) []int32 {
	return f.fanin[f.faninAt[slot]:f.faninAt[slot+1]]
}

// OutputSlot returns the slot of primary output oi (an index into
// Circuit.Outputs).
func (f *Flat) OutputSlot(oi int) int { return int(f.outSlot[oi]) }

// FlatSim is the 64-lane walk state over a Flat: one value word per
// slot, reused across runs. Like Simulator it is not safe for
// concurrent use; create one per goroutine over the shared Flat.
type FlatSim struct {
	f    *Flat
	val  []uint64
	mask uint64 // valid-pattern mask of the last RunInto block
	// Cone-walk scratch (see coneWalk): the slot-indexed shadow value
	// plane the faulty values propagate through, allocated on the first
	// cone walk and kept warm. The good machine in val is never mutated
	// by a cone walk, so there is nothing to save or restore.
	shadow []uint64
}

// NewFlatSim allocates walk state for the flat circuit.
func NewFlatSim(f *Flat) *FlatSim {
	return &FlatSim{f: f, val: make([]uint64, len(f.op))}
}

// Flat returns the compiled form the simulator walks.
func (s *FlatSim) Flat() *Flat { return s.f }

// RunInto simulates the block and appends the primary-output words to
// out (reusing its capacity): the allocation-free counterpart of
// Simulator.Run. Passing out with capacity >= the output count makes
// the steady state zero-alloc.
//
//repolint:hotpath
func (s *FlatSim) RunInto(block PatternBlock, out []uint64) ([]uint64, error) {
	f := s.f
	if err := block.validate(f.numIn); err != nil {
		return nil, err
	}
	s.mask = block.Mask()
	copy(s.val[:f.numIn], block.Inputs)
	s.walkRange(f.numIn, len(f.op))
	out = out[:0]
	for _, os := range f.outSlot {
		out = append(out, s.val[os])
	}
	return out, nil
}

// RunWithFaultInto simulates the block with a single stuck-at fault
// injected and appends the primary-output words to out (reusing its
// capacity): the scalar flat counterpart of Simulator.RunWithFaultInto,
// and the walk behind the faultsim Serial baseline. slot is the fault
// site's slot; pin < 0 is a stem fault on the slot's output, pin >= 0
// forces that input pin during the slot's evaluation only.
//
//repolint:hotpath
func (s *FlatSim) RunWithFaultInto(block PatternBlock, slot, pin int, stuck bool, out []uint64) ([]uint64, error) {
	f := s.f
	if err := block.validate(f.numIn); err != nil {
		return nil, err
	}
	if slot < 0 || slot >= len(f.op) {
		return nil, errSlotRange(slot)
	}
	var stuckWord uint64
	if stuck {
		stuckWord = ^uint64(0)
	}
	s.mask = block.Mask()
	copy(s.val[:f.numIn], block.Inputs)
	switch {
	case slot < f.numIn:
		// A fault on a primary input: stem forces the input word itself;
		// a pin fault is impossible (inputs have no fanin).
		if pin >= 0 {
			return nil, errNoPin(slot, pin)
		}
		s.val[slot] = stuckWord
		s.walkRange(f.numIn, len(f.op))
	case pin < 0:
		// Stem fault on a logic slot: walk up to the site, overwrite its
		// output, walk the rest.
		s.walkRange(f.numIn, slot)
		s.val[slot] = stuckWord
		s.walkRange(slot+1, len(f.op))
	default:
		if int32(pin) >= f.faninAt[slot+1]-f.faninAt[slot] {
			return nil, errNoPin(slot, pin)
		}
		s.walkRange(f.numIn, slot)
		s.val[slot] = s.evalForcedPin(slot, pin, stuckWord)
		s.walkRange(slot+1, len(f.op))
	}
	out = out[:0]
	for _, os := range f.outSlot {
		out = append(out, s.val[os])
	}
	return out, nil
}

// Value returns the value word of a slot after the last run; the pf256
// engine reads good-machine frontier values through it.
func (s *FlatSim) Value(slot int) uint64 { return s.val[slot] }

// walkRange is the flat hot loop: one linear pass over the logic slots
// in [lo, hi), a single op switch per gate, contiguous fanin indices.
// Full runs walk [numIn, Slots); the fault-injecting walk splits the
// range around the fault site.
//
//repolint:hotpath
func (s *FlatSim) walkRange(lo, hi int) {
	f := s.f
	val, fanin, faninAt := s.val, f.fanin, f.faninAt
	for slot := lo; slot < hi; slot++ {
		fa := faninAt[slot]
		var v uint64
		switch f.op[slot] {
		case opBuf:
			v = val[fanin[fa]]
		case opNot:
			v = ^val[fanin[fa]]
		case opAnd2:
			v = val[fanin[fa]] & val[fanin[fa+1]]
		case opNand2:
			v = ^(val[fanin[fa]] & val[fanin[fa+1]])
		case opOr2:
			v = val[fanin[fa]] | val[fanin[fa+1]]
		case opNor2:
			v = ^(val[fanin[fa]] | val[fanin[fa+1]])
		case opXor2:
			v = val[fanin[fa]] ^ val[fanin[fa+1]]
		case opXnor2:
			v = ^(val[fanin[fa]] ^ val[fanin[fa+1]])
		default:
			v = evalFlatN(f.op[slot], fanin[fa:faninAt[slot+1]], val)
		}
		val[slot] = v
	}
}

// evalFlatN evaluates the wide (3+ fanin) op codes.
func evalFlatN(op uint8, fanin []int32, val []uint64) uint64 {
	v := val[fanin[0]]
	switch op {
	case opAndN, opNandN:
		for _, fs := range fanin[1:] {
			v &= val[fs]
		}
		if op == opNandN {
			v = ^v
		}
	case opOrN, opNorN:
		for _, fs := range fanin[1:] {
			v |= val[fs]
		}
		if op == opNorN {
			v = ^v
		}
	case opXorN, opXnorN:
		for _, fs := range fanin[1:] {
			v ^= val[fs]
		}
		if op == opXnorN {
			v = ^v
		}
	default:
		panic(fmt.Sprintf("logicsim: evalFlatN on op %d", op))
	}
	return v
}

// simCaches bundles every simulator-derived precomputation that hangs
// off a circuit's SimCache slot — the per-gate output cones, the flat
// compiled form, and the flat slot cones share one cache object so they
// share one invalidation rule: any circuit mutation drops all three.
type simCaches struct {
	cones     *ConeSet
	flat      *Flat
	flatCones *FlatConeSet
}

// cacheMu serializes the lazy cache builds (FlatFor, ConeSetFor): the
// SimCache slot itself is unsynchronized, and concurrent sweep workers
// compile the shared circuit lazily from their per-worker ATEs. One
// package-level mutex suffices — these are once-per-circuit setup
// paths, never inner loops.
var cacheMu sync.Mutex

// cachesFor returns the circuit's cache bundle, installing an empty one
// on first use. Callers must hold cacheMu.
func cachesFor(c *netlist.Circuit) *simCaches {
	if sc, ok := c.SimCache().(*simCaches); ok {
		return sc
	}
	sc := &simCaches{}
	c.SetSimCache(sc)
	return sc
}
