package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// runC17 simulates c17 for a single pattern given as input bits in the
// order 1,2,3,6,7 and returns outputs 22,23.
func runC17(t *testing.T, bits [5]bool) [2]bool {
	t.Helper()
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunSingle(Pattern(bits[:]))
	if err != nil {
		t.Fatal(err)
	}
	return [2]bool{out[0], out[1]}
}

// c17Reference computes c17 outputs directly from its equations.
func c17Reference(in [5]bool) [2]bool {
	i1, i2, i3, i6, i7 := in[0], in[1], in[2], in[3], in[4]
	n10 := !(i1 && i3)
	n11 := !(i3 && i6)
	n16 := !(i2 && n11)
	n19 := !(n11 && i7)
	n22 := !(n10 && n16)
	n23 := !(n16 && n19)
	return [2]bool{n22, n23}
}

func TestC17Exhaustive(t *testing.T) {
	for v := 0; v < 32; v++ {
		var in [5]bool
		for i := 0; i < 5; i++ {
			in[i] = v>>i&1 == 1
		}
		got := runC17(t, in)
		want := c17Reference(in)
		if got != want {
			t.Errorf("c17(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestPackPatterns(t *testing.T) {
	p0 := Pattern{true, false, true}
	p1 := Pattern{false, false, true}
	b, err := PackPatterns([]Pattern{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 2 || b.Mask() != 3 {
		t.Errorf("count %d mask %x", b.Count, b.Mask())
	}
	if b.Inputs[0] != 0b01 || b.Inputs[1] != 0 || b.Inputs[2] != 0b11 {
		t.Errorf("packed words %v", b.Inputs)
	}
}

func TestPackPatternsErrors(t *testing.T) {
	if _, err := PackPatterns(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := PackPatterns([]Pattern{{true}, {true, false}}); err == nil {
		t.Error("ragged widths should error")
	}
	many := make([]Pattern, 65)
	for i := range many {
		many[i] = Pattern{true}
	}
	if _, err := PackPatterns(many); err == nil {
		t.Error(">64 should error")
	}
}

func TestMaskFull(t *testing.T) {
	b := PatternBlock{Count: 64}
	if b.Mask() != ^uint64(0) {
		t.Error("full mask wrong")
	}
}

func TestParallelMatchesScalar(t *testing.T) {
	// 64 random patterns through the parallel simulator must match 64
	// single-pattern runs.
	c, err := netlist.RandomCircuit("r", 12, 250, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	patterns := make([]Pattern, 64)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	words, err := sim.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	for p, pat := range patterns {
		single, err := sim.RunSingle(pat)
		if err != nil {
			t.Fatal(err)
		}
		for o := range single {
			if got := words[o]>>uint(p)&1 == 1; got != single[o] {
				t.Fatalf("pattern %d output %d: parallel %v scalar %v", p, o, got, single[o])
			}
		}
	}
}

func TestRunInputWidthError(t *testing.T) {
	sim, err := NewSimulator(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(PatternBlock{Inputs: []uint64{1}, Count: 1}); err == nil {
		t.Error("wrong width should error")
	}
	if _, err := sim.RunWithFault(PatternBlock{Inputs: []uint64{1}, Count: 1}, 0, -1, true); err == nil {
		t.Error("wrong width should error in RunWithFault")
	}
}

func TestAdderAdds(t *testing.T) {
	const w = 6
	c, err := netlist.RippleAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(1 << w)
		b := rng.Intn(1 << w)
		cin := rng.Intn(2)
		// Inputs in declaration order: a0,b0,a1,b1,...,cin.
		p := make(Pattern, 0, 2*w+1)
		for i := 0; i < w; i++ {
			p = append(p, a>>i&1 == 1, b>>i&1 == 1)
		}
		p = append(p, cin == 1)
		out, err := sim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		// Outputs: s0..s{w-1}, cout.
		got := 0
		for i := 0; i < w; i++ {
			if out[i] {
				got |= 1 << i
			}
		}
		if out[w] {
			got |= 1 << w
		}
		if want := a + b + cin; got != want {
			t.Fatalf("%d + %d + %d = %d, circuit says %d", a, b, cin, want, got)
		}
	}
}

func TestMultiplierMultiplies(t *testing.T) {
	const w = 4
	c, err := netlist.ArrayMultiplier(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<w; a++ {
		for b := 0; b < 1<<w; b++ {
			p := make(Pattern, 0, 2*w)
			for i := 0; i < w; i++ {
				p = append(p, a>>i&1 == 1)
			}
			for i := 0; i < w; i++ {
				p = append(p, b>>i&1 == 1)
			}
			out, err := sim.RunSingle(p)
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for i := range out {
				if out[i] {
					got |= 1 << i
				}
			}
			if got != a*b {
				t.Fatalf("%d * %d = %d, circuit says %d", a, b, a*b, got)
			}
		}
	}
}

func TestParityTreeCorrect(t *testing.T) {
	const w = 7
	c, err := netlist.ParityTree(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1<<w; v++ {
		p := make(Pattern, w)
		parity := false
		for i := 0; i < w; i++ {
			p[i] = v>>i&1 == 1
			if p[i] {
				parity = !parity
			}
		}
		out, err := sim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != parity {
			t.Fatalf("parity(%07b) = %v, want %v", v, out[0], parity)
		}
	}
}

func TestDecoderCorrect(t *testing.T) {
	const bits = 3
	c, err := netlist.Decoder(bits)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1<<bits; v++ {
		for _, en := range []bool{false, true} {
			p := make(Pattern, bits+1)
			for i := 0; i < bits; i++ {
				p[i] = v>>i&1 == 1
			}
			p[bits] = en
			out, err := sim.RunSingle(p)
			if err != nil {
				t.Fatal(err)
			}
			for o := range out {
				want := en && o == v
				if out[o] != want {
					t.Fatalf("dec(v=%d en=%v) output %d = %v, want %v", v, en, o, out[o], want)
				}
			}
		}
	}
}

func TestMuxTreeCorrect(t *testing.T) {
	const sel = 3
	c, err := netlist.MuxTree(sel)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << sel
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		data := rng.Intn(1 << n)
		s := rng.Intn(n)
		p := make(Pattern, 0, n+sel)
		for i := 0; i < n; i++ {
			p = append(p, data>>i&1 == 1)
		}
		for i := 0; i < sel; i++ {
			p = append(p, s>>i&1 == 1)
		}
		out, err := sim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := data>>s&1 == 1; out[0] != want {
			t.Fatalf("mux(data=%08b, s=%d) = %v, want %v", data, s, out[0], want)
		}
	}
}

func TestComparatorCorrect(t *testing.T) {
	const w = 5
	c, err := netlist.Comparator(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(1 << w)
		b := a
		if trial%2 == 0 {
			b = rng.Intn(1 << w)
		}
		p := make(Pattern, 0, 2*w)
		for i := 0; i < w; i++ {
			p = append(p, a>>i&1 == 1, b>>i&1 == 1)
		}
		out, err := sim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (a == b) {
			t.Fatalf("cmp(%d,%d) = %v", a, b, out[0])
		}
	}
}

func TestRunWithFaultStuckOutput(t *testing.T) {
	// c17: force gate 22's output stuck-at-1; output 22 must read 1 for
	// every pattern.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.GateByName("22")
	patterns := allC17Patterns()
	block, _ := PackPatterns(patterns)
	out, err := sim.RunWithFault(block, id, -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&block.Mask() != block.Mask() {
		t.Errorf("stuck-at-1 output should read all ones, got %b", out[0]&block.Mask())
	}
}

func TestRunWithFaultInputPin(t *testing.T) {
	// Fault on one branch of a fanout stem must not affect the other
	// branch. In c17, gate 11 fans out to 16 and 19. Stuck a pin of 16
	// and check gate 19's behaviour is untouched by comparing output 23
	// against a direct reference with only that pin forced.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	g16, _ := c.GateByName("16")
	// Pin 1 of gate 16 is the branch from 11 (fanin order: 2, 11).
	patterns := allC17Patterns()
	block, _ := PackPatterns(patterns)
	got, err := sim.RunWithFault(block, g16, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for p, pat := range patterns {
		i1, i2, i3, i6, i7 := pat[0], pat[1], pat[2], pat[3], pat[4]
		_ = i3
		_ = i6
		n10 := !(i1 && i3)
		n11 := !(i3 && i6)
		n16 := !(i2 && true) // pin from 11 stuck at 1
		n19 := !(n11 && i7)  // unaffected
		n22 := !(n10 && n16)
		n23 := !(n16 && n19)
		if g := got[0]>>uint(p)&1 == 1; g != n22 {
			t.Fatalf("pattern %d: output 22 = %v, want %v", p, g, n22)
		}
		if g := got[1]>>uint(p)&1 == 1; g != n23 {
			t.Fatalf("pattern %d: output 23 = %v, want %v", p, g, n23)
		}
	}
}

func TestRunWithFaultErrors(t *testing.T) {
	sim, err := NewSimulator(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	block, _ := PackPatterns(allC17Patterns()[:1])
	if _, err := sim.RunWithFault(block, 999, -1, true); err == nil {
		t.Error("bad site should error")
	}
	if _, err := sim.RunWithFault(block, 10, 7, true); err == nil {
		t.Error("bad pin should error")
	}
}

// allC17Patterns returns all 32 input patterns of c17.
func allC17Patterns() []Pattern {
	out := make([]Pattern, 32)
	for v := 0; v < 32; v++ {
		p := make(Pattern, 5)
		for i := 0; i < 5; i++ {
			p[i] = v>>i&1 == 1
		}
		out[v] = p
	}
	return out
}

func BenchmarkParallelSim(b *testing.B) {
	c, err := netlist.ArrayMultiplier(16)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	patterns := make([]Pattern, 64)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, _ := PackPatterns(patterns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(block); err != nil {
			b.Fatal(err)
		}
	}
}
