package logicsim

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/netlist"
)

// randomPatterns builds n random patterns for the circuit.
func randomPatterns(c *netlist.Circuit, n int, rng *rand.Rand) []Pattern {
	patterns := make([]Pattern, n)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	return patterns
}

func TestFlatStructure(t *testing.T) {
	c := netlist.C17()
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Circuit() != c {
		t.Error("Circuit() lost the source circuit")
	}
	if f.Slots() != len(c.Gates) {
		t.Fatalf("Slots %d != gates %d", f.Slots(), len(c.Gates))
	}
	if f.NumInputs() != len(c.Inputs) {
		t.Fatalf("NumInputs %d != inputs %d", f.NumInputs(), len(c.Inputs))
	}
	// Inputs occupy the leading slots in Circuit.Inputs order.
	for i, id := range c.Inputs {
		if f.SlotOf(id) != i {
			t.Errorf("input %d at slot %d, want %d", id, f.SlotOf(id), i)
		}
		if !f.IsInputSlot(i) {
			t.Errorf("slot %d not an input slot", i)
		}
	}
	if f.IsInputSlot(f.NumInputs()) {
		t.Error("first logic slot reported as input")
	}
	// Slot<->gate maps are inverse bijections, and every fanin slot
	// precedes its gate's slot (slot order is topological).
	for slot := 0; slot < f.Slots(); slot++ {
		if f.SlotOf(f.GateAt(slot)) != slot {
			t.Errorf("slot %d does not round-trip", slot)
		}
		for _, fs := range f.FaninSlots(slot) {
			if int(fs) >= slot {
				t.Errorf("slot %d has fanin slot %d (not topological)", slot, fs)
			}
		}
	}
	for oi, id := range c.Outputs {
		if f.OutputSlot(oi) != f.SlotOf(id) {
			t.Errorf("output %d slot mismatch", oi)
		}
	}
}

// TestFlatForConcurrentBuild races many goroutines into the lazy cache
// builds on one fresh shared circuit — the shape of sweep workers
// lazily compiling the shared workload from per-worker ATEs. Run under
// -race this is the regression guard for the cacheMu serialization;
// without it, all callers must also observe the same compiled forms.
func TestFlatForConcurrentBuild(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Levelize(); err != nil { // share only levelized circuits
		t.Fatal(err)
	}
	const workers = 8
	flats := make([]*Flat, workers)
	cones := make([]*ConeSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := FlatFor(c)
			if err != nil {
				t.Error(err)
				return
			}
			cs, err := ConeSetFor(c)
			if err != nil {
				t.Error(err)
				return
			}
			flats[w], cones[w] = f, cs
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if flats[w] != flats[0] || cones[w] != cones[0] {
			t.Fatalf("worker %d saw a different compiled form", w)
		}
	}
}

func TestFlatForCachesAndInvalidates(t *testing.T) {
	c := netlist.C17()
	f1, err := FlatFor(c)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FlatFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("FlatFor rebuilt on second call")
	}
	// The cone set shares the same cache bundle without evicting the
	// flat form.
	cs1, err := ConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := FlatFor(c)
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := ConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if f3 != f1 || cs2 != cs1 {
		t.Error("cone set and flat form evicted each other")
	}
	// Any mutation drops both.
	if _, err := c.AddGate("extra", netlist.Not, "22"); err != nil {
		t.Fatal(err)
	}
	f4, err := FlatFor(c)
	if err != nil {
		t.Fatal(err)
	}
	cs3, err := ConeSetFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if f4 == f1 || cs3 == cs1 {
		t.Error("mutation did not invalidate the caches")
	}
}

// TestFlatSimMatchesSimulator pins the flat walk to the levelized
// Simulator over random circuits: same blocks, bit-identical outputs.
func TestFlatSimMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		c, err := netlist.RandomCircuit("r", 5+rng.Intn(8), 30+rng.Intn(150), 2+rng.Intn(7), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFlat(c)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFlatSim(f)
		block, err := PackPatterns(randomPatterns(c, 1+rng.Intn(64), rng))
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run(block)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.RunInto(block, nil)
		if err != nil {
			t.Fatal(err)
		}
		mask := block.Mask()
		for o := range want {
			if want[o]&mask != got[o]&mask {
				t.Fatalf("trial %d output %d: flat %x, simulator %x", trial, o, got[o]&mask, want[o]&mask)
			}
		}
		// Value exposes per-slot words consistent with the gate map.
		for slot := 0; slot < f.Slots(); slot++ {
			if fs.Value(slot)&mask != sim.Value(f.GateAt(slot))&mask {
				t.Fatalf("trial %d slot %d: value plane diverged", trial, slot)
			}
		}
	}
}

// TestFlatWalkZeroAllocs pins the steady-state flat walk to zero
// allocations per run, the contract the engines' hot loops rely on.
func TestFlatWalkZeroAllocs(t *testing.T) {
	c, err := netlist.RandomCircuit("r", 10, 200, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlatSim(f)
	block, err := PackPatterns(randomPatterns(c, 64, rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 0, len(c.Outputs))
	if allocs := testing.AllocsPerRun(50, func() {
		var err error
		out, err = fs.RunInto(block, out)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("FlatSim.RunInto allocates %v per run, want 0", allocs)
	}
}

// TestZeroFaninGateRejectedAtLoad is the regression for the mid-walk
// panic: a hand-built netlist with a fanin-less logic gate must be
// rejected by name at simulator construction, in every compiled form.
func TestZeroFaninGateRejectedAtLoad(t *testing.T) {
	build := func() *netlist.Circuit {
		c := netlist.New("broken")
		if _, err := c.AddGate("a", netlist.Input); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddGate("b", netlist.Input); err != nil {
			t.Fatal(err)
		}
		id, err := c.AddGate("g", netlist.And, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.MarkOutput("g"); err != nil {
			t.Fatal(err)
		}
		// AddGate enforces MinFanin, so a malformed netlist can only come
		// from direct struct surgery — exactly what a buggy generator or
		// loader would produce.
		c.Gates[id].Fanin = nil
		return c
	}
	if _, err := NewSimulator(build()); err == nil || !strings.Contains(err.Error(), `"g"`) {
		t.Errorf("NewSimulator: want named-gate error, got %v", err)
	}
	if _, err := NewFlat(build()); err == nil || !strings.Contains(err.Error(), `"g"`) {
		t.Errorf("NewFlat: want named-gate error, got %v", err)
	}
	if err := build().Validate(); err == nil || !strings.Contains(err.Error(), `"g"`) {
		t.Errorf("Validate: want named-gate error, got %v", err)
	}
}

// TestZeroValuePatternBlockRejected is the regression for the Mask()
// shift-wrap: a zero-value (or otherwise out-of-range Count) block must
// be rejected at every Run entry point instead of silently treating 64
// garbage lanes as valid patterns.
func TestZeroValuePatternBlockRejected(t *testing.T) {
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFlatSim(f)
	ws, err := NewWideSim(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	wlf, err := NewWideLaneForces(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	lf := NewLaneForces(c)
	blocks := []PatternBlock{
		{},
		{Inputs: make([]uint64, len(c.Inputs))}, // Count 0
		{Inputs: make([]uint64, len(c.Inputs)), Count: -3},   // negative wraps Mask
		{Inputs: make([]uint64, len(c.Inputs)), Count: 65},   // too many lanes
		{Inputs: make([]uint64, len(c.Inputs)-1), Count: 64}, // width mismatch
	}
	for i, b := range blocks {
		if _, err := sim.Run(b); err == nil {
			t.Errorf("block %d: Run accepted it", i)
		}
		if _, err := sim.RunWithFault(b, 0, -1, true); err == nil {
			t.Errorf("block %d: RunWithFault accepted it", i)
		}
		if _, err := sim.RunWithFaults(b, nil); err == nil {
			t.Errorf("block %d: RunWithFaults accepted it", i)
		}
		if _, err := sim.RunLaneForced(b, 0, lf, nil); err == nil {
			t.Errorf("block %d: RunLaneForced accepted it", i)
		}
		if _, err := fs.RunInto(b, nil); err == nil {
			t.Errorf("block %d: FlatSim.RunInto accepted it", i)
		}
		if _, err := ws.RunLaneForced(b, 0, wlf, nil); err == nil {
			t.Errorf("block %d: WideSim.RunLaneForced accepted it", i)
		}
	}
	// The boundary Counts stay accepted.
	for _, count := range []int{1, 64} {
		b := PatternBlock{Inputs: make([]uint64, len(c.Inputs)), Count: count}
		if _, err := sim.Run(b); err != nil {
			t.Errorf("Count %d rejected: %v", count, err)
		}
	}
}
