package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestRunWithFaultsSingleMatchesRunWithFault(t *testing.T) {
	c, err := netlist.RandomCircuit("r", 8, 80, 6, 17)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	patterns := make([]Pattern, 32)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		gate := rng.Intn(len(c.Gates))
		pin := -1
		if n := len(c.Gates[gate].Fanin); n > 0 && rng.Intn(2) == 1 {
			pin = rng.Intn(n)
		}
		stuck := rng.Intn(2) == 1
		single, err := sim.RunWithFault(block, gate, pin, stuck)
		if err != nil {
			t.Fatal(err)
		}
		singleCopy := append([]uint64(nil), single...)
		multi, err := sim.RunWithFaults(block, []Injection{{Gate: gate, Pin: pin, Stuck: stuck}})
		if err != nil {
			t.Fatal(err)
		}
		for o := range multi {
			if multi[o]&block.Mask() != singleCopy[o]&block.Mask() {
				t.Fatalf("trial %d output %d: multi %x single %x", trial, o, multi[o], singleCopy[o])
			}
		}
	}
}

func TestRunWithFaultsDominantStem(t *testing.T) {
	// Two faults where one is on a PO stem: the PO must read the stuck
	// value regardless of the other fault.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	g22, _ := c.GateByName("22")
	g10, _ := c.GateByName("10")
	patterns := make([]Pattern, 32)
	for v := 0; v < 32; v++ {
		p := make(Pattern, 5)
		for i := range p {
			p[i] = v>>i&1 == 1
		}
		patterns[v] = p
	}
	block, _ := PackPatterns(patterns)
	out, err := sim.RunWithFaults(block, []Injection{
		{Gate: g22, Pin: -1, Stuck: false},
		{Gate: g10, Pin: -1, Stuck: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&block.Mask() != 0 {
		t.Errorf("output 22 should be stuck at 0, got %b", out[0]&block.Mask())
	}
}

func TestRunWithFaultsErrors(t *testing.T) {
	sim, err := NewSimulator(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	p := make(Pattern, 5)
	block, _ := PackPatterns([]Pattern{p})
	if _, err := sim.RunWithFaults(block, []Injection{{Gate: 999, Pin: -1}}); err == nil {
		t.Error("bad gate should error")
	}
	if _, err := sim.RunWithFaults(block, []Injection{{Gate: 10, Pin: 9}}); err == nil {
		t.Error("bad pin should error")
	}
	short := PatternBlock{Inputs: []uint64{0}, Count: 1}
	if _, err := sim.RunWithFaults(short, nil); err == nil {
		t.Error("wrong width should error")
	}
}

func TestRunWithFaultsInputStem(t *testing.T) {
	// Stem fault on a primary input.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	in3, _ := c.GateByName("3")
	patterns := []Pattern{{true, true, false, true, true}}
	block, _ := PackPatterns(patterns)
	// Input 3 stuck at 1 with applied 0: gates 10 = NAND(1,3) sees 1,1.
	out, err := sim.RunWithFaults(block, []Injection{{Gate: in3, Pin: -1, Stuck: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Reference with every line at 1 after the stuck input: i1=1, i2=1,
	// i3=1 (stuck), i6=1, i7=1.
	nandTrue := false // NAND of two 1s
	n10, n11 := nandTrue, nandTrue
	n16 := !n11
	n19 := !n11
	n22 := !(n10 && n16)
	n23 := !(n16 && n19)
	if (out[0]&1 == 1) != n22 || (out[1]&1 == 1) != n23 {
		t.Error("input stem fault wrong")
	}
}
