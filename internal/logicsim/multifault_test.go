package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestRunWithFaultsSingleMatchesRunWithFault(t *testing.T) {
	c, err := netlist.RandomCircuit("r", 8, 80, 6, 17)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	patterns := make([]Pattern, 32)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		gate := rng.Intn(len(c.Gates))
		pin := -1
		if n := len(c.Gates[gate].Fanin); n > 0 && rng.Intn(2) == 1 {
			pin = rng.Intn(n)
		}
		stuck := rng.Intn(2) == 1
		single, err := sim.RunWithFault(block, gate, pin, stuck)
		if err != nil {
			t.Fatal(err)
		}
		singleCopy := append([]uint64(nil), single...)
		multi, err := sim.RunWithFaults(block, []Injection{{Gate: gate, Pin: pin, Stuck: stuck}})
		if err != nil {
			t.Fatal(err)
		}
		for o := range multi {
			if multi[o]&block.Mask() != singleCopy[o]&block.Mask() {
				t.Fatalf("trial %d output %d: multi %x single %x", trial, o, multi[o], singleCopy[o])
			}
		}
	}
}

func TestRunWithFaultsDominantStem(t *testing.T) {
	// Two faults where one is on a PO stem: the PO must read the stuck
	// value regardless of the other fault.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	g22, _ := c.GateByName("22")
	g10, _ := c.GateByName("10")
	patterns := make([]Pattern, 32)
	for v := 0; v < 32; v++ {
		p := make(Pattern, 5)
		for i := range p {
			p[i] = v>>i&1 == 1
		}
		patterns[v] = p
	}
	block, _ := PackPatterns(patterns)
	out, err := sim.RunWithFaults(block, []Injection{
		{Gate: g22, Pin: -1, Stuck: false},
		{Gate: g10, Pin: -1, Stuck: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&block.Mask() != 0 {
		t.Errorf("output 22 should be stuck at 0, got %b", out[0]&block.Mask())
	}
}

func TestRunWithFaultsErrors(t *testing.T) {
	sim, err := NewSimulator(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	p := make(Pattern, 5)
	block, _ := PackPatterns([]Pattern{p})
	if _, err := sim.RunWithFaults(block, []Injection{{Gate: 999, Pin: -1}}); err == nil {
		t.Error("bad gate should error")
	}
	if _, err := sim.RunWithFaults(block, []Injection{{Gate: 10, Pin: 9}}); err == nil {
		t.Error("bad pin should error")
	}
	short := PatternBlock{Inputs: []uint64{0}, Count: 1}
	if _, err := sim.RunWithFaults(short, nil); err == nil {
		t.Error("wrong width should error")
	}
}

func TestRunWithFaultsInputStem(t *testing.T) {
	// Stem fault on a primary input.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	in3, _ := c.GateByName("3")
	patterns := []Pattern{{true, true, false, true, true}}
	block, _ := PackPatterns(patterns)
	// Input 3 stuck at 1 with applied 0: gates 10 = NAND(1,3) sees 1,1.
	out, err := sim.RunWithFaults(block, []Injection{{Gate: in3, Pin: -1, Stuck: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Reference with every line at 1 after the stuck input: i1=1, i2=1,
	// i3=1 (stuck), i6=1, i7=1.
	nandTrue := false // NAND of two 1s
	n10, n11 := nandTrue, nandTrue
	n16 := !n11
	n19 := !n11
	n22 := !(n10 && n16)
	n23 := !(n16 && n19)
	if (out[0]&1 == 1) != n22 || (out[1]&1 == 1) != n23 {
		t.Error("input stem fault wrong")
	}
}

func TestRunLaneForcedMatchesPerMachineRunWithFaults(t *testing.T) {
	// Lane l of one RunLaneForced walk must equal bit p of a separate
	// RunWithFaults pass over that lane's fault set — the chip-parallel
	// transpose identity the tester's lot engine is built on.
	c, err := netlist.RandomCircuit("r", 9, 90, 7, 23)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	patterns := make([]Pattern, 17)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	// 12 machines in lanes 1..12, each with 1..5 random faults; lane 0
	// stays good.
	machines := make([][]Injection, 12)
	lf := NewLaneForces(c)
	for m := range machines {
		k := 1 + rng.Intn(5)
		for j := 0; j < k; j++ {
			gate := rng.Intn(len(c.Gates))
			pin := -1
			if n := len(c.Gates[gate].Fanin); n > 0 && rng.Intn(2) == 1 {
				pin = rng.Intn(n)
			}
			machines[m] = append(machines[m], Injection{Gate: gate, Pin: pin, Stuck: rng.Intn(2) == 1})
		}
		for _, f := range machines[m] {
			if err := lf.Add(f, 1<<uint(m+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	good, err := sim.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	goodCopy := append([]uint64(nil), good...)
	want := make([][]uint64, len(machines))
	for m := range machines {
		out, err := sim.RunWithFaults(block, machines[m])
		if err != nil {
			t.Fatal(err)
		}
		want[m] = append([]uint64(nil), out...)
	}
	var out []uint64
	for p := 0; p < block.Count; p++ {
		out, err = sim.RunLaneForced(block, p, lf, out)
		if err != nil {
			t.Fatal(err)
		}
		for o := range out {
			if got := out[o] & 1; got != goodCopy[o]>>uint(p)&1 {
				t.Fatalf("pattern %d output %d: lane 0 bit %d, good machine bit %d",
					p, o, got, goodCopy[o]>>uint(p)&1)
			}
			for m := range machines {
				got := out[o] >> uint(m+1) & 1
				if got != want[m][o]>>uint(p)&1 {
					t.Fatalf("pattern %d output %d machine %d: lane bit %d, RunWithFaults bit %d",
						p, o, m, got, want[m][o]>>uint(p)&1)
				}
			}
		}
	}
}

func TestLaneForcesLastValueWins(t *testing.T) {
	// Adding both polarities of one site to the same lane keeps the
	// last — the same order-dependent overwrite RunWithFaults applies to
	// a chip's fault list.
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	g22, _ := c.GateByName("22")
	block, _ := PackPatterns([]Pattern{make(Pattern, 5)})
	lf := NewLaneForces(c)
	if err := lf.Add(Injection{Gate: g22, Pin: -1, Stuck: false}, 1<<1); err != nil {
		t.Fatal(err)
	}
	if err := lf.Add(Injection{Gate: g22, Pin: -1, Stuck: true}, 1<<1); err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunLaneForced(block, 0, lf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]>>1&1 != 1 {
		t.Error("second add (stuck-at-1) should win the lane")
	}
	// And the multi-fault path agrees on the same double-injection.
	multi, err := sim.RunWithFaults(block, []Injection{
		{Gate: g22, Pin: -1, Stuck: false},
		{Gate: g22, Pin: -1, Stuck: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi[0]&1 != 1 {
		t.Error("RunWithFaults should keep the last polarity too")
	}
}

func TestRunLaneForcedErrors(t *testing.T) {
	c := netlist.C17()
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	lf := NewLaneForces(c)
	if err := lf.Add(Injection{Gate: 999, Pin: -1}, 1); err == nil {
		t.Error("bad gate should error")
	}
	if err := lf.Add(Injection{Gate: 10, Pin: 9}, 1); err == nil {
		t.Error("bad pin should error")
	}
	block, _ := PackPatterns([]Pattern{make(Pattern, 5)})
	if _, err := sim.RunLaneForced(block, 5, lf, nil); err == nil {
		t.Error("pattern outside block should error")
	}
	other, _ := netlist.RippleAdder(2)
	otherLf := NewLaneForces(other)
	if _, err := sim.RunLaneForced(block, 0, otherLf, nil); err == nil {
		t.Error("foreign forcing table should error")
	}
	short := PatternBlock{Inputs: []uint64{0}, Count: 1}
	if _, err := sim.RunLaneForced(short, 0, lf, nil); err == nil {
		t.Error("wrong width should error")
	}
}
