package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestCarryLookaheadAdderAdds(t *testing.T) {
	const w = 5
	c, err := netlist.CarryLookaheadAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<w; a += 3 {
		for b := 0; b < 1<<w; b += 5 {
			for cin := 0; cin < 2; cin++ {
				p := make(Pattern, 0, 2*w+1)
				for i := 0; i < w; i++ {
					p = append(p, a>>i&1 == 1, b>>i&1 == 1)
				}
				p = append(p, cin == 1)
				out, err := sim.RunSingle(p)
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for i := 0; i <= w; i++ {
					if out[i] {
						got |= 1 << i
					}
				}
				if want := a + b + cin; got != want {
					t.Fatalf("CLA %d+%d+%d = %d, got %d", a, b, cin, want, got)
				}
			}
		}
	}
}

func TestCLAMatchesRipple(t *testing.T) {
	// Same function, different structure: CLA and ripple adder must
	// agree on random inputs.
	const w = 8
	cla, err := netlist.CarryLookaheadAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	rca, err := netlist.RippleAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	simC, _ := NewSimulator(cla)
	simR, _ := NewSimulator(rca)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		p := make(Pattern, 2*w+1)
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		oc, err := simC.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		or, err := simR.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oc {
			if oc[i] != or[i] {
				t.Fatalf("trial %d output %d: CLA %v ripple %v", trial, i, oc[i], or[i])
			}
		}
	}
	// CLA must be shallower.
	dc, _ := cla.Depth()
	dr, _ := rca.Depth()
	if dc >= dr {
		t.Errorf("CLA depth %d should be below ripple depth %d", dc, dr)
	}
}

func TestALUSliceOperations(t *testing.T) {
	const w = 4
	c, err := netlist.ALUSlice(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<w; a++ {
		for b := 0; b < 1<<w; b++ {
			for op := 0; op < 4; op++ {
				p := make(Pattern, 0, 2*w+2)
				for i := 0; i < w; i++ {
					p = append(p, a>>i&1 == 1, b>>i&1 == 1)
				}
				p = append(p, op&1 == 1, op>>1&1 == 1) // op0, op1
				out, err := sim.RunSingle(p)
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for i := 0; i < w; i++ {
					if out[i] {
						got |= 1 << i
					}
				}
				cout := out[w]
				var want int
				wantCout := false
				switch op {
				case 0:
					want = a & b
				case 1:
					want = a | b
				case 2:
					want = a ^ b
				case 3:
					sum := a + b
					want = sum & (1<<w - 1)
					wantCout = sum>>w&1 == 1
				}
				if got != want || cout != wantCout {
					t.Fatalf("ALU op=%d a=%d b=%d: got %d cout=%v, want %d cout=%v",
						op, a, b, got, cout, want, wantCout)
				}
			}
		}
	}
}

func TestBarrelShifterShifts(t *testing.T) {
	const stages = 4
	c, err := netlist.BarrelShifter(stages)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << stages
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		data := rng.Intn(1 << n)
		shift := rng.Intn(n)
		p := make(Pattern, 0, n+stages)
		for i := 0; i < n; i++ {
			p = append(p, data>>i&1 == 1)
		}
		for s := 0; s < stages; s++ {
			p = append(p, shift>>s&1 == 1)
		}
		out, err := sim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := range out {
			if out[i] {
				got |= 1 << i
			}
		}
		want := data << shift & (1<<n - 1)
		if got != want {
			t.Fatalf("shift %016b << %d: got %016b want %016b", data, shift, got, want)
		}
	}
}

func TestDatapathReference(t *testing.T) {
	const w = 3
	c, err := netlist.Datapath(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	mask := 1<<w - 1
	for x := 0; x <= mask; x++ {
		for y := 0; y <= mask; y++ {
			for z := 0; z <= mask; z++ {
				for op := 0; op < 4; op++ {
					p := make(Pattern, 0, 3*w+2)
					for i := 0; i < w; i++ {
						p = append(p, x>>i&1 == 1)
					}
					for i := 0; i < w; i++ {
						p = append(p, y>>i&1 == 1)
					}
					for i := 0; i < w; i++ {
						p = append(p, z>>i&1 == 1)
					}
					p = append(p, op&1 == 1, op>>1&1 == 1)
					out, err := sim.RunSingle(p)
					if err != nil {
						t.Fatal(err)
					}
					prod := x * y
					a := prod & mask
					var want int
					switch op {
					case 0:
						want = a & z
					case 1:
						want = a | z
					case 2:
						want = a ^ z
					case 3:
						want = (a + z) & mask
					}
					got := 0
					for i := 0; i < w; i++ {
						if out[i] {
							got |= 1 << i
						}
					}
					if got != want {
						t.Fatalf("datapath x=%d y=%d z=%d op=%d: result %d, want %d",
							x, y, z, op, got, want)
					}
					// High product word.
					gotHigh := 0
					for i := 0; i < w; i++ {
						if out[w+i] {
							gotHigh |= 1 << i
						}
					}
					if wantHigh := prod >> w & mask; gotHigh != wantHigh {
						t.Fatalf("datapath high word: %d, want %d", gotHigh, wantHigh)
					}
					// Parity output.
					parity := false
					for i := 0; i < w; i++ {
						if want>>i&1 == 1 {
							parity = !parity
						}
					}
					if out[len(out)-1] != parity {
						t.Fatalf("datapath parity wrong")
					}
				}
			}
		}
	}
}
