package logicsim

// The 1-word (64-lane) specialization of the wide walk. This is the
// width the chip-parallel engines' dead-lane compaction collapses to
// once a batch's survivors fit in 64 lanes — on shallow circuits that
// is most of every batch's lifetime — so the walk must not pay the
// generic stride loop's per-word branch for a single word. The kernels
// mirror wide4.go with scalar ops.

// block1 returns slot's lane block as a plain word pointer.
func (s *WideSim) block1(slot int) *uint64 {
	return &s.val[slot]
}

// evalForcedSlot1 is evalForcedSlot at words == 1.
//
//repolint:hotpath
func (s *WideSim) evalForcedSlot1(slot int, lf *WideLaneForces) {
	dst := s.block1(slot)
	if lf.forced(slot) {
		if pins := lf.pins[slot]; len(pins) > 0 {
			s.evalStaged1(slot, dst, pins)
		} else {
			s.evalSlot1(slot, dst)
		}
		*dst = *dst&^lf.stem[2*slot] | lf.stem[2*slot+1]
		return
	}
	s.evalSlot1(slot, dst)
}

// evalSlot1 is the unforced gate evaluation at words == 1: one op
// switch, scalar word ops.
//
//repolint:hotpath
func (s *WideSim) evalSlot1(slot int, dst *uint64) {
	f := s.f
	val, fanin := s.val, f.fanin
	lo := f.faninAt[slot]
	switch f.op[slot] {
	case opBuf:
		*dst = val[fanin[lo]]
	case opNot:
		*dst = ^val[fanin[lo]]
	case opAnd2:
		*dst = val[fanin[lo]] & val[fanin[lo+1]]
	case opNand2:
		*dst = ^(val[fanin[lo]] & val[fanin[lo+1]])
	case opOr2:
		*dst = val[fanin[lo]] | val[fanin[lo+1]]
	case opNor2:
		*dst = ^(val[fanin[lo]] | val[fanin[lo+1]])
	case opXor2:
		*dst = val[fanin[lo]] ^ val[fanin[lo+1]]
	case opXnor2:
		*dst = ^(val[fanin[lo]] ^ val[fanin[lo+1]])
	default:
		*dst = evalFlatN(f.op[slot], fanin[lo:f.faninAt[slot+1]], val)
	}
}

// evalStaged1 evaluates a pin-forced slot at words == 1. Like the
// 4-word kernel, the ubiquitous 1- and 2-input shapes run inline on
// local copies; wider gates take the generic staged path.
func (s *WideSim) evalStaged1(slot int, dst *uint64, pins []widePin) {
	f := s.f
	lo, hi := f.faninAt[slot], f.faninAt[slot+1]
	op := f.op[slot]
	switch hi - lo {
	case 1:
		a := s.val[f.fanin[lo]]
		for i := range pins {
			pl := &pins[i]
			a = a&^pl.care[0] | pl.force[0]
		}
		if op == opNot {
			*dst = ^a
		} else { // opBuf: 1-fanin gates compile to buf or not only
			*dst = a
		}
	case 2:
		a := s.val[f.fanin[lo]]
		b := s.val[f.fanin[lo+1]]
		for i := range pins {
			pl := &pins[i]
			if pl.pin == 0 {
				a = a&^pl.care[0] | pl.force[0]
			} else {
				b = b&^pl.care[0] | pl.force[0]
			}
		}
		switch op {
		case opAnd2:
			*dst = a & b
		case opNand2:
			*dst = ^(a & b)
		case opOr2:
			*dst = a | b
		case opNor2:
			*dst = ^(a | b)
		case opXor2:
			*dst = a ^ b
		case opXnor2:
			*dst = ^(a ^ b)
		}
	default:
		s.evalStaged(slot, s.val[slot:slot+1], pins)
	}
}
