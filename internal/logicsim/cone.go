package logicsim

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Cone is the output cone of a fault site: every gate whose value the
// site can influence, and every primary output the site can reach. A
// single stuck-at fault anywhere on a gate (stem or input pin) can only
// disturb this set, so a fault simulator that has the good-machine
// values in hand needs to re-evaluate the cone and diff the reachable
// outputs — nothing else.
type Cone struct {
	// Gates lists the cone in topological evaluation order. The site
	// itself is always first (everything else is a strict successor).
	Gates []int
	// Outputs lists the indices into Circuit.Outputs (not gate IDs) of
	// the primary outputs reachable from the site, ascending.
	Outputs []int
	// OutPos[j] is the position within Gates of the gate driving
	// Outputs[j], so diffing needs no per-gate output lookup.
	OutPos []int
}

// ConeSet precomputes the output cone of every gate of a circuit. The
// set is immutable after construction and safe for concurrent readers,
// so one ConeSet can back a pool of per-goroutine simulators. Memory is
// O(sum of cone sizes), which is fine for the generated circuit
// families used here (thousands of gates); truly huge netlists would
// want a lazy variant.
type ConeSet struct {
	cones []Cone
}

// NewConeSet levelizes the circuit and builds all cones.
func NewConeSet(c *netlist.Circuit) (*ConeSet, error) {
	order, err := c.Order()
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	outIdx := make([]int, len(c.Gates))
	for i := range outIdx {
		outIdx[i] = -1
	}
	for oi, o := range c.Outputs {
		outIdx[o] = oi
	}
	cs := &ConeSet{cones: make([]Cone, len(c.Gates))}
	mark := make([]int, len(c.Gates))
	for i := range mark {
		mark[i] = -1
	}
	queue := make([]int, 0, len(c.Gates))
	for site := range c.Gates {
		queue = queue[:0]
		queue = append(queue, site)
		mark[site] = site
		// Collect topological positions, sort those as plain ints, and
		// map back through order — cheaper than a comparison sort with
		// an indirect less function.
		positions := []int{pos[site]}
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, fo := range c.Gates[id].Fanout {
				if mark[fo] != site {
					mark[fo] = site
					positions = append(positions, pos[fo])
					queue = append(queue, fo)
				}
			}
		}
		sort.Ints(positions)
		gates := make([]int, len(positions))
		var outs, outPos []int
		for i, p := range positions {
			g := order[p]
			gates[i] = g
			if outIdx[g] >= 0 {
				outs = append(outs, outIdx[g])
				outPos = append(outPos, i)
			}
		}
		// Keep Outputs ascending (consumers rely on it to find the
		// first strobed output), carrying the positions along.
		sort.Sort(&outPair{outs, outPos})
		cs.cones[site] = Cone{Gates: gates, Outputs: outs, OutPos: outPos}
	}
	return cs, nil
}

// outPair sorts the parallel (Outputs, OutPos) slices by output index.
type outPair struct{ outs, pos []int }

func (p *outPair) Len() int           { return len(p.outs) }
func (p *outPair) Less(a, b int) bool { return p.outs[a] < p.outs[b] }
func (p *outPair) Swap(a, b int) {
	p.outs[a], p.outs[b] = p.outs[b], p.outs[a]
	p.pos[a], p.pos[b] = p.pos[b], p.pos[a]
}

// ConeSetFor returns the circuit's cone set, building it on first use
// and caching it on the circuit (the cache is dropped automatically on
// mutation). Callers that fault-simulate the same circuit many times —
// ATPG fault-dropping loops, coverage ramps, benchmark reruns — pay
// for construction once. Safe for concurrent callers on a levelized
// circuit (see cacheMu), but must not race with mutation.
func ConeSetFor(c *netlist.Circuit) (*ConeSet, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	sc := cachesFor(c)
	if sc.cones != nil {
		return sc.cones, nil
	}
	cs, err := NewConeSet(c)
	if err != nil {
		return nil, err
	}
	sc.cones = cs
	return cs, nil
}

// Cone returns the output cone of the gate. Both stem faults and
// input-pin faults of a gate disturb the gate's own output first, so
// the same cone serves every fault on the gate.
func (cs *ConeSet) Cone(gate int) Cone { return cs.cones[gate] }

// Size reports the total number of (gate, cone) memberships, a measure
// of how much work cone-restricted simulation saves versus full-circuit
// passes (full = gates × gates).
func (cs *ConeSet) Size() int {
	n := 0
	for _, cone := range cs.cones {
		n += len(cone.Gates)
	}
	return n
}

// RunWithFaultCone re-simulates a single stuck-at fault on top of the
// good-machine state left in the simulator by the immediately preceding
// Run call: only the fault's output cone is re-evaluated (in place,
// with the good values saved and restored), and only the reachable
// primary outputs are diffed. An inactive fault — the forced value
// equals the good value on every pattern of the block — returns
// immediately without touching the cone.
//
// The returned word has bit p set iff pattern p of the block produces a
// different value on some reachable output; if outDiffs is non-nil it
// must have one slot per primary output, and the slots of every
// reachable output are overwritten with that output's diff word
// (unreachable outputs are left untouched — they cannot differ).
//
// The fault convention matches RunWithFault: pin < 0 is a stem fault on
// the gate's output, pin >= 0 forces input pin `pin` of gate `site`.
// After the call the simulator again holds the good-machine values, so
// cone runs for many faults can share one good-machine evaluation.
func (s *Simulator) RunWithFaultCone(site, pin int, stuck bool, cone Cone, outDiffs []uint64) (uint64, error) {
	if site < 0 || site >= len(s.c.Gates) {
		return 0, fmt.Errorf("logicsim: fault site %d out of range", site)
	}
	if len(cone.Gates) == 0 || cone.Gates[0] != site {
		return 0, fmt.Errorf("logicsim: cone does not start at fault site %d", site)
	}
	if s.mask == 0 {
		// A real Run always leaves a non-zero mask; catching the
		// violated precondition beats silently reporting every fault
		// undetected.
		return 0, fmt.Errorf("logicsim: RunWithFaultCone requires a preceding Run")
	}
	g := &s.c.Gates[site]
	var stuckWord uint64
	if stuck {
		stuckWord = ^uint64(0)
	}
	var v uint64
	if pin >= 0 {
		if pin >= len(g.Fanin) {
			return 0, fmt.Errorf("logicsim: gate %d has no pin %d", site, pin)
		}
		v = evalWithForcedPin(g.Type, g.Fanin, s.val, pin, stuckWord)
	} else {
		v = stuckWord // stem fault forces the output outright
	}
	if outDiffs != nil {
		for _, oi := range cone.Outputs {
			outDiffs[oi] = 0
		}
	}
	val := s.val
	if v == val[site] {
		return 0, nil // fault not activated by any pattern of the block
	}
	if cap(s.saved) < len(cone.Gates) {
		s.saved = make([]uint64, len(s.c.Gates))
	}
	saved := s.saved[:len(cone.Gates)]
	saved[0] = val[site]
	val[site] = v
	// One linear pass over the cone in topological order. The common
	// 1- and 2-input gates are evaluated inline; everything is plain
	// sequential loads/stores, which beats cleverer event scheduling
	// when 64 patterns ride in each word (some pattern almost always
	// keeps the fault effect alive).
	for k := 1; k < len(cone.Gates); k++ {
		id := cone.Gates[k]
		gg := &s.c.Gates[id]
		fanin := gg.Fanin
		var nv uint64
		switch len(fanin) {
		case 2:
			a, b := val[fanin[0]], val[fanin[1]]
			switch gg.Type {
			case netlist.And:
				nv = a & b
			case netlist.Nand:
				nv = ^(a & b)
			case netlist.Or:
				nv = a | b
			case netlist.Nor:
				nv = ^(a | b)
			case netlist.Xor:
				nv = a ^ b
			case netlist.Xnor:
				nv = ^(a ^ b)
			default:
				nv = eval(gg.Type, fanin, val)
			}
		case 1:
			switch gg.Type {
			case netlist.Not:
				nv = ^val[fanin[0]]
			case netlist.Buf:
				nv = val[fanin[0]]
			default:
				nv = eval(gg.Type, fanin, val)
			}
		default:
			nv = eval(gg.Type, fanin, val)
		}
		saved[k] = val[id]
		val[id] = nv
	}
	// Diff the reachable outputs directly via their cone positions,
	// then restore the good machine with a branch-free copy-back.
	var diff uint64
	for j, oi := range cone.Outputs {
		k := cone.OutPos[j]
		d := (val[cone.Gates[k]] ^ saved[k]) & s.mask
		diff |= d
		if outDiffs != nil {
			outDiffs[oi] = d
		}
	}
	for k, id := range cone.Gates {
		val[id] = saved[k]
	}
	return diff, nil
}
