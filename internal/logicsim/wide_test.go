package logicsim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// wideWidths is the lane-block width matrix the wide-layer property
// tests sweep: the specialized 1- and 4-word kernels, the 2-word width
// dead-lane compaction passes through, a generic stride width (5), and
// the maximum (8).
var wideWidths = []int{1, 2, 4, 5, 8}

// randomMachines builds n multi-fault machines of 1..5 random faults.
func randomMachines(c *netlist.Circuit, n int, rng *rand.Rand) [][]Injection {
	machines := make([][]Injection, n)
	for m := range machines {
		k := 1 + rng.Intn(5)
		for j := 0; j < k; j++ {
			gate := rng.Intn(len(c.Gates))
			pin := -1
			if nf := len(c.Gates[gate].Fanin); nf > 0 && rng.Intn(2) == 1 {
				pin = rng.Intn(nf)
			}
			machines[m] = append(machines[m], Injection{Gate: gate, Pin: pin, Stuck: rng.Intn(2) == 1})
		}
	}
	return machines
}

// TestWideRunLaneForcedMatchesRunWithFaults is the wide transpose
// identity: lane l of one WideSim.RunLaneForced walk must equal bit p
// of a separate RunWithFaults pass over that lane's fault set, for
// every lane-block width — including lanes beyond 63, which only exist
// in the wide layout.
func TestWideRunLaneForcedMatchesRunWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := netlist.RandomCircuit("r", 9, 90, 7, 23)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	block, err := PackPatterns(randomPatterns(c, 17, rng))
	if err != nil {
		t.Fatal(err)
	}
	for _, words := range wideWidths {
		ws, err := NewWideSim(f, words)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := NewWideLaneForces(f, words)
		if err != nil {
			t.Fatal(err)
		}
		// Scatter machines across the whole lane range so every word of
		// the block carries faults; lane 0 stays good.
		var lanes []int
		for lane := 1; lane < lf.Lanes(); lane += 1 + lane/2 {
			lanes = append(lanes, lane)
		}
		last := lf.Lanes() - 1
		if lanes[len(lanes)-1] != last {
			lanes = append(lanes, last)
		}
		machines := randomMachines(c, len(lanes), rng)
		for m, lane := range lanes {
			for _, inj := range machines[m] {
				if err := lf.Add(inj, lane); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := make([][]uint64, len(machines))
		for m := range machines {
			out, err := sim.RunWithFaults(block, machines[m])
			if err != nil {
				t.Fatal(err)
			}
			want[m] = append([]uint64(nil), out...)
		}
		good, err := sim.Run(block)
		if err != nil {
			t.Fatal(err)
		}
		goodCopy := append([]uint64(nil), good...)
		var out []uint64
		for p := 0; p < block.Count; p++ {
			out, err = ws.RunLaneForced(block, p, lf, out)
			if err != nil {
				t.Fatal(err)
			}
			for o := range c.Outputs {
				ob := out[o*words : (o+1)*words]
				if got := ob[0] & 1; got != goodCopy[o]>>uint(p)&1 {
					t.Fatalf("words=%d pattern %d output %d: lane 0 bit %d, good bit %d",
						words, p, o, got, goodCopy[o]>>uint(p)&1)
				}
				for m, lane := range lanes {
					got := ob[lane>>6] >> uint(lane&63) & 1
					if got != want[m][o]>>uint(p)&1 {
						t.Fatalf("words=%d pattern %d output %d lane %d: got %d, RunWithFaults %d",
							words, p, o, lane, got, want[m][o]>>uint(p)&1)
					}
				}
			}
		}
	}
}

// TestWideRunIntoMatchesSimulator pins the wide unforced walk to the
// Simulator: up to 64*W patterns in one wide block produce the same
// output bits as the 64-wide oracle, for every width.
func TestWideRunIntoMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := netlist.RandomCircuit("w", 8, 120, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, words := range wideWidths {
		n := 64*words - rng.Intn(17) // exercise a partial last word
		patterns := randomPatterns(c, n, rng)
		wb, err := PackWidePatterns(patterns, words)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := NewWideSim(f, words)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ws.RunInto(wb, nil)
		if err != nil {
			t.Fatal(err)
		}
		for base := 0; base < n; base += 64 {
			end := base + 64
			if end > n {
				end = n
			}
			block, err := PackPatterns(patterns[base:end])
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.Run(block)
			if err != nil {
				t.Fatal(err)
			}
			for o := range c.Outputs {
				for p := base; p < end; p++ {
					got := out[o*words+p>>6] >> uint(p&63) & 1
					if got != want[o]>>uint(p-base)&1 {
						t.Fatalf("words=%d output %d pattern %d: wide %d, simulator %d",
							words, o, p, got, want[o]>>uint(p-base)&1)
					}
				}
			}
		}
	}
}

// TestEvalSlotsForcedMatchesFullWalk pins the subset walk pf256 runs
// over union cones to the full forced walk: evaluating *all* slots via
// EvalSlotsForced (inputs re-broadcast from the good machine) must
// leave the same value plane as RunLaneForced.
func TestEvalSlotsForcedMatchesFullWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, err := netlist.RandomCircuit("e", 7, 70, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	good := NewFlatSim(f)
	block, err := PackPatterns(randomPatterns(c, 32, rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.RunInto(block, nil); err != nil {
		t.Fatal(err)
	}
	allSlots := make([]int32, f.Slots())
	for i := range allSlots {
		allSlots[i] = int32(i)
	}
	for _, words := range wideWidths {
		full, err := NewWideSim(f, words)
		if err != nil {
			t.Fatal(err)
		}
		subset, err := NewWideSim(f, words)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := NewWideLaneForces(f, words)
		if err != nil {
			t.Fatal(err)
		}
		machines := randomMachines(c, 3, rng)
		for m := range machines {
			lane := 1 + m*(lf.Lanes()-2)/2 // lanes 1, middle, last
			for _, inj := range machines[m] {
				if err := lf.Add(inj, lane); err != nil {
					t.Fatal(err)
				}
			}
		}
		for p := 0; p < block.Count; p += 7 {
			if _, err := full.RunLaneForced(block, p, lf, nil); err != nil {
				t.Fatal(err)
			}
			if err := subset.EvalSlotsForced(good, p, allSlots, lf); err != nil {
				t.Fatal(err)
			}
			for slot := 0; slot < f.Slots(); slot++ {
				fw, sw := full.ValueWords(slot), subset.ValueWords(slot)
				for k := 0; k < words; k++ {
					if fw[k] != sw[k] {
						t.Fatalf("words=%d pattern %d slot %d word %d: full %x, subset %x",
							words, p, slot, k, fw[k], sw[k])
					}
				}
			}
		}
	}
}

func TestWideLaneForcesLastValueWins(t *testing.T) {
	c := netlist.C17()
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	g22, _ := c.GateByName("22")
	block, err := PackPatterns(randomPatterns(c, 8, rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWideSim(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewWideLaneForces(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Both polarities on one lane: the second Add wins, same as a chip's
	// ordered fault list under RunWithFaults.
	const lane = 200
	if err := lf.Add(Injection{Gate: g22, Pin: -1, Stuck: true}, lane); err != nil {
		t.Fatal(err)
	}
	if err := lf.Add(Injection{Gate: g22, Pin: -1, Stuck: false}, lane); err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunWithFaults(block, []Injection{
		{Gate: g22, Pin: -1, Stuck: true},
		{Gate: g22, Pin: -1, Stuck: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < block.Count; p++ {
		out, err := ws.RunLaneForced(block, p, lf, nil)
		if err != nil {
			t.Fatal(err)
		}
		for o := range c.Outputs {
			got := out[o*4+lane>>6] >> uint(lane&63) & 1
			if got != want[o]>>uint(p)&1 {
				t.Fatalf("pattern %d output %d: lane %d bit %d, want %d", p, o, lane, got, want[o]>>uint(p)&1)
			}
		}
	}
}

// TestWideRunLaneForcedZeroAllocs pins the steady-state wide walk —
// the chipparallel256 inner loop — to zero allocations per pattern.
func TestWideRunLaneForcedZeroAllocs(t *testing.T) {
	c, err := netlist.RandomCircuit("a", 10, 200, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWideSim(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewWideLaneForces(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for m, machine := range randomMachines(c, 40, rng) {
		for _, inj := range machine {
			if err := lf.Add(inj, m+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	block, err := PackPatterns(randomPatterns(c, 64, rng))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 0, len(c.Outputs)*4)
	// Warm once so the staging scratch reaches its high-water mark.
	if out, err = ws.RunLaneForced(block, 0, lf, out); err != nil {
		t.Fatal(err)
	}
	p := 0
	if allocs := testing.AllocsPerRun(50, func() {
		var err error
		out, err = ws.RunLaneForced(block, p%block.Count, lf, out)
		if err != nil {
			t.Fatal(err)
		}
		p++
	}); allocs != 0 {
		t.Errorf("WideSim.RunLaneForced allocates %v per run, want 0", allocs)
	}
}

func TestPackWidePatternsRoundTrip(t *testing.T) {
	c := netlist.C17()
	rng := rand.New(rand.NewSource(6))
	patterns := randomPatterns(c, 300, rng)
	wb, err := PackWidePatterns(patterns, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wb.Count != 300 || wb.Words != 8 {
		t.Fatalf("packed shape %d/%d", wb.Count, wb.Words)
	}
	for p, pat := range patterns {
		for i, v := range pat {
			got := wb.Inputs[i*8+p>>6]>>uint(p&63)&1 == 1
			if got != v {
				t.Fatalf("pattern %d input %d: packed %v, want %v", p, i, got, v)
			}
		}
	}
	mask := wb.MaskInto(nil)
	set := 0
	for _, w := range mask {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if len(mask) != 8 || set != 300 {
		t.Fatalf("mask has %d bits over %d words, want 300 over 8", set, len(mask))
	}
}

// TestWidenBlock checks the PatternBlock→WidePatternBlock conversion:
// patterns land in word 0 of every input's lane block, padding lanes
// stay zero, and word counts outside 1..MaxLaneWords are rejected with
// the named ErrLaneWords — the regression for shape mistakes that
// previously surfaced as opaque walk errors.
func TestWidenBlock(t *testing.T) {
	c := netlist.C17()
	rng := rand.New(rand.NewSource(4))
	patterns := randomPatterns(c, 23, rng)
	b, err := PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, words := range []int{1, 3, 8} {
		wb, err := WidenBlock(b, words)
		if err != nil {
			t.Fatalf("words=%d: %v", words, err)
		}
		if wb.Count != b.Count || wb.Words != words {
			t.Fatalf("words=%d: widened shape %d/%d", words, wb.Count, wb.Words)
		}
		for i, w := range b.Inputs {
			if wb.Inputs[i*words] != w {
				t.Fatalf("words=%d input %d: word 0 is %x, want %x", words, i, wb.Inputs[i*words], w)
			}
			for k := 1; k < words; k++ {
				if wb.Inputs[i*words+k] != 0 {
					t.Fatalf("words=%d input %d: padding word %d not zero", words, i, k)
				}
			}
		}
		// The widened block simulates identically to the 64-lane one.
		ws, err := NewWideSim(f, words)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ws.RunInto(wb, nil)
		if err != nil {
			t.Fatal(err)
		}
		mask := b.Mask()
		for o := range want {
			if out[o*words]&mask != want[o]&mask {
				t.Fatalf("words=%d output %d: widened %x, simulator %x", words, o, out[o*words]&mask, want[o]&mask)
			}
		}
	}
	for _, words := range []int{0, -2, 9} {
		if _, err := WidenBlock(b, words); !errors.Is(err, ErrLaneWords) {
			t.Errorf("WidenBlock(%d words) error %v, want ErrLaneWords", words, err)
		}
	}
	if _, err := WidenBlock(PatternBlock{}, 4); err == nil {
		t.Error("zero-value PatternBlock accepted")
	}
	// The other wide-layer entry points wrap the same sentinel.
	if _, err := NewWideSim(f, 9); !errors.Is(err, ErrLaneWords) {
		t.Errorf("NewWideSim(9 words) error %v, want ErrLaneWords", err)
	}
	if _, err := NewWideLaneForces(f, 0); !errors.Is(err, ErrLaneWords) {
		t.Errorf("NewWideLaneForces(0 words) error %v, want ErrLaneWords", err)
	}
}

// TestWideLaneForcesResetKeepsLaneBounds is the compaction regression:
// an epoch Reset must empty the table without enlarging it, so a
// narrow (re-packed) table still rejects lane indices surviving from a
// wider layout.
func TestWideLaneForcesResetKeepsLaneBounds(t *testing.T) {
	c := netlist.C17()
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewWideLaneForces(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Lanes() != 64 {
		t.Fatalf("1-word table has %d lanes", lf.Lanes())
	}
	if err := lf.Add(Injection{Gate: 0, Pin: -1, Stuck: true}, 63); err != nil {
		t.Fatal(err)
	}
	if err := lf.Add(Injection{Gate: 0, Pin: -1, Stuck: true}, 64); err == nil {
		t.Error("lane 64 accepted by a 1-word table")
	}
	lf.Reset()
	if err := lf.Add(Injection{Gate: 0, Pin: -1, Stuck: true}, 64); err == nil {
		t.Error("lane 64 accepted by a 1-word table after Reset")
	}
	if err := lf.Add(Injection{Gate: 0, Pin: -1, Stuck: true}, 63); err != nil {
		t.Errorf("in-range lane rejected after Reset: %v", err)
	}
}

func TestWideValidationErrors(t *testing.T) {
	c := netlist.C17()
	f, err := NewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, words := range []int{0, -1, 9} {
		if _, err := NewWideSim(f, words); err == nil {
			t.Errorf("NewWideSim accepted %d words", words)
		}
		if _, err := NewWideLaneForces(f, words); err == nil {
			t.Errorf("NewWideLaneForces accepted %d words", words)
		}
		if _, err := PackWidePatterns(randomPatterns(c, 4, rand.New(rand.NewSource(1))), words); err == nil {
			t.Errorf("PackWidePatterns accepted %d words", words)
		}
	}
	ws, err := NewWideSim(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-value and malformed wide blocks are rejected like their
	// 64-lane counterparts.
	if _, err := ws.RunInto(WidePatternBlock{}, nil); err == nil {
		t.Error("zero-value WidePatternBlock accepted")
	}
	if _, err := ws.RunInto(WidePatternBlock{Inputs: make([]uint64, 5*4), Words: 4, Count: 257}, nil); err == nil {
		t.Error("oversized Count accepted")
	}
	if _, err := ws.RunInto(WidePatternBlock{Inputs: make([]uint64, 5*2), Words: 2, Count: 10}, nil); err == nil {
		t.Error("width-mismatched wide block accepted")
	}
	// Lane and shape checks on the forcing table.
	lf, err := NewWideLaneForces(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Add(Injection{Gate: 0, Pin: -1}, 256); err == nil {
		t.Error("out-of-range lane accepted")
	}
	if err := lf.Add(Injection{Gate: len(c.Gates), Pin: -1}, 1); err == nil {
		t.Error("out-of-range site accepted")
	}
	lf2, err := NewWideLaneForces(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	block, err := PackPatterns(randomPatterns(c, 4, rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.RunLaneForced(block, 0, lf2, nil); err == nil {
		t.Error("shape-mismatched forcing table accepted")
	}
	if _, err := ws.RunLaneForced(block, 9, lf, nil); err == nil {
		t.Error("out-of-range pattern accepted")
	}
}
