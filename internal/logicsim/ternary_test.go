package logicsim

import (
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func TestTritString(t *testing.T) {
	if F.String() != "0" || T.String() != "1" || X.String() != "X" {
		t.Error("trit strings")
	}
	if Trit(7).String() != "Trit(7)" {
		t.Error("unknown trit string")
	}
}

func TestTernaryTruthTables(t *testing.T) {
	// AND: 0 dominates, OR: 1 dominates, XOR: X poisons.
	andTab := map[[2]Trit]Trit{
		{F, F}: F, {F, T}: F, {F, X}: F,
		{T, F}: F, {T, T}: T, {T, X}: X,
		{X, F}: F, {X, T}: X, {X, X}: X,
	}
	orTab := map[[2]Trit]Trit{
		{F, F}: F, {F, T}: T, {F, X}: X,
		{T, F}: T, {T, T}: T, {T, X}: T,
		{X, F}: X, {X, T}: T, {X, X}: X,
	}
	xorTab := map[[2]Trit]Trit{
		{F, F}: F, {F, T}: T, {F, X}: X,
		{T, F}: T, {T, T}: F, {T, X}: X,
		{X, F}: X, {X, T}: X, {X, X}: X,
	}
	for in, want := range andTab {
		if got := AndT(in[0], in[1]); got != want {
			t.Errorf("AND%v = %v, want %v", in, got, want)
		}
	}
	for in, want := range orTab {
		if got := OrT(in[0], in[1]); got != want {
			t.Errorf("OR%v = %v, want %v", in, got, want)
		}
	}
	for in, want := range xorTab {
		if got := XorT(in[0], in[1]); got != want {
			t.Errorf("XOR%v = %v, want %v", in, got, want)
		}
	}
	if NotT(X) != X || NotT(F) != T || NotT(T) != F {
		t.Error("NOT table")
	}
}

func TestEvalTAllTypes(t *testing.T) {
	cases := []struct {
		typ  netlist.GateType
		in   []Trit
		want Trit
	}{
		{netlist.Buf, []Trit{T}, T},
		{netlist.Not, []Trit{T}, F},
		{netlist.And, []Trit{T, T, T}, T},
		{netlist.And, []Trit{T, F, X}, F},
		{netlist.Nand, []Trit{T, T}, F},
		{netlist.Or, []Trit{F, F, T}, T},
		{netlist.Nor, []Trit{F, F}, T},
		{netlist.Xor, []Trit{T, T, T}, T},
		{netlist.Xnor, []Trit{T, F}, F},
		{netlist.Xnor, []Trit{X, F}, X},
	}
	for _, c := range cases {
		if got := EvalT(c.typ, c.in); got != c.want {
			t.Errorf("EvalT(%v, %v) = %v, want %v", c.typ, c.in, got, c.want)
		}
	}
}

func TestTernaryAgreesWithBinary(t *testing.T) {
	// With no X inputs, the ternary simulator must agree with the
	// parallel simulator on every gate.
	c, err := netlist.RandomCircuit("r", 10, 200, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	tsim, err := NewTernarySim(c)
	if err != nil {
		t.Fatal(err)
	}
	bsim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint32) bool {
		in := make([]Trit, len(c.Inputs))
		p := make(Pattern, len(c.Inputs))
		s := seed
		for i := range in {
			s = s*1664525 + 1013904223
			bit := s>>16&1 == 1
			p[i] = bit
			if bit {
				in[i] = T
			} else {
				in[i] = F
			}
		}
		tv, err := tsim.Run(in)
		if err != nil {
			return false
		}
		if _, err := bsim.RunSingle(p); err != nil {
			return false
		}
		for id := range c.Gates {
			bin := bsim.Value(id)&1 == 1
			if tv[id] == X {
				return false // no X can appear with fully assigned inputs
			}
			if (tv[id] == T) != bin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTernaryXPropagation(t *testing.T) {
	// c17 with all-X inputs: every gate is X. With input 3=0, gates 10
	// and 11 become 1 regardless of other inputs.
	c := netlist.C17()
	sim, err := NewTernarySim(c)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := sim.Run([]Trit{X, X, X, X, X})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range c.Outputs {
		if vals[id] != X {
			t.Errorf("all-X inputs: output %s = %v", c.Gates[id].Name, vals[id])
		}
	}
	// Input order: 1,2,3,6,7. Set 3 = 0.
	vals, err = sim.Run([]Trit{X, X, F, X, X})
	if err != nil {
		t.Fatal(err)
	}
	g10, _ := c.GateByName("10")
	g11, _ := c.GateByName("11")
	if vals[g10] != T || vals[g11] != T {
		t.Errorf("NAND with a 0 input must be 1: g10=%v g11=%v", vals[g10], vals[g11])
	}
}

func TestTernaryWidthError(t *testing.T) {
	sim, err := NewTernarySim(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]Trit{X}); err == nil {
		t.Error("wrong width should error")
	}
}

func TestEventSimMatchesLevelized(t *testing.T) {
	c, err := netlist.RandomCircuit("r", 10, 300, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	esim, err := NewEventSim(c)
	if err != nil {
		t.Fatal(err)
	}
	bsim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	s := uint32(5)
	prev := make(Pattern, len(c.Inputs))
	for trial := 0; trial < 50; trial++ {
		p := make(Pattern, len(c.Inputs))
		copy(p, prev)
		// Flip a few bits to exercise the event path.
		for k := 0; k < 3; k++ {
			s = s*1664525 + 1013904223
			p[int(s>>8)%len(p)] = s>>20&1 == 1
		}
		got, err := esim.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := bsim.RunSingle(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d output %d: event %v levelized %v", trial, i, got[i], want[i])
			}
		}
		prev = p
	}
}

func TestEventSimActivitySavings(t *testing.T) {
	// Flipping one input must evaluate far fewer gates than the full
	// circuit on average.
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		t.Fatal(err)
	}
	esim, err := NewEventSim(c)
	if err != nil {
		t.Fatal(err)
	}
	p := make(Pattern, len(c.Inputs))
	if _, err := esim.Run(p); err != nil {
		t.Fatal(err)
	}
	full := esim.Evals
	// Single-bit change.
	p2 := make(Pattern, len(p))
	copy(p2, p)
	p2[0] = true
	if _, err := esim.Run(p2); err != nil {
		t.Fatal(err)
	}
	delta := esim.Evals - full
	if delta >= full {
		t.Errorf("event sim evaluated %d gates for a 1-bit change (full = %d)", delta, full)
	}
}

func TestEventSimWidthError(t *testing.T) {
	esim, err := NewEventSim(netlist.C17())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := esim.Run(Pattern{true}); err == nil {
		t.Error("wrong width should error")
	}
}

func BenchmarkEventSimOneBitFlips(b *testing.B) {
	c, err := netlist.ArrayMultiplier(12)
	if err != nil {
		b.Fatal(err)
	}
	esim, err := NewEventSim(c)
	if err != nil {
		b.Fatal(err)
	}
	p := make(Pattern, len(c.Inputs))
	if _, err := esim.Run(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p[i%len(p)] = !p[i%len(p)]
		if _, err := esim.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
