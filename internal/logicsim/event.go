package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// EventSim is an event-driven scalar simulator: after the first full
// evaluation, subsequent patterns only re-evaluate gates downstream of
// inputs that changed. It counts gate evaluations so experiments can
// report simulation activity.
type EventSim struct {
	c       *netlist.Circuit
	level   []int
	val     []bool
	primed  bool
	inputs  []bool
	Evals   int // cumulative gate evaluations
	queue   [][]int
	inQueue []bool
	maxLvl  int
}

// NewEventSim prepares an event-driven simulator.
func NewEventSim(c *netlist.Circuit) (*EventSim, error) {
	if err := c.Levelize(); err != nil {
		return nil, err
	}
	depth, err := c.Depth()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(c.Gates))
	for i := range c.Gates {
		l, err := c.Level(i)
		if err != nil {
			return nil, err
		}
		lv[i] = l
	}
	return &EventSim{
		c:       c,
		level:   lv,
		val:     make([]bool, len(c.Gates)),
		inputs:  make([]bool, len(c.Inputs)),
		queue:   make([][]int, depth+1),
		inQueue: make([]bool, len(c.Gates)),
		maxLvl:  depth,
	}, nil
}

// evalBool evaluates a gate over boolean fanin values.
func evalBool(t netlist.GateType, fanin []int, val []bool) bool {
	switch t {
	case netlist.Buf:
		return val[fanin[0]]
	case netlist.Not:
		return !val[fanin[0]]
	case netlist.And, netlist.Nand:
		v := true
		for _, f := range fanin {
			v = v && val[f]
		}
		if t == netlist.Nand {
			return !v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := false
		for _, f := range fanin {
			v = v || val[f]
		}
		if t == netlist.Nor {
			return !v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := false
		for _, f := range fanin {
			v = v != val[f]
		}
		if t == netlist.Xnor {
			return !v
		}
		return v
	default:
		panic(fmt.Sprintf("logicsim: cannot evaluate gate type %v", t))
	}
}

// Run simulates one pattern and returns output values. The first call
// evaluates everything; later calls schedule only affected gates.
func (e *EventSim) Run(p Pattern) ([]bool, error) {
	if len(p) != len(e.c.Inputs) {
		return nil, fmt.Errorf("logicsim: pattern width %d for %d inputs", len(p), len(e.c.Inputs))
	}
	if !e.primed {
		order, err := e.c.Order()
		if err != nil {
			return nil, err
		}
		for i, id := range e.c.Inputs {
			e.val[id] = p[i]
			e.inputs[i] = p[i]
		}
		for _, id := range order {
			g := &e.c.Gates[id]
			if g.Type == netlist.Input {
				continue
			}
			e.val[id] = evalBool(g.Type, g.Fanin, e.val)
			e.Evals++
		}
		e.primed = true
		return e.outputs(), nil
	}
	// Schedule fanouts of changed inputs.
	for i, id := range e.c.Inputs {
		if p[i] != e.inputs[i] {
			e.inputs[i] = p[i]
			e.val[id] = p[i]
			for _, out := range e.c.Gates[id].Fanout {
				e.schedule(out)
			}
		}
	}
	// Process levels in order.
	for lvl := 0; lvl <= e.maxLvl; lvl++ {
		q := e.queue[lvl]
		e.queue[lvl] = q[:0]
		for _, id := range q {
			e.inQueue[id] = false
			g := &e.c.Gates[id]
			nv := evalBool(g.Type, g.Fanin, e.val)
			e.Evals++
			if nv != e.val[id] {
				e.val[id] = nv
				for _, out := range g.Fanout {
					e.schedule(out)
				}
			}
		}
	}
	return e.outputs(), nil
}

func (e *EventSim) schedule(id int) {
	if !e.inQueue[id] {
		e.inQueue[id] = true
		lvl := e.level[id]
		e.queue[lvl] = append(e.queue[lvl], id)
	}
}

func (e *EventSim) outputs() []bool {
	out := make([]bool, len(e.c.Outputs))
	for i, id := range e.c.Outputs {
		out[i] = e.val[id]
	}
	return out
}
