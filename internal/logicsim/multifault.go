package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Injection is one stuck-at fault to inject during simulation. Pin < 0
// places the fault on the gate output; otherwise on that input pin.
// (It mirrors fault.Fault without importing it, keeping this package a
// pure simulation substrate.)
type Injection struct {
	Gate  int
	Pin   int
	Stuck bool
}

// LaneForces is an array-indexed multi-fault forcing table over the 64
// bit-lanes of a word: each fault site carries a careMask (which lanes
// are forced there) and forceBits (the stuck values of those lanes),
// applied as v = (v &^ careMask) | forceBits. Stem forces overwrite a
// gate's output word; pin forces overwrite one fanin word during that
// gate's evaluation only (the fanout-branch semantics).
//
// The lanes parameter of Add is what generalizes the table across the
// two word layouts the simulator supports: RunWithFaults forces every
// lane of a 64-pattern word (one faulty machine, 64 patterns), while
// the tester's chip-parallel lot engine forces one lane per chip (64
// machines, one pattern) — up to 63 multi-fault chips plus the good
// machine in lane 0, sharing one table per batch.
//
// Adding the same site twice with overlapping lanes keeps the *last*
// value on the overlap, matching how a physical short list is applied
// in order. Reset clears the table in O(1) via an epoch bump; the
// per-gate arrays are allocated once and reused, which is what replaces
// the three per-call maps RunWithFaults used to build. A LaneForces is
// not safe for concurrent use.
type LaneForces struct {
	c     *netlist.Circuit
	epoch int
	mark  []int // per gate: the epoch this gate's entries belong to
	// stemCare/stemForce are the output-stem masks; stemCare == 0 means
	// no stem fault on the gate this epoch.
	stemCare  []uint64
	stemForce []uint64
	// pins holds the per-input-pin masks of each gate, truncated to
	// zero length when the gate is first touched in a new epoch.
	pins [][]pinLane
}

// pinLane is one forced input pin of a gate.
type pinLane struct {
	pin         int
	care, force uint64
}

// NewLaneForces allocates a forcing table sized for the circuit.
func NewLaneForces(c *netlist.Circuit) *LaneForces {
	n := len(c.Gates)
	return &LaneForces{
		c:         c,
		epoch:     1,
		mark:      make([]int, n),
		stemCare:  make([]uint64, n),
		stemForce: make([]uint64, n),
		pins:      make([][]pinLane, n),
	}
}

// Reset empties the table for reuse. O(1): stale entries are ignored by
// the epoch marks and overwritten on the next Add.
func (lf *LaneForces) Reset() { lf.epoch++ }

// Add forces the fault onto the given lanes (a bitmask of the word's
// bit-lanes carrying a machine that has this fault). On lanes already
// forced at the same site, the new stuck value wins.
func (lf *LaneForces) Add(f Injection, lanes uint64) error {
	if f.Gate < 0 || f.Gate >= len(lf.c.Gates) {
		return fmt.Errorf("logicsim: fault site %d out of range", f.Gate)
	}
	if lf.mark[f.Gate] != lf.epoch {
		lf.mark[f.Gate] = lf.epoch
		lf.stemCare[f.Gate] = 0
		lf.stemForce[f.Gate] = 0
		lf.pins[f.Gate] = lf.pins[f.Gate][:0]
	}
	var force uint64
	if f.Stuck {
		force = lanes
	}
	if f.Pin < 0 {
		lf.stemCare[f.Gate] |= lanes
		lf.stemForce[f.Gate] = lf.stemForce[f.Gate]&^lanes | force
		return nil
	}
	if f.Pin >= len(lf.c.Gates[f.Gate].Fanin) {
		return fmt.Errorf("logicsim: gate %d has no pin %d", f.Gate, f.Pin)
	}
	for i := range lf.pins[f.Gate] {
		if pl := &lf.pins[f.Gate][i]; pl.pin == f.Pin {
			pl.care |= lanes
			pl.force = pl.force&^lanes | force
			return nil
		}
	}
	lf.pins[f.Gate] = append(lf.pins[f.Gate], pinLane{pin: f.Pin, care: lanes, force: force})
	return nil
}

// RunWithFaults simulates the block with *all* the given faults present
// simultaneously — the multiple-fault machine a physically defective
// chip actually is. The paper's model treats the chip's defects as
// equivalent to n single stuck faults; the tester substrate uses this
// to exercise that assumption honestly rather than assuming single
// faults. The forcing table is array-indexed scratch owned by the
// simulator, so repeated calls allocate nothing.
func (s *Simulator) RunWithFaults(block PatternBlock, faults []Injection) ([]uint64, error) {
	return s.RunWithFaultsInto(block, faults, nil)
}

// RunWithFaultsInto is RunWithFaults appending the output words to out
// (reusing its capacity), the allocation-free variant the ATE's serial
// oracle loops on.
func (s *Simulator) RunWithFaultsInto(block PatternBlock, faults []Injection, out []uint64) ([]uint64, error) {
	if err := block.validate(len(s.c.Inputs)); err != nil {
		return nil, err
	}
	if s.forces == nil {
		s.forces = NewLaneForces(s.c)
	}
	s.forces.Reset()
	for _, f := range faults {
		// The fault is present in every pattern of the block: force all
		// 64 pattern-lanes.
		if err := s.forces.Add(f, ^uint64(0)); err != nil {
			return nil, err
		}
	}
	for i, id := range s.c.Inputs {
		s.val[id] = s.forces.forceWord(id, block.Inputs[i])
	}
	s.runForced(s.forces)
	out = out[:0]
	for _, id := range s.c.Outputs {
		out = append(out, s.val[id])
	}
	return out, nil
}

// RunLaneForced evaluates pattern p of the block across 64 machine
// lanes in one circuit walk: every lane sees the same input bits
// (broadcast from bit p of each packed input word), and each forced
// site applies its lane masks as v = (v &^ care) | force. Lanes whose
// machines carry no fault — lane 0 by the tester's convention —
// compute the good circuit. Output words are appended to out (reused
// when capacity allows) in primary-output order.
//
// This is the chip-parallel lot engine's inner loop: one walk per
// pattern evaluates the good machine plus up to 63 defective chips.
//
//repolint:hotpath
func (s *Simulator) RunLaneForced(block PatternBlock, p int, forces *LaneForces, out []uint64) ([]uint64, error) {
	if err := block.validate(len(s.c.Inputs)); err != nil {
		return nil, err
	}
	if p < 0 || p >= block.Count {
		return nil, errPatternRange(p, block.Count)
	}
	if forces.c != s.c {
		return nil, errForeignForces()
	}
	for i, id := range s.c.Inputs {
		// Broadcast bit p across all 64 lanes, then force.
		s.val[id] = forces.forceWord(id, -(block.Inputs[i] >> uint(p) & 1))
	}
	s.runForced(forces)
	out = out[:0]
	for _, id := range s.c.Outputs {
		out = append(out, s.val[id])
	}
	return out, nil
}

// errPatternRange and errForeignForces build RunLaneForced's
// validation errors outside the annotated hot functions, so the
// formatting machinery stays off the hot path.
func errPatternRange(p, count int) error {
	return fmt.Errorf("logicsim: pattern %d outside block of %d", p, count)
}

func errForeignForces() error {
	return fmt.Errorf("logicsim: forcing table built for a different circuit")
}

// forceWord applies the gate's stem masks to a value word, if any.
//
//repolint:hotpath
func (lf *LaneForces) forceWord(id int, v uint64) uint64 {
	if lf.mark[id] == lf.epoch {
		if care := lf.stemCare[id]; care != 0 {
			v = v&^care | lf.stemForce[id]
		}
	}
	return v
}

// runForced is the shared forced-evaluation walk: inputs are already
// loaded (and stem-forced) in s.val; every other gate evaluates with
// its pin forces staged and its stem force overwriting the result.
//
//repolint:hotpath
func (s *Simulator) runForced(lf *LaneForces) {
	for _, id := range s.order {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		var v uint64
		if lf.mark[id] == lf.epoch {
			if pins := lf.pins[id]; len(pins) > 0 {
				v = evalWithLanePins(g.Type, g.Fanin, s.val, pins)
			} else {
				v = eval(g.Type, g.Fanin, s.val)
			}
			if care := lf.stemCare[id]; care != 0 {
				v = v&^care | lf.stemForce[id]
			}
		} else {
			v = eval(g.Type, g.Fanin, s.val)
		}
		s.val[id] = v
	}
}

// evalWithLanePins evaluates a gate with some fanin words lane-forced.
// In a chip-parallel batch most of the circuit carries forces, so this
// runs for a large fraction of gates per walk: the ubiquitous 1- and
// 2-input shapes are evaluated inline, and only wider gates pay the
// staged EvalWords path.
//
//repolint:hotpath
func evalWithLanePins(t netlist.GateType, fanin []int, val []uint64, pins []pinLane) uint64 {
	switch len(fanin) {
	case 1:
		w := val[fanin[0]]
		for _, pl := range pins {
			w = w&^pl.care | pl.force
		}
		switch t {
		case netlist.Buf, netlist.And, netlist.Or, netlist.Xor:
			return w
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			return ^w
		}
	case 2:
		a, b := val[fanin[0]], val[fanin[1]]
		for _, pl := range pins {
			if pl.pin == 0 {
				a = a&^pl.care | pl.force
			} else {
				b = b&^pl.care | pl.force
			}
		}
		switch t {
		case netlist.And:
			return a & b
		case netlist.Nand:
			return ^(a & b)
		case netlist.Or:
			return a | b
		case netlist.Nor:
			return ^(a | b)
		case netlist.Xor:
			return a ^ b
		case netlist.Xnor:
			return ^(a ^ b)
		}
	}
	var stage [8]uint64
	words := stage[:0]
	if len(fanin) > len(stage) {
		words = make([]uint64, 0, len(fanin))
	}
	for _, f := range fanin {
		words = append(words, val[f])
	}
	for _, pl := range pins {
		words[pl.pin] = words[pl.pin]&^pl.care | pl.force
	}
	return EvalWords(t, words)
}
