package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Injection is one stuck-at fault to inject during simulation. Pin < 0
// places the fault on the gate output; otherwise on that input pin.
// (It mirrors fault.Fault without importing it, keeping this package a
// pure simulation substrate.)
type Injection struct {
	Gate  int
	Pin   int
	Stuck bool
}

// RunWithFaults simulates the block with *all* the given faults present
// simultaneously — the multiple-fault machine a physically defective
// chip actually is. The paper's model treats the chip's defects as
// equivalent to n single stuck faults; the tester substrate uses this
// to exercise that assumption honestly rather than assuming single
// faults.
func (s *Simulator) RunWithFaults(block PatternBlock, faults []Injection) ([]uint64, error) {
	if len(block.Inputs) != len(s.c.Inputs) {
		return nil, fmt.Errorf("logicsim: block has %d inputs, circuit %d", len(block.Inputs), len(s.c.Inputs))
	}
	// Index the injections.
	stem := make(map[int]uint64, len(faults)) // gate -> forced word
	hasStem := make(map[int]bool, len(faults))
	pinForce := make(map[int]map[int]uint64) // gate -> pin -> forced word
	for _, f := range faults {
		if f.Gate < 0 || f.Gate >= len(s.c.Gates) {
			return nil, fmt.Errorf("logicsim: fault site %d out of range", f.Gate)
		}
		var w uint64
		if f.Stuck {
			w = ^uint64(0)
		}
		if f.Pin < 0 {
			stem[f.Gate] = w
			hasStem[f.Gate] = true
		} else {
			if f.Pin >= len(s.c.Gates[f.Gate].Fanin) {
				return nil, fmt.Errorf("logicsim: gate %d has no pin %d", f.Gate, f.Pin)
			}
			m, ok := pinForce[f.Gate]
			if !ok {
				m = make(map[int]uint64)
				pinForce[f.Gate] = m
			}
			m[f.Pin] = w
		}
	}
	for i, id := range s.c.Inputs {
		v := block.Inputs[i]
		if hasStem[id] {
			v = stem[id]
		}
		s.val[id] = v
	}
	for _, id := range s.order {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		var v uint64
		if forces, ok := pinForce[id]; ok {
			v = evalWithForcedPins(g.Type, g.Fanin, s.val, forces)
		} else {
			v = eval(g.Type, g.Fanin, s.val)
		}
		if hasStem[id] {
			v = stem[id]
		}
		s.val[id] = v
	}
	out := make([]uint64, len(s.c.Outputs))
	for i, id := range s.c.Outputs {
		out[i] = s.val[id]
	}
	return out, nil
}

// evalWithForcedPins evaluates a gate with several fanin words forced.
func evalWithForcedPins(t netlist.GateType, fanin []int, val []uint64, forces map[int]uint64) uint64 {
	get := func(i int) uint64 {
		if w, ok := forces[i]; ok {
			return w
		}
		return val[fanin[i]]
	}
	switch t {
	case netlist.Buf:
		return get(0)
	case netlist.Not:
		return ^get(0)
	case netlist.And, netlist.Nand:
		v := get(0)
		for i := 1; i < len(fanin); i++ {
			v &= get(i)
		}
		if t == netlist.Nand {
			return ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := get(0)
		for i := 1; i < len(fanin); i++ {
			v |= get(i)
		}
		if t == netlist.Nor {
			return ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := get(0)
		for i := 1; i < len(fanin); i++ {
			v ^= get(i)
		}
		if t == netlist.Xnor {
			return ^v
		}
		return v
	default:
		panic(fmt.Sprintf("logicsim: cannot evaluate gate type %v", t))
	}
}
