package logicsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// BenchmarkWideWidths measures the forced wide walk per lane across the
// dispatched widths: the specialized kernels (W=1 scalar, W=4 unroll)
// against the generic stride loops (W=2, 5, 8). The per-lane rate is
// the number that decides whether a width deserves its own unrolled
// kernel — the basis for the dispatch note on evalForcedSlot in
// wide.go.
func BenchmarkWideWidths(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	f, err := FlatFor(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	patterns := make([]Pattern, 64)
	for i := range patterns {
		p := make(Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		patterns[i] = p
	}
	block, err := PackPatterns(patterns)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 5, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			sim, err := NewWideSim(f, w)
			if err != nil {
				b.Fatal(err)
			}
			lf, err := NewWideLaneForces(f, w)
			if err != nil {
				b.Fatal(err)
			}
			// Lane 0 stays good-machine; every other lane carries one
			// stuck fault, the engines' batch shape.
			for lane := 1; lane < lf.Lanes(); lane++ {
				g := rng.Intn(len(c.Gates))
				if err := lf.Add(Injection{Gate: g, Pin: -1, Stuck: lane%2 == 0}, lane); err != nil {
					b.Fatal(err)
				}
			}
			var out []uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err = sim.RunLaneForced(block, i%block.Count, lf, out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sim.Lanes()), "ns/lane")
		})
	}
}
