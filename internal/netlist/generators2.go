package netlist

import "fmt"

// CarryLookaheadAdder returns a width-bit adder with single-level
// carry-lookahead: generate/propagate terms feed explicit carry
// equations c_{i+1} = g_i OR (p_i AND c_i) expanded into two-level
// logic. Compared to RippleAdder it is shallower and much heavier on
// wide-fanin AND/OR gates, exercising fanout-rich fault collapsing.
func CarryLookaheadAdder(width int) (*Circuit, error) {
	if width < 1 || width > 16 {
		return nil, fmt.Errorf("netlist: CLA width must be in [1,16], got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("cla%d", width))}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("a%d", i), Input)
		g.add(fmt.Sprintf("b%d", i), Input)
	}
	cin := g.add("cin", Input)
	// Generate and propagate per bit.
	gen := make([]string, width)
	prop := make([]string, width)
	for i := 0; i < width; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		gen[i] = g.add(fmt.Sprintf("g%d", i), And, a, b)
		prop[i] = g.add(fmt.Sprintf("p%d", i), Xor, a, b)
	}
	// Expanded carries: c_{i+1} = OR over j<=i of (g_j AND p_{j+1..i})
	// plus the cin term (cin AND p_0..p_i).
	carries := make([]string, width+1)
	carries[0] = cin
	for i := 0; i < width; i++ {
		var terms []string
		// cin term.
		cinTerm := []string{cin}
		cinTerm = append(cinTerm, prop[:i+1]...)
		terms = append(terms, g.add(fmt.Sprintf("c%d_cin", i+1), And, cinTerm...))
		for j := 0; j <= i; j++ {
			if j == i {
				terms = append(terms, gen[j])
				continue
			}
			andTerm := []string{gen[j]}
			andTerm = append(andTerm, prop[j+1:i+1]...)
			terms = append(terms, g.add(fmt.Sprintf("c%d_t%d", i+1, j), And, andTerm...))
		}
		if len(terms) == 1 {
			carries[i+1] = terms[0]
		} else {
			carries[i+1] = g.add(fmt.Sprintf("c%d", i+1), Or, terms...)
		}
	}
	for i := 0; i < width; i++ {
		g.output(g.add(fmt.Sprintf("s%d", i), Xor, prop[i], carries[i]))
	}
	g.output(rename(g, carries[width], "cout"))
	return g.finish()
}

// ALUSlice returns a width-bit ALU supporting four operations selected
// by (op1, op0): 00 = AND, 01 = OR, 10 = XOR, 11 = ADD (ripple). A
// classic datapath block mixing random-testable logic with a
// mode-selected adder, like the function generators in a 74181.
func ALUSlice(width int) (*Circuit, error) {
	if width < 1 {
		return nil, fmt.Errorf("netlist: ALU width must be >= 1, got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("alu%d", width))}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("a%d", i), Input)
		g.add(fmt.Sprintf("b%d", i), Input)
	}
	op0 := g.add("op0", Input)
	op1 := g.add("op1", Input)
	nop0 := g.add("nop0", Not, op0)
	nop1 := g.add("nop1", Not, op1)
	selAnd := g.add("sel_and", And, nop1, nop0)
	selOr := g.add("sel_or", And, nop1, op0)
	selXor := g.add("sel_xor", And, op1, nop0)
	selAdd := g.add("sel_add", And, op1, op0)
	carry := ""
	for i := 0; i < width; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		andB := g.add(fmt.Sprintf("fand%d", i), And, a, b)
		orB := g.add(fmt.Sprintf("for%d", i), Or, a, b)
		xorB := g.add(fmt.Sprintf("fxor%d", i), Xor, a, b)
		// Adder bit.
		var sum string
		prefix := fmt.Sprintf("fadd%d", i)
		if carry == "" {
			sum = xorB
			carry = andB
		} else {
			sum = g.add(prefix+"_s", Xor, xorB, carry)
			c1 := g.add(prefix+"_c1", And, xorB, carry)
			carry = g.add(prefix+"_c", Or, c1, andB)
		}
		// Mux the four functions.
		m0 := g.add(fmt.Sprintf("m%d_and", i), And, andB, selAnd)
		m1 := g.add(fmt.Sprintf("m%d_or", i), And, orB, selOr)
		m2 := g.add(fmt.Sprintf("m%d_xor", i), And, xorB, selXor)
		m3 := g.add(fmt.Sprintf("m%d_add", i), And, sum, selAdd)
		o01 := g.add(fmt.Sprintf("m%d_01", i), Or, m0, m1)
		o23 := g.add(fmt.Sprintf("m%d_23", i), Or, m2, m3)
		g.output(g.add(fmt.Sprintf("y%d", i), Or, o01, o23))
	}
	cout := g.add("cout_gated", And, carry, selAdd)
	g.output(rename(g, cout, "cout"))
	return g.finish()
}

// BarrelShifter returns a 2^stages-bit logical left barrel shifter:
// data inputs d0.., shift amount s0..s{stages-1}; output q0..; vacated
// positions fill with zero (implemented by gating with the select).
func BarrelShifter(stages int) (*Circuit, error) {
	if stages < 1 || stages > 6 {
		return nil, fmt.Errorf("netlist: barrel shifter stages must be in [1,6], got %d", stages)
	}
	g := &gensym{c: New(fmt.Sprintf("bshift%d", stages))}
	n := 1 << stages
	layer := make([]string, n)
	for i := 0; i < n; i++ {
		layer[i] = g.add(fmt.Sprintf("d%d", i), Input)
	}
	sel := make([]string, stages)
	seln := make([]string, stages)
	for s := 0; s < stages; s++ {
		sel[s] = g.add(fmt.Sprintf("s%d", s), Input)
		seln[s] = g.add(fmt.Sprintf("sn%d", s), Not, sel[s])
	}
	for s := 0; s < stages; s++ {
		shift := 1 << s
		next := make([]string, n)
		for i := 0; i < n; i++ {
			keep := g.add(fmt.Sprintf("st%d_%d_k", s, i), And, layer[i], seln[s])
			if i >= shift {
				moved := g.add(fmt.Sprintf("st%d_%d_m", s, i), And, layer[i-shift], sel[s])
				next[i] = g.add(fmt.Sprintf("st%d_%d", s, i), Or, keep, moved)
			} else {
				// Vacated position: selected value is 0, so the stage
				// output is just the kept term.
				next[i] = keep
			}
		}
		layer = next
	}
	for i := 0; i < n; i++ {
		g.output(rename(g, layer[i], fmt.Sprintf("q%d", i)))
	}
	return g.finish()
}

// Datapath composes an "LSI-chip-like" block: an ALU whose operands
// come from a multiplier and an adder, with a parity tree observing the
// result — a few thousand gates with heterogeneous structure, used as
// the larger DUT for lot experiments.
func Datapath(width int) (*Circuit, error) {
	if width < 2 || width > 8 {
		return nil, fmt.Errorf("netlist: datapath width must be in [2,8], got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("datapath%d", width))}
	// Inputs: x, y (multiplier operands), z (adder operand), op bits.
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("x%d", i), Input)
	}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("y%d", i), Input)
	}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("z%d", i), Input)
	}
	op0 := g.add("op0", Input)
	op1 := g.add("op1", Input)

	// Multiplier product bits (reuse the array-multiplier construction
	// inline, low word only).
	pp := make([][]string, width)
	for i := range pp {
		pp[i] = make([]string, width)
		for j := range pp[i] {
			pp[i][j] = g.add(fmt.Sprintf("pp_%d_%d", i, j), And,
				fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", j))
		}
	}
	acc := make(map[int]string, 2*width)
	for i := 0; i < width; i++ {
		acc[i] = pp[i][0]
	}
	for j := 1; j < width; j++ {
		carry := ""
		for i := 0; i < width; i++ {
			pos := j + i
			x := pp[i][j]
			y := acc[pos]
			prefix := fmt.Sprintf("dm_%d_%d", j, i)
			switch {
			case y == "" && carry == "":
				acc[pos] = x
			case y == "":
				acc[pos], carry = halfAdder(g, prefix, x, carry)
			case carry == "":
				acc[pos], carry = halfAdder(g, prefix, x, y)
			default:
				acc[pos], carry = fullAdder(g, prefix, x, y, carry)
			}
		}
		if carry != "" {
			acc[j+width] = carry
		}
	}

	// ALU combines product low word with z, op-selected.
	nop0 := g.add("nop0", Not, op0)
	nop1 := g.add("nop1", Not, op1)
	selAnd := g.add("sel_and", And, nop1, nop0)
	selOr := g.add("sel_or", And, nop1, op0)
	selXor := g.add("sel_xor", And, op1, nop0)
	selAdd := g.add("sel_add", And, op1, op0)
	carry := ""
	results := make([]string, width)
	for i := 0; i < width; i++ {
		a := acc[i]
		b := fmt.Sprintf("z%d", i)
		andB := g.add(fmt.Sprintf("aand%d", i), And, a, b)
		orB := g.add(fmt.Sprintf("aor%d", i), Or, a, b)
		xorB := g.add(fmt.Sprintf("axor%d", i), Xor, a, b)
		var sum string
		prefix := fmt.Sprintf("aadd%d", i)
		if carry == "" {
			sum = xorB
			carry = andB
		} else {
			sum = g.add(prefix+"_s", Xor, xorB, carry)
			c1 := g.add(prefix+"_c1", And, xorB, carry)
			carry = g.add(prefix+"_c", Or, c1, andB)
		}
		m0 := g.add(fmt.Sprintf("am%d_0", i), And, andB, selAnd)
		m1 := g.add(fmt.Sprintf("am%d_1", i), And, orB, selOr)
		m2 := g.add(fmt.Sprintf("am%d_2", i), And, xorB, selXor)
		m3 := g.add(fmt.Sprintf("am%d_3", i), And, sum, selAdd)
		o01 := g.add(fmt.Sprintf("am%d_01", i), Or, m0, m1)
		o23 := g.add(fmt.Sprintf("am%d_23", i), Or, m2, m3)
		results[i] = g.add(fmt.Sprintf("r%d", i), Or, o01, o23)
		g.output(results[i])
	}
	// High product word observed directly.
	for pos := width; pos < 2*width; pos++ {
		if sig, ok := acc[pos]; ok {
			g.output(rename(g, sig, fmt.Sprintf("ph%d", pos)))
		}
	}
	// Parity over the result nibble for extra observability.
	par := results[0]
	for i := 1; i < width; i++ {
		par = g.add(fmt.Sprintf("par%d", i), Xor, par, results[i])
	}
	g.output(rename(g, par, "parity"))
	return g.finish()
}
