package netlist

import (
	"fmt"
	"math/rand"
	"strings"
)

// C17Bench is the ISCAS-85 c17 benchmark netlist, the standard smallest
// test circuit (6 NAND gates).
const C17Bench = `# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// C17 returns the parsed c17 benchmark.
func C17() *Circuit {
	c, err := ParseBench("c17", strings.NewReader(C17Bench))
	if err != nil {
		panic("netlist: embedded c17 failed to parse: " + err.Error())
	}
	return c
}

// gensym provides unique hierarchical gate names for generators.
type gensym struct {
	c   *Circuit
	err error
}

func (g *gensym) add(name string, t GateType, fanin ...string) string {
	if g.err != nil {
		return name
	}
	_, err := g.c.AddGate(name, t, fanin...)
	if err != nil {
		g.err = err
	}
	return name
}

func (g *gensym) output(name string) {
	if g.err != nil {
		return
	}
	g.err = g.c.MarkOutput(name)
}

// finish validates and returns.
func (g *gensym) finish() (*Circuit, error) {
	if g.err != nil {
		return nil, g.err
	}
	if err := g.c.Validate(); err != nil {
		return nil, err
	}
	return g.c, nil
}

// RippleAdder returns a width-bit ripple-carry adder: inputs a0..a{w-1},
// b0..b{w-1}, cin; outputs s0..s{w-1}, cout. Each full adder is built
// from XOR/AND/OR primitives (5 gates), so the circuit has 5w gates
// plus the 2w+1 inputs.
func RippleAdder(width int) (*Circuit, error) {
	if width < 1 {
		return nil, fmt.Errorf("netlist: adder width must be >= 1, got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("rca%d", width))}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("a%d", i), Input)
		g.add(fmt.Sprintf("b%d", i), Input)
	}
	carry := g.add("cin", Input)
	for i := 0; i < width; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		axb := g.add(fmt.Sprintf("fa%d_axb", i), Xor, a, b)
		sum := g.add(fmt.Sprintf("s%d", i), Xor, axb, carry)
		and1 := g.add(fmt.Sprintf("fa%d_and1", i), And, axb, carry)
		and2 := g.add(fmt.Sprintf("fa%d_and2", i), And, a, b)
		carry = g.add(fmt.Sprintf("fa%d_cout", i), Or, and1, and2)
		g.output(sum)
	}
	g.output(carry)
	return g.finish()
}

// ArrayMultiplier returns a width x width unsigned array multiplier:
// inputs a0.., b0..; outputs p0..p{2w-1}. It uses AND partial products
// and ripple-carry rows; gate count grows quadratically (≈ 6w² gates),
// providing the "LSI-scale" circuits for the lot experiment.
func ArrayMultiplier(width int) (*Circuit, error) {
	if width < 2 {
		return nil, fmt.Errorf("netlist: multiplier width must be >= 2, got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("mul%d", width))}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("a%d", i), Input)
	}
	for i := 0; i < width; i++ {
		g.add(fmt.Sprintf("b%d", i), Input)
	}
	// Partial products pp_i_j = a_i AND b_j, weight 2^{i+j}.
	pp := make([][]string, width)
	for i := range pp {
		pp[i] = make([]string, width)
		for j := range pp[i] {
			pp[i][j] = g.add(fmt.Sprintf("pp_%d_%d", i, j), And,
				fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
		}
	}
	// acc[pos] holds the running sum bit of weight 2^pos. Row 0 seeds
	// positions 0..w-1; each later row j ripple-adds its shifted
	// partial products into positions j..j+w-1, carrying into j+w.
	acc := make(map[int]string, 2*width)
	for i := 0; i < width; i++ {
		acc[i] = pp[i][0]
	}
	for j := 1; j < width; j++ {
		carry := ""
		for i := 0; i < width; i++ {
			pos := j + i
			x := pp[i][j]
			y := acc[pos]
			prefix := fmt.Sprintf("m_%d_%d", j, i)
			switch {
			case y == "" && carry == "":
				acc[pos] = x
			case y == "":
				acc[pos], carry = halfAdder(g, prefix, x, carry)
			case carry == "":
				acc[pos], carry = halfAdder(g, prefix, x, y)
			default:
				acc[pos], carry = fullAdder(g, prefix, x, y, carry)
			}
		}
		if carry != "" {
			acc[j+width] = carry
		}
	}
	for pos := 0; pos < 2*width; pos++ {
		if sig, ok := acc[pos]; ok {
			g.output(rename(g, sig, fmt.Sprintf("p%d", pos)))
		}
	}
	return g.finish()
}

// rename adds a BUF so the output pin carries the canonical name.
func rename(g *gensym, src, name string) string {
	return g.add(name, Buf, src)
}

// halfAdder emits sum = x XOR y, carry = x AND y.
func halfAdder(g *gensym, prefix, x, y string) (sum, carry string) {
	sum = g.add(prefix+"_s", Xor, x, y)
	carry = g.add(prefix+"_c", And, x, y)
	return sum, carry
}

// fullAdder emits a 5-gate full adder.
func fullAdder(g *gensym, prefix, x, y, cin string) (sum, carry string) {
	axb := g.add(prefix+"_axb", Xor, x, y)
	sum = g.add(prefix+"_s", Xor, axb, cin)
	a1 := g.add(prefix+"_a1", And, axb, cin)
	a2 := g.add(prefix+"_a2", And, x, y)
	carry = g.add(prefix+"_c", Or, a1, a2)
	return sum, carry
}

// ParityTree returns a width-input XOR parity tree, the classic
// random-pattern-friendly circuit.
func ParityTree(width int) (*Circuit, error) {
	if width < 2 {
		return nil, fmt.Errorf("netlist: parity width must be >= 2, got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("parity%d", width))}
	layer := make([]string, width)
	for i := 0; i < width; i++ {
		layer[i] = g.add(fmt.Sprintf("x%d", i), Input)
	}
	lvl := 0
	for len(layer) > 1 {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, g.add(fmt.Sprintf("px%d_%d", lvl, i/2), Xor, layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	g.output(rename(g, layer[0], "parity"))
	return g.finish()
}

// Decoder returns a bits-to-2^bits one-hot decoder with enable, a
// random-pattern-resistant structure (each output fires on exactly one
// input combination).
func Decoder(bits int) (*Circuit, error) {
	if bits < 1 || bits > 12 {
		return nil, fmt.Errorf("netlist: decoder bits must be in [1,12], got %d", bits)
	}
	g := &gensym{c: New(fmt.Sprintf("dec%d", bits))}
	in := make([]string, bits)
	inv := make([]string, bits)
	for i := 0; i < bits; i++ {
		in[i] = g.add(fmt.Sprintf("s%d", i), Input)
		inv[i] = g.add(fmt.Sprintf("sn%d", i), Not, in[i])
	}
	en := g.add("en", Input)
	for v := 0; v < 1<<bits; v++ {
		terms := []string{en}
		for i := 0; i < bits; i++ {
			if v>>i&1 == 1 {
				terms = append(terms, in[i])
			} else {
				terms = append(terms, inv[i])
			}
		}
		g.output(g.add(fmt.Sprintf("y%d", v), And, terms...))
	}
	return g.finish()
}

// MuxTree returns a 2^selBits-to-1 multiplexer.
func MuxTree(selBits int) (*Circuit, error) {
	if selBits < 1 || selBits > 10 {
		return nil, fmt.Errorf("netlist: mux select bits must be in [1,10], got %d", selBits)
	}
	g := &gensym{c: New(fmt.Sprintf("mux%d", selBits))}
	n := 1 << selBits
	layer := make([]string, n)
	for i := 0; i < n; i++ {
		layer[i] = g.add(fmt.Sprintf("d%d", i), Input)
	}
	sel := make([]string, selBits)
	seln := make([]string, selBits)
	for i := 0; i < selBits; i++ {
		sel[i] = g.add(fmt.Sprintf("s%d", i), Input)
		seln[i] = g.add(fmt.Sprintf("sn%d", i), Not, sel[i])
	}
	for b := 0; b < selBits; b++ {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			p := fmt.Sprintf("m%d_%d", b, i/2)
			lo := g.add(p+"_lo", And, layer[i], seln[b])
			hi := g.add(p+"_hi", And, layer[i+1], sel[b])
			next = append(next, g.add(p, Or, lo, hi))
		}
		layer = next
	}
	g.output(rename(g, layer[0], "y"))
	return g.finish()
}

// Comparator returns a width-bit equality comparator (a == b).
func Comparator(width int) (*Circuit, error) {
	if width < 1 {
		return nil, fmt.Errorf("netlist: comparator width must be >= 1, got %d", width)
	}
	g := &gensym{c: New(fmt.Sprintf("cmp%d", width))}
	eqs := make([]string, width)
	for i := 0; i < width; i++ {
		a := g.add(fmt.Sprintf("a%d", i), Input)
		b := g.add(fmt.Sprintf("b%d", i), Input)
		eqs[i] = g.add(fmt.Sprintf("eq%d", i), Xnor, a, b)
	}
	// AND-reduce.
	layer := eqs
	lvl := 0
	for len(layer) > 1 {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, g.add(fmt.Sprintf("and%d_%d", lvl, i/2), And, layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	if width == 1 {
		g.output(rename(g, layer[0], "eq"))
	} else {
		g.output(rename(g, layer[0], "eq_out"))
	}
	return g.finish()
}

// RandomCircuit returns a pseudo-random combinational circuit with the
// given number of primary inputs and internal gates, reproducible from
// seed. Gate types are drawn from {AND, NAND, OR, NOR, XOR, NOT} and
// fanins are drawn from earlier gates with locality bias so depth grows
// realistically. The last `outputs` gates plus any dangling gates are
// marked as primary outputs (every signal must reach an output for its
// faults to be testable).
func RandomCircuit(name string, inputs, gates, outputs int, seed int64) (*Circuit, error) {
	if inputs < 2 || gates < 1 || outputs < 1 {
		return nil, fmt.Errorf("netlist: random circuit needs >= 2 inputs, >= 1 gates, >= 1 outputs")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &gensym{c: New(name)}
	pool := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		pool = append(pool, g.add(fmt.Sprintf("in%d", i), Input))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Not}
	for i := 0; i < gates; i++ {
		t := types[rng.Intn(len(types))]
		pick := func() string {
			// Locality bias: prefer recent signals to build depth.
			if rng.Float64() < 0.7 && len(pool) > inputs {
				lo := len(pool) - inputs
				if lo < inputs {
					lo = 0
				}
				return pool[lo+rng.Intn(len(pool)-lo)]
			}
			return pool[rng.Intn(len(pool))]
		}
		var name string
		if t == Not {
			name = g.add(fmt.Sprintf("g%d", i), t, pick())
		} else {
			a, b := pick(), pick()
			for b == a {
				b = pick()
			}
			name = g.add(fmt.Sprintf("g%d", i), t, a, b)
		}
		pool = append(pool, name)
	}
	if g.err != nil {
		return nil, g.err
	}
	// Mark outputs: dangling gates (no fanout) plus the last gates until
	// the requested count is reached.
	marked := make(map[string]bool)
	for _, gt := range g.c.Gates {
		if gt.Type != Input && len(gt.Fanout) == 0 {
			g.output(gt.Name)
			marked[gt.Name] = true
		}
	}
	for i := len(pool) - 1; i >= inputs && len(marked) < outputs; i-- {
		if !marked[pool[i]] {
			g.output(pool[i])
			marked[pool[i]] = true
		}
	}
	return g.finish()
}
