package netlist

import (
	"strings"
	"testing"
)

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBench("c17", strings.NewReader(C17Bench))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 11 || len(c.Inputs) != 5 || len(c.Outputs) != 2 {
		t.Errorf("c17 parse: gates=%d in=%d out=%d", len(c.Gates), len(c.Inputs), len(c.Outputs))
	}
	id, ok := c.GateByName("22")
	if !ok {
		t.Fatal("gate 22 missing")
	}
	if c.Gates[id].Type != Nand || len(c.Gates[id].Fanin) != 2 {
		t.Error("gate 22 malformed")
	}
}

func TestParseBenchForwardOutput(t *testing.T) {
	// OUTPUT before gate definition, as in published ISCAS files.
	src := `OUTPUT(z)
INPUT(a)
INPUT(b)
z = AND(a, b)
`
	c, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs) != 1 {
		t.Error("forward output not resolved")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n",        // unknown type
		"INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)\n",  // undefined fanin
		"INPUT(a)\nz AND(a)\nOUTPUT(z)\n",           // missing =
		"INPUT(a)\nOUTPUT(ghost)\nz = NOT(a)\n",     // unknown output
		"INPUT()\n",                                 // empty name
		"INPUT(a)\nINPUT(a)\nz = NOT(a)\nOUTPUT(z)", // duplicate
		"INPUT(a)\nz = NOT(a,)\nOUTPUT(z)\n",        // empty fanin
		"INPUT(a)\nz = AND()\nOUTPUT(z)\n",          // zero-fanin gate
		"INPUT(a\n",                                 // malformed decl
		"INPUT(a) pad 4)\nz = NOT(a)\nOUTPUT(z)\n",  // trailing junk on decl
		"INPUT(a))\nz = NOT(a)\nOUTPUT(z)\n",        // doubled close paren
		"INPUT(a)\nz = NOT(a) junk\nOUTPUT(z)\n",    // trailing junk on gate
	}
	for i, src := range cases {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed bench accepted", i)
		}
	}
}

func TestParseBenchCommentsAndBlanks(t *testing.T) {
	src := `# header

INPUT(a)
# middle comment
INPUT(b)
z = NAND(a, b)
OUTPUT(z)
`
	c, err := ParseBench("cmt", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 3 {
		t.Errorf("gates = %d", len(c.Gates))
	}
}

func TestParseBenchInlineComments(t *testing.T) {
	// Inline comments must be stripped before parsing: "INPUT(G1) # pad 4)"
	// declares a gate named G1, not "G1) # pad 4".
	src := `INPUT(a) # pad 4)
INPUT(b)# no space before hash
z = NAND(a, b) # the only gate
OUTPUT(z) ## doubled hash
`
	c, err := ParseBench("inline", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "z"} {
		if _, ok := c.GateByName(name); !ok {
			t.Errorf("gate %q missing; names: %v", name, c.SortedNames())
		}
	}
	if len(c.Gates) != 3 || len(c.Outputs) != 1 {
		t.Errorf("gates=%d outputs=%d", len(c.Gates), len(c.Outputs))
	}
	// And the parsed circuit must survive a write/parse round trip.
	rt, err := c.RoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Gates) != 3 || len(rt.Outputs) != 1 {
		t.Error("round trip changed shape")
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	circuits := []*Circuit{C17()}
	if rca, err := RippleAdder(4); err == nil {
		circuits = append(circuits, rca)
	} else {
		t.Fatal(err)
	}
	if mul, err := ArrayMultiplier(3); err == nil {
		circuits = append(circuits, mul)
	} else {
		t.Fatal(err)
	}
	for _, c := range circuits {
		rt, err := c.RoundTrip()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(rt.Gates) != len(c.Gates) {
			t.Errorf("%s: round trip gates %d != %d", c.Name, len(rt.Gates), len(c.Gates))
		}
		if len(rt.Inputs) != len(c.Inputs) || len(rt.Outputs) != len(c.Outputs) {
			t.Errorf("%s: round trip IO mismatch", c.Name)
		}
		// Same names present.
		a, b := c.SortedNames(), rt.SortedNames()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: name %d differs: %s vs %s", c.Name, i, a[i], b[i])
			}
		}
		// Same structure: for each gate, same type and fanin names.
		for _, g := range c.Gates {
			rid, ok := rt.GateByName(g.Name)
			if !ok {
				t.Fatalf("%s: gate %q lost", c.Name, g.Name)
			}
			rg := rt.Gates[rid]
			if rg.Type != g.Type || len(rg.Fanin) != len(g.Fanin) {
				t.Fatalf("%s: gate %q changed shape", c.Name, g.Name)
			}
			for i, f := range g.Fanin {
				if rt.Gates[rg.Fanin[i]].Name != c.Gates[f].Name {
					t.Fatalf("%s: gate %q fanin %d changed", c.Name, g.Name, i)
				}
			}
		}
	}
}

// BenchmarkParseBench10k measures cold-loading an LSI-scale netlist
// from .bench text — the satellite target is single-digit milliseconds
// for 10k gates, which the pre-sized tables and allocation-free line
// walk provide. Run with -benchmem to see the per-parse churn.
func BenchmarkParseBench10k(b *testing.B) {
	c, err := LSIChip(10000)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := c.WriteBench(&sb); err != nil {
		b.Fatal(err)
	}
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBench("lsi10000", strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(c.Gates)), "gates")
}
