package netlist

import (
	"testing"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := RippleAdder(0); err == nil {
		t.Error("adder width 0 should error")
	}
	if _, err := ArrayMultiplier(1); err == nil {
		t.Error("multiplier width 1 should error")
	}
	if _, err := ParityTree(1); err == nil {
		t.Error("parity width 1 should error")
	}
	if _, err := Decoder(0); err == nil {
		t.Error("decoder 0 bits should error")
	}
	if _, err := Decoder(13); err == nil {
		t.Error("decoder 13 bits should error")
	}
	if _, err := MuxTree(0); err == nil {
		t.Error("mux 0 select bits should error")
	}
	if _, err := Comparator(0); err == nil {
		t.Error("comparator width 0 should error")
	}
	if _, err := RandomCircuit("r", 1, 10, 1, 1); err == nil {
		t.Error("random circuit with 1 input should error")
	}
}

func TestGeneratorsValidate(t *testing.T) {
	gens := map[string]func() (*Circuit, error){
		"rca8":     func() (*Circuit, error) { return RippleAdder(8) },
		"mul4":     func() (*Circuit, error) { return ArrayMultiplier(4) },
		"parity16": func() (*Circuit, error) { return ParityTree(16) },
		"parity15": func() (*Circuit, error) { return ParityTree(15) }, // odd width
		"dec4":     func() (*Circuit, error) { return Decoder(4) },
		"mux3":     func() (*Circuit, error) { return MuxTree(3) },
		"cmp8":     func() (*Circuit, error) { return Comparator(8) },
		"cmp1":     func() (*Circuit, error) { return Comparator(1) },
		"rand":     func() (*Circuit, error) { return RandomCircuit("rnd", 10, 300, 10, 7) },
	}
	for name, gen := range gens {
		c, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: validation: %v", name, err)
		}
	}
}

func TestRandomCircuitReproducible(t *testing.T) {
	a, err := RandomCircuit("r", 8, 100, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCircuit("r", 8, 100, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed, different size")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Fanin) != len(b.Gates[i].Fanin) {
			t.Fatal("same seed, different structure")
		}
		for j := range a.Gates[i].Fanin {
			if a.Gates[i].Fanin[j] != b.Gates[i].Fanin[j] {
				t.Fatal("same seed, different fanin")
			}
		}
	}
	c, err := RandomCircuit("r", 8, 100, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Gates) == len(c.Gates)
	if same {
		diff := false
		for i := range a.Gates {
			if a.Gates[i].Type != c.Gates[i].Type {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical circuits (suspicious)")
		}
	}
}

func TestRandomCircuitNoDanglers(t *testing.T) {
	c, err := RandomCircuit("r", 6, 150, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	isOutput := make(map[int]bool)
	for _, o := range c.Outputs {
		isOutput[o] = true
	}
	for _, g := range c.Gates {
		if g.Type != Input && len(g.Fanout) == 0 && !isOutput[g.ID] {
			t.Errorf("gate %q dangles: no fanout and not an output", g.Name)
		}
	}
}

func TestMultiplierScales(t *testing.T) {
	// The multiplier is the "LSI-scale" workhorse: check quadratic-ish
	// growth and that a 16-bit instance reaches thousands of gates.
	m8, err := ArrayMultiplier(8)
	if err != nil {
		t.Fatal(err)
	}
	m16, err := ArrayMultiplier(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(m16.Gates) < 3*len(m8.Gates) {
		t.Errorf("mul16 (%d gates) should be ≈4x mul8 (%d gates)", len(m16.Gates), len(m8.Gates))
	}
	if len(m16.Gates) < 1200 {
		t.Errorf("mul16 has only %d gates", len(m16.Gates))
	}
}
