package netlist

import (
	"strings"
	"testing"
)

func TestAddGateAndLookup(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("b", Input); err != nil {
		t.Fatal(err)
	}
	id, err := c.AddGate("g", And, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c.GateByName("g"); !ok || got != id {
		t.Errorf("GateByName = %d,%v", got, ok)
	}
	if len(c.Gates[0].Fanout) != 1 || c.Gates[0].Fanout[0] != id {
		t.Error("fanout back-edge missing")
	}
}

func TestAddGateErrors(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("", Input); err == nil {
		t.Error("empty name should error")
	}
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("a", Input); err == nil {
		t.Error("duplicate name should error")
	}
	if _, err := c.AddGate("g", And, "a"); err == nil {
		t.Error("AND with one fanin should error")
	}
	if _, err := c.AddGate("g", Not, "a", "a"); err == nil {
		t.Error("NOT with two fanins should error")
	}
	if _, err := c.AddGate("g", And, "a", "zzz"); err == nil {
		t.Error("undefined fanin should error")
	}
	if _, err := c.AddGate("g", And); err == nil {
		t.Error("AND with zero fanin should error")
	}
}

func TestValidateRejectsZeroFaninGate(t *testing.T) {
	// AddGate blocks zero-fanin logic gates up front, so the only way to
	// make one is direct struct surgery (a buggy generator or loader);
	// Validate must still catch it and name the gate, because the
	// simulators' hot loops index fanin[0] unconditionally.
	c := New("t")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	id, err := c.AddGate("orphan", Not, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput("orphan"); err != nil {
		t.Fatal(err)
	}
	c.Gates[id].Fanin = nil
	err = c.Validate()
	if err == nil || !strings.Contains(err.Error(), `"orphan"`) {
		t.Errorf("want named-gate zero-fanin error, got %v", err)
	}
}

func TestMarkOutputErrors(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput("zzz"); err == nil {
		t.Error("unknown output should error")
	}
	if err := c.MarkOutput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput("a"); err == nil {
		t.Error("double-marking should error")
	}
}

func TestLevelizeAndDepth(t *testing.T) {
	c := C17()
	depth, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if depth != 3 {
		t.Errorf("c17 depth = %d, want 3", depth)
	}
	// Inputs at level 0.
	for _, id := range c.Inputs {
		l, _ := c.Level(id)
		if l != 0 {
			t.Errorf("input %q level %d", c.Gates[id].Name, l)
		}
	}
	// Every gate's level exceeds its fanins'.
	order, _ := c.Order()
	if len(order) != len(c.Gates) {
		t.Fatal("order incomplete")
	}
	for _, g := range c.Gates {
		gl, _ := c.Level(g.ID)
		for _, f := range g.Fanin {
			fl, _ := c.Level(f)
			if fl >= gl {
				t.Errorf("gate %q level %d <= fanin level %d", g.Name, gl, fl)
			}
		}
	}
}

func TestTopologicalOrderProperty(t *testing.T) {
	c, err := RandomCircuit("r", 8, 200, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	order, err := c.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[g.ID] {
				t.Fatalf("fanin %d after gate %d in order", f, g.ID)
			}
		}
	}
}

func TestValidateCatchesMissingIO(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("no outputs should fail validation")
	}
	c2 := New("t2")
	if err := c2.Validate(); err == nil {
		t.Error("empty circuit should fail validation")
	}
}

func TestC17Stats(t *testing.T) {
	c := C17()
	s, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Gates != 11 || s.Inputs != 5 || s.Outputs != 2 {
		t.Errorf("c17 stats: %+v", s)
	}
	if s.ByType["NAND"] != 6 {
		t.Errorf("c17 should have 6 NANDs, got %d", s.ByType["NAND"])
	}
	// c17 has 3 fanout stems (3, 11, 16 drive two gates each... input 3
	// drives 10,11; 11 drives 16,19; 16 drives 22,23).
	if s.FanoutStem != 3 {
		t.Errorf("c17 fanout stems = %d, want 3", s.FanoutStem)
	}
	if !strings.Contains(s.String(), "gates=11") {
		t.Errorf("stats string: %s", s)
	}
}

func TestGateTypeStringAndParse(t *testing.T) {
	for _, typ := range []GateType{Input, Buf, Not, And, Nand, Or, Nor, Xor, Xnor} {
		got, err := ParseGateType(typ.String())
		if err != nil || got != typ {
			t.Errorf("round trip %v: %v, %v", typ, got, err)
		}
	}
	if _, err := ParseGateType("FLIPFLOP"); err == nil {
		t.Error("unknown type should error")
	}
	for alias, want := range map[string]GateType{"BUFF": Buf, "INV": Not} {
		got, err := ParseGateType(alias)
		if err != nil || got != want {
			t.Errorf("alias %s: %v, %v", alias, got, err)
		}
	}
	if GateType(99).String() != "GateType(99)" {
		t.Error("unknown type String")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	// Build a loop by editing the graph directly (AddGate cannot).
	c := New("loop")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g1", And, "a", "a"); err == nil {
		// duplicate fanin is allowed structurally; ignore error state
		_ = err
	}
	if _, err := c.AddGate("g2", And, "a", "g1"); err != nil {
		t.Fatal(err)
	}
	// Introduce cycle: g1 gains g2 as fanin.
	g1, _ := c.GateByName("g1")
	g2, _ := c.GateByName("g2")
	c.Gates[g1].Fanin = append(c.Gates[g1].Fanin, g2)
	c.Gates[g2].Fanout = append(c.Gates[g2].Fanout, g1)
	c.invalidate()
	if err := c.Levelize(); err == nil {
		t.Error("loop should fail levelization")
	}
}
