package netlist

import (
	"fmt"
	"math/rand"
)

// LSIChip synthesizes an ISCAS'85-class pseudo-random netlist of
// roughly n gates (n >= 100; the interesting range is 1k–10k, the
// scale of c1355..c7552). The shape follows the published benchmarks
// rather than a uniform random graph: NAND-heavy gate mix, fanin 2–4,
// input and output counts near c7552's gate ratios (one input per ~36
// gates, one output per ~33), locality-biased fanin selection for
// depth with occasional long-range edges for reconvergent fanout, and
// a final collector sweep that folds would-be dead logic into XOR
// observation trees so the circuit has no undetectable dangling cones.
// The construction is deterministic in n alone: lsi<N> names one
// reproducible workload, like rand<seed>.
func LSIChip(n int) (*Circuit, error) {
	if n < 100 {
		return nil, fmt.Errorf("netlist: lsi size must be >= 100 gates, got %d", n)
	}
	inputs := n / 36
	if inputs < 16 {
		inputs = 16
	}
	outputs := n / 33
	if outputs < 8 {
		outputs = 8
	}
	rng := rand.New(rand.NewSource(0x7552 + int64(n)*0x9E3779B9))
	g := &gensym{c: NewSized(fmt.Sprintf("lsi%d", n), n+inputs+outputs)}
	pool := make([]string, 0, n+inputs)
	for i := 0; i < inputs; i++ {
		pool = append(pool, g.add(fmt.Sprintf("pi%d", i), Input))
	}
	// Gate mix roughly matching the ISCAS'85 family: NAND/NOR dominate,
	// with AND/OR/NOT support and a sprinkle of XOR.
	types := []GateType{Nand, Nand, Nand, Nand, Nor, Nor, And, And, Or, Not, Not, Xor}
	// Locality window: most fanins come from the most recent signals
	// (building depth, like a column of a datapath), the rest reach
	// back anywhere (creating the reconvergent long-range structure
	// random-pattern-resistant faults hide in).
	window := 2 * inputs
	pick := func() string {
		if len(pool) > window && rng.Float64() < 0.75 {
			return pool[len(pool)-window+rng.Intn(window)]
		}
		return pool[rng.Intn(len(pool))]
	}
	for i := 0; i < n; i++ {
		t := types[rng.Intn(len(types))]
		var name string
		if t == Not {
			name = g.add(fmt.Sprintf("n%d", i), t, pick())
		} else {
			fanin := 2 + rng.Intn(3) // 2..4, like the benchmarks
			args := make([]string, 0, fanin)
			seen := map[string]bool{}
			for len(args) < fanin {
				a := pick()
				if seen[a] {
					// Duplicate pins are legal but pointless; retry a
					// few times, then settle for what we have.
					if len(args) >= 2 {
						break
					}
					continue
				}
				seen[a] = true
				args = append(args, a)
			}
			name = g.add(fmt.Sprintf("n%d", i), t, args...)
		}
		pool = append(pool, name)
	}
	if g.err != nil {
		return nil, g.err
	}
	// Collector sweep: fold unconsumed signals into XOR trees until the
	// dangling count fits the output budget. Unconsumed primary inputs
	// go first — they must be consumed, never marked as outputs.
	var dangling []string
	for _, gt := range g.c.Gates {
		if gt.Type == Input && len(gt.Fanout) == 0 {
			dangling = append(dangling, gt.Name)
		}
	}
	inputDanglers := len(dangling)
	for _, gt := range g.c.Gates {
		if gt.Type != Input && len(gt.Fanout) == 0 {
			dangling = append(dangling, gt.Name)
		}
	}
	ci := 0
	for len(dangling) > outputs || inputDanglers > 0 {
		k := 4
		if k > len(dangling) {
			k = len(dangling)
		}
		args := dangling[:k]
		if k < 2 {
			// A lone dangler (only possible via leftover inputs) gets a
			// partner from the pool.
			args = append(args, pool[rng.Intn(len(pool))])
		}
		name := g.add(fmt.Sprintf("obs%d", ci), Xor, args...)
		ci++
		if inputDanglers > k {
			inputDanglers -= k
		} else {
			inputDanglers = 0
		}
		dangling = append(dangling[k:], name)
	}
	for _, name := range dangling {
		g.output(name)
	}
	return g.finish()
}
