package netlist

import (
	"testing"
	"testing/quick"
)

func TestRandomCircuitRoundTripProperty(t *testing.T) {
	// Any generated circuit survives a bench-format round trip with
	// identical structure.
	prop := func(seed8, in8, g8 uint8) bool {
		inputs := 2 + int(in8%10)
		gates := 5 + int(g8%80)
		c, err := RandomCircuit("p", inputs, gates, 4, int64(seed8)+1)
		if err != nil {
			return false
		}
		rt, err := c.RoundTrip()
		if err != nil {
			return false
		}
		if len(rt.Gates) != len(c.Gates) || len(rt.Inputs) != len(c.Inputs) ||
			len(rt.Outputs) != len(c.Outputs) {
			return false
		}
		for _, g := range c.Gates {
			rid, ok := rt.GateByName(g.Name)
			if !ok {
				return false
			}
			rg := rt.Gates[rid]
			if rg.Type != g.Type || len(rg.Fanin) != len(g.Fanin) {
				return false
			}
			for i, f := range g.Fanin {
				if rt.Gates[rg.Fanin[i]].Name != c.Gates[f].Name {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneratedCircuitsLevelizeProperty(t *testing.T) {
	// Every generator output levelizes with consistent depth bounds.
	prop := func(w8 uint8) bool {
		w := 2 + int(w8%6)
		for _, gen := range []func(int) (*Circuit, error){
			RippleAdder, ArrayMultiplier, ParityTree, Comparator,
		} {
			c, err := gen(w)
			if err != nil {
				return false
			}
			depth, err := c.Depth()
			if err != nil {
				return false
			}
			if depth < 1 || depth >= len(c.Gates) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
