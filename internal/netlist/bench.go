package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a circuit in the ISCAS ".bench" format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//
// Output declarations may precede the definition of the named gate, as
// they do in the published ISCAS benchmark files.
//
// The parser is sized for LSI-scale files: the whole source is read
// once, the gate table and name index are pre-sized from a line count,
// and per-line work allocates nothing beyond the gates themselves (no
// scanner buffers, no case-folded copies, no per-gate fanin slices),
// so a 10k-gate netlist loads in milliseconds.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netlist: reading bench: %w", err)
	}
	src := string(data)
	c := NewSized(name, strings.Count(src, "\n")+1)
	var outputs []string
	var args []string // reused across gate lines; AddGate copies out of it
	lineNo := 0
	for len(src) > 0 {
		lineNo++
		line := src
		if i := strings.IndexByte(src, '\n'); i >= 0 {
			line, src = src[:i], src[i+1:]
		} else {
			src = ""
		}
		// Strip inline comments before any parsing: "INPUT(G1) # pad 4"
		// declares G1, and the comment text must never leak into names.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT("):
			arg, err := parseUnary(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			if _, err := c.AddGate(arg, Input); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
		case hasPrefixFold(line, "OUTPUT("):
			arg, err := parseUnary(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			var lhs string
			var t GateType
			lhs, t, args, err = parseAssignment(line, args[:0])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			if _, err := c.AddGate(lhs, t, args...); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
		}
	}
	for _, o := range outputs {
		if err := c.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// hasPrefixFold reports whether s begins with the ASCII-uppercase
// prefix, ignoring the case of s — the allocation-free replacement for
// HasPrefix(ToUpper(s), prefix) on the two declaration keywords.
func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		ch := s[i]
		if ch >= 'a' && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != prefix[i] {
			return false
		}
	}
	return true
}

// parseUnary extracts X from "KEYWORD(X)". The first closing paren
// ends the declaration; anything after it is an error rather than
// silently becoming part of the name.
func parseUnary(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.IndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	if rest := strings.TrimSpace(line[close+1:]); rest != "" {
		return "", fmt.Errorf("trailing %q after declaration %q", rest, line[:close+1])
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// parseAssignment parses "G10 = NAND(G1, G3)". Fanin names are
// appended to args (pass a reused buffer truncated to zero; the
// returned slice aliases it).
func parseAssignment(line string, args []string) (lhs string, t GateType, _ []string, err error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return "", 0, nil, fmt.Errorf("malformed gate line %q", line)
	}
	lhs = strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.IndexByte(rhs, ')')
	if open < 0 || close < open {
		return "", 0, nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	if rest := strings.TrimSpace(rhs[close+1:]); rest != "" {
		return "", 0, nil, fmt.Errorf("trailing %q after gate expression %q", rest, rhs[:close+1])
	}
	t, err = ParseGateType(strings.ToUpper(strings.TrimSpace(rhs[:open])))
	if err != nil {
		return "", 0, nil, err
	}
	// Walk the comma-separated fanin list in place: a Split here is one
	// slice allocation per gate line, the parse loop's dominant churn.
	for rest, more := rhs[open+1:close], true; more; {
		var a string
		if i := strings.IndexByte(rest, ','); i >= 0 {
			a, rest = rest[:i], rest[i+1:]
		} else {
			a, more = rest, false
		}
		a = strings.TrimSpace(a)
		if a == "" {
			return "", 0, nil, fmt.Errorf("empty fanin in %q", rhs)
		}
		args = append(args, a)
	}
	return lhs, t, args, nil
}

// WriteBench writes the circuit in .bench format. Gates appear in
// topological order so the output re-parses without forward
// references.
func (c *Circuit) WriteBench(w io.Writer) error {
	order, err := c.Order()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.Inputs), len(c.Outputs), len(c.Gates))
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// RoundTrip serializes and re-parses the circuit; used by tests and as
// a structural canonicalizer.
func (c *Circuit) RoundTrip() (*Circuit, error) {
	var sb strings.Builder
	if err := c.WriteBench(&sb); err != nil {
		return nil, err
	}
	return ParseBench(c.Name, strings.NewReader(sb.String()))
}

// SortedNames returns all gate names sorted; a convenience for
// deterministic diagnostics.
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.Gates))
	for _, g := range c.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
