package netlist

import (
	"strings"
	"testing"
)

// TestLSIChipShape checks the generator hits the ISCAS'85-family shape
// contract across the 1k–10k range: gate count near n, input/output
// counts near the c7552 ratios, real depth, reconvergent fanout stems,
// and no dead logic (every input consumed, every non-output gate
// feeding something).
func TestLSIChipShape(t *testing.T) {
	for _, n := range []int{1000, 3500, 7552} {
		c, err := LSIChip(n)
		if err != nil {
			t.Fatalf("LSIChip(%d): %v", n, err)
		}
		st, err := c.ComputeStats()
		if err != nil {
			t.Fatalf("LSIChip(%d): %v", n, err)
		}
		logic := st.Gates - st.Inputs
		if logic < n || logic > n+n/10 {
			t.Fatalf("lsi%d has %d logic gates, want [%d, %d]", n, logic, n, n+n/10)
		}
		if st.Inputs < n/40 || st.Inputs > n/20 {
			t.Fatalf("lsi%d has %d inputs, outside the benchmark-family ratio", n, st.Inputs)
		}
		if st.Outputs < 8 || st.Outputs > n/20 {
			t.Fatalf("lsi%d has %d outputs, outside the benchmark-family ratio", n, st.Outputs)
		}
		if st.Depth < 10 {
			t.Fatalf("lsi%d depth %d — locality bias failed to build depth", n, st.Depth)
		}
		if st.FanoutStem < n/10 {
			t.Fatalf("lsi%d has only %d fanout stems — not reconvergent", n, st.FanoutStem)
		}
		isOutput := make(map[int]bool, len(c.Outputs))
		for _, id := range c.Outputs {
			isOutput[id] = true
		}
		for _, g := range c.Gates {
			if len(g.Fanout) == 0 && !isOutput[g.ID] {
				t.Fatalf("lsi%d gate %s dangles: dead logic escaped the collector sweep", n, g.Name)
			}
		}
	}
}

// TestLSIChipDeterministic pins reproducibility: lsi<N> must name one
// exact netlist, byte-for-byte, across calls.
func TestLSIChipDeterministic(t *testing.T) {
	render := func() string {
		c, err := LSIChip(1200)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := c.WriteBench(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("LSIChip(1200) is not deterministic")
	}
	if _, err := LSIChip(99); err == nil {
		t.Fatal("LSIChip must reject sub-100-gate sizes")
	}
}
