package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseBenchNeverPanics throws structured garbage at the parser:
// whatever happens, it must return an error or a valid circuit, never
// panic. (A deterministic mini-fuzzer; the corpus mixes valid tokens,
// truncations, and junk.)
func TestParseBenchNeverPanics(t *testing.T) {
	tokens := []string{
		"INPUT(a)", "INPUT(b)", "OUTPUT(z)", "z = AND(a, b)",
		"z = AND(a", "= AND(a, b)", "z AND a b", "INPUT()", "OUTPUT(",
		"z = FLIP(a)", "# comment", "", "  ", "z = NOT(a, b)",
		"w = XOR(z, a)", "INPUT(a)", "q = BUFF(a)", "r = INV(b)",
		"z = NAND(ghost, a)", ")(", "====", "OUTPUT(z)",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte('\n')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on:\n%s\npanic: %v", sb.String(), r)
				}
			}()
			c, err := ParseBench("fuzz", strings.NewReader(sb.String()))
			if err == nil {
				// If it parsed, it must validate.
				if verr := c.Validate(); verr != nil {
					t.Fatalf("parsed circuit fails validation: %v\ninput:\n%s", verr, sb.String())
				}
			}
		}()
	}
}
