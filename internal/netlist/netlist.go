// Package netlist represents gate-level combinational circuits: the
// substrate on which fault lists are built, tests are generated, and
// fault coverage is measured. Circuits can be parsed from the ISCAS
// ".bench" format, written back out, synthesized by the generators in
// this package, levelized for simulation, and validated.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the supported combinational primitives.
type GateType int

// Gate types. Input marks a primary input; the remaining types are
// logic primitives with one or more fanins.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateTypeNames = map[GateType]string{
	Input: "INPUT",
	Buf:   "BUF",
	Not:   "NOT",
	And:   "AND",
	Nand:  "NAND",
	Or:    "OR",
	Nor:   "NOR",
	Xor:   "XOR",
	Xnor:  "XNOR",
}

// String returns the bench-format keyword for the gate type.
func (t GateType) String() string {
	if s, ok := gateTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// ParseGateType converts a bench keyword (upper case) to a GateType.
func ParseGateType(s string) (GateType, error) {
	for t, name := range gateTypeNames {
		if name == s {
			return t, nil
		}
	}
	// Common bench aliases.
	switch s {
	case "BUFF":
		return Buf, nil
	case "INV":
		return Not, nil
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count (0 = unlimited).
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return 0
	}
}

// Gate is one node of the circuit graph. Gates are identified by dense
// integer IDs (their index in Circuit.Gates); names are preserved for
// I/O and diagnostics.
type Gate struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int // gate IDs driving this gate, in pin order
	Fanout []int // gate IDs driven by this gate
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate IDs of primary inputs, in declaration order
	Outputs []int // gate IDs of primary outputs, in declaration order

	byName map[string]int
	level  []int // per-gate level (inputs at 0); nil until Levelize
	order  []int // topological evaluation order; nil until Levelize

	// simCache is an opaque slot for simulator-derived precomputation
	// over the current structure (e.g. fault-site output cones). Like
	// the levelization caches above it is dropped on every mutation, so
	// holders can trust whatever they stored still describes the
	// circuit. Not synchronized: build caches before sharing a circuit
	// across goroutines.
	simCache any
}

// SimCache returns the opaque simulator cache slot (nil after any
// mutation).
func (c *Circuit) SimCache() any { return c.simCache }

// SetSimCache stores simulator-derived precomputation; it is discarded
// automatically when the circuit is mutated.
func (c *Circuit) SetSimCache(v any) { c.simCache = v }

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NewSized is New with a capacity hint for the expected gate count, so
// bulk builders (ParseBench, the LSI-scale generators) pay one
// allocation for the gate table and name index instead of O(log n)
// growth-and-rehash cycles.
func NewSized(name string, gates int) *Circuit {
	if gates < 0 {
		gates = 0
	}
	return &Circuit{
		Name:   name,
		Gates:  make([]Gate, 0, gates),
		byName: make(map[string]int, gates),
	}
}

// AddGate appends a gate with the given name, type, and fanin names.
// Fanin gates must already exist. It returns the new gate's ID.
func (c *Circuit) AddGate(name string, t GateType, fanin ...string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("netlist: empty gate name")
	}
	if _, dup := c.byName[name]; dup {
		return 0, fmt.Errorf("netlist: duplicate gate name %q", name)
	}
	if min := t.MinFanin(); len(fanin) < min {
		return 0, fmt.Errorf("netlist: gate %q type %v needs at least %d fanins, got %d", name, t, min, len(fanin))
	}
	if max := t.MaxFanin(); max > 0 && len(fanin) > max {
		return 0, fmt.Errorf("netlist: gate %q type %v allows at most %d fanins, got %d", name, t, max, len(fanin))
	}
	ids := make([]int, len(fanin))
	for i, fn := range fanin {
		id, ok := c.byName[fn]
		if !ok {
			return 0, fmt.Errorf("netlist: gate %q references undefined fanin %q", name, fn)
		}
		ids[i] = id
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{ID: id, Name: name, Type: t, Fanin: ids})
	c.byName[name] = id
	for _, fid := range ids {
		c.Gates[fid].Fanout = append(c.Gates[fid].Fanout, id)
	}
	if t == Input {
		c.Inputs = append(c.Inputs, id)
	}
	c.invalidate()
	return id, nil
}

// MarkOutput declares the named gate a primary output.
func (c *Circuit) MarkOutput(name string) error {
	id, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("netlist: output %q is not a defined gate", name)
	}
	for _, o := range c.Outputs {
		if o == id {
			return fmt.Errorf("netlist: gate %q already marked as output", name)
		}
	}
	c.Outputs = append(c.Outputs, id)
	// Levelization ignores outputs, but simulator caches (e.g. cone
	// reachable-output sets) do not — drop them too.
	c.invalidate()
	return nil
}

// GateByName returns the gate ID for name.
func (c *Circuit) GateByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// invalidate drops cached levelization and simulator caches after a
// mutation.
func (c *Circuit) invalidate() {
	c.level = nil
	c.order = nil
	c.simCache = nil
}

// Levelize computes gate levels (longest distance from any primary
// input) and a topological evaluation order. It fails on combinational
// loops. Calling it repeatedly is cheap once computed.
func (c *Circuit) Levelize() error {
	if c.order != nil {
		return nil
	}
	n := len(c.Gates)
	indeg := make([]int, n)
	for i := range c.Gates {
		indeg[i] = len(c.Gates[i].Fanin)
	}
	level := make([]int, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, out := range c.Gates[id].Fanout {
			if l := level[id] + 1; l > level[out] {
				level[out] = l
			}
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("netlist: circuit %q contains a combinational loop (%d of %d gates orderable)",
			c.Name, len(order), n)
	}
	c.level = level
	c.order = order
	return nil
}

// Order returns the topological evaluation order, levelizing on demand.
func (c *Circuit) Order() ([]int, error) {
	if err := c.Levelize(); err != nil {
		return nil, err
	}
	return c.order, nil
}

// Level returns the level of gate id, levelizing on demand.
func (c *Circuit) Level(id int) (int, error) {
	if err := c.Levelize(); err != nil {
		return 0, err
	}
	return c.level[id], nil
}

// Depth returns the maximum gate level (critical path length in gates).
func (c *Circuit) Depth() (int, error) {
	if err := c.Levelize(); err != nil {
		return 0, err
	}
	max := 0
	for _, l := range c.level {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// Validate checks structural sanity: every non-input gate has fanin,
// outputs are defined, names are consistent, fanin/fanout agree, and
// the circuit is acyclic.
func (c *Circuit) Validate() error {
	if len(c.Inputs) == 0 {
		return fmt.Errorf("netlist: circuit %q has no primary inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("netlist: circuit %q has no primary outputs", c.Name)
	}
	for i, g := range c.Gates {
		if g.ID != i {
			return fmt.Errorf("netlist: gate %q has ID %d at index %d", g.Name, g.ID, i)
		}
		if got, ok := c.byName[g.Name]; !ok || got != i {
			return fmt.Errorf("netlist: name index inconsistent for %q", g.Name)
		}
		if g.Type == Input && len(g.Fanin) != 0 {
			return fmt.Errorf("netlist: input %q has fanin", g.Name)
		}
		if g.Type != Input && len(g.Fanin) < g.Type.MinFanin() {
			return fmt.Errorf("netlist: gate %q has %d fanins, needs %d", g.Name, len(g.Fanin), g.Type.MinFanin())
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist: gate %q fanin %d out of range", g.Name, f)
			}
			found := false
			for _, fo := range c.Gates[f].Fanout {
				if fo == i {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist: fanout of %q missing back-edge to %q", c.Gates[f].Name, g.Name)
			}
		}
	}
	return c.Levelize()
}

// Stats summarizes a circuit for reports.
type Stats struct {
	Gates      int
	Inputs     int
	Outputs    int
	Depth      int
	FanoutStem int            // gates with fanout > 1 (checkpoint branches)
	ByType     map[string]int // gate count per type keyword
}

// Stats computes summary statistics.
func (c *Circuit) ComputeStats() (Stats, error) {
	depth, err := c.Depth()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Gates:   len(c.Gates),
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Depth:   depth,
		ByType:  make(map[string]int),
	}
	for _, g := range c.Gates {
		s.ByType[g.Type.String()]++
		if len(g.Fanout) > 1 {
			s.FanoutStem++
		}
	}
	return s, nil
}

// String renders the stats compactly with deterministic type order.
func (s Stats) String() string {
	types := make([]string, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	out := fmt.Sprintf("gates=%d inputs=%d outputs=%d depth=%d fanoutStems=%d",
		s.Gates, s.Inputs, s.Outputs, s.Depth, s.FanoutStem)
	for _, t := range types {
		out += fmt.Sprintf(" %s=%d", t, s.ByType[t])
	}
	return out
}
