package experiment

import (
	"fmt"
	"strings"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tablefmt"
)

// CollapseRow reports one fault-list view.
type CollapseRow struct {
	View     string
	Faults   int
	Detected int
	Coverage float64
}

// CollapseResult is the collapsing ablation: the same ordered pattern
// set graded against the full universe, the equivalence classes, and
// the dominance-reduced set.
type CollapseResult struct {
	Circuit string
	Rows    []CollapseRow
}

// CollapseStudy quantifies what fault collapsing does to the coverage
// *number* that enters the quality model: equivalence collapsing
// changes the denominator (and the measured f, since classes weight
// unevenly in the full list), dominance changes it further. The paper
// measures f against whatever list its fault simulator uses, so the
// study shows how sensitive the required-coverage conclusion is to
// that accounting choice.
func CollapseStudy(c *netlist.Circuit, patternCount int, seed int64) (CollapseResult, error) {
	if err := c.Validate(); err != nil {
		return CollapseResult{}, err
	}
	src, err := atpg.NewRandomSource(len(c.Inputs), seed)
	if err != nil {
		return CollapseResult{}, err
	}
	patterns := atpg.Take(src, patternCount)
	u := fault.BuildUniverse(c)
	res := CollapseResult{Circuit: c.Name}
	views := []struct {
		name   string
		faults []fault.Fault
	}{
		{"full universe", u.All},
		{"equivalence-collapsed", fault.Reps(u.Collapsed)},
		{"dominance-reduced", fault.Reps(u.Checkable)},
	}
	for _, v := range views {
		r, err := faultsim.Run(c, v.faults, patterns, faultsim.PPSFP)
		if err != nil {
			return CollapseResult{}, err
		}
		res.Rows = append(res.Rows, CollapseRow{
			View:     v.name,
			Faults:   len(v.faults),
			Detected: r.DetectedBy(r.Patterns - 1),
			Coverage: r.Coverage(),
		})
	}
	return res, nil
}

// Render prints the ablation.
func (r CollapseResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault-collapsing ablation — circuit %s\n", r.Circuit)
	tb := tablefmt.New("fault list", "faults", "detected", "coverage")
	for _, row := range r.Rows {
		tb.AddRow(row.View, row.Faults, row.Detected, fmt.Sprintf("%.4f", row.Coverage))
	}
	sb.WriteString(tb.String())
	return sb.String()
}
