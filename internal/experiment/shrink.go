package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/tablefmt"
	"repro/internal/yield"
)

// ShrinkRow is one point of the §8 fine-line study.
type ShrinkRow struct {
	Scale     float64 // linear feature scale (1 = original, 0.7 = 30% shrink)
	Area      float64 // relative area = Scale²
	Yield     float64 // predicted by Eq. 3
	N0        float64 // faults per defective chip after density increase
	RequiredF float64 // coverage needed for the target reject rate
}

// ShrinkResult is the §8 prediction: what finer design rules do to the
// testing problem.
type ShrinkResult struct {
	TargetR float64
	Rows    []ShrinkRow
}

// ShrinkStudy models §8: a fixed circuit re-implemented at linear scale
// s occupies area s² (relative), so the defect count per chip drops to
// s²·D0A and yield rises per Eq. 3. At the same time a physical defect
// of fixed size hits more logic when features shrink, so faults per
// defect — and hence n0 — grow as 1/s² (defect area in circuit units).
// Both effects lower the required coverage, the paper's §8 conclusion.
//
// baseD0A is the defect count per chip at scale 1; lambda is Eq. 3's
// clustering parameter; baseN0 the starting n0; targetR the quality
// goal.
func ShrinkStudy(baseD0A, lambda, baseN0, targetR float64, scales []float64) (ShrinkResult, error) {
	nb, err := yield.NewNegBinomial(lambda)
	if err != nil {
		return ShrinkResult{}, err
	}
	if !(baseD0A > 0) || !(baseN0 >= 1) {
		return ShrinkResult{}, fmt.Errorf("experiment: baseD0A must be > 0 and baseN0 >= 1")
	}
	res := ShrinkResult{TargetR: targetR}
	for _, s := range scales {
		if !(s > 0 && s <= 1) {
			return ShrinkResult{}, fmt.Errorf("experiment: scale %v outside (0,1]", s)
		}
		area := s * s
		y := nb.Yield(yield.ScaleArea(baseD0A, area))
		n0 := baseN0 / area
		if y >= 1 {
			y = 1 - 1e-9
		}
		m, err := core.New(y, n0)
		if err != nil {
			return ShrinkResult{}, err
		}
		f, err := m.RequiredCoverage(targetR)
		if err != nil {
			return ShrinkResult{}, err
		}
		res.Rows = append(res.Rows, ShrinkRow{Scale: s, Area: area, Yield: y, N0: n0, RequiredF: f})
	}
	return res, nil
}

// Render prints the shrink table.
func (r ShrinkResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§8 fine-line shrink study — target reject rate %g\n", r.TargetR)
	tb := tablefmt.New("scale", "rel. area", "yield (Eq.3)", "n0", "required f")
	for _, row := range r.Rows {
		tb.AddRow(row.Scale, row.Area, row.Yield, row.N0, row.RequiredF)
	}
	sb.WriteString(tb.String())
	return sb.String()
}
