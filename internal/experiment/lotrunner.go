package experiment

import (
	"math/rand"

	"repro/internal/circuits"
	"repro/internal/defect"
	"repro/internal/estimate"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tester"
)

// LotRunner runs §5 lots against a circuits.Prepared artifact — the
// circuit, its collapsed fault universe, the ordered production test
// set, and the strobe-granular coverage ramp — so that many lots
// (different yields, n0s, lot sizes, seeds) can be manufactured and
// tested against the same test program without repeating ATPG or fault
// simulation. RunTable1 runs one lot through it; internal/sweep fans
// out thousands, sharing one Prepared per circuit via a circuits.Cache.
//
// A LotRunner is safe for concurrent RunLot calls: the shared state is
// read-only after construction except the ATE's simulator, so each
// RunLot builds its own tester over the shared pattern set. To amortize
// the good-machine pre-simulation too, each worker goroutine should
// clone one ATE via NewATE and pass it to RunLotWith.
type LotRunner struct {
	cfg         Table1Config
	prep        *circuits.Prepared
	checkpoints []int // Table 1 reduction points on the ramp
}

// NewLotRunner validates the configuration and performs the
// once-per-circuit preparation uncached (circuits.Prepare): test-set
// construction and the strobe-granular coverage ramp. Campaigns that
// reuse circuits should prepare through a circuits.Cache and call
// NewLotRunnerFrom instead.
func NewLotRunner(cfg Table1Config) (*LotRunner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.Circuit
	if c == nil {
		var err error
		c, err = circuits.Resolve(DefaultCircuitSpec)
		if err != nil {
			return nil, err
		}
	}
	prep, err := circuits.Prepare(c, cfg.PrepareParams())
	if err != nil {
		return nil, err
	}
	return NewLotRunnerFrom(prep, cfg)
}

// NewLotRunnerFrom builds a LotRunner over an existing Prepared
// artifact; only the cheap lot-level state (the Table 1 checkpoint
// selection) is computed here, so constructing many runners over one
// artifact costs nothing. The artifact overrides cfg.Circuit.
func NewLotRunnerFrom(prep *circuits.Prepared, cfg Table1Config) (*LotRunner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LotRunner{
		cfg:  cfg,
		prep: prep,
		// Ten Table 1 checkpoints spread over the ramp; depends only on
		// the curve, so compute once here rather than per lot.
		checkpoints: rampCheckpoints(prep.Curve, 10),
	}, nil
}

// Prepared returns the shared once-per-circuit artifact.
func (lr *LotRunner) Prepared() *circuits.Prepared { return lr.prep }

// Circuit returns the circuit under test.
func (lr *LotRunner) Circuit() *netlist.Circuit { return lr.prep.Circuit }

// Stats returns the circuit statistics.
func (lr *LotRunner) Stats() netlist.Stats { return lr.prep.Stats }

// FaultCount returns the size of the collapsed fault universe.
func (lr *LotRunner) FaultCount() int { return lr.prep.FaultCount() }

// Patterns returns the number of test patterns in the production set.
func (lr *LotRunner) Patterns() int { return len(lr.prep.Patterns) }

// Curve returns the strobe-granular cumulative coverage ramp
// (change-point compressed; see faultsim.SparseRamp).
func (lr *LotRunner) Curve() faultsim.Ramp { return lr.prep.Curve }

// FinalCoverage returns the pattern set's final fault coverage.
func (lr *LotRunner) FinalCoverage() float64 { return lr.prep.FinalCoverage() }

// NewATE builds a tester over the shared pattern set, pre-simulating
// the good machine and selecting the configured lot engine. One ATE
// serves any number of sequential RunLotWith calls; concurrent callers
// need one each.
func (lr *LotRunner) NewATE() (*tester.ATE, error) {
	ate, err := lr.prep.NewATE()
	if err != nil {
		return nil, err
	}
	ate.SetEngine(lr.cfg.LotEngine)
	return ate, nil
}

// LotOutcome is one manufactured-and-tested lot: the raw step-granular
// first-fail record plus the Table 1 reduction the estimators consume.
type LotOutcome struct {
	// Chips is the lot size, Good the number of fault-free chips.
	Chips, Good int
	// TrueN0 is the lot's empirical mean fault count on defective chips.
	TrueN0 float64
	// LotYield is the achieved fraction of fault-free chips.
	LotYield float64
	// TestedYield is the fraction passing the whole pattern set.
	TestedYield float64
	// Escapes counts defective chips that passed every pattern.
	Escapes int
	// FirstFail[i] is chip i's first failing strobe step (pattern ×
	// output granularity), or tester.NeverFails.
	FirstFail []int
	// Rows is the Table 1 fallout reduction at the ramp checkpoints.
	Rows []tester.FalloutRow
	// Curve is Rows in the estimators' input format.
	Curve estimate.Curve
}

// RunLot manufactures and tests one lot at the given ground truth,
// building a fresh ATE. Seed controls only the lot, not the test set.
func (lr *LotRunner) RunLot(y, n0 float64, chips int, seed int64) (LotOutcome, error) {
	ate, err := lr.NewATE()
	if err != nil {
		return LotOutcome{}, err
	}
	return lr.RunLotWith(ate, y, n0, chips, seed)
}

// RunLotWith is RunLot against a caller-held ATE (from NewATE), letting
// worker goroutines amortize the good-machine pre-simulation across
// many replicates.
func (lr *LotRunner) RunLotWith(ate *tester.ATE, y, n0 float64, chips int, seed int64) (LotOutcome, error) {
	rng := rand.New(rand.NewSource(seed))
	var lot defect.Lot
	var err error
	if lr.cfg.Physical {
		model, err := physicalFor(y, n0)
		if err != nil {
			return LotOutcome{}, err
		}
		lot, err = defect.GenerateLot(model, lr.prep.Universe, chips, rng)
		if err != nil {
			return LotOutcome{}, err
		}
	} else {
		lot, err = defect.GenerateLotFromModel(y, n0, lr.prep.Universe, chips, rng)
		if err != nil {
			return LotOutcome{}, err
		}
	}
	lotRes, err := ate.TestLotSteps(lot)
	if err != nil {
		return LotOutcome{}, err
	}
	// Reduce to Table 1 format at the precomputed ramp checkpoints.
	rows, err := tester.FalloutTableRamp(lotRes, lr.prep.Curve, lr.checkpoints)
	if err != nil {
		return LotOutcome{}, err
	}
	estCurve := make(estimate.Curve, len(rows))
	for i, r := range rows {
		estCurve[i] = estimate.FalloutPoint{F: r.Coverage, Fail: r.CumFracton}
	}
	good := 0
	for _, ch := range lot.Chips {
		if !ch.Defective() {
			good++
		}
	}
	return LotOutcome{
		Chips:       chips,
		Good:        good,
		TrueN0:      lot.MeanFaultsOnDefective(),
		LotYield:    lot.Yield,
		TestedYield: lotRes.TestedYield,
		Escapes:     lotRes.Escapes,
		FirstFail:   lotRes.FirstFail,
		Rows:        rows,
		Curve:       estCurve,
	}, nil
}
