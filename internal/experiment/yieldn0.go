package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/defect"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/numeric"
	"repro/internal/tablefmt"
)

// The paper's concluding remarks call for exactly this experiment:
// "Further work should establish at least an empirical relationship
// between yield and average number of faults." YieldN0Study runs it on
// the synthetic line: sweep defect density, manufacture lots through
// the physical-defect model, and measure the (yield, n0) pairs that
// emerge; then fit the analytic relation
//
//	n0(y) = k · (-ln y) / (1 - y)
//
// which follows from Poisson defects (y = e^{-D0A}) with an average of
// k logical faults per physical defect.

// YieldN0Row is one measured point of the study.
type YieldN0Row struct {
	D0A         float64 // defects per chip (ground truth)
	Yield       float64 // measured lot yield
	N0          float64 // measured mean faults on defective chips
	PredictedN0 float64 // analytic n0 from the fitted k at this yield
}

// YieldN0Result is the full sweep plus the fitted faults-per-defect.
type YieldN0Result struct {
	FaultsPerDefect float64 // ground truth k
	FittedK         float64 // k recovered from the (yield, n0) pairs
	Rows            []YieldN0Row
}

// YieldN0Study sweeps the defect density and measures the yield-n0
// relationship. chipsPerLot controls sampling noise; fpd is the
// ground-truth mean logical faults per physical defect.
func YieldN0Study(c *netlist.Circuit, d0as []float64, fpd float64, chipsPerLot int, seed int64) (YieldN0Result, error) {
	if len(d0as) < 2 {
		return YieldN0Result{}, fmt.Errorf("experiment: need >= 2 defect densities")
	}
	if chipsPerLot < 10 {
		return YieldN0Result{}, fmt.Errorf("experiment: need >= 10 chips per lot")
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	rng := rand.New(rand.NewSource(seed))
	res := YieldN0Result{FaultsPerDefect: fpd}
	for _, d0a := range d0as {
		m := defect.Model{D0A: d0a, FaultsPerDefect: fpd, Locality: 0.5}
		lot, err := defect.GenerateLot(m, universe, chipsPerLot, rng)
		if err != nil {
			return YieldN0Result{}, err
		}
		if lot.Yield >= 1 || lot.Yield <= 0 {
			continue // degenerate lot: all good or all bad, no (y, n0) point
		}
		res.Rows = append(res.Rows, YieldN0Row{
			D0A:   d0a,
			Yield: lot.Yield,
			N0:    lot.MeanFaultsOnDefective(),
		})
	}
	if len(res.Rows) < 2 {
		return YieldN0Result{}, fmt.Errorf("experiment: too few non-degenerate lots")
	}
	// Fit k by least squares on n0 = k * (-ln y)/(1-y).
	sse := func(k float64) float64 {
		var s numeric.KahanSum
		for _, row := range res.Rows {
			pred := k * -math.Log(row.Yield) / (1 - row.Yield)
			d := row.N0 - pred
			s.Add(d * d)
		}
		return s.Sum()
	}
	coarse := numeric.GridMinimize(sse, 0.5, 20, 300)
	res.FittedK = numeric.GoldenMinimize(sse, math.Max(0.5, coarse-1), coarse+1, 1e-8)
	for i := range res.Rows {
		row := &res.Rows[i]
		row.PredictedN0 = res.FittedK * -math.Log(row.Yield) / (1 - row.Yield)
	}
	return res, nil
}

// Render prints the study.
func (r YieldN0Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Yield vs n0 (the paper's proposed future work)\n")
	fmt.Fprintf(&sb, "ground-truth faults/defect k = %.2f, fitted k = %.2f\n", r.FaultsPerDefect, r.FittedK)
	tb := tablefmt.New("D0·A", "yield", "measured n0", "k·(-ln y)/(1-y)")
	for _, row := range r.Rows {
		tb.AddRow(row.D0A, row.Yield, row.N0, row.PredictedN0)
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nlower yield (bigger/denser chips) carries more faults per defective\n")
	sb.WriteString("die, which is why LSI needs less coverage than the single-fault model says.\n")
	return sb.String()
}
