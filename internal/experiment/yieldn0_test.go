package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestYieldN0StudyRecoversK(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	d0as := []float64{0.3, 0.6, 1.0, 1.5, 2.2, 3.0}
	res, err := YieldN0Study(c, d0as, 3.0, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FittedK-3.0) > 0.3 {
		t.Errorf("fitted k = %v, truth 3.0", res.FittedK)
	}
	// n0 rises as yield falls (the paper's intuition: a larger/denser
	// chip has both lower yield and more faults when defective).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Yield >= res.Rows[i-1].Yield {
			t.Errorf("yield should fall along the density sweep")
		}
		if res.Rows[i].N0 <= res.Rows[i-1].N0-0.5 {
			t.Errorf("n0 should rise (noise allowance) along the sweep: %v after %v",
				res.Rows[i].N0, res.Rows[i-1].N0)
		}
	}
	// Predictions track measurements.
	for _, row := range res.Rows {
		if math.Abs(row.PredictedN0-row.N0) > 0.25*row.N0 {
			t.Errorf("prediction %v far from measured %v at yield %v",
				row.PredictedN0, row.N0, row.Yield)
		}
	}
	if !strings.Contains(res.Render(), "fitted k") {
		t.Error("render incomplete")
	}
}

func TestYieldN0StudyValidation(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := YieldN0Study(c, []float64{1}, 2, 1000, 1); err == nil {
		t.Error("single density should error")
	}
	if _, err := YieldN0Study(c, []float64{1, 2}, 2, 5, 1); err == nil {
		t.Error("tiny lots should error")
	}
}
