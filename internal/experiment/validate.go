package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/defect"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tablefmt"
	"repro/internal/tester"
)

// RejectRateRow is one operating point of the end-to-end validation.
type RejectRateRow struct {
	Coverage   float64 // fault coverage of the truncated test set
	PredictedR float64 // Eq. 8 prediction
	MeasuredR  float64 // escapes / passed, from the simulated line
	Passed     int
	Escapes    int
}

// RejectRateValidation is the strongest check in the repository: the
// closed-form reject rate (Eq. 8) compared against a full physical
// simulation — manufacture chips, test them with a *truncated* pattern
// set of known coverage, ship whatever passes, and count how many
// shipped chips were actually defective.
type RejectRateValidation struct {
	Yield float64
	N0    float64
	Chips int
	Rows  []RejectRateRow
}

// ValidateRejectRate runs the validation at several truncation points
// of the pattern set. Chips should be large (tens of thousands) for
// the measured rate to resolve sub-percent reject rates.
//
// The whole lot is first-fail-tested exactly once, against the full
// pattern set: a chip passes the program truncated at pattern cut iff
// its first failing pattern lies at or beyond the cut, so one pass
// serves every truncation point (the same reduction internal/sweep
// uses). Earlier revisions rebuilt a fresh ATE — re-simulating the good
// machine — and retested the entire lot at every truncation point.
func ValidateRejectRate(c *netlist.Circuit, y, n0 float64, chips int, truncations []float64, seed int64) (RejectRateValidation, error) {
	if chips < 100 {
		return RejectRateValidation{}, fmt.Errorf("experiment: need >= 100 chips")
	}
	m, err := core.New(y, n0)
	if err != nil {
		return RejectRateValidation{}, err
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns, err := atpg.ProductionTests(c, 96, 96, seed)
	if err != nil {
		return RejectRateValidation{}, err
	}
	res, err := faultsim.Run(c, universe, patterns, faultsim.PPSFP)
	if err != nil {
		return RejectRateValidation{}, err
	}
	curve := faultsim.CurveFromResult(res)
	rng := rand.New(rand.NewSource(seed))
	lot, err := defect.GenerateLotFromModel(y, n0, universe, chips, rng)
	if err != nil {
		return RejectRateValidation{}, err
	}
	ate, err := tester.New(c, patterns)
	if err != nil {
		return RejectRateValidation{}, err
	}
	lotRes, err := ate.TestLot(lot)
	if err != nil {
		return RejectRateValidation{}, err
	}
	good := 0
	for _, chip := range lot.Chips {
		if !chip.Defective() {
			good++
		}
	}
	out := RejectRateValidation{Yield: y, N0: n0, Chips: chips}
	seen := make(map[int]bool)
	for _, target := range truncations {
		// Find the shortest prefix reaching the target coverage.
		cut := -1
		for i, pt := range curve {
			if pt.Coverage >= target {
				cut = i + 1
				break
			}
		}
		if cut < 1 || seen[cut] {
			continue // unreachable target, or same prefix as a previous one
		}
		seen[cut] = true
		// Ship whatever the truncated program passes; the defective
		// shipped chips are the escapes. Counted in integers — the
		// tester counted them exactly, no yield round-trip needed.
		passed := 0
		for _, ff := range lotRes.FirstFail {
			if ff == tester.NeverFails || ff >= cut {
				passed++
			}
		}
		achieved := curve[cut-1].Coverage
		row := RejectRateRow{
			Coverage:   achieved,
			PredictedR: m.RejectRate(achieved),
			Passed:     passed,
			Escapes:    passed - good,
		}
		if passed > 0 {
			row.MeasuredR = float64(row.Escapes) / float64(passed)
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 0 {
		return RejectRateValidation{}, fmt.Errorf("experiment: no truncation point reachable")
	}
	return out, nil
}

// Render prints the validation table.
func (r RejectRateValidation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Eq. 8 end-to-end validation — y=%.2f n0=%.1f, %d chips\n", r.Yield, r.N0, r.Chips)
	tb := tablefmt.New("coverage", "predicted r", "measured r", "passed", "escapes")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.3f", row.Coverage),
			fmt.Sprintf("%.4f", row.PredictedR),
			fmt.Sprintf("%.4f", row.MeasuredR),
			row.Passed, row.Escapes)
	}
	sb.WriteString(tb.String())
	return sb.String()
}
