package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestValidateRejectRateEndToEnd(t *testing.T) {
	// The decisive check: Eq. 8's closed form against the simulated
	// production line. 20k chips resolve reject rates of a few percent
	// with small relative error at moderate coverage.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.5, 0.7, 0.85}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("only %d truncation points", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The model assumes faults are detected like random draws
		// (Eq. 4); the real circuit's detection correlations perturb
		// this, so demand agreement within a factor, not exactness:
		// measured within [0.3x, 3x] of predicted, and both small.
		if row.PredictedR <= 0 {
			t.Fatalf("degenerate prediction at coverage %v", row.Coverage)
		}
		ratio := row.MeasuredR / row.PredictedR
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("coverage %.3f: measured %v vs predicted %v (ratio %v)",
				row.Coverage, row.MeasuredR, row.PredictedR, ratio)
		}
	}
	// Reject rate must fall with coverage in both columns.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PredictedR >= res.Rows[i-1].PredictedR {
			t.Error("prediction not decreasing")
		}
		if res.Rows[i].MeasuredR > res.Rows[i-1].MeasuredR+0.005 {
			t.Error("measurement not decreasing (beyond noise)")
		}
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render incomplete")
	}
}

func TestValidateRejectRateWadsackComparison(t *testing.T) {
	// At the same operating point the Wadsack formula r = (1-y)(1-f)
	// should overpredict the measured reject rate (it ignores that
	// multi-fault chips are easier to catch).
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.7}, 11)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	wadsack := (1 - 0.3) * (1 - row.Coverage)
	if !(row.MeasuredR < wadsack) {
		t.Errorf("measured %v should undercut Wadsack %v", row.MeasuredR, wadsack)
	}
	// And the paper's model should be much closer than Wadsack.
	if math.Abs(row.MeasuredR-row.PredictedR) > math.Abs(row.MeasuredR-wadsack) {
		t.Errorf("paper model (%v) further from measurement (%v) than Wadsack (%v)",
			row.PredictedR, row.MeasuredR, wadsack)
	}
}

func TestValidateRejectRateValidation(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 10, []float64{0.5}, 1); err == nil {
		t.Error("tiny lot should error")
	}
	if _, err := ValidateRejectRate(c, 0, 6, 1000, []float64{0.5}, 1); err == nil {
		t.Error("invalid yield should error")
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 1000, []float64{2}, 1); err == nil {
		t.Error("unreachable truncation should error")
	}
}
