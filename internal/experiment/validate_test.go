package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tester"
)

func TestValidateRejectRateEndToEnd(t *testing.T) {
	// The decisive check: Eq. 8's closed form against the simulated
	// production line. 20k chips resolve reject rates of a few percent
	// with small relative error at moderate coverage.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.5, 0.7, 0.85}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("only %d truncation points", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The model assumes faults are detected like random draws
		// (Eq. 4); the real circuit's detection correlations perturb
		// this, so demand agreement within a factor, not exactness:
		// measured within [0.3x, 3x] of predicted, and both small.
		if row.PredictedR <= 0 {
			t.Fatalf("degenerate prediction at coverage %v", row.Coverage)
		}
		ratio := row.MeasuredR / row.PredictedR
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("coverage %.3f: measured %v vs predicted %v (ratio %v)",
				row.Coverage, row.MeasuredR, row.PredictedR, ratio)
		}
	}
	// Reject rate must fall with coverage in both columns.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PredictedR >= res.Rows[i-1].PredictedR {
			t.Error("prediction not decreasing")
		}
		if res.Rows[i].MeasuredR > res.Rows[i-1].MeasuredR+0.005 {
			t.Error("measurement not decreasing (beyond noise)")
		}
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render incomplete")
	}
}

func TestValidateRejectRateWadsackComparison(t *testing.T) {
	// At the same operating point the Wadsack formula r = (1-y)(1-f)
	// should overpredict the measured reject rate (it ignores that
	// multi-fault chips are easier to catch).
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.7}, 11)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	wadsack := (1 - 0.3) * (1 - row.Coverage)
	if !(row.MeasuredR < wadsack) {
		t.Errorf("measured %v should undercut Wadsack %v", row.MeasuredR, wadsack)
	}
	// And the paper's model should be much closer than Wadsack.
	if math.Abs(row.MeasuredR-row.PredictedR) > math.Abs(row.MeasuredR-wadsack) {
		t.Errorf("paper model (%v) further from measurement (%v) than Wadsack (%v)",
			row.PredictedR, row.MeasuredR, wadsack)
	}
}

func TestValidateRejectRateCountsAreExact(t *testing.T) {
	// Passed and Escapes are integer counts off one first-fail pass:
	// monotone in coverage, internally consistent with the measured
	// rate, and Passed - Escapes (the truly good shipped chips) is the
	// same at every cut.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 5000, []float64{0.4, 0.6, 0.8}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	good := res.Rows[0].Passed - res.Rows[0].Escapes
	for i, row := range res.Rows {
		if row.Passed < 0 || row.Escapes < 0 || row.Escapes > row.Passed {
			t.Errorf("row %d: nonsense counts passed=%d escapes=%d", i, row.Passed, row.Escapes)
		}
		if row.Passed-row.Escapes != good {
			t.Errorf("row %d: good shipped chips drifted: %d vs %d", i, row.Passed-row.Escapes, good)
		}
		if row.Passed > 0 {
			if want := float64(row.Escapes) / float64(row.Passed); row.MeasuredR != want {
				t.Errorf("row %d: MeasuredR %v != escapes/passed %v", i, row.MeasuredR, want)
			}
		}
		if i > 0 && row.Passed > res.Rows[i-1].Passed {
			t.Errorf("row %d: passed count grew with coverage", i)
		}
	}
}

func TestValidateRejectRateValidation(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 10, []float64{0.5}, 1); err == nil {
		t.Error("tiny lot should error")
	}
	if _, err := ValidateRejectRate(c, 0, 6, 1000, []float64{0.5}, 1); err == nil {
		t.Error("invalid yield should error")
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 1000, []float64{2}, 1); err == nil {
		t.Error("unreachable truncation should error")
	}
}

func TestTable1ConfigValidate(t *testing.T) {
	good := DefaultTable1Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Table1Config)
	}{
		{"zero chips", func(c *Table1Config) { c.Chips = 0 }},
		{"negative chips", func(c *Table1Config) { c.Chips = -5 }},
		{"yield above 1", func(c *Table1Config) { c.Yield = 1.5 }},
		{"zero yield", func(c *Table1Config) { c.Yield = 0 }},
		{"yield NaN", func(c *Table1Config) { c.Yield = math.NaN() }},
		{"n0 below 1", func(c *Table1Config) { c.N0 = 0.5 }},
		{"negative n0", func(c *Table1Config) { c.N0 = -1 }},
		{"n0 NaN", func(c *Table1Config) { c.N0 = math.NaN() }},
		{"n0 infinite", func(c *Table1Config) { c.N0 = math.Inf(1) }},
		{"negative patterns", func(c *Table1Config) { c.RandomPatterns = -1 }},
		{"negative workers", func(c *Table1Config) { c.SimWorkers = -2 }},
		{"bogus lot engine", func(c *Table1Config) { c.LotEngine = tester.LotEngine(42) }},
	}
	for _, tc := range cases {
		cfg := DefaultTable1Config()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), "experiment:") {
			t.Errorf("%s: error lacks package prefix: %v", tc.name, err)
		}
		// RunTable1 must reject the same configs before any work.
		if _, err := RunTable1(cfg); err == nil {
			t.Errorf("%s: RunTable1 accepted", tc.name)
		}
	}
}
