package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestValidateRejectRateEndToEnd(t *testing.T) {
	// The decisive check: Eq. 8's closed form against the simulated
	// production line. 20k chips resolve reject rates of a few percent
	// with small relative error at moderate coverage.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.5, 0.7, 0.85}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("only %d truncation points", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The model assumes faults are detected like random draws
		// (Eq. 4); the real circuit's detection correlations perturb
		// this, so demand agreement within a factor, not exactness:
		// measured within [0.3x, 3x] of predicted, and both small.
		if row.PredictedR <= 0 {
			t.Fatalf("degenerate prediction at coverage %v", row.Coverage)
		}
		ratio := row.MeasuredR / row.PredictedR
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("coverage %.3f: measured %v vs predicted %v (ratio %v)",
				row.Coverage, row.MeasuredR, row.PredictedR, ratio)
		}
	}
	// Reject rate must fall with coverage in both columns.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PredictedR >= res.Rows[i-1].PredictedR {
			t.Error("prediction not decreasing")
		}
		if res.Rows[i].MeasuredR > res.Rows[i-1].MeasuredR+0.005 {
			t.Error("measurement not decreasing (beyond noise)")
		}
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render incomplete")
	}
}

func TestValidateRejectRateWadsackComparison(t *testing.T) {
	// At the same operating point the Wadsack formula r = (1-y)(1-f)
	// should overpredict the measured reject rate (it ignores that
	// multi-fault chips are easier to catch).
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateRejectRate(c, 0.3, 6, 20000, []float64{0.7}, 11)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	wadsack := (1 - 0.3) * (1 - row.Coverage)
	if !(row.MeasuredR < wadsack) {
		t.Errorf("measured %v should undercut Wadsack %v", row.MeasuredR, wadsack)
	}
	// And the paper's model should be much closer than Wadsack.
	if math.Abs(row.MeasuredR-row.PredictedR) > math.Abs(row.MeasuredR-wadsack) {
		t.Errorf("paper model (%v) further from measurement (%v) than Wadsack (%v)",
			row.PredictedR, row.MeasuredR, wadsack)
	}
}

func TestValidateRejectRateValidation(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 10, []float64{0.5}, 1); err == nil {
		t.Error("tiny lot should error")
	}
	if _, err := ValidateRejectRate(c, 0, 6, 1000, []float64{0.5}, 1); err == nil {
		t.Error("invalid yield should error")
	}
	if _, err := ValidateRejectRate(c, 0.3, 6, 1000, []float64{2}, 1); err == nil {
		t.Error("unreachable truncation should error")
	}
}

func TestTable1ConfigValidate(t *testing.T) {
	good := DefaultTable1Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Table1Config)
	}{
		{"zero chips", func(c *Table1Config) { c.Chips = 0 }},
		{"negative chips", func(c *Table1Config) { c.Chips = -5 }},
		{"yield above 1", func(c *Table1Config) { c.Yield = 1.5 }},
		{"zero yield", func(c *Table1Config) { c.Yield = 0 }},
		{"yield NaN", func(c *Table1Config) { c.Yield = math.NaN() }},
		{"n0 below 1", func(c *Table1Config) { c.N0 = 0.5 }},
		{"negative n0", func(c *Table1Config) { c.N0 = -1 }},
		{"n0 NaN", func(c *Table1Config) { c.N0 = math.NaN() }},
		{"n0 infinite", func(c *Table1Config) { c.N0 = math.Inf(1) }},
		{"negative patterns", func(c *Table1Config) { c.RandomPatterns = -1 }},
		{"negative workers", func(c *Table1Config) { c.SimWorkers = -2 }},
	}
	for _, tc := range cases {
		cfg := DefaultTable1Config()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), "experiment:") {
			t.Errorf("%s: error lacks package prefix: %v", tc.name, err)
		}
		// RunTable1 must reject the same configs before any work.
		if _, err := RunTable1(cfg); err == nil {
			t.Errorf("%s: RunTable1 accepted", tc.name)
		}
	}
}
