package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/numeric"
	"repro/internal/tablefmt"
)

// EstimatorBiasRow summarizes many synthetic lots at one operating
// point: the mean and RMS error of each n0 estimator.
type EstimatorBiasRow struct {
	Yield     float64
	TrueN0    float64
	Lots      int
	FitMean   float64
	FitRMSE   float64
	SlopeMean float64
	SlopeRMSE float64
}

// EstimatorBiasResult is the ablation DESIGN.md calls out: curve fit
// vs slope method across the yield range.
type EstimatorBiasResult struct {
	Chips int
	Rows  []EstimatorBiasRow
}

// EstimatorBias runs `lots` independent synthetic lots of `chips`
// chips at each (yield, n0) operating point, estimates n0 from each
// lot's fallout curve by both methods, and reports bias and RMS error.
// Lots are sampled directly from the statistical model with the Eq. 5
// escape process, so deviations are pure estimator properties, not
// substrate artifacts.
func EstimatorBias(points []struct{ Y, N0 float64 }, chips, lots int, seed int64) (EstimatorBiasResult, error) {
	if chips < 10 || lots < 2 {
		return EstimatorBiasResult{}, fmt.Errorf("experiment: need >= 10 chips and >= 2 lots")
	}
	coverages := []float64{0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65}
	rng := rand.New(rand.NewSource(seed))
	res := EstimatorBiasResult{Chips: chips}
	for _, pt := range points {
		m, err := core.New(pt.Y, pt.N0)
		if err != nil {
			return EstimatorBiasResult{}, err
		}
		fc := m.FaultCount()
		var fitSum, fitSq, slopeSum, slopeSq numeric.KahanSum
		used := 0
		for lot := 0; lot < lots; lot++ {
			firstFail := make([]float64, chips)
			for i := range firstFail {
				n := fc.Sample(rng)
				firstFail[i] = sampleFirstFail(rng, n, coverages)
			}
			curve := estimate.CurveFromFirstFails(firstFail, coverages)
			fit, err := estimate.FitN0(curve, pt.Y)
			if err != nil {
				continue
			}
			slope, err := estimate.SlopeN0(curve, pt.Y, 0.12)
			if err != nil {
				continue
			}
			used++
			fitSum.Add(fit.N0)
			fitSq.Add((fit.N0 - pt.N0) * (fit.N0 - pt.N0))
			slopeSum.Add(slope.N0)
			slopeSq.Add((slope.N0 - pt.N0) * (slope.N0 - pt.N0))
		}
		if used == 0 {
			return EstimatorBiasResult{}, fmt.Errorf("experiment: every lot failed to fit at y=%v", pt.Y)
		}
		res.Rows = append(res.Rows, EstimatorBiasRow{
			Yield:     pt.Y,
			TrueN0:    pt.N0,
			Lots:      used,
			FitMean:   fitSum.Sum() / float64(used),
			FitRMSE:   math.Sqrt(fitSq.Sum() / float64(used)),
			SlopeMean: slopeSum.Sum() / float64(used),
			SlopeRMSE: math.Sqrt(slopeSq.Sum() / float64(used)),
		})
	}
	return res, nil
}

// sampleFirstFail draws one chip's first-fail coverage under the Eq. 5
// escape model, NaN if it passes everything.
func sampleFirstFail(rng *rand.Rand, n int, coverages []float64) float64 {
	if n == 0 {
		return math.NaN()
	}
	prev := 0.0
	for _, f := range coverages {
		pSurvive := math.Pow((1-f)/(1-prev), float64(n))
		if rng.Float64() > pSurvive {
			return f
		}
		prev = f
	}
	return math.NaN()
}

// Render prints the ablation table.
func (r EstimatorBiasResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n0 estimator ablation — %d chips per lot\n", r.Chips)
	tb := tablefmt.New("yield", "true n0", "lots", "fit mean", "fit RMSE", "slope mean", "slope RMSE")
	for _, row := range r.Rows {
		tb.AddRow(row.Yield, row.TrueN0, row.Lots, row.FitMean, row.FitRMSE, row.SlopeMean, row.SlopeRMSE)
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nslope reads low (secant on a concave curve) — the safe direction, as §5 notes.\n")
	return sb.String()
}
