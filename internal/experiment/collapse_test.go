package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestCollapseStudy(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CollapseStudy(c, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	full, eq, dom := res.Rows[0], res.Rows[1], res.Rows[2]
	if !(full.Faults > eq.Faults && eq.Faults > dom.Faults) {
		t.Errorf("fault counts not shrinking: %d %d %d", full.Faults, eq.Faults, dom.Faults)
	}
	// The coverage *fraction* stays close across views: equivalence
	// classes are detected together, and a near-complete random set
	// leaves the ratios within a few points.
	if math.Abs(full.Coverage-eq.Coverage) > 0.05 {
		t.Errorf("full %v vs equivalence %v coverage drifted", full.Coverage, eq.Coverage)
	}
	if math.Abs(eq.Coverage-dom.Coverage) > 0.05 {
		t.Errorf("equivalence %v vs dominance %v coverage drifted", eq.Coverage, dom.Coverage)
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Error("render incomplete")
	}
}

func TestCollapseStudyInvalidCircuit(t *testing.T) {
	bad := netlist.New("empty")
	if _, err := CollapseStudy(bad, 16, 1); err == nil {
		t.Error("invalid circuit should error")
	}
}
