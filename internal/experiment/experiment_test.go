package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func TestFig1SpotChecksMatchPaper(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 || len(res.SpotChecks) != 4 {
		t.Fatalf("curves %d spots %d", len(res.Curves), len(res.SpotChecks))
	}
	paper := map[string]float64{"0.80/2": 0.95, "0.80/10": 0.38, "0.20/2": 0.99, "0.20/10": 0.63}
	for _, s := range res.SpotChecks {
		key := ""
		switch {
		case s.Y == 0.80 && s.N0 == 2:
			key = "0.80/2"
		case s.Y == 0.80 && s.N0 == 10:
			key = "0.80/10"
		case s.Y == 0.20 && s.N0 == 2:
			key = "0.20/2"
		case s.Y == 0.20 && s.N0 == 10:
			key = "0.20/10"
		}
		want := paper[key]
		tol := 0.02
		if want > 0.98 {
			tol = 0.01
		}
		if math.Abs(s.RequiredF-want) > tol {
			t.Errorf("%s: required f %v, paper reads %v", key, s.RequiredF, want)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "legend") {
		t.Error("render incomplete")
	}
}

func TestFig1CurvesDecreasing(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Curves {
		for i := 1; i < len(c.Y); i++ {
			if c.Y[i] > c.Y[i-1]+1e-12 {
				t.Fatalf("%s: r(f) not decreasing at index %d", c.Name, i)
			}
		}
	}
}

func TestRequiredCoverageFigures(t *testing.T) {
	for _, r := range []float64{0.01, 0.005, 0.001} {
		res, err := RequiredCoverageFigure(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Curves) != 12 {
			t.Fatalf("r=%v: %d curves", r, len(res.Curves))
		}
		// Required coverage decreases with yield (along each curve) and
		// with n0 (across curves at fixed yield).
		for _, c := range res.Curves {
			for i := 1; i < len(c.Y); i++ {
				if c.Y[i] > c.Y[i-1]+1e-9 {
					t.Fatalf("r=%v %s: required f not decreasing in yield", r, c.Name)
				}
			}
		}
		mid := len(res.Curves[0].X) / 2
		for n := 1; n < len(res.Curves); n++ {
			if res.Curves[n].Y[mid] > res.Curves[n-1].Y[mid]+1e-9 {
				t.Fatalf("r=%v: required f not decreasing in n0 at yield %v",
					r, res.Curves[0].X[mid])
			}
		}
		if !strings.Contains(res.Render(), "Required fault coverage") {
			t.Error("render incomplete")
		}
	}
}

func TestFig4SpotCheckThroughFigure(t *testing.T) {
	// §6's example read from Fig. 4: r=0.001, y=0.3, n0=8 → f ≈ 0.85.
	res, err := RequiredCoverageFigure(0.001)
	if err != nil {
		t.Fatal(err)
	}
	curve := res.Curves[7] // n0 = 8
	if curve.Name != "n0=8" {
		t.Fatalf("curve order: %s", curve.Name)
	}
	// Find y = 0.3.
	fAt := 0.0
	for i, y := range curve.X {
		if math.Abs(y-0.3) < 0.006 {
			fAt = curve.Y[i]
			break
		}
	}
	if math.Abs(fAt-0.85) > 0.02 {
		t.Errorf("f(y=0.3, n0=8) = %v, paper reads 0.85", fAt)
	}
}

func TestRequiredCoverageFigureValidation(t *testing.T) {
	if _, err := RequiredCoverageFigure(0); err == nil {
		t.Error("r=0 should error")
	}
	if _, err := RequiredCoverageFigure(1); err == nil {
		t.Error("r=1 should error")
	}
}

func TestFig6Shapes(t *testing.T) {
	res := Fig6()
	if res.N != 1000 {
		t.Fatal("N")
	}
	// 5 n values x 3 approximations.
	if len(res.Curves) != 15 {
		t.Fatalf("%d curves", len(res.Curves))
	}
	// For n <= 4 the three approximations agree (paper: "For n <= 4,
	// all three values are the same").
	byName := map[string]Curve{}
	for _, c := range res.Curves {
		byName[c.Name] = c
	}
	for _, n := range []string{"n=2", "n=4"} {
		exact := byName[n+" exact (A.1)"]
		for _, ap := range []string{" corrected (A.2)", " simple (A.3)"} {
			other := byName[n+ap]
			for i := range exact.X {
				if exact.Y[i] < 1e-6 {
					continue // below the figure's log-axis floor
				}
				// "The same" on a 6-decade log plot: log distance under
				// 0.09 decades (< 1.5% of the axis height).
				logDist := math.Abs(math.Log10(other.Y[i]) - math.Log10(exact.Y[i]))
				if logDist > 0.09 {
					t.Errorf("%s%s: log10 distance %v at f=%v", n, ap, logDist, exact.X[i])
				}
			}
		}
	}
	if !strings.Contains(res.Render(), "Fig. 6") {
		t.Error("render incomplete")
	}
}

func TestWadsackComparisonSection7(t *testing.T) {
	res, err := WadsackComparison(0.07, 8, []float64{0.01, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	r1 := res.Rows[0]
	if math.Abs(r1.PaperModel-0.80) > 0.02 || math.Abs(r1.Wadsack-0.99) > 0.002 {
		t.Errorf("r=1%%: paper %v wadsack %v", r1.PaperModel, r1.Wadsack)
	}
	r2 := res.Rows[1]
	if math.Abs(r2.PaperModel-0.95) > 0.02 || math.Abs(r2.Wadsack-0.999) > 0.0002 {
		t.Errorf("r=0.1%%: paper %v wadsack %v", r2.PaperModel, r2.Wadsack)
	}
	if !strings.Contains(res.Render(), "Wadsack") {
		t.Error("render incomplete")
	}
}

func TestWadsackComparisonValidation(t *testing.T) {
	if _, err := WadsackComparison(0, 8, []float64{0.01}); err == nil {
		t.Error("bad yield should error")
	}
	if _, err := WadsackComparison(0.07, 8, []float64{2}); err == nil {
		t.Error("bad target should error")
	}
}

func TestShrinkStudyDirections(t *testing.T) {
	res, err := ShrinkStudy(2.659, 0.5, 8, 0.001, []float64{1, 0.8, 0.6, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatal("rows")
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Yield <= prev.Yield {
			t.Errorf("yield should rise as area shrinks: %v -> %v", prev.Yield, cur.Yield)
		}
		if cur.N0 <= prev.N0 {
			t.Errorf("n0 should rise as features shrink: %v -> %v", prev.N0, cur.N0)
		}
		if cur.RequiredF >= prev.RequiredF {
			t.Errorf("required coverage should fall (§8): %v -> %v", prev.RequiredF, cur.RequiredF)
		}
	}
	if !strings.Contains(res.Render(), "shrink") {
		t.Error("render incomplete")
	}
}

func TestShrinkStudyValidation(t *testing.T) {
	if _, err := ShrinkStudy(0, 0.5, 8, 0.001, []float64{1}); err == nil {
		t.Error("zero D0A should error")
	}
	if _, err := ShrinkStudy(2, 0.5, 8, 0.001, []float64{1.5}); err == nil {
		t.Error("scale > 1 should error")
	}
	if _, err := ShrinkStudy(2, 0, 8, 0.001, []float64{1}); err == nil {
		t.Error("zero lambda should error")
	}
}

func TestRunTable1SmallCircuit(t *testing.T) {
	// Use a small multiplier to keep the test fast; ground-truth
	// recovery tolerances are loose because the lot is only 277 chips.
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTable1Config()
	cfg.Circuit = c
	cfg.RandomPatterns = 96
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fallout table must be cumulative and end near 1 - yield.
	prevFail := -1
	for _, row := range res.Rows {
		if row.CumFailed < prevFail {
			t.Fatal("fallout not cumulative")
		}
		prevFail = row.CumFailed
	}
	last := res.Rows[len(res.Rows)-1]
	if math.Abs(last.CumFracton-(1-res.LotYield)) > 0.05 {
		t.Errorf("final fallout %v vs 1 - yield %v (escapes %d)",
			last.CumFracton, 1-res.LotYield, res.Escapes)
	}
	// Ground-truth recovery: fitted n0 within sampling noise of truth.
	if math.Abs(res.FitN0-res.TrueN0) > 2.5 {
		t.Errorf("fit n0 %v vs lot truth %v", res.FitN0, res.TrueN0)
	}
	// Paper data re-analysis matches the paper's own numbers.
	if math.Abs(res.PaperFitN0-8) > 1 {
		t.Errorf("paper fit n0 = %v, paper says ≈8", res.PaperFitN0)
	}
	if math.Abs(res.PaperSlopeN0-8.8) > 0.05 {
		t.Errorf("paper slope n0 = %v, paper says 8.8", res.PaperSlopeN0)
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "Fig. 5", "n0 curve fit"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunTable1PhysicalLayer(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTable1Config()
	cfg.Circuit = c
	cfg.Chips = 400
	cfg.RandomPatterns = 64
	cfg.Physical = true
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The physical layer targets the same yield/n0; the achieved lot
	// values are noisy but should be in the neighbourhood.
	if math.Abs(res.LotYield-cfg.Yield) > 0.07 {
		t.Errorf("physical lot yield %v vs target %v", res.LotYield, cfg.Yield)
	}
	if res.TrueN0 < 4 || res.TrueN0 > 16 {
		t.Errorf("physical lot n0 %v far from target %v", res.TrueN0, cfg.N0)
	}
}

func TestRunTable1Validation(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Chips = 0
	if _, err := RunTable1(cfg); err == nil {
		t.Error("zero chips should error")
	}
}

func TestRampCheckpoints(t *testing.T) {
	points := make([]faultsim.CoveragePoint, 100)
	for i := range points {
		points[i] = faultsim.CoveragePoint{Pattern: i, Coverage: float64(i+1) / 100}
	}
	ramp := faultsim.Ramp{Points: points, Steps: 100}
	cps := rampCheckpoints(ramp, 10)
	if len(cps) < 9 || len(cps) > 11 {
		t.Fatalf("%d checkpoints", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatal("checkpoints not increasing")
		}
	}
	if cps[len(cps)-1] != 99 {
		t.Error("last checkpoint should be the final step")
	}
	if rampCheckpoints(faultsim.Ramp{}, 5) != nil {
		t.Error("empty ramp should give nil")
	}
}
