// Package experiment regenerates every table and figure of the paper's
// evaluation: Fig. 1 (reject rate vs coverage), Figs. 2-4 (required
// coverage vs yield), Fig. 5 + Table 1 (n0 determination from lot
// test data), Fig. 6 (escape-probability approximations), the §7
// Wadsack comparison, and the §8 fine-line shrink study. Each driver
// returns structured series plus a rendered text artifact.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/tablefmt"
	"repro/internal/textplot"
)

// Curve is a named (x, y) series.
type Curve struct {
	Name string
	X, Y []float64
}

// Fig1Result holds the reject-rate curves of Fig. 1.
type Fig1Result struct {
	Curves []Curve
	// SpotChecks quotes the paper's reading of the figure: required
	// coverage at r = 0.005 for each (y, n0).
	SpotChecks []Fig1Spot
}

// Fig1Spot is one quoted operating point.
type Fig1Spot struct {
	Y, N0, TargetR, RequiredF float64
}

// Fig1 computes r(f) for the paper's four (yield, n0) combinations:
// y ∈ {0.80, 0.20} × n0 ∈ {2, 10}, f ∈ [0, 1].
func Fig1() (Fig1Result, error) {
	combos := []struct{ y, n0 float64 }{
		{0.80, 2}, {0.80, 10}, {0.20, 2}, {0.20, 10},
	}
	var res Fig1Result
	fs := numeric.Linspace(0, 1, 201)
	for _, c := range combos {
		m, err := core.New(c.y, c.n0)
		if err != nil {
			return Fig1Result{}, err
		}
		ys := make([]float64, len(fs))
		for i, f := range fs {
			ys[i] = m.RejectRate(f)
		}
		res.Curves = append(res.Curves, Curve{
			Name: fmt.Sprintf("y=%.2f n0=%g", c.y, c.n0),
			X:    fs, Y: ys,
		})
		reqF, err := m.RequiredCoverage(0.005)
		if err != nil {
			return Fig1Result{}, err
		}
		res.SpotChecks = append(res.SpotChecks, Fig1Spot{Y: c.y, N0: c.n0, TargetR: 0.005, RequiredF: reqF})
	}
	return res, nil
}

// Render draws Fig. 1 with a log reject-rate axis, as in the paper.
func (r Fig1Result) Render() string {
	p := textplot.Plot{
		Title:  "Fig. 1 — Field reject rate vs fault coverage (log scale)",
		XLabel: "fault coverage f",
		YLabel: "field reject rate r(f)",
		LogY:   true,
	}
	for _, c := range r.Curves {
		// Clip to the paper's visible range r >= 0.001.
		var xs, ys []float64
		for i := range c.X {
			if c.Y[i] >= 0.001 {
				xs = append(xs, c.X[i])
				ys = append(ys, c.Y[i])
			}
		}
		p.Add(textplot.Series{Name: c.Name, X: xs, Y: ys})
	}
	var sb strings.Builder
	sb.WriteString(p.Render())
	tb := tablefmt.New("yield", "n0", "target r", "required f", "paper reads")
	paper := map[string]float64{"0.80/2": 0.95, "0.80/10": 0.38, "0.20/2": 0.99, "0.20/10": 0.63}
	for _, s := range r.SpotChecks {
		key := fmt.Sprintf("%.2f/%g", s.Y, s.N0)
		tb.AddRow(s.Y, s.N0, s.TargetR, s.RequiredF, paper[key])
	}
	sb.WriteString("\n")
	sb.WriteString(tb.String())
	return sb.String()
}

// ReqCovResult holds one of Figs. 2-4: required coverage vs yield for a
// family of n0 values at a fixed field reject rate.
type ReqCovResult struct {
	RejectRate float64
	Curves     []Curve // one per n0, X = yield, Y = required coverage
}

// RequiredCoverageFigure computes the Fig. 2/3/4 family: for the given
// target reject rate, the required coverage at each yield for
// n0 = 1..12, using Eq. 11 (the closed-form inverse): for each (n0, f)
// the yield where r is met exactly, swept densely over f and then
// re-gridded over yield.
func RequiredCoverageFigure(r float64) (ReqCovResult, error) {
	if !(r > 0 && r < 1) {
		return ReqCovResult{}, fmt.Errorf("experiment: reject rate must be in (0,1), got %v", r)
	}
	res := ReqCovResult{RejectRate: r}
	yields := numeric.Linspace(0.02, 0.98, 97)
	for n0 := 1; n0 <= 12; n0++ {
		m, err := core.New(0.5, float64(n0)) // Y placeholder; solver uses target y
		if err != nil {
			return ReqCovResult{}, err
		}
		ys := make([]float64, len(yields))
		for i, y := range yields {
			my, err := core.New(y, float64(n0))
			if err != nil {
				return ReqCovResult{}, err
			}
			f, err := my.RequiredCoverage(r)
			if err != nil {
				return ReqCovResult{}, err
			}
			ys[i] = f
		}
		_ = m
		res.Curves = append(res.Curves, Curve{Name: fmt.Sprintf("n0=%d", n0), X: yields, Y: ys})
	}
	return res, nil
}

// Render draws the figure.
func (r ReqCovResult) Render() string {
	p := textplot.Plot{
		Title:  fmt.Sprintf("Figs. 2-4 — Required fault coverage vs yield, r = %g", r.RejectRate),
		XLabel: "yield y",
		YLabel: "required fault coverage f",
	}
	for i, c := range r.Curves {
		if i%3 == 0 || i == len(r.Curves)-1 { // declutter: n0 = 1,4,7,10,12
			p.Add(textplot.Series{Name: c.Name, X: c.X, Y: c.Y})
		}
	}
	return p.Render()
}

// Fig6Result compares the three q0(n) approximations (Appendix,
// Fig. 6): exact (A.1), corrected (A.2), simple (A.3), for N = 1000.
type Fig6Result struct {
	N      int
	FaultN []int   // the n values plotted
	Curves []Curve // named "<n>/<approx>", X = f, Y = q0
}

// Fig6 evaluates q0(n) over f for n ∈ {2, 4, 8, 16, 32}, N = 1000.
func Fig6() Fig6Result {
	res := Fig6Result{N: 1000, FaultN: []int{2, 4, 8, 16, 32}}
	fs := numeric.Linspace(0, 0.99, 100)
	for _, n := range res.FaultN {
		for _, ap := range []core.EscapeApprox{core.EscapeExact, core.EscapeCorrected, core.EscapeSimple} {
			ys := make([]float64, len(fs))
			for i, f := range fs {
				m := int(f * float64(res.N))
				ys[i] = core.Q0(n, m, res.N, ap)
			}
			res.Curves = append(res.Curves, Curve{
				Name: fmt.Sprintf("n=%d %s", n, ap),
				X:    fs, Y: ys,
			})
		}
	}
	return res
}

// Render draws Fig. 6 (log q0 axis) for the exact curves plus a
// deviation table at f = 0.5.
func (r Fig6Result) Render() string {
	p := textplot.Plot{
		Title:  fmt.Sprintf("Fig. 6 — q0(n) vs f, N = %d (exact A.1 curves)", r.N),
		XLabel: "f = m/N",
		YLabel: "q0(n)",
		LogY:   true,
	}
	for _, c := range r.Curves {
		if strings.Contains(c.Name, "exact") {
			var xs, ys []float64
			for i := range c.X {
				if c.Y[i] >= 1e-6 {
					xs = append(xs, c.X[i])
					ys = append(ys, c.Y[i])
				}
			}
			p.Add(textplot.Series{Name: c.Name, X: xs, Y: ys})
		}
	}
	var sb strings.Builder
	sb.WriteString(p.Render())
	tb := tablefmt.New("n", "exact A.1 @f=0.5", "corrected A.2", "simple A.3")
	for _, n := range r.FaultN {
		m := r.N / 2
		tb.AddRow(n,
			core.Q0(n, m, r.N, core.EscapeExact),
			core.Q0(n, m, r.N, core.EscapeCorrected),
			core.Q0(n, m, r.N, core.EscapeSimple))
	}
	sb.WriteString("\n")
	sb.WriteString(tb.String())
	return sb.String()
}

// WadsackResult is the §7 model comparison.
type WadsackResult struct {
	Yield float64
	N0    float64
	Rows  []WadsackRow
}

// WadsackRow compares required coverage at one target reject rate.
type WadsackRow struct {
	TargetR    float64
	PaperModel float64
	Wadsack    float64
	Griffin    float64
	Savings    float64
}

// WadsackComparison reproduces the §7 numbers: required coverage under
// this paper's model vs the Wadsack baseline (and the Griffin mixed-
// Poisson comparator) for the example chip (y = 0.07, n0 = 8).
func WadsackComparison(y, n0 float64, targets []float64) (WadsackResult, error) {
	m, err := core.New(y, n0)
	if err != nil {
		return WadsackResult{}, err
	}
	g, err := core.NewGriffinMixed(y, n0)
	if err != nil {
		return WadsackResult{}, err
	}
	res := WadsackResult{Yield: y, N0: n0}
	for _, r := range targets {
		paper, wadsack, savings, err := core.CoverageSavings(m, r)
		if err != nil {
			return WadsackResult{}, err
		}
		fg, err := g.RequiredCoverage(r)
		if err != nil {
			return WadsackResult{}, err
		}
		res.Rows = append(res.Rows, WadsackRow{
			TargetR: r, PaperModel: paper, Wadsack: wadsack, Griffin: fg, Savings: savings,
		})
	}
	return res, nil
}

// Render prints the comparison table.
func (r WadsackResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§7 comparison — yield %.2f, n0 %g\n", r.Yield, r.N0)
	tb := tablefmt.New("target r", "this model f", "Wadsack f", "Griffin f", "savings")
	for _, row := range r.Rows {
		tb.AddRow(row.TargetR, row.PaperModel, row.Wadsack, row.Griffin, row.Savings)
	}
	sb.WriteString(tb.String())
	return sb.String()
}
