package experiment

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/defect"
	"repro/internal/estimate"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tablefmt"
	"repro/internal/tester"
	"repro/internal/textplot"
)

// DefaultCircuitSpec is the workload the experiment falls back to when
// no circuit is given: the 8-bit array multiplier (a few thousand
// gates — the scaled-down stand-in for the paper's 25k-transistor
// chip), resolved through the internal/circuits registry.
const DefaultCircuitSpec = "mul8"

// Table1Config parameterizes the end-to-end lot experiment.
type Table1Config struct {
	// Circuit under test; nil selects DefaultCircuitSpec.
	Circuit *netlist.Circuit
	// Chips in the lot (paper: 277).
	Chips int
	// Yield is the ground-truth probability of a fault-free chip
	// (paper: 0.07).
	Yield float64
	// N0 is the ground-truth mean faults per defective chip
	// (paper's slope estimate: 8.8).
	N0 float64
	// RandomPatterns seeds the ordered test set before PODEM cleanup.
	RandomPatterns int
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Physical, if true, generates the lot through the physical-defect
	// layer (Poisson defects × shifted-Poisson faults-per-defect tuned
	// to match Yield and N0) instead of directly from the statistical
	// model.
	Physical bool
	// Engine selects the fault-simulation engine for the coverage ramp
	// and the test-set construction. The zero value is the default
	// cone-restricted PPSFP; every engine yields an identical ramp.
	Engine faultsim.Engine
	// SimWorkers is the goroutine count when Engine is
	// faultsim.Concurrent (0 = GOMAXPROCS); every other engine is
	// single-threaded and ignores it.
	SimWorkers int
	// BacktrackLimit bounds PODEM's per-fault search during cleanup
	// ATPG (0 = the generator's default).
	BacktrackLimit int
	// SampleFaults, when > 0, prepares against a deterministic random
	// sample of at most this many collapsed fault classes (see
	// circuits.Params.SampleFaults). Zero means the full universe.
	SampleFaults int
	// LotEngine selects the ATE's lot-testing engine. The zero value is
	// the default chip-parallel engine (good machine + 63 chips in one
	// word's bit-lanes); tester.Serial is the per-chip oracle, kept as
	// an opt-out. Results are bit-identical either way.
	LotEngine tester.LotEngine
}

// Validate rejects configurations that would silently produce NaN or
// empty tables downstream: a non-positive lot, a yield outside (0,1),
// an n0 below 1 (a defective chip carries at least one fault), a
// negative pattern budget, or a negative worker count. RunTable1, the
// sweep engine, and the CLIs all call it before doing any work.
func (cfg Table1Config) Validate() error {
	if cfg.Chips <= 0 {
		return fmt.Errorf("experiment: lot size must be positive, got %d", cfg.Chips)
	}
	if !(cfg.Yield > 0 && cfg.Yield < 1) {
		return fmt.Errorf("experiment: yield must be in (0,1), got %v", cfg.Yield)
	}
	if !(cfg.N0 >= 1) || math.IsInf(cfg.N0, 1) {
		return fmt.Errorf("experiment: n0 must be >= 1 and finite, got %v", cfg.N0)
	}
	if cfg.RandomPatterns < 0 {
		return fmt.Errorf("experiment: random pattern count must be >= 0, got %d", cfg.RandomPatterns)
	}
	if cfg.SimWorkers < 0 {
		return fmt.Errorf("experiment: sim worker count must be >= 0, got %d", cfg.SimWorkers)
	}
	if cfg.BacktrackLimit < 0 {
		return fmt.Errorf("experiment: backtrack limit must be >= 0, got %d", cfg.BacktrackLimit)
	}
	if cfg.SampleFaults < 0 {
		return fmt.Errorf("experiment: fault sample size must be >= 0, got %d", cfg.SampleFaults)
	}
	if !cfg.LotEngine.Known() {
		return fmt.Errorf("experiment: unknown lot engine %v", cfg.LotEngine)
	}
	return nil
}

// PrepareParams maps the test-program knobs of the configuration onto
// the circuits-layer preparation key, so campaigns can share Prepared
// artifacts across configurations that differ only in lot parameters.
func (cfg Table1Config) PrepareParams() circuits.Params {
	return circuits.Params{
		RandomPatterns: cfg.RandomPatterns,
		Seed:           cfg.Seed,
		Engine:         cfg.Engine,
		SimWorkers:     cfg.SimWorkers,
		BacktrackLimit: cfg.BacktrackLimit,
		SampleFaults:   cfg.SampleFaults,
	}
}

// DefaultTable1Config returns the paper-matched configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Chips:          277,
		Yield:          0.07,
		N0:             8.8,
		RandomPatterns: 192,
		Seed:           1981, // year of the paper; any seed works
	}
}

// Table1Result is the synthetic rerun of the paper's experiment plus
// the estimation pipeline applied to both the synthetic lot and the
// paper's published data.
type Table1Result struct {
	Config       Table1Config
	CircuitStats netlist.Stats
	FaultCount   int
	FinalCov     float64 // final fault coverage of the pattern set
	Rows         []tester.FalloutRow
	Curve        estimate.Curve
	// Ground truth and recovered estimates for the synthetic lot.
	TrueN0      float64
	FitN0       float64
	SlopeN0     float64
	LotYield    float64
	TestedYield float64
	Escapes     int
	// The paper's own data re-analyzed with our estimators.
	PaperFitN0   float64
	PaperSlopeN0 float64
}

// RunTable1 executes the full §5/§7 experiment on a synthetic lot:
// generate a circuit, collapse its faults, build an ordered pattern
// set, fault-simulate the coverage ramp, manufacture a lot with known
// (yield, n0), first-fail test every chip, reduce to the Table 1
// fallout format, and estimate n0 back by both methods. The
// once-per-circuit work lives in LotRunner; RunTable1 is one lot
// through it plus the estimation pipeline.
func RunTable1(cfg Table1Config) (Table1Result, error) {
	lr, err := NewLotRunner(cfg)
	if err != nil {
		return Table1Result{}, err
	}
	return runTable1(lr, cfg)
}

// RunTable1From is RunTable1 against an existing Prepared artifact
// (e.g. one loaded from an on-disk store), skipping the
// once-per-circuit preparation entirely.
func RunTable1From(prep *circuits.Prepared, cfg Table1Config) (Table1Result, error) {
	lr, err := NewLotRunnerFrom(prep, cfg)
	if err != nil {
		return Table1Result{}, err
	}
	return runTable1(lr, cfg)
}

func runTable1(lr *LotRunner, cfg Table1Config) (Table1Result, error) {
	outcome, err := lr.RunLot(cfg.Yield, cfg.N0, cfg.Chips, cfg.Seed)
	if err != nil {
		return Table1Result{}, err
	}
	fitRes, err := estimate.FitN0(outcome.Curve, cfg.Yield)
	if err != nil {
		return Table1Result{}, err
	}
	slopeRes, err := estimate.SlopeN0(outcome.Curve, cfg.Yield, outcome.Curve[0].F*1.5+1e-9)
	if err != nil {
		return Table1Result{}, err
	}
	// Re-analyze the paper's published table with the same estimators.
	paperFit, err := estimate.FitN0(estimate.PaperTable1.Curve, estimate.PaperTable1.Yield)
	if err != nil {
		return Table1Result{}, err
	}
	paperSlope, err := estimate.SlopeN0(estimate.PaperTable1.Curve[:1], estimate.PaperTable1.Yield, 0.06)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		Config:       cfg,
		CircuitStats: lr.Stats(),
		FaultCount:   lr.FaultCount(),
		FinalCov:     lr.FinalCoverage(),
		Rows:         outcome.Rows,
		Curve:        outcome.Curve,
		TrueN0:       outcome.TrueN0,
		FitN0:        fitRes.N0,
		SlopeN0:      slopeRes.N0,
		LotYield:     outcome.LotYield,
		TestedYield:  outcome.TestedYield,
		Escapes:      outcome.Escapes,
		PaperFitN0:   paperFit.N0,
		PaperSlopeN0: paperSlope.N0,
	}, nil
}

// physicalFor tunes the physical defect model so the implied yield and
// n0 match the requested ground truth: Poisson defects with
// D0A = -ln(y), faults-per-defect solved so ExpectedN0 = n0.
func physicalFor(y, n0 float64) (defect.Model, error) {
	if !(y > 0 && y < 1) {
		return defect.Model{}, fmt.Errorf("experiment: yield must be in (0,1)")
	}
	d0a := -ln(y)
	// ExpectedN0 = fpd * d0a / (1 - y)  =>  fpd = n0 (1-y) / d0a.
	fpd := n0 * (1 - y) / d0a
	if fpd < 1 {
		fpd = 1
	}
	return defect.Model{D0A: d0a, FaultsPerDefect: fpd, Locality: 0.6}, nil
}

// ln is a tiny alias to keep physicalFor readable.
func ln(x float64) float64 { return math.Log(x) }

// rampCheckpoints picks strobe step indices near the paper's Table 1
// coverage rows (5, 8, 10, 15, 20, 30, 36, 45, 50, 65 percent), plus
// the final step; targets the ramp never reaches are skipped. k caps
// the row count. The ramp is change-point compressed, and coverage
// only moves at change points, so the first step crossing a target is
// always a change point — walking Points visits exactly the steps the
// dense curve would have selected.
func rampCheckpoints(ramp faultsim.Ramp, k int) []int {
	if ramp.Steps == 0 {
		return nil
	}
	targets := []float64{0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65}
	var out []int
	ti := 0
	for _, pt := range ramp.Points {
		for ti < len(targets) && pt.Coverage >= targets[ti] {
			out = append(out, pt.Pattern)
			ti++
			if len(out) >= k {
				break
			}
		}
		if len(out) >= k || ti >= len(targets) {
			break
		}
	}
	// Deduplicate (one step can cross several targets) and append the
	// final step.
	dedup := out[:0]
	prev := -1
	for _, i := range out {
		if i != prev {
			dedup = append(dedup, i)
			prev = i
		}
	}
	out = dedup
	if len(out) == 0 || out[len(out)-1] != ramp.Steps-1 {
		out = append(out, ramp.Steps-1)
	}
	return out
}

// Render prints the synthetic Table 1 alongside the recovered
// parameters and the paper's own numbers, plus the Fig. 5 overlay.
func (r Table1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 (synthetic rerun) — circuit %s\n", r.CircuitStats)
	fmt.Fprintf(&sb, "collapsed faults: %d, pattern-set coverage: %.3f\n", r.FaultCount, r.FinalCov)
	fmt.Fprintf(&sb, "lot: %d chips, true yield %.3f (target %.2f), tested yield %.3f, escapes %d\n\n",
		r.Config.Chips, r.LotYield, r.Config.Yield, r.TestedYield, r.Escapes)
	tb := tablefmt.New("coverage (%)", "cum chips failed", "cum fraction")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.1f", row.Coverage*100), row.CumFailed, fmt.Sprintf("%.2f", row.CumFracton))
	}
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "\nn0 ground truth (lot mean): %.2f\n", r.TrueN0)
	fmt.Fprintf(&sb, "n0 curve fit:  %.2f   n0 slope: %.2f\n", r.FitN0, r.SlopeN0)
	fmt.Fprintf(&sb, "paper's data re-analyzed: curve fit %.2f (paper: ~8), slope %.2f (paper: 8.8)\n",
		r.PaperFitN0, r.PaperSlopeN0)
	sb.WriteString("\n")
	sb.WriteString(r.RenderFig5())
	return sb.String()
}

// RenderFig5 draws the Fig. 5 overlay: the P(f) family for n0 = 1..12
// with the experimental fallout points.
func (r Table1Result) RenderFig5() string {
	p := textplot.Plot{
		Title:  "Fig. 5 — n0 determination: P(f) family (n0 = 2,4,8,12) + lot data (@)",
		XLabel: "fault coverage f",
		YLabel: "fraction of chips failed P(f)",
	}
	fs := make([]float64, 101)
	for i := range fs {
		fs[i] = float64(i) / 100
	}
	for _, n0 := range []float64{2, 4, 8, 12} {
		m, err := core.New(r.Config.Yield, n0)
		if err != nil {
			continue
		}
		ys := make([]float64, len(fs))
		for i, f := range fs {
			ys[i] = m.Fallout(f)
		}
		p.Add(textplot.Series{Name: fmt.Sprintf("n0=%g", n0), X: fs, Y: ys})
	}
	p.Add(textplot.Series{
		Name: "lot", Marker: '@',
		X: r.Curve.Coverages(), Y: r.Curve.Fractions(),
	})
	return p.Render()
}
