package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestEstimatorBias(t *testing.T) {
	points := []struct{ Y, N0 float64 }{
		{0.07, 8.8},
		{0.3, 8.8},
		{0.7, 8.8},
	}
	res, err := EstimatorBias(points, 277, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Curve fit: small bias (within half a fault of truth).
		if math.Abs(row.FitMean-row.TrueN0) > 0.6 {
			t.Errorf("y=%v: fit mean %v vs truth %v", row.Yield, row.FitMean, row.TrueN0)
		}
		// Slope method: biased LOW (concave-curve secant), never high.
		if row.SlopeMean > row.TrueN0 {
			t.Errorf("y=%v: slope mean %v should underestimate %v", row.Yield, row.SlopeMean, row.TrueN0)
		}
		// Curve fit dominates slope on RMSE.
		if row.FitRMSE > row.SlopeRMSE {
			t.Errorf("y=%v: fit RMSE %v worse than slope %v", row.Yield, row.FitRMSE, row.SlopeRMSE)
		}
	}
	// Higher yield = fewer defective chips per lot = noisier estimate.
	if res.Rows[2].FitRMSE < res.Rows[0].FitRMSE {
		t.Errorf("high-yield RMSE %v should exceed low-yield %v",
			res.Rows[2].FitRMSE, res.Rows[0].FitRMSE)
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Error("render incomplete")
	}
}

func TestEstimatorBiasValidation(t *testing.T) {
	pts := []struct{ Y, N0 float64 }{{0.5, 5}}
	if _, err := EstimatorBias(pts, 5, 10, 1); err == nil {
		t.Error("tiny lots should error")
	}
	if _, err := EstimatorBias(pts, 100, 1, 1); err == nil {
		t.Error("single lot should error")
	}
	bad := []struct{ Y, N0 float64 }{{1.5, 5}}
	if _, err := EstimatorBias(bad, 100, 5, 1); err == nil {
		t.Error("invalid yield should error")
	}
}
