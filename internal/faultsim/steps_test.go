package faultsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestRunStepsConsistentWithPatternRun(t *testing.T) {
	// A fault first detected at pattern p must have a step index in
	// [p*nOut, (p+1)*nOut).
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns := randomPatterns(c, 80, 3)
	byPattern, err := Run(c, faults, patterns, PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	bySteps, err := RunSteps(c, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	nOut := len(c.Outputs)
	if bySteps.Patterns != len(patterns)*nOut {
		t.Fatalf("step count %d", bySteps.Patterns)
	}
	for fi := range faults {
		p := byPattern.FirstDetect[fi]
		s := bySteps.FirstDetect[fi]
		if (p == NotDetected) != (s == NotDetected) {
			t.Fatalf("fault %d: detection disagreement (pattern %d, step %d)", fi, p, s)
		}
		if p == NotDetected {
			continue
		}
		if s < p*nOut || s >= (p+1)*nOut {
			t.Errorf("fault %d: step %d not within pattern %d's strobes", fi, s, p)
		}
	}
	// Coverage identical at the end.
	if byPattern.Coverage() != bySteps.Coverage() {
		t.Errorf("coverage %v vs %v", byPattern.Coverage(), bySteps.Coverage())
	}
}

func TestStepCoverageCurveFiner(t *testing.T) {
	// The step curve has nOut times the resolution and is monotone.
	c := netlist.C17()
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns := exhaustivePatterns(c)
	curve, res, err := StepCoverageCurve(c, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(patterns)*len(c.Outputs) {
		t.Fatalf("curve length %d", len(curve))
	}
	prev := 0.0
	for i, pt := range curve {
		if pt.Coverage < prev {
			t.Fatalf("not monotone at step %d", i)
		}
		prev = pt.Coverage
	}
	if res.Coverage() != 1 {
		t.Errorf("c17 exhaustive step coverage %v", res.Coverage())
	}
	// Early strobes must carve the first pattern's detections into
	// smaller increments: the first step detects strictly less than the
	// whole first pattern (c17 has 2 outputs and both see detections).
	full, err := Run(c, faults, patterns, PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	firstPattern := full.DetectedBy(0)
	if curve[0].Detected >= firstPattern {
		t.Errorf("first strobe detects %d, full first pattern %d", curve[0].Detected, firstPattern)
	}
}
