package faultsim

import (
	"math/bits"
	"sort"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// runFaultParallel is the fault-parallel (PF) engine. Where PPSFP packs
// 64 patterns into a word and injects one fault per pass, PF transposes
// the packing: one word per pattern, lane 0 carrying the good machine
// and lanes 1..63 carrying up to 63 distinct faulty machines. One
// topological pass over the union of the group's output cones evaluates
// all 64 machines at once; a stem fault forces its lane of the site's
// output word, a pin fault forces its lane of one fanin word at the
// site only. PF therefore wins when many faults survive per pattern
// (early in a test set, or single-pattern dropping loops), and the cone
// union keeps the per-pattern pass near the disturbed logic.
func runFaultParallel(s *session) error {
	blocks, err := s.packBlocks(false)
	if err != nil {
		return err
	}
	sim, err := s.simulator()
	if err != nil {
		return err
	}
	cones, err := s.coneSet()
	if err != nil {
		return err
	}
	// A gate's level strictly exceeds every fanin's, so (level, id) is a
	// valid evaluation order for any gate subset — used both to order
	// the union cone and to group faults by site locality.
	level := make([]int, len(s.c.Gates))
	for id := range s.c.Gates {
		l, err := s.c.Level(id)
		if err != nil {
			return err
		}
		level[id] = l
	}
	st := &pfState{
		inCone:    make([]int, len(s.c.Gates)),
		frontMark: make([]int, len(s.c.Gates)),
		forceMark: make([]int, len(s.c.Gates)),
		force:     make([]*laneForce, len(s.c.Gates)),
		outMark:   make([]int, len(s.c.Outputs)),
		fv:        make([]uint64, len(s.c.Gates)),
	}
	for bi := range blocks {
		b := &blocks[bi]
		var live []int
		for fi := range s.faults {
			if s.alive(fi) {
				live = append(live, fi)
			}
		}
		if len(live) == 0 {
			break
		}
		// Good machine for this block; lane broadcasts read it via Value.
		if _, err := sim.Run(b.pat); err != nil {
			return err
		}
		// Lane assignment by cone locality: neighboring sites share most
		// of their cones, so sorting the live faults by site position
		// keeps each 63-fault group's union cone small.
		sort.SliceStable(live, func(a, b int) bool {
			ga, gb := s.faults[live[a]].Gate, s.faults[live[b]].Gate
			if level[ga] != level[gb] {
				return level[ga] < level[gb]
			}
			return ga < gb
		})
		for lo := 0; lo < len(live); lo += 63 {
			hi := lo + 63
			if hi > len(live) {
				hi = len(live)
			}
			if err := s.pfGroup(sim, cones, b, live[lo:hi], level, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// pfState is the per-run scratch of the PF engine, allocated once and
// reused across groups and blocks. Group membership is tracked with
// epoch marks (slot == gid) instead of per-group maps, the same O(1)
// dedup trick the cone builder uses.
type pfState struct {
	gid        int
	inCone     []int        // per gate: member of the current group's union cone
	frontMark  []int        // per gate: already collected into the frontier
	forceMark  []int        // per gate: force[gate] belongs to this group
	force      []*laneForce // per gate: the group's lane-forcing masks
	outMark    []int        // per output index: already collected into outs
	union      []int
	unionForce []*laneForce // aligned with union; nil = no faults on the gate
	outs       []int
	frontier   []int
	fv         []uint64 // per-gate lane words
}

// laneForce holds one gate's lane-forcing masks within a PF group: stem
// masks force the gate's output word, pin masks force one fanin word
// during this gate's evaluation only (the fanout-branch semantics).
type laneForce struct {
	stem0, stem1 uint64
	pins         []pinForce
}

type pinForce struct {
	pin    int
	m0, m1 uint64
}

// pfGroup simulates one group of up to 63 live faults against one
// block, lane i+1 carrying group[i].
func (s *session) pfGroup(sim *logicsim.Simulator, cones *logicsim.ConeSet, b *block, group []int, level []int, st *pfState) error {
	c := s.c
	st.gid++
	gid := st.gid
	union, outs := st.union[:0], st.outs[:0]
	for i, fi := range group {
		f := s.faults[fi]
		lane := uint64(1) << uint(i+1)
		var lf *laneForce
		if st.forceMark[f.Gate] == gid {
			lf = st.force[f.Gate]
		} else {
			lf = &laneForce{}
			st.force[f.Gate] = lf
			st.forceMark[f.Gate] = gid
		}
		switch {
		case f.Pin < 0 && f.Stuck:
			lf.stem1 |= lane
		case f.Pin < 0:
			lf.stem0 |= lane
		default:
			var pf *pinForce
			for j := range lf.pins {
				if lf.pins[j].pin == f.Pin {
					pf = &lf.pins[j]
					break
				}
			}
			if pf == nil {
				lf.pins = append(lf.pins, pinForce{pin: f.Pin})
				pf = &lf.pins[len(lf.pins)-1]
			}
			if f.Stuck {
				pf.m1 |= lane
			} else {
				pf.m0 |= lane
			}
		}
		cone := cones.Cone(f.Gate)
		for _, g := range cone.Gates {
			if st.inCone[g] != gid {
				st.inCone[g] = gid
				union = append(union, g)
			}
		}
		for _, oi := range cone.Outputs {
			if st.outMark[oi] != gid {
				st.outMark[oi] = gid
				outs = append(outs, oi)
			}
		}
	}
	sort.Slice(union, func(a, b int) bool {
		if level[union[a]] != level[union[b]] {
			return level[union[a]] < level[union[b]]
		}
		return union[a] < union[b]
	})
	sort.Ints(outs)
	// Resolve each union gate's forcing masks once, aligned with the
	// evaluation order, so the per-pattern loop is lookup-free.
	unionForce := st.unionForce[:0]
	for _, g := range union {
		if st.forceMark[g] == gid {
			unionForce = append(unionForce, st.force[g])
		} else {
			unionForce = append(unionForce, nil)
		}
	}
	// Frontier: gates feeding the union cone from outside it; all their
	// lanes carry the good value.
	frontier := st.frontier[:0]
	for _, g := range union {
		for _, fin := range c.Gates[g].Fanin {
			if st.inCone[fin] != gid && st.frontMark[fin] != gid {
				st.frontMark[fin] = gid
				frontier = append(frontier, fin)
			}
		}
	}
	nLanes := uint(len(group) + 1)
	laneMask := (uint64(1)<<nLanes - 1) &^ 1 // fault lanes 1..len(group)
	var done uint64
	var stage [8]uint64
	wide := stage[:]
	fv := st.fv
	for p := 0; p < b.pat.Count; p++ {
		if done == laneMask {
			break
		}
		for _, g := range frontier {
			fv[g] = pfBroadcast(sim.Value(g), p)
		}
		for k, g := range union {
			gate := &c.Gates[g]
			lf := unionForce[k]
			var v uint64
			if gate.Type == netlist.Input {
				v = pfBroadcast(sim.Value(g), p)
			} else {
				if len(gate.Fanin) > len(wide) {
					wide = make([]uint64, len(gate.Fanin))
				}
				buf := wide[:len(gate.Fanin)]
				for i, fin := range gate.Fanin {
					buf[i] = fv[fin]
				}
				if lf != nil {
					for _, pf := range lf.pins {
						buf[pf.pin] = buf[pf.pin]&^pf.m0 | pf.m1
					}
				}
				v = logicsim.EvalWords(gate.Type, buf)
			}
			if lf != nil {
				v = v&^lf.stem0 | lf.stem1
			}
			fv[g] = v
		}
		for _, oi := range outs {
			o := c.Outputs[oi]
			d := (fv[o] ^ pfBroadcast(sim.Value(o), p)) & laneMask &^ done
			for d != 0 {
				lane := bits.TrailingZeros64(d)
				d &^= uint64(1) << uint(lane)
				done |= uint64(1) << uint(lane)
				s.detect(group[lane-1], b.base+p)
			}
		}
	}
	// Hand the (possibly grown) scratch slices back for the next group.
	st.union, st.unionForce, st.outs, st.frontier = union, unionForce, outs, frontier
	return nil
}

// pfBroadcast spreads bit p of a good-machine word across all 64 lanes.
func pfBroadcast(w uint64, p int) uint64 {
	return -(w >> uint(p) & 1)
}
