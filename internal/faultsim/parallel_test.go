package faultsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestRunConcurrentMatchesSerial(t *testing.T) {
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns := randomPatterns(c, 150, 7)
	serial, err := Run(c, faults, patterns, Serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 9} {
		conc, err := RunConcurrent(c, faults, patterns, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if conc.Patterns != serial.Patterns {
			t.Fatalf("workers=%d: pattern count", workers)
		}
		for fi := range faults {
			if conc.FirstDetect[fi] != serial.FirstDetect[fi] {
				t.Fatalf("workers=%d fault %d: %d vs %d",
					workers, fi, conc.FirstDetect[fi], serial.FirstDetect[fi])
			}
		}
	}
}

func TestRunConcurrentRace(t *testing.T) {
	// Exercised under -race in CI: shards never write overlapping
	// indices; this test just pushes enough work through to catch any
	// accidental sharing.
	c, err := netlist.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns := randomPatterns(c, 200, 3)
	for round := 0; round < 3; round++ {
		if _, err := RunConcurrent(c, faults, patterns, 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunConcurrentErrors(t *testing.T) {
	c := netlist.C17()
	faults := fault.AllFaults(c)
	if _, err := RunConcurrent(c, faults, nil, 4); err == nil {
		t.Error("no patterns should error")
	}
}

func BenchmarkConcurrentMul8(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	patterns := randomPatterns(c, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConcurrent(c, reps, patterns, 0); err != nil {
			b.Fatal(err)
		}
	}
}
