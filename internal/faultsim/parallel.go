package faultsim

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// RunConcurrent is cone-restricted PPSFP distributed over a goroutine
// pool: the fault list is sharded across workers, each with its own
// flat walk state (FlatSim is not safe for concurrent use) but sharing
// the packed blocks, the immutable flat circuit, and its slot cones.
// Results are identical to the serial engines; only wall-clock changes.
// workers <= 0 selects GOMAXPROCS.
func RunConcurrent(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, workers int) (Result, error) {
	return RunOpts(c, faults, patterns, Concurrent, Options{Workers: workers})
}

// runConcurrent implements the Concurrent engine. Each worker owns a
// contiguous fault shard, so every first-detect slot has exactly one
// writer and fault dropping works shard-locally without synchronization.
func runConcurrent(s *session) error {
	workers := s.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.faults) {
		workers = len(s.faults)
	}
	if workers <= 1 {
		return s.runParallelPattern(true, !s.opt.FullCircuit)
	}
	blocks, err := s.packBlocks(s.opt.FullCircuit)
	if err != nil {
		return err
	}
	flat, err := s.flatCircuit()
	if err != nil {
		return err
	}
	var cones *logicsim.FlatConeSet
	if !s.opt.FullCircuit {
		// Resolved before the workers spawn; the set and its cones are
		// immutable and shared read-only across the pool.
		if cones, err = s.flatConeSet(); err != nil {
			return err
		}
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	chunk := (len(s.faults) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(s.faults) {
			hi = len(s.faults)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fsim := logicsim.NewFlatSim(flat)
			var scratch []uint64
			for bi := range blocks {
				b := &blocks[bi]
				ran := false // good machine not yet established for this block
				for fi := lo; fi < hi; fi++ {
					if !s.alive(fi) {
						continue
					}
					if cones != nil && !ran {
						out, werr := fsim.RunInto(b.pat, scratch)
						if werr != nil {
							errOnce.Do(func() { firstErr = werr })
							return
						}
						scratch = out
						ran = true
					}
					diff, out, werr := s.diffFault(fsim, cones, b, fi, scratch)
					if werr != nil {
						errOnce.Do(func() { firstErr = werr })
						return
					}
					scratch = out
					if diff != 0 {
						s.detect(fi, b.base+bits.TrailingZeros64(diff))
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}
