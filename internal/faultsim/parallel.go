package faultsim

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// RunConcurrent is PPSFP distributed over a goroutine pool: the fault
// list is sharded across workers, each with its own simulator (the
// levelized simulator is not safe for concurrent use). Results are
// identical to the serial engines; only wall-clock changes. workers <=
// 0 selects GOMAXPROCS.
func RunConcurrent(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, workers int) (Result, error) {
	if len(patterns) == 0 {
		return Result{}, fmt.Errorf("faultsim: no patterns")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return runParallelPattern(c, faults, patterns, true)
	}
	// Pre-pack blocks and good outputs once (read-only afterwards).
	type packed struct {
		block logicsim.PatternBlock
		good  []uint64
	}
	setupSim, err := logicsim.NewSimulator(c)
	if err != nil {
		return Result{}, err
	}
	var blocks []packed
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return Result{}, err
		}
		good, err := setupSim.Run(block)
		if err != nil {
			return Result{}, err
		}
		blocks = append(blocks, packed{block: block, good: append([]uint64(nil), good...)})
	}
	first := make([]int, len(faults))
	for i := range first {
		first[i] = NotDetected
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	chunk := (len(faults) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(faults) {
			hi = len(faults)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sim, err := logicsim.NewSimulator(c)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			for fi := lo; fi < hi; fi++ {
				f := faults[fi]
				for bi := range blocks {
					if first[fi] != NotDetected {
						break // fault dropping within the shard
					}
					bad, err := sim.RunWithFault(blocks[bi].block, f.Gate, f.Pin, f.Stuck)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					mask := blocks[bi].block.Mask()
					var diff uint64
					for o := range bad {
						diff |= (bad[o] ^ blocks[bi].good[o]) & mask
					}
					if diff != 0 {
						first[fi] = bi*64 + bits.TrailingZeros64(diff)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}
	return Result{FirstDetect: first, Patterns: len(patterns)}, nil
}
