package faultsim

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// CoveragePoint is one point of the cumulative coverage ramp: after
// applying patterns 0..Pattern, the test set detects Detected faults,
// for a coverage of Coverage (fraction of the simulated fault list).
type CoveragePoint struct {
	Pattern  int
	Detected int
	Coverage float64
}

// CoverageCurve fault-simulates the ordered patterns (PPSFP with fault
// dropping) and returns the cumulative coverage after every pattern.
// This is the fault-simulator product the paper's §5 procedure starts
// from: "A cumulative fault coverage as a function of the number of
// test patterns is obtained."
func CoverageCurve(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) ([]CoveragePoint, Result, error) {
	res, err := Run(c, faults, patterns, PPSFP)
	if err != nil {
		return nil, Result{}, err
	}
	return CurveFromResult(res), res, nil
}

// CurveFromResult converts first-detect indices to a cumulative curve.
func CurveFromResult(res Result) []CoveragePoint {
	perPattern := make([]int, res.Patterns)
	for _, d := range res.FirstDetect {
		if d != NotDetected {
			perPattern[d]++
		}
	}
	curve := make([]CoveragePoint, res.Patterns)
	cum := 0
	total := len(res.FirstDetect)
	for i := 0; i < res.Patterns; i++ {
		cum += perPattern[i]
		curve[i] = CoveragePoint{
			Pattern:  i,
			Detected: cum,
			Coverage: float64(cum) / float64(total),
		}
	}
	return curve
}

// Dictionary maps each pattern to the faults it detects first; an ATE
// that logs the first failing pattern can look up the likely fault
// class. The paper's experiment records exactly this first-fail index.
type Dictionary struct {
	// ByPattern[p] lists fault indices first detected by pattern p.
	ByPattern map[int][]int
}

// BuildDictionary constructs the first-detect dictionary from a result.
func BuildDictionary(res Result) Dictionary {
	d := Dictionary{ByPattern: make(map[int][]int)}
	for fi, p := range res.FirstDetect {
		if p != NotDetected {
			d.ByPattern[p] = append(d.ByPattern[p], fi)
		}
	}
	for p := range d.ByPattern {
		sort.Ints(d.ByPattern[p])
	}
	return d
}

// Undetected returns the indices of faults the pattern set misses.
func Undetected(res Result) []int {
	var out []int
	for fi, p := range res.FirstDetect {
		if p == NotDetected {
			out = append(out, fi)
		}
	}
	return out
}

// Grade summarizes a test set against a circuit's collapsed fault
// universe: total faults, detected, coverage, and the coverage curve.
type Grade struct {
	Circuit    string
	Faults     int
	Detected   int
	Coverage   float64
	Curve      []CoveragePoint
	Undetected []fault.Fault
}

// GradeTests builds the fault universe (equivalence-collapsed), fault
// simulates, and reports a grade. It is the highest-level entry point a
// test engineer would call.
func GradeTests(c *netlist.Circuit, patterns []logicsim.Pattern) (Grade, error) {
	if err := c.Validate(); err != nil {
		return Grade{}, fmt.Errorf("faultsim: invalid circuit: %w", err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	curve, res, err := CoverageCurve(c, reps, patterns)
	if err != nil {
		return Grade{}, err
	}
	var undet []fault.Fault
	for _, fi := range Undetected(res) {
		undet = append(undet, reps[fi])
	}
	return Grade{
		Circuit:    c.Name,
		Faults:     len(reps),
		Detected:   res.DetectedBy(res.Patterns - 1),
		Coverage:   res.Coverage(),
		Curve:      curve,
		Undetected: undet,
	}, nil
}
