// Package faultsim measures which single-stuck-at faults a test-pattern
// sequence detects. Three engines are provided:
//
//   - Serial: one fault at a time, 64 patterns per pass (the classic
//     baseline, also the reference the others are checked against);
//   - PPSFP: parallel-pattern single-fault propagation with fault
//     dropping — the workhorse used by the experiments;
//   - Deductive: per-pattern fault-list propagation (one pass computes
//     every fault's detectability for that pattern).
//
// The paper's experiment needs the cumulative coverage curve of an
// ordered pattern set — CoverageCurve produces exactly the "fault
// coverage vs. pattern number" table that §5 feeds to the tester.
package faultsim

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// NotDetected marks a fault no pattern detects.
const NotDetected = -1

// Result reports a fault-simulation run over an ordered pattern set.
type Result struct {
	// FirstDetect[i] is the index of the first pattern detecting fault
	// i of the simulated list, or NotDetected.
	FirstDetect []int
	// Patterns is the number of patterns simulated.
	Patterns int
}

// DetectedBy returns how many faults the first k+1 patterns detect.
func (r Result) DetectedBy(k int) int {
	n := 0
	for _, d := range r.FirstDetect {
		if d != NotDetected && d <= k {
			n++
		}
	}
	return n
}

// Coverage returns the final fault coverage (fraction detected).
func (r Result) Coverage() float64 {
	if len(r.FirstDetect) == 0 {
		return 0
	}
	return float64(r.DetectedBy(r.Patterns-1)) / float64(len(r.FirstDetect))
}

// Engine selects the fault-simulation algorithm.
type Engine int

// Available engines.
const (
	Serial Engine = iota
	PPSFP
	Deductive
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Serial:
		return "serial"
	case PPSFP:
		return "ppsfp"
	case Deductive:
		return "deductive"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Run fault-simulates the ordered patterns against the fault list and
// returns per-fault first-detection indices. Detected faults are
// dropped from further simulation (standard fault dropping); the
// first-detect indices are unaffected by dropping.
func Run(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine Engine) (Result, error) {
	if len(patterns) == 0 {
		return Result{}, fmt.Errorf("faultsim: no patterns")
	}
	switch engine {
	case Serial:
		return runParallelPattern(c, faults, patterns, false)
	case PPSFP:
		return runParallelPattern(c, faults, patterns, true)
	case Deductive:
		return runDeductive(c, faults, patterns)
	default:
		return Result{}, fmt.Errorf("faultsim: unknown engine %v", engine)
	}
}

// runParallelPattern simulates blocks of 64 patterns. With drop=true,
// faults already detected are skipped in later blocks (PPSFP); without
// dropping every fault is simulated against every block (the serial
// baseline, useful for dictionaries and cross-checking).
func runParallelPattern(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, drop bool) (Result, error) {
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return Result{}, err
	}
	first := make([]int, len(faults))
	for i := range first {
		first[i] = NotDetected
	}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return Result{}, err
		}
		mask := block.Mask()
		good, err := sim.Run(block)
		if err != nil {
			return Result{}, err
		}
		goodCopy := append([]uint64(nil), good...)
		for fi, f := range faults {
			if drop && first[fi] != NotDetected {
				continue
			}
			bad, err := sim.RunWithFault(block, f.Gate, f.Pin, f.Stuck)
			if err != nil {
				return Result{}, err
			}
			var diff uint64
			for o := range bad {
				diff |= (bad[o] ^ goodCopy[o]) & mask
			}
			if diff != 0 {
				p := base + bits.TrailingZeros64(diff)
				if first[fi] == NotDetected || p < first[fi] {
					first[fi] = p
				}
			}
		}
	}
	return Result{FirstDetect: first, Patterns: len(patterns)}, nil
}
