// Package faultsim measures which single-stuck-at faults a test-pattern
// sequence detects. Six engines share one result contract (identical
// FirstDetect, bit for bit) and one set of plumbing — block packing,
// fault dropping, first-detect bookkeeping — and differ only in how
// they spend the machine word:
//
//   - Serial: one fault at a time, full-circuit re-simulation as a
//     scalar flat walk, no fault dropping — the classic baseline and
//     the reference the other engines are cross-checked against;
//   - PPSFP: parallel-pattern single-fault propagation with fault
//     dropping, restricted to each fault's slot cone over the flat
//     core (logicsim.FlatSim + FlatConeSet) — the workhorse used by
//     the experiments;
//   - Deductive: per-pattern fault-list propagation (one pass computes
//     every fault's detectability for that pattern);
//   - FaultParallel (PF): the good machine plus up to 63 faulty
//     machines packed into the 64 bit-lanes of one word per pattern,
//     evaluated over the union of the faults' output cones;
//   - Concurrent: cone-restricted flat PPSFP sharded over a goroutine
//     pool;
//   - FaultParallel256 (pf256): the PF layout widened to 4-word lane
//     blocks (good machine + 255 faulty machines) over the flat
//     struct-of-arrays core (logicsim.Flat/WideSim).
//
// The paper's experiment needs the cumulative coverage curve of an
// ordered pattern set — CoverageCurve produces exactly the "fault
// coverage vs. pattern number" table that §5 feeds to the tester.
package faultsim

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// NotDetected marks a fault no pattern detects.
const NotDetected = -1

// Result reports a fault-simulation run over an ordered pattern set.
type Result struct {
	// FirstDetect[i] is the index of the first pattern detecting fault
	// i of the simulated list, or NotDetected.
	FirstDetect []int
	// Patterns is the number of patterns simulated.
	Patterns int
}

// DetectedBy returns how many faults the first k+1 patterns detect.
func (r Result) DetectedBy(k int) int {
	n := 0
	for _, d := range r.FirstDetect {
		if d != NotDetected && d <= k {
			n++
		}
	}
	return n
}

// Coverage returns the final fault coverage (fraction detected).
func (r Result) Coverage() float64 {
	if len(r.FirstDetect) == 0 {
		return 0
	}
	return float64(r.DetectedBy(r.Patterns-1)) / float64(len(r.FirstDetect))
}

// Engine selects the fault-simulation algorithm.
type Engine int

// Available engines. PPSFP is the zero value on purpose: an
// unconfigured Engine field selects the workhorse.
const (
	PPSFP Engine = iota
	Serial
	Deductive
	FaultParallel
	Concurrent
	FaultParallel256
)

// strategy is one entry of the engine registry: the CLI-stable name
// plus the run function, operating on the shared session plumbing.
type strategy struct {
	name string
	run  func(*session) error
}

// registry maps each Engine to its strategy. Every engine consumes the
// same session (packed blocks, good-machine outputs, first-detect
// bookkeeping with dropping), so adding an engine is one entry here
// plus a run function.
var registry = map[Engine]strategy{
	Serial:           {"serial", func(s *session) error { return s.runParallelPattern(false, false) }},
	PPSFP:            {"ppsfp", func(s *session) error { return s.runParallelPattern(true, !s.opt.FullCircuit) }},
	Deductive:        {"deductive", runDeductive},
	FaultParallel:    {"pf", runFaultParallel},
	Concurrent:       {"concurrent", runConcurrent},
	FaultParallel256: {"pf256", runFaultParallel256},
}

// String names the engine.
func (e Engine) String() string {
	if st, ok := registry[e]; ok {
		return st.name
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps an engine name (as printed by String and accepted by
// the CLIs) back to the Engine.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines() {
		if registry[e].name == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("faultsim: unknown engine %q", name)
}

// Engines lists every registered engine in a stable order (ascending
// Engine value). It is derived from the registry, so a new registry
// entry is automatically visible to ParseEngine, the CLIs, and the
// cross-engine tests.
func Engines() []Engine {
	out := make([]Engine, 0, len(registry))
	for e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Options tunes a run; the zero value selects the defaults.
type Options struct {
	// Workers is the goroutine count for the Concurrent engine; <= 0
	// selects GOMAXPROCS. Other engines ignore it.
	Workers int
	// FullCircuit disables cone restriction in the PPSFP and Concurrent
	// engines: every faulty pass re-evaluates the whole circuit. This is
	// the pre-cone reference path, kept for cross-checking and for
	// measuring what the cones buy (see BenchmarkEngines).
	FullCircuit bool
}

// Run fault-simulates the ordered patterns against the fault list with
// default options and returns per-fault first-detection indices.
// Detected faults are dropped from further simulation where the engine
// supports it (standard fault dropping); the first-detect indices are
// unaffected by dropping.
func Run(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine Engine) (Result, error) {
	return RunOpts(c, faults, patterns, engine, Options{})
}

// RunOpts is Run with explicit engine options.
func RunOpts(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine Engine, opt Options) (Result, error) {
	if len(patterns) == 0 {
		return Result{}, fmt.Errorf("faultsim: no patterns")
	}
	st, ok := registry[engine]
	if !ok {
		return Result{}, fmt.Errorf("faultsim: unknown engine %v", engine)
	}
	s, err := newSession(c, faults, patterns, opt)
	if err != nil {
		return Result{}, err
	}
	if err := st.run(s); err != nil {
		return Result{}, err
	}
	return Result{FirstDetect: s.first, Patterns: len(patterns)}, nil
}

// session carries the state every engine shares: the circuit, the fault
// list, lazily packed 64-pattern blocks with their good-machine
// outputs, the lazily built flat form with its slot cones, and the
// first-detect array the engines fill in. The pointer-walking simulator
// and gate cones remain for the engines that still consume them
// (deductive, pf); everything parallel-pattern runs flat.
type session struct {
	c        *netlist.Circuit
	faults   []fault.Fault
	patterns []logicsim.Pattern
	opt      Options
	first    []int

	sim        *logicsim.Simulator
	cones      *logicsim.ConeSet
	flat       *logicsim.Flat
	flatCones  *logicsim.FlatConeSet
	fsim       *logicsim.FlatSim
	blocks     []block
	blocksGood bool // block.good filled in
}

// block is one packed slab of up to 64 patterns plus its good-machine
// primary-output words.
type block struct {
	pat  logicsim.PatternBlock
	base int // pattern index of bit 0
	good []uint64
}

func newSession(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, opt Options) (*session, error) {
	for i, f := range faults {
		if f.Gate < 0 || f.Gate >= len(c.Gates) {
			return nil, fmt.Errorf("faultsim: fault %d site %d out of range", i, f.Gate)
		}
		if f.Pin >= len(c.Gates[f.Gate].Fanin) {
			return nil, fmt.Errorf("faultsim: fault %d: gate %d has no pin %d", i, f.Gate, f.Pin)
		}
	}
	first := make([]int, len(faults))
	for i := range first {
		first[i] = NotDetected
	}
	return &session{c: c, faults: faults, patterns: patterns, opt: opt, first: first}, nil
}

// simulator returns the session's levelized simulator, creating it on
// first use. Engines that spawn goroutines create their own per-worker
// simulators instead (the simulator is not safe for concurrent use).
func (s *session) simulator() (*logicsim.Simulator, error) {
	if s.sim == nil {
		sim, err := logicsim.NewSimulator(s.c)
		if err != nil {
			return nil, err
		}
		s.sim = sim
	}
	return s.sim, nil
}

// coneSet returns the circuit's fault-site cones, built on first use
// and cached on the circuit across sessions. The set is immutable and
// shared across workers.
func (s *session) coneSet() (*logicsim.ConeSet, error) {
	if s.cones == nil {
		cs, err := logicsim.ConeSetFor(s.c)
		if err != nil {
			return nil, err
		}
		s.cones = cs
	}
	return s.cones, nil
}

// flatCircuit returns the circuit's flat compiled form, built on first
// use and cached on the circuit across sessions. The form is immutable
// and shared across workers.
func (s *session) flatCircuit() (*logicsim.Flat, error) {
	if s.flat == nil {
		f, err := logicsim.FlatFor(s.c)
		if err != nil {
			return nil, err
		}
		s.flat = f
	}
	return s.flat, nil
}

// flatSim returns the session's flat walk state, creating it on first
// use. Engines that spawn goroutines create their own per-worker
// FlatSims over the shared Flat instead (FlatSim is not safe for
// concurrent use).
func (s *session) flatSim() (*logicsim.FlatSim, error) {
	if s.fsim == nil {
		f, err := s.flatCircuit()
		if err != nil {
			return nil, err
		}
		s.fsim = logicsim.NewFlatSim(f)
	}
	return s.fsim, nil
}

// flatConeSet returns the circuit's slot cones, built on first use and
// cached on the circuit across sessions. The set is immutable and
// shared across workers.
func (s *session) flatConeSet() (*logicsim.FlatConeSet, error) {
	if s.flatCones == nil {
		cs, err := logicsim.FlatConeSetFor(s.c)
		if err != nil {
			return nil, err
		}
		s.flatCones = cs
	}
	return s.flatCones, nil
}

// packBlocks packs the pattern sequence into 64-wide blocks, once per
// session. needGood additionally records each block's good-machine
// primary-output words — only the full-circuit diff path reads them;
// the cone engines diff against the simulator's saved values and would
// otherwise pay one wasted good simulation per block.
func (s *session) packBlocks(needGood bool) ([]block, error) {
	if s.blocks == nil {
		for base := 0; base < len(s.patterns); base += 64 {
			end := base + 64
			if end > len(s.patterns) {
				end = len(s.patterns)
			}
			pat, err := logicsim.PackPatterns(s.patterns[base:end])
			if err != nil {
				return nil, err
			}
			s.blocks = append(s.blocks, block{pat: pat, base: base})
		}
	}
	if needGood && !s.blocksGood {
		fsim, err := s.flatSim()
		if err != nil {
			return nil, err
		}
		for i := range s.blocks {
			good, err := fsim.RunInto(s.blocks[i].pat, nil)
			if err != nil {
				return nil, err
			}
			s.blocks[i].good = good
		}
		s.blocksGood = true
	}
	return s.blocks, nil
}

// detect records that fault fi is detected by pattern p, keeping the
// earliest index. Not safe for concurrent use on the same fault index;
// the concurrent engine partitions the fault list so each index has one
// writer.
func (s *session) detect(fi, p int) {
	if s.first[fi] == NotDetected || p < s.first[fi] {
		s.first[fi] = p
	}
}

// alive reports whether fault fi is still undetected (the fault-
// dropping predicate).
func (s *session) alive(fi int) bool { return s.first[fi] == NotDetected }

// anyAlive reports whether any fault remains undetected, letting
// dropping engines skip the dead tail of a long pattern set.
func (s *session) anyAlive() bool {
	for _, d := range s.first {
		if d == NotDetected {
			return true
		}
	}
	return false
}
