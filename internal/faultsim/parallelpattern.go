package faultsim

import (
	"math/bits"

	"repro/internal/logicsim"
)

// diffFault simulates fault fi against one block and returns the word
// whose bit p is set iff pattern p of the block detects the fault.
// With cones non-nil the pass is cone-restricted, and the simulator
// must already hold the block's good-machine values (RunWithFaultCone
// restores them, so consecutive calls share one good evaluation); with
// cones nil it is the full-circuit reference path diffing the stored
// good outputs. This is the single copy of the diff-and-detect rule
// every parallel-pattern engine (serial, ppsfp, concurrent) runs on.
func (s *session) diffFault(sim *logicsim.Simulator, cones *logicsim.ConeSet, b *block, fi int) (uint64, error) {
	f := s.faults[fi]
	if cones != nil {
		return sim.RunWithFaultCone(f.Gate, f.Pin, f.Stuck, cones.Cone(f.Gate), nil)
	}
	bad, err := sim.RunWithFault(b.pat, f.Gate, f.Pin, f.Stuck)
	if err != nil {
		return 0, err
	}
	mask := b.pat.Mask()
	var diff uint64
	for o := range bad {
		diff |= (bad[o] ^ b.good[o]) & mask
	}
	return diff, nil
}

// runParallelPattern is the parallel-pattern engine family: 64 patterns
// per machine word, one fault injected at a time. drop skips faults
// already detected in earlier blocks (PPSFP fault dropping; without it
// every fault meets every block, the serial baseline). cone restricts
// each faulty pass to the fault's output cone on top of the block's
// good-machine values instead of re-evaluating the whole circuit.
func (s *session) runParallelPattern(drop, cone bool) error {
	blocks, err := s.packBlocks(!cone)
	if err != nil {
		return err
	}
	sim, err := s.simulator()
	if err != nil {
		return err
	}
	var cones *logicsim.ConeSet
	if cone {
		if cones, err = s.coneSet(); err != nil {
			return err
		}
	}
	for bi := range blocks {
		b := &blocks[bi]
		if drop && !s.anyAlive() {
			break // everything detected; skip the dead tail
		}
		if cone {
			// (Re-)establish the good machine for this block; the cone
			// runs save and restore it, so one evaluation serves every
			// surviving fault.
			if _, err := sim.Run(b.pat); err != nil {
				return err
			}
		}
		for fi := range s.faults {
			if drop && !s.alive(fi) {
				continue
			}
			diff, err := s.diffFault(sim, cones, b, fi)
			if err != nil {
				return err
			}
			if diff != 0 {
				s.detect(fi, b.base+bits.TrailingZeros64(diff))
			}
		}
	}
	return nil
}
