package faultsim

import (
	"math/bits"

	"repro/internal/logicsim"
)

// diffFault simulates fault fi against one block on the flat core and
// returns the word whose bit p is set iff pattern p of the block
// detects the fault, plus the (possibly regrown) output scratch slice.
// With cones non-nil the pass is cone-restricted — only the fault's
// slot cone is re-evaluated, with activation early-exit — and the flat
// simulator must already hold the block's good-machine values (the cone
// walks restore them, so consecutive calls share one good evaluation).
// With cones nil it is the full-circuit reference path: a scalar flat
// walk with the fault injected, diffed against the stored good outputs.
// This is the single copy of the diff-and-detect rule every
// parallel-pattern engine (serial, ppsfp, concurrent) runs on.
//
//repolint:hotpath
func (s *session) diffFault(fsim *logicsim.FlatSim, cones *logicsim.FlatConeSet, b *block, fi int, scratch []uint64) (uint64, []uint64, error) {
	f := s.faults[fi]
	if cones != nil {
		// The cone is borrowed from the set (ConeOfPtr): no FlatCone copy
		// on this per-(fault, block) path, and the gate-to-slot map is a
		// plain array lookup.
		var (
			diff uint64
			err  error
		)
		slot := fsim.Flat().SlotOf(f.Gate)
		cone := cones.ConeOfPtr(slot)
		if f.Pin < 0 {
			diff, err = fsim.RunCone(slot, f.Stuck, cone, nil)
		} else {
			diff, err = fsim.RunConeForced(slot, f.Pin, f.Stuck, cone, nil)
		}
		return diff, scratch, err
	}
	slot := fsim.Flat().SlotOf(f.Gate)
	bad, err := fsim.RunWithFaultInto(b.pat, slot, f.Pin, f.Stuck, scratch)
	if err != nil {
		return 0, scratch, err
	}
	mask := b.pat.Mask()
	var diff uint64
	for o := range bad {
		diff |= (bad[o] ^ b.good[o]) & mask
	}
	return diff, bad, nil
}

// runParallelPattern is the parallel-pattern engine family over the
// flat core: 64 patterns per machine word, one fault injected at a
// time. drop skips faults already detected in earlier blocks (PPSFP
// fault dropping; without it every fault meets every block, the serial
// baseline). cone restricts each faulty pass to the fault's slot cone
// on top of the block's good-machine values instead of re-walking the
// whole circuit.
func (s *session) runParallelPattern(drop, cone bool) error {
	blocks, err := s.packBlocks(!cone)
	if err != nil {
		return err
	}
	fsim, err := s.flatSim()
	if err != nil {
		return err
	}
	var cones *logicsim.FlatConeSet
	if cone {
		if cones, err = s.flatConeSet(); err != nil {
			return err
		}
	}
	var scratch []uint64
	for bi := range blocks {
		b := &blocks[bi]
		if drop && !s.anyAlive() {
			break // everything detected; skip the dead tail
		}
		if cone {
			// (Re-)establish the good machine for this block; the cone
			// runs save and restore it, so one evaluation serves every
			// surviving fault.
			if scratch, err = fsim.RunInto(b.pat, scratch); err != nil {
				return err
			}
		}
		for fi := range s.faults {
			if drop && !s.alive(fi) {
				continue
			}
			var diff uint64
			diff, scratch, err = s.diffFault(fsim, cones, b, fi, scratch)
			if err != nil {
				return err
			}
			if diff != 0 {
				s.detect(fi, b.base+bits.TrailingZeros64(diff))
			}
		}
	}
	return nil
}
