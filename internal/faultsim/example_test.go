package faultsim_test

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// ExampleRun grades a tiny exhaustive test set against the c17
// benchmark circuit: build the collapsed fault list, fault-simulate
// with the default cone-restricted PPSFP engine, and read the coverage
// off the result. Swapping the engine changes only the wall-clock —
// every engine returns identical first-detect indices.
func ExampleRun() {
	c := netlist.C17()
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)

	var patterns []logicsim.Pattern
	for v := 0; v < 1<<len(c.Inputs); v++ {
		p := make(logicsim.Pattern, len(c.Inputs))
		for i := range p {
			p[i] = v>>i&1 == 1
		}
		patterns = append(patterns, p)
	}

	res, err := faultsim.Run(c, reps, patterns, faultsim.PPSFP)
	if err != nil {
		panic(err)
	}
	fmt.Printf("faults: %d\n", len(res.FirstDetect))
	fmt.Printf("coverage: %.2f\n", res.Coverage())
	fmt.Printf("first pattern detects %d faults\n", res.DetectedBy(0))
	// Output:
	// faults: 22
	// coverage: 1.00
	// first pattern detects 5 faults
}
