package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// randomPatterns generates n reproducible random patterns for c.
func randomPatterns(c *netlist.Circuit, n int, seed int64) []logicsim.Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]logicsim.Pattern, n)
	for i := range out {
		p := make(logicsim.Pattern, len(c.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		out[i] = p
	}
	return out
}

func exhaustivePatterns(c *netlist.Circuit) []logicsim.Pattern {
	n := 1 << len(c.Inputs)
	out := make([]logicsim.Pattern, n)
	for v := 0; v < n; v++ {
		p := make(logicsim.Pattern, len(c.Inputs))
		for i := range p {
			p[i] = v>>i&1 == 1
		}
		out[v] = p
	}
	return out
}

func TestEnginesAgreeOnC17(t *testing.T) {
	c := netlist.C17()
	faults := fault.AllFaults(c)
	patterns := exhaustivePatterns(c)
	var results []Result
	for _, e := range Engines() {
		r, err := Run(c, faults, patterns, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		for fi := range faults {
			if results[0].FirstDetect[fi] != results[i].FirstDetect[fi] {
				t.Errorf("fault %v: %v first-detect %d, %v says %d",
					faults[fi].Name(c), Engines()[0], results[0].FirstDetect[fi],
					Engines()[i], results[i].FirstDetect[fi])
			}
		}
	}
}

func TestEnginesAgreeOnRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, err := netlist.RandomCircuit("r", 8, 60, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
		patterns := randomPatterns(c, 100, seed*13)
		serial, err := Run(c, faults, patterns, Serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range Engines() {
			if e == Serial {
				continue // the oracle
			}
			r, err := Run(c, faults, patterns, e)
			if err != nil {
				t.Fatalf("%v: %v", e, err)
			}
			for fi := range faults {
				if serial.FirstDetect[fi] != r.FirstDetect[fi] {
					t.Fatalf("seed %d fault %v: serial %d, %v %d",
						seed, faults[fi].Name(c), serial.FirstDetect[fi], e, r.FirstDetect[fi])
				}
			}
		}
	}
}

func TestC17FullCoverageExhaustive(t *testing.T) {
	// c17 is fully testable: exhaustive patterns detect every collapsed
	// fault.
	c := netlist.C17()
	u := fault.BuildUniverse(c)
	r, err := Run(c, fault.Reps(u.Collapsed), exhaustivePatterns(c), PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coverage() != 1 {
		t.Errorf("c17 exhaustive coverage = %v, want 1 (undetected: %v)",
			r.Coverage(), Undetected(r))
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	c, err := netlist.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	patterns := randomPatterns(c, 200, 5)
	curve, res, err := CoverageCurve(c, fault.Reps(u.Collapsed), patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(patterns) {
		t.Fatalf("curve has %d points for %d patterns", len(curve), len(patterns))
	}
	prev := 0.0
	for i, pt := range curve {
		if pt.Coverage < prev {
			t.Fatalf("coverage decreased at pattern %d", i)
		}
		if pt.Pattern != i {
			t.Fatalf("pattern index wrong at %d", i)
		}
		prev = pt.Coverage
	}
	if got := curve[len(curve)-1].Coverage; got != res.Coverage() {
		t.Errorf("final curve point %v != result coverage %v", got, res.Coverage())
	}
	// Random patterns on an adder should be effective.
	if res.Coverage() < 0.9 {
		t.Errorf("200 random patterns only reached %v coverage", res.Coverage())
	}
}

func TestSteepThenFlatShape(t *testing.T) {
	// The paper: "a large proportion of chips is rejected by the first
	// few test patterns" because random-testable faults fall fast. The
	// coverage ramp should show the same shape: the first 10% of
	// patterns contribute most of the final coverage.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	patterns := randomPatterns(c, 300, 9)
	curve, _, err := CoverageCurve(c, fault.Reps(u.Collapsed), patterns)
	if err != nil {
		t.Fatal(err)
	}
	early := curve[len(curve)/10].Coverage
	final := curve[len(curve)-1].Coverage
	if early < 0.6*final {
		t.Errorf("coverage ramp not steep: %v at 10%% of patterns vs %v final", early, final)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{FirstDetect: []int{0, 2, NotDetected, 1}, Patterns: 3}
	if r.DetectedBy(0) != 1 || r.DetectedBy(1) != 2 || r.DetectedBy(2) != 3 {
		t.Error("DetectedBy wrong")
	}
	if r.Coverage() != 0.75 {
		t.Errorf("Coverage = %v", r.Coverage())
	}
	if (Result{}).Coverage() != 0 {
		t.Error("empty coverage should be 0")
	}
	und := Undetected(r)
	if len(und) != 1 || und[0] != 2 {
		t.Errorf("Undetected = %v", und)
	}
}

func TestBuildDictionary(t *testing.T) {
	r := Result{FirstDetect: []int{0, 2, NotDetected, 0}, Patterns: 3}
	d := BuildDictionary(r)
	if len(d.ByPattern[0]) != 2 || d.ByPattern[0][0] != 0 || d.ByPattern[0][1] != 3 {
		t.Errorf("pattern 0 faults: %v", d.ByPattern[0])
	}
	if len(d.ByPattern[2]) != 1 {
		t.Errorf("pattern 2 faults: %v", d.ByPattern[2])
	}
	if _, ok := d.ByPattern[1]; ok {
		t.Error("pattern 1 should detect nothing first")
	}
}

func TestRunErrors(t *testing.T) {
	c := netlist.C17()
	faults := fault.AllFaults(c)
	if _, err := Run(c, faults, nil, PPSFP); err == nil {
		t.Error("no patterns should error")
	}
	if _, err := Run(c, faults, exhaustivePatterns(c), Engine(99)); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestEngineString(t *testing.T) {
	if Serial.String() != "serial" || PPSFP.String() != "ppsfp" || Deductive.String() != "deductive" {
		t.Error("engine names")
	}
	if Engine(9).String() != "Engine(9)" {
		t.Error("unknown engine name")
	}
}

func TestGradeTests(t *testing.T) {
	c := netlist.C17()
	g, err := GradeTests(c, exhaustivePatterns(c))
	if err != nil {
		t.Fatal(err)
	}
	if g.Coverage != 1 || g.Detected != g.Faults || len(g.Undetected) != 0 {
		t.Errorf("grade: %+v", g)
	}
	if g.Circuit != "c17" {
		t.Error("circuit name missing")
	}
	// A single pattern cannot cover everything.
	g1, err := GradeTests(c, exhaustivePatterns(c)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if g1.Coverage >= 1 || len(g1.Undetected) == 0 {
		t.Errorf("one pattern graded at %v", g1.Coverage)
	}
}

func TestFaultDroppingDoesNotChangeFirstDetect(t *testing.T) {
	// Serial (no dropping) and PPSFP (dropping) must report identical
	// first-detect indices — dropping only skips re-simulation after
	// detection.
	c, err := netlist.Comparator(3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.AllFaults(c)
	patterns := randomPatterns(c, 150, 3)
	a, err := Run(c, faults, patterns, Serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, faults, patterns, PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if a.FirstDetect[i] != b.FirstDetect[i] {
			t.Fatalf("fault %d: %d vs %d", i, a.FirstDetect[i], b.FirstDetect[i])
		}
	}
}

func BenchmarkPPSFPMul8(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	patterns := randomPatterns(c, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, reps, patterns, PPSFP); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialMul8(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	patterns := randomPatterns(c, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, reps, patterns, Serial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeductiveMul8(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	patterns := randomPatterns(c, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, reps, patterns, Deductive); err != nil {
			b.Fatal(err)
		}
	}
}
