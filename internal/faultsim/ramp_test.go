package faultsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// TestSparseRampMatchesDenseCurve pins the compression's losslessness:
// for every step of a real strobe-granular program, At must reproduce
// the dense curve entry, and FirstReaching must return the same first
// crossing a dense scan finds.
func TestSparseRampMatchesDenseCurve(t *testing.T) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	reps := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns := counting(len(c.Inputs), 40)
	res, err := RunSteps(c, reps, patterns)
	if err != nil {
		t.Fatal(err)
	}
	dense := CurveFromResult(res)
	ramp := SparseRamp(res)
	if ramp.Steps != res.Patterns {
		t.Fatalf("ramp.Steps = %d, want %d", ramp.Steps, res.Patterns)
	}
	if len(ramp.Points) == 0 || len(ramp.Points) >= len(dense) {
		t.Fatalf("ramp has %d change points vs %d dense steps — expected real compression", len(ramp.Points), len(dense))
	}
	for s := range dense {
		got := ramp.At(s)
		if got.Pattern != s || got.Detected != dense[s].Detected || got.Coverage != dense[s].Coverage {
			t.Fatalf("At(%d) = %+v, dense = %+v", s, got, dense[s])
		}
	}
	for _, target := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, ramp.Final().Coverage} {
		want := -1
		for s, pt := range dense {
			if pt.Coverage >= target {
				want = s
				break
			}
		}
		got, ok := ramp.FirstReaching(target)
		if want < 0 {
			if ok {
				t.Fatalf("FirstReaching(%v) = %+v, dense scan never crosses", target, got)
			}
			continue
		}
		if !ok || got.Pattern != want || got.Coverage != dense[want].Coverage {
			t.Fatalf("FirstReaching(%v) = %+v ok=%v, dense scan crosses at step %d (%+v)", target, got, ok, want, dense[want])
		}
	}
	if _, ok := ramp.FirstReaching(ramp.Final().Coverage + 1e-9); ok {
		t.Fatal("FirstReaching above final coverage must report ok=false")
	}
	final := ramp.Final()
	last := dense[len(dense)-1]
	if final.Detected != last.Detected || final.Coverage != last.Coverage {
		t.Fatalf("Final() = %+v, dense tail = %+v", final, last)
	}
}

// TestSparseRampEmpty covers the program that detects nothing.
func TestSparseRampEmpty(t *testing.T) {
	res := Result{FirstDetect: []int{NotDetected, NotDetected}, Patterns: 6}
	ramp := SparseRamp(res)
	if len(ramp.Points) != 0 || ramp.Steps != 6 {
		t.Fatalf("ramp = %+v, want no points over 6 steps", ramp)
	}
	if at := ramp.At(3); at.Detected != 0 || at.Coverage != 0 || at.Pattern != 3 {
		t.Fatalf("At(3) = %+v, want zero floor", at)
	}
	if _, ok := ramp.FirstReaching(0.1); ok {
		t.Fatal("FirstReaching on an empty ramp must report ok=false")
	}
	if f := ramp.Final(); f != (CoveragePoint{}) {
		t.Fatalf("Final() = %+v, want zero", f)
	}
}

// counting builds a deterministic counting pattern block.
func counting(width, n int) []logicsim.Pattern {
	out := make([]logicsim.Pattern, n)
	for i := range out {
		p := make(logicsim.Pattern, width)
		for j := 0; j < width && j < 63; j++ {
			p[j] = i>>uint(j)&1 == 1
		}
		out[i] = p
	}
	return out
}
