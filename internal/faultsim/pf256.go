package faultsim

import (
	"math/bits"
	"slices"
	"sort"

	"repro/internal/logicsim"
)

// pf256Words is the lane-block width of the wide fault-parallel engine:
// 4 machine words = 256 lanes = the good machine plus up to 255 faulty
// machines per group.
const pf256Words = 4

// runFaultParallel256 is the wide fault-parallel (pf256) engine: the PF
// algorithm ported onto the flat struct-of-arrays core with 4-word lane
// blocks. Where PF packs the good machine plus 63 faulty machines into
// one uint64, pf256 packs it plus 255 faulty machines into a [4]uint64
// lane block, so each union-cone pass retires 4x the faults of PF while
// the flat walk removes the per-gate struct dereferences PF pays.
//
// Because Flat slots are a topological order, the union cone needs only
// a plain integer sort of slot indices — no level lookups — and the
// same sorted-by-slot grouping keeps each group's union cone local.
func runFaultParallel256(s *session) error {
	blocks, err := s.packBlocks(false)
	if err != nil {
		return err
	}
	flat, err := s.flatCircuit()
	if err != nil {
		return err
	}
	cones, err := s.flatConeSet()
	if err != nil {
		return err
	}
	good := logicsim.NewFlatSim(flat)
	ws, err := logicsim.NewWideSim(flat, pf256Words)
	if err != nil {
		return err
	}
	lf, err := logicsim.NewWideLaneForces(flat, pf256Words)
	if err != nil {
		return err
	}
	nSlots := flat.Slots()
	st := &pf256State{
		ws:        ws,
		lf:        lf,
		inCone:    make([]int32, nSlots),
		frontMark: make([]int32, nSlots),
		outMark:   make([]int32, len(s.c.Outputs)),
		goodOut:   make([]uint64, 0, len(s.c.Outputs)),
	}
	lanesPerGroup := ws.Lanes() - 1 // lane 0 is the good machine
	// Lane assignment by cone locality: slot order is topological, so
	// grouping the faults by site slot keeps each group's union cone
	// small — the same trick PF plays with (level, id) keys. Relative
	// slot order never changes, so one sort up front serves every block;
	// per block the order is merely filtered down to the live faults.
	order := make([]int, len(s.faults))
	for fi := range order {
		order[fi] = fi
	}
	sort.SliceStable(order, func(a, b int) bool {
		return flat.SlotOf(s.faults[order[a]].Gate) < flat.SlotOf(s.faults[order[b]].Gate)
	})
	live := make([]int, 0, len(order))
	for bi := range blocks {
		b := &blocks[bi]
		live = live[:0]
		for _, fi := range order {
			if s.alive(fi) {
				live = append(live, fi)
			}
		}
		if len(live) == 0 {
			break
		}
		// Good machine for this block; frontier broadcasts read it via
		// Value. goodOut only recycles the output buffer.
		if st.goodOut, err = good.RunInto(b.pat, st.goodOut); err != nil {
			return err
		}
		for lo := 0; lo < len(live); lo += lanesPerGroup {
			hi := lo + lanesPerGroup
			if hi > len(live) {
				hi = len(live)
			}
			if err := s.pf256Group(good, flat, cones, b, live[lo:hi], st); err != nil {
				return err
			}
		}
	}
	return nil
}

// pf256State is the engine's per-run scratch, allocated once and reused
// across groups and blocks; group membership uses epoch marks
// (slot == gid), like the PF engine.
type pf256State struct {
	ws *logicsim.WideSim
	lf *logicsim.WideLaneForces

	gid       int32
	inCone    []int32 // per slot: member of the current group's union cone
	frontMark []int32 // per slot: already collected into the frontier
	outMark   []int32 // per output index: already collected into outs

	union    []int32
	outs     []int
	frontier []int32
	goodOut  []uint64
}

// pf256Group simulates one group of up to 255 live faults against one
// block, lane i+1 carrying group[i].
func (s *session) pf256Group(good *logicsim.FlatSim, flat *logicsim.Flat, cones *logicsim.FlatConeSet, b *block, group []int, st *pf256State) error {
	st.gid++
	gid := st.gid
	st.lf.Reset()
	union, outs := st.union[:0], st.outs[:0]
	for i, fi := range group {
		f := s.faults[fi]
		if err := st.lf.Add(logicsim.Injection{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}, i+1); err != nil {
			return err
		}
		// Slot cones are already slot lists — the union build borrows
		// them straight from the set, with no FlatCone copy.
		cone := cones.ConeOfPtr(flat.SlotOf(f.Gate))
		for _, slot := range cone.Slots {
			if st.inCone[slot] != gid {
				st.inCone[slot] = gid
				union = append(union, slot)
			}
		}
		for _, oi := range cone.Outputs {
			if st.outMark[oi] != gid {
				st.outMark[oi] = gid
				outs = append(outs, int(oi))
			}
		}
	}
	// Ascending slot order is topological: a plain integer sort replaces
	// PF's (level, id) comparison sort.
	slices.Sort(union)
	slices.Sort(outs)
	// Frontier: slots feeding the union cone from outside it; all their
	// lanes carry the good value.
	frontier := st.frontier[:0]
	for _, slot := range union {
		for _, fin := range flat.FaninSlots(int(slot)) {
			if st.inCone[fin] != gid && st.frontMark[fin] != gid {
				st.frontMark[fin] = gid
				frontier = append(frontier, fin)
			}
		}
	}
	// laneMask covers fault lanes 1..len(group); done accumulates lanes
	// whose fault has been detected, per word.
	var laneMask, done [pf256Words]uint64
	nLanes := len(group) + 1
	for k := 0; k < pf256Words; k++ {
		lo := k * 64
		switch {
		case nLanes >= lo+64:
			laneMask[k] = ^uint64(0)
		case nLanes > lo:
			laneMask[k] = (uint64(1) << uint(nLanes-lo)) - 1
		}
	}
	laneMask[0] &^= 1 // lane 0 is the good machine
	ws := st.ws
	for p := 0; p < b.pat.Count; p++ {
		if done == laneMask {
			break
		}
		for _, slot := range frontier {
			ws.Broadcast(int(slot), good.Value(int(slot)), p)
		}
		if err := ws.EvalSlotsForced(good, p, union, st.lf); err != nil {
			return err
		}
		for _, oi := range outs {
			slot := flat.OutputSlot(oi)
			v := ws.ValueWords(slot)
			gb := -(good.Value(slot) >> uint(p) & 1)
			for k := 0; k < pf256Words; k++ {
				d := (v[k] ^ gb) & laneMask[k] &^ done[k]
				for d != 0 {
					bit := bits.TrailingZeros64(d)
					d &^= uint64(1) << uint(bit)
					done[k] |= uint64(1) << uint(bit)
					s.detect(group[k*64+bit-1], b.base+p)
				}
			}
		}
	}
	// Hand the (possibly grown) scratch slices back for the next group.
	st.union, st.outs, st.frontier = union, outs, frontier
	return nil
}
