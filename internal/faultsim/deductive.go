package faultsim

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// runDeductive implements deductive fault simulation: for each pattern,
// one topological pass propagates, per line, the *list* of faults that
// would flip that line, using set algebra driven by the good values.
// The union of the primary-output lists is the set of faults the
// pattern detects. Every fault's detectability falls out of the single
// pass, so dropping buys nothing here.
func runDeductive(s *session) error {
	c, faults, patterns := s.c, s.faults, s.patterns
	order, err := c.Order()
	if err != nil {
		return err
	}
	sim, err := s.simulator()
	if err != nil {
		return err
	}
	// Index faults by site for activation checks.
	stem := make(map[int][]int)      // gate -> fault indices on its output
	branch := make(map[[2]int][]int) // (gate,pin) -> fault indices
	for i, f := range faults {
		if f.Pin < 0 {
			stem[f.Gate] = append(stem[f.Gate], i)
		} else {
			branch[[2]int{f.Gate, f.Pin}] = append(branch[[2]int{f.Gate, f.Pin}], i)
		}
	}
	lists := make([][]int, len(c.Gates))
	var scratch []int
	for pi, p := range patterns {
		if _, err := sim.RunSingle(p); err != nil {
			return err
		}
		val := func(id int) bool { return sim.Value(id)&1 == 1 }
		for _, id := range order {
			g := &c.Gates[id]
			var out []int
			if g.Type == netlist.Input {
				out = nil
			} else {
				// Gather per-pin lists: driver list plus active branch
				// faults on that pin.
				pinLists := make([][]int, len(g.Fanin))
				for pin, drv := range g.Fanin {
					l := lists[drv]
					extra := activeFaults(branch[[2]int{id, pin}], faults, val(drv))
					if len(extra) > 0 {
						l = unionSets(l, extra)
					}
					pinLists[pin] = l
				}
				out = propagateLists(g.Type, g.Fanin, pinLists, val)
			}
			// Stem faults of this gate: active ones always flip the line.
			if sf := activeFaults(stem[id], faults, val(id)); len(sf) > 0 {
				out = unionSets(out, sf)
			}
			lists[id] = out
		}
		// Detected = union over primary outputs.
		scratch = scratch[:0]
		for _, o := range c.Outputs {
			scratch = append(scratch, lists[o]...)
		}
		sort.Ints(scratch)
		prev := -1
		for _, fi := range scratch {
			if fi == prev {
				continue
			}
			prev = fi
			s.detect(fi, pi)
		}
	}
	return nil
}

// activeFaults returns the fault indices whose stuck value differs from
// the good value (an inactive stuck fault cannot flip its own line).
func activeFaults(idxs []int, faults []fault.Fault, goodVal bool) []int {
	var out []int
	for _, i := range idxs {
		if faults[i].Stuck != goodVal {
			out = append(out, i)
		}
	}
	return out
}

// propagateLists applies the deductive propagation rule of a gate given
// the per-pin fault lists and the good values of the fanin lines.
func propagateLists(t netlist.GateType, fanin []int, pinLists [][]int, val func(int) bool) []int {
	switch t {
	case netlist.Buf, netlist.Not:
		return append([]int(nil), pinLists[0]...)
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		ctrl := t == netlist.Or || t == netlist.Nor // controlling value: 1 for OR/NOR, 0 for AND/NAND
		var ctrlLists, nonCtrlLists [][]int
		for pin := range fanin {
			if val(fanin[pin]) == ctrl {
				ctrlLists = append(ctrlLists, pinLists[pin])
			} else {
				nonCtrlLists = append(nonCtrlLists, pinLists[pin])
			}
		}
		if len(ctrlLists) == 0 {
			// No controlling input: any single flip flips the output.
			return unionAll(nonCtrlLists)
		}
		// Output flips iff every controlling input flips and no
		// non-controlling input flips.
		res := intersectAll(ctrlLists)
		if len(res) > 0 && len(nonCtrlLists) > 0 {
			res = diffSets(res, unionAll(nonCtrlLists))
		}
		return res
	case netlist.Xor, netlist.Xnor:
		// Output flips iff an odd number of inputs flip.
		return oddParity(pinLists)
	default:
		panic("faultsim: cannot propagate through gate type " + t.String())
	}
}

// unionSets merges two sorted unique int slices.
func unionSets(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// unionAll folds unionSets over the lists.
func unionAll(lists [][]int) []int {
	var out []int
	for _, l := range lists {
		out = unionSets(out, l)
	}
	return out
}

// intersectAll intersects the sorted lists.
func intersectAll(lists [][]int) []int {
	if len(lists) == 0 {
		return nil
	}
	out := append([]int(nil), lists[0]...)
	for _, l := range lists[1:] {
		out = intersectSets(out, l)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

// intersectSets intersects two sorted unique slices.
func intersectSets(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// diffSets returns a \ b for sorted unique slices.
func diffSets(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

// oddParity returns the faults appearing in an odd number of lists.
func oddParity(lists [][]int) []int {
	count := make(map[int]int)
	for _, l := range lists {
		for _, f := range l {
			count[f]++
		}
	}
	var out []int
	for f, c := range count {
		if c%2 == 1 {
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}
