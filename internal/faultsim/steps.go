package faultsim

import (
	"math/bits"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Strobe-granular fault simulation. An ATE applies a pattern and then
// strobes each output in sequence; a "test step" is one (pattern,
// output) strobe event. Table 1 of the paper counts failures per
// strobe ("on the first pattern at which the tester strobed the chip
// output"), so the lot experiment needs first-detection indices at
// strobe granularity: step = pattern*numOutputs + outputIndex.

// RunSteps fault-simulates the ordered patterns with per-strobe
// granularity. The returned Result counts steps, not patterns:
// Result.Patterns = len(patterns) * len(c.Outputs) and FirstDetect
// holds step indices.
func RunSteps(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) (Result, error) {
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return Result{}, err
	}
	nOut := len(c.Outputs)
	first := make([]int, len(faults))
	for i := range first {
		first[i] = NotDetected
	}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return Result{}, err
		}
		mask := block.Mask()
		good, err := sim.Run(block)
		if err != nil {
			return Result{}, err
		}
		goodCopy := append([]uint64(nil), good...)
		for fi, f := range faults {
			if first[fi] != NotDetected {
				continue
			}
			bad, err := sim.RunWithFault(block, f.Gate, f.Pin, f.Stuck)
			if err != nil {
				return Result{}, err
			}
			best := -1
			for o := range bad {
				diff := (bad[o] ^ goodCopy[o]) & mask
				if diff == 0 {
					continue
				}
				p := base + bits.TrailingZeros64(diff)
				step := p*nOut + o
				if best < 0 || step < best {
					best = step
				}
			}
			if best >= 0 {
				first[fi] = best
			}
		}
	}
	return Result{FirstDetect: first, Patterns: len(patterns) * nOut}, nil
}

// StepCoverageCurve fault-simulates at strobe granularity and returns
// the cumulative coverage after every step.
func StepCoverageCurve(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) ([]CoveragePoint, Result, error) {
	res, err := RunSteps(c, faults, patterns)
	if err != nil {
		return nil, Result{}, err
	}
	return CurveFromResult(res), res, nil
}
