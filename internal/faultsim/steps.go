package faultsim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Strobe-granular fault simulation. An ATE applies a pattern and then
// strobes each output in sequence; a "test step" is one (pattern,
// output) strobe event. Table 1 of the paper counts failures per
// strobe ("on the first pattern at which the tester strobed the chip
// output"), so the lot experiment needs first-detection indices at
// strobe granularity: step = pattern*numOutputs + outputIndex.
//
// The first failing strobe factors: its pattern is the fault's ordinary
// first-detect pattern, and its output is the lowest-indexed output the
// fault flips on that pattern. So RunSteps runs any pattern-level
// engine first and then refines each detected fault with a single
// cone-restricted re-simulation of its detecting pattern — strobe
// granularity costs one extra cone pass per detected fault instead of a
// dedicated engine.

// RunSteps fault-simulates the ordered patterns with per-strobe
// granularity using the default engine. The returned Result counts
// steps, not patterns: Result.Patterns = len(patterns)*len(c.Outputs)
// and FirstDetect holds step indices.
func RunSteps(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) (Result, error) {
	return RunStepsOpts(c, faults, patterns, PPSFP, Options{})
}

// RunStepsOpts is RunSteps with an explicit pattern-level engine.
func RunStepsOpts(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine Engine, opt Options) (Result, error) {
	res, err := RunOpts(c, faults, patterns, engine, opt)
	if err != nil {
		return Result{}, err
	}
	nOut := len(c.Outputs)
	first := make([]int, len(faults))
	byPattern := make(map[int][]int)
	for fi, p := range res.FirstDetect {
		first[fi] = NotDetected
		if p != NotDetected {
			byPattern[p] = append(byPattern[p], fi)
		}
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return Result{}, err
	}
	cones, err := logicsim.ConeSetFor(c)
	if err != nil {
		return Result{}, err
	}
	outDiffs := make([]uint64, nOut)
	for p, fis := range byPattern {
		blk, err := logicsim.PackPatterns([]logicsim.Pattern{patterns[p]})
		if err != nil {
			return Result{}, err
		}
		if _, err := sim.Run(blk); err != nil {
			return Result{}, err
		}
		for _, fi := range fis {
			f := faults[fi]
			cone := cones.Cone(f.Gate)
			diff, err := sim.RunWithFaultCone(f.Gate, f.Pin, f.Stuck, cone, outDiffs)
			if err != nil {
				return Result{}, err
			}
			if diff == 0 {
				return Result{}, fmt.Errorf("faultsim: %v engine detected fault %d at pattern %d but re-simulation does not", engine, fi, p)
			}
			// cone.Outputs ascends, so the first differing entry is the
			// first strobed output the fault flips.
			for _, oi := range cone.Outputs {
				if outDiffs[oi]&1 != 0 {
					first[fi] = p*nOut + oi
					break
				}
			}
		}
	}
	return Result{FirstDetect: first, Patterns: len(patterns) * nOut}, nil
}

// StepCoverageCurve fault-simulates at strobe granularity and returns
// the cumulative coverage after every step.
func StepCoverageCurve(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) ([]CoveragePoint, Result, error) {
	return StepCoverageCurveOpts(c, faults, patterns, PPSFP, Options{})
}

// StepCoverageCurveOpts is StepCoverageCurve with an explicit engine.
func StepCoverageCurveOpts(c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern, engine Engine, opt Options) ([]CoveragePoint, Result, error) {
	res, err := RunStepsOpts(c, faults, patterns, engine, opt)
	if err != nil {
		return nil, Result{}, err
	}
	return CurveFromResult(res), res, nil
}
