package faultsim

import "sort"

// Ramp is the cumulative coverage ramp in change-point form: Points
// holds one CoveragePoint per step at which the detected count grows,
// ascending by step, and Steps is the total step count of the program.
// The dense curve ([]CoveragePoint, one entry per step) costs
// patterns × outputs entries — gigabytes at c7552 scale — while the
// change-point form is bounded by the fault universe (a fault's first
// detection is the only event that moves the curve), so Prepared
// memory stays proportional to the fault list, not the program length.
// The compression is lossless: At reconstructs any dense entry.
type Ramp struct {
	// Points are the change points: Points[i].Pattern is the step index
	// (pattern × numOutputs + outputIndex for strobe-granular programs)
	// at which the cumulative Detected/Coverage first take these values.
	Points []CoveragePoint `json:"points"`
	// Steps is the total program length in steps; every step in
	// [0, Steps) is addressable through At.
	Steps int `json:"steps"`
}

// SparseRamp compresses a fault-simulation result to change-point form.
// It is the sparse counterpart of CurveFromResult: for every step s,
// SparseRamp(res).At(s) equals CurveFromResult(res)[s].
func SparseRamp(res Result) Ramp {
	perStep := make(map[int]int)
	for _, d := range res.FirstDetect {
		if d != NotDetected {
			perStep[d]++
		}
	}
	steps := make([]int, 0, len(perStep))
	//repolint:ordered — sorted ascending below before use
	for s := range perStep {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	points := make([]CoveragePoint, len(steps))
	cum := 0
	total := len(res.FirstDetect)
	for i, s := range steps {
		cum += perStep[s]
		points[i] = CoveragePoint{
			Pattern:  s,
			Detected: cum,
			Coverage: float64(cum) / float64(total),
		}
	}
	return Ramp{Points: points, Steps: res.Patterns}
}

// At returns the cumulative ramp value after step (the dense curve's
// entry at that index): the greatest change point at or before step,
// or the zero-coverage floor when the program has not detected
// anything yet. The returned Pattern field is the queried step.
func (r Ramp) At(step int) CoveragePoint {
	// First index whose change point lies strictly after step.
	i := sort.Search(len(r.Points), func(i int) bool { return r.Points[i].Pattern > step })
	if i == 0 {
		return CoveragePoint{Pattern: step}
	}
	pt := r.Points[i-1]
	pt.Pattern = step
	return pt
}

// FirstReaching returns the change point at which cumulative coverage
// first reaches target — its Pattern field is the earliest step whose
// dense-curve coverage is >= target — or ok=false when the program
// never gets there.
func (r Ramp) FirstReaching(target float64) (CoveragePoint, bool) {
	i := sort.Search(len(r.Points), func(i int) bool { return r.Points[i].Coverage >= target })
	if i == len(r.Points) {
		return CoveragePoint{}, false
	}
	return r.Points[i], true
}

// Final returns the ramp's last change point: the whole program's
// detected count and coverage. A program that detects nothing has a
// zero Final.
func (r Ramp) Final() CoveragePoint {
	if len(r.Points) == 0 {
		return CoveragePoint{}
	}
	return r.Points[len(r.Points)-1]
}
