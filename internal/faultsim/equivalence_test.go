package faultsim

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// pointerSerialFirstDetect is the pre-flat serial engine, kept
// test-only as the independent oracle: one fault at a time, full
// circuit re-simulation through the pointer-walking
// logicsim.Simulator, no dropping. Since every registered engine —
// including the flat Serial baseline — now runs on the flat core, this
// is the one walk in the package that shares no simulation substrate
// with the code under test.
func pointerSerialFirstDetect(t *testing.T, c *netlist.Circuit, faults []fault.Fault, patterns []logicsim.Pattern) []int {
	t.Helper()
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]int, len(faults))
	for i := range first {
		first[i] = NotDetected
	}
	var good []uint64
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			t.Fatal(err)
		}
		g, err := sim.Run(block)
		if err != nil {
			t.Fatal(err)
		}
		good = append(good[:0], g...)
		for fi, f := range faults {
			bad, err := sim.RunWithFault(block, f.Gate, f.Pin, f.Stuck)
			if err != nil {
				t.Fatal(err)
			}
			var diff uint64
			for o := range bad {
				diff |= (bad[o] ^ good[o]) & block.Mask()
			}
			if diff != 0 {
				if p := base + bits.TrailingZeros64(diff); first[fi] == NotDetected {
					first[fi] = p
				}
			}
		}
	}
	return first
}

// TestEngineEquivalenceProperty is the cross-engine contract: every
// engine (and the full-circuit reference paths) must return identical
// FirstDetect indices on randomized circuits, randomized fault subsets,
// and randomized pattern sets. The oracle is the retired pointer-
// walking serial engine above, so even the registered flat Serial
// baseline is pinned against an independent implementation.
func TestEngineEquivalenceProperty(t *testing.T) {
	type variant struct {
		name   string
		engine Engine
		opt    Options
	}
	// Every registered engine is checked automatically (a new registry
	// entry lands here with zero test changes); the explicit extras
	// pin the full-circuit reference paths and a real worker pool even
	// on single-core hosts.
	var variants []variant
	for _, e := range Engines() {
		variants = append(variants, variant{e.String(), e, Options{}})
	}
	variants = append(variants,
		variant{"ppsfp-full", PPSFP, Options{FullCircuit: true}},
		variant{"concurrent-4", Concurrent, Options{Workers: 4}},
		variant{"concurrent-full", Concurrent, Options{Workers: 3, FullCircuit: true}},
	)
	for trial := 0; trial < 8; trial++ {
		seed := int64(trial + 1)
		rng := rand.New(rand.NewSource(seed * 977))
		var (
			c   *netlist.Circuit
			err error
		)
		// Mix structured and random circuits across trials.
		switch trial % 4 {
		case 0:
			c, err = netlist.RandomCircuit("rand", 6+rng.Intn(6), 40+rng.Intn(120), 3+rng.Intn(8), seed)
		case 1:
			c, err = netlist.ArrayMultiplier(3 + trial%3)
		case 2:
			c, err = netlist.Comparator(4 + trial%4)
		default:
			c, err = netlist.Decoder(3 + trial%3)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Randomized fault list: sometimes the full uncollapsed
		// universe, sometimes a random subset (exercises dropping and
		// PF grouping with arbitrary holes), sometimes collapsed reps.
		all := fault.AllFaults(c)
		var faults []fault.Fault
		switch trial % 3 {
		case 0:
			faults = all
		case 1:
			for _, f := range all {
				if rng.Intn(3) != 0 {
					faults = append(faults, f)
				}
			}
		default:
			faults = fault.Reps(fault.CollapseEquivalence(c, all))
		}
		// Random pattern count not aligned to the 64-pattern block size.
		npat := 30 + rng.Intn(200)
		patterns := randomPatterns(c, npat, seed*31)

		oracle := pointerSerialFirstDetect(t, c, faults, patterns)
		for _, v := range variants {
			got, err := RunOpts(c, faults, patterns, v.engine, v.opt)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.name, err)
			}
			if got.Patterns != len(patterns) {
				t.Fatalf("trial %d %s: %d patterns, want %d", trial, v.name, got.Patterns, len(patterns))
			}
			for fi := range faults {
				if got.FirstDetect[fi] != oracle[fi] {
					t.Fatalf("trial %d (%s, %d faults, %d patterns) %s: fault %v first-detect %d, oracle %d",
						trial, c.Name, len(faults), npat, v.name,
						faults[fi].Name(c), got.FirstDetect[fi], oracle[fi])
				}
			}
		}
	}
}

// TestRunStepsMatchesEngines checks the strobe-granular refinement: the
// step-level first-detect must agree across engines, and projecting a
// step index back to its pattern must reproduce the pattern-level
// first-detect.
func TestRunStepsMatchesEngines(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, err := netlist.RandomCircuit("rs", 8, 90, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
		patterns := randomPatterns(c, 120, seed*7)
		ref, err := RunSteps(c, faults, patterns)
		if err != nil {
			t.Fatal(err)
		}
		pat, err := Run(c, faults, patterns, Serial)
		if err != nil {
			t.Fatal(err)
		}
		nOut := len(c.Outputs)
		for fi := range faults {
			if ref.FirstDetect[fi] == NotDetected {
				if pat.FirstDetect[fi] != NotDetected {
					t.Fatalf("seed %d fault %d: steps say undetected, serial says %d", seed, fi, pat.FirstDetect[fi])
				}
				continue
			}
			if got := ref.FirstDetect[fi] / nOut; got != pat.FirstDetect[fi] {
				t.Fatalf("seed %d fault %d: step %d implies pattern %d, serial says %d",
					seed, fi, ref.FirstDetect[fi], got, pat.FirstDetect[fi])
			}
		}
		for _, e := range []Engine{Deductive, FaultParallel, Concurrent} {
			got, err := RunStepsOpts(c, faults, patterns, e, Options{})
			if err != nil {
				t.Fatalf("%v: %v", e, err)
			}
			for fi := range faults {
				if got.FirstDetect[fi] != ref.FirstDetect[fi] {
					t.Fatalf("seed %d fault %d: %v steps %d, ppsfp steps %d",
						seed, fi, e, got.FirstDetect[fi], ref.FirstDetect[fi])
				}
			}
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("warp-drive"); err == nil {
		t.Error("unknown engine name should error")
	}
}

func TestRunOptsValidatesFaults(t *testing.T) {
	c := netlist.C17()
	patterns := exhaustivePatterns(c)
	bad := []fault.Fault{{Gate: len(c.Gates) + 5, Pin: -1}}
	if _, err := Run(c, bad, patterns, PPSFP); err == nil {
		t.Error("out-of-range fault site should error")
	}
	badPin := []fault.Fault{{Gate: c.Outputs[0], Pin: 99}}
	if _, err := Run(c, badPin, patterns, FaultParallel); err == nil {
		t.Error("out-of-range pin should error")
	}
}

func TestEmptyFaultList(t *testing.T) {
	c := netlist.C17()
	patterns := exhaustivePatterns(c)
	for _, e := range Engines() {
		r, err := Run(c, nil, patterns, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(r.FirstDetect) != 0 || r.Patterns != len(patterns) {
			t.Fatalf("%v: unexpected result %+v", e, r)
		}
	}
}
