// Golden tests tying the dist layer through core to the paper's §7
// headline numbers. They live in package dist_test so they can import
// core (which itself imports dist) without a cycle.
package dist_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestHeadlines reproduces §7: for the paper's LSI chip (yield 0.07,
// n0 = 8), a 1% field reject rate needs about 80% fault coverage and
// 0.1% needs about 95%.
func TestHeadlines(t *testing.T) {
	m, err := core.New(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := m.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1-0.80) > 0.01 {
		t.Errorf("coverage for r=1%%: got %.4f, paper says ≈ 0.80", f1)
	}
	f01, err := m.RequiredCoverage(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f01-0.95) > 0.01 {
		t.Errorf("coverage for r=0.1%%: got %.4f, paper says ≈ 0.95", f01)
	}
	// The inversions must be consistent with the forward reject rate.
	if r := m.RejectRate(f1); math.Abs(r-0.01) > 1e-9 {
		t.Errorf("RejectRate(RequiredCoverage(0.01)) = %v", r)
	}
}

// TestFaultCountFeedsCore: the Eq. 1 mixture produced by the model is
// the dist mixture — atom at zero equal to the yield, nav of Eq. 2 as
// the mean, and a normalised PMF.
func TestFaultCountFeedsCore(t *testing.T) {
	m, err := core.New(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.FaultCount()
	if fc.PMF(0) != 0.07 {
		t.Errorf("P(0) = %v, want the yield", fc.PMF(0))
	}
	if nav := fc.Mean(); math.Abs(nav-m.Nav()) > 1e-15 {
		t.Errorf("mixture mean %v, Nav() %v", nav, m.Nav())
	}
	var sum float64
	for n := 0; n <= 100; n++ {
		sum += fc.PMF(n)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Eq. 1 PMF sums to %v", sum)
	}
}

// TestSummedYbgMatchesClosedForm: summing Eq. 6 with the simple escape
// approximation over a large fault universe converges to the closed
// form of Eq. 7 — the bridge from the dist-level urn model to the
// paper's headline equations.
func TestSummedYbgMatchesClosedForm(t *testing.T) {
	m, err := core.New(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.1, 0.5, 0.8, 0.95} {
		closed := m.Ybg(f)
		summed := m.YbgSummed(f, 20000, core.EscapeSimple)
		if math.Abs(summed-closed) > 1e-3*math.Max(closed, 1e-6) {
			t.Errorf("f=%v: Eq.6 sum %v vs Eq.7 closed form %v", f, summed, closed)
		}
		// The exact urn model agrees with the simple approximation in
		// this regime (n² << N(1-f)/f for the fault counts that matter).
		exact := m.YbgSummed(f, 20000, core.EscapeExact)
		if closed > 1e-9 && math.Abs(exact-summed)/closed > 0.01 {
			t.Errorf("f=%v: exact %v vs simple %v diverge", f, exact, summed)
		}
	}
}

// TestEscapeTiersAgree: the three escape tiers of the Appendix rank and
// agree where they should — spot checks straight on dist.Hypergeometric.
func TestEscapeTiersAgree(t *testing.T) {
	const total, m = 10000, 5000
	for _, n := range []int{1, 4, 12} {
		h := dist.Hypergeometric{N: total, K: n, M: m}
		exact := h.PZeroExact()
		simple := math.Pow(0.5, float64(n))
		if rel := math.Abs(exact-simple) / simple; rel > 0.01 {
			t.Errorf("n=%d: exact %v vs simple %v, rel %v", n, exact, simple, rel)
		}
	}
}
