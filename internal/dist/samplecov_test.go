package dist

import (
	"math/rand"
	"testing"
)

// TestSampleCoverageCIExactWhenCensus pins the degenerate case: a
// sample of the whole universe is a census, so the interval collapses
// to the exact coverage.
func TestSampleCoverageCIExactWhenCensus(t *testing.T) {
	lo, hi, err := SampleCoverageCI(500, 500, 431, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 431.0 / 500
	if lo != want || hi != want {
		t.Fatalf("census CI = [%v, %v], want collapsed at %v", lo, hi, want)
	}
}

// TestSampleCoverageCIBracketsAndTightens checks the interval contains
// the plug-in estimate, is inside [0,1], and shrinks as the sample
// grows at a fixed detected fraction.
func TestSampleCoverageCIBracketsAndTightens(t *testing.T) {
	prev := 1.0
	for _, m := range []int{50, 200, 1000, 5000} {
		k := m * 4 / 5
		lo, hi, err := SampleCoverageCI(10000, m, k, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		est := float64(k) / float64(m)
		if !(lo >= 0 && lo <= est && est <= hi && hi <= 1) {
			t.Fatalf("m=%d: CI [%v, %v] does not bracket estimate %v", m, lo, hi, est)
		}
		width := hi - lo
		if width >= prev {
			t.Fatalf("m=%d: CI width %v did not shrink from %v", m, width, prev)
		}
		prev = width
	}
}

// TestSampleCoverageCICovers is the frequentist contract: over repeated
// sampling from a universe with known true coverage, the 95% interval
// must cover the truth about 95% of the time (well above 90% here, and
// never close to breaking, with 400 trials).
func TestSampleCoverageCICovers(t *testing.T) {
	const (
		universe = 2000
		trueD    = 1400
		sample   = 150
		trials   = 400
	)
	rng := rand.New(rand.NewSource(42))
	truth := float64(trueD) / float64(universe)
	covered := 0
	idx := make([]int, universe)
	for trial := 0; trial < trials; trial++ {
		for i := range idx {
			idx[i] = i
		}
		k := 0
		for i := 0; i < sample; i++ {
			j := i + rng.Intn(universe-i)
			idx[i], idx[j] = idx[j], idx[i]
			if idx[i] < trueD {
				k++
			}
		}
		lo, hi, err := SampleCoverageCI(universe, sample, k, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if lo <= truth && truth <= hi {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.90 {
		t.Fatalf("95%% CI covered the truth in only %.1f%% of %d trials", frac*100, trials)
	}
}

// TestSampleCoverageCIRejects covers the argument contract.
func TestSampleCoverageCIRejects(t *testing.T) {
	cases := [][3]int{{0, 1, 0}, {10, 0, 0}, {10, 11, 0}, {10, 5, 6}, {10, 5, -1}}
	for _, c := range cases {
		if _, _, err := SampleCoverageCI(c[0], c[1], c[2], 0.95); err == nil {
			t.Fatalf("SampleCoverageCI(%d, %d, %d) accepted invalid arguments", c[0], c[1], c[2])
		}
	}
	if _, _, err := SampleCoverageCI(10, 5, 3, 1.0); err == nil {
		t.Fatal("confidence 1.0 must be rejected")
	}
}
