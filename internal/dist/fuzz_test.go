package dist

import (
	"math"
	"testing"
)

// FuzzNewChipFaultCount: for arbitrary (y, n0) the constructor either
// rejects or returns a distribution whose basic invariants hold.
func FuzzNewChipFaultCount(f *testing.F) {
	f.Add(0.07, 8.0)
	f.Add(0.5, 1.0)
	f.Add(0.0, 1.0)
	f.Add(1.0, 2.0)
	f.Add(-1.0, math.NaN())
	f.Add(0.999, 1e6)
	f.Fuzz(func(t *testing.T, y, n0 float64) {
		d, err := NewChipFaultCount(y, n0)
		if err != nil {
			if d != (ChipFaultCount{}) {
				t.Errorf("error path must return the zero value, got %+v", d)
			}
			return
		}
		if !(y > 0 && y < 1) || !(n0 >= 1) || math.IsInf(n0, 1) {
			t.Fatalf("constructor accepted invalid (y=%v, n0=%v)", y, n0)
		}
		if d.PMF(0) != y {
			t.Errorf("PMF(0) = %v, want %v", d.PMF(0), y)
		}
		if m := d.Mean(); !(m >= 0) || math.IsNaN(m) {
			t.Errorf("Mean = %v", m)
		}
		if v := d.Variance(); !(v >= 0) || math.IsNaN(v) {
			t.Errorf("Variance = %v", v)
		}
		if p := d.PMF(1); !(p >= 0 && p <= 1) {
			t.Errorf("PMF(1) = %v outside [0,1]", p)
		}
	})
}

// FuzzPoissonPMFCDF: for arbitrary rates and support points the PMF
// stays a probability, the CDF stays a monotone probability, and the
// quantile inverts the CDF.
func FuzzPoissonPMFCDF(f *testing.F) {
	f.Add(2.5, 3)
	f.Add(0.0, 0)
	f.Add(1e4, 10000)
	f.Add(0.001, -5)
	f.Fuzz(func(t *testing.T, lambda float64, k int) {
		if !(lambda >= 0) || math.IsInf(lambda, 1) || lambda > 1e6 {
			return // invalid or absurd rates are covered by the panic tests
		}
		if k > 1<<20 || k < -1<<20 {
			return
		}
		d := Poisson{Lambda: lambda}
		p := d.PMF(k)
		if !(p >= 0 && p <= 1) || math.IsNaN(p) {
			t.Fatalf("PMF(%d) = %v at λ=%v", k, p, lambda)
		}
		c := d.CDF(k)
		if !(c >= 0 && c <= 1+1e-12) || math.IsNaN(c) {
			t.Fatalf("CDF(%d) = %v at λ=%v", k, c, lambda)
		}
		if k >= 0 && c < p-1e-12 {
			t.Fatalf("CDF(%d) = %v < PMF(%d) = %v at λ=%v", k, c, k, p, lambda)
		}
		if prev := d.CDF(k - 1); prev > c+1e-12 {
			t.Fatalf("CDF not monotone at %d: %v after %v (λ=%v)", k, c, prev, lambda)
		}
	})
}

// FuzzHypergeometricPZero: for any valid urn the exact escape
// probability is a probability and agrees with the direct product.
func FuzzHypergeometricPZero(f *testing.F) {
	f.Add(100, 8, 40)
	f.Add(1, 0, 0)
	f.Add(10, 10, 10)
	f.Add(5000, 25, 2500)
	f.Fuzz(func(t *testing.T, n, k, m int) {
		if n <= 0 || n > 5000 || k < 0 || k > n || m < 0 || m > n {
			return // invalid urns are covered by the panic tests
		}
		d := Hypergeometric{N: n, K: k, M: m}
		p := d.PZeroExact()
		if !(p >= 0 && p <= 1) || math.IsNaN(p) {
			t.Fatalf("PZeroExact = %v for %+v", p, d)
		}
		prod := 1.0
		for i := 0; i < k; i++ {
			prod *= float64(n-m-i) / float64(n-i)
		}
		if prod < 0 {
			prod = 0
		}
		if math.Abs(p-prod) > 1e-9 {
			t.Fatalf("PZeroExact = %v, product = %v for %+v", p, prod, d)
		}
	})
}
