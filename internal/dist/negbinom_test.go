package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestNegativeBinomialPMFMoments(t *testing.T) {
	cases := []NegativeBinomial{
		{R: 0.5, Mu: 3},
		{R: 1, Mu: 0.8},
		{R: 2.5, Mu: 10},
		{R: 7, Mu: 1.2},
	}
	for _, d := range cases {
		var sum, mean, m2 float64
		for k := 0; k <= 4000; k++ {
			p := d.PMF(k)
			sum += p
			mean += float64(k) * p
			m2 += float64(k) * float64(k) * p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%+v: PMF sums to %v", d, sum)
		}
		if math.Abs(mean-d.Mean()) > 1e-6 {
			t.Errorf("%+v: PMF mean %v, Mean() %v", d, mean, d.Mean())
		}
		if v := m2 - mean*mean; math.Abs(v-d.Variance()) > 1e-5 {
			t.Errorf("%+v: PMF variance %v, Variance() %v", d, v, d.Variance())
		}
	}
}

// TestNegativeBinomialPoissonLimit: as R -> Inf the clustering washes
// out and the law converges to Poisson(Mu).
func TestNegativeBinomialPoissonLimit(t *testing.T) {
	d := NegativeBinomial{R: 1e7, Mu: 4}
	p := Poisson{Lambda: 4}
	for k := 0; k <= 25; k++ {
		if diff := math.Abs(d.PMF(k) - p.PMF(k)); diff > 1e-5 {
			t.Errorf("R→∞ limit: |NB(%d) - Poisson(%d)| = %v", k, k, diff)
		}
	}
}

// TestNegativeBinomialExtremeShape: with R >> Mu the success
// probability p = R/(R+Mu) rounds to exactly 1; both log terms must
// survive that and deliver the Poisson limit, not NaN (failure term)
// or a collapsed success term.
func TestNegativeBinomialExtremeShape(t *testing.T) {
	d := NegativeBinomial{R: 1e10, Mu: 1e-8}
	p0 := d.PMF(0)
	if math.IsNaN(p0) || math.Abs(p0-1) > 1e-7 {
		t.Errorf("PMF(0) = %v, want ≈ 1 (Poisson limit e^{-Mu})", p0)
	}
	if c := d.CDF(0); math.IsNaN(c) || c < 1-1e-7 {
		t.Errorf("CDF(0) = %v", c)
	}
	if q := d.Quantile(0.999); q != 0 {
		t.Errorf("Quantile(0.999) = %d, want 0", q)
	}
	// Non-tiny mean at extreme shape: PMF must match Poisson(Mu), not
	// drop the e^{-Mu} factor when p rounds to 1.
	huge := NegativeBinomial{R: 1e18, Mu: 5}
	pois := Poisson{Lambda: 5}
	for k := 0; k <= 20; k++ {
		if diff := math.Abs(huge.PMF(k) - pois.PMF(k)); diff > 1e-9 {
			t.Errorf("R=1e18: |NB(%d) - Poisson(%d)| = %v", k, k, diff)
		}
	}
}

func TestNegativeBinomialZeroMean(t *testing.T) {
	d := NegativeBinomial{R: 2, Mu: 0}
	if d.PMF(0) != 1 || d.PMF(3) != 0 || d.Variance() != 0 {
		t.Errorf("Mu=0 degenerate law wrong")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		if k := d.Sample(rng); k != 0 {
			t.Fatalf("Mu=0 sample = %d", k)
		}
	}
}

func TestNegativeBinomialCDFQuantile(t *testing.T) {
	d := NegativeBinomial{R: 1.5, Mu: 5}
	if d.CDF(-1) != 0 {
		t.Errorf("CDF(-1) = %v", d.CDF(-1))
	}
	sum := 0.0
	for k := 0; k <= 40; k++ {
		sum += d.PMF(k)
		if math.Abs(d.CDF(k)-sum) > 1e-10 {
			t.Fatalf("CDF(%d) = %v, Σpmf = %v", k, d.CDF(k), sum)
		}
	}
	for _, p := range []float64{0, 0.25, 0.75, 0.99} {
		q := d.Quantile(p)
		if d.CDF(q) < p || (q > 0 && d.CDF(q-1) >= p && p > 0) {
			t.Errorf("Quantile(%v) = %d not the minimal crossing", p, q)
		}
	}
}

// TestNegativeBinomialSampleMoments exercises both gamma-sampler
// branches (Marsaglia-Tsang for R >= 1, the boost for R < 1).
func TestNegativeBinomialSampleMoments(t *testing.T) {
	for _, d := range []NegativeBinomial{{R: 0.4, Mu: 2}, {R: 3, Mu: 6}} {
		rng := rand.New(rand.NewSource(11))
		const n = 80000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(d.Sample(rng))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		seMean := math.Sqrt(d.Variance() / n)
		if math.Abs(mean-d.Mean()) > 5*seMean {
			t.Errorf("%+v: sample mean %v, want %v ± %v", d, mean, d.Mean(), 5*seMean)
		}
		if math.Abs(variance-d.Variance())/d.Variance() > 0.08 {
			t.Errorf("%+v: sample variance %v, want ≈ %v", d, variance, d.Variance())
		}
	}
}

func TestNegativeBinomialInvalidPanics(t *testing.T) {
	bad := []NegativeBinomial{
		{R: 0, Mu: 1},
		{R: -2, Mu: 1},
		{R: math.NaN(), Mu: 1},
		{R: math.Inf(1), Mu: 1},
		{R: 1, Mu: -0.5},
		{R: 1, Mu: math.NaN()},
		{R: 1, Mu: math.Inf(1)},
	}
	for _, d := range bad {
		d := d
		mustPanic(t, func() { d.PMF(0) })
		mustPanic(t, func() { d.Sample(rand.New(rand.NewSource(1))) })
	}
	mustPanic(t, func() { NegativeBinomial{R: 1, Mu: 1}.Sample(nil) })
}
