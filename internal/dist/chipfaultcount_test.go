package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewChipFaultCountValidation(t *testing.T) {
	ok := []struct{ y, n0 float64 }{
		{0.07, 8},
		{0.5, 1},
		{0.999, 30},
	}
	for _, c := range ok {
		d, err := NewChipFaultCount(c.y, c.n0)
		if err != nil {
			t.Errorf("NewChipFaultCount(%v, %v): unexpected error %v", c.y, c.n0, err)
			continue
		}
		if d.Y != c.y || d.Defective.N0 != c.n0 {
			t.Errorf("NewChipFaultCount(%v, %v) = %+v", c.y, c.n0, d)
		}
	}
	bad := []struct{ y, n0 float64 }{
		{0, 8}, {1, 8}, {-0.1, 8}, {1.5, 8}, {math.NaN(), 8}, {math.Inf(1), 8},
		{0.5, 0.99}, {0.5, 0}, {0.5, -1}, {0.5, math.NaN()}, {0.5, math.Inf(1)},
	}
	for _, c := range bad {
		if _, err := NewChipFaultCount(c.y, c.n0); err == nil {
			t.Errorf("NewChipFaultCount(%v, %v): want error", c.y, c.n0)
		}
	}
}

// TestChipFaultCountEq1 checks both clauses of Eq. 1: the atom at zero
// is the yield, and the tail is the shifted Poisson scaled by 1-Y.
func TestChipFaultCountEq1(t *testing.T) {
	d, err := NewChipFaultCount(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.PMF(0) != 0.07 {
		t.Errorf("P(0) = %v, want the yield 0.07", d.PMF(0))
	}
	if d.PMF(-1) != 0 {
		t.Errorf("P(-1) = %v", d.PMF(-1))
	}
	sp := ShiftedPoisson{N0: 8}
	for n := 1; n <= 40; n++ {
		want := 0.93 * sp.PMF(n)
		if got := d.PMF(n); math.Abs(got-want) > 1e-15 {
			t.Errorf("P(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestChipFaultCountMoments(t *testing.T) {
	d, _ := NewChipFaultCount(0.3, 6)
	// nav = (1-Y) N0, the paper's Eq. 2.
	if want := 0.7 * 6.0; math.Abs(d.Mean()-want) > 1e-15 {
		t.Errorf("Mean = %v, want %v", d.Mean(), want)
	}
	var mean, m2 float64
	for n := 0; n <= 200; n++ {
		p := d.PMF(n)
		mean += float64(n) * p
		m2 += float64(n) * float64(n) * p
	}
	if math.Abs(mean-d.Mean()) > 1e-9 {
		t.Errorf("PMF mean %v, Mean() %v", mean, d.Mean())
	}
	if v := m2 - mean*mean; math.Abs(v-d.Variance()) > 1e-8 {
		t.Errorf("PMF variance %v, Variance() %v", v, d.Variance())
	}
}

func TestChipFaultCountCDFQuantile(t *testing.T) {
	d, _ := NewChipFaultCount(0.4, 5)
	if d.CDF(-1) != 0 {
		t.Errorf("CDF(-1) = %v", d.CDF(-1))
	}
	if d.CDF(0) != 0.4 {
		t.Errorf("CDF(0) = %v, want the yield", d.CDF(0))
	}
	sum := 0.0
	for n := 0; n <= 30; n++ {
		sum += d.PMF(n)
		if math.Abs(d.CDF(n)-sum) > 1e-10 {
			t.Fatalf("CDF(%d) = %v, Σpmf = %v", n, d.CDF(n), sum)
		}
	}
	if q := d.Quantile(0.2); q != 0 {
		t.Errorf("Quantile below the atom = %d, want 0", q)
	}
	if q := d.Quantile(0.4); q != 0 {
		t.Errorf("Quantile at the atom = %d, want 0", q)
	}
	for _, p := range []float64{0.41, 0.7, 0.95, 0.999} {
		q := d.Quantile(p)
		if d.CDF(q) < p || (q > 0 && d.CDF(q-1) >= p) {
			t.Errorf("Quantile(%v) = %d not the minimal crossing", p, q)
		}
	}
	mustPanic(t, func() { d.Quantile(1) })
}

// TestChipFaultCountSample checks the mixture sampler: the zero
// fraction estimates the yield and nonzero draws are at least 1.
func TestChipFaultCountSample(t *testing.T) {
	d, _ := NewChipFaultCount(0.07, 8)
	rng := rand.New(rand.NewSource(13))
	const n = 100000
	zeros, sum := 0, 0.0
	for i := 0; i < n; i++ {
		k := d.Sample(rng)
		if k == 0 {
			zeros++
		} else if k < 1 {
			t.Fatalf("defective draw %d < 1", k)
		}
		sum += float64(k)
	}
	if yHat := float64(zeros) / n; math.Abs(yHat-0.07) > 0.005 {
		t.Errorf("empirical yield %v, want ≈ 0.07", yHat)
	}
	se := math.Sqrt(d.Variance() / n)
	if mean := sum / n; math.Abs(mean-d.Mean()) > 5*se {
		t.Errorf("sample mean %v, want %v ± %v", mean, d.Mean(), 5*se)
	}
}

func TestChipFaultCountInvalidPanics(t *testing.T) {
	bad := ChipFaultCount{Y: 0, Defective: ShiftedPoisson{N0: 8}}
	mustPanic(t, func() { bad.PMF(0) })
	badN0 := ChipFaultCount{Y: 0.5, Defective: ShiftedPoisson{N0: 0.2}}
	mustPanic(t, func() { badN0.Mean() })
	good, _ := NewChipFaultCount(0.5, 2)
	mustPanic(t, func() { good.Sample(nil) })
}
