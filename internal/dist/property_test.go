package dist

import (
	"math"
	"math/rand"
	"testing"
)

// discrete is the common surface every distribution in this package
// offers; the property tests run the same checks across all of them.
type discrete interface {
	PMF(int) float64
	CDF(int) float64
	Quantile(float64) int
	Mean() float64
	Variance() float64
	Sample(*rand.Rand) int
}

// propCase names one parameterisation for the shared property tests.
type propCase struct {
	name string
	d    discrete
}

func propCases(t *testing.T) []propCase {
	t.Helper()
	fc, err := NewChipFaultCount(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	fc2, err := NewChipFaultCount(0.59, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	return []propCase{
		{"poisson-small", Poisson{Lambda: 2.5}},
		{"poisson-large", Poisson{Lambda: 80}},
		{"shifted-8", ShiftedPoisson{N0: 8}},
		{"shifted-1.3", ShiftedPoisson{N0: 1.3}},
		{"negbin-clustered", NegativeBinomial{R: 0.5, Mu: 3}},
		{"negbin-smooth", NegativeBinomial{R: 4, Mu: 12}},
		{"hypergeom", Hypergeometric{N: 100, K: 8, M: 40}},
		{"chipfault-paper", fc},
		{"chipfault-lot", fc2},
	}
}

// TestPMFSumsToOne: summed over the (numerically) whole support, every
// PMF accounts for all the mass.
func TestPMFSumsToOne(t *testing.T) {
	for _, c := range propCases(t) {
		top := c.d.Quantile(1 - 1e-13)
		var sum float64
		for k := 0; k <= top+200; k++ {
			sum += c.d.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: PMF sums to %v over [0, %d]", c.name, sum, top+200)
		}
	}
}

// TestMomentsMatchPMF: Mean()/Variance() agree with moments computed
// from the PMF itself.
func TestMomentsMatchPMF(t *testing.T) {
	for _, c := range propCases(t) {
		top := c.d.Quantile(1-1e-13) + 300
		var mean, m2 float64
		for k := 0; k <= top; k++ {
			p := c.d.PMF(k)
			mean += float64(k) * p
			m2 += float64(k) * float64(k) * p
		}
		if math.Abs(mean-c.d.Mean()) > 1e-6*math.Max(1, c.d.Mean()) {
			t.Errorf("%s: PMF mean %v, Mean() %v", c.name, mean, c.d.Mean())
		}
		v := m2 - mean*mean
		if math.Abs(v-c.d.Variance()) > 1e-5*math.Max(1, c.d.Variance()) {
			t.Errorf("%s: PMF variance %v, Variance() %v", c.name, v, c.d.Variance())
		}
	}
}

// TestCDFIsPMFPartialSum: the CDF is the running sum of the PMF and is
// monotone in [0, 1].
func TestCDFIsPMFPartialSum(t *testing.T) {
	for _, c := range propCases(t) {
		top := c.d.Quantile(1 - 1e-10)
		var sum, prev float64
		for k := 0; k <= top; k++ {
			sum += c.d.PMF(k)
			got := c.d.CDF(k)
			if math.Abs(got-sum) > 1e-8 {
				t.Errorf("%s: CDF(%d) = %v, Σpmf = %v", c.name, k, got, sum)
				break
			}
			if got < prev || got > 1+1e-12 {
				t.Errorf("%s: CDF not monotone in [0,1] at %d: %v after %v", c.name, k, got, prev)
			}
			prev = got
		}
	}
}

// TestSampleMomentsMatch: empirical mean and variance of the sampler
// agree with the analytic moments (5-sigma mean bound, loose variance
// bound).
func TestSampleMomentsMatch(t *testing.T) {
	for _, c := range propCases(t) {
		rng := rand.New(rand.NewSource(1234))
		const n = 60000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(c.d.Sample(rng))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		se := math.Sqrt(c.d.Variance() / n)
		if math.Abs(mean-c.d.Mean()) > 5*se {
			t.Errorf("%s: sample mean %v, want %v ± %v", c.name, mean, c.d.Mean(), 5*se)
		}
		if want := c.d.Variance(); want > 0 && math.Abs(variance-want)/want > 0.08 {
			t.Errorf("%s: sample variance %v, want ≈ %v", c.name, variance, want)
		}
	}
}

// TestShiftedPoissonIsOnePlusPoisson: the shifted law equals
// 1 + Poisson(N0-1) in distribution — identical PMF, CDF, quantiles,
// and (with matched seeds) identical samples.
func TestShiftedPoissonIsOnePlusPoisson(t *testing.T) {
	for _, n0 := range []float64{1, 2.5, 8, 20} {
		sp := ShiftedPoisson{N0: n0}
		base := Poisson{Lambda: n0 - 1}
		for n := 1; n <= 60; n++ {
			if math.Abs(sp.PMF(n)-base.PMF(n-1)) > 1e-15 {
				t.Errorf("n0=%v: PMF(%d) = %v, Poisson PMF(%d) = %v", n0, n, sp.PMF(n), n-1, base.PMF(n-1))
			}
			if math.Abs(sp.CDF(n)-base.CDF(n-1)) > 1e-15 {
				t.Errorf("n0=%v: CDF mismatch at %d", n0, n)
			}
		}
		for _, p := range []float64{0, 0.3, 0.9, 0.999} {
			if sp.Quantile(p) != 1+base.Quantile(p) {
				t.Errorf("n0=%v: Quantile(%v) mismatch", n0, p)
			}
		}
		rng1 := rand.New(rand.NewSource(99))
		rng2 := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			if got, want := sp.Sample(rng1), 1+base.Sample(rng2); got != want {
				t.Fatalf("n0=%v draw %d: shifted %d, 1+Poisson %d", n0, i, got, want)
			}
		}
	}
}

// TestQuantileExtremeP: the largest float64 below 1 is inside the
// documented domain [0, 1); every distribution must terminate and land
// at (or beyond) the numerically exhausted tail, even when the
// accumulated CDF can never reach p exactly (bounded support, or a
// conditional rescale rounding to 1).
func TestQuantileExtremeP(t *testing.T) {
	p := math.Nextafter(1, 0)
	for _, c := range propCases(t) {
		q := c.d.Quantile(p)
		if c.d.CDF(q) < 1-1e-9 {
			t.Errorf("%s: Quantile(1-ulp) = %d but CDF there is only %v", c.name, q, c.d.CDF(q))
		}
	}
	// The hypergeometric must land on its support top, not scan past it.
	h := Hypergeometric{N: 100, K: 8, M: 40}
	if q := h.Quantile(p); q > 8 {
		t.Errorf("hypergeom Quantile(1-ulp) = %d, beyond the support top 8", q)
	}
}

// TestQuantileIsMinimalCrossing: Quantile(p) is the smallest k with
// CDF(k) >= p, across all distributions and a ladder of probabilities.
func TestQuantileIsMinimalCrossing(t *testing.T) {
	for _, c := range propCases(t) {
		for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.9999} {
			q := c.d.Quantile(p)
			if c.d.CDF(q) < p {
				t.Errorf("%s: CDF(Quantile(%v)) = %v < p", c.name, p, c.d.CDF(q))
			}
			if q > 0 && c.d.CDF(q-1) >= p && p > 0 {
				t.Errorf("%s: Quantile(%v) = %d is not minimal", c.name, p, q)
			}
		}
	}
}
