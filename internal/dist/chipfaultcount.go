package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// ChipFaultCount is the full fault-count distribution of a manufactured
// chip, both clauses of the paper's Eq. 1: with probability Y the chip
// is fault-free, otherwise the count follows the shifted-Poisson law of
// a defective chip:
//
//	P(0) = Y,    P(n) = (1-Y) · Defective.PMF(n)   for n >= 1.
type ChipFaultCount struct {
	Y         float64        // yield: probability of zero faults, in (0, 1)
	Defective ShiftedPoisson // fault count given the chip is defective
}

// NewChipFaultCount validates (y, n0) and builds the Eq. 1 mixture.
// Yield must lie strictly inside (0, 1) — the degenerate endpoints make
// the conditional law meaningless — and n0 must be a finite mean of at
// least one fault per defective chip.
func NewChipFaultCount(y, n0 float64) (ChipFaultCount, error) {
	if !(y > 0 && y < 1) {
		return ChipFaultCount{}, fmt.Errorf("dist: yield must be in (0,1), got %v", y)
	}
	if !(n0 >= 1) || math.IsInf(n0, 1) {
		return ChipFaultCount{}, fmt.Errorf("dist: n0 must be finite and >= 1, got %v", n0)
	}
	return ChipFaultCount{Y: y, Defective: ShiftedPoisson{N0: n0}}, nil
}

func (d ChipFaultCount) check() {
	if !(d.Y > 0 && d.Y < 1) {
		panic(fmt.Sprintf("dist: ChipFaultCount yield must be in (0,1), got %v", d.Y))
	}
	d.Defective.check()
}

// Mean returns E[X] = (1-Y) N0, the paper's nav (Eq. 2).
func (d ChipFaultCount) Mean() float64 {
	d.check()
	return (1 - d.Y) * d.Defective.Mean()
}

// Variance returns Var[X] via the mixture second moment:
// E[X²] = (1-Y)(Var_d + Mean_d²).
func (d ChipFaultCount) Variance() float64 {
	d.check()
	mu := d.Defective.Mean()
	m2 := (1 - d.Y) * (d.Defective.Variance() + mu*mu)
	mean := (1 - d.Y) * mu
	return m2 - mean*mean
}

// PMF returns P(X = n) per Eq. 1.
func (d ChipFaultCount) PMF(n int) float64 {
	d.check()
	switch {
	case n < 0:
		return 0
	case n == 0:
		return d.Y
	default:
		return (1 - d.Y) * d.Defective.PMF(n)
	}
}

// CDF returns P(X <= n) = Y + (1-Y)·Defective.CDF(n) for n >= 0.
func (d ChipFaultCount) CDF(n int) float64 {
	d.check()
	if n < 0 {
		return 0
	}
	return d.Y + (1-d.Y)*d.Defective.CDF(n)
}

// Quantile returns the smallest n with CDF(n) >= p, for p in [0, 1).
// Any p <= Y lands on the fault-free atom.
func (d ChipFaultCount) Quantile(p float64) int {
	d.check()
	checkQuantileP(p)
	if p <= d.Y {
		return 0
	}
	// The conditional rescale can round to exactly 1 for p just below
	// 1; clamp back inside the inner quantile's domain.
	cond := (p - d.Y) / (1 - d.Y)
	if cond >= 1 {
		cond = math.Nextafter(1, 0)
	}
	return d.Defective.Quantile(cond)
}

// Sample draws one chip's fault count: zero with probability Y, else a
// defective-chip count. The mixture indicator always consumes exactly
// one uniform so draw sequences stay reproducible.
func (d ChipFaultCount) Sample(rng *rand.Rand) int {
	d.check()
	checkRNG(rng)
	if rng.Float64() < d.Y {
		return 0
	}
	return d.Defective.Sample(rng)
}
