package dist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// Hypergeometric is the urn model of the paper's Eq. 4: a chip carries
// K of the N possible faults, the test set detects M of the N, and X is
// how many of the chip's K faults the test detects. The chip escapes
// exactly when X = 0; PZeroExact is that probability, the exact q0(n)
// of Eq. A.1 with n = K and coverage f = M/N.
type Hypergeometric struct {
	N int // size of the fault universe, > 0
	K int // faults carried by the chip, in [0, N]
	M int // faults detected by the test set, in [0, N]
}

func (d Hypergeometric) check() {
	if d.N <= 0 || d.K < 0 || d.K > d.N || d.M < 0 || d.M > d.N {
		panic(fmt.Sprintf("dist: invalid Hypergeometric N=%d K=%d M=%d", d.N, d.K, d.M))
	}
}

// Mean returns E[X] = M·K/N.
func (d Hypergeometric) Mean() float64 {
	d.check()
	return float64(d.M) * float64(d.K) / float64(d.N)
}

// Variance returns Var[X] = M (K/N)(1-K/N)(N-M)/(N-1).
func (d Hypergeometric) Variance() float64 {
	d.check()
	if d.N == 1 {
		return 0
	}
	p := float64(d.K) / float64(d.N)
	return float64(d.M) * p * (1 - p) * float64(d.N-d.M) / float64(d.N-1)
}

// LogPMF returns ln P(X = k), or -Inf outside the support
// [max(0, M+K-N), min(K, M)]:
//
//	P(k) = C(K,k) C(N-K, M-k) / C(N, M).
func (d Hypergeometric) LogPMF(k int) float64 {
	d.check()
	if k < 0 || k > d.K || k > d.M || d.M-k > d.N-d.K {
		return math.Inf(-1)
	}
	return numeric.LogChoose(d.K, k) + numeric.LogChoose(d.N-d.K, d.M-k) - numeric.LogChoose(d.N, d.M)
}

// PMF returns P(X = k).
func (d Hypergeometric) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// PZeroExact returns P(X = 0) = C(N-M, K)/C(N, K), the exact escape
// probability of Eq. 4 / Eq. A.1, evaluated through log-gamma so it
// neither overflows nor loses the tiny tail for large universes.
func (d Hypergeometric) PZeroExact() float64 {
	d.check()
	if d.K == 0 || d.M == 0 {
		return 1
	}
	if d.K > d.N-d.M {
		return 0 // more chip faults than undetected slots: escape impossible
	}
	return math.Exp(numeric.LogChoose(d.N-d.M, d.K) - numeric.LogChoose(d.N, d.K))
}

// CDF returns P(X <= k).
func (d Hypergeometric) CDF(k int) float64 {
	d.check()
	return sumPMF(k, d.PMF)
}

// Quantile returns the smallest k with CDF(k) >= p, for p in [0, 1).
func (d Hypergeometric) Quantile(p float64) int {
	d.check()
	return quantilePMFScan(p, d.PMF)
}

// Sample draws one overlap count by inverse-transform over the PMF.
func (d Hypergeometric) Sample(rng *rand.Rand) int {
	d.check()
	checkRNG(rng)
	u := rng.Float64()
	var cum float64
	hi := d.K
	if d.M < hi {
		hi = d.M
	}
	for k := 0; k < hi; k++ {
		cum += d.PMF(k)
		if u < cum {
			return k
		}
	}
	return hi
}
