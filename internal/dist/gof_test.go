package dist

import (
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

// chiSquareGOF draws n samples under a fixed seed, bins them so every
// expected count is at least 5 (merging the tail), and returns the
// chi-square p-value of the fit against the PMF.
func chiSquareGOF(t *testing.T, d discrete, seed int64, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top := d.Quantile(1 - 1e-9)
	counts := make([]int, top+1)
	tailObs := 0
	for i := 0; i < n; i++ {
		k := d.Sample(rng)
		if k <= top {
			counts[k]++
		} else {
			tailObs++
		}
	}
	// Merge consecutive support points until each bin expects >= 5.
	var obs, exp []float64
	var curObs, curExp float64
	for k := 0; k <= top; k++ {
		curObs += float64(counts[k])
		curExp += float64(n) * d.PMF(k)
		if curExp >= 5 {
			obs = append(obs, curObs)
			exp = append(exp, curExp)
			curObs, curExp = 0, 0
		}
	}
	// Whatever remains, plus everything above top, is one tail bin.
	curObs += float64(tailObs)
	curExp += float64(n) * (1 - d.CDF(top))
	if len(exp) > 0 && curExp < 5 {
		obs[len(obs)-1] += curObs
		exp[len(exp)-1] += curExp
	} else {
		obs = append(obs, curObs)
		exp = append(exp, curExp)
	}
	if len(exp) < 2 {
		t.Fatalf("degenerate binning: %d bins", len(exp))
	}
	var stat float64
	for i := range exp {
		diff := obs[i] - exp[i]
		stat += diff * diff / exp[i]
	}
	return numeric.ChiSquareSurvival(stat, len(exp)-1)
}

// TestSamplersGoodnessOfFit: under fixed seeds every sampler passes a
// chi-square goodness-of-fit test against its own PMF at the 0.1%
// level. A failure means the sampler is drawing from the wrong law.
func TestSamplersGoodnessOfFit(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling-heavy")
	}
	for _, c := range propCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := chiSquareGOF(t, c.d, 20260729, 50000)
			if p < 1e-3 {
				t.Errorf("chi-square p-value %v < 0.001: sampler does not match PMF", p)
			}
		})
	}
}

// TestGOFDetectsWrongLaw: the harness itself must reject a sampler
// drawing from a visibly different distribution, or the test above
// proves nothing.
func TestGOFDetectsWrongLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling-heavy")
	}
	// Samples from Poisson(4) scored against Poisson(3)'s PMF.
	wrong := mislabeledPoisson{draw: Poisson{Lambda: 4}, score: Poisson{Lambda: 3}}
	if p := chiSquareGOF(t, wrong, 20260729, 50000); p > 1e-6 {
		t.Errorf("chi-square failed to reject a mislabeled sampler (p = %v)", p)
	}
}

// mislabeledPoisson samples one Poisson but reports another's PMF —
// a deliberately broken distribution for validating the GOF harness.
type mislabeledPoisson struct {
	draw, score Poisson
}

func (m mislabeledPoisson) PMF(k int) float64         { return m.score.PMF(k) }
func (m mislabeledPoisson) CDF(k int) float64         { return m.score.CDF(k) }
func (m mislabeledPoisson) Quantile(p float64) int    { return m.score.Quantile(p) }
func (m mislabeledPoisson) Mean() float64             { return m.score.Mean() }
func (m mislabeledPoisson) Variance() float64         { return m.score.Variance() }
func (m mislabeledPoisson) Sample(rng *rand.Rand) int { return m.draw.Sample(rng) }
