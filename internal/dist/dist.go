// Package dist implements the discrete probability distributions the
// paper's model is built from:
//
//   - Poisson — physical defect counts per chip (mean D0·A);
//   - NegativeBinomial — clustered (gamma-mixed Poisson) defect counts,
//     the Stapper yield picture behind Eq. 3;
//   - ShiftedPoisson — the number of logical faults on a *defective*
//     chip, Eq. 1's n >= 1 clause: mean N0, support {1, 2, ...};
//   - Hypergeometric — the urn model of Eq. 4 whose zero class is the
//     exact escape probability q0(n);
//   - ChipFaultCount — the full Eq. 1 mixture: P(0) = Y and a
//     shifted-Poisson tail scaled by 1-Y.
//
// All PMFs are evaluated in log space via the Lanczos log-gamma in
// internal/numeric — no factorials or raw binomial coefficients are
// ever formed, so the PMFs stay finite and accurate far beyond where a
// naive product would overflow. Every distribution exposes Mean,
// Variance, CDF and Quantile alongside PMF and Sample so downstream
// estimators and simulators never reimplement moments.
//
// Sampling takes an explicit *rand.Rand so callers control seeding;
// given the same seed, every sampler reproduces the same draw sequence
// (locked in by the determinism tests in this package).
package dist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// maxQuantileScan bounds the support scan in quantile searches; it is a
// safety net against a numerically stuck CDF, far above any fault count
// the model produces.
const maxQuantileScan = 1 << 22

// quantileScan returns the smallest k >= 0 with cdf(k) >= p, scanning
// the support upward. All distributions here concentrate near their
// mean (fault counts of tens, not millions), so a linear scan is both
// simple and fast. p must lie in [0, 1). Use it only with O(1) CDFs;
// summed CDFs go through quantilePMFScan instead.
func quantileScan(p float64, cdf func(int) float64) int {
	checkQuantileP(p)
	for k := 0; k < maxQuantileScan; k++ {
		if cdf(k) >= p {
			return k
		}
	}
	panic(fmt.Sprintf("dist: quantile scan did not reach p=%v", p))
}

// zeroTailRun is how many consecutive zero-PMF support points the
// quantile scan tolerates after seeing mass before concluding the
// distribution is exhausted. A floating-point CDF can max out strictly
// below a p very close to 1; the quantile is then the top of the
// effective support, not a panic.
const zeroTailRun = 1024

// quantilePMFScan is quantileScan for distributions whose CDF is itself
// a PMF sum: it accumulates the mass in a single pass instead of
// re-summing from zero at every step. If the accumulated mass never
// reaches p (bounded support, or an unbounded tail that has underflowed),
// it returns the last support point carrying mass.
func quantilePMFScan(p float64, pmf func(int) float64) int {
	checkQuantileP(p)
	var sum numeric.KahanSum
	lastPositive, zeros := 0, 0
	for k := 0; k < maxQuantileScan; k++ {
		mass := pmf(k)
		sum.Add(mass)
		if sum.Sum() >= p {
			return k
		}
		if mass > 0 {
			lastPositive, zeros = k, 0
		} else if sum.Sum() > 0 {
			if zeros++; zeros >= zeroTailRun {
				return lastPositive
			}
		}
	}
	panic(fmt.Sprintf("dist: quantile scan did not reach p=%v", p))
}

func checkQuantileP(p float64) {
	if !(p >= 0 && p < 1) {
		panic(fmt.Sprintf("dist: quantile probability must be in [0,1), got %v", p))
	}
}

// sumPMF accumulates pmf(0..k) with compensated summation, clamped to
// [0, 1]; shared by the CDFs that have no cheap closed form.
func sumPMF(k int, pmf func(int) float64) float64 {
	var sum numeric.KahanSum
	for i := 0; i <= k; i++ {
		sum.Add(pmf(i))
	}
	return math.Min(sum.Sum(), 1)
}

// checkRNG panics when a sampler is called without a generator; a nil
// rng would otherwise surface as an opaque panic inside math/rand.
func checkRNG(rng *rand.Rand) {
	if rng == nil {
		panic("dist: Sample requires a non-nil *rand.Rand")
	}
}
