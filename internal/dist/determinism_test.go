package dist

import (
	"math/rand"
	"testing"
)

// The golden sequences below pin down the exact draws each sampler
// produces from rand.NewSource(1). They are the reproduction contract:
// a perf refactor that changes how many uniforms a sampler consumes, or
// in what order, silently changes every simulated lot in the repo, and
// these tests are what catches it. Regenerate them only on a deliberate,
// called-out change to the sampling algorithms.
func TestSampleSequencesAreGolden(t *testing.T) {
	fc, err := NewChipFaultCount(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    discrete
		want []int
	}{
		{"Poisson λ=2.5 (Knuth)", Poisson{Lambda: 2.5}, []int{4, 1, 1, 3, 2, 2, 1, 3, 2, 3, 3, 1}},
		{"Poisson λ=80 (PTRS)", Poisson{Lambda: 80}, []int{83, 84, 78, 63, 66, 80, 72, 75, 74, 85, 71, 82}},
		{"ShiftedPoisson n0=8", ShiftedPoisson{N0: 8}, []int{8, 7, 7, 10, 6, 8, 8, 6, 12, 14, 8, 6}},
		{"NegativeBinomial R=0.5 μ=3", NegativeBinomial{R: 0.5, Mu: 3}, []int{3, 0, 7, 2, 0, 0, 2, 2, 7, 2, 2, 1}},
		{"Hypergeometric 100/8/40", Hypergeometric{N: 100, K: 8, M: 40}, []int{4, 5, 4, 3, 3, 4, 1, 2, 2, 2, 3, 4}},
		{"ChipFaultCount y=0.07 n0=8", fc, []int{7, 8, 8, 6, 6, 9, 6, 13, 14, 8, 8, 2}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for i, want := range c.want {
				if got := c.d.Sample(rng); got != want {
					t.Fatalf("draw %d: got %d, want %d (full expected %v)", i, got, want, c.want)
				}
			}
		})
	}
}

// TestSameSeedSameSequence: two independent generators with the same
// seed must drive every sampler through identical sequences — the
// weaker, algorithm-agnostic half of the determinism contract.
func TestSameSeedSameSequence(t *testing.T) {
	for _, c := range propCases(t) {
		rng1 := rand.New(rand.NewSource(77))
		rng2 := rand.New(rand.NewSource(77))
		for i := 0; i < 500; i++ {
			a, b := c.d.Sample(rng1), c.d.Sample(rng2)
			if a != b {
				t.Fatalf("%s: draw %d diverged: %d vs %d", c.name, i, a, b)
			}
		}
	}
}
