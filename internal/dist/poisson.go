package dist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// Poisson is the Poisson distribution with mean Lambda >= 0. The
// defect model uses it for the number of independent physical defects
// on a chip (mean D0·A).
type Poisson struct {
	Lambda float64
}

func (d Poisson) check() {
	if !(d.Lambda >= 0) || math.IsInf(d.Lambda, 1) {
		panic(fmt.Sprintf("dist: Poisson lambda must be finite and >= 0, got %v", d.Lambda))
	}
}

// Mean returns E[X] = Lambda.
func (d Poisson) Mean() float64 { d.check(); return d.Lambda }

// Variance returns Var[X] = Lambda.
func (d Poisson) Variance() float64 { d.check(); return d.Lambda }

// LogPMF returns ln P(X = k), or -Inf outside the support.
func (d Poisson) LogPMF(k int) float64 {
	d.check()
	if k < 0 {
		return math.Inf(-1)
	}
	if d.Lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(k)*math.Log(d.Lambda) - d.Lambda - numeric.LogFactorial(k)
}

// PMF returns P(X = k).
func (d Poisson) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// CDF returns P(X <= k) through the regularized incomplete gamma
// function: P(X <= k) = Q(k+1, lambda).
func (d Poisson) CDF(k int) float64 {
	d.check()
	if k < 0 {
		return 0
	}
	if d.Lambda == 0 {
		return 1
	}
	return numeric.GammaQ(float64(k)+1, d.Lambda)
}

// Quantile returns the smallest k with CDF(k) >= p, for p in [0, 1).
func (d Poisson) Quantile(p float64) int {
	d.check()
	return quantileScan(p, d.CDF)
}

// ptrsCutoff is the mean above which Sample switches from the
// multiplicative (Knuth) method to Hörmann's PTRS transformed
// rejection. Below it exp(-lambda) is comfortably above underflow and
// the expected lambda+1 uniforms are cheap.
const ptrsCutoff = 30

// Sample draws one Poisson variate. Small means use Knuth's
// multiplicative method; large means use the PTRS transformed-rejection
// sampler, which needs O(1) uniforms regardless of Lambda.
func (d Poisson) Sample(rng *rand.Rand) int {
	d.check()
	checkRNG(rng)
	if d.Lambda == 0 {
		return 0
	}
	if d.Lambda < ptrsCutoff {
		return poissonKnuth(rng, d.Lambda)
	}
	return poissonPTRS(rng, d.Lambda)
}

// poissonKnuth counts how many uniform factors fit before the running
// product drops below exp(-lambda).
func poissonKnuth(rng *rand.Rand, lambda float64) int {
	limit := math.Exp(-lambda)
	k := 0
	for prod := rng.Float64(); prod > limit; prod *= rng.Float64() {
		k++
	}
	return k
}

// poissonPTRS is Hörmann's PTRS algorithm ("The transformed rejection
// method for generating Poisson random variables", 1993), valid for
// lambda >= 10; we engage it above ptrsCutoff. It draws a pair of
// uniforms per attempt and accepts with probability ~0.98.
func poissonPTRS(rng *rand.Rand, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-numeric.LogGamma(k+1) {
			return int(k)
		}
	}
}

// ShiftedPoisson is the fault-count distribution of a defective chip
// (Eq. 1, n >= 1 clause): X = 1 + Poisson(N0 - 1), so the support is
// {1, 2, ...} and the mean is N0 >= 1.
type ShiftedPoisson struct {
	N0 float64
}

func (d ShiftedPoisson) check() {
	if !(d.N0 >= 1) || math.IsInf(d.N0, 1) {
		panic(fmt.Sprintf("dist: ShiftedPoisson n0 must be finite and >= 1, got %v", d.N0))
	}
}

// base returns the underlying unshifted Poisson with mean N0 - 1.
func (d ShiftedPoisson) base() Poisson { return Poisson{Lambda: d.N0 - 1} }

// Mean returns E[X] = N0.
func (d ShiftedPoisson) Mean() float64 { d.check(); return d.N0 }

// Variance returns Var[X] = N0 - 1 (the shift adds no spread).
func (d ShiftedPoisson) Variance() float64 { d.check(); return d.N0 - 1 }

// LogPMF returns ln P(X = n), or -Inf outside the support n >= 1.
func (d ShiftedPoisson) LogPMF(n int) float64 {
	d.check()
	if n < 1 {
		return math.Inf(-1)
	}
	return d.base().LogPMF(n - 1)
}

// PMF returns P(X = n) = e^{-(N0-1)} (N0-1)^{n-1} / (n-1)! for n >= 1
// (Eq. 1 with the 1-Y factor stripped).
func (d ShiftedPoisson) PMF(n int) float64 { return math.Exp(d.LogPMF(n)) }

// CDF returns P(X <= n).
func (d ShiftedPoisson) CDF(n int) float64 {
	d.check()
	if n < 1 {
		return 0
	}
	return d.base().CDF(n - 1)
}

// Quantile returns the smallest n with CDF(n) >= p, for p in [0, 1).
func (d ShiftedPoisson) Quantile(p float64) int {
	d.check()
	return 1 + d.base().Quantile(p)
}

// Sample draws one fault count, always at least 1.
func (d ShiftedPoisson) Sample(rng *rand.Rand) int {
	d.check()
	return 1 + d.base().Sample(rng)
}
