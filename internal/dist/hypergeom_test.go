package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestPZeroExactMatchesProduct checks the log-gamma evaluation against
// the direct combinatorial product of Eq. A.1:
// q0 = Π_{i=0}^{K-1} (N-M-i)/(N-i).
func TestPZeroExactMatchesProduct(t *testing.T) {
	cases := []Hypergeometric{
		{N: 10, K: 3, M: 4},
		{N: 100, K: 8, M: 40},
		{N: 5000, K: 25, M: 2500},
		{N: 200, K: 1, M: 199},
		{N: 50, K: 50, M: 0},
	}
	for _, d := range cases {
		prod := 1.0
		for i := 0; i < d.K; i++ {
			prod *= float64(d.N-d.M-i) / float64(d.N-i)
		}
		got := d.PZeroExact()
		if math.Abs(got-prod) > 1e-12*math.Max(1, prod) {
			t.Errorf("%+v: PZeroExact = %v, product = %v", d, got, prod)
		}
		// The zero class of the PMF is the same quantity.
		if pmf0 := d.PMF(0); math.Abs(got-pmf0) > 1e-12 {
			t.Errorf("%+v: PZeroExact = %v, PMF(0) = %v", d, got, pmf0)
		}
	}
}

// TestPZeroExactConvergesToSimple: for a large universe the exact urn
// probability converges to the Eq. 5 approximation (1-f)^n the closed
// forms are built on.
func TestPZeroExactConvergesToSimple(t *testing.T) {
	const f = 0.4
	for _, n := range []int{1, 3, 8, 20} {
		total := 1 << 20
		m := int(f * float64(total))
		d := Hypergeometric{N: total, K: n, M: m}
		realized := float64(m) / float64(total) // realized coverage after rounding m
		simple := math.Pow(1-realized, float64(n))
		// Eq. A.2 bounds the relative gap by f·n(n-1)/(2N(1-f)).
		bound := 2 * f * float64(n) * float64(n-1) / (2 * float64(total) * (1 - f))
		if rel := math.Abs(d.PZeroExact()-simple) / simple; rel > bound+1e-9 {
			t.Errorf("n=%d: exact %v vs (1-f)^n %v, rel err %v", n, d.PZeroExact(), simple, rel)
		}
	}
	// And for a small universe they must visibly differ (the paper's
	// point about when Eq. 5 applies: n² << N(1-f)/f).
	d := Hypergeometric{N: 30, K: 10, M: 15}
	simple := math.Pow(0.5, 10)
	if math.Abs(d.PZeroExact()-simple)/simple < 0.5 {
		t.Errorf("small-universe exact %v should differ from %v", d.PZeroExact(), simple)
	}
}

func TestHypergeometricEdgeCases(t *testing.T) {
	if p := (Hypergeometric{N: 10, K: 0, M: 5}).PZeroExact(); p != 1 {
		t.Errorf("fault-free chip must always escape, got %v", p)
	}
	if p := (Hypergeometric{N: 10, K: 4, M: 0}).PZeroExact(); p != 1 {
		t.Errorf("empty test must always pass the chip, got %v", p)
	}
	if p := (Hypergeometric{N: 10, K: 5, M: 6}).PZeroExact(); p != 0 {
		t.Errorf("more faults than undetected slots cannot escape, got %v", p)
	}
	if p := (Hypergeometric{N: 10, K: 10, M: 1}).PZeroExact(); p != 0 {
		t.Errorf("full-universe chip under any testing cannot escape, got %v", p)
	}
}

func TestHypergeometricPMFMomentsAndCDF(t *testing.T) {
	d := Hypergeometric{N: 60, K: 12, M: 25}
	var sum, mean, m2 float64
	for k := 0; k <= d.K; k++ {
		p := d.PMF(k)
		sum += p
		mean += float64(k) * p
		m2 += float64(k) * float64(k) * p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Errorf("PMF sums to %v", sum)
	}
	if math.Abs(mean-d.Mean()) > 1e-9 {
		t.Errorf("PMF mean %v, Mean() %v", mean, d.Mean())
	}
	if v := m2 - mean*mean; math.Abs(v-d.Variance()) > 1e-9 {
		t.Errorf("PMF variance %v, Variance() %v", v, d.Variance())
	}
	if d.PMF(-1) != 0 || d.PMF(d.K+1) != 0 || d.CDF(-1) != 0 {
		t.Errorf("mass outside the support")
	}
	if c := d.CDF(d.K); math.Abs(c-1) > 1e-10 {
		t.Errorf("CDF at top of support = %v", c)
	}
	for _, p := range []float64{0, 0.3, 0.9} {
		q := d.Quantile(p)
		if d.CDF(q) < p {
			t.Errorf("Quantile(%v) = %d below crossing", p, q)
		}
	}
}

// TestHypergeometricLowerSupportBound: when the test covers almost the
// whole universe, small overlaps are impossible (k >= M+K-N).
func TestHypergeometricLowerSupportBound(t *testing.T) {
	d := Hypergeometric{N: 10, K: 6, M: 8}
	for k := 0; k < d.M+d.K-d.N; k++ {
		if p := d.PMF(k); p != 0 {
			t.Errorf("PMF(%d) = %v, want 0 (below support)", k, p)
		}
	}
	if p := d.PMF(d.M + d.K - d.N); p <= 0 {
		t.Errorf("PMF at lower support bound = %v, want > 0", p)
	}
}

func TestHypergeometricSample(t *testing.T) {
	d := Hypergeometric{N: 100, K: 8, M: 40}
	rng := rand.New(rand.NewSource(9))
	const n = 60000
	var sum float64
	for i := 0; i < n; i++ {
		k := d.Sample(rng)
		if k < 0 || k > d.K || k > d.M {
			t.Fatalf("sample %d outside support", k)
		}
		sum += float64(k)
	}
	mean := sum / n
	se := math.Sqrt(d.Variance() / n)
	if math.Abs(mean-d.Mean()) > 5*se {
		t.Errorf("sample mean %v, want %v ± %v", mean, d.Mean(), 5*se)
	}
}

func TestHypergeometricInvalidPanics(t *testing.T) {
	bad := []Hypergeometric{
		{N: 0, K: 0, M: 0},
		{N: -5, K: 0, M: 0},
		{N: 10, K: -1, M: 5},
		{N: 10, K: 11, M: 5},
		{N: 10, K: 5, M: -1},
		{N: 10, K: 5, M: 11},
	}
	for _, d := range bad {
		d := d
		mustPanic(t, func() { d.PZeroExact() })
		mustPanic(t, func() { d.PMF(0) })
		mustPanic(t, func() { d.Mean() })
	}
	mustPanic(t, func() { Hypergeometric{N: 10, K: 2, M: 3}.Sample(nil) })
}
