package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestPoissonPMFClosedForm checks the log-space PMF against the naive
// e^{-λ} λ^k / k! formula where the latter is still representable.
func TestPoissonPMFClosedForm(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 2.5, 8, 20} {
		d := Poisson{Lambda: lambda}
		fact := 1.0
		for k := 0; k <= 30; k++ {
			if k > 0 {
				fact *= float64(k)
			}
			want := math.Exp(-lambda) * math.Pow(lambda, float64(k)) / fact
			got := d.PMF(k)
			if math.Abs(got-want) > 1e-12*math.Max(1, want) {
				t.Errorf("λ=%v PMF(%d) = %v, want %v", lambda, k, got, want)
			}
		}
	}
}

// TestPoissonPMFLargeK exercises the log-space evaluation far beyond
// where raw factorials overflow float64 (171! is already +Inf).
func TestPoissonPMFLargeK(t *testing.T) {
	d := Poisson{Lambda: 500}
	p := d.PMF(500) // near the mode: ≈ 1/sqrt(2π·500)
	want := 1 / math.Sqrt(2*math.Pi*500)
	if math.Abs(p-want)/want > 0.01 {
		t.Errorf("PMF(500) at λ=500 = %v, want ≈ %v", p, want)
	}
	// The deep tail underflows linear float64 but the log-space value
	// stays finite — the whole point of never forming factorials.
	if lp := d.LogPMF(2000); math.IsInf(lp, -1) || lp > -1000 {
		t.Errorf("deep tail LogPMF(2000) = %v, want finite and ≪ 0", lp)
	}
}

func TestPoissonCDFMatchesPMFSum(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12.3} {
		d := Poisson{Lambda: lambda}
		sum := 0.0
		for k := 0; k <= 60; k++ {
			sum += d.PMF(k)
			if got := d.CDF(k); math.Abs(got-sum) > 1e-10 {
				t.Fatalf("λ=%v CDF(%d) = %v, Σpmf = %v", lambda, k, got, sum)
			}
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	d := Poisson{Lambda: 0}
	if d.PMF(0) != 1 || d.PMF(1) != 0 || d.CDF(0) != 1 || d.CDF(-1) != 0 {
		t.Errorf("λ=0 degenerate law wrong: PMF(0)=%v PMF(1)=%v", d.PMF(0), d.PMF(1))
	}
	if d.Mean() != 0 || d.Variance() != 0 {
		t.Errorf("λ=0 moments wrong: %v, %v", d.Mean(), d.Variance())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if k := d.Sample(rng); k != 0 {
			t.Fatalf("λ=0 sample = %d", k)
		}
	}
	if q := d.Quantile(0.99); q != 0 {
		t.Errorf("λ=0 Quantile(0.99) = %d", q)
	}
}

func TestPoissonOutsideSupport(t *testing.T) {
	d := Poisson{Lambda: 3}
	if d.PMF(-1) != 0 || !math.IsInf(d.LogPMF(-1), -1) || d.CDF(-1) != 0 {
		t.Errorf("negative k must be outside the support")
	}
}

func TestPoissonQuantile(t *testing.T) {
	d := Poisson{Lambda: 4.2}
	if d.Quantile(0) != 0 {
		t.Errorf("Quantile(0) = %d", d.Quantile(0))
	}
	for k := 0; k <= 20; k++ {
		c := d.CDF(k)
		if c >= 1 {
			break
		}
		if q := d.Quantile(c); q > k {
			t.Errorf("Quantile(CDF(%d)) = %d > %d", k, q, k)
		}
		// Just above CDF(k) the quantile must step to k+1.
		if q := d.Quantile(math.Nextafter(c, 1)); q != k+1 {
			t.Errorf("Quantile(CDF(%d)+ε) = %d, want %d", k, q, k+1)
		}
	}
}

// TestPoissonSamplerRegimes checks empirical moments in both the Knuth
// and the PTRS regime of the hybrid sampler.
func TestPoissonSamplerRegimes(t *testing.T) {
	for _, lambda := range []float64{0.7, 12, 45, 200} {
		rng := rand.New(rand.NewSource(42))
		const n = 60000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(Poisson{Lambda: lambda}.Sample(rng))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		seMean := math.Sqrt(lambda / n)
		if math.Abs(mean-lambda) > 5*seMean {
			t.Errorf("λ=%v sample mean %v off by > 5 s.e. (%v)", lambda, mean, seMean)
		}
		if math.Abs(variance-lambda)/lambda > 0.05 {
			t.Errorf("λ=%v sample variance %v, want ≈ %v", lambda, variance, lambda)
		}
	}
}

func TestPoissonInvalidPanics(t *testing.T) {
	for _, lambda := range []float64{-1, math.NaN(), math.Inf(1)} {
		mustPanic(t, func() { Poisson{Lambda: lambda}.PMF(0) })
		mustPanic(t, func() { Poisson{Lambda: lambda}.Mean() })
		mustPanic(t, func() { Poisson{Lambda: lambda}.Variance() })
		mustPanic(t, func() { Poisson{Lambda: lambda}.CDF(1) })
		mustPanic(t, func() { Poisson{Lambda: lambda}.Sample(rand.New(rand.NewSource(1))) })
	}
	mustPanic(t, func() { Poisson{Lambda: 1}.Sample(nil) })
	mustPanic(t, func() { Poisson{Lambda: 1}.Quantile(1) })
	mustPanic(t, func() { Poisson{Lambda: 1}.Quantile(-0.1) })
}

func TestShiftedPoissonSupportAndMoments(t *testing.T) {
	d := ShiftedPoisson{N0: 8}
	if d.PMF(0) != 0 || !math.IsInf(d.LogPMF(0), -1) || d.CDF(0) != 0 {
		t.Errorf("shifted Poisson must put no mass below 1")
	}
	if d.Mean() != 8 || d.Variance() != 7 {
		t.Errorf("moments: mean %v (want 8), var %v (want 7)", d.Mean(), d.Variance())
	}
	// N0 = 1 degenerates to a point mass at 1.
	one := ShiftedPoisson{N0: 1}
	if one.PMF(1) != 1 || one.PMF(2) != 0 || one.Variance() != 0 {
		t.Errorf("N0=1 must be a point mass at 1: PMF(1)=%v PMF(2)=%v", one.PMF(1), one.PMF(2))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if k := d.Sample(rng); k < 1 {
			t.Fatalf("sampled %d < 1", k)
		}
	}
}

func TestShiftedPoissonQuantile(t *testing.T) {
	d := ShiftedPoisson{N0: 5}
	if q := d.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %d, want 1", q)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.999} {
		q := d.Quantile(p)
		if d.CDF(q) < p || (q > 1 && d.CDF(q-1) >= p) {
			t.Errorf("Quantile(%v) = %d not the minimal crossing", p, q)
		}
	}
}

func TestShiftedPoissonInvalidPanics(t *testing.T) {
	for _, n0 := range []float64{0.5, 0, -3, math.NaN(), math.Inf(1)} {
		mustPanic(t, func() { ShiftedPoisson{N0: n0}.PMF(1) })
		mustPanic(t, func() { ShiftedPoisson{N0: n0}.Sample(rand.New(rand.NewSource(1))) })
	}
}

// mustPanic asserts fn panics; shared by the validation tests.
func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	fn()
}
