package dist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
)

// NegativeBinomial is the negative binomial distribution parameterised
// by shape R > 0 and mean Mu >= 0: a Poisson whose mean is gamma
// distributed with shape R and mean Mu. This is the clustered-defect
// count model behind Stapper's yield formula (the paper's Eq. 3):
// small R means strongly clustered defects, and R -> Inf recovers the
// plain Poisson.
type NegativeBinomial struct {
	R  float64 // clustering shape, > 0
	Mu float64 // mean defects per chip, >= 0
}

func (d NegativeBinomial) check() {
	if !(d.R > 0) || math.IsInf(d.R, 1) {
		panic(fmt.Sprintf("dist: NegativeBinomial shape must be finite and > 0, got %v", d.R))
	}
	if !(d.Mu >= 0) || math.IsInf(d.Mu, 1) {
		panic(fmt.Sprintf("dist: NegativeBinomial mean must be finite and >= 0, got %v", d.Mu))
	}
}

// successProb returns p = R / (R + Mu), the per-trial success
// probability of the classical parameterisation.
func (d NegativeBinomial) successProb() float64 { return d.R / (d.R + d.Mu) }

// Mean returns E[X] = Mu.
func (d NegativeBinomial) Mean() float64 { d.check(); return d.Mu }

// Variance returns Var[X] = Mu + Mu²/R, always overdispersed relative
// to the Poisson.
func (d NegativeBinomial) Variance() float64 { d.check(); return d.Mu + d.Mu*d.Mu/d.R }

// LogPMF returns ln P(X = k), or -Inf outside the support:
//
//	P(k) = Γ(k+R)/(k! Γ(R)) p^R (1-p)^k,  p = R/(R+Mu).
func (d NegativeBinomial) LogPMF(k int) float64 {
	d.check()
	if k < 0 {
		return math.Inf(-1)
	}
	if d.Mu == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	// Both log terms avoid forming p = R/(R+Mu), which rounds to
	// exactly 1 for R >> Mu: log p = -log1p(Mu/R) keeps the success
	// term's full -Mu-ish magnitude, and log(1-p) is written directly
	// as log(Mu/(R+Mu)) so the failure term never becomes 0·(-Inf).
	kk := float64(k)
	return d.logGammaRatio(k) - numeric.LogFactorial(k) -
		d.R*math.Log1p(d.Mu/d.R) + kk*math.Log(d.Mu/(d.R+d.Mu))
}

// logGammaRatio returns ln[Γ(k+R)/Γ(R)]. For huge shapes the two
// log-gammas are ~R·ln R while their difference is only ~k·ln R, so
// subtracting them cancels catastrophically; there the ratio is summed
// directly as Σ ln(R+i), which is exact to rounding.
func (d NegativeBinomial) logGammaRatio(k int) float64 {
	if d.R < 1e7 {
		return numeric.LogGamma(float64(k)+d.R) - numeric.LogGamma(d.R)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += math.Log(d.R + float64(i))
	}
	return sum
}

// PMF returns P(X = k).
func (d NegativeBinomial) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// CDF returns P(X <= k) by compensated summation of the PMF; the
// counts this repository deals in are tens, not millions, so the scan
// is cheap and avoids needing an incomplete beta.
func (d NegativeBinomial) CDF(k int) float64 {
	d.check()
	return sumPMF(k, d.PMF)
}

// Quantile returns the smallest k with CDF(k) >= p, for p in [0, 1).
func (d NegativeBinomial) Quantile(p float64) int {
	d.check()
	return quantilePMFScan(p, d.PMF)
}

// Sample draws one variate through the defining gamma-Poisson mixture:
// Lambda ~ Gamma(shape R, mean Mu), then X ~ Poisson(Lambda).
func (d NegativeBinomial) Sample(rng *rand.Rand) int {
	d.check()
	checkRNG(rng)
	if d.Mu == 0 {
		return 0
	}
	lambda := gammaSample(rng, d.R) * d.Mu / d.R
	return Poisson{Lambda: lambda}.Sample(rng)
}

// gammaSample draws Gamma(shape, scale 1) by Marsaglia-Tsang squeeze
// rejection; shapes below 1 are boosted via Gamma(a) = Gamma(a+1)·U^{1/a}.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
