package dist

import (
	"fmt"
	"math"
)

// SampleCoverageCI is the sampling-error bound for coverage estimated
// from a fault sample, the procedure the paper uses on its real chip:
// draw sample faults without replacement from a universe of size
// universe, fault-simulate only those, observe that the test program
// detects detected of them. The unknown is D, the number of faults of
// the full universe the program would detect; the observed count is
// hypergeometric, X ~ Hypergeometric{N: universe, K: D, M: sample}.
// SampleCoverageCI inverts the two exact tails (Clopper–Pearson style)
// at confidence conf and returns the bounds on true coverage D/N:
//
//	lo = min{D : P(X >= detected | D) > (1-conf)/2} / N
//	hi = max{D : P(X <= detected | D) > (1-conf)/2} / N
//
// Both tails are monotone in D, so each bound is a binary search over
// D costing O(log N) CDF evaluations. Sampling the whole universe
// collapses the interval to the exact coverage.
func SampleCoverageCI(universe, sample, detected int, conf float64) (lo, hi float64, err error) {
	if universe <= 0 {
		return 0, 0, fmt.Errorf("dist: sample-coverage universe must be positive, got %d", universe)
	}
	if sample <= 0 || sample > universe {
		return 0, 0, fmt.Errorf("dist: sample size must be in [1, %d], got %d", universe, sample)
	}
	if detected < 0 || detected > sample {
		return 0, 0, fmt.Errorf("dist: detected count must be in [0, %d], got %d", sample, detected)
	}
	if !(conf > 0 && conf < 1) {
		return 0, 0, fmt.Errorf("dist: confidence must be in (0,1), got %v", conf)
	}
	alpha := (1 - conf) / 2
	// D is bracketed by what the sample itself pins down: at least the
	// detected sampled faults, at most everything but the undetected
	// sampled faults.
	dMin, dMax := detected, universe-(sample-detected)
	upperTail := func(d int) float64 {
		// P(X >= detected | D = d), nondecreasing in d.
		if detected == 0 {
			return 1
		}
		return 1 - Hypergeometric{N: universe, K: d, M: sample}.CDF(detected-1)
	}
	lowerTail := func(d int) float64 {
		// P(X <= detected | D = d), nonincreasing in d.
		return Hypergeometric{N: universe, K: d, M: sample}.CDF(detected)
	}
	dLo := searchMin(dMin, dMax, func(d int) bool { return upperTail(d) > alpha })
	dHi := searchMax(dMin, dMax, func(d int) bool { return lowerTail(d) > alpha })
	n := float64(universe)
	lo = float64(dLo) / n
	hi = float64(dHi) / n
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return 0, 0, fmt.Errorf("dist: sample-coverage CI inversion failed (N=%d m=%d k=%d)", universe, sample, detected)
	}
	return lo, hi, nil
}

// searchMin returns the smallest d in [lo, hi] with ok(d); ok is
// monotone (false.. then true..), and ok(hi) is guaranteed by the
// support bracket.
func searchMin(lo, hi int, ok func(int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchMax returns the largest d in [lo, hi] with ok(d); ok is
// monotone (true.. then false..), and ok(lo) is guaranteed by the
// support bracket.
func searchMax(lo, hi int, ok func(int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
