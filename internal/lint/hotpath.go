package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //repolint:hotpath (the flat/wide walks, " +
		"RunLaneForced, engine inner loops) may not call fmt, allocate via " +
		"unsized make or slice/map/pointer composite literals, or capture " +
		"loop state into closures — the zero-alloc steady state is a measured " +
		"contract (AllocsPerRun tests), this keeps it by construction",
	Run: runHotpath,
}

func runHotpath(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !p.funcAnnotated("hotpath", fn) {
				continue
			}
			out = p.checkHotBody(out, fn)
		}
	}
	return out
}

func (p *Pass) checkHotBody(out []Finding, fn *ast.FuncDecl) []Finding {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := p.callee(n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				out = p.finding(out, "hotpath", n.Pos(),
					"fmt.%s call in hotpath %s: formatting allocates and defeats inlining; move it behind a cold-path helper", callee.Name(), name)
			}
			if p.isBuiltin(n, "make") && len(n.Args) == 1 {
				out = p.finding(out, "hotpath", n.Pos(),
					"unsized make in hotpath %s: allocate with a capacity hint outside the loop and reuse", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					out = p.finding(out, "hotpath", n.Pos(),
						"&composite literal in hotpath %s escapes to the heap; hoist the allocation out of the hot loop", name)
				}
			}
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				out = p.finding(out, "hotpath", n.Pos(),
					"allocating composite literal in hotpath %s; preallocate and reuse a buffer", name)
			}
		case *ast.ForStmt:
			out = p.checkLoopClosures(out, name, loopVarsFor(p, n), n.Body)
		case *ast.RangeStmt:
			out = p.checkLoopClosures(out, name, loopVarsRange(p, n), n.Body)
		}
		return true
	})
	return out
}

// loopVarsFor collects the objects a for-statement's init declares.
func loopVarsFor(p *Pass, n *ast.ForStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
	}
	return vars
}

// loopVarsRange collects the key/value objects a range statement
// declares.
func loopVarsRange(p *Pass, n *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkLoopClosures flags func literals inside the loop body that
// capture the loop's iteration variables: since Go 1.22 each iteration
// gets its own variable, so every capturing closure is a fresh heap
// allocation per iteration.
func (p *Pass) checkLoopClosures(out []Finding, fnName string, loopVars map[types.Object]bool, body *ast.BlockStmt) []Finding {
	if len(loopVars) == 0 {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := false
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if reported {
				return false
			}
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
				out = p.finding(out, "hotpath", lit.Pos(),
					"closure captures loop variable %s in hotpath %s: one heap allocation per iteration", id.Name, fnName)
				reported = true
				return false
			}
			return true
		})
		return false // don't descend twice; nested literals were inspected above
	})
	return out
}
