package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from source with no help from
// the go command: module-local import paths resolve into the module
// tree, everything else resolves into GOROOT/src (with the stdlib
// vendor directory as fallback). Cgo is disabled so the pure-Go
// fallback files of packages like net are selected — the same file set
// a CGO_ENABLED=0 build compiles. Packages are checked once and cached
// by import path.
type Loader struct {
	Fset *token.FileSet
	// Root is the module root directory; Module its module path.
	Root   string
	Module string

	ctx  build.Context
	pkgs map[string]*Package
}

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader locates the enclosing module from dir (walking up to the
// go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		Fset:   token.NewFileSet(),
		Root:   root,
		Module: mod,
		ctx:    ctx,
		pkgs:   map[string]*Package{},
	}, nil
}

// modulePath reads the module declaration of a go.mod file.
func modulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", path)
}

// Import implements types.Importer over the cache, so type-checking a
// package recursively loads its dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// dirFor resolves an import path to its source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.Module {
		return l.Root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
	}
	dir := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err == nil {
		return dir, nil
	}
	// Vendored stdlib dependencies (golang.org/x/... under net/http
	// etc.) live in GOROOT/src/vendor under their canonical paths.
	vendored := filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q", path)
}

// load parses and type-checks the package at the import path, caching
// the result. Only non-test files participate: the conventions under
// enforcement are about shipped code, and tests legitimately construct
// circuits and clocks directly.
func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return p, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = nil // cycle marker
	p, err := l.check(dir, path)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in dir (which must live inside the module)
// under its module-derived import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// check parses the build-selected non-test files of dir and
// type-checks them as import path `path`.
func (l *Loader) check(dir, path string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	if len(bp.GoFiles) == 0 {
		return nil, fmt.Errorf("lint: %s: no buildable non-test Go files", dir)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(l.ctx.Compiler, l.ctx.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	return &Package{Dir: dir, Path: path, Files: files, Types: pkg, Info: info}, nil
}

// TargetDirs walks the module and returns every directory holding a
// buildable package, in deterministic (lexical) order. Directories the
// go tool would not build — testdata, hidden and underscore-prefixed
// names — are skipped, matching the ./... pattern.
func (l *Loader) TargetDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := l.ctx.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Pass wraps a loaded package for the analyzers.
func (p *Package) Pass(fset *token.FileSet) *Pass {
	return &Pass{Fset: fset, Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info}
}
