package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// circuitStructuralFields are the Circuit fields that define the
// circuit's structure. Writing any of them stales every derived cache
// (levelization, the simCaches bundle of ConeSet + Flat), so the
// mutation must drop them via invalidate(). The cache fields
// themselves (level, order, simCache) are deliberately absent: filling
// a cache is not a mutation.
var circuitStructuralFields = map[string]bool{
	"Gates":   true,
	"Inputs":  true,
	"Outputs": true,
	"byName":  true,
}

var invalidationAnalyzer = &Analyzer{
	Name: "invalidation",
	Doc: "every exported netlist.Circuit method that writes a structural field " +
		"(Gates, Inputs, Outputs, byName) must call invalidate(), or stale " +
		"levelization and simulator caches survive the mutation",
	Run: runInvalidation,
}

func runInvalidation(p *Pass) []Finding {
	if p.Pkg.Name() != "netlist" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := receiverIdent(fn)
			if recv == nil || !isCircuitReceiver(p, recv) {
				continue
			}
			recvObj := p.Info.Defs[recv]
			if recvObj == nil {
				continue
			}
			fields := structuralWrites(p, fn.Body, recvObj)
			if len(fields) == 0 {
				continue
			}
			if callsInvalidate(p, fn.Body, recvObj) {
				continue
			}
			out = p.finding(out, "invalidation", fn.Pos(),
				"exported method Circuit.%s mutates %s without calling invalidate(): stale levelization/simCaches would survive", fn.Name.Name, strings.Join(fields, ", "))
		}
	}
	return out
}

// receiverIdent returns the receiver name identifier, or nil for
// anonymous receivers (which cannot mutate anything).
func receiverIdent(fn *ast.FuncDecl) *ast.Ident {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return fn.Recv.List[0].Names[0]
}

// isCircuitReceiver reports whether the receiver's type is Circuit or
// *Circuit.
func isCircuitReceiver(p *Pass, recv *ast.Ident) bool {
	obj := p.Info.Defs[recv]
	if obj == nil {
		return false
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Circuit"
}

// structuralWrites collects the structural fields the body writes:
// assignments (including compound and indexed forms rooted at the
// receiver field), ++/--, and delete() on a receiver-field map.
func structuralWrites(p *Pass, body *ast.BlockStmt, recvObj types.Object) []string {
	seen := map[string]bool{}
	record := func(e ast.Expr) {
		if field := rootReceiverField(p, e, recvObj); field != "" && circuitStructuralFields[field] {
			seen[field] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.CallExpr:
			if p.isBuiltin(n, "delete") && len(n.Args) > 0 {
				record(n.Args[0])
			}
		}
		return true
	})
	fields := make([]string, 0, len(seen))
	for f := range circuitStructuralFields {
		if seen[f] {
			fields = append(fields, f)
		}
	}
	// Deterministic order for the message.
	for i := 0; i < len(fields); i++ {
		for j := i + 1; j < len(fields); j++ {
			if fields[j] < fields[i] {
				fields[i], fields[j] = fields[j], fields[i]
			}
		}
	}
	return fields
}

// rootReceiverField unwraps selector/index/star/paren chains and
// returns the receiver field name the expression is rooted at, or "".
func rootReceiverField(p *Pass, e ast.Expr, recvObj types.Object) string {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
				return x.Sel.Name
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// callsInvalidate reports whether the body calls <recv>.invalidate().
func callsInvalidate(p *Pass, body *ast.BlockStmt, recvObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "invalidate" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
			found = true
			return false
		}
		return true
	})
	return found
}
