package lint

import (
	"go/ast"
	"go/constant"
	"unicode"
	"unicode/utf8"
)

var sentinelAnalyzer = &Analyzer{
	Name: "sentinel-errors",
	Doc: "package-level Err* sentinels must be errors.New (comparable identities, " +
		"not format strings), and error values passed to fmt.Errorf must be wrapped " +
		"with %w so errors.Is/As see through the wrap (format .Error() explicitly " +
		"to flatten on purpose)",
	Run: runSentinels,
}

func runSentinels(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			out = p.checkSentinelDecl(out, gd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				out = p.checkErrorfWraps(out, call)
			}
			return true
		})
	}
	return out
}

// isSentinelName reports whether the name is an exported Err* sentinel
// (Err followed by an upper-case rune).
func isSentinelName(name string) bool {
	rest, ok := cutPrefix(name, "Err")
	if !ok || rest == "" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return unicode.IsUpper(r)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// checkSentinelDecl flags package-level Err* variables not initialized
// with errors.New.
func (p *Pass) checkSentinelDecl(out []Finding, gd *ast.GenDecl) []Finding {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if !isSentinelName(name.Name) || i >= len(vs.Values) {
				continue
			}
			if call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr); ok {
				if fn := p.callee(call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "errors" && fn.Name() == "New" {
					continue
				}
			}
			out = p.finding(out, "sentinel-errors", name.Pos(),
				"sentinel %s must be errors.New: a formatted or composed value is not a stable comparable identity", name.Name)
		}
	}
	return out
}

// checkErrorfWraps flags fmt.Errorf arguments of error type formatted
// with a verb other than %w.
func (p *Pass) checkErrorfWraps(out []Finding, call *ast.CallExpr) []Finding {
	fn := p.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return out
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return out // dynamic format string: nothing to check
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return out // indexed or otherwise exotic format: skip
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if isErrorType(p.Info.TypeOf(arg)) {
			out = p.finding(out, "sentinel-errors", arg.Pos(),
				"error value formatted with %%%c loses the chain; wrap with %%w (or pass err.Error() to flatten deliberately)", verb)
		}
	}
	return out
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format. '*' width/precision arguments
// appear as '*'. Explicit argument indexes (%[1]d) abort with ok ==
// false — rare enough that skipping the call is fine.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0') {
			i++
		}
		// Width and precision, each possibly '*' (consuming an arg).
		for k := 0; k < 2; k++ {
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
			if k == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '[' {
			return nil, false // explicit argument index
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs, true
}
