package lint

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exit codes returned by Main, mirroring go vet's convention.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitUsage    = 2 // bad flags, unknown analyzer, or load failure
)

// Config selects what Run analyzes.
type Config struct {
	// Dir is the directory to resolve the module from. Empty means ".".
	Dir string
	// Targets are directories to analyze. Empty means every package
	// directory under the module root (the ./... walk).
	Targets []string
	// Only restricts the run to the named analyzers; Skip removes
	// analyzers from the selection. Only wins if both name the same
	// analyzer.
	Only []string
	Skip []string
}

// Run loads every target package and applies the selected analyzers,
// returning findings sorted by position.
func Run(cfg Config) ([]Finding, error) {
	analyzers, err := selectAnalyzers(cfg.Only, cfg.Skip)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets, err = loader.TargetDirs()
		if err != nil {
			return nil, err
		}
	}
	var all []Finding
	for _, t := range targets {
		pkg, err := loader.LoadDir(t)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", t, err)
		}
		pass := pkg.Pass(loader.Fset)
		for _, a := range analyzers {
			all = append(all, a.Run(pass)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// selectAnalyzers resolves -only/-skip lists against the registry.
func selectAnalyzers(only, skip []string) ([]*Analyzer, error) {
	for _, name := range append(append([]string{}, only...), skip...) {
		if _, ok := Lookup(name); !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list to see the registry)", name)
		}
	}
	keep := func(name string) bool {
		if len(only) > 0 {
			for _, o := range only {
				if o == name {
					return true
				}
			}
			return false
		}
		for _, s := range skip {
			if s == name {
				return false
			}
		}
		return true
	}
	var sel []*Analyzer
	for _, a := range All() {
		if keep(a.Name) {
			sel = append(sel, a)
		}
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return sel, nil
}

// Main is the repolint entry point: parses flags, runs the selected
// analyzers over the targets (directories; default is the whole
// module), prints findings as file:line: analyzer: message, and
// returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip = fs.String("skip", "", "comma-separated analyzers to skip")
		list = fs.Bool("list", false, "print the analyzer registry and exit")
		dir  = fs.String("dir", ".", "directory to resolve the module root from")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: repolint [flags] [dir ...]\n\n"+
			"Analyzes the repro module with the repo-contract analyzers.\n"+
			"With no directory arguments, walks every package under the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	cfg := Config{
		Dir:     *dir,
		Targets: fs.Args(),
		Only:    splitList(*only),
		Skip:    splitList(*skip),
	}
	findings, err := Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return ExitUsage
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
