package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var registryAnalyzer = &Analyzer{
	Name: "registry",
	Doc: "no circuit construction or resolution outside internal/circuits: any " +
		"call to a package-level internal/netlist function returning *netlist.Circuit " +
		"(generators, ParseBench, New) must route through the circuits registry so " +
		"one spec means one circuit everywhere",
	Run: runRegistry,
}

// runRegistry replaces the PR 4 source-scan regression test
// (TestNoPrivateResolverInCmds): instead of grepping cmd/ sources for
// a hand-maintained name list, it bans — everywhere outside the
// registry itself — any call whose callee is a package-level
// internal/netlist function with *netlist.Circuit among its results.
// The ban list can therefore never drift from the generator set.
func runRegistry(p *Pass) []Finding {
	if p.pathHasSuffix("internal/circuits") || p.pathHasSuffix("internal/netlist") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.callee(call)
			if fn == nil || fn.Pkg() == nil || !isNetlistPath(fn.Pkg().Path()) {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true // methods operate on an existing circuit
			}
			if !returnsCircuit(sig) {
				return true
			}
			out = p.finding(out, "registry", call.Pos(),
				"netlist.%s constructs a circuit outside internal/circuits; resolve a workload spec through the circuits registry instead", fn.Name())
			return true
		})
	}
	return out
}

func isNetlistPath(path string) bool {
	return path == "internal/netlist" || strings.HasSuffix(path, "/internal/netlist")
}

// returnsCircuit reports whether any result of the signature is
// *netlist.Circuit.
func returnsCircuit(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		ptr, ok := res.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Circuit" && obj.Pkg() != nil && isNetlistPath(obj.Pkg().Path()) {
			return true
		}
	}
	return false
}
