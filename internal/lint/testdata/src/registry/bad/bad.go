// Package bad is the registry fixture: direct circuit construction
// from netlist generators outside internal/circuits, every call of
// which must be reported.
package bad

import "repro/internal/netlist"

func build() *netlist.Circuit {
	return netlist.C17() // want registry
}

func buildAdder() (*netlist.Circuit, error) {
	return netlist.RippleAdder(4) // want registry
}

func fresh(name string) *netlist.Circuit {
	return netlist.New(name) // want registry
}
