// Package circuits is the registry fixture's exemption case: its
// directory suffix matches internal/circuits — the registry itself —
// where direct construction is the whole point.
package circuits

import "repro/internal/netlist"

func build() *netlist.Circuit {
	return netlist.C17()
}
