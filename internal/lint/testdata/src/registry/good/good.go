// Package good is the clean registry fixture: operating on an existing
// circuit through methods and non-constructor netlist functions is
// allowed everywhere.
package good

import "repro/internal/netlist"

func courtesy(c *netlist.Circuit) error {
	return c.Validate()
}

func trip(c *netlist.Circuit) (*netlist.Circuit, error) {
	// RoundTrip is a method: it canonicalizes an existing circuit
	// rather than resolving a spec, so it is not a registry bypass.
	return c.RoundTrip()
}
