// Package netlist is the clean invalidation fixture: every exported
// structural mutator calls invalidate(), so the analyzer must stay
// silent.
package netlist

type Gate struct {
	Name  string
	Fanin []int
}

type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int
	Outputs []int
	byName  map[string]int

	level []int
}

func (c *Circuit) invalidate() { c.level = nil }

func (c *Circuit) AddGate(g Gate) {
	c.byName[g.Name] = len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.invalidate()
}

func (c *Circuit) MarkOutput(id int) {
	c.Outputs = append(c.Outputs, id)
	c.invalidate()
}

func (c *Circuit) Forget(name string) {
	delete(c.byName, name)
	c.invalidate()
}

// Lookup only reads: no finding.
func (c *Circuit) Lookup(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}
