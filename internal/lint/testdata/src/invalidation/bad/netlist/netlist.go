// Package netlist is the invalidation fixture's mock of the real
// package (the analyzer keys on package name + a Circuit receiver):
// exported mutators that skip invalidate() must be reported.
package netlist

type Gate struct {
	Name  string
	Fanin []int
}

type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int
	Outputs []int
	byName  map[string]int

	level []int
}

func (c *Circuit) invalidate() { c.level = nil }

func (c *Circuit) AddGate(g Gate) { // want invalidation
	c.byName[g.Name] = len(c.Gates)
	c.Gates = append(c.Gates, g)
}

func (c *Circuit) MarkOutput(id int) { // want invalidation
	c.Outputs = append(c.Outputs, id)
}

func (c *Circuit) Retarget(i, id int) { // want invalidation
	c.Outputs[i] = id
}

func (c *Circuit) Forget(name string) { // want invalidation
	delete(c.byName, name)
}

// rewire is unexported: internal helpers are audited with their
// exported callers, not flagged on their own.
func (c *Circuit) rewire(id int, fanin []int) {
	c.Gates[id].Fanin = fanin
}

// SetLevel fills a cache field, not a structural one: no finding.
func (c *Circuit) SetLevel(l []int) { c.level = l }

// Rename touches only the label: no finding.
func (c *Circuit) Rename(name string) { c.Name = name }
