// Package unscoped repeats the determinism violations outside the
// analyzer's package scope: nothing here may be reported, proving the
// suffix scoping works.
package unscoped

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().Unix()
}

func draw() int {
	return rand.Intn(6)
}

func fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
