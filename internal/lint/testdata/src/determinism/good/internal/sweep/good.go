// Package sweep is the clean determinism fixture: in scope, but every
// construct below follows the contract, so the analyzer must stay
// silent.
package sweep

import (
	"math/rand"
	"sort"
)

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func foldSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	//repolint:ordered — key harvest; sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func overSlice(xs []int) int {
	total := 0
	for _, x := range xs { // slices iterate in order: no annotation needed
		total += x
	}
	return total
}
