// Package sweep is a determinism fixture: its directory suffix puts it
// in the analyzer's scope, so every clock read, global-rand draw, and
// un-annotated map range below must be reported.
package sweep

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want determinism
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism
}

func draw() int {
	return rand.Intn(6) // want determinism
}

func fold(m map[string]int) int {
	total := 0
	for _, v := range m { // want determinism
		total += v
	}
	return total
}

func seeded(seed int64) int {
	// Explicit generator state: methods on *rand.Rand are fine, and so
	// is the rand.New/NewSource construction itself.
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func foldAnnotated(m map[string]int) int {
	total := 0
	//repolint:ordered — integer addition commutes; order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}
