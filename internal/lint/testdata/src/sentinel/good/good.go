// Package good is the clean sentinel-errors fixture: errors.New
// sentinels, %w wraps (including the multi-%w form), and the explicit
// .Error() flattening idiom — the analyzer must stay silent.
package good

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("corrupt")

// Only exported Err* names are sentinels; unexported error values may
// be built however is convenient.
var errUnexported = fmt.Errorf("unexported values may format")

func wrap(path string, err error) error {
	return fmt.Errorf("%s: %w: %w", path, ErrCorrupt, err)
}

func flatten(err error) error {
	// Deliberately severing the chain is spelled .Error().
	return fmt.Errorf("summary: %s", err.Error())
}

func plain(n int) error {
	return fmt.Errorf("n = %d", n)
}
