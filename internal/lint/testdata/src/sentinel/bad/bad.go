// Package bad is the sentinel-errors fixture: a formatted sentinel and
// %v-wrapped errors, each of which must be reported.
package bad

import (
	"errors"
	"fmt"
)

var ErrFormatted = fmt.Errorf("bad: %d", 42) // want sentinel-errors

var ErrComposed = errors.Join(errors.New("a"), errors.New("b")) // want sentinel-errors

var ErrFine = errors.New("fine")

func wrapV(err error) error {
	return fmt.Errorf("loading: %v", err) // want sentinel-errors
}

func wrapS(err error) error {
	return fmt.Errorf("loading: %s", err) // want sentinel-errors
}

func wrapSecond(path string, err error) error {
	return fmt.Errorf("%s: %w: %v", path, ErrFine, err) // want sentinel-errors
}
