// Package bad is the hotpath fixture: each banned construct appears
// once inside an annotated function and must be reported.
package bad

import "fmt"

//repolint:hotpath
func format(x int) string {
	return fmt.Sprintf("%d", x) // want hotpath
}

//repolint:hotpath
func tally(keys []string) map[string]int {
	m := make(map[string]int) // want hotpath
	for _, k := range keys {
		m[k]++
	}
	return m
}

//repolint:hotpath
func literals() int {
	xs := []int{1, 2, 3} // want hotpath
	p := &point{}        // want hotpath
	return xs[0] + p.x
}

//repolint:hotpath
func capture(xs []int) []func() int {
	var fns []func() int
	for _, x := range xs {
		fns = append(fns, func() int { return x }) // want hotpath
	}
	return fns
}

type point struct{ x, y int }
