// Package good is the clean hotpath fixture: an annotated function
// that follows the rules, next to an unannotated function that breaks
// all of them — the analyzer must stay silent on both.
package good

import "fmt"

//repolint:hotpath
func walk(val []uint64, fanin []int) uint64 {
	var acc uint64
	for i := 0; i < len(fanin); i++ {
		acc ^= val[fanin[i]]
	}
	return acc
}

//repolint:hotpath
func sized(n int) []uint64 {
	buf := make([]uint64, 0, n) // sized make: allowed
	for i := 0; i < n; i++ {
		buf = append(buf, uint64(i))
	}
	return buf
}

// cold is not annotated: allocation and formatting are fine here.
func cold(xs []int) []string {
	out := []string{}
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x))
	}
	return out
}
