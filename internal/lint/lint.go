// Package lint is repolint's analysis engine: a stdlib-only static
// checker (go/parser + go/ast + go/types, no external modules) that
// enforces the repository conventions the compiler cannot see. The
// reproduction's value rests on invariants that live between packages:
// engines must be bit-identical to the Serial oracle, sweep and
// campaign output must be byte-identical for any worker count and
// across crash/resume, every workload must resolve through the
// internal/circuits registry, and every netlist.Circuit mutation must
// drop the simCaches bundle. Each analyzer machine-checks one such
// contract and reports findings as file:line: analyzer: message.
//
// # Analyzer table
//
// Analyzers are registered in the table returned by All, each with a
// name (the -only/-skip key of cmd/repolint), a doc string, and
// fixture tests under testdata/. To add an analyzer: write its Run
// function over a Pass, append it to All, and give it a good/bad
// fixture pair proving it fires exactly where intended.
//
// # Annotation comments
//
//	//repolint:ordered   on (or directly above) a `range` statement
//	                     over a map: the iteration order provably
//	                     cannot affect results (e.g. a key harvest that
//	                     is sorted before use). Justify in the comment.
//	//repolint:hotpath   on a function declaration: opts the function
//	                     into the hotpath analyzer's allocation and
//	                     formatting bans.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line: analyzer: message form
// the driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one registered convention check.
type Analyzer struct {
	// Name keys the analyzer in findings and in the driver's
	// -only/-skip flags.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run reports the analyzer's findings over one package.
	Run func(p *Pass) []Finding
}

// All returns the analyzer table in registration order.
func All() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer,
		registryAnalyzer,
		invalidationAnalyzer,
		hotpathAnalyzer,
		sentinelAnalyzer,
	}
}

// Lookup returns the analyzer with the given name.
func Lookup(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path of the package under analysis
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// directives maps file name -> line -> repolint directive names
	// ("ordered", "hotpath") present on that line; built lazily.
	directives map[string]map[int][]string
}

// pathHasSuffix reports whether the pass's import path is exactly
// suffix or ends in "/"+suffix. Scoped analyzers match on suffixes so
// that the fixture packages under testdata/ (whose import paths are
// prefixed with the lint package's own directory) exercise the same
// scoping logic as the real tree.
func (p *Pass) pathHasSuffix(suffix string) bool {
	return p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)
}

// finding appends a finding at pos.
func (p *Pass) finding(list []Finding, name string, pos token.Pos, format string, args ...any) []Finding {
	return append(list, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// callee resolves a call expression to the named function or method it
// invokes, or nil for builtins, conversions, and calls through
// function values.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named language
// builtin (make, delete, ...).
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// buildDirectives scans every comment in the pass for
// //repolint:<name> directives and records the line each sits on.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//repolint:")
				if !ok {
					continue
				}
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
}

// directiveAt reports whether a //repolint:<name> directive sits on
// the given file line.
func (p *Pass) directiveAt(name, file string, line int) bool {
	p.buildDirectives()
	for _, d := range p.directives[file][line] {
		if d == name {
			return true
		}
	}
	return false
}

// annotated reports whether the node carries the directive on its own
// first line or on the line directly above it — the contract for
// statement-level annotations like //repolint:ordered.
func (p *Pass) annotated(name string, node ast.Node) bool {
	pos := p.Fset.Position(node.Pos())
	return p.directiveAt(name, pos.Filename, pos.Line) ||
		p.directiveAt(name, pos.Filename, pos.Line-1)
}

// funcAnnotated reports whether the function declaration carries the
// directive, either anywhere in its doc comment group or on the line
// directly above the declaration.
func (p *Pass) funcAnnotated(name string, fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, "//repolint:"+name) {
				return true
			}
		}
	}
	return p.annotated(name, fn)
}

// errorType is the universe error interface, for implements checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) the error
// interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
