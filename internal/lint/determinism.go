package lint

import (
	"go/ast"
	"go/types"
)

// determinismScopes are the result-producing packages: everything that
// feeds the byte-identity contracts (sweep CSV/JSON, campaign
// checkpoints and shard files, the dist/estimate numbers inside them,
// and the sweepd wire output). Matched by import-path suffix so the
// fixture packages exercise the same scoping.
var determinismScopes = []string{
	"internal/sweep",
	"internal/campaign",
	"internal/circuits",
	"internal/dist",
	"internal/estimate",
	"cmd/sweepd",
}

// globalRandAllowed are the math/rand (and v2) package-level functions
// that construct explicit generators rather than touching the shared
// process-wide source. Everything else at package level draws from
// global state seeded differently across runs — banned.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, the global math/rand source, and un-annotated " +
		"map iteration in the result-producing packages (sweep, campaign, circuits, " +
		"dist, estimate, sweepd): results must be byte-identical for any -workers, " +
		"across crash/resume, and across cold/warm Prepared stores",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) []Finding {
	inScope := false
	for _, s := range determinismScopes {
		if p.pathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				out = p.checkDeterministicCall(out, n)
			case *ast.RangeStmt:
				out = p.checkMapRange(out, n)
			}
			return true
		})
	}
	return out
}

func (p *Pass) checkDeterministicCall(out []Finding, call *ast.CallExpr) []Finding {
	fn := p.callee(call)
	if fn == nil || fn.Pkg() == nil {
		return out
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return out // methods (e.g. on *rand.Rand) are explicit state: fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			out = p.finding(out, "determinism", call.Pos(),
				"time.%s reads the wall clock in a result-producing package; results must not depend on when they run", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			out = p.finding(out, "determinism", call.Pos(),
				"rand.%s draws from the process-global source; thread a seeded *rand.Rand (splitmix64 task seeding) instead", fn.Name())
		}
	}
	return out
}

func (p *Pass) checkMapRange(out []Finding, rs *ast.RangeStmt) []Finding {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return out
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return out
	}
	if p.annotated("ordered", rs) {
		return out
	}
	return p.finding(out, "determinism", rs.Pos(),
		"range over map %s iterates in random order in a result-producing package; "+
			"sort keys first, or justify with a //repolint:ordered comment", types.TypeString(t, types.RelativeTo(p.Pkg)))
}
