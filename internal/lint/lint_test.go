package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches type-checked packages (including the stdlib)
// across fixture tests; fixtures are cheap once their imports are
// warm.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixturePass(t *testing.T, rel string) *Pass {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	return pkg.Pass(loader.Fset)
}

var wantRe = regexp.MustCompile(`// want ([a-z-]+)`)

// wantFindings scans the fixture package's files for trailing
// "// want <analyzer>" comments and returns the expected
// file:line:analyzer keys.
func wantFindings(t *testing.T, p *Pass) []string {
	t.Helper()
	var want []string
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		fh, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(fh)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				want = append(want, fmt.Sprintf("%s:%d:%s", name, line, m[1]))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		fh.Close()
	}
	sort.Strings(want)
	return want
}

// checkFixture runs the analyzer over the fixture dir and compares the
// findings against the // want comments (none means the analyzer must
// be silent).
func checkFixture(t *testing.T, analyzer, rel string) {
	t.Helper()
	a, ok := Lookup(analyzer)
	if !ok {
		t.Fatalf("no analyzer %q", analyzer)
	}
	p := fixturePass(t, rel)
	want := wantFindings(t, p)
	var got []string
	for _, f := range a.Run(p) {
		got = append(got, fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Analyzer))
	}
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s over %s:\n got: %v\nwant: %v", analyzer, rel, got, want)
	}
}

func TestDeterminismFixtures(t *testing.T) {
	checkFixture(t, "determinism", "determinism/bad/internal/sweep")
	checkFixture(t, "determinism", "determinism/good/internal/sweep")
	checkFixture(t, "determinism", "determinism/unscoped")
}

func TestRegistryFixtures(t *testing.T) {
	checkFixture(t, "registry", "registry/bad")
	checkFixture(t, "registry", "registry/good")
	checkFixture(t, "registry", "registry/exempt/internal/circuits")
}

func TestInvalidationFixtures(t *testing.T) {
	checkFixture(t, "invalidation", "invalidation/bad/netlist")
	checkFixture(t, "invalidation", "invalidation/good/netlist")
}

func TestHotpathFixtures(t *testing.T) {
	checkFixture(t, "hotpath", "hotpath/bad")
	checkFixture(t, "hotpath", "hotpath/good")
}

func TestSentinelFixtures(t *testing.T) {
	checkFixture(t, "sentinel-errors", "sentinel/bad")
	checkFixture(t, "sentinel-errors", "sentinel/good")
}

// TestAnalyzerTable pins the registry: stable names (they are CLI
// keys), docs, and Lookup round-trips.
func TestAnalyzerTable(t *testing.T) {
	wantNames := []string{"determinism", "registry", "invalidation", "hotpath", "sentinel-errors"}
	all := All()
	if len(all) != len(wantNames) {
		t.Fatalf("%d analyzers, want %d", len(all), len(wantNames))
	}
	for i, a := range all {
		if a.Name != wantNames[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("%s: empty doc", a.Name)
		}
		if got, ok := Lookup(a.Name); !ok || got != a {
			t.Errorf("Lookup(%q) failed", a.Name)
		}
	}
	if _, ok := Lookup("no-such-analyzer"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

func TestFindingString(t *testing.T) {
	p := fixturePass(t, "sentinel/bad")
	fs := sentinelAnalyzer.Run(p)
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	s := fs[0].String()
	if !strings.Contains(s, "bad.go:") || !strings.Contains(s, ": sentinel-errors: ") {
		t.Errorf("finding format %q", s)
	}
}

// TestFormatVerbs pins the fmt.Errorf argument mapping the
// sentinel-errors analyzer relies on.
func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"100%% %w", "w", true},
		{"%+v", "v", true},
		{"%-8.3f", "f", true},
		{"%*d", "*d", true},
		{"%.*f", "*f", true},
		{"%[1]d", "", false},
		{"trailing %", "", true},
	}
	for _, tc := range cases {
		verbs, ok := formatVerbs(tc.format)
		if ok != tc.ok || string(verbs) != tc.want {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", tc.format, string(verbs), ok, tc.want, tc.ok)
		}
	}
}
