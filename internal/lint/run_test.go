package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestMainFindingsExitCode(t *testing.T) {
	code, out, errb := runMain(fixture("sentinel", "bad"))
	if code != ExitFindings {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, ExitFindings, errb)
	}
	if !strings.Contains(out, "sentinel-errors") || !strings.Contains(out, "bad.go:") {
		t.Errorf("output missing findings:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		// file:line: analyzer: message
		if parts := strings.SplitN(line, ": ", 3); len(parts) != 3 {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

func TestMainCleanExitCode(t *testing.T) {
	code, out, errb := runMain(fixture("sentinel", "good"))
	if code != ExitClean || out != "" {
		t.Errorf("exit %d, stdout %q, stderr %q; want clean and silent", code, out, errb)
	}
}

func TestMainOnlySkip(t *testing.T) {
	// -only an unrelated analyzer: the sentinel violations are not
	// reported.
	code, out, _ := runMain("-only", "determinism", fixture("sentinel", "bad"))
	if code != ExitClean || out != "" {
		t.Errorf("-only determinism: exit %d, out %q", code, out)
	}
	// -skip the firing analyzer: same.
	code, out, _ = runMain("-skip", "sentinel-errors", fixture("sentinel", "bad"))
	if code != ExitClean || out != "" {
		t.Errorf("-skip sentinel-errors: exit %d, out %q", code, out)
	}
	// -only the firing analyzer still fires.
	code, _, _ = runMain("-only", "sentinel-errors", fixture("sentinel", "bad"))
	if code != ExitFindings {
		t.Errorf("-only sentinel-errors: exit %d, want %d", code, ExitFindings)
	}
}

func TestMainUsageErrors(t *testing.T) {
	if code, _, errb := runMain("-only", "no-such"); code != ExitUsage || !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("unknown -only: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runMain("-skip", "determinism,registry,invalidation,hotpath,sentinel-errors"); code != ExitUsage {
		t.Errorf("skipping everything: exit %d, want %d", code, ExitUsage)
	}
	if code, _, _ := runMain("-bogus-flag"); code != ExitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, ExitUsage)
	}
	if code, _, _ := runMain("no/such/dir"); code != ExitUsage {
		t.Errorf("missing target: exit %d, want %d", code, ExitUsage)
	}
}

func TestMainList(t *testing.T) {
	code, out, _ := runMain("-list")
	if code != ExitClean {
		t.Fatalf("-list exit %d", code)
	}
	for _, a := range All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list missing %s", a.Name)
		}
	}
}

// TestModuleClean runs the full repolint sweep over the real tree —
// the same gate make lint applies. Skipped in -short runs (it
// type-checks the module plus its stdlib closure from source).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint sweep in -short mode")
	}
	code, out, errb := runMain()
	if code != ExitClean {
		t.Errorf("repolint over the module: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}
