package fault

import (
	"strings"
	"testing"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

func TestAllFaultsCount(t *testing.T) {
	c := netlist.C17()
	all := AllFaults(c)
	// 11 gates * 2 output faults + (6 NAND gates * 2 pins) * 2 = 22 + 24.
	if len(all) != 46 {
		t.Errorf("c17 full universe = %d, want 46", len(all))
	}
	seen := make(map[Fault]bool)
	for _, f := range all {
		if seen[f] {
			t.Fatalf("duplicate fault %v", f)
		}
		seen[f] = true
	}
}

func TestFaultString(t *testing.T) {
	c := netlist.C17()
	f := Fault{Gate: 0, Pin: -1, Stuck: true}
	if !strings.Contains(f.String(), "s-a-1") {
		t.Error("String missing value")
	}
	if !strings.Contains(f.Name(c), "s-a-1") {
		t.Error("Name missing value")
	}
	g16, _ := c.GateByName("16")
	fb := Fault{Gate: g16, Pin: 1, Stuck: false}
	if !strings.Contains(fb.Name(c), "in1") || !strings.Contains(fb.Name(c), "11") {
		t.Errorf("branch Name = %q", fb.Name(c))
	}
}

// detectionVector computes, by brute force over all input patterns (the
// circuit must have few inputs), the set of patterns detecting each
// fault. Bit p of the result is set iff pattern p detects the fault.
func detectionVector(t *testing.T, c *netlist.Circuit, f Fault) uint64 {
	t.Helper()
	if len(c.Inputs) > 6 {
		t.Fatal("detectionVector needs <= 6 inputs")
	}
	n := 1 << len(c.Inputs)
	patterns := make([]logicsim.Pattern, n)
	for v := 0; v < n; v++ {
		p := make(logicsim.Pattern, len(c.Inputs))
		for i := range p {
			p[i] = v>>i&1 == 1
		}
		patterns[v] = p
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	block, err := logicsim.PackPatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	good, err := sim.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	goodCopy := append([]uint64(nil), good...)
	bad, err := sim.RunWithFault(block, f.Gate, f.Pin, f.Stuck)
	if err != nil {
		t.Fatal(err)
	}
	var diff uint64
	for o := range bad {
		diff |= (bad[o] ^ goodCopy[o]) & block.Mask()
	}
	return diff
}

// circuitsForCollapsing returns small circuits covering every gate type
// and fanout structure.
func circuitsForCollapsing(t *testing.T) []*netlist.Circuit {
	t.Helper()
	var out []*netlist.Circuit
	out = append(out, netlist.C17())
	rca, err := netlist.RippleAdder(1)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rca)
	cmp, err := netlist.Comparator(2) // XNOR coverage
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, cmp)
	mux, err := netlist.MuxTree(1) // NOT + AND + OR
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, mux)
	rnd, err := netlist.RandomCircuit("rnd6", 5, 20, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rnd)
	return out
}

func TestEquivalenceClassesShareDetection(t *testing.T) {
	// The defining property of fault equivalence: every member of a
	// class is detected by exactly the same patterns. Verified by
	// exhaustive simulation.
	for _, c := range circuitsForCollapsing(t) {
		u := BuildUniverse(c)
		for _, cl := range u.Collapsed {
			want := detectionVector(t, c, cl.Members[0])
			for _, f := range cl.Members[1:] {
				if got := detectionVector(t, c, f); got != want {
					t.Errorf("%s: class of %v: member %v detection %b != %b",
						c.Name, cl.Rep.Name(c), f.Name(c), got, want)
				}
			}
		}
	}
}

func TestCollapsePreservesFaultSet(t *testing.T) {
	// Equivalence collapsing partitions the universe: every fault in
	// exactly one class.
	for _, c := range circuitsForCollapsing(t) {
		u := BuildUniverse(c)
		seen := make(map[Fault]int)
		for _, cl := range u.Collapsed {
			for _, f := range cl.Members {
				seen[f]++
			}
		}
		if len(seen) != len(u.All) {
			t.Errorf("%s: classes cover %d faults, universe has %d", c.Name, len(seen), len(u.All))
		}
		for f, n := range seen {
			if n != 1 {
				t.Errorf("%s: fault %v in %d classes", c.Name, f, n)
			}
		}
	}
}

func TestCollapseRatio(t *testing.T) {
	// Folklore: equivalence collapsing removes roughly 40-60% of the
	// universe on gate-level circuits. Check a sane reduction happens
	// and dominance removes more.
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	u := BuildUniverse(c)
	if len(u.Collapsed) >= len(u.All) {
		t.Errorf("equivalence collapsing did nothing: %d vs %d", len(u.Collapsed), len(u.All))
	}
	ratio := float64(len(u.Collapsed)) / float64(len(u.All))
	if ratio > 0.8 || ratio < 0.2 {
		t.Errorf("collapse ratio %v outside sane range", ratio)
	}
	if len(u.Checkable) >= len(u.Collapsed) {
		t.Errorf("dominance collapsing did nothing: %d vs %d", len(u.Checkable), len(u.Collapsed))
	}
}

func TestDominanceDroppedAreDominated(t *testing.T) {
	// For every class dropped by dominance collapsing there must be a
	// kept class whose every detecting pattern also detects the dropped
	// one (and which is detectable at all).
	for _, c := range circuitsForCollapsing(t) {
		u := BuildUniverse(c)
		keptSet := make(map[Fault]bool)
		for _, cl := range u.Checkable {
			keptSet[cl.Rep] = true
		}
		var droppedClasses []Class
		for _, cl := range u.Collapsed {
			if !keptSet[cl.Rep] {
				droppedClasses = append(droppedClasses, cl)
			}
		}
		for _, dc := range droppedClasses {
			dropVec := detectionVector(t, c, dc.Rep)
			if dropVec == 0 {
				continue // fault is redundant: dropping it loses nothing
			}
			dominated := false
			for _, kc := range u.Checkable {
				keepVec := detectionVector(t, c, kc.Rep)
				if keepVec != 0 && keepVec&^dropVec == 0 {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("%s: dropped class %v is not dominated by any kept class",
					c.Name, dc.Rep.Name(c))
			}
		}
	}
}

func TestRepsDeterministic(t *testing.T) {
	c := netlist.C17()
	a := BuildUniverse(c)
	b := BuildUniverse(c)
	ra, rb := Reps(a.Collapsed), Reps(b.Collapsed)
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic class count")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("nondeterministic representatives")
		}
	}
}

func TestC17CollapsedSize(t *testing.T) {
	// c17's collapsed fault list is a classic textbook number: the
	// 46-fault universe collapses to 24 equivalence classes... our
	// universe also carries branch faults on single-fanout nets (merged
	// by rule 1), so just pin the exact values for regression.
	u := BuildUniverse(netlist.C17())
	if len(u.All) != 46 {
		t.Errorf("universe %d", len(u.All))
	}
	if len(u.Collapsed) < 20 || len(u.Collapsed) > 30 {
		t.Errorf("collapsed %d outside expected band", len(u.Collapsed))
	}
	t.Logf("c17: %d all, %d collapsed, %d after dominance",
		len(u.All), len(u.Collapsed), len(u.Checkable))
}

func BenchmarkBuildUniverse(b *testing.B) {
	c, err := netlist.ArrayMultiplier(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildUniverse(c)
	}
}
