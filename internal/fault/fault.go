// Package fault defines the single-stuck-at fault universe over a
// gate-level circuit and implements structural fault collapsing
// (equivalence and dominance), the standard reductions every fault
// simulator and ATPG front-end applies.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault. Pin = -1 places the fault on the
// gate's output (the stem); Pin >= 0 places it on that input pin of the
// gate (the fanout branch feeding this gate only).
type Fault struct {
	Gate  int  // gate ID
	Pin   int  // -1 = output stem, >= 0 = input pin index
	Stuck bool // stuck value: false = stuck-at-0, true = stuck-at-1
}

// String renders the fault with the circuit's gate names, e.g.
// "16/in1 s-a-1" or "22 s-a-0".
func (f Fault) String() string {
	v := 0
	if f.Stuck {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d/in%d s-a-%d", f.Gate, f.Pin, v)
}

// Name renders the fault using gate names from the circuit.
func (f Fault) Name(c *netlist.Circuit) string {
	v := 0
	if f.Stuck {
		v = 1
	}
	g := c.Gates[f.Gate]
	if f.Pin < 0 {
		return fmt.Sprintf("%s s-a-%d", g.Name, v)
	}
	return fmt.Sprintf("%s/in%d(%s) s-a-%d", g.Name, f.Pin, c.Gates[g.Fanin[f.Pin]].Name, v)
}

// AllFaults enumerates the complete single-stuck-at universe: two
// faults on every gate output and two on every gate input pin. This is
// the uncollapsed list N that fault coverage f = m/N is measured
// against before collapsing.
func AllFaults(c *netlist.Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		out = append(out,
			Fault{Gate: g.ID, Pin: -1, Stuck: false},
			Fault{Gate: g.ID, Pin: -1, Stuck: true})
		for pin := range g.Fanin {
			out = append(out,
				Fault{Gate: g.ID, Pin: pin, Stuck: false},
				Fault{Gate: g.ID, Pin: pin, Stuck: true})
		}
	}
	return out
}

// Class is an equivalence class of faults: every member is detected by
// exactly the same test patterns. Rep is the canonical representative
// used for simulation.
type Class struct {
	Rep     Fault
	Members []Fault
}

// union-find over fault indices.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) { d.parent[d.find(a)] = d.find(b) }

// faultKey indexes faults for the DSU.
type faultKey struct {
	gate, pin int
	stuck     bool
}

// CollapseEquivalence partitions the full fault universe into
// equivalence classes using the structural rules:
//
//  1. A single-fanout net has one line: the driver's output fault is
//     equivalent to the (sole) receiver's input-pin fault of the same
//     value.
//  2. Controlling-value collapse inside gates:
//     AND:  any input s-a-0 ≡ output s-a-0
//     NAND: any input s-a-0 ≡ output s-a-1
//     OR:   any input s-a-1 ≡ output s-a-1
//     NOR:  any input s-a-1 ≡ output s-a-0
//     BUF:  input s-a-v ≡ output s-a-v
//     NOT:  input s-a-v ≡ output s-a-(1-v)
//
// XOR/XNOR gates admit no structural equivalence.
func CollapseEquivalence(c *netlist.Circuit, faults []Fault) []Class {
	index := make(map[faultKey]int, len(faults))
	for i, f := range faults {
		index[faultKey{f.Gate, f.Pin, f.Stuck}] = i
	}
	lookup := func(gate, pin int, stuck bool) (int, bool) {
		i, ok := index[faultKey{gate, pin, stuck}]
		return i, ok
	}
	d := newDSU(len(faults))
	for _, g := range c.Gates {
		// Rule 1: single-fanout stem ≡ branch.
		if len(g.Fanout) == 1 {
			recv := g.Fanout[0]
			for pin, fin := range c.Gates[recv].Fanin {
				if fin != g.ID {
					continue
				}
				for _, stuck := range []bool{false, true} {
					a, okA := lookup(g.ID, -1, stuck)
					b, okB := lookup(recv, pin, stuck)
					if okA && okB {
						d.union(a, b)
					}
				}
			}
		}
		// Rule 2: controlling-value collapse.
		var inStuck, outStuck bool
		var applies bool
		switch g.Type {
		case netlist.And:
			inStuck, outStuck, applies = false, false, true
		case netlist.Nand:
			inStuck, outStuck, applies = false, true, true
		case netlist.Or:
			inStuck, outStuck, applies = true, true, true
		case netlist.Nor:
			inStuck, outStuck, applies = true, false, true
		}
		if applies {
			out, okOut := lookup(g.ID, -1, outStuck)
			if okOut {
				for pin := range g.Fanin {
					if in, ok := lookup(g.ID, pin, inStuck); ok {
						d.union(in, out)
					}
				}
			}
		}
		if g.Type == netlist.Buf || g.Type == netlist.Not {
			inv := g.Type == netlist.Not
			for _, stuck := range []bool{false, true} {
				in, okIn := lookup(g.ID, 0, stuck)
				out, okOut := lookup(g.ID, -1, stuck != inv)
				if okIn && okOut {
					d.union(in, out)
				}
			}
		}
	}
	// Gather classes; representative = the stem fault closest to the
	// inputs (lowest gate ID with Pin = -1), else the lowest-indexed
	// member. Deterministic by construction.
	groups := make(map[int][]int)
	for i := range faults {
		r := d.find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	classes := make([]Class, 0, len(groups))
	for _, r := range roots {
		idxs := groups[r]
		sort.Ints(idxs)
		cl := Class{Members: make([]Fault, len(idxs))}
		repIdx := idxs[0]
		for j, i := range idxs {
			cl.Members[j] = faults[i]
			if faults[i].Pin < 0 && (faults[repIdx].Pin >= 0 || faults[i].Gate < faults[repIdx].Gate) {
				repIdx = i
			}
		}
		cl.Rep = faults[repIdx]
		classes = append(classes, cl)
	}
	return classes
}

// CollapseDominance removes classes that are dominated by a kept class:
// for a gate with a controlling input value, the output fault at the
// non-controlled value is detected by every test for any input fault at
// the controlling-complement value, so the output fault class can be
// dropped. Rules (value on the right is the dropped output fault):
//
//	AND:  output s-a-1 dominated by any input s-a-1
//	NAND: output s-a-0 dominated by any input s-a-1
//	OR:   output s-a-0 dominated by any input s-a-0
//	NOR:  output s-a-1 dominated by any input s-a-0
//
// Gates with a single input pin (BUF/NOT) are fully handled by
// equivalence. Classes containing any primary-output stem fault are
// never dropped (dominance holds, but keeping them preserves the
// convention that PO faults stay explicit in reports).
func CollapseDominance(c *netlist.Circuit, classes []Class) []Class {
	poStem := make(map[int]bool)
	for _, o := range c.Outputs {
		poStem[o] = true
	}
	// Map each fault to its class index.
	where := make(map[faultKey]int)
	for ci, cl := range classes {
		for _, f := range cl.Members {
			where[faultKey{f.Gate, f.Pin, f.Stuck}] = ci
		}
	}
	dropped := make([]bool, len(classes))
	for _, g := range c.Gates {
		var inStuck, outStuck bool
		switch g.Type {
		case netlist.And:
			inStuck, outStuck = true, true
		case netlist.Nand:
			inStuck, outStuck = true, false
		case netlist.Or:
			inStuck, outStuck = false, false
		case netlist.Nor:
			inStuck, outStuck = false, true
		default:
			continue
		}
		if len(g.Fanin) < 2 {
			continue
		}
		outCi, ok := where[faultKey{g.ID, -1, outStuck}]
		if !ok {
			continue
		}
		// The dominating input faults must survive in other classes.
		dominatorExists := false
		for pin := range g.Fanin {
			if ci, ok := where[faultKey{g.ID, pin, inStuck}]; ok && ci != outCi && !dropped[ci] {
				dominatorExists = true
				break
			}
		}
		if !dominatorExists {
			continue
		}
		// Never drop a class that contains a primary-output stem fault.
		containsPO := false
		for _, f := range classes[outCi].Members {
			if f.Pin < 0 && poStem[f.Gate] {
				containsPO = true
				break
			}
		}
		if !containsPO {
			dropped[outCi] = true
		}
	}
	kept := make([]Class, 0, len(classes))
	for i, cl := range classes {
		if !dropped[i] {
			kept = append(kept, cl)
		}
	}
	return kept
}

// Universe bundles the fault list views of one circuit.
type Universe struct {
	All       []Fault // complete uncollapsed list
	Collapsed []Class // equivalence classes
	Checkable []Class // after dominance collapsing
}

// BuildUniverse computes all three views.
func BuildUniverse(c *netlist.Circuit) Universe {
	all := AllFaults(c)
	eq := CollapseEquivalence(c, all)
	dom := CollapseDominance(c, eq)
	return Universe{All: all, Collapsed: eq, Checkable: dom}
}

// Reps returns the representative faults of the classes.
func Reps(classes []Class) []Fault {
	out := make([]Fault, len(classes))
	for i, cl := range classes {
		out[i] = cl.Rep
	}
	return out
}
