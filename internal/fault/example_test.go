package fault_test

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// ExampleCollapseEquivalence collapses the full single-stuck-at
// universe of the c17 benchmark into equivalence classes: every member
// of a class is detected by exactly the same tests, so only the class
// representatives need simulating.
func ExampleCollapseEquivalence() {
	c := netlist.C17()
	all := fault.AllFaults(c)
	classes := fault.CollapseEquivalence(c, all)
	fmt.Printf("uncollapsed faults: %d\n", len(all))
	fmt.Printf("equivalence classes: %d\n", len(classes))

	// The largest class chains the rules: single-fanout stem/branch
	// equivalence plus the controlling-value collapse inside gates.
	biggest := classes[0]
	for _, cl := range classes {
		if len(cl.Members) > len(biggest.Members) {
			biggest = cl
		}
	}
	fmt.Printf("largest class has %d members, representative %s\n",
		len(biggest.Members), biggest.Rep.Name(c))
	// Output:
	// uncollapsed faults: 46
	// equivalence classes: 22
	// largest class has 5 members, representative 1 s-a-0
}
