package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func allModels() []Model {
	return []Model{Poisson{}, Murphy{}, Seeds{}, Price{Mechanisms: 3}, NegBinomial{Lambda: 0.5}}
}

func TestYieldAtZeroDefectsIsOne(t *testing.T) {
	for _, m := range allModels() {
		if got := m.Yield(0); !almostEq(got, 1, 1e-12) {
			t.Errorf("%s: Yield(0) = %v, want 1", m.Name(), got)
		}
	}
}

func TestYieldMonotoneDecreasing(t *testing.T) {
	for _, m := range allModels() {
		prev := 1.0
		for d := 0.1; d < 50; d += 0.3 {
			y := m.Yield(d)
			if y > prev {
				t.Errorf("%s: yield not decreasing at d=%v", m.Name(), d)
			}
			if y < 0 || y > 1 {
				t.Errorf("%s: yield %v out of range at d=%v", m.Name(), y, d)
			}
			prev = y
		}
	}
}

func TestPoissonYieldKnown(t *testing.T) {
	if got := (Poisson{}).Yield(1); !almostEq(got, math.Exp(-1), 1e-12) {
		t.Errorf("Poisson Yield(1) = %v", got)
	}
}

func TestMurphyKnown(t *testing.T) {
	// Murphy(1) = ((1 - e^-1)/1)^2 ≈ 0.399576.
	if got := (Murphy{}).Yield(1); !almostEq(got, 0.39957640089781666, 1e-9) {
		t.Errorf("Murphy Yield(1) = %v", got)
	}
}

func TestSeedsKnown(t *testing.T) {
	if got := (Seeds{}).Yield(1); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("Seeds Yield(1) = %v", got)
	}
}

func TestPriceReductions(t *testing.T) {
	// One mechanism = Seeds.
	p1 := Price{Mechanisms: 1}
	s := Seeds{}
	for d := 0.0; d < 10; d += 0.7 {
		if !almostEq(p1.Yield(d), s.Yield(d), 1e-12) {
			t.Errorf("Price(1) != Seeds at d=%v", d)
		}
	}
	// Zero mechanisms defaults to 1.
	if !almostEq(Price{}.Yield(2), s.Yield(2), 1e-12) {
		t.Error("Price{} should default to one mechanism")
	}
}

func TestNegBinomialLimits(t *testing.T) {
	// λ → 0: approaches Poisson.
	small := NegBinomial{Lambda: 1e-8}
	p := Poisson{}
	for d := 0.0; d < 5; d += 0.5 {
		if !almostEq(small.Yield(d), p.Yield(d), 1e-5) {
			t.Errorf("NB(λ→0) != Poisson at d=%v: %v vs %v", d, small.Yield(d), p.Yield(d))
		}
	}
	// λ = 1: exactly Seeds.
	one := NegBinomial{Lambda: 1}
	s := Seeds{}
	for d := 0.0; d < 5; d += 0.5 {
		if !almostEq(one.Yield(d), s.Yield(d), 1e-12) {
			t.Errorf("NB(1) != Seeds at d=%v", d)
		}
	}
}

func TestNegBinomialValidation(t *testing.T) {
	if _, err := NewNegBinomial(0); err == nil {
		t.Error("lambda 0 should error")
	}
	if _, err := NewNegBinomial(-2); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := NewNegBinomial(0.25); err != nil {
		t.Errorf("valid lambda errored: %v", err)
	}
}

func TestEq3PaperRegime(t *testing.T) {
	// Eq. 3 with parameters that give the paper's LSI example yield of
	// ~7%: verify round trip through DefectsForYield.
	nb := NegBinomial{Lambda: 0.5}
	d, err := DefectsForYield(nb, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Yield(d); !almostEq(got, 0.07, 1e-9) {
		t.Errorf("round trip yield = %v, want 0.07", got)
	}
}

func TestDefectsForYieldAllModels(t *testing.T) {
	for _, m := range allModels() {
		for _, y := range []float64{0.9, 0.5, 0.2, 0.07, 0.01} {
			d, err := DefectsForYield(m, y)
			if err != nil {
				t.Fatalf("%s yield %v: %v", m.Name(), y, err)
			}
			if got := m.Yield(d); !almostEq(got, y, 1e-6) {
				t.Errorf("%s: Yield(%v) = %v, want %v", m.Name(), d, got, y)
			}
		}
	}
}

func TestDefectsForYieldEdges(t *testing.T) {
	if d, err := DefectsForYield(Poisson{}, 1); err != nil || d != 0 {
		t.Errorf("yield 1 should give 0 defects, got %v err %v", d, err)
	}
	if _, err := DefectsForYield(Poisson{}, 0); err == nil {
		t.Error("yield 0 should error")
	}
	if _, err := DefectsForYield(Poisson{}, 1.2); err == nil {
		t.Error("yield > 1 should error")
	}
}

func TestDefectsForYieldRoundTripProperty(t *testing.T) {
	prop := func(ry, rl uint8) bool {
		y := 0.01 + float64(ry)/256*0.98
		lambda := 0.1 + float64(rl)/256*4
		m := NegBinomial{Lambda: lambda}
		d, err := DefectsForYield(m, y)
		return err == nil && almostEq(m.Yield(d), y, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScaleArea(t *testing.T) {
	if got := ScaleArea(4, 0.25); !almostEq(got, 1, 1e-12) {
		t.Errorf("ScaleArea = %v, want 1", got)
	}
}

func TestShrinkRaisesYield(t *testing.T) {
	// §8 of the paper: finer design rules shrink area, raising yield.
	nb := NegBinomial{Lambda: 0.5}
	d := 3.0
	yFull := nb.Yield(d)
	yShrunk := nb.Yield(ScaleArea(d, 0.5))
	if yShrunk <= yFull {
		t.Errorf("shrinking area should raise yield: %v vs %v", yShrunk, yFull)
	}
}

func TestFitLambdaRecovers(t *testing.T) {
	// Generate exact observations from a known λ and check recovery.
	truth := NegBinomial{Lambda: 0.7}
	var d0a, ys []float64
	for d := 0.2; d <= 6; d += 0.4 {
		d0a = append(d0a, d)
		ys = append(ys, truth.Yield(d))
	}
	got, err := FitLambda(d0a, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 0.7, 0.01) {
		t.Errorf("fitted lambda = %v, want 0.7", got)
	}
}

func TestFitLambdaErrors(t *testing.T) {
	if _, err := FitLambda([]float64{1}, []float64{0.5}); err == nil {
		t.Error("single observation should error")
	}
	if _, err := FitLambda([]float64{1, 2}, []float64{0.5}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func BenchmarkNegBinomialYield(b *testing.B) {
	nb := NegBinomial{Lambda: 0.5}
	for i := 0; i < b.N; i++ {
		nb.Yield(float64(i%100) / 10)
	}
}

func BenchmarkDefectsForYield(b *testing.B) {
	nb := NegBinomial{Lambda: 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := DefectsForYield(nb, 0.07); err != nil {
			b.Fatal(err)
		}
	}
}
