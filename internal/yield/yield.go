// Package yield implements the classical integrated-circuit yield models
// referenced by the paper: the simple Poisson model, Murphy's and Seeds'
// composite models, Price's model, and the Stapper/Sredni
// negative-binomial model that the paper itself uses as Eq. 3:
//
//	y = (1 + λ D0 A)^(-1/λ)
//
// where A is chip area, D0 the mean defect density, and λ the normalized
// variance of D0. The package also fits defect density from observed
// yields, which the shrink-study experiment uses.
package yield

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Model predicts the yield (probability a manufactured chip is free of
// defects) from the expected defect count per chip.
type Model interface {
	// Yield returns the predicted yield for an average of d0a defects
	// per chip (d0a = D0 * A).
	Yield(d0a float64) float64
	// Name identifies the model in reports.
	Name() string
}

// Poisson is the classical y = e^{-D0 A} model: defects land
// independently and any defect kills the chip.
type Poisson struct{}

// Yield returns e^{-d0a}.
func (Poisson) Yield(d0a float64) float64 { return math.Exp(-d0a) }

// Name returns "poisson".
func (Poisson) Name() string { return "poisson" }

// Murphy is Murphy's 1964 model, the integral of the Poisson yield over
// a symmetric triangular distribution of defect density:
// y = [(1 - e^{-d})/d]².
type Murphy struct{}

// Yield returns [(1 - e^{-d0a})/d0a]².
func (Murphy) Yield(d0a float64) float64 {
	if d0a == 0 {
		return 1
	}
	t := (1 - math.Exp(-d0a)) / d0a
	return t * t
}

// Name returns "murphy".
func (Murphy) Name() string { return "murphy" }

// Seeds is Seeds' 1967 exponential-mixture model: y = 1/(1 + d).
type Seeds struct{}

// Yield returns 1/(1 + d0a).
func (Seeds) Yield(d0a float64) float64 { return 1 / (1 + d0a) }

// Name returns "seeds".
func (Seeds) Name() string { return "seeds" }

// Price is Price's 1970 Bose-Einstein-statistics model; for a single
// defect type it coincides with Seeds' form but it is listed separately
// because the paper cites both.
type Price struct {
	// Mechanisms is the number of independent defect mechanisms; the
	// yield is the product over mechanisms of 1/(1 + d/k).
	Mechanisms int
}

// Yield returns Π 1/(1 + d0a/k).
func (p Price) Yield(d0a float64) float64 {
	k := p.Mechanisms
	if k <= 0 {
		k = 1
	}
	per := d0a / float64(k)
	y := 1.0
	for i := 0; i < k; i++ {
		y /= 1 + per
	}
	return y
}

// Name returns "price".
func (p Price) Name() string { return "price" }

// NegBinomial is the Stapper/Sredni composite model the paper adopts as
// Eq. 3: y = (1 + λ d)^{-1/λ}, where λ is the normalized variance of
// the defect density across the line. λ → 0 recovers the Poisson model;
// λ = 1 recovers Seeds.
type NegBinomial struct {
	Lambda float64 // variance parameter of D0, > 0
}

// NewNegBinomial validates λ > 0.
func NewNegBinomial(lambda float64) (NegBinomial, error) {
	if !(lambda > 0) {
		return NegBinomial{}, fmt.Errorf("yield: lambda must be > 0, got %v", lambda)
	}
	return NegBinomial{Lambda: lambda}, nil
}

// Yield returns (1 + λ d0a)^{-1/λ} (Eq. 3 of the paper).
func (nb NegBinomial) Yield(d0a float64) float64 {
	return math.Pow(1+nb.Lambda*d0a, -1/nb.Lambda)
}

// Name returns "negbinomial".
func (nb NegBinomial) Name() string { return "negbinomial" }

// DefectsForYield inverts the model: it returns the average defect count
// per chip d0a that produces the target yield y in (0, 1].
func DefectsForYield(m Model, y float64) (float64, error) {
	if !(y > 0 && y <= 1) {
		return 0, fmt.Errorf("yield: target yield must be in (0,1], got %v", y)
	}
	if y == 1 {
		return 0, nil
	}
	// Bracket: yield is decreasing in d0a. Grow hi until below target.
	hi := 1.0
	for m.Yield(hi) > y {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("yield: cannot bracket defect count for yield %v under %s", y, m.Name())
		}
	}
	return numeric.Brent(func(d float64) float64 { return m.Yield(d) - y }, 0, hi, 1e-12)
}

// ScaleArea returns the defect count after scaling chip area by factor
// s (area shrinks quadratically with linear feature shrink): d' = d * s.
func ScaleArea(d0a, s float64) float64 { return d0a * s }

// FitLambda estimates the λ parameter of the negative-binomial model
// from (d0a, yield) observations by least squares on a λ grid followed
// by golden-section refinement. This mirrors how a line characterizes
// its own process before applying the paper's Eq. 3.
func FitLambda(d0a, yields []float64) (float64, error) {
	if len(d0a) != len(yields) || len(d0a) < 2 {
		return 0, fmt.Errorf("yield: need >= 2 paired observations, got %d/%d", len(d0a), len(yields))
	}
	sse := func(lambda float64) float64 {
		m := NegBinomial{Lambda: lambda}
		return numeric.SSE(d0a, yields, m.Yield)
	}
	coarse := numeric.GridMinimize(sse, 0.01, 10, 400)
	lo := math.Max(0.005, coarse/2)
	hi := math.Min(20, coarse*2)
	return numeric.GoldenMinimize(sse, lo, hi, 1e-9), nil
}
