package numeric

import "math"

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0, via the series expansion
// for x < a+1 and the continued fraction otherwise (Numerical Recipes
// style). It backs the chi-square CDF used by the goodness-of-fit
// test.
func GammaP(a, x float64) float64 {
	if a <= 0 {
		panic("numeric: GammaP requires a > 0")
	}
	if x < 0 {
		panic("numeric: GammaP requires x >= 0")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// GammaQ returns the upper tail Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 { return 1 - GammaP(a, x) }

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// gammaCF evaluates Q(a,x) by Lentz's continued fraction.
func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LogGamma(a)) * h
}

// ChiSquareSurvival returns P(X >= stat) for a chi-square distribution
// with df degrees of freedom: the p-value of a goodness-of-fit test.
func ChiSquareSurvival(stat float64, df int) float64 {
	if df <= 0 {
		panic("numeric: chi-square needs df > 0")
	}
	if stat <= 0 {
		return 1
	}
	return GammaQ(float64(df)/2, stat/2)
}
