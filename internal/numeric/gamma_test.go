package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLogGammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, 0.5 * math.Log(math.Pi)},
		{10, math.Log(362880)},
		{100, 359.1342053695754}, // ln(99!)
	}
	for _, c := range cases {
		got := LogGamma(c.x)
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogGammaMatchesStdlib(t *testing.T) {
	for x := 0.1; x < 50; x += 0.37 {
		want, _ := math.Lgamma(x)
		got := LogGamma(x)
		if !almostEq(got, want, 1e-11) {
			t.Fatalf("LogGamma(%v) = %v, stdlib %v", x, got, want)
		}
	}
}

func TestLogGammaPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for x <= 0")
		}
	}()
	LogGamma(0)
}

func TestLogFactorial(t *testing.T) {
	fact := 1.0
	for n := 0; n <= 20; n++ {
		if n > 0 {
			fact *= float64(n)
		}
		if got := LogFactorial(n); !almostEq(got, math.Log(fact), 1e-12) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, math.Log(fact))
		}
	}
	// Beyond the cache boundary: must agree with LogGamma.
	for _, n := range []int{255, 256, 300, 1000} {
		if got, want := LogFactorial(n), LogGamma(float64(n)+1); !almostEq(got, want, 1e-12) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogFactorialRecurrence(t *testing.T) {
	// Property: ln(n!) = ln((n-1)!) + ln(n) for all n >= 1.
	prop := func(raw uint16) bool {
		n := int(raw%2000) + 1
		return almostEq(LogFactorial(n), LogFactorial(n-1)+math.Log(float64(n)), 1e-10)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChooseSmallExact(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{62, 31, 4.65428353255261e17},
		{5, 6, 0},
		{5, -1, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseLargeMatchesLog(t *testing.T) {
	for _, c := range []struct{ n, k int }{{100, 50}, {200, 13}, {1000, 3}} {
		got := Choose(c.n, c.k)
		want := math.Exp(LogChoose(c.n, c.k))
		if !almostEq(got, want, 1e-9) {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, want)
		}
	}
}

func TestLogChoosePascal(t *testing.T) {
	// Property: C(n,k) = C(n-1,k-1) + C(n-1,k) in log space.
	prop := func(rn, rk uint8) bool {
		n := int(rn%60) + 2
		k := int(rk) % n
		if k == 0 {
			k = 1
		}
		lhs := math.Exp(LogChoose(n, k))
		rhs := math.Exp(LogChoose(n-1, k-1)) + math.Exp(LogChoose(n-1, k))
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	prop := func(rn, rk uint8) bool {
		n := int(rn % 200)
		k := 0
		if n > 0 {
			k = int(rk) % (n + 1)
		}
		return almostEq(LogChoose(n, k), LogChoose(n, n-k), 1e-10)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func BenchmarkLogGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogGamma(float64(i%1000) + 0.5)
	}
}

func BenchmarkLogChoose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogChoose(10000, i%10000)
	}
}
