package numeric

import (
	"errors"
	"math"
)

// ErrBadInput reports malformed fitting input (mismatched lengths, too
// few points).
var ErrBadInput = errors.New("numeric: bad fitting input")

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination r². It is
// used for the origin-slope estimate of n0 (Eq. 10 of the paper), where
// the first few (coverage, fallout) points are fitted through a line.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, ErrBadInput
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy KahanSum
	for i := range x {
		sx.Add(x[i])
		sy.Add(y[i])
		sxx.Add(x[i] * x[i])
		sxy.Add(x[i] * y[i])
		syy.Add(y[i] * y[i])
	}
	den := n*sxx.Sum() - sx.Sum()*sx.Sum()
	if den == 0 {
		return 0, 0, 0, ErrBadInput
	}
	b = (n*sxy.Sum() - sx.Sum()*sy.Sum()) / den
	a = (sy.Sum() - b*sx.Sum()) / n
	ssTot := syy.Sum() - sy.Sum()*sy.Sum()/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	var ssRes KahanSum
	for i := range x {
		d := y[i] - (a + b*x[i])
		ssRes.Add(d * d)
	}
	r2 = 1 - ssRes.Sum()/ssTot
	return a, b, r2, nil
}

// LinearFitThroughOrigin fits y = b*x by least squares. The fallout
// curve passes through the origin by construction (zero coverage rejects
// nothing), so the slope estimate of n0 uses this constrained form.
func LinearFitThroughOrigin(x, y []float64) (b float64, err error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrBadInput
	}
	var sxy, sxx KahanSum
	for i := range x {
		sxy.Add(x[i] * y[i])
		sxx.Add(x[i] * x[i])
	}
	if sxx.Sum() == 0 {
		return 0, ErrBadInput
	}
	return sxy.Sum() / sxx.Sum(), nil
}

// SSE returns the sum of squared errors between observed ys and a model
// function evaluated at xs.
func SSE(xs, ys []float64, model func(float64) float64) float64 {
	var k KahanSum
	for i := range xs {
		d := ys[i] - model(xs[i])
		k.Add(d * d)
	}
	return k.Sum()
}

// GridMinimize evaluates f at count points evenly spaced on [lo, hi]
// and returns the argument with the smallest value. It is the coarse
// stage before GoldenMinimize in the n0 fit.
func GridMinimize(f func(float64) float64, lo, hi float64, count int) float64 {
	if count < 2 {
		return lo
	}
	best, bestV := lo, math.Inf(1)
	step := (hi - lo) / float64(count-1)
	for i := 0; i < count; i++ {
		x := lo + float64(i)*step
		if v := f(x); v < bestV {
			best, bestV = x, v
		}
	}
	return best
}

// Interp returns the piecewise-linear interpolation of the sample set
// (xs, ys) at x. xs must be sorted ascending. Values outside the range
// clamp to the end points; the coverage curves interpolated with this
// are flat beyond their sampled range by construction.
func Interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	if xs[hi] == xs[lo] {
		return ys[lo]
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// Linspace returns count evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, count int) []float64 {
	if count <= 0 {
		return nil
	}
	if count == 1 {
		return []float64{lo}
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi
	return out
}
