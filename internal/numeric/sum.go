package numeric

import "math"

// KahanSum accumulates float64 values with compensated (Kahan) summation,
// which keeps the long probability-mass sums in the model accurate even
// when thousands of tiny terms are added to a value near one.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the accumulated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// LogSumExp returns ln(Σ exp(xi)) computed stably. Used when combining
// log-space probability masses (e.g. mixing distributions).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var k KahanSum
	for _, x := range xs {
		k.Add(math.Exp(x - m))
	}
	return m + math.Log(k.Sum())
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
