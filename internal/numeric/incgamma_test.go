package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEq(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almostEq(got, want, 1e-10) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if got := GammaP(3, 1000); !almostEq(got, 1, 1e-12) {
		t.Errorf("P(3,1000) = %v", got)
	}
	for _, fn := range []func(){
		func() { GammaP(0, 1) },
		func() { GammaP(1, -1) },
		func() { ChiSquareSurvival(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGammaPMonotoneAndBounded(t *testing.T) {
	prop := func(ra, rx uint8) bool {
		a := 0.2 + float64(ra)/16
		x1 := float64(rx) / 16
		x2 := x1 + 0.5
		p1, p2 := GammaP(a, x1), GammaP(a, x2)
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for a := 0.5; a < 20; a += 1.7 {
		for x := 0.1; x < 40; x += 2.3 {
			if s := GammaP(a, x) + GammaQ(a, x); !almostEq(s, 1, 1e-10) {
				t.Errorf("P+Q = %v at a=%v x=%v", s, a, x)
			}
		}
	}
}

func TestChiSquareSurvivalKnown(t *testing.T) {
	// df=1: P(X >= 3.841) ≈ 0.05; df=2: survival = e^{-x/2};
	// df=10: P(X >= 18.307) ≈ 0.05.
	if got := ChiSquareSurvival(3.841, 1); math.Abs(got-0.05) > 0.001 {
		t.Errorf("df=1: %v", got)
	}
	for _, x := range []float64{1, 4, 9} {
		want := math.Exp(-x / 2)
		if got := ChiSquareSurvival(x, 2); !almostEq(got, want, 1e-10) {
			t.Errorf("df=2 x=%v: %v want %v", x, got, want)
		}
	}
	if got := ChiSquareSurvival(18.307, 10); math.Abs(got-0.05) > 0.001 {
		t.Errorf("df=10: %v", got)
	}
	if ChiSquareSurvival(0, 5) != 1 {
		t.Error("zero statistic should have p = 1")
	}
}
