package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5 + 1.75*v
	}
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 2.5, 1e-12) || !almostEq(b, 1.75, 1e-12) || !almostEq(r2, 1, 1e-12) {
		t.Errorf("a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0.1, 0.9, 2.1, 2.9}
	_, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.9 || b > 1.1 {
		t.Errorf("slope %v not near 1", b)
	}
	if r2 < 0.98 {
		t.Errorf("r2 %v too low", r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err != ErrBadInput {
		t.Error("want ErrBadInput for single point")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err != ErrBadInput {
		t.Error("want ErrBadInput for mismatched lengths")
	}
	// All x equal: vertical line cannot be fit.
	if _, _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrBadInput {
		t.Error("want ErrBadInput for degenerate x")
	}
}

func TestLinearFitThroughOrigin(t *testing.T) {
	x := []float64{0.05, 0.08, 0.10}
	y := []float64{0.41, 0.656, 0.82} // slope 8.2
	b, err := LinearFitThroughOrigin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b, 8.2, 1e-6) {
		t.Errorf("slope = %v, want 8.2", b)
	}
}

func TestLinearFitThroughOriginRecoversSlope(t *testing.T) {
	prop := func(s8 uint8) bool {
		s := float64(s8)/10 + 0.1
		x := []float64{1, 2, 3, 4}
		y := []float64{s, 2 * s, 3 * s, 4 * s}
		b, err := LinearFitThroughOrigin(x, y)
		return err == nil && almostEq(b, s, 1e-10)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSSE(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	if got := SSE(xs, ys, func(x float64) float64 { return 2 * x }); got != 0 {
		t.Errorf("SSE exact model = %v, want 0", got)
	}
	if got := SSE(xs, ys, func(x float64) float64 { return 2*x + 1 }); !almostEq(got, 3, 1e-12) {
		t.Errorf("SSE offset model = %v, want 3", got)
	}
}

func TestGridMinimize(t *testing.T) {
	got := GridMinimize(func(x float64) float64 { return (x - 4) * (x - 4) }, 0, 10, 101)
	if !almostEq(got, 4, 1e-9) {
		t.Errorf("grid min = %v, want 4", got)
	}
	if got := GridMinimize(func(x float64) float64 { return x }, 3, 9, 1); got != 3 {
		t.Errorf("degenerate grid = %v, want lo", got)
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	cases := []struct{ x, want float64 }{
		{-1, 0},  // clamp left
		{0, 0},   // exact
		{0.5, 5}, // interior
		{1.5, 25},
		{2, 40},
		{3, 40}, // clamp right
	}
	for _, c := range cases {
		if got := Interp(xs, ys, c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Interp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := Interp(nil, nil, 1); got != 0 {
		t.Errorf("empty Interp = %v, want 0", got)
	}
}

func TestInterpMonotoneProperty(t *testing.T) {
	// Interpolating a monotone sample set stays within [ys[0], ys[last]].
	xs := Linspace(0, 1, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	prop := func(raw uint16) bool {
		x := float64(raw) / 65535
		v := Interp(xs, ys, x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Linspace(0, 1, 0) != nil {
		t.Error("Linspace count 0 should be nil")
	}
	if one := Linspace(7, 9, 1); len(one) != 1 || one[0] != 7 {
		t.Error("Linspace count 1 should be [lo]")
	}
	ends := Linspace(0.1, 0.3, 7)
	if ends[6] != 0.3 {
		t.Error("Linspace must end exactly at hi")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 added 10^7 times loses the tail with naive summation but
	// not with compensation.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1e7; i++ {
		k.Add(1e-16)
	}
	if !almostEq(k.Sum(), 1+1e-9, 1e-12) {
		t.Errorf("kahan sum = %.15g, want %.15g", k.Sum(), 1+1e-9)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEq(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want ln 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("all -Inf LogSumExp should be -Inf")
	}
	// Stability: huge magnitudes must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
