package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by the root finders when the supplied interval
// does not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// effTol widens tol so that it is achievable at the magnitude of the
// bracketing interval: an absolute tolerance below the float64 spacing
// at |a|,|b| can never be met, so a few ulps are always added.
func effTol(tol, a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return tol + 4*eps*scale
}

const eps = 2.220446049250313e-16 // float64 machine epsilon

// Bisect finds x in [a, b] with f(x) = 0 using bisection. f(a) and f(b)
// must have opposite signs. The returned root is within tol of the true
// root (relaxed by a few ulps at large magnitudes). Bisection is used
// where robustness matters more than speed, e.g. inverting the
// reject-rate curve, which is monotone but has nearly flat regions at
// high coverage.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	tol = effTol(tol, a, b)
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation with bisection fallback). It converges much
// faster than bisection on smooth functions such as the fallout curve.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	var d float64
	mflag := true
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < effTol(tol, a, b) {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		useBisect := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if useBisect {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// invPhi is the reciprocal golden ratio used by GoldenMinimize.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMinimize returns the x in [a, b] minimizing f, assuming f is
// unimodal on the interval, to within tol. It is used to refine the
// least-squares fit of the fault-distribution parameter n0.
func GoldenMinimize(f func(float64) float64, a, b, tol float64) float64 {
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}
