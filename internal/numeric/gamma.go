// Package numeric provides the numerical routines shared by the
// statistical model and its substrates: log-gamma and log-binomial
// coefficients, root finding, minimization, least squares, numerically
// stable summation, and interpolation.
//
// Everything in this package is deterministic pure math over float64 and
// uses only the standard library.
package numeric

import "math"

// lanczosG and lanczosCoef implement the Lanczos approximation for the
// gamma function with g = 7, n = 9, which is accurate to about 15
// significant digits over the positive real axis.
const lanczosG = 7

var lanczosCoef = [9]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// LogGamma returns ln Γ(x) for x > 0. It panics for x <= 0 because the
// callers in this repository only ever need the positive axis and a
// negative argument indicates a logic error (for example a negative
// fault count).
func LogGamma(x float64) float64 {
	if x <= 0 {
		panic("numeric: LogGamma requires x > 0")
	}
	if x < 0.5 {
		// Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LogGamma(1-x)
	}
	x--
	a := lanczosCoef[0]
	t := x + lanczosG + 0.5
	for i := 1; i < len(lanczosCoef); i++ {
		a += lanczosCoef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// LogFactorial returns ln(n!) using LogGamma. n must be non-negative.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("numeric: LogFactorial requires n >= 0")
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	return LogGamma(float64(n) + 1)
}

// logFactTable caches small factorials; these dominate the hot paths of
// the Poisson and hypergeometric densities.
var logFactTable = func() []float64 {
	t := make([]float64, 256)
	acc := 0.0
	for i := 1; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()

// LogChoose returns ln C(n, k). It returns -Inf when the coefficient is
// zero (k < 0 or k > n), which lets densities built on it vanish
// gracefully instead of erroring.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64. Overflow-safe via logs for large
// arguments; exact integer arithmetic is used when the result fits.
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if n <= 62 {
		// Exact in uint64 for n <= 62.
		var acc uint64 = 1
		for i := 1; i <= k; i++ {
			acc = acc * uint64(n-k+i) / uint64(i)
		}
		return float64(acc)
	}
	return math.Exp(LogChoose(n, k))
}
