package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return 2*x - 1 }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, 0.5, 1e-10) {
		t.Errorf("root = %v, want 0.5", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-12); err != nil || r != 0 {
		t.Errorf("root = %v err = %v, want exact 0", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-12); err != nil || r != 0 {
		t.Errorf("root = %v err = %v, want exact 0", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9)
	if err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos(x) = x has root ~0.7390851332151607.
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, 0.7390851332151607, 1e-10) {
		t.Errorf("root = %v", root)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3 }
	rb, err1 := Bisect(f, 0, 2, 1e-12)
	rr, err2 := Brent(f, 0, 2, 1e-12)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !almostEq(rb, rr, 1e-9) || !almostEq(rr, math.Log(3), 1e-9) {
		t.Errorf("bisect %v brent %v want %v", rb, rr, math.Log(3))
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -3, 3, 1e-9)
	if err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestRootFindersOnRandomMonotone(t *testing.T) {
	// Property: for a random increasing cubic with a root inside [-10,10],
	// both finders locate a point where |f| is tiny.
	prop := func(a8, b8 uint8) bool {
		a := float64(a8%50) + 1 // positive leading coefficients => monotone
		b := float64(b8%50) + 1
		shift := float64(int(a8)%7 - 3)
		f := func(x float64) float64 { return a*(x-shift)*(x-shift)*(x-shift) + b*(x-shift) }
		r1, err1 := Bisect(f, -10, 10, 1e-12)
		r2, err2 := Brent(f, -10, 10, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(f(r1)) < 1e-6 && math.Abs(f(r2)) < 1e-6 &&
			almostEq(r1, shift, 1e-6) && almostEq(r2, shift, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenMinimizeQuadratic(t *testing.T) {
	min := GoldenMinimize(func(x float64) float64 { return (x - 3.25) * (x - 3.25) }, 0, 10, 1e-10)
	if !almostEq(min, 3.25, 1e-7) {
		t.Errorf("min = %v, want 3.25", min)
	}
}

func TestGoldenMinimizeEdge(t *testing.T) {
	// Monotone decreasing on the interval: minimizer is the right edge.
	min := GoldenMinimize(func(x float64) float64 { return -x }, 0, 5, 1e-9)
	if !almostEq(min, 5, 1e-6) {
		t.Errorf("min = %v, want 5", min)
	}
}

func TestGoldenMinimizeUnimodalProperty(t *testing.T) {
	prop := func(c8 uint8) bool {
		c := float64(c8) / 255 * 8 // target in [0,8]
		got := GoldenMinimize(func(x float64) float64 { return math.Abs(x - c) }, -1, 9, 1e-9)
		return almostEq(got, c, 1e-6) || math.Abs(got-c) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBrent(b *testing.B) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	for i := 0; i < b.N; i++ {
		if _, err := Brent(f, 0, 1, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
