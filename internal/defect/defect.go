// Package defect models the physical side of the experiment: how
// manufacturing defects land on chips and how each physical defect
// maps to one or more logical stuck-at faults. The paper stresses that
// its parameter n0 — the average number of *logical faults* on a
// defective chip — is not the average number of *physical defects*
// (D0·A): "In a high-density circuit, a physical defect can produce
// several logical faults."
package defect

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// CountModel selects the distribution of physical defects per chip.
type CountModel int

// Count models.
const (
	// PoissonDefects: independent defects, mean D0·A.
	PoissonDefects CountModel = iota
	// ClusteredDefects: negative-binomial defects (gamma-mixed
	// Poisson), the Stapper picture behind Eq. 3.
	ClusteredDefects
)

// String names the count model.
func (m CountModel) String() string {
	switch m {
	case PoissonDefects:
		return "poisson"
	case ClusteredDefects:
		return "clustered"
	default:
		return fmt.Sprintf("CountModel(%d)", int(m))
	}
}

// Model generates physical defects and converts them to logical faults.
type Model struct {
	// D0A is the mean number of physical defects per chip (defect
	// density times chip area).
	D0A float64
	// Count selects the per-chip defect count distribution.
	Count CountModel
	// Cluster is the negative-binomial clustering parameter (1/λ in
	// the paper's Eq. 3 notation); used only by ClusteredDefects.
	Cluster float64
	// FaultsPerDefect is the mean number of logical faults one physical
	// defect produces (>= 1); the per-defect count is shifted-Poisson
	// with this mean.
	FaultsPerDefect float64
	// Locality is the fraction of a defect's faults drawn from a
	// window of structurally nearby gates (same layout neighbourhood);
	// the remainder is uniform. In [0,1].
	Locality float64
	// Window is the gate-ID radius of the locality window; defaults to
	// 5% of the fault list when zero.
	Window int
}

// Validate checks the configuration.
func (m Model) Validate() error {
	if !(m.D0A >= 0) {
		return fmt.Errorf("defect: D0A must be >= 0, got %v", m.D0A)
	}
	if m.Count == ClusteredDefects && !(m.Cluster > 0) {
		return fmt.Errorf("defect: clustered model needs Cluster > 0, got %v", m.Cluster)
	}
	if !(m.FaultsPerDefect >= 1) {
		return fmt.Errorf("defect: FaultsPerDefect must be >= 1, got %v", m.FaultsPerDefect)
	}
	if !(m.Locality >= 0 && m.Locality <= 1) {
		return fmt.Errorf("defect: Locality must be in [0,1], got %v", m.Locality)
	}
	return nil
}

// DefectCount draws the number of physical defects on one chip.
func (m Model) DefectCount(rng *rand.Rand) int {
	if m.D0A == 0 {
		return 0
	}
	switch m.Count {
	case ClusteredDefects:
		nb := dist.NegativeBinomial{R: m.Cluster, Mu: m.D0A}
		return nb.Sample(rng)
	default:
		p := dist.Poisson{Lambda: m.D0A}
		return p.Sample(rng)
	}
}

// TheoreticalYield returns the zero-defect probability of the model.
func (m Model) TheoreticalYield() float64 {
	switch m.Count {
	case ClusteredDefects:
		nb := dist.NegativeBinomial{R: m.Cluster, Mu: m.D0A}
		return nb.PMF(0)
	default:
		return dist.Poisson{Lambda: m.D0A}.PMF(0)
	}
}

// ExpectedN0 returns the model-implied average number of logical faults
// on a *defective* chip: E[faults | defects >= 1] =
// FaultsPerDefect * E[defects | defects >= 1].
func (m Model) ExpectedN0() float64 {
	y := m.TheoreticalYield()
	if y >= 1 {
		return 1
	}
	// E[defects | >=1] = E[defects] / P(>=1).
	return m.FaultsPerDefect * m.D0A / (1 - y)
}

// CastFaults maps ndefects physical defects onto distinct logical
// faults from a universe of size total. Each defect yields a
// shifted-Poisson number of faults with mean FaultsPerDefect, placed
// near a random center (locality) or uniformly. The returned indices
// are distinct; a chip cannot carry the same stuck-at fault twice.
func (m Model) CastFaults(rng *rand.Rand, total, ndefects int) []int {
	if total <= 0 || ndefects <= 0 {
		return nil
	}
	window := m.Window
	if window <= 0 {
		window = total / 20
		if window < 4 {
			window = 4
		}
	}
	fpd := dist.ShiftedPoisson{N0: m.FaultsPerDefect}
	chosen := make(map[int]bool)
	for d := 0; d < ndefects; d++ {
		k := fpd.Sample(rng)
		center := rng.Intn(total)
		for j := 0; j < k; j++ {
			var idx int
			if rng.Float64() < m.Locality {
				idx = center + rng.Intn(2*window+1) - window
				idx = numeric.ClampInt(idx, 0, total-1)
			} else {
				idx = rng.Intn(total)
			}
			// Distinctness: probe linearly from the collision.
			for chosen[idx] {
				idx = (idx + 1) % total
				if len(chosen) >= total {
					break
				}
			}
			if len(chosen) < total {
				chosen[idx] = true
			}
		}
	}
	out := make([]int, 0, len(chosen))
	for idx := range chosen {
		out = append(out, idx)
	}
	// Map iteration order is randomized per process; sort so the same
	// seed yields the same chip byte-for-byte across runs.
	sort.Ints(out)
	return out
}

// Chip is one manufactured die: the logical faults it carries (indices
// into the lot's fault list). A fault-free chip has an empty list.
type Chip struct {
	Faults []int
}

// Defective reports whether the chip carries any fault.
func (c Chip) Defective() bool { return len(c.Faults) > 0 }

// Lot is a set of manufactured chips over a shared fault universe.
type Lot struct {
	Chips    []Chip
	Universe []fault.Fault // the fault list chip indices refer to
	Yield    float64       // achieved (empirical) yield of the lot
}

// GenerateLot manufactures n chips: physical defects per the model,
// each cast into logical faults from the universe. This is the
// substitute for a real wafer lot on the paper's Sentry tester.
func GenerateLot(m Model, universe []fault.Fault, n int, rng *rand.Rand) (Lot, error) {
	if err := m.Validate(); err != nil {
		return Lot{}, err
	}
	if n <= 0 {
		return Lot{}, fmt.Errorf("defect: lot size must be positive, got %d", n)
	}
	if len(universe) == 0 {
		return Lot{}, fmt.Errorf("defect: empty fault universe")
	}
	lot := Lot{Chips: make([]Chip, n), Universe: universe}
	good := 0
	for i := range lot.Chips {
		nd := m.DefectCount(rng)
		idxs := m.CastFaults(rng, len(universe), nd)
		lot.Chips[i] = Chip{Faults: idxs}
		if len(idxs) == 0 {
			good++
		}
	}
	lot.Yield = float64(good) / float64(n)
	return lot, nil
}

// GenerateLotFromModel manufactures chips directly from the paper's
// statistical model (yield y, shifted-Poisson fault count with mean
// n0), bypassing the physical-defect layer. Used to validate that the
// estimation pipeline recovers known ground truth.
func GenerateLotFromModel(y, n0 float64, universe []fault.Fault, n int, rng *rand.Rand) (Lot, error) {
	fc, err := dist.NewChipFaultCount(y, n0)
	if err != nil {
		return Lot{}, err
	}
	if n <= 0 {
		return Lot{}, fmt.Errorf("defect: lot size must be positive, got %d", n)
	}
	if len(universe) == 0 {
		return Lot{}, fmt.Errorf("defect: empty fault universe")
	}
	lot := Lot{Chips: make([]Chip, n), Universe: universe}
	good := 0
	for i := range lot.Chips {
		k := fc.Sample(rng)
		if k > len(universe) {
			k = len(universe)
		}
		lot.Chips[i] = Chip{Faults: sampleDistinct(rng, len(universe), k)}
		if k == 0 {
			good++
		}
	}
	lot.Yield = float64(good) / float64(n)
	return lot, nil
}

// sampleDistinct draws k distinct integers from [0, total) by partial
// Fisher-Yates on a virtual index map.
func sampleDistinct(rng *rand.Rand, total, k int) []int {
	if k <= 0 {
		return nil
	}
	swapped := make(map[int]int)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(total-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
		swapped[i] = vj
	}
	return out
}

// MeanFaultsOnDefective returns the lot's empirical n0: the average
// fault count over defective chips, or 0 for an all-good lot.
func (l Lot) MeanFaultsOnDefective() float64 {
	sum, nBad := 0, 0
	for _, c := range l.Chips {
		if c.Defective() {
			nBad++
			sum += len(c.Faults)
		}
	}
	if nBad == 0 {
		return 0
	}
	return float64(sum) / float64(nBad)
}
