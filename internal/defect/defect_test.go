package defect

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

func almostEq(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestModelValidate(t *testing.T) {
	good := Model{D0A: 2, FaultsPerDefect: 3, Locality: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []Model{
		{D0A: -1, FaultsPerDefect: 2},
		{D0A: 1, FaultsPerDefect: 0.5},
		{D0A: 1, FaultsPerDefect: 2, Locality: 1.5},
		{D0A: 1, FaultsPerDefect: 2, Count: ClusteredDefects, Cluster: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestCountModelString(t *testing.T) {
	if PoissonDefects.String() != "poisson" || ClusteredDefects.String() != "clustered" {
		t.Error("count model names")
	}
	if CountModel(7).String() != "CountModel(7)" {
		t.Error("unknown count model name")
	}
}

func TestTheoreticalYield(t *testing.T) {
	// Poisson: y = e^{-D0A}.
	m := Model{D0A: 2.659, FaultsPerDefect: 2}
	if !almostEq(m.TheoreticalYield(), math.Exp(-2.659), 1e-12) {
		t.Errorf("poisson yield = %v", m.TheoreticalYield())
	}
	// Clustered: y = (1 + D0A/r)^{-r} (negative binomial zero mass).
	mc := Model{D0A: 2, Count: ClusteredDefects, Cluster: 2, FaultsPerDefect: 2}
	want := math.Pow(1+1.0, -2.0)
	if !almostEq(mc.TheoreticalYield(), want, 1e-9) {
		t.Errorf("clustered yield = %v, want %v", mc.TheoreticalYield(), want)
	}
}

func TestDefectCountMatchesYield(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Model{D0A: 2.659, FaultsPerDefect: 2} // e^-2.659 ≈ 0.07
	const n = 100000
	zero := 0
	for i := 0; i < n; i++ {
		if m.DefectCount(rng) == 0 {
			zero++
		}
	}
	if got := float64(zero) / n; !almostEq(got, m.TheoreticalYield(), 0.05) {
		t.Errorf("empirical yield %v vs theoretical %v", got, m.TheoreticalYield())
	}
}

func TestCastFaultsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Model{D0A: 1, FaultsPerDefect: 4, Locality: 0.8, Window: 10}
	for trial := 0; trial < 200; trial++ {
		idxs := m.CastFaults(rng, 100, 3)
		seen := make(map[int]bool)
		for _, i := range idxs {
			if i < 0 || i >= 100 {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatal("duplicate fault index")
			}
			seen[i] = true
		}
	}
}

func TestCastFaultsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Model{D0A: 1, FaultsPerDefect: 2}
	if got := m.CastFaults(rng, 0, 3); got != nil {
		t.Error("empty universe should give nil")
	}
	if got := m.CastFaults(rng, 10, 0); got != nil {
		t.Error("zero defects should give nil")
	}
	// Saturation: more faults than the universe holds.
	sat := Model{D0A: 1, FaultsPerDefect: 50}
	idxs := sat.CastFaults(rng, 5, 10)
	if len(idxs) > 5 {
		t.Errorf("cast %d faults into universe of 5", len(idxs))
	}
}

func TestExpectedN0(t *testing.T) {
	// Poisson defects, mean d; E[defects | >=1] = d/(1-e^-d). With
	// FaultsPerDefect = 3 the expected n0 is 3 d/(1-e^-d).
	m := Model{D0A: 2, FaultsPerDefect: 3}
	want := 3 * 2 / (1 - math.Exp(-2))
	if !almostEq(m.ExpectedN0(), want, 1e-9) {
		t.Errorf("ExpectedN0 = %v, want %v", m.ExpectedN0(), want)
	}
}

func universeFor(t *testing.T) []fault.Fault {
	t.Helper()
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	return fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
}

func TestGenerateLotYield(t *testing.T) {
	universe := universeFor(t)
	rng := rand.New(rand.NewSource(9))
	m := Model{D0A: 2.659, FaultsPerDefect: 3.3, Locality: 0.7}
	lot, err := GenerateLot(m, universe, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lot.Yield, m.TheoreticalYield(), 0.08) {
		t.Errorf("lot yield %v vs theoretical %v", lot.Yield, m.TheoreticalYield())
	}
	// Empirical n0 should be near the model's expectation.
	if got := lot.MeanFaultsOnDefective(); !almostEq(got, m.ExpectedN0(), 0.1) {
		t.Errorf("lot n0 %v vs expected %v", got, m.ExpectedN0())
	}
}

func TestGenerateLotErrors(t *testing.T) {
	universe := universeFor(t)
	rng := rand.New(rand.NewSource(1))
	m := Model{D0A: 1, FaultsPerDefect: 2}
	if _, err := GenerateLot(m, universe, 0, rng); err == nil {
		t.Error("zero chips should error")
	}
	if _, err := GenerateLot(m, nil, 10, rng); err == nil {
		t.Error("empty universe should error")
	}
	if _, err := GenerateLot(Model{D0A: -1, FaultsPerDefect: 2}, universe, 10, rng); err == nil {
		t.Error("invalid model should error")
	}
}

func TestGenerateLotFromModel(t *testing.T) {
	universe := universeFor(t)
	rng := rand.New(rand.NewSource(6))
	lot, err := GenerateLotFromModel(0.07, 8.8, universe, 30000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lot.Yield, 0.07, 0.08) {
		t.Errorf("lot yield %v", lot.Yield)
	}
	if got := lot.MeanFaultsOnDefective(); !almostEq(got, 8.8, 0.03) {
		t.Errorf("lot n0 %v, want 8.8", got)
	}
	// All fault indices valid and distinct per chip.
	for _, chip := range lot.Chips[:100] {
		seen := make(map[int]bool)
		for _, fi := range chip.Faults {
			if fi < 0 || fi >= len(universe) {
				t.Fatal("fault index out of range")
			}
			if seen[fi] {
				t.Fatal("duplicate fault on chip")
			}
			seen[fi] = true
		}
	}
}

func TestGenerateLotFromModelErrors(t *testing.T) {
	universe := universeFor(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateLotFromModel(2, 8, universe, 10, rng); err == nil {
		t.Error("invalid yield should error")
	}
	if _, err := GenerateLotFromModel(0.5, 8, universe, 0, rng); err == nil {
		t.Error("zero chips should error")
	}
	if _, err := GenerateLotFromModel(0.5, 8, nil, 10, rng); err == nil {
		t.Error("empty universe should error")
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(20)
		out := sampleDistinct(rng, 20, k)
		if len(out) != k {
			t.Fatalf("got %d, want %d", len(out), k)
		}
		seen := make(map[int]bool)
		for _, v := range out {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("bad sample %v", out)
			}
			seen[v] = true
		}
	}
	if sampleDistinct(rng, 10, 0) != nil {
		t.Error("k=0 should be nil")
	}
}

func TestMeanFaultsOnDefectiveEmpty(t *testing.T) {
	lot := Lot{Chips: []Chip{{}, {}}}
	if lot.MeanFaultsOnDefective() != 0 {
		t.Error("all-good lot should report 0")
	}
}

func TestClusteredLotOverdispersion(t *testing.T) {
	// Clustered defects raise the variance of per-chip defect counts
	// relative to Poisson at the same mean, hence a higher yield for
	// the same D0A (Stapper's point behind Eq. 3).
	universe := universeFor(t)
	rngA := rand.New(rand.NewSource(10))
	rngB := rand.New(rand.NewSource(10))
	poisson := Model{D0A: 2, FaultsPerDefect: 2}
	clustered := Model{D0A: 2, Count: ClusteredDefects, Cluster: 0.5, FaultsPerDefect: 2}
	lotP, err := GenerateLot(poisson, universe, 20000, rngA)
	if err != nil {
		t.Fatal(err)
	}
	lotC, err := GenerateLot(clustered, universe, 20000, rngB)
	if err != nil {
		t.Fatal(err)
	}
	if lotC.Yield <= lotP.Yield {
		t.Errorf("clustered yield %v should exceed poisson %v at same D0A", lotC.Yield, lotP.Yield)
	}
}

func BenchmarkGenerateLot(b *testing.B) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		b.Fatal(err)
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	m := Model{D0A: 2.659, FaultsPerDefect: 3.3, Locality: 0.7}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateLot(m, universe, 277, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCastFaultsDeterministic: the same seed must produce the same
// fault list byte-for-byte, including order — CastFaults collects from
// a map, whose iteration order Go randomizes per process, so the
// result must be sorted before returning. Without that, every
// physical-lot experiment differs between runs of the same seed.
func TestCastFaultsDeterministic(t *testing.T) {
	m := Model{D0A: 2, FaultsPerDefect: 3, Locality: 0.6, Window: 8}
	rng1 := rand.New(rand.NewSource(42))
	rng2 := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		a := m.CastFaults(rng1, 500, 4)
		b := m.CastFaults(rng2, 500, 4)
		if len(a) != len(b) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: order diverged at %d: %v vs %v", trial, i, a, b)
			}
		}
		if !sort.IntsAreSorted(a) {
			t.Fatalf("trial %d: result not sorted: %v", trial, a)
		}
	}
}
