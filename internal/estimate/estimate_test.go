package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func almostEq(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// syntheticCurve samples the exact Eq. 9 fallout of a model at the
// given coverages (a noise-free lot of infinite size).
func syntheticCurve(m core.Model, coverages []float64) Curve {
	c := make(Curve, len(coverages))
	for i, f := range coverages {
		c[i] = FalloutPoint{F: f, Fail: m.Fallout(f)}
	}
	return c
}

func TestCurveValidate(t *testing.T) {
	good := Curve{{0.1, 0.2}, {0.2, 0.4}, {0.5, 0.4}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	cases := []Curve{
		{},                              // empty
		{{-0.1, 0.5}},                   // F out of range
		{{0.1, 1.5}},                    // Fail out of range
		{{0.5, 0.2}, {0.4, 0.3}},        // F decreasing
		{{0.1, 0.5}, {0.2, 0.3}},        // Fail decreasing
		{{0.1, 0.5}, {0.2, math.NaN()}}, // NaN
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid curve accepted", i)
		}
	}
}

func TestCurveAccessors(t *testing.T) {
	c := Curve{{0.1, 0.2}, {0.3, 0.4}}
	if f := c.Coverages(); f[0] != 0.1 || f[1] != 0.3 {
		t.Error("Coverages wrong")
	}
	if fr := c.Fractions(); fr[0] != 0.2 || fr[1] != 0.4 {
		t.Error("Fractions wrong")
	}
}

func TestFitN0RecoversExact(t *testing.T) {
	// Noise-free curve from a known model: the fit must recover n0
	// almost exactly.
	for _, truth := range []struct{ y, n0 float64 }{
		{0.07, 8.8}, {0.2, 10}, {0.8, 2}, {0.5, 1.5}, {0.3, 25},
	} {
		m := core.Model{Y: truth.y, N0: truth.n0}
		c := syntheticCurve(m, []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8})
		r, err := FitN0(c, truth.y)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(r.N0, truth.n0, 0.01) {
			t.Errorf("y=%v n0=%v: fitted %v", truth.y, truth.n0, r.N0)
		}
		if r.Method != "curve-fit" {
			t.Error("method label wrong")
		}
	}
}

func TestFitN0PaperTable1(t *testing.T) {
	// Fig. 5: "The experimental points closely match the curve
	// corresponding to n0 = 8." Our least-squares fit of the same ten
	// points should land near 8 (the paper picks from an integer
	// family; allow ±1).
	r, err := FitN0(PaperTable1.Curve, PaperTable1.Yield)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.N0-8) > 1 {
		t.Errorf("fitted n0 = %v, paper says ≈8", r.N0)
	}
}

func TestFitN0RejectsN0Family34(t *testing.T) {
	// §7: "n0 = 3 or 4 produces a P(f) versus f curve that disagrees
	// significantly with the experimental result." The SSE at n0=3,4
	// must be far worse than at the fitted optimum.
	r, err := FitN0(PaperTable1.Curve, PaperTable1.Yield)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := PaperTable1.Curve.Coverages(), PaperTable1.Curve.Fractions()
	for _, bad := range []float64{3, 4} {
		m := core.Model{Y: PaperTable1.Yield, N0: bad}
		var sse float64
		for i := range xs {
			d := ys[i] - m.Fallout(xs[i])
			sse += d * d
		}
		if sse < 4*r.SSE {
			t.Errorf("n0=%v SSE %v should be much worse than fit SSE %v", bad, sse, r.SSE)
		}
	}
}

func TestFitN0Validation(t *testing.T) {
	c := Curve{{0.1, 0.3}}
	if _, err := FitN0(c, 0); err == nil {
		t.Error("yield 0 should error")
	}
	if _, err := FitN0(c, 1); err == nil {
		t.Error("yield 1 should error")
	}
	if _, err := FitN0(Curve{}, 0.5); err == nil {
		t.Error("empty curve should error")
	}
}

func TestSlopeN0PaperNumbers(t *testing.T) {
	// §7: using only the first Table 1 row, P'(0) = 0.41/0.05 = 8.2 and
	// n0 = 8.2/0.93 = 8.8.
	r, err := SlopeN0(PaperTable1.Curve[:1], PaperTable1.Yield, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.N0, 8.8, 0.02) {
		t.Errorf("slope n0 = %v, paper says 8.8", r.N0)
	}
	if r.Method != "slope" {
		t.Error("method label wrong")
	}
}

func TestSlopeN0UnknownYieldIsPessimistic(t *testing.T) {
	// §5: with unknown yield, n0 ≈ P'(0) underestimates n0, which is
	// "pessimistic (or safe)": lower n0 demands higher coverage.
	withY, err := SlopeN0(PaperTable1.Curve[:1], 0.07, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	withoutY, err := SlopeN0(PaperTable1.Curve[:1], 0, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if !(withoutY.N0 < withY.N0) {
		t.Errorf("P'(0)=%v should underestimate n0=%v", withoutY.N0, withY.N0)
	}
	m1 := core.Model{Y: 0.07, N0: withoutY.N0}
	m2 := core.Model{Y: 0.07, N0: withY.N0}
	f1, _ := m1.RequiredCoverage(0.01)
	f2, _ := m2.RequiredCoverage(0.01)
	if !(f1 >= f2) {
		t.Errorf("pessimistic n0 should demand more coverage: %v vs %v", f1, f2)
	}
}

func TestSlopeN0Validation(t *testing.T) {
	c := Curve{{0.05, 0.41}}
	if _, err := SlopeN0(c, -0.1, 0.1); err == nil {
		t.Error("negative yield should error")
	}
	if _, err := SlopeN0(c, 0.5, 0); err == nil {
		t.Error("maxF 0 should error")
	}
	if _, err := SlopeN0(c, 0.5, 0.01); err == nil {
		t.Error("no points under maxF should error")
	}
}

func TestSlopeBiasDirection(t *testing.T) {
	// The slope method evaluated away from the true origin slope uses
	// secants of a concave curve, so it systematically underestimates
	// n0; the curve fit does not. Verified on exact curves.
	m := core.Model{Y: 0.2, N0: 12}
	c := syntheticCurve(m, []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.5})
	slope, err := SlopeN0(c, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !(slope.N0 < 12) {
		t.Errorf("secant slope estimate %v should underestimate 12", slope.N0)
	}
	fit, err := FitN0(c, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.N0-12) > 0.05 {
		t.Errorf("curve fit %v should recover 12", fit.N0)
	}
}

func TestFitN0AndYieldJoint(t *testing.T) {
	truth := core.Model{Y: 0.15, N0: 7}
	// Curve must extend far enough to see the 1-y plateau.
	c := syntheticCurve(truth, []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.85, 0.95, 1})
	n0, y, err := FitN0AndYield(c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(y, 0.15, 0.02) {
		t.Errorf("joint yield = %v, want 0.15", y)
	}
	if !almostEq(n0, 7, 0.3) {
		t.Errorf("joint n0 = %v, want 7", n0)
	}
}

func TestCurveFromFirstFails(t *testing.T) {
	nan := math.NaN()
	firstFail := []float64{0.05, 0.05, 0.10, nan, 0.30}
	coverages := []float64{0.05, 0.10, 0.30, 0.50}
	c := CurveFromFirstFails(firstFail, coverages)
	want := []float64{2.0 / 5, 3.0 / 5, 4.0 / 5, 4.0 / 5}
	for i := range want {
		if !almostEq(c[i].Fail, want[i], 1e-12) {
			t.Errorf("point %d: %v, want %v", i, c[i].Fail, want[i])
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("generated curve invalid: %v", err)
	}
}

func TestFitRoundTripProperty(t *testing.T) {
	// Fit(curve(model)) == model parameters, across the regime.
	prop := func(ry, rn uint8) bool {
		y := 0.05 + float64(ry)/256*0.85
		n0 := 1.2 + float64(rn)/8 // 1.2 .. ~33
		m := core.Model{Y: y, N0: n0}
		c := syntheticCurve(m, []float64{0.03, 0.08, 0.15, 0.25, 0.4, 0.6, 0.8})
		r, err := FitN0(c, y)
		return err == nil && almostEq(r.N0, n0, 0.02)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBootstrapBracketsTruth(t *testing.T) {
	// Simulate a finite lot from a known model, bootstrap the fit, and
	// check the 95% interval brackets the truth.
	rng := rand.New(rand.NewSource(7))
	truth := core.Model{Y: 0.07, N0: 8.8}
	coverages := []float64{0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65}
	fc := truth.FaultCount()
	firstFail := make([]float64, 400)
	for i := range firstFail {
		n := fc.Sample(rng)
		firstFail[i] = firstFailCoverage(rng, n, coverages)
	}
	qs, err := Bootstrap(firstFail, coverages, 0.07, 200, []float64{0.025, 0.975}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(qs[0] < 8.8 && 8.8 < qs[1]) {
		t.Errorf("95%% interval [%v, %v] misses truth 8.8", qs[0], qs[1])
	}
	if qs[1]-qs[0] > 6 {
		t.Errorf("interval [%v, %v] implausibly wide", qs[0], qs[1])
	}
}

// firstFailCoverage simulates testing one chip with n faults against a
// pattern set with the given cumulative-coverage checkpoints, assuming
// each fault is detected independently at coverage f with probability f
// (the Eq. 5 escape model). Returns NaN if the chip passes everything.
func firstFailCoverage(rng *rand.Rand, n int, coverages []float64) float64 {
	if n == 0 {
		return math.NaN()
	}
	prev := 0.0
	for _, f := range coverages {
		// Probability the chip survives up to f given it survived prev:
		// [(1-f)/(1-prev)]^n.
		pSurvive := math.Pow((1-f)/(1-prev), float64(n))
		if rng.Float64() > pSurvive {
			return f
		}
		prev = f
	}
	return math.NaN()
}

func TestBootstrapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Bootstrap(nil, nil, 0.5, 10, []float64{0.5}, rng); err == nil {
		t.Error("empty chips should error")
	}
	if _, err := Bootstrap([]float64{0.1}, []float64{0.1}, 0.5, 0, []float64{0.5}, rng); err == nil {
		t.Error("zero rounds should error")
	}
}

func BenchmarkFitN0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FitN0(PaperTable1.Curve, PaperTable1.Yield); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlopeN0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SlopeN0(PaperTable1.Curve, PaperTable1.Yield, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}
