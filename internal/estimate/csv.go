package estimate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCSV reads a fallout curve from "coverage,fraction_failed" lines.
// Blank lines and lines starting with '#' are skipped. The parsed
// curve is validated (cumulative, in range) before being returned.
func ParseCSV(r io.Reader) (Curve, error) {
	var curve Curve
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("estimate: line %d: want coverage,fraction", line)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("estimate: line %d: coverage: %w", line, err)
		}
		fail, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("estimate: line %d: fraction: %w", line, err)
		}
		curve = append(curve, FalloutPoint{F: f, Fail: fail})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := curve.Validate(); err != nil {
		return nil, err
	}
	return curve, nil
}

// WriteCSV writes the curve in the format ParseCSV reads.
func WriteCSV(w io.Writer, c Curve) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# coverage,fraction_failed")
	for _, p := range c {
		fmt.Fprintf(bw, "%g,%g\n", p.F, p.Fail)
	}
	return bw.Flush()
}
