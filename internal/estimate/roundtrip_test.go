// Cross-package regression: the full §5 estimation pipeline recovers
// known ground truth. defect.GenerateLotFromModel manufactures a lot
// straight from the Eq. 1 law (via dist.ChipFaultCount), the lot is
// reduced to a fallout curve, and FitN0 must round-trip n0 — the
// paper's Fig. 5 fit with the answer known in advance.
package estimate_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/estimate"
	"repro/internal/fault"
)

// falloutFromLot reduces a lot to a fallout curve under an idealised
// coverage ramp: the test covering a fraction f of the universe detects
// the first ⌊f·N⌋ fault indices. Because GenerateLotFromModel places
// faults uniformly, which indices are "first" is immaterial; a chip has
// failed by coverage f iff it carries a fault with index below ⌊f·N⌋.
func falloutFromLot(lot defect.Lot, steps int) estimate.Curve {
	total := len(lot.Universe)
	curve := make(estimate.Curve, 0, steps)
	for s := 1; s <= steps; s++ {
		f := float64(s) / float64(steps)
		covered := int(f * float64(total))
		failed := 0
		for _, chip := range lot.Chips {
			for _, idx := range chip.Faults {
				if idx < covered {
					failed++
					break
				}
			}
		}
		curve = append(curve, estimate.FalloutPoint{
			F:    float64(covered) / float64(total),
			Fail: float64(failed) / float64(len(lot.Chips)),
		})
	}
	return curve
}

// TestFitN0RoundTrip: ground truth (y=0.3, n0=8) in, n0 ≈ 8 out,
// under a fixed seed. Guards the dist → defect → estimate chain
// end to end.
func TestFitN0RoundTrip(t *testing.T) {
	const (
		y     = 0.3
		n0    = 8.0
		chips = 6000
	)
	universe := make([]fault.Fault, 4000)
	rng := rand.New(rand.NewSource(8152))
	lot, err := defect.GenerateLotFromModel(y, n0, universe, chips, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the lot's empirical yield and per-defective fault mean
	// must be near the generating parameters before fitting anything.
	if math.Abs(lot.Yield-y) > 0.02 {
		t.Fatalf("lot yield %v far from ground truth %v", lot.Yield, y)
	}
	if emp := lot.MeanFaultsOnDefective(); math.Abs(emp-n0) > 0.2 {
		t.Fatalf("lot mean faults on defective %v far from %v", emp, n0)
	}

	curve := falloutFromLot(lot, 40)
	res, err := estimate.FitN0(curve, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.N0-n0) > 0.5 {
		t.Errorf("FitN0 recovered n0 = %v, ground truth %v (SSE %v)", res.N0, n0, res.SSE)
	}

	// The joint fit must also locate the yield from the curve plateau.
	n0Joint, yJoint, err := estimate.FitN0AndYield(curve)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(yJoint-y) > 0.03 {
		t.Errorf("joint fit yield %v, ground truth %v", yJoint, y)
	}
	if math.Abs(n0Joint-n0) > 1.0 {
		t.Errorf("joint fit n0 %v, ground truth %v", n0Joint, n0)
	}
}

// TestFitN0RoundTripLowYield repeats the round-trip in the paper's §7
// regime (y=0.07, n0=8), where almost every chip is defective and the
// fallout curve rises steeply.
func TestFitN0RoundTripLowYield(t *testing.T) {
	universe := make([]fault.Fault, 4000)
	rng := rand.New(rand.NewSource(44))
	lot, err := defect.GenerateLotFromModel(0.07, 8, universe, 6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := estimate.FitN0(falloutFromLot(lot, 40), 0.07)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.N0-8) > 0.5 {
		t.Errorf("FitN0 recovered n0 = %v, ground truth 8", res.N0)
	}
}
