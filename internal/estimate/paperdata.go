package estimate

// PaperTable1 is Table 1 of the paper verbatim: the chip-test result
// for the ~25,000-transistor LSI circuit, 277 chips, yield ≈ 0.07.
// Each row gives the fault coverage reached by the pattern prefix and
// the cumulative number (and fraction) of chips that had failed by
// then. The fractions are the paper's rounded values; the counts are
// exact.
var PaperTable1 = struct {
	TotalChips int
	Yield      float64
	Curve      Curve
	Counts     []int
}{
	TotalChips: 277,
	Yield:      0.07,
	Curve: Curve{
		{F: 0.05, Fail: 0.41},
		{F: 0.08, Fail: 0.48},
		{F: 0.10, Fail: 0.52},
		{F: 0.15, Fail: 0.67},
		{F: 0.20, Fail: 0.75},
		{F: 0.30, Fail: 0.82},
		{F: 0.36, Fail: 0.87},
		{F: 0.45, Fail: 0.91},
		{F: 0.50, Fail: 0.92},
		{F: 0.65, Fail: 0.93},
	},
	Counts: []int{113, 134, 144, 186, 209, 226, 242, 251, 256, 257},
}
