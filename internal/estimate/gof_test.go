package estimate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// simulateLotCounts draws a lot from the model and returns cumulative
// first-fail counts at the checkpoints, using the Eq. 5 escape model.
func simulateLotCounts(m core.Model, coverages []float64, total int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	fc := m.FaultCount()
	counts := make([]int, len(coverages))
	for chip := 0; chip < total; chip++ {
		n := fc.Sample(rng)
		ff := firstFailCoverage(rng, n, coverages)
		for i, f := range coverages {
			if !math.IsNaN(ff) && ff <= f {
				counts[i]++
			}
		}
	}
	return counts
}

func TestGoodnessOfFitAcceptsTrueModel(t *testing.T) {
	m := core.Model{Y: 0.07, N0: 8.8}
	coverages := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65}
	counts := simulateLotCounts(m, coverages, 1000, 3)
	gof, err := GoodnessOfFit(m, coverages, counts, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.01 {
		t.Errorf("true model rejected: chi2=%v df=%d p=%v", gof.ChiSquare, gof.DF, gof.PValue)
	}
	if gof.Bins < 2 {
		t.Error("too few bins")
	}
}

func TestGoodnessOfFitRejectsWrongModel(t *testing.T) {
	truth := core.Model{Y: 0.07, N0: 8.8}
	wrong := core.Model{Y: 0.07, N0: 2}
	coverages := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65}
	counts := simulateLotCounts(truth, coverages, 1000, 3)
	gof, err := GoodnessOfFit(wrong, coverages, counts, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue > 1e-4 {
		t.Errorf("wrong model accepted: p=%v", gof.PValue)
	}
}

func TestGoodnessOfFitPaperData(t *testing.T) {
	// The paper's fitted n0 ≈ 8 curve should be a plausible fit to its
	// own Table 1 counts; n0 = 3 should be strongly rejected (§7's
	// argument, quantified).
	m8 := core.Model{Y: 0.07, N0: 8.66}
	coverages := PaperTable1.Curve.Coverages()
	gof8, err := GoodnessOfFit(m8, coverages, PaperTable1.Counts, PaperTable1.TotalChips, 1)
	if err != nil {
		t.Fatal(err)
	}
	m3 := core.Model{Y: 0.07, N0: 3}
	gof3, err := GoodnessOfFit(m3, coverages, PaperTable1.Counts, PaperTable1.TotalChips, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gof3.PValue >= gof8.PValue {
		t.Errorf("n0=3 (p=%v) should fit far worse than n0=8.66 (p=%v)", gof3.PValue, gof8.PValue)
	}
	if gof3.PValue > 1e-6 {
		t.Errorf("n0=3 should be decisively rejected, p=%v", gof3.PValue)
	}
}

func TestGoodnessOfFitValidation(t *testing.T) {
	m := core.Model{Y: 0.5, N0: 5}
	if _, err := GoodnessOfFit(m, []float64{0.1}, []int{5}, 10, 1); err == nil {
		t.Error("single checkpoint should error")
	}
	if _, err := GoodnessOfFit(m, []float64{0.1, 0.2}, []int{5}, 10, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := GoodnessOfFit(m, []float64{0.2, 0.1}, []int{3, 5}, 10, 1); err == nil {
		t.Error("non-cumulative coverage should error")
	}
	if _, err := GoodnessOfFit(m, []float64{0.1, 0.2}, []int{5, 3}, 10, 1); err == nil {
		t.Error("non-cumulative counts should error")
	}
	if _, err := GoodnessOfFit(m, []float64{0.1, 0.2}, []int{3, 5}, 0, 1); err == nil {
		t.Error("zero chips should error")
	}
}

func TestMergeBins(t *testing.T) {
	obs := []float64{1, 2, 3, 50}
	exp := []float64{1, 2, 3, 50}
	o, e := mergeBins(obs, exp, 5)
	if len(o) != len(e) {
		t.Fatal("length mismatch")
	}
	for _, v := range e {
		if v < 5 {
			t.Errorf("bin expectation %v below minimum", v)
		}
	}
	// Mass preserved.
	var so, se float64
	for i := range o {
		so += o[i]
		se += e[i]
	}
	if so != 56 || se != 56 {
		t.Errorf("mass changed: %v %v", so, se)
	}
	// Trailing low bin merges leftward.
	o2, e2 := mergeBins([]float64{50, 1}, []float64{50, 1}, 5)
	if len(e2) != 1 || e2[0] != 51 || o2[0] != 51 {
		t.Errorf("trailing merge wrong: %v %v", o2, e2)
	}
}
