package estimate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/numeric"
)

// GoF reports a chi-square goodness-of-fit test of the model against
// binned lot-fallout counts.
type GoF struct {
	ChiSquare float64
	DF        int
	PValue    float64
	// Bins after merging low-expectation neighbours.
	Bins int
}

// GoodnessOfFit tests whether the fitted model's fallout P(f) is
// consistent with the observed cumulative failure counts: the lot of
// `total` chips is binned by first-fail coverage interval (counts[i]
// chips first failed in (coverage[i-1], coverage[i]], with a final
// implicit never-failed bin), expected bin masses come from Eq. 9, and
// adjacent bins are merged until every expected count is at least 5
// (the usual chi-square validity rule). fittedParams is the number of
// model parameters estimated from this same data (1 when only n0 was
// fitted, 2 for a joint yield+n0 fit); it reduces the degrees of
// freedom.
func GoodnessOfFit(m core.Model, coverages []float64, cumCounts []int, total, fittedParams int) (GoF, error) {
	if len(coverages) != len(cumCounts) || len(coverages) < 2 {
		return GoF{}, fmt.Errorf("estimate: need >= 2 matched checkpoints")
	}
	if total <= 0 {
		return GoF{}, fmt.Errorf("estimate: total chips must be positive")
	}
	prevCov, prevCount := 0.0, 0
	var observed []float64
	var expected []float64
	for i := range coverages {
		f := coverages[i]
		if f < prevCov || cumCounts[i] < prevCount || cumCounts[i] > total {
			return GoF{}, fmt.Errorf("estimate: checkpoints not cumulative at %d", i)
		}
		observed = append(observed, float64(cumCounts[i]-prevCount))
		expected = append(expected, float64(total)*(m.Fallout(f)-m.Fallout(prevCov)))
		prevCov, prevCount = f, cumCounts[i]
	}
	// Final bin: chips that never failed (or failed beyond the last
	// checkpoint).
	observed = append(observed, float64(total-prevCount))
	expected = append(expected, float64(total)*(1-m.Fallout(prevCov)))

	// Merge adjacent bins until all expected counts reach 5.
	obs, exp := mergeBins(observed, expected, 5)
	if len(obs) < 2 {
		return GoF{}, fmt.Errorf("estimate: too few usable bins after merging")
	}
	var chi numeric.KahanSum
	for i := range obs {
		d := obs[i] - exp[i]
		chi.Add(d * d / exp[i])
	}
	df := len(obs) - 1 - fittedParams
	if df < 1 {
		df = 1
	}
	return GoF{
		ChiSquare: chi.Sum(),
		DF:        df,
		PValue:    numeric.ChiSquareSurvival(chi.Sum(), df),
		Bins:      len(obs),
	}, nil
}

// mergeBins greedily merges each low-expectation bin into its right
// neighbour (the last bin merges leftward).
func mergeBins(obs, exp []float64, minExp float64) (o, e []float64) {
	o = append([]float64(nil), obs...)
	e = append([]float64(nil), exp...)
	for i := 0; i < len(e); {
		if e[i] >= minExp || len(e) <= 1 {
			i++
			continue
		}
		j := i + 1
		if j >= len(e) {
			j = i - 1
		}
		e[j] += e[i]
		o[j] += o[i]
		e = append(e[:i], e[i+1:]...)
		o = append(o[:i], o[i+1:]...)
		if j < i {
			i = j
		}
	}
	return o, e
}
