package estimate

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestParseCSV(t *testing.T) {
	src := `# header comment
0.05, 0.41

0.10,0.52
0.65,0.93
`
	curve, err := ParseCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("points %d", len(curve))
	}
	if curve[0].F != 0.05 || curve[0].Fail != 0.41 {
		t.Errorf("first point %+v", curve[0])
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"0.1;0.2\n",        // wrong delimiter
		"abc,0.2\n",        // bad coverage
		"0.1,xyz\n",        // bad fraction
		"0.5,0.2\n0.4,0.3", // non-cumulative coverage
		"0.1,0.5\n0.2,0.4", // non-cumulative fraction
		"1.5,0.5\n2.0,0.6", // out of range
		"",                 // empty => invalid curve
	}
	for i, src := range cases {
		if _, err := ParseCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, PaperTable1.Curve); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(PaperTable1.Curve) {
		t.Fatalf("round trip lost points: %d", len(back))
	}
	for i := range back {
		if back[i] != PaperTable1.Curve[i] {
			t.Errorf("point %d changed: %+v vs %+v", i, back[i], PaperTable1.Curve[i])
		}
	}
}

// TestParseCSVErrorChainsCause pins the wrap discipline: a malformed
// number reports the strconv cause through the chain (%w), not a
// flattened copy of its message.
func TestParseCSVErrorChainsCause(t *testing.T) {
	_, err := ParseCSV(strings.NewReader("abc,0.2\n"))
	if !errors.Is(err, strconv.ErrSyntax) {
		t.Errorf("err = %v, want strconv.ErrSyntax in chain", err)
	}
}
