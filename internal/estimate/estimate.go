// Package estimate implements §5 of the paper: determining the model
// parameter n0 (average number of faults on a defective chip) from a
// production-lot experiment. The input is a fallout curve — pairs of
// (cumulative fault coverage, cumulative fraction of chips failed) —
// obtained by testing chips with an ordered pattern set whose coverage
// ramp is known from fault simulation.
//
// Two estimators are provided, matching the paper:
//
//   - FitN0: least-squares fit of the theoretical fallout P(f) (Eq. 9)
//     over an n0 grid, refined by golden-section search (the "family of
//     curves" method of Fig. 5);
//   - SlopeN0: the origin-slope method of Eq. 10, P'(0) = (1-y) n0,
//     using the first few fallout points.
//
// A bootstrap routine quantifies the sampling uncertainty of the fit.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/numeric"
)

// FalloutPoint is one observation from the lot experiment: after
// applying patterns reaching cumulative coverage F, a cumulative
// fraction Fail of the tested chips had failed.
type FalloutPoint struct {
	F    float64 // cumulative single-stuck-at fault coverage, in [0,1]
	Fail float64 // cumulative fraction of chips failed, in [0,1]
}

// Curve is an ordered fallout curve.
type Curve []FalloutPoint

// Validate checks that the curve is non-empty, within bounds, and
// non-decreasing in both coordinates (cumulative quantities).
func (c Curve) Validate() error {
	if len(c) == 0 {
		return errors.New("estimate: empty fallout curve")
	}
	prev := FalloutPoint{F: -1, Fail: -1}
	for i, p := range c {
		if !(p.F >= 0 && p.F <= 1) || !(p.Fail >= 0 && p.Fail <= 1) {
			return fmt.Errorf("estimate: point %d out of range: %+v", i, p)
		}
		if p.F < prev.F || p.Fail < prev.Fail-1e-12 {
			return fmt.Errorf("estimate: curve not cumulative at point %d: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	return nil
}

// Coverages returns the coverage coordinates of the curve.
func (c Curve) Coverages() []float64 {
	out := make([]float64, len(c))
	for i, p := range c {
		out[i] = p.F
	}
	return out
}

// Fractions returns the cumulative failed fractions of the curve.
func (c Curve) Fractions() []float64 {
	out := make([]float64, len(c))
	for i, p := range c {
		out[i] = p.Fail
	}
	return out
}

// Result reports an n0 estimate.
type Result struct {
	N0     float64 // estimated mean faults per defective chip
	SSE    float64 // sum of squared errors of the fitted curve (FitN0)
	Method string  // "curve-fit" or "slope"
}

// n0SearchMax bounds the n0 grid; defective LSI chips in the paper's
// regime carry at most a few tens of faults on average.
const n0SearchMax = 100

// FitN0 estimates n0 by fitting Eq. 9 to the fallout curve for a known
// yield y, exactly as Fig. 5 overlays the data on the P(f) family. The
// fit minimizes the sum of squared vertical distances.
func FitN0(c Curve, y float64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if !(y > 0 && y < 1) {
		return Result{}, fmt.Errorf("estimate: yield must be in (0,1), got %v", y)
	}
	xs, ys := c.Coverages(), c.Fractions()
	sse := func(n0 float64) float64 {
		m := core.Model{Y: y, N0: n0}
		return numeric.SSE(xs, ys, m.Fallout)
	}
	coarse := numeric.GridMinimize(sse, 1, n0SearchMax, 400)
	lo := math.Max(1, coarse-1)
	hi := math.Min(n0SearchMax, coarse+1)
	n0 := numeric.GoldenMinimize(sse, lo, hi, 1e-8)
	return Result{N0: n0, SSE: sse(n0), Method: "curve-fit"}, nil
}

// FitN0AndYield jointly estimates (y, n0) when the process yield is not
// known independently. The paper notes P(f) → 1-y as f → 1, so the
// yield is identified by the curve's plateau; the joint fit performs a
// nested minimization: for each candidate y, fit n0, and pick the pair
// with the smallest SSE.
func FitN0AndYield(c Curve) (n0, y float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	outer := func(yc float64) float64 {
		r, err := FitN0(c, yc)
		if err != nil {
			return math.Inf(1)
		}
		return r.SSE
	}
	coarseY := numeric.GridMinimize(outer, 0.005, 0.995, 200)
	yBest := numeric.GoldenMinimize(outer, math.Max(0.005, coarseY-0.01), math.Min(0.995, coarseY+0.01), 1e-6)
	r, err := FitN0(c, yBest)
	if err != nil {
		return 0, 0, err
	}
	return r.N0, yBest, nil
}

// SlopeN0 estimates n0 from the origin slope (Eq. 10): a line through
// the origin is fitted to the fallout points with coverage at most
// maxF, and n0 = slope / (1-y). The paper uses the first table row
// (f=0.05, fail=0.41) giving slope 8.2 and n0 = 8.8.
//
// If y is not known, pass y = 0: the paper points out that P'(0)
// itself is then a safe (pessimistic) stand-in for n0.
func SlopeN0(c Curve, y, maxF float64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if !(y >= 0 && y < 1) {
		return Result{}, fmt.Errorf("estimate: yield must be in [0,1), got %v", y)
	}
	if maxF <= 0 {
		return Result{}, fmt.Errorf("estimate: maxF must be positive, got %v", maxF)
	}
	var xs, ys []float64
	for _, p := range c {
		if p.F > 0 && p.F <= maxF {
			xs = append(xs, p.F)
			ys = append(ys, p.Fail)
		}
	}
	if len(xs) == 0 {
		return Result{}, fmt.Errorf("estimate: no fallout points with coverage in (0, %v]", maxF)
	}
	slope, err := numeric.LinearFitThroughOrigin(xs, ys)
	if err != nil {
		return Result{}, err
	}
	return Result{N0: slope / (1 - y), Method: "slope"}, nil
}

// Bootstrap resamples per-chip first-fail outcomes and refits n0,
// returning the requested quantiles of the estimate (e.g. 0.025, 0.975
// for a 95% interval). chips is the per-chip outcome list used to build
// the curve: for each chip, the coverage at which it first failed, or
// NaN if it passed all patterns. rounds controls the number of
// bootstrap replicates.
func Bootstrap(chips []float64, coverages []float64, y float64, rounds int, quantiles []float64, rng *rand.Rand) ([]float64, error) {
	if len(chips) == 0 {
		return nil, errors.New("estimate: no chips to bootstrap")
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("estimate: rounds must be positive, got %d", rounds)
	}
	estimates := make([]float64, 0, rounds)
	resampled := make([]float64, len(chips))
	for b := 0; b < rounds; b++ {
		for i := range resampled {
			resampled[i] = chips[rng.Intn(len(chips))]
		}
		curve := CurveFromFirstFails(resampled, coverages)
		r, err := FitN0(curve, y)
		if err != nil {
			continue
		}
		estimates = append(estimates, r.N0)
	}
	if len(estimates) == 0 {
		return nil, errors.New("estimate: every bootstrap replicate failed to fit")
	}
	sort.Float64s(estimates)
	out := make([]float64, len(quantiles))
	for i, q := range quantiles {
		idx := int(q * float64(len(estimates)-1))
		out[i] = estimates[numeric.ClampInt(idx, 0, len(estimates)-1)]
	}
	return out, nil
}

// CurveFromFirstFails builds the cumulative fallout curve from per-chip
// first-fail coverages. coverages is the ordered cumulative-coverage
// checkpoint list of the pattern set; a chip with first-fail coverage c
// counts as failed at every checkpoint >= c. Chips with NaN (never
// failed) count in the denominator only.
func CurveFromFirstFails(firstFail []float64, coverages []float64) Curve {
	total := len(firstFail)
	curve := make(Curve, len(coverages))
	for i, f := range coverages {
		failed := 0
		for _, ff := range firstFail {
			if !math.IsNaN(ff) && ff <= f {
				failed++
			}
		}
		curve[i] = FalloutPoint{F: f, Fail: float64(failed) / float64(total)}
	}
	return curve
}
