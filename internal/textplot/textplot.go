// Package textplot renders line/scatter plots as ASCII for terminals:
// enough to regenerate the shapes of the paper's figures (including the
// log-scale reject-rate axis of Fig. 1 and Fig. 6) without any graphics
// dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted data set.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // glyph used for this series; 0 picks automatically
	// YLo/YHi, when both are set (same length as X), draw a vertical
	// error bar through each point — the rendering of a confidence
	// interval. The marker is drawn on top at Y.
	YLo, YHi []float64
}

// hasBars reports whether the series carries well-formed error bars.
func (s Series) hasBars() bool {
	return len(s.YLo) == len(s.X) && len(s.YHi) == len(s.X) && len(s.X) > 0
}

// Plot is a 2D chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns (default 70)
	Height int  // plot area rows (default 22)
	LogY   bool // logarithmic y axis
	series []Series
}

// markers cycles through distinguishable glyphs.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; empty series are ignored.
func (p *Plot) Add(s Series) {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return
	}
	if s.Marker == 0 {
		s.Marker = markers[len(p.series)%len(markers)]
	}
	p.series = append(p.series, s)
}

// Render draws the chart.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 70
	}
	if h <= 0 {
		h = 22
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		bars := s.hasBars()
		for i := range s.X {
			ys := []float64{s.Y[i]}
			if bars {
				ys = append(ys, s.YLo[i], s.YHi[i])
			}
			for _, y := range ys {
				if p.LogY && y <= 0 {
					continue
				}
				if s.X[i] < xmin {
					xmin = s.X[i]
				}
				if s.X[i] > xmax {
					xmax = s.X[i]
				}
				if y < ymin {
					ymin = y
				}
				if y > ymax {
					ymax = y
				}
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return p.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	ylo, yhi := ymin, ymax
	if p.LogY {
		ylo, yhi = math.Log10(ymin), math.Log10(ymax)
		if yhi == ylo {
			yhi = ylo + 1
		}
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	toRow := func(y float64) int {
		if p.LogY {
			if y <= 0 {
				return -1
			}
			y = math.Log10(y)
		}
		return h - 1 - int(math.Round((y-ylo)/(yhi-ylo)*float64(h-1)))
	}
	// Error bars first so markers land on top of them.
	for _, s := range p.series {
		if !s.hasBars() {
			continue
		}
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			rlo, rhi := toRow(s.YLo[i]), toRow(s.YHi[i])
			// Under LogY a bar end at or below zero is off the axis;
			// clamp it to the bottom row so the drawable upper part of
			// the interval still renders instead of vanishing.
			if rlo < 0 {
				rlo = h - 1
			}
			if col < 0 || col >= w || rhi < 0 {
				continue
			}
			if rlo < rhi {
				rlo, rhi = rhi, rlo // row indices grow downward
			}
			for r := rhi; r <= rlo; r++ {
				if r >= 0 && r < h {
					grid[r][col] = '|'
				}
			}
		}
	}
	for _, s := range p.series {
		for i := range s.X {
			y := s.Y[i]
			if p.LogY && y <= 0 {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := toRow(y)
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.Marker
			}
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	// Y-axis labels on selected rows.
	for r := 0; r < h; r++ {
		frac := float64(h-1-r) / float64(h-1)
		yval := ylo + frac*(yhi-ylo)
		if p.LogY {
			yval = math.Pow(10, yval)
		}
		label := "          "
		if r == 0 || r == h-1 || r == h/2 {
			label = fmt.Sprintf("%9.4g", yval)
		} else {
			label = strings.Repeat(" ", 9)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s+\n", strings.Repeat(" ", 9), strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 9), xmin,
		strings.Repeat(" ", maxInt(0, w-20)), xmax)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", 9), p.XLabel, p.YLabel)
	}
	if len(p.series) > 1 || (len(p.series) == 1 && p.series[0].Name != "") {
		fmt.Fprintf(&sb, "%s  legend:", strings.Repeat(" ", 9))
		for _, s := range p.series {
			fmt.Fprintf(&sb, " %c=%s", s.Marker, s.Name)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
