package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := Plot{Title: "test", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.Add(Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	out := p.Render()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "legend") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("only %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// Mismatched series is ignored.
	p.Add(Series{X: []float64{1}, Y: []float64{1, 2}})
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Error("mismatched series should be ignored")
	}
}

func TestRenderLogY(t *testing.T) {
	p := Plot{LogY: true, Width: 40, Height: 12}
	p.Add(Series{Name: "decay", X: []float64{0, 1, 2, 3}, Y: []float64{1, 0.1, 0.01, 0.001}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Error("log plot missing points")
	}
	// Log spacing: equal decades should land on distinct, roughly
	// evenly spaced rows — assert all four points appear in the plot
	// area (excluding the legend line, which repeats the marker).
	area := out[:strings.Index(out, "legend")]
	if count := strings.Count(area, "*"); count != 4 {
		t.Errorf("expected 4 plotted points, found %d", count)
	}
}

func TestRenderLogYIgnoresNonPositive(t *testing.T) {
	p := Plot{LogY: true, Width: 30, Height: 8}
	p.Add(Series{X: []float64{0, 1, 2}, Y: []float64{0, -1, 0.5}})
	out := p.Render()
	if strings.Count(out, "*") != 1 {
		t.Errorf("non-positive y must be dropped on log axis:\n%s", out)
	}
}

func TestMarkersCycle(t *testing.T) {
	p := Plot{Width: 30, Height: 8}
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	out := p.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("distinct markers expected")
	}
}

func TestConstantSeries(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add(Series{X: []float64{1, 1}, Y: []float64{2, 2}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Error("degenerate ranges must still render")
	}
}
