package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := Plot{Title: "test", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.Add(Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	out := p.Render()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "legend") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("only %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// Mismatched series is ignored.
	p.Add(Series{X: []float64{1}, Y: []float64{1, 2}})
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Error("mismatched series should be ignored")
	}
}

func TestRenderLogY(t *testing.T) {
	p := Plot{LogY: true, Width: 40, Height: 12}
	p.Add(Series{Name: "decay", X: []float64{0, 1, 2, 3}, Y: []float64{1, 0.1, 0.01, 0.001}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Error("log plot missing points")
	}
	// Log spacing: equal decades should land on distinct, roughly
	// evenly spaced rows — assert all four points appear in the plot
	// area (excluding the legend line, which repeats the marker).
	area := out[:strings.Index(out, "legend")]
	if count := strings.Count(area, "*"); count != 4 {
		t.Errorf("expected 4 plotted points, found %d", count)
	}
}

func TestRenderLogYIgnoresNonPositive(t *testing.T) {
	p := Plot{LogY: true, Width: 30, Height: 8}
	p.Add(Series{X: []float64{0, 1, 2}, Y: []float64{0, -1, 0.5}})
	out := p.Render()
	if strings.Count(out, "*") != 1 {
		t.Errorf("non-positive y must be dropped on log axis:\n%s", out)
	}
}

func TestMarkersCycle(t *testing.T) {
	p := Plot{Width: 30, Height: 8}
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	out := p.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("distinct markers expected")
	}
}

func TestConstantSeries(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add(Series{X: []float64{1, 1}, Y: []float64{2, 2}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Error("degenerate ranges must still render")
	}
}

func TestErrorBars(t *testing.T) {
	p := Plot{Title: "bars", Height: 12, Width: 40}
	p.Add(Series{
		Name: "ci", Marker: '@',
		X:   []float64{0, 0.5, 1},
		Y:   []float64{1, 2, 3},
		YLo: []float64{0.5, 1.5, 2.5},
		YHi: []float64{1.5, 2.5, 3.5},
	})
	out := p.Render()
	if !strings.Contains(out, "|") || !strings.Contains(out, "@") {
		t.Fatalf("error bars or markers missing:\n%s", out)
	}
	// The bar must extend above and below the marker in its column.
	lines := strings.Split(out, "\n")
	barRows, markerRow := 0, -1
	for r, ln := range lines {
		// Strip the frame: the grid sits between the first and last '|'.
		first, last := strings.IndexByte(ln, '|'), strings.LastIndexByte(ln, '|')
		if first < 0 || last <= first {
			continue
		}
		body := ln[first+1 : last]
		if strings.ContainsRune(body, '@') {
			markerRow = r
		}
		if strings.ContainsRune(body, '|') {
			barRows++
		}
	}
	if markerRow < 0 || barRows == 0 {
		t.Fatalf("marker row %d bar rows %d:\n%s", markerRow, barRows, out)
	}
}

func TestErrorBarsExpandRange(t *testing.T) {
	// A tall upper bar must widen the y range beyond the marker values.
	with := Plot{Height: 10, Width: 30}
	with.Add(Series{X: []float64{0, 1}, Y: []float64{1, 1},
		YLo: []float64{0.5, 0.5}, YHi: []float64{10, 10}})
	out := with.Render()
	if !strings.Contains(out, "10") {
		t.Fatalf("y range ignored error bars:\n%s", out)
	}
}

func TestErrorBarsLogYClampedAtZero(t *testing.T) {
	// On a log axis a CI whose lower end is 0 (or below) cannot be
	// placed, but the upper part of the bar must still render, clamped
	// to the bottom row — not silently vanish.
	p := Plot{Height: 12, Width: 30, LogY: true}
	p.Add(Series{
		Marker: '@',
		X:      []float64{0.2, 0.8},
		Y:      []float64{0.01, 0.02},
		YLo:    []float64{0, 0.015},
		YHi:    []float64{0.03, 0.025},
	})
	out := p.Render()
	bars := 0
	for _, ln := range strings.Split(out, "\n") {
		first, last := strings.IndexByte(ln, '|'), strings.LastIndexByte(ln, '|')
		if first < 0 || last <= first {
			continue
		}
		bars += strings.Count(ln[first+1:last], "|")
	}
	if bars == 0 {
		t.Fatalf("zero-floored CI lost its error bar:\n%s", out)
	}
}
