package campaign

import (
	"math"
	"math/rand"
	"testing"
)

func TestLayout(t *testing.T) {
	l := Layout{Cells: 3, Replicates: 4}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Tasks() != 12 {
		t.Fatalf("tasks = %d", l.Tasks())
	}
	for task := 0; task < l.Tasks(); task++ {
		cell, rep := l.CellOf(task), l.RepOf(task)
		if cell != task/4 || rep != task%4 {
			t.Fatalf("task %d -> (%d,%d)", task, cell, rep)
		}
		if l.Task(cell, rep) != task {
			t.Fatalf("Task(%d,%d) != %d", cell, rep, task)
		}
	}
	for _, bad := range []Layout{{0, 4}, {3, 0}, {-1, 4}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("layout %+v accepted", bad)
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/2": {0, 2},
		"2/3": {2, 3},
		"7/8": {7, 8},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v", in, got, err)
		}
		if got.String() != in {
			t.Errorf("round trip %q -> %q", in, got.String())
		}
	}
	for _, in := range []string{"", "3", "1/2/3", "a/b", "0/0", "2/2", "3/2", "-1/4", "1/-1"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

func TestShardsPartitionTasks(t *testing.T) {
	// For every n, the shards 0..n-1 own each task exactly once.
	for _, n := range []int{1, 2, 3, 8} {
		for task := 0; task < 100; task++ {
			owners := 0
			for i := 0; i < n; i++ {
				if (Shard{Index: i, Count: n}).Owns(task) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d task %d has %d owners", n, task, owners)
			}
		}
	}
}

func TestWelfordStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var w Welford
	for i := 0; i < 137; i++ {
		w.Add(rng.NormFloat64()*1e-3 + 0.01)
	}
	r := FromState(w.State())
	// Bit-exact restoration, then bit-exact continued folding.
	if r != w {
		t.Fatalf("restored %+v, want %+v", r, w)
	}
	for i := 0; i < 50; i++ {
		x := rng.ExpFloat64()
		w.Add(x)
		r.Add(x)
	}
	if r != w {
		t.Fatalf("diverged after continued folding: %+v vs %+v", r, w)
	}
	lo1, hi1 := w.CI95()
	lo2, hi2 := r.CI95()
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("CI bounds differ after round trip")
	}
}

func TestWelfordStateValidate(t *testing.T) {
	bad := []WelfordState{
		{N: -1},
		{N: 2, Mean: math.NaN()},
		{N: 2, Mean: 1, M2: math.Inf(1)},
		{N: 2, Mean: 1, M2: -0.5},
		{N: 0, Mean: 1},
	}
	for _, st := range bad {
		if err := st.validate(); err == nil {
			t.Errorf("state %+v accepted", st)
		}
	}
	if err := (WelfordState{N: 3, Mean: 0.5, M2: 0.25}).validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
}
