// Package campaign is the durability and distribution layer under the
// Monte-Carlo sweep: the job model (a campaign is a grid of cells, a
// cell is a batch of replicates, a replicate is one global task index),
// the CellID -> Welford result store that folds per-replicate summaries
// in replicate order (so aggregates are bit-identical no matter which
// worker, process, or resumed run produced them), and the on-disk
// snapshot formats — versioned, checksummed, written atomically — that
// let a killed campaign resume from its last checkpoint and let shards
// run in separate processes and merge into the same bytes as a serial
// run.
//
// The package is pure bookkeeping: it never runs a lot. internal/sweep
// executes tasks and feeds summaries in; cmd/sweep and cmd/sweepd wire
// the files and flags. Everything here depends only on the task-index
// arithmetic, which is why the splitmix64 global-task-index seeding
// upstream makes any partition of the grid reproducible.
package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// Layout is the shape of a campaign's task space: Cells grid cells,
// each owed Replicates independent replicate tasks. Global task index
// t maps to cell t/Replicates, replicate t%Replicates — cell-major, so
// a prefix of the task order is always a watermark per cell.
type Layout struct {
	Cells      int `json:"cells"`
	Replicates int `json:"replicates"`
}

// Validate rejects empty task spaces.
func (l Layout) Validate() error {
	if l.Cells < 1 {
		return fmt.Errorf("campaign: layout needs at least one cell, got %d", l.Cells)
	}
	if l.Replicates < 1 {
		return fmt.Errorf("campaign: layout needs at least one replicate per cell, got %d", l.Replicates)
	}
	return nil
}

// Tasks returns the total task count.
func (l Layout) Tasks() int { return l.Cells * l.Replicates }

// CellOf returns the cell index owning global task t.
func (l Layout) CellOf(t int) int { return t / l.Replicates }

// RepOf returns t's replicate index within its cell.
func (l Layout) RepOf(t int) int { return t % l.Replicates }

// Task returns the global task index of (cell, rep).
func (l Layout) Task(cell, rep int) int { return cell*l.Replicates + rep }

// Shard is one slice of a multi-process partition: shard Index of Count
// owns exactly the global task indices congruent to Index mod Count.
// The zero value is not valid; FullShard is the whole grid.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// FullShard is the unsharded campaign: shard 0 of 1 owns every task.
var FullShard = Shard{Index: 0, Count: 1}

// Validate rejects out-of-range shards.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("campaign: shard count must be >= 1, got %d", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("campaign: shard index must be in [0,%d), got %d", s.Count, s.Index)
	}
	return nil
}

// Owns reports whether global task t belongs to this shard.
func (s Shard) Owns(t int) bool { return t%s.Count == s.Index }

// String renders the flag form, "index/count".
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses the "i/n" flag form (0-based index, 0 <= i < n).
func ParseShard(s string) (Shard, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: shard %q is not of the form i/n", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: bad shard index in %q", s)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: bad shard count in %q", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Summary is the small per-replicate record the store folds: one
// passed/escape count pair per coverage cut plus the whole-program lot
// statistics. It is what shard files carry across process boundaries,
// so every field must survive JSON (no NaNs: a non-converged n0 fit is
// FitOK=false with FitN0 zero, never NaN).
type Summary struct {
	Passed      []int   `json:"passed"`
	Escapes     []int   `json:"escapes"`
	TestedYield float64 `json:"tested_yield"`
	LotYield    float64 `json:"lot_yield"`
	TrueN0      float64 `json:"true_n0"`
	FitOK       bool    `json:"fit_ok"`
	FitN0       float64 `json:"fit_n0"`
}

// validate checks the summary's shape against the campaign's cut count.
func (s Summary) validate(cuts int) error {
	if len(s.Passed) != cuts || len(s.Escapes) != cuts {
		return fmt.Errorf("campaign: summary has %d/%d cut counts, campaign has %d cuts",
			len(s.Passed), len(s.Escapes), cuts)
	}
	return nil
}

// TaskSummary is a Summary tagged with its global task index — the
// shard-file record.
type TaskSummary struct {
	Task int `json:"task"`
	Summary
}
