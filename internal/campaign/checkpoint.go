package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot file schema versions. A file whose schema string is not the
// current one is rejected with ErrSchema — a future v2 reader can
// branch on the string, a v1 reader must never silently misparse v2.
const (
	CheckpointSchema = "campaign-checkpoint/v1"
	ShardSchema      = "campaign-shard/v1"
)

// Named error kinds for snapshot-file failures; callers match with
// errors.Is. Every wrapped error names the offending file path.
var (
	// ErrCorrupt: unreadable, truncated, garbage, or checksum-failing
	// snapshot files.
	ErrCorrupt = errors.New("corrupt snapshot file")
	// ErrSchema: a well-formed envelope carrying an unknown schema
	// version.
	ErrSchema = errors.New("unknown snapshot schema version")
	// ErrMismatch: a valid snapshot that belongs to a different
	// campaign (config fingerprint, shard, or grid shape differs).
	ErrMismatch = errors.New("snapshot belongs to a different campaign")
	// ErrShardOverlap / ErrShardMissing / ErrShardIncomplete: merge
	// preconditions on a shard set.
	ErrShardOverlap    = errors.New("overlapping shards")
	ErrShardMissing    = errors.New("missing shard")
	ErrShardIncomplete = errors.New("incomplete shard")
)

// Key identifies which campaign a snapshot belongs to: the caller's
// config fingerprint (internal/sweep hashes every results-relevant
// config field) plus the shard that produced it. Loading a snapshot
// under a different key is ErrMismatch, never a silent resume.
type Key struct {
	ConfigHash string `json:"config_hash"`
	Shard      Shard  `json:"shard"`
}

// Checkpoint is a full-campaign snapshot: the key plus every cell's
// folded Welford state and completed-replicate watermark.
type Checkpoint struct {
	Key   Key            `json:"key"`
	Cells []CellSnapshot `json:"cells"`
}

// envelope is the outer layer of every snapshot file: a schema version
// string, a SHA-256 over the canonical (whitespace-compacted) body
// bytes, and the body itself. Truncation, bit rot, and hand edits all
// land in ErrCorrupt before any field of the body is believed.
type envelope struct {
	Schema string          `json:"schema"`
	SHA256 string          `json:"sha256"`
	Body   json.RawMessage `json:"body"`
}

func bodyChecksum(body []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		return "", err
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// writeSnapshotFile marshals body into a checksummed envelope and
// writes it atomically: the bytes go to a temp file in the target's
// directory, are synced, and only then renamed over the target — a
// crash mid-write leaves the previous checkpoint intact, never a
// half-written file.
func writeSnapshotFile(path, schema string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("campaign: marshal snapshot for %s: %w", path, err)
	}
	sum, err := bodyChecksum(raw)
	if err != nil {
		return fmt.Errorf("campaign: checksum snapshot for %s: %w", path, err)
	}
	data, err := json.MarshalIndent(envelope{Schema: schema, SHA256: sum, Body: raw}, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal envelope for %s: %w", path, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: write snapshot %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err2 := tmp.Close(); err == nil {
		err = err2
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write snapshot %s: %w", path, err)
	}
	return nil
}

// readSnapshotFile opens, checksums, and version-checks a snapshot
// file, returning the verified body bytes.
func readSnapshotFile(path, wantSchema string) (json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read snapshot %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: %w", path, ErrCorrupt, err)
	}
	if env.Schema != wantSchema {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: got %q, want %q",
			path, ErrSchema, env.Schema, wantSchema)
	}
	if len(env.Body) == 0 {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: empty body", path, ErrCorrupt)
	}
	sum, err := bodyChecksum(env.Body)
	if err != nil {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: %w", path, ErrCorrupt, err)
	}
	if sum != env.SHA256 {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: checksum mismatch", path, ErrCorrupt)
	}
	return env.Body, nil
}

// WriteEnvelope marshals body into a checksummed, schema-versioned
// envelope and writes it atomically (temp file + sync + rename). It is
// the snapshot-file format opened up for other persistent artifacts —
// the circuits Prepared store reuses it so every on-disk artifact in
// the repo shares one corruption-detection story.
func WriteEnvelope(path, schema string, body any) error {
	return writeSnapshotFile(path, schema, body)
}

// ReadEnvelope opens, checksums, and version-checks an envelope file
// written by WriteEnvelope, returning the verified body bytes. Failures
// match ErrCorrupt / ErrSchema via errors.Is.
func ReadEnvelope(path, wantSchema string) (json.RawMessage, error) {
	return readSnapshotFile(path, wantSchema)
}

// WriteCheckpoint atomically persists a campaign checkpoint.
func WriteCheckpoint(path string, ck *Checkpoint) error {
	return writeSnapshotFile(path, CheckpointSchema, ck)
}

// LoadCheckpoint reads, verifies, and shape-checks a checkpoint: the
// checksum and schema version must hold, the key must equal the
// caller's (a checkpoint written by a different grid config or shard is
// ErrMismatch), and every cell snapshot must fit the given geometry.
func LoadCheckpoint(path string, key Key, layout Layout, cuts int) (*Checkpoint, error) {
	body, err := readSnapshotFile(path, CheckpointSchema)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(body, &ck); err != nil {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: %w", path, ErrCorrupt, err)
	}
	if ck.Key != key {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: checkpoint key %+v, campaign key %+v",
			path, ErrMismatch, ck.Key, key)
	}
	if len(ck.Cells) != layout.Cells {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: checkpoint has %d cells, campaign has %d",
			path, ErrMismatch, len(ck.Cells), layout.Cells)
	}
	for i, cs := range ck.Cells {
		if err := cs.validate(layout, cuts); err != nil {
			return nil, fmt.Errorf("campaign: snapshot %s: %w: cell %d: %w", path, ErrMismatch, i, err)
		}
	}
	return &ck, nil
}
