package campaign

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// buildShards splits a full summary set into n complete shard results.
func buildShards(layout Layout, hash string, n int, sums []Summary) []*ShardResult {
	shards := make([]*ShardResult, n)
	for i := range shards {
		shards[i] = &ShardResult{
			Key:      Key{ConfigHash: hash, Shard: Shard{Index: i, Count: n}},
			Tasks:    layout.Tasks(),
			Complete: true,
		}
	}
	for task, s := range sums {
		sr := shards[task%n]
		sr.Summaries = append(sr.Summaries, TaskSummary{Task: task, Summary: s})
	}
	return shards
}

func TestMergeShardsMatchesSerialRun(t *testing.T) {
	// The shard-merge property: for random grids and random summaries,
	// merge(shard 0/n .. n-1/n) folds to the exact same state — Welford
	// means, M2s, counts, and therefore CI bounds — as the serial run,
	// for n in {2, 3, 8}.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		layout := Layout{Cells: 1 + rng.Intn(5), Replicates: 1 + rng.Intn(7)}
		cuts := 1 + rng.Intn(3)
		sums := make([]Summary, layout.Tasks())
		for i := range sums {
			sums[i] = randomSummary(rng, cuts)
		}
		serial := serialStore(t, layout, cuts, sums)
		want := serial.Snapshot()
		for _, n := range []int{2, 3, 8} {
			shards := buildShards(layout, "h", n, sums)
			// Present the shards in scrambled order: merge must not
			// care which process finished first.
			rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
			merged, err := MergeShards(layout, cuts, "h", shards)
			if err != nil {
				t.Fatalf("trial %d n=%d: %v", trial, n, err)
			}
			got := merged.Snapshot()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d: merged state differs from serial run", trial, n)
			}
			// CI bounds bit-for-bit, through the public accessors.
			for c := range want {
				wlo, whi := welfordCI(want[c].Rej[0])
				glo, ghi := welfordCI(got[c].Rej[0])
				if wlo != glo || whi != ghi {
					t.Fatalf("trial %d n=%d cell %d: CI bounds differ", trial, n, c)
				}
			}
		}
	}
}

func welfordCI(ws WelfordState) (float64, float64) {
	w := FromState(ws)
	return w.CI95()
}

func TestMergeShardsNamedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	layout := Layout{Cells: 2, Replicates: 6}
	const cuts = 2
	sums := make([]Summary, layout.Tasks())
	for i := range sums {
		sums[i] = randomSummary(rng, cuts)
	}
	fresh := func() []*ShardResult { return buildShards(layout, "h", 3, sums) }

	// Missing shard.
	shards := fresh()
	if _, err := MergeShards(layout, cuts, "h", shards[:2]); !errors.Is(err, ErrShardMissing) {
		t.Errorf("missing shard: err = %v", err)
	}
	if _, err := MergeShards(layout, cuts, "h", nil); !errors.Is(err, ErrShardMissing) {
		t.Errorf("no shards: err = %v", err)
	}
	// Overlapping shard: the same index supplied twice.
	shards = fresh()
	shards[2] = shards[0]
	if _, err := MergeShards(layout, cuts, "h", shards); !errors.Is(err, ErrShardOverlap) {
		t.Errorf("overlap: err = %v", err)
	}
	// Incomplete shard.
	shards = fresh()
	shards[1].Summaries = shards[1].Summaries[:1]
	shards[1].Complete = false
	if _, err := MergeShards(layout, cuts, "h", shards); !errors.Is(err, ErrShardIncomplete) {
		t.Errorf("incomplete: err = %v", err)
	}
	// Foreign config hash.
	shards = fresh()
	shards[1].Key.ConfigHash = "other"
	if _, err := MergeShards(layout, cuts, "h", shards); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign hash: err = %v", err)
	}
	// Disagreeing partition sizes: a 0/2 shard in a merge of thirds.
	shards = fresh()
	half := buildShards(layout, "h", 2, sums)
	shards[0] = half[0]
	if _, err := MergeShards(layout, cuts, "h", shards); !errors.Is(err, ErrMismatch) {
		t.Errorf("mixed partition: err = %v", err)
	}
	// Foreign grid size.
	shards = fresh()
	shards[0].Tasks = layout.Tasks() + 6
	if _, err := MergeShards(layout, cuts, "h", shards); err == nil {
		t.Error("foreign grid accepted")
	}
}

func TestShardFileRoundTripAndResume(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	layout := Layout{Cells: 2, Replicates: 4}
	const cuts = 2
	sums := make([]Summary, layout.Tasks())
	for i := range sums {
		sums[i] = randomSummary(rng, cuts)
	}
	key := Key{ConfigHash: "h", Shard: Shard{Index: 1, Count: 2}}
	// A partial shard (the checkpoint form): only some owned tasks.
	partial := &ShardResult{Key: key, Tasks: layout.Tasks(), Complete: false}
	for task := 0; task < layout.Tasks(); task++ {
		if key.Shard.Owns(task) && len(partial.Summaries) < 2 {
			partial.Summaries = append(partial.Summaries, TaskSummary{Task: task, Summary: sums[task]})
		}
	}
	path := filepath.Join(t.TempDir(), "s.shard")
	if err := WriteShard(path, partial); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardFor(path, key, layout, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, partial) {
		t.Fatal("shard file drifted through write/load")
	}
	// Resume under a foreign key or geometry is ErrMismatch.
	if _, err := LoadShardFor(path, Key{ConfigHash: "x", Shard: key.Shard}, layout, cuts); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign hash: err = %v", err)
	}
	if _, err := LoadShardFor(path, key, Layout{Cells: 3, Replicates: 4}, cuts); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign layout: err = %v", err)
	}
	if _, err := LoadShardFor(path, key, layout, cuts+1); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign cuts: err = %v", err)
	}
	// Writer-side validation: unsorted, unowned, or over-complete
	// summaries never reach the disk.
	bad := &ShardResult{Key: key, Tasks: layout.Tasks(), Summaries: []TaskSummary{{Task: 0}}}
	if err := WriteShard(filepath.Join(t.TempDir(), "bad"), bad); err == nil {
		t.Error("unowned task accepted")
	}
	bad = &ShardResult{Key: key, Tasks: layout.Tasks(), Complete: true, Summaries: partial.Summaries}
	if err := WriteShard(filepath.Join(t.TempDir(), "bad"), bad); err == nil {
		t.Error("incomplete shard marked complete accepted")
	}
}
