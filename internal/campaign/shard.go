package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ShardResult is one shard's contribution to a campaign: the raw
// per-replicate summaries of every task the shard owns, tagged with
// global task indices. Shards carry raw summaries rather than folded
// Welford state on purpose — bit-identical merging requires folding
// every replicate in global index order, which only the merger can do
// once all shards are present. The same format doubles as the shard's
// checkpoint: a partial file (Complete=false) resumes, a complete one
// merges.
type ShardResult struct {
	Key Key `json:"key"`
	// Tasks is the full grid's task count, a cheap geometry guard.
	Tasks int `json:"tasks"`
	// Complete reports whether every owned task's summary is present.
	Complete bool `json:"complete"`
	// Summaries holds the finished tasks in ascending task order.
	Summaries []TaskSummary `json:"summaries"`
}

// ownedTasks returns how many tasks of a full grid this shard owns.
func ownedTasks(total int, sh Shard) int {
	n := total / sh.Count
	if sh.Index < total%sh.Count {
		n++
	}
	return n
}

// validate checks internal consistency: every summary owned by the
// shard, indices ascending and unique, Complete consistent with the
// owned count.
func (sr *ShardResult) validate() error {
	if err := sr.Key.Shard.Validate(); err != nil {
		return err
	}
	if sr.Tasks < 1 {
		return fmt.Errorf("campaign: shard file claims %d tasks", sr.Tasks)
	}
	prev := -1
	for _, ts := range sr.Summaries {
		if ts.Task < 0 || ts.Task >= sr.Tasks {
			return fmt.Errorf("campaign: shard summary task %d outside [0,%d)", ts.Task, sr.Tasks)
		}
		if !sr.Key.Shard.Owns(ts.Task) {
			return fmt.Errorf("campaign: shard %s does not own task %d", sr.Key.Shard, ts.Task)
		}
		if ts.Task <= prev {
			return fmt.Errorf("campaign: shard summaries not strictly ascending at task %d", ts.Task)
		}
		prev = ts.Task
	}
	owned := ownedTasks(sr.Tasks, sr.Key.Shard)
	if sr.Complete && len(sr.Summaries) != owned {
		return fmt.Errorf("campaign: shard %s marked complete with %d of %d owned tasks",
			sr.Key.Shard, len(sr.Summaries), owned)
	}
	if len(sr.Summaries) > owned {
		return fmt.Errorf("campaign: shard %s has %d summaries but owns only %d tasks",
			sr.Key.Shard, len(sr.Summaries), owned)
	}
	return nil
}

// SortSummaries orders the summaries by task index (WriteShard requires
// ascending order; builders that collect from a map call this first).
func (sr *ShardResult) SortSummaries() {
	sort.Slice(sr.Summaries, func(i, j int) bool { return sr.Summaries[i].Task < sr.Summaries[j].Task })
}

// WriteShard atomically persists a shard result (partial or complete).
func WriteShard(path string, sr *ShardResult) error {
	if err := sr.validate(); err != nil {
		return err
	}
	return writeSnapshotFile(path, ShardSchema, sr)
}

// LoadShard reads, verifies, and consistency-checks a shard file. The
// caller matches the key itself (merge wants n files under one config
// hash; resume wants an exact key match) — use LoadShardFor when the
// expected key is known.
func LoadShard(path string) (*ShardResult, error) {
	body, err := readSnapshotFile(path, ShardSchema)
	if err != nil {
		return nil, err
	}
	var sr ShardResult
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: %w", path, ErrCorrupt, err)
	}
	if err := sr.validate(); err != nil {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: %w", path, ErrCorrupt, err)
	}
	return &sr, nil
}

// LoadShardFor is LoadShard plus an exact key and geometry match — the
// resume path, where a shard file written by a different config, a
// different shard assignment, or a different grid is ErrMismatch.
func LoadShardFor(path string, key Key, layout Layout, cuts int) (*ShardResult, error) {
	sr, err := LoadShard(path)
	if err != nil {
		return nil, err
	}
	if sr.Key != key {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: shard key %+v, campaign key %+v",
			path, ErrMismatch, sr.Key, key)
	}
	if sr.Tasks != layout.Tasks() {
		return nil, fmt.Errorf("campaign: snapshot %s: %w: shard grid has %d tasks, campaign has %d",
			path, ErrMismatch, sr.Tasks, layout.Tasks())
	}
	for _, ts := range sr.Summaries {
		if err := ts.validate(cuts); err != nil {
			return nil, fmt.Errorf("campaign: snapshot %s: %w: task %d: %w", path, ErrMismatch, ts.Task, err)
		}
	}
	return sr, nil
}

// MergeShards validates a shard set and folds every summary into a
// fresh store in global task order, which makes the merged aggregates
// bit-for-bit equal to a single serial run — including Welford CI
// bounds. Preconditions, each a named error:
//   - every shard carries the campaign's config hash (ErrMismatch),
//   - every shard agrees on the partition size and grid (ErrMismatch),
//   - no shard index appears twice (ErrShardOverlap),
//   - indices 0..n-1 are all present (ErrShardMissing),
//   - every shard is complete (ErrShardIncomplete).
func MergeShards(layout Layout, cuts int, configHash string, shards []*ShardResult) (*Store, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: %w: no shards to merge", ErrShardMissing)
	}
	n := shards[0].Key.Shard.Count
	seen := make(map[int]bool, n)
	for _, sr := range shards {
		if err := sr.validate(); err != nil {
			return nil, err
		}
		if sr.Key.ConfigHash != configHash {
			return nil, fmt.Errorf("campaign: %w: shard %s has config hash %.12s, campaign has %.12s",
				ErrMismatch, sr.Key.Shard, sr.Key.ConfigHash, configHash)
		}
		if sr.Key.Shard.Count != n {
			return nil, fmt.Errorf("campaign: %w: shard %s in a merge of 0..%d/%d",
				ErrMismatch, sr.Key.Shard, n-1, n)
		}
		if sr.Tasks != layout.Tasks() {
			return nil, fmt.Errorf("campaign: %w: shard %s grid has %d tasks, campaign has %d",
				ErrMismatch, sr.Key.Shard, sr.Tasks, layout.Tasks())
		}
		if seen[sr.Key.Shard.Index] {
			return nil, fmt.Errorf("campaign: %w: shard %s appears twice", ErrShardOverlap, sr.Key.Shard)
		}
		seen[sr.Key.Shard.Index] = true
		if !sr.Complete {
			return nil, fmt.Errorf("campaign: %w: shard %s has %d summaries",
				ErrShardIncomplete, sr.Key.Shard, len(sr.Summaries))
		}
	}
	if len(seen) != n {
		for i := 0; i < n; i++ {
			if !seen[i] {
				return nil, fmt.Errorf("campaign: %w: shard %d/%d not supplied", ErrShardMissing, i, n)
			}
		}
	}
	st, err := NewStore(layout, cuts)
	if err != nil {
		return nil, err
	}
	// The store buffers out-of-order arrivals and folds strictly in
	// replicate order, so feeding shard by shard is already exact.
	for _, sr := range shards {
		for _, ts := range sr.Summaries {
			if _, _, err := st.Add(ts.Task, ts.Summary); err != nil {
				return nil, err
			}
		}
	}
	if !st.Complete() {
		return nil, fmt.Errorf("campaign: %w: merged shards cover %d of %d tasks",
			ErrShardMissing, st.TasksFolded(), layout.Tasks())
	}
	return st, nil
}
