package campaign

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSummary fabricates a plausible replicate record.
func randomSummary(rng *rand.Rand, cuts int) Summary {
	s := Summary{
		Passed:      make([]int, cuts),
		Escapes:     make([]int, cuts),
		TestedYield: rng.Float64(),
		LotYield:    rng.Float64(),
		TrueN0:      rng.ExpFloat64() * 4,
	}
	for j := 0; j < cuts; j++ {
		s.Passed[j] = rng.Intn(50) // occasionally zero: the no-ship path
		s.Escapes[j] = rng.Intn(s.Passed[j] + 1)
	}
	if rng.Float64() < 0.8 {
		s.FitOK = true
		s.FitN0 = rng.ExpFloat64() * 4
	}
	return s
}

// serialStore folds summaries 0..T-1 in order — the oracle.
func serialStore(t *testing.T, layout Layout, cuts int, sums []Summary) *Store {
	t.Helper()
	st, err := NewStore(layout, cuts)
	if err != nil {
		t.Fatal(err)
	}
	for task, s := range sums {
		if _, _, err := st.Add(task, s); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestStoreOrderIndependence(t *testing.T) {
	// Feeding the same summaries in any permutation folds to the exact
	// same state: out-of-order arrivals buffer until their turn.
	rng := rand.New(rand.NewSource(41))
	layout := Layout{Cells: 4, Replicates: 5}
	const cuts = 3
	sums := make([]Summary, layout.Tasks())
	for i := range sums {
		sums[i] = randomSummary(rng, cuts)
	}
	want := serialStore(t, layout, cuts, sums).Snapshot()
	for trial := 0; trial < 20; trial++ {
		st, err := NewStore(layout, cuts)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range rng.Perm(layout.Tasks()) {
			if _, _, err := st.Add(task, sums[task]); err != nil {
				t.Fatal(err)
			}
		}
		if !st.Complete() {
			t.Fatal("store incomplete after all tasks")
		}
		if got := st.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted fold differs from serial fold", trial)
		}
	}
}

func TestStoreWatermarkAndCallbacks(t *testing.T) {
	layout := Layout{Cells: 2, Replicates: 3}
	st, err := NewStore(layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	var events []int // done values per advance of cell 0
	st.OnAdvance = func(cell int, snap CellSnapshot) {
		if cell == 0 {
			events = append(events, snap.Done)
		}
	}
	rng := rand.New(rand.NewSource(5))
	s := func() Summary { return randomSummary(rng, 1) }
	// Cell 0: feed rep 2, then 0 (folds 0), then 1 (folds 1 and 2).
	if _, done, err := st.Add(2, s()); err != nil || done != 0 {
		t.Fatalf("rep 2 first: done=%d err=%v", done, err)
	}
	if _, done, err := st.Add(0, s()); err != nil || done != 1 {
		t.Fatalf("rep 0: done=%d err=%v", done, err)
	}
	if _, done, err := st.Add(1, s()); err != nil || done != 3 {
		t.Fatalf("rep 1: done=%d err=%v", done, err)
	}
	// Watermarks advanced monotonically, one callback per advance.
	if !reflect.DeepEqual(events, []int{1, 3}) {
		t.Fatalf("advance events = %v", events)
	}
	if st.Done(0) != 3 || st.Done(1) != 0 {
		t.Fatalf("watermarks %d/%d", st.Done(0), st.Done(1))
	}
	if st.TasksFolded() != 3 || st.Complete() {
		t.Fatalf("folded=%d complete=%v", st.TasksFolded(), st.Complete())
	}
}

func TestStoreRejectsDuplicatesAndBadShapes(t *testing.T) {
	layout := Layout{Cells: 1, Replicates: 3}
	st, err := NewStore(layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, _, err := st.Add(0, randomSummary(rng, 2)); err != nil {
		t.Fatal(err)
	}
	// Already folded.
	if _, _, err := st.Add(0, randomSummary(rng, 2)); err == nil {
		t.Error("re-adding a folded task accepted")
	}
	// Already buffered.
	if _, _, err := st.Add(2, randomSummary(rng, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Add(2, randomSummary(rng, 2)); err == nil {
		t.Error("re-adding a buffered task accepted")
	}
	// Out of range and wrong cut count.
	if _, _, err := st.Add(3, randomSummary(rng, 2)); err == nil {
		t.Error("out-of-range task accepted")
	}
	if _, _, err := st.Add(1, randomSummary(rng, 5)); err == nil {
		t.Error("wrong-shape summary accepted")
	}
}

func TestStoreSnapshotRestoreResume(t *testing.T) {
	// Fold a prefix, snapshot, restore into a fresh store, fold the
	// rest into both — states must stay bit-identical throughout.
	rng := rand.New(rand.NewSource(17))
	layout := Layout{Cells: 3, Replicates: 4}
	const cuts = 2
	sums := make([]Summary, layout.Tasks())
	for i := range sums {
		sums[i] = randomSummary(rng, cuts)
	}
	full := serialStore(t, layout, cuts, sums)
	for stop := 1; stop < layout.Tasks(); stop++ {
		partial := serialStore(t, layout, cuts, sums[:stop])
		resumed, err := NewStore(layout, cuts)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.Restore(partial.Snapshot()); err != nil {
			t.Fatal(err)
		}
		for task := stop; task < layout.Tasks(); task++ {
			if _, _, err := resumed.Add(task, sums[task]); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(resumed.Snapshot(), full.Snapshot()) {
			t.Fatalf("resume from task %d diverged from uninterrupted fold", stop)
		}
	}
	// Restore rejects wrong shapes.
	if err := full.Restore(full.Snapshot()[:2]); err == nil {
		t.Error("short snapshot accepted")
	}
	bad := full.Snapshot()
	bad[0].Done = layout.Replicates + 1
	if err := full.Restore(bad); err == nil {
		t.Error("over-watermark snapshot accepted")
	}
	bad = full.Snapshot()
	bad[1].Rej = bad[1].Rej[:1]
	if err := full.Restore(bad); err == nil {
		t.Error("wrong-cut snapshot accepted")
	}
}
