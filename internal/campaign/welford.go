package campaign

import (
	"fmt"
	"math"
)

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable for long replicate streams, constant
// memory, and exact in the order the values are fed — the store feeds
// it in replicate-index order so aggregates are scheduling-independent,
// and its three words of state are exactly what a checkpoint persists.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 below two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// CI95 returns the normal-approximation 95% confidence interval on the
// mean. With fewer than two observations it degenerates to the mean.
func (w *Welford) CI95() (lo, hi float64) {
	const z = 1.959963984540054 // Phi^-1(0.975)
	se := w.StdErr()
	return w.mean - z*se, w.mean + z*se
}

// WelfordState is the serializable form of a Welford accumulator.
// float64 JSON round-trips bit-exactly (Go emits the shortest
// representation that parses back to the same bits), which is what
// makes a resumed campaign byte-identical to an uninterrupted one.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State snapshots the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// FromState rebuilds an accumulator from a snapshot.
func FromState(st WelfordState) Welford {
	return Welford{n: st.N, mean: st.Mean, m2: st.M2}
}

// validate rejects states no Add sequence could have produced.
func (st WelfordState) validate() error {
	if st.N < 0 {
		return fmt.Errorf("campaign: negative welford count %d", st.N)
	}
	if math.IsNaN(st.Mean) || math.IsInf(st.Mean, 0) || math.IsNaN(st.M2) || math.IsInf(st.M2, 0) || st.M2 < 0 {
		return fmt.Errorf("campaign: non-finite or negative welford state (mean=%v m2=%v)", st.Mean, st.M2)
	}
	if st.N == 0 && (st.Mean != 0 || st.M2 != 0) {
		return fmt.Errorf("campaign: welford state with zero count but nonzero moments")
	}
	return nil
}
