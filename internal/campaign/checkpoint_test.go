package campaign

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testCheckpoint(t *testing.T, layout Layout, cuts int, seed int64) *Checkpoint {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sums := make([]Summary, layout.Tasks())
	for i := range sums {
		sums[i] = randomSummary(rng, cuts)
	}
	st := serialStore(t, layout, cuts, sums[:layout.Tasks()-2]) // mid-cell watermark
	return &Checkpoint{
		Key:   Key{ConfigHash: "deadbeefcafe", Shard: FullShard},
		Cells: st.Snapshot(),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	layout := Layout{Cells: 3, Replicates: 4}
	const cuts = 2
	ck := testCheckpoint(t, layout, cuts, 23)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path, ck.Key, layout, cuts)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-exact: every Welford state and watermark survives the disk.
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("checkpoint drifted through write/load")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	layout := Layout{Cells: 2, Replicates: 3}
	const cuts = 2
	ck := testCheckpoint(t, layout, cuts, 31)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, data []byte, wantErr error) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(p, ck.Key, layout, cuts)
		if err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
			return
		}
		if wantErr != nil && !errors.Is(err, wantErr) {
			t.Errorf("%s: err = %v, want %v", name, err, wantErr)
		}
		// The report must name the offending file, never a bare guess.
		if !strings.Contains(err.Error(), p) {
			t.Errorf("%s: error does not name the file path: %v", name, err)
		}
	}
	// Truncated at several depths.
	corrupt("truncated-half.ckpt", pristine[:len(pristine)/2], ErrCorrupt)
	corrupt("truncated-tail.ckpt", pristine[:len(pristine)-3], ErrCorrupt)
	corrupt("empty.ckpt", nil, ErrCorrupt)
	// Garbage.
	corrupt("garbage.ckpt", []byte("not even json {"), ErrCorrupt)
	// Valid JSON, flipped payload byte: the checksum must catch a
	// silent single-field edit.
	tampered := []byte(strings.Replace(string(pristine), `"done": `, `"done": 1`, 1))
	if string(tampered) == string(pristine) {
		t.Fatal("tamper failed to change the payload")
	}
	corrupt("tampered.ckpt", tampered, ErrCorrupt)
	// Wrong schema version.
	versioned := []byte(strings.Replace(string(pristine), CheckpointSchema, "campaign-checkpoint/v999", 1))
	corrupt("version.ckpt", versioned, ErrSchema)
	// Missing file: plain error naming the path, not a panic.
	if _, err := LoadCheckpoint(filepath.Join(dir, "nope.ckpt"), ck.Key, layout, cuts); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestCheckpointKeyAndShapeMismatch(t *testing.T) {
	layout := Layout{Cells: 2, Replicates: 3}
	const cuts = 2
	ck := testCheckpoint(t, layout, cuts, 37)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	// A checkpoint written by a different grid config (different
	// fingerprint) must be rejected by name, never silently resumed.
	otherKey := Key{ConfigHash: "0ther", Shard: FullShard}
	if _, err := LoadCheckpoint(path, otherKey, layout, cuts); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign config hash: err = %v, want ErrMismatch", err)
	}
	// Same for a different shard of the same config...
	shardKey := ck.Key
	shardKey.Shard = Shard{Index: 1, Count: 2}
	if _, err := LoadCheckpoint(path, shardKey, layout, cuts); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign shard: err = %v, want ErrMismatch", err)
	}
	// ...and a different grid shape under the same (spoofed) key.
	if _, err := LoadCheckpoint(path, ck.Key, Layout{Cells: 5, Replicates: 3}, cuts); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign cell count: err = %v, want ErrMismatch", err)
	}
	if _, err := LoadCheckpoint(path, ck.Key, layout, cuts+1); !errors.Is(err, ErrMismatch) {
		t.Errorf("foreign cut count: err = %v, want ErrMismatch", err)
	}
}

func TestEnvelopeChecksumSurvivesReindent(t *testing.T) {
	// The checksum is over canonical (compacted) body bytes, so a file
	// that was pretty-printed by a well-meaning tool still verifies,
	// while any semantic edit fails.
	layout := Layout{Cells: 1, Replicates: 2}
	ck := testCheckpoint(t, layout, 1, 41)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	indented, err := json.MarshalIndent(env, "", "      ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, indented, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, ck.Key, layout, 1); err != nil {
		t.Fatalf("reindented checkpoint rejected: %v", err)
	}
}

// TestCheckpointErrorChainsCause pins the wrap discipline: a corrupt
// snapshot reports ErrCorrupt for the caller's errors.Is dispatch AND
// keeps the underlying decode error in the chain (both via %w), so the
// original cause stays reachable for diagnosis instead of being
// flattened into the message string.
func TestCheckpointErrorChainsCause(t *testing.T) {
	layout := Layout{Cells: 2, Replicates: 3}
	ck := testCheckpoint(t, layout, 1, 5)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := os.WriteFile(path, []byte("not even json {"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path, ck.Key, layout, 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt in chain", err)
	}
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		t.Errorf("decode cause lost from the chain: %v", err)
	}
}
