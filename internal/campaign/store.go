package campaign

import (
	"fmt"
	"sync"
)

// CellSnapshot is one cell's folded aggregate state: the watermark of
// replicates folded so far plus every Welford accumulator. It is both
// the checkpoint unit and the streaming unit — a daemon publishes a
// cell's snapshot every time its watermark advances, and a checkpoint
// is just every cell's snapshot plus the campaign key.
type CellSnapshot struct {
	// Done is the completed-replicate watermark: replicates 0..Done-1
	// are folded into the accumulators below. Replicates at or beyond
	// the watermark must be re-run on resume (finished-but-out-of-order
	// work is deliberately not persisted — re-running it is free and
	// deterministic, persisting it is schema surface).
	Done int `json:"done"`
	// Rej, Esc, and Pass hold one accumulator per coverage cut. Rej
	// only counts replicates that shipped at least one chip, so its N
	// is the RejSamples of the final report.
	Rej  []WelfordState `json:"rej"`
	Esc  []WelfordState `json:"esc"`
	Pass []WelfordState `json:"pass"`
	// Whole-program lot statistics.
	TestedYield WelfordState `json:"tested_yield"`
	LotYield    WelfordState `json:"lot_yield"`
	TrueN0      WelfordState `json:"true_n0"`
	// FitN0 only counts replicates whose Fig. 5 fit converged.
	FitN0 WelfordState `json:"fit_n0"`
}

// validate checks a snapshot's shape against the campaign geometry.
func (cs CellSnapshot) validate(layout Layout, cuts int) error {
	if cs.Done < 0 || cs.Done > layout.Replicates {
		return fmt.Errorf("campaign: cell watermark %d outside [0,%d]", cs.Done, layout.Replicates)
	}
	if len(cs.Rej) != cuts || len(cs.Esc) != cuts || len(cs.Pass) != cuts {
		return fmt.Errorf("campaign: cell has %d/%d/%d cut accumulators, campaign has %d cuts",
			len(cs.Rej), len(cs.Esc), len(cs.Pass), cuts)
	}
	for _, group := range [][]WelfordState{cs.Rej, cs.Esc, cs.Pass} {
		for _, ws := range group {
			if err := ws.validate(); err != nil {
				return err
			}
		}
	}
	for _, ws := range []WelfordState{cs.TestedYield, cs.LotYield, cs.TrueN0, cs.FitN0} {
		if err := ws.validate(); err != nil {
			return err
		}
	}
	return nil
}

// cellAccum is one cell's live accumulators plus the out-of-order
// buffer. Folding happens strictly in replicate-index order: a summary
// arriving ahead of the watermark waits in pending until its turn.
type cellAccum struct {
	rej, esc, pass []Welford
	ty, ly, tn, ft Welford
	done           int
	pending        map[int]Summary
}

func newCellAccum(cuts int) *cellAccum {
	return &cellAccum{
		rej:     make([]Welford, cuts),
		esc:     make([]Welford, cuts),
		pass:    make([]Welford, cuts),
		pending: map[int]Summary{},
	}
}

// fold is the one place a summary enters the statistics; its operation
// order is pinned by the golden sweep CSV.
func (a *cellAccum) fold(s Summary) {
	for j := range a.rej {
		// A lot that ships nothing has no reject rate; exclude it from
		// the mean/CI rather than recording a biasing zero.
		if s.Passed[j] > 0 {
			a.rej[j].Add(float64(s.Escapes[j]) / float64(s.Passed[j]))
		}
		a.esc[j].Add(float64(s.Escapes[j]))
		a.pass[j].Add(float64(s.Passed[j]))
	}
	a.ty.Add(s.TestedYield)
	a.ly.Add(s.LotYield)
	a.tn.Add(s.TrueN0)
	if s.FitOK {
		a.ft.Add(s.FitN0)
	}
	a.done++
}

func (a *cellAccum) snapshot() CellSnapshot {
	cs := CellSnapshot{
		Done:        a.done,
		Rej:         make([]WelfordState, len(a.rej)),
		Esc:         make([]WelfordState, len(a.esc)),
		Pass:        make([]WelfordState, len(a.pass)),
		TestedYield: a.ty.State(),
		LotYield:    a.ly.State(),
		TrueN0:      a.tn.State(),
		FitN0:       a.ft.State(),
	}
	for j := range a.rej {
		cs.Rej[j] = a.rej[j].State()
		cs.Esc[j] = a.esc[j].State()
		cs.Pass[j] = a.pass[j].State()
	}
	return cs
}

func (a *cellAccum) restore(cs CellSnapshot) {
	for j := range a.rej {
		a.rej[j] = FromState(cs.Rej[j])
		a.esc[j] = FromState(cs.Esc[j])
		a.pass[j] = FromState(cs.Pass[j])
	}
	a.ty = FromState(cs.TestedYield)
	a.ly = FromState(cs.LotYield)
	a.tn = FromState(cs.TrueN0)
	a.ft = FromState(cs.FitN0)
	a.done = cs.Done
	clear(a.pending)
}

// Store is the CellID -> Welford result store: it accepts per-replicate
// summaries in any order (workers finish when they finish) and folds
// each cell's stream strictly in replicate-index order, so the folded
// state — and therefore every checkpoint, every streamed snapshot, and
// the final report — is bit-identical to a serial run's. Safe for
// concurrent Add.
type Store struct {
	mu     sync.Mutex
	layout Layout
	cuts   int
	cells  []*cellAccum
	folded int

	// OnAdvance, when set before the first Add, is called under the
	// store lock every time a cell's watermark advances, with a copy of
	// the cell's new snapshot. Calls are strictly ordered per cell
	// (done only ever grows by the reported amount); keep the callback
	// fast and never let it re-enter the store.
	OnAdvance func(cell int, snap CellSnapshot)
}

// NewStore builds an empty store for the given geometry.
func NewStore(layout Layout, cuts int) (*Store, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if cuts < 1 {
		return nil, fmt.Errorf("campaign: store needs at least one coverage cut, got %d", cuts)
	}
	st := &Store{layout: layout, cuts: cuts, cells: make([]*cellAccum, layout.Cells)}
	for i := range st.cells {
		st.cells[i] = newCellAccum(cuts)
	}
	return st, nil
}

// Layout returns the store's task geometry.
func (st *Store) Layout() Layout { return st.layout }

// Add feeds one completed task's summary. It buffers out-of-order
// arrivals and folds every ready replicate in index order, returning
// the task's cell and that cell's new watermark.
func (st *Store) Add(task int, s Summary) (cell, done int, err error) {
	if task < 0 || task >= st.layout.Tasks() {
		return 0, 0, fmt.Errorf("campaign: task %d outside [0,%d)", task, st.layout.Tasks())
	}
	if err := s.validate(st.cuts); err != nil {
		return 0, 0, err
	}
	cell = st.layout.CellOf(task)
	rep := st.layout.RepOf(task)
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.cells[cell]
	if rep < a.done {
		return 0, 0, fmt.Errorf("campaign: task %d (cell %d rep %d) already folded (watermark %d)",
			task, cell, rep, a.done)
	}
	if _, dup := a.pending[rep]; dup {
		return 0, 0, fmt.Errorf("campaign: task %d (cell %d rep %d) already buffered", task, cell, rep)
	}
	a.pending[rep] = s
	advanced := false
	for {
		next, ok := a.pending[a.done]
		if !ok {
			break
		}
		delete(a.pending, a.done)
		a.fold(next)
		st.folded++
		advanced = true
	}
	if advanced && st.OnAdvance != nil {
		st.OnAdvance(cell, a.snapshot())
	}
	return cell, a.done, nil
}

// Done returns a cell's completed-replicate watermark.
func (st *Store) Done(cell int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cells[cell].done
}

// TasksFolded returns the total folded-replicate count across cells.
func (st *Store) TasksFolded() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.folded
}

// Complete reports whether every cell's watermark reached Replicates.
func (st *Store) Complete() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.folded == st.layout.Tasks()
}

// Cell returns a copy of one cell's folded state.
func (st *Store) Cell(i int) CellSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cells[i].snapshot()
}

// Snapshot copies every cell's folded state — the checkpoint payload.
func (st *Store) Snapshot() []CellSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]CellSnapshot, len(st.cells))
	for i, a := range st.cells {
		out[i] = a.snapshot()
	}
	return out
}

// Restore overwrites the store with a checkpoint's cell states. The
// snapshot must match the store's geometry exactly.
func (st *Store) Restore(cells []CellSnapshot) error {
	if len(cells) != st.layout.Cells {
		return fmt.Errorf("campaign: snapshot has %d cells, campaign has %d", len(cells), st.layout.Cells)
	}
	for i, cs := range cells {
		if err := cs.validate(st.layout, st.cuts); err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.folded = 0
	for i, cs := range cells {
		st.cells[i].restore(cs)
		st.folded += cs.Done
	}
	return nil
}
