package circuits

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes Prepared artifacts keyed by (unit spec, Params), so a
// campaign touching the same circuit from many lots, replicates, or
// worker goroutines builds it exactly once. Concurrent Get calls for
// the same key block on one build; distinct keys build in parallel.
//
// With a Store attached, the cache consults the on-disk artifact
// before building: a hit counts as a load (not a build), a miss builds
// and persists, and a corrupt or mismatched artifact is rebuilt
// cleanly and overwritten. The Builds/Loads counters let tests pin the
// warm-store contract ("second process: zero rebuilds").
//
// The zero value is not usable; call NewCache or NewCacheWithStore.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	builds  atomic.Int64
	loads   atomic.Int64
	store   *Store
}

type cacheKey struct {
	spec   string
	params Params
}

type cacheEntry struct {
	once sync.Once
	prep *Prepared
	err  error
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// NewCacheWithStore returns a cache backed by an on-disk Prepared
// store; a nil store degrades to NewCache.
func NewCacheWithStore(store *Store) *Cache {
	ca := NewCache()
	ca.store = store
	return ca
}

// Get returns the Prepared artifact for (spec, p), building it on first
// use. spec must be a unit spec (see Expand); a failed build is cached
// too, so a bad spec does not retry on every replicate.
func (ca *Cache) Get(spec string, p Params) (*Prepared, error) {
	key := cacheKey{spec: spec, params: p}
	ca.mu.Lock()
	e, ok := ca.entries[key]
	if !ok {
		e = &cacheEntry{}
		ca.entries[key] = e
	}
	ca.mu.Unlock()
	e.once.Do(func() {
		e.prep, e.err = ca.fill(spec, p)
	})
	return e.prep, e.err
}

// fill performs the cold path for one cache entry: store load if a
// store is attached (any store error — miss, corruption, schema skew —
// falls through to a clean rebuild), then build and persist.
func (ca *Cache) fill(spec string, p Params) (*Prepared, error) {
	if ca.store == nil {
		ca.builds.Add(1)
		return PrepareSpec(spec, p)
	}
	c, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	if pr, err := ca.store.Load(c, p); err == nil {
		ca.loads.Add(1)
		return pr, nil
	}
	// A miss is the expected cold path; a corrupt, tampered, or
	// schema-skewed artifact is rebuilt cleanly and overwritten below.
	ca.builds.Add(1)
	pr, err := Prepare(c, p)
	if err != nil {
		return nil, err
	}
	if err := ca.store.Save(pr); err != nil {
		return nil, err
	}
	return pr, nil
}

// Builds reports how many cold preparations the cache has performed —
// the counter the exactly-once-per-campaign tests pin.
func (ca *Cache) Builds() int { return int(ca.builds.Load()) }

// Loads reports how many preparations were served from the on-disk
// store instead of being built — the counter the warm-store tests pin.
func (ca *Cache) Loads() int { return int(ca.loads.Load()) }
