package circuits

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes Prepared artifacts keyed by (unit spec, Params), so a
// campaign touching the same circuit from many lots, replicates, or
// worker goroutines builds it exactly once. Concurrent Get calls for
// the same key block on one build; distinct keys build in parallel.
//
// The zero value is not usable; call NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	builds  atomic.Int64
}

type cacheKey struct {
	spec   string
	params Params
}

type cacheEntry struct {
	once sync.Once
	prep *Prepared
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Get returns the Prepared artifact for (spec, p), building it on first
// use. spec must be a unit spec (see Expand); a failed build is cached
// too, so a bad spec does not retry on every replicate.
func (ca *Cache) Get(spec string, p Params) (*Prepared, error) {
	key := cacheKey{spec: spec, params: p}
	ca.mu.Lock()
	e, ok := ca.entries[key]
	if !ok {
		e = &cacheEntry{}
		ca.entries[key] = e
	}
	ca.mu.Unlock()
	e.once.Do(func() {
		ca.builds.Add(1)
		e.prep, e.err = PrepareSpec(spec, p)
	})
	return e.prep, e.err
}

// Builds reports how many cold preparations the cache has performed —
// the counter the exactly-once-per-campaign tests pin.
func (ca *Cache) Builds() int { return int(ca.builds.Load()) }
