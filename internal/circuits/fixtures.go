package circuits

import (
	"bytes"
	"embed"
	"fmt"

	"repro/internal/netlist"
)

// Embedded ISCAS-scale .bench fixtures: frozen renderings of the
// lsi<N> generator, checked in so the exact netlist bytes are pinned
// independently of any future generator change — "lsi1k" today and
// "lsi1k" in five years are the same circuit, while "lsi1000" tracks
// the generator.
//
//go:embed fixtures/*.bench
var fixtureFS embed.FS

// fixture is one embedded workload of the registry.
type fixture struct {
	spec string
	path string
	doc  string
}

// fixtureList enumerates the embedded workloads, in the order List
// prints them.
func fixtureList() []fixture {
	return []fixture{
		{"lsi1k", "fixtures/lsi1k.bench", "embedded 1k-gate LSI netlist (frozen lsi1000)"},
		{"lsi4k", "fixtures/lsi4k.bench", "embedded 4k-gate LSI netlist (frozen lsi4000)"},
	}
}

// resolveFixture parses an embedded fixture. The middle return is
// whether spec names a fixture at all.
func resolveFixture(spec string) (*netlist.Circuit, bool, error) {
	for _, f := range fixtureList() {
		if f.spec != spec {
			continue
		}
		data, err := fixtureFS.ReadFile(f.path)
		if err != nil {
			return nil, true, fmt.Errorf("circuits: fixture %s: %w", spec, err)
		}
		c, err := netlist.ParseBench(f.spec, bytes.NewReader(data))
		if err != nil {
			return nil, true, fmt.Errorf("circuits: fixture %s: %w", spec, err)
		}
		if err := c.Validate(); err != nil {
			return nil, true, fmt.Errorf("circuits: fixture %s: %w", spec, err)
		}
		return c, true, nil
	}
	return nil, false, nil
}

// isFixture reports whether spec names an embedded fixture.
func isFixture(spec string) bool {
	for _, f := range fixtureList() {
		if f.spec == spec {
			return true
		}
	}
	return false
}
