package circuits

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestResolveBuiltins(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		inputs int
	}{
		{"c17", "c17", 5},
		{"rca4", "rca4", 9},
		{"mul4", "mul4", 8},
		{"parity8", "parity8", 8},
		{"dec3", "dec3", 4},
		{"mux2", "mux2", 6},
		{"cmp8", "cmp8", 16},
		{"cla4", "cla4", 9},
		{"alu4", "alu4", 10},
		{"bshift2", "bshift2", 6},
		{"datapath4", "datapath4", 14},
		{"rand7", "rand7", 16},
	}
	for _, tc := range cases {
		c, err := Resolve(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if c.Name != tc.name {
			t.Errorf("%s: name %q", tc.spec, c.Name)
		}
		if len(c.Inputs) != tc.inputs {
			t.Errorf("%s: %d inputs, want %d", tc.spec, len(c.Inputs), tc.inputs)
		}
	}
}

func TestResolveRejectsJunk(t *testing.T) {
	for _, spec := range []string{"", "warp9", "mul", "mul8x", "mulx8", "c18", "rand", "bench:/no/such/file.bench"} {
		if _, err := Resolve(spec); err == nil {
			t.Errorf("Resolve(%q) accepted", spec)
		}
	}
	// A width the generator itself rejects surfaces its error.
	if _, err := Resolve("mul1"); err == nil {
		t.Error("mul1 accepted (generator requires width >= 2)")
	}
}

// TestResolveDeterministic is the cross-cmd regression for the resolver
// drift the per-cmd copies used to accumulate: every consumer now
// shares this registry, so one spec must always produce the same
// circuit, bit for bit in its .bench serialization.
func TestResolveDeterministic(t *testing.T) {
	for _, spec := range []string{"c17", "mul4", "cmp8", "rand42", "dec3"} {
		a, err := Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		var wa, wb bytes.Buffer
		if err := a.WriteBench(&wa); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteBench(&wb); err != nil {
			t.Fatal(err)
		}
		if wa.String() != wb.String() {
			t.Errorf("%s: two resolutions differ", spec)
		}
	}
}

func TestResolveBenchFileAndGlobs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.bench", "a.bench"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(netlist.C17Bench), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Noise the directory expansion must ignore.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Explicit file, both spellings.
	path := filepath.Join(dir, "a.bench")
	for _, spec := range []string{"bench:" + path, path} {
		c, err := Resolve(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(c.Inputs) != 5 || len(c.Outputs) != 2 {
			t.Errorf("%s: got %d inputs, %d outputs", spec, len(c.Inputs), len(c.Outputs))
		}
	}

	// Directory and glob specs expand to sorted unit specs.
	for _, spec := range []string{"bench:" + dir, "bench:" + filepath.Join(dir, "*.bench")} {
		units, err := Expand(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		want := []string{"bench:" + filepath.Join(dir, "a.bench"), "bench:" + filepath.Join(dir, "b.bench")}
		if len(units) != 2 || units[0] != want[0] || units[1] != want[1] {
			t.Errorf("%s: units %v, want %v", spec, units, want)
		}
	}

	// A glob matching nothing is an error, not a silent empty axis.
	if _, err := Expand("bench:" + filepath.Join(dir, "none*.bench")); err == nil {
		t.Error("empty glob accepted")
	}
	// Unit specs are rejected by Resolve when they still hold a glob.
	if _, err := Resolve("bench:" + filepath.Join(dir, "*.bench")); err == nil {
		t.Error("Resolve accepted a glob spec")
	}
}

func TestExpandAllDeduplicates(t *testing.T) {
	units, err := ExpandAll([]string{"mul4", "cmp8", "mul4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 || units[0] != "mul4" || units[1] != "cmp8" {
		t.Errorf("units %v", units)
	}
	if _, err := ExpandAll(nil); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := ExpandAll([]string{"warp9"}); err == nil {
		t.Error("unknown spec accepted at expansion")
	}
	cs, err := ResolveAll([]string{"mul4", "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "mul4" || cs[1].Name != "c17" {
		t.Errorf("ResolveAll: %v", cs)
	}
}

func TestListCoversGrammar(t *testing.T) {
	l := List()
	for _, want := range []string{"c17", "rca<N>", "mul<N>", "parity<N>", "dec<N>", "mux<N>", "cmp<N>", "cla<N>", "alu<N>", "bshift<N>", "datapath<N>", "rand<N>", "bench:<path>", ".bench"} {
		if !strings.Contains(l, want) {
			t.Errorf("List() missing %q", want)
		}
	}
}

// The second half of the cross-cmd regression — no cmd may synthesize
// circuits directly from netlist generators — used to live here as
// TestNoPrivateResolverInCmds, a regexp scan over cmd/ sources with a
// hand-maintained generator list. It is now enforced type-based and
// repo-wide by the repolint registry analyzer (internal/lint), which
// bans any call outside this package to a package-level netlist
// function returning *netlist.Circuit, so the ban list cannot drift.
