// Package circuits is the central workload registry: it resolves
// textual workload specs ("mul8", "rand7", "bench:c432.bench", a
// directory of .bench files) to validated netlist.Circuits, and caches
// the expensive once-per-circuit preparation (fault collapsing, the
// production test program, the strobe-granular coverage ramp) so that
// any number of lots, replicates, or worker goroutines share one
// artifact per circuit. Every cmd resolves circuit names through this
// package; none carries a private resolver.
//
// # Spec grammar
//
//	c17              ISCAS-85 c17 benchmark (6 NAND gates)
//	rca<N>           N-bit ripple-carry adder
//	mul<N>           N×N array multiplier (the paper-scale workload)
//	parity<N>        N-input XOR parity tree
//	dec<N>           N-to-2^N one-hot decoder with enable
//	mux<N>           2^N-to-1 multiplexer tree
//	cmp<N>           N-bit equality comparator
//	cla<N>           N-bit carry-lookahead adder
//	alu<N>           N-bit ALU slice
//	bshift<N>        2^N-bit barrel shifter
//	datapath<N>      N-bit composed datapath
//	rand<seed>       pseudo-random circuit (16 inputs, 400 gates,
//	                 12 outputs), reproducible from the seed
//	lsi<N>           ISCAS'85-class pseudo-random netlist of roughly N
//	                 gates (N >= 100; 1k–10k is the LSI range)
//	lsi1k, lsi4k     embedded .bench fixtures: frozen renderings of
//	                 lsi1000 / lsi4000, pinned byte-for-byte
//	bench:<path>     circuit in ISCAS .bench format; <path> may be a
//	                 file, a directory (expands to every *.bench file
//	                 inside, sorted), or a glob pattern
//	<path>.bench     shorthand for bench:<path>.bench
//
// A spec that names a file or builtin resolves to exactly one circuit;
// a directory or glob spec expands to one circuit per matching .bench
// file. Expand normalizes every spec to such unit specs, which are the
// cache keys of Prepare.
package circuits

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// builtin is one parameterized generator family of the registry.
type builtin struct {
	prefix string
	doc    string
	build  func(n int) (*netlist.Circuit, error)
}

// builtins lists every generator family, in the order List prints them.
func builtins() []builtin {
	return []builtin{
		{"rca", "N-bit ripple-carry adder", netlist.RippleAdder},
		{"mul", "N×N array multiplier (quadratic gate count, LSI-scale)", netlist.ArrayMultiplier},
		{"parity", "N-input XOR parity tree (random-pattern friendly)", netlist.ParityTree},
		{"dec", "N-to-2^N decoder with enable (random-pattern resistant)", netlist.Decoder},
		{"mux", "2^N-to-1 multiplexer tree", netlist.MuxTree},
		{"cmp", "N-bit equality comparator", netlist.Comparator},
		{"cla", "N-bit carry-lookahead adder (wide-fanin reconvergent carries)", netlist.CarryLookaheadAdder},
		{"alu", "N-bit ALU slice: AND/OR/XOR/ADD selected by two op bits", netlist.ALUSlice},
		{"bshift", "2^N-bit logical barrel shifter with N mux stages", netlist.BarrelShifter},
		{"datapath", "N-bit datapath: multiplier and adder feeding an ALU, parity-observed", netlist.Datapath},
		{"rand", "pseudo-random circuit, 16 inputs × 400 gates × 12 outputs, seeded by N",
			func(n int) (*netlist.Circuit, error) {
				return netlist.RandomCircuit(fmt.Sprintf("rand%d", n), 16, 400, 12, int64(n))
			}},
		{"lsi", "ISCAS'85-class pseudo-random netlist of ~N gates (N >= 100; 1k–10k is the LSI range)",
			netlist.LSIChip},
	}
}

// Resolve maps one unit spec to a validated circuit. Directory and glob
// specs (which may name several circuits) are rejected here; use Expand
// first to normalize them to unit specs.
func Resolve(spec string) (*netlist.Circuit, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("circuits: empty spec")
	}
	if path, ok := benchPath(spec); ok {
		return resolveBenchFile(path)
	}
	if spec == "c17" {
		return netlist.C17(), nil
	}
	if c, ok, err := resolveFixture(spec); ok {
		return c, err
	}
	for _, b := range builtins() {
		var n int
		if scan(spec, b.prefix+"%d", &n) {
			c, err := b.build(n)
			if err != nil {
				return nil, fmt.Errorf("circuits: %s: %w", spec, err)
			}
			return c, nil
		}
	}
	return nil, fmt.Errorf("circuits: unknown spec %q (run with -list-circuits for the grammar)", spec)
}

// Expand normalizes one spec to unit specs: builtins map to themselves,
// bench directories and globs fan out to one "bench:<file>" spec per
// matching .bench file (sorted). A bench spec matching nothing is an
// error, not a silent skip.
func Expand(spec string) ([]string, error) {
	spec = strings.TrimSpace(spec)
	path, ok := benchPath(spec)
	if !ok {
		// Builtin: check the grammar so a typo fails at expansion time.
		// Syntactic only — no synthesis happens until the spec is
		// actually prepared, so expanding (and validating) a large grid
		// costs nothing.
		if err := checkBuiltin(spec); err != nil {
			return nil, err
		}
		return []string{spec}, nil
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		path = filepath.Join(path, "*.bench")
	}
	if !strings.ContainsAny(path, "*?[") {
		return []string{"bench:" + path}, nil
	}
	matches, err := filepath.Glob(path)
	if err != nil {
		return nil, fmt.Errorf("circuits: bad glob %q: %w", path, err)
	}
	var units []string
	for _, m := range matches {
		if strings.HasSuffix(m, ".bench") {
			units = append(units, "bench:"+m)
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("circuits: spec %q matches no .bench files", spec)
	}
	sort.Strings(units)
	return units, nil
}

// ExpandAll expands a spec list into a deduplicated, order-preserving
// unit-spec list.
func ExpandAll(specs []string) ([]string, error) {
	var units []string
	seen := make(map[string]bool)
	for _, spec := range specs {
		u, err := Expand(spec)
		if err != nil {
			return nil, err
		}
		for _, unit := range u {
			if !seen[unit] {
				seen[unit] = true
				units = append(units, unit)
			}
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("circuits: no specs given")
	}
	return units, nil
}

// ResolveAll is ExpandAll followed by Resolve on every unit spec.
func ResolveAll(specs []string) ([]*netlist.Circuit, error) {
	units, err := ExpandAll(specs)
	if err != nil {
		return nil, err
	}
	out := make([]*netlist.Circuit, len(units))
	for i, u := range units {
		if out[i], err = Resolve(u); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkBuiltin verifies a non-bench spec against the grammar without
// synthesizing anything. Parameter-range errors (a width the generator
// rejects) still surface at Resolve time.
func checkBuiltin(spec string) error {
	if spec == "c17" || isFixture(spec) {
		return nil
	}
	for _, b := range builtins() {
		var n int
		if scan(spec, b.prefix+"%d", &n) {
			return nil
		}
	}
	return fmt.Errorf("circuits: unknown spec %q (run with -list-circuits for the grammar)", spec)
}

// benchPath reports whether the spec names a .bench source and returns
// the path part: either the explicit "bench:<path>" form or a bare path
// ending in ".bench".
func benchPath(spec string) (string, bool) {
	if rest, ok := strings.CutPrefix(spec, "bench:"); ok {
		return rest, true
	}
	if strings.HasSuffix(spec, ".bench") {
		return spec, true
	}
	return "", false
}

// resolveBenchFile parses and validates one .bench file.
func resolveBenchFile(path string) (*netlist.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("circuits: %w", err)
	}
	defer f.Close()
	c, err := netlist.ParseBench(path, f)
	if err != nil {
		return nil, fmt.Errorf("circuits: %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuits: %s: %w", path, err)
	}
	return c, nil
}

// List renders the spec grammar with one example per family, for the
// cmds' -list-circuits flag.
func List() string {
	var sb strings.Builder
	sb.WriteString("workload specs (comma-separable where a flag takes a list):\n")
	sb.WriteString("  c17            ISCAS-85 c17 benchmark (6 NAND gates)\n")
	for _, b := range builtins() {
		fmt.Fprintf(&sb, "  %-14s %s\n", b.prefix+"<N>", b.doc)
	}
	for _, f := range fixtureList() {
		fmt.Fprintf(&sb, "  %-14s %s\n", f.spec, f.doc)
	}
	sb.WriteString("  bench:<path>   ISCAS .bench netlist; a directory or glob expands\n")
	sb.WriteString("                 to every matching *.bench file\n")
	sb.WriteString("  <path>.bench   shorthand for bench:<path>.bench\n")
	sb.WriteString("examples: mul8  cmp16  rand7  bench:c432.bench  bench:circuits/\n")
	return sb.String()
}

func scan(s, format string, n *int) bool {
	matched, err := fmt.Sscanf(s, format, n)
	if err != nil || matched != 1 {
		return false
	}
	// Reject trailing junk Sscanf tolerates ("mul8x" must not parse as
	// mul8): the round-trip must reproduce the spec exactly.
	return fmt.Sprintf(format, *n) == s
}
