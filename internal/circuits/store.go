package circuits

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/atpg"
	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// PreparedSchema versions the on-disk Prepared artifact. A file whose
// schema string differs is rejected with campaign.ErrSchema — never
// silently misparsed.
const PreparedSchema = "circuits-prepared/v1"

// ErrStoreMiss is returned by Store.Load when no artifact exists for
// the fingerprint — the expected cold-store outcome, distinct from the
// corruption errors (campaign.ErrCorrupt, campaign.ErrSchema) that a
// damaged artifact raises.
var ErrStoreMiss = errors.New("prepared artifact not in store")

// Store persists Prepared artifacts on disk so that a second process
// (or a second run of the same process) skips the expensive
// preparation entirely. Files are content-addressed: the key is a
// SHA-256 fingerprint of the circuit's canonical .bench rendering plus
// every results-relevant Params field, so a changed netlist or changed
// test-program knobs can never resurrect a stale artifact. Each file
// is a checksummed, schema-versioned campaign envelope written
// atomically — truncation, bit rot, and hand edits surface as named
// errors, and the Cache falls back to a clean rebuild.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a Prepared store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("circuits: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("circuits: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Fingerprint computes the content address of a (circuit, Params)
// preparation: a SHA-256 over the schema string, the results-relevant
// Params fields, and the circuit's canonical .bench rendering. Engine
// and SimWorkers are deliberately excluded — every engine produces an
// identical artifact, so a store populated with -engine ppsfp serves a
// -engine serial run.
func Fingerprint(c *netlist.Circuit, p Params) (string, error) {
	var sb strings.Builder
	if err := c.WriteBench(&sb); err != nil {
		return "", fmt.Errorf("circuits: fingerprint: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, PreparedSchema+"\n")
	fmt.Fprintf(h, "random_patterns=%d seed=%d backtrack_limit=%d sample_faults=%d\n",
		p.RandomPatterns, p.Seed, p.BacktrackLimit, p.SampleFaults)
	io.WriteString(h, sb.String())
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (s *Store) path(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".json")
}

// storedFault addresses a fault by gate name rather than gate ID:
// ParseBench renumbers IDs, names survive the round trip.
type storedFault struct {
	Gate  string `json:"gate"`
	Pin   int    `json:"pin"`
	Stuck bool   `json:"stuck"`
}

// storedPrepared is the envelope body. Patterns are bit strings over
// the circuit's input declaration order and FirstDetect holds strobe
// step indices over the output declaration order — both orders are
// preserved by the canonical .bench rendering, so the artifact is
// valid against the re-parsed circuit. The ramp is not stored; it is
// losslessly rebuilt from FirstDetect.
type storedPrepared struct {
	Bench          string        `json:"bench"`
	RandomPatterns int           `json:"random_patterns"`
	Seed           int64         `json:"seed"`
	BacktrackLimit int           `json:"backtrack_limit"`
	SampleFaults   int           `json:"sample_faults"`
	UniverseSize   int           `json:"universe_size"`
	Sampled        bool          `json:"sampled"`
	Universe       []storedFault `json:"universe"`
	Patterns       []string      `json:"patterns"`
	ATPG           atpg.Tally    `json:"atpg"`
	FirstDetect    []int         `json:"first_detect"`
	Steps          int           `json:"steps"`
	CoverageCILow  float64       `json:"coverage_ci_lo"`
	CoverageCIHigh float64       `json:"coverage_ci_hi"`
}

// Save persists a Prepared artifact under its fingerprint, atomically.
func (s *Store) Save(pr *Prepared) error {
	fp, err := Fingerprint(pr.Circuit, pr.Params)
	if err != nil {
		return err
	}
	var sb strings.Builder
	if err := pr.Circuit.WriteBench(&sb); err != nil {
		return fmt.Errorf("circuits: store save: %w", err)
	}
	body := storedPrepared{
		Bench:          sb.String(),
		RandomPatterns: pr.Params.RandomPatterns,
		Seed:           pr.Params.Seed,
		BacktrackLimit: pr.Params.BacktrackLimit,
		SampleFaults:   pr.Params.SampleFaults,
		UniverseSize:   pr.UniverseSize,
		Sampled:        pr.Sampled,
		Universe:       make([]storedFault, len(pr.Universe)),
		Patterns:       make([]string, len(pr.Patterns)),
		ATPG:           pr.ATPG,
		FirstDetect:    pr.Result.FirstDetect,
		Steps:          pr.Result.Patterns,
		CoverageCILow:  pr.CoverageCILow,
		CoverageCIHigh: pr.CoverageCIHigh,
	}
	for i, f := range pr.Universe {
		body.Universe[i] = storedFault{Gate: pr.Circuit.Gates[f.Gate].Name, Pin: f.Pin, Stuck: f.Stuck}
	}
	for i, pat := range pr.Patterns {
		bits := make([]byte, len(pat))
		for j, b := range pat {
			if b {
				bits[j] = '1'
			} else {
				bits[j] = '0'
			}
		}
		body.Patterns[i] = string(bits)
	}
	return campaign.WriteEnvelope(s.path(fp), PreparedSchema, body)
}

// Load retrieves the Prepared artifact for (c, p), rebuilding the
// in-memory form from the stored one: the circuit is re-parsed from
// its canonical .bench bytes and re-validated, fault names are
// remapped to the fresh gate IDs, and the sparse ramp is recomputed
// from the stored first-detect steps. A missing artifact is
// ErrStoreMiss; a damaged one surfaces campaign.ErrCorrupt,
// campaign.ErrSchema, or campaign.ErrMismatch via errors.Is.
func (s *Store) Load(c *netlist.Circuit, p Params) (*Prepared, error) {
	fp, err := Fingerprint(c, p)
	if err != nil {
		return nil, err
	}
	path := s.path(fp)
	raw, err := campaign.ReadEnvelope(path, PreparedSchema)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("circuits: %w: %s", ErrStoreMiss, path)
		}
		return nil, err
	}
	var body storedPrepared
	if err := json.Unmarshal(raw, &body); err != nil {
		return nil, fmt.Errorf("circuits: store %s: %w: %w", path, campaign.ErrCorrupt, err)
	}
	if body.RandomPatterns != p.RandomPatterns || body.Seed != p.Seed ||
		body.BacktrackLimit != p.BacktrackLimit || body.SampleFaults != p.SampleFaults {
		return nil, fmt.Errorf("circuits: store %s: %w: stored params differ from requested",
			path, campaign.ErrMismatch)
	}
	stored, err := netlist.ParseBench(c.Name, strings.NewReader(body.Bench))
	if err != nil {
		return nil, fmt.Errorf("circuits: store %s: %w: %w", path, campaign.ErrCorrupt, err)
	}
	stats, err := stored.ComputeStats()
	if err != nil {
		return nil, fmt.Errorf("circuits: store %s: %w: %w", path, campaign.ErrCorrupt, err)
	}
	universe := make([]fault.Fault, len(body.Universe))
	for i, sf := range body.Universe {
		id, ok := stored.GateByName(sf.Gate)
		if !ok {
			return nil, fmt.Errorf("circuits: store %s: %w: fault names unknown gate %q",
				path, campaign.ErrCorrupt, sf.Gate)
		}
		if sf.Pin >= len(stored.Gates[id].Fanin) {
			return nil, fmt.Errorf("circuits: store %s: %w: fault pin %d out of range on %q",
				path, campaign.ErrCorrupt, sf.Pin, sf.Gate)
		}
		universe[i] = fault.Fault{Gate: id, Pin: sf.Pin, Stuck: sf.Stuck}
	}
	patterns := make([]logicsim.Pattern, len(body.Patterns))
	for i, bits := range body.Patterns {
		if len(bits) != len(stored.Inputs) {
			return nil, fmt.Errorf("circuits: store %s: %w: pattern %d has %d bits for %d inputs",
				path, campaign.ErrCorrupt, i, len(bits), len(stored.Inputs))
		}
		pat := make(logicsim.Pattern, len(bits))
		for j := 0; j < len(bits); j++ {
			switch bits[j] {
			case '0':
			case '1':
				pat[j] = true
			default:
				return nil, fmt.Errorf("circuits: store %s: %w: pattern %d has non-binary byte",
					path, campaign.ErrCorrupt, i)
			}
		}
		patterns[i] = pat
	}
	if len(body.FirstDetect) != len(universe) {
		return nil, fmt.Errorf("circuits: store %s: %w: %d first-detect entries for %d faults",
			path, campaign.ErrCorrupt, len(body.FirstDetect), len(universe))
	}
	wantSteps := len(patterns) * len(stored.Outputs)
	if body.Steps != wantSteps {
		return nil, fmt.Errorf("circuits: store %s: %w: %d steps for %d patterns × %d outputs",
			path, campaign.ErrCorrupt, body.Steps, len(patterns), len(stored.Outputs))
	}
	for i, d := range body.FirstDetect {
		if d != faultsim.NotDetected && (d < 0 || d >= body.Steps) {
			return nil, fmt.Errorf("circuits: store %s: %w: first-detect %d of fault %d out of range",
				path, campaign.ErrCorrupt, d, i)
		}
	}
	res := faultsim.Result{FirstDetect: body.FirstDetect, Patterns: body.Steps}
	return &Prepared{
		Circuit:        stored,
		Stats:          stats,
		Params:         p,
		UniverseSize:   body.UniverseSize,
		Sampled:        body.Sampled,
		Universe:       universe,
		Patterns:       patterns,
		ATPG:           body.ATPG,
		Curve:          faultsim.SparseRamp(res),
		Result:         res,
		CoverageCILow:  body.CoverageCILow,
		CoverageCIHigh: body.CoverageCIHigh,
	}, nil
}
