package circuits

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tester"
)

// Params are the test-program knobs that shape a Prepared artifact.
// Two preparations with equal Params over the same circuit are
// interchangeable, which is what lets the Cache key on (spec, Params).
type Params struct {
	// RandomPatterns seeds the ordered production test set before the
	// deterministic PODEM cleanup.
	RandomPatterns int
	// Seed makes the test program reproducible.
	Seed int64
	// Engine selects the fault-simulation engine for ATPG dropping and
	// the coverage ramp; every engine yields an identical ramp, so this
	// only affects speed.
	Engine faultsim.Engine
	// SimWorkers is the goroutine count for faultsim.Concurrent
	// (0 = GOMAXPROCS); other engines ignore it.
	SimWorkers int
}

// Validate rejects parameter values no preparation could honor.
func (p Params) Validate() error {
	if p.RandomPatterns < 0 {
		return fmt.Errorf("circuits: random pattern count must be >= 0, got %d", p.RandomPatterns)
	}
	if p.SimWorkers < 0 {
		return fmt.Errorf("circuits: sim worker count must be >= 0, got %d", p.SimWorkers)
	}
	return nil
}

// Prepared is the once-per-circuit artifact everything downstream
// consumes: the validated circuit, its collapsed fault universe, the
// ordered production test program, and the strobe-granular coverage
// ramp. It is read-only after Prepare, so any number of lots,
// replicates, and worker goroutines may share one instance; per-worker
// mutable state (the ATE's simulator) is cloned via NewATE.
type Prepared struct {
	Circuit *netlist.Circuit
	Stats   netlist.Stats
	Params  Params
	// Universe is the collapsed fault universe (one representative per
	// equivalence class).
	Universe []fault.Fault
	// Patterns is the ordered production test set: bring-up and
	// rising-weight random first (the gentle early ramp before the
	// paper's first strobe), uniform random, then PODEM cleanup.
	Patterns []logicsim.Pattern
	// Curve is the cumulative coverage ramp at strobe granularity
	// (pattern × output), the bookkeeping the Sentry used for Table 1.
	Curve []faultsim.CoveragePoint
	// Result is the full-program fault-simulation outcome.
	Result faultsim.Result
}

// Prepare performs the once-per-circuit work: fault collapsing, test-
// set construction (ATPG), and the strobe-granular coverage ramp. It is
// the uncached entry point; campaigns share artifacts through a Cache.
func Prepare(c *netlist.Circuit, p Params) (*Prepared, error) {
	if c == nil {
		return nil, fmt.Errorf("circuits: nil circuit")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	stats, err := c.ComputeStats()
	if err != nil {
		return nil, err
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns, err := atpg.ProductionTestsEngine(c, p.RandomPatterns/2, p.RandomPatterns/2, p.Seed,
		p.Engine, faultsim.Options{Workers: p.SimWorkers})
	if err != nil {
		return nil, err
	}
	curve, simRes, err := faultsim.StepCoverageCurveOpts(c, universe, patterns,
		p.Engine, faultsim.Options{Workers: p.SimWorkers})
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Circuit:  c,
		Stats:    stats,
		Params:   p,
		Universe: universe,
		Patterns: patterns,
		Curve:    curve,
		Result:   simRes,
	}, nil
}

// PrepareSpec resolves a unit spec and prepares it, uncached.
func PrepareSpec(spec string, p Params) (*Prepared, error) {
	c, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	return Prepare(c, p)
}

// FinalCoverage returns the pattern set's final fault coverage.
func (pr *Prepared) FinalCoverage() float64 { return pr.Result.Coverage() }

// FaultCount returns the size of the collapsed fault universe.
func (pr *Prepared) FaultCount() int { return len(pr.Universe) }

// NewATE builds a tester over the shared pattern set, pre-simulating
// the good machine. One ATE serves any number of sequential calls;
// concurrent consumers clone one each.
func (pr *Prepared) NewATE() (*tester.ATE, error) {
	return tester.New(pr.Circuit, pr.Patterns)
}
