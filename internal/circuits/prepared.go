package circuits

import (
	"fmt"
	"sort"

	"repro/internal/atpg"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tester"
)

// Params are the test-program knobs that shape a Prepared artifact.
// Two preparations with equal Params over the same circuit are
// interchangeable, which is what lets the Cache key on (spec, Params).
type Params struct {
	// RandomPatterns seeds the ordered production test set before the
	// deterministic PODEM cleanup.
	RandomPatterns int
	// Seed makes the test program reproducible.
	Seed int64
	// Engine selects the fault-simulation engine for ATPG dropping and
	// the coverage ramp; every engine yields an identical ramp, so this
	// only affects speed.
	Engine faultsim.Engine
	// SimWorkers is the goroutine count for faultsim.Concurrent
	// (0 = GOMAXPROCS); other engines ignore it.
	SimWorkers int
	// BacktrackLimit bounds PODEM's search per fault during cleanup
	// ATPG (0 = the generator's default). Faults that exhaust the
	// budget are tallied as Aborted instead of stalling the whole
	// preparation — the knob that makes ISCAS-scale circuits finish.
	BacktrackLimit int
	// SampleFaults, when > 0, prepares against a deterministic random
	// sample of at most this many collapsed fault classes instead of
	// the full universe. ATPG, the coverage ramp, and lot generation
	// all operate coherently on the sample; CoverageCILow/High bound
	// the true whole-universe coverage. Zero means no sampling.
	SampleFaults int
}

// Validate rejects parameter values no preparation could honor.
func (p Params) Validate() error {
	if p.RandomPatterns < 0 {
		return fmt.Errorf("circuits: random pattern count must be >= 0, got %d", p.RandomPatterns)
	}
	if p.SimWorkers < 0 {
		return fmt.Errorf("circuits: sim worker count must be >= 0, got %d", p.SimWorkers)
	}
	if p.BacktrackLimit < 0 {
		return fmt.Errorf("circuits: backtrack limit must be >= 0, got %d", p.BacktrackLimit)
	}
	if p.SampleFaults < 0 {
		return fmt.Errorf("circuits: fault sample size must be >= 0, got %d", p.SampleFaults)
	}
	return nil
}

// Prepared is the once-per-circuit artifact everything downstream
// consumes: the validated circuit, its (possibly sampled) collapsed
// fault universe, the ordered production test program, and the
// strobe-granular coverage ramp. It is read-only after Prepare, so any
// number of lots, replicates, and worker goroutines may share one
// instance; per-worker mutable state (the ATE's simulator) is cloned
// via NewATE.
type Prepared struct {
	Circuit *netlist.Circuit
	Stats   netlist.Stats
	Params  Params
	// UniverseSize is the size of the full collapsed fault universe
	// (one representative per equivalence class), before any sampling.
	UniverseSize int
	// Sampled reports whether Universe is a proper random sample of
	// the full universe (Params.SampleFaults was set and smaller than
	// UniverseSize).
	Sampled bool
	// Universe is the working fault list: the full collapsed universe,
	// or the deterministic sample when Sampled.
	Universe []fault.Fault
	// Patterns is the ordered production test set: bring-up and
	// rising-weight random first (the gentle early ramp before the
	// paper's first strobe), uniform random, then PODEM cleanup.
	Patterns []logicsim.Pattern
	// ATPG tallies the per-fault PODEM outcomes over Universe:
	// Detected + Untestable + Aborted = Faults. Aborted > 0 means the
	// backtrack budget truncated the search somewhere.
	ATPG atpg.Tally
	// Curve is the cumulative coverage ramp at strobe granularity
	// (pattern × output), change-point compressed so memory stays
	// bounded at LSI scale; the bookkeeping the Sentry used for
	// Table 1.
	Curve faultsim.Ramp
	// Result is the full-program fault-simulation outcome over
	// Universe.
	Result faultsim.Result
	// CoverageCILow/CoverageCIHigh bound the true whole-universe final
	// coverage at 95% confidence. Without sampling both collapse to
	// the exact final coverage.
	CoverageCILow  float64
	CoverageCIHigh float64
}

// Prepare performs the once-per-circuit work as a staged pipeline:
// stats, fault collapsing and optional sampling, budgeted test-set
// construction (ATPG), the sparse strobe-granular coverage ramp, and
// the coverage confidence interval. It is the uncached entry point;
// campaigns share artifacts through a Cache.
func Prepare(c *netlist.Circuit, p Params) (*Prepared, error) {
	if c == nil {
		return nil, fmt.Errorf("circuits: nil circuit")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Stage 1: structural validation and stats.
	stats, err := c.ComputeStats()
	if err != nil {
		return nil, err
	}
	// Stage 2: fault universe — collapse, then optionally sample. The
	// sample is drawn before ATPG so generation, dropping, the ramp,
	// and lot generation all see the same fault list.
	full := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	universe := full
	sampled := false
	if p.SampleFaults > 0 && p.SampleFaults < len(full) {
		universe = sampleFaults(full, p.SampleFaults, p.Seed)
		sampled = true
	}
	// Stage 3: budgeted production test program over the working
	// universe.
	opts := faultsim.Options{Workers: p.SimWorkers}
	patterns, tally, err := atpg.ProductionTestsBudget(c, p.RandomPatterns/2, p.RandomPatterns/2,
		p.Seed, universe, p.BacktrackLimit, p.Engine, opts)
	if err != nil {
		return nil, err
	}
	// Stage 4: strobe-granular simulation and the sparse ramp.
	simRes, err := faultsim.RunStepsOpts(c, universe, patterns, p.Engine, opts)
	if err != nil {
		return nil, err
	}
	ramp := faultsim.SparseRamp(simRes)
	// Stage 5: bound the true whole-universe coverage.
	detected := 0
	for _, d := range simRes.FirstDetect {
		if d != faultsim.NotDetected {
			detected++
		}
	}
	var ciLo, ciHi float64
	if sampled {
		ciLo, ciHi, err = dist.SampleCoverageCI(len(full), len(universe), detected, 0.95)
		if err != nil {
			return nil, fmt.Errorf("circuits: coverage interval: %w", err)
		}
	} else {
		ciLo = simRes.Coverage()
		ciHi = ciLo
	}
	return &Prepared{
		Circuit:        c,
		Stats:          stats,
		Params:         p,
		UniverseSize:   len(full),
		Sampled:        sampled,
		Universe:       universe,
		Patterns:       patterns,
		ATPG:           tally,
		Curve:          ramp,
		Result:         simRes,
		CoverageCILow:  ciLo,
		CoverageCIHigh: ciHi,
	}, nil
}

// sampleFaults draws m faults from full without replacement, using a
// private splitmix64 stream derived from seed — no global rand state,
// so preparation stays reproducible regardless of what else the
// process is doing. The sample keeps universe order (indices sorted
// ascending), which keeps fault-index-based bookkeeping stable.
func sampleFaults(full []fault.Fault, m int, seed int64) []fault.Fault {
	idx := make([]int, len(full))
	for i := range idx {
		idx[i] = i
	}
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0x7552
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < m; i++ {
		j := i + int(next()%uint64(len(idx)-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := idx[:m]
	sort.Ints(chosen)
	out := make([]fault.Fault, m)
	for i, id := range chosen {
		out[i] = full[id]
	}
	return out
}

// PrepareSpec resolves a unit spec and prepares it, uncached.
func PrepareSpec(spec string, p Params) (*Prepared, error) {
	c, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	return Prepare(c, p)
}

// FinalCoverage returns the pattern set's final fault coverage over
// the working universe (the sample's coverage when Sampled; see
// CoverageCILow/High for the whole-universe bound).
func (pr *Prepared) FinalCoverage() float64 { return pr.Result.Coverage() }

// FaultCount returns the size of the working fault universe.
func (pr *Prepared) FaultCount() int { return len(pr.Universe) }

// NewATE builds a tester over the shared pattern set, pre-simulating
// the good machine. One ATE serves any number of sequential calls;
// concurrent consumers clone one each.
func (pr *Prepared) NewATE() (*tester.ATE, error) {
	return tester.New(pr.Circuit, pr.Patterns)
}
