package circuits

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faultsim"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestStoreRoundTrip(t *testing.T) {
	store := testStore(t)
	p := Params{RandomPatterns: 32, Seed: 7}
	prep, err := PrepareSpec("mul4", p)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(prep); err != nil {
		t.Fatal(err)
	}
	c, err := Resolve("mul4")
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded circuit is re-parsed from canonical .bench bytes, so
	// gate IDs may renumber — everything index-based must still line up.
	if got.Circuit.Name != prep.Circuit.Name ||
		len(got.Circuit.Gates) != len(prep.Circuit.Gates) ||
		len(got.Circuit.Inputs) != len(prep.Circuit.Inputs) ||
		len(got.Circuit.Outputs) != len(prep.Circuit.Outputs) {
		t.Fatalf("circuit shape changed: %v vs %v", got.Stats, prep.Stats)
	}
	if !reflect.DeepEqual(got.Stats, prep.Stats) {
		t.Errorf("stats: got %v want %v", got.Stats, prep.Stats)
	}
	if !reflect.DeepEqual(got.Patterns, prep.Patterns) {
		t.Error("patterns differ after round trip")
	}
	if !reflect.DeepEqual(got.Result.FirstDetect, prep.Result.FirstDetect) {
		t.Error("first-detect steps differ after round trip")
	}
	if !reflect.DeepEqual(got.Curve, prep.Curve) {
		t.Error("coverage ramp differs after round trip")
	}
	if got.ATPG != prep.ATPG {
		t.Errorf("ATPG tally: got %+v want %+v", got.ATPG, prep.ATPG)
	}
	if got.FinalCoverage() != prep.FinalCoverage() {
		t.Errorf("final coverage: got %v want %v", got.FinalCoverage(), prep.FinalCoverage())
	}
	if got.UniverseSize != prep.UniverseSize || got.Sampled != prep.Sampled ||
		got.CoverageCILow != prep.CoverageCILow || got.CoverageCIHigh != prep.CoverageCIHigh {
		t.Errorf("universe metadata differs: %+v", got)
	}
	// Faults travel by gate name; remapped IDs must reference the same
	// named gates.
	if len(got.Universe) != len(prep.Universe) {
		t.Fatalf("universe size: got %d want %d", len(got.Universe), len(prep.Universe))
	}
	for i := range got.Universe {
		gn := got.Circuit.Gates[got.Universe[i].Gate].Name
		wn := prep.Circuit.Gates[prep.Universe[i].Gate].Name
		if gn != wn || got.Universe[i].Pin != prep.Universe[i].Pin ||
			got.Universe[i].Stuck != prep.Universe[i].Stuck {
			t.Fatalf("fault %d: got %s/%d/%v want %s/%d/%v", i,
				gn, got.Universe[i].Pin, got.Universe[i].Stuck,
				wn, prep.Universe[i].Pin, prep.Universe[i].Stuck)
		}
	}
	// The requested Params win (Engine/SimWorkers follow the caller).
	if got.Params != p {
		t.Errorf("params: got %+v want %+v", got.Params, p)
	}
}

func TestStoreMissAndKeying(t *testing.T) {
	store := testStore(t)
	c, err := Resolve("mul4")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{RandomPatterns: 16, Seed: 1}
	if _, err := store.Load(c, p); !errors.Is(err, ErrStoreMiss) {
		t.Fatalf("empty store: err = %v, want ErrStoreMiss", err)
	}
	prep, err := Prepare(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(prep); err != nil {
		t.Fatal(err)
	}
	// Any results-relevant knob moves the fingerprint: the artifact must
	// not serve a different preparation.
	for _, q := range []Params{
		{RandomPatterns: 16, Seed: 2},
		{RandomPatterns: 32, Seed: 1},
		{RandomPatterns: 16, Seed: 1, BacktrackLimit: 50},
		{RandomPatterns: 16, Seed: 1, SampleFaults: 10},
	} {
		if _, err := store.Load(c, q); !errors.Is(err, ErrStoreMiss) {
			t.Errorf("params %+v: err = %v, want ErrStoreMiss", q, err)
		}
	}
	// Engine and SimWorkers are excluded from the key on purpose: every
	// engine produces a bit-identical artifact.
	if _, err := store.Load(c, Params{RandomPatterns: 16, Seed: 1, Engine: faultsim.Serial}); err != nil {
		t.Errorf("engine change missed the store: %v", err)
	}
}

// TestStoreCorruption damages a stored artifact every way the envelope
// protects against and checks each surfaces as the right named error —
// and that the store-backed cache recovers with a clean rebuild that
// overwrites the damage.
func TestStoreCorruption(t *testing.T) {
	p := Params{RandomPatterns: 16, Seed: 3}
	c, err := Resolve("mul4")
	if err != nil {
		t.Fatal(err)
	}
	damage := []struct {
		name    string
		mangle  func(data []byte) []byte
		wantErr error
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }, campaign.ErrCorrupt},
		{"garbage", func(data []byte) []byte { return []byte("not json at all") }, campaign.ErrCorrupt},
		{"tampered-body", func(data []byte) []byte {
			// Flip one digit inside the body without breaking JSON:
			// the checksum must catch it. The envelope writer may or may
			// not re-indent the body, so try both spellings.
			s := strings.Replace(string(data), `"random_patterns":16`, `"random_patterns":61`, 1)
			if s == string(data) {
				s = strings.Replace(string(data), `"random_patterns": 16`, `"random_patterns": 61`, 1)
			}
			if s == string(data) {
				t.Fatal("tamper target not found")
			}
			return []byte(s)
		}, campaign.ErrCorrupt},
		{"wrong-schema", func(data []byte) []byte {
			s := strings.Replace(string(data), PreparedSchema, "circuits-prepared/v999", 1)
			if s == string(data) {
				t.Fatal("schema string not found")
			}
			return []byte(s)
		}, campaign.ErrSchema},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			store := testStore(t)
			prep, err := Prepare(c, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Save(prep); err != nil {
				t.Fatal(err)
			}
			fp, err := Fingerprint(c, p)
			if err != nil {
				t.Fatal(err)
			}
			path := store.path(fp)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, d.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Load(c, p); !errors.Is(err, d.wantErr) {
				t.Fatalf("Load after %s: err = %v, want %v", d.name, err, d.wantErr)
			}
			// The cache treats the damage as a miss: one clean rebuild,
			// and the overwritten artifact serves the next process.
			cache := NewCacheWithStore(store)
			if _, err := cache.Get("mul4", p); err != nil {
				t.Fatalf("rebuild after %s: %v", d.name, err)
			}
			if cache.Builds() != 1 || cache.Loads() != 0 {
				t.Fatalf("after %s: builds=%d loads=%d, want 1/0", d.name, cache.Builds(), cache.Loads())
			}
			if _, err := store.Load(c, p); err != nil {
				t.Fatalf("artifact not repaired after %s: %v", d.name, err)
			}
		})
	}
}

func TestStoreParamsMismatchInsideEnvelope(t *testing.T) {
	// A checksum-valid artifact copied under the wrong fingerprint (or a
	// fingerprint collision in a hand-managed store) must fail the
	// stored-params check, not silently serve the wrong preparation.
	store := testStore(t)
	c, err := Resolve("mul4")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{RandomPatterns: 16, Seed: 4}
	prep, err := Prepare(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(prep); err != nil {
		t.Fatal(err)
	}
	p2 := Params{RandomPatterns: 16, Seed: 5}
	fp, err := Fingerprint(c, p)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(c, p2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.path(fp))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.path(fp2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(c, p2); !errors.Is(err, campaign.ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestCacheColdWarmStore(t *testing.T) {
	dir := t.TempDir()
	p := Params{RandomPatterns: 24, Seed: 9}

	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCacheWithStore(store1)
	first, err := cold.Get("mul4", p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Builds() != 1 || cold.Loads() != 0 {
		t.Fatalf("cold: builds=%d loads=%d, want 1/0", cold.Builds(), cold.Loads())
	}

	// A second cache over the same directory models a second process:
	// zero rebuilds, identical artifact.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCacheWithStore(store2)
	second, err := warm.Get("mul4", p)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Builds() != 0 || warm.Loads() != 1 {
		t.Fatalf("warm: builds=%d loads=%d, want 0/1", warm.Builds(), warm.Loads())
	}
	if !reflect.DeepEqual(first.Result.FirstDetect, second.Result.FirstDetect) ||
		!reflect.DeepEqual(first.Patterns, second.Patterns) ||
		!reflect.DeepEqual(first.Curve, second.Curve) {
		t.Fatal("warm artifact differs from cold build")
	}
}

func TestSampleFaultsDeterministic(t *testing.T) {
	p := Params{RandomPatterns: 16, Seed: 11, SampleFaults: 20}
	a, err := PrepareSpec("mul4", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareSpec("mul4", p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Sampled || len(a.Universe) != 20 {
		t.Fatalf("sampled=%v universe=%d, want true/20", a.Sampled, len(a.Universe))
	}
	if a.UniverseSize <= len(a.Universe) {
		t.Fatalf("universe size %d not larger than sample %d", a.UniverseSize, len(a.Universe))
	}
	if !reflect.DeepEqual(a.Universe, b.Universe) {
		t.Error("same seed drew different samples")
	}
	// The sample is a subsequence of the full collapsed universe
	// (indices kept ascending), and a different seed draws differently.
	p2 := p
	p2.Seed = 12
	c2, err := PrepareSpec("mul4", p2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Universe, c2.Universe) {
		t.Error("different seeds drew identical samples")
	}
	// The CI brackets the sample's point estimate.
	if !(a.CoverageCILow <= a.FinalCoverage() && a.FinalCoverage() <= a.CoverageCIHigh) {
		t.Errorf("CI [%v, %v] does not bracket %v", a.CoverageCILow, a.CoverageCIHigh, a.FinalCoverage())
	}
	if a.CoverageCILow >= a.CoverageCIHigh {
		t.Errorf("sampled CI degenerate: [%v, %v]", a.CoverageCILow, a.CoverageCIHigh)
	}

	// A sample size covering the whole universe is a census: no
	// sampling, exact CI.
	p3 := Params{RandomPatterns: 16, Seed: 11, SampleFaults: 1 << 20}
	census, err := PrepareSpec("mul4", p3)
	if err != nil {
		t.Fatal(err)
	}
	if census.Sampled || census.CoverageCILow != census.CoverageCIHigh {
		t.Errorf("census: sampled=%v CI [%v, %v]", census.Sampled, census.CoverageCILow, census.CoverageCIHigh)
	}
}

// TestLSIScaleStore is the big-circuit smoke test (`make lsi-smoke`):
// an lsi1k fixture prepares end to end with a sampled universe and a
// budgeted ATPG, a second process reuses the on-disk artifact with zero
// rebuilds, and the tallies partition.
func TestLSIScaleStore(t *testing.T) {
	if testing.Short() {
		t.Skip("LSI-scale preparation skipped with -short")
	}
	dir := t.TempDir()
	p := Params{RandomPatterns: 48, Seed: 1981, SampleFaults: 150, BacktrackLimit: 50}

	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCacheWithStore(store1)
	first, err := cold.Get("lsi1k", p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Builds() != 1 {
		t.Fatalf("cold builds = %d", cold.Builds())
	}
	if !first.Sampled || first.FaultCount() != 150 {
		t.Fatalf("sampled=%v faults=%d, want true/150", first.Sampled, first.FaultCount())
	}
	tally := first.ATPG
	if tally.Faults != 150 || tally.Detected+tally.Untestable+tally.Aborted != tally.Faults {
		t.Fatalf("tally does not partition: %+v", tally)
	}
	if first.FinalCoverage() <= 0 {
		t.Fatal("no coverage at all on lsi1k")
	}

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCacheWithStore(store2)
	second, err := warm.Get("lsi1k", p)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Builds() != 0 || warm.Loads() != 1 {
		t.Fatalf("warm: builds=%d loads=%d, want 0/1", warm.Builds(), warm.Loads())
	}
	if !reflect.DeepEqual(first.Result.FirstDetect, second.Result.FirstDetect) ||
		first.ATPG != second.ATPG ||
		!reflect.DeepEqual(first.Curve, second.Curve) {
		t.Fatal("warm lsi1k artifact differs from cold build")
	}
}
