package circuits

import (
	"sync"
	"testing"
)

func TestCacheBuildsExactlyOnce(t *testing.T) {
	// Many goroutines racing for the same (spec, params) key must share
	// one build; distinct keys build separately.
	cache := NewCache()
	p := Params{RandomPatterns: 16, Seed: 3}
	const goroutines = 16
	preps := make([]*Prepared, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prep, err := cache.Get("mul4", p)
			if err != nil {
				t.Error(err)
				return
			}
			preps[i] = prep
		}(i)
	}
	wg.Wait()
	if cache.Builds() != 1 {
		t.Errorf("%d builds for one key", cache.Builds())
	}
	for i := 1; i < goroutines; i++ {
		if preps[i] != preps[0] {
			t.Fatal("goroutines received different artifacts")
		}
	}

	// A different circuit, and the same circuit under different params,
	// are separate artifacts.
	if _, err := cache.Get("cmp8", p); err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed = 4
	if _, err := cache.Get("mul4", p2); err != nil {
		t.Fatal(err)
	}
	if cache.Builds() != 3 {
		t.Errorf("Builds() = %d, want 3", cache.Builds())
	}
	// And a repeat hit stays cached.
	if _, err := cache.Get("mul4", p); err != nil {
		t.Fatal(err)
	}
	if cache.Builds() != 3 {
		t.Errorf("cache miss on a warm key: Builds() = %d", cache.Builds())
	}
}

func TestCacheCachesFailures(t *testing.T) {
	cache := NewCache()
	p := Params{RandomPatterns: 8, Seed: 1}
	if _, err := cache.Get("warp9", p); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := cache.Get("warp9", p); err == nil {
		t.Fatal("bad spec accepted on second get")
	}
	if cache.Builds() != 1 {
		t.Errorf("failed build retried: Builds() = %d", cache.Builds())
	}
}

func TestPreparedShape(t *testing.T) {
	prep, err := PrepareSpec("mul4", Params{RandomPatterns: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Circuit.Name != "mul4" {
		t.Errorf("circuit %q", prep.Circuit.Name)
	}
	if prep.FaultCount() == 0 || len(prep.Patterns) == 0 || prep.Curve.Steps == 0 {
		t.Fatalf("empty artifact: %d faults, %d patterns, %d ramp steps",
			prep.FaultCount(), len(prep.Patterns), prep.Curve.Steps)
	}
	if fc := prep.FinalCoverage(); !(fc > 0.5 && fc <= 1) {
		t.Errorf("final coverage %v", fc)
	}
	// The ramp is monotone and ends at the final coverage.
	last := 0.0
	for _, pt := range prep.Curve.Points {
		if pt.Coverage < last {
			t.Fatalf("ramp decreases at %+v", pt)
		}
		last = pt.Coverage
	}
	if last != prep.FinalCoverage() {
		t.Errorf("ramp tops at %v, final coverage %v", last, prep.FinalCoverage())
	}
	ate, err := prep.NewATE()
	if err != nil {
		t.Fatal(err)
	}
	if ate.Patterns() != len(prep.Patterns) {
		t.Errorf("ATE holds %d patterns, artifact %d", ate.Patterns(), len(prep.Patterns))
	}

	// Invalid params are rejected before any work.
	if _, err := PrepareSpec("mul4", Params{RandomPatterns: -1}); err == nil {
		t.Error("negative pattern budget accepted")
	}
	if _, err := PrepareSpec("mul4", Params{SimWorkers: -1}); err == nil {
		t.Error("negative sim workers accepted")
	}
	if _, err := Prepare(nil, Params{}); err == nil {
		t.Error("nil circuit accepted")
	}
}
