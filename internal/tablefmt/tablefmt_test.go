package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 100)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Errorf("row wrong: %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset.
	off := strings.Index(lines[0], "value")
	if !strings.Contains(lines[3][off:], "100") {
		t.Errorf("misaligned: %q", lines[3])
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("a")
	tb.AddRowf("x")
	if !strings.Contains(tb.String(), "x") {
		t.Error("AddRowf lost cell")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("a", "b")
	tb.AddRow("1", "2", "3") // extra cell beyond headers
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "only") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("v")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.String(), "0.1235") {
		t.Errorf("float not compacted: %s", tb.String())
	}
}

func TestNoHeaders(t *testing.T) {
	tb := New()
	tb.AddRow("cell")
	out := tb.String()
	if strings.Contains(out, "--") {
		t.Error("separator printed without headers")
	}
	if !strings.Contains(out, "cell") {
		t.Error("row missing")
	}
}
