// Package tablefmt writes aligned plain-text tables, used by the
// experiment drivers to print the paper's tables.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of pre-formatted cells.
func (t *Table) AddRowf(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(row []string) error {
		var sb strings.Builder
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(t.headers) > 0 {
		if err := writeRow(t.headers); err != nil {
			return err
		}
		var sep []string
		for _, wd := range widths {
			sep = append(sep, strings.Repeat("-", wd))
		}
		if err := writeRow(sep); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}
