// The campaign job engine: the durable, shardable face of the sweep.
// RunWith adds checkpoint/resume on top of the classic Run, RunShard
// computes one slice of a multi-process partition, and MergeShards
// folds a complete shard set back into the exact bytes a serial run
// would have produced. All three feed the campaign.Store, which folds
// per-replicate summaries in replicate-index order — the invariant the
// splitmix64 global-task-index seeding makes sufficient for
// reproducibility under any scheduling, sharding, or crash pattern.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/tester"
)

// ErrPaused is returned by RunWith/RunShard when MaxNewTasks stopped
// the campaign early; the checkpoint holds everything completed so far.
var ErrPaused = errors.New("sweep: campaign paused (checkpoint written, resume to continue)")

// ErrInterrupted is returned when the Interrupt channel fired: in-flight
// replicates were drained, the checkpoint written, and the campaign can
// resume from it.
var ErrInterrupted = errors.New("sweep: campaign interrupted (checkpoint written, resume to continue)")

// RunOptions are the durability and distribution knobs of a campaign
// run. The zero value reproduces the classic run-to-completion Run.
type RunOptions struct {
	// Checkpoint, when non-empty, is the snapshot file the campaign
	// writes atomically (temp file + rename): after every completed
	// cell, every CheckpointEvery folded tasks if set, and on
	// pause/interrupt/completion. For RunShard it holds the partial
	// shard result and doubles as the shard's output file.
	Checkpoint string
	// Resume loads Checkpoint before running, if the file exists, and
	// skips every replicate below each cell's watermark. A checkpoint
	// written by a different grid config, shard, or schema version is
	// rejected with a named error — never silently resumed. A missing
	// file is a fresh start, so resume-or-start is one flag.
	Resume bool
	// CheckpointEvery additionally checkpoints each time this many new
	// tasks have folded (0: only at cell completions and run exits).
	CheckpointEvery int
	// MaxNewTasks, when positive, stops the campaign after at most this
	// many new tasks, writes the checkpoint, and returns ErrPaused —
	// the crash-injection hook the durability tests kill campaigns
	// with, at replicate granularity.
	MaxNewTasks int
	// Interrupt, when non-nil and closed, stops dispatching new tasks;
	// in-flight replicates drain, the checkpoint is written, and the
	// run returns ErrInterrupted. This is the graceful-shutdown path
	// cmd/sweepd wires to SIGTERM.
	Interrupt <-chan struct{}
	// OnCellUpdate, when set, is called every time a cell's folded
	// watermark advances, with a copy of the cell's new snapshot —
	// the incremental-results stream (CIs tighten as Done grows).
	// Calls are ordered per cell but concurrent across cells; keep it
	// fast.
	OnCellUpdate func(cell int, snap campaign.CellSnapshot)
	// OnProgress, when set, is called after every completed task with
	// the campaign-wide folded/total counts (RunShard reports collected
	// counts instead).
	OnProgress func(done, total int)
}

// fingerprint hashes every results-relevant config field plus the
// expanded unit list. Scheduling knobs (Workers, SimWorkers) and
// engine selections are excluded: engines are bit-identical by
// contract (and cross-engine tests), so a campaign checkpointed under
// one engine may resume under another without changing a byte.
func fingerprint(units []string, cfg Config) string {
	canon := struct {
		Units          []string
		Yields         []float64
		N0s            []float64
		LotSizes       []int
		Coverages      []float64
		Replicates     int
		RandomPatterns int
		Seed           int64
		Physical       bool
		BacktrackLimit int `json:",omitempty"`
		SampleFaults   int `json:",omitempty"`
	}{units, cfg.Yields, cfg.N0s, cfg.LotSizes, cfg.Coverages,
		cfg.Replicates, cfg.RandomPatterns, cfg.Seed, cfg.Physical,
		cfg.BacktrackLimit, cfg.SampleFaults}
	b, err := json.Marshal(canon)
	if err != nil {
		// Plain slices of numbers and strings cannot fail to marshal.
		panic(fmt.Sprintf("sweep: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Fingerprint returns the campaign's config hash — the identity key of
// its checkpoints and shard files.
func (s *Sweeper) Fingerprint() string { return s.fingerprint }

// Fingerprint expands and hashes a config without preparing circuits,
// for callers that need the identity before (or without) the ATPG cost.
func (c Config) Fingerprint() (string, error) {
	units, err := c.expandUnits()
	if err != nil {
		return "", err
	}
	return fingerprint(units, c), nil
}

// Layout returns the campaign's task geometry.
func (s *Sweeper) Layout() campaign.Layout {
	return campaign.Layout{Cells: len(s.cells), Replicates: s.cfg.Replicates}
}

// CellInfo names one grid cell for status reporting.
type CellInfo struct {
	Circuit string
	Yield   float64
	N0      float64
	Chips   int
}

// Cells lists the grid cells in task order.
func (s *Sweeper) Cells() []CellInfo {
	out := make([]CellInfo, len(s.cells))
	for i, c := range s.cells {
		out[i] = CellInfo{
			Circuit: s.workloads[c.w].lr.Circuit().Name,
			Yield:   c.y,
			N0:      c.n0,
			Chips:   c.chips,
		}
	}
	return out
}

// RunWith runs the campaign with durability options: an interrupted or
// crashed run resumes from its last checkpoint and finishes with the
// exact bytes of an uninterrupted run.
func (s *Sweeper) RunWith(opts RunOptions) (*Result, error) {
	layout := s.Layout()
	key := campaign.Key{ConfigHash: s.fingerprint, Shard: campaign.FullShard}
	st, err := campaign.NewStore(layout, len(s.cfg.Coverages))
	if err != nil {
		return nil, err
	}
	if opts.Resume {
		if opts.Checkpoint == "" {
			return nil, fmt.Errorf("sweep: resume requires a checkpoint path")
		}
		if _, statErr := os.Stat(opts.Checkpoint); statErr == nil {
			ck, err := campaign.LoadCheckpoint(opts.Checkpoint, key, layout, len(s.cfg.Coverages))
			if err != nil {
				return nil, err
			}
			if err := st.Restore(ck.Cells); err != nil {
				return nil, err
			}
		} else if !errors.Is(statErr, os.ErrNotExist) {
			return nil, fmt.Errorf("sweep: checkpoint %s: %w", opts.Checkpoint, statErr)
		}
	}
	st.OnAdvance = opts.OnCellUpdate

	var ckptMu sync.Mutex
	writeCkpt := func() error {
		if opts.Checkpoint == "" {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return campaign.WriteCheckpoint(opts.Checkpoint, &campaign.Checkpoint{Key: key, Cells: st.Snapshot()})
	}

	// Everything at or above a cell's restored watermark re-runs;
	// deterministic seeding makes the re-run byte-identical.
	var pending []int
	for t := 0; t < layout.Tasks(); t++ {
		if layout.RepOf(t) >= st.Done(layout.CellOf(t)) {
			pending = append(pending, t)
		}
	}
	paused := false
	if opts.MaxNewTasks > 0 && len(pending) > opts.MaxNewTasks {
		pending = pending[:opts.MaxNewTasks]
		paused = true
	}

	var sinceCkpt atomic.Int64
	handle := func(task int, sum campaign.Summary) error {
		_, done, err := st.Add(task, sum)
		if err != nil {
			return err
		}
		if opts.OnProgress != nil {
			opts.OnProgress(st.TasksFolded(), layout.Tasks())
		}
		// Durability cadence: every completed cell is a checkpoint
		// boundary, plus the optional every-K-tasks cadence.
		if done == layout.Replicates {
			return writeCkpt()
		}
		if opts.CheckpointEvery > 0 && sinceCkpt.Add(1) >= int64(opts.CheckpointEvery) {
			sinceCkpt.Store(0)
			return writeCkpt()
		}
		return nil
	}

	interrupted, err := s.runTasks(pending, handle, opts.Interrupt)
	if err != nil {
		// Keep whatever folded: the checkpoint may already cover it.
		return nil, err
	}
	if err := writeCkpt(); err != nil {
		return nil, err
	}
	if interrupted && !st.Complete() {
		return nil, ErrInterrupted
	}
	if paused {
		return nil, ErrPaused
	}
	if !st.Complete() {
		return nil, fmt.Errorf("sweep: campaign folded %d of %d tasks", st.TasksFolded(), layout.Tasks())
	}
	return s.ResultFrom(st.Snapshot())
}

// RunShard computes one slice of a multi-process partition: only the
// tasks with task%Count == Index run, and the output is the raw
// per-replicate summary set that MergeShards folds back — bit-exactly —
// into a serial run's aggregates. opts.Checkpoint doubles as the shard
// output file; a partial one (after a crash or pause) resumes.
func (s *Sweeper) RunShard(sh campaign.Shard, opts RunOptions) (*campaign.ShardResult, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	layout := s.Layout()
	key := campaign.Key{ConfigHash: s.fingerprint, Shard: sh}
	var (
		mu   sync.Mutex
		have = map[int]campaign.Summary{}
	)
	if opts.Resume {
		if opts.Checkpoint == "" {
			return nil, fmt.Errorf("sweep: resume requires a checkpoint path")
		}
		if _, statErr := os.Stat(opts.Checkpoint); statErr == nil {
			sr, err := campaign.LoadShardFor(opts.Checkpoint, key, layout, len(s.cfg.Coverages))
			if err != nil {
				return nil, err
			}
			for _, ts := range sr.Summaries {
				have[ts.Task] = ts.Summary
			}
		} else if !errors.Is(statErr, os.ErrNotExist) {
			return nil, fmt.Errorf("sweep: checkpoint %s: %w", opts.Checkpoint, statErr)
		}
	}
	owned := 0
	var pending []int
	for t := 0; t < layout.Tasks(); t++ {
		if !sh.Owns(t) {
			continue
		}
		owned++
		if _, done := have[t]; !done {
			pending = append(pending, t)
		}
	}
	paused := false
	if opts.MaxNewTasks > 0 && len(pending) > opts.MaxNewTasks {
		pending = pending[:opts.MaxNewTasks]
		paused = true
	}
	snapshot := func() *campaign.ShardResult {
		mu.Lock()
		defer mu.Unlock()
		sr := &campaign.ShardResult{
			Key:      key,
			Tasks:    layout.Tasks(),
			Complete: len(have) == owned,
			Summaries: func() []campaign.TaskSummary {
				out := make([]campaign.TaskSummary, 0, len(have))
				//repolint:ordered — SortSummaries below canonicalizes before anything is written
				for t, sum := range have {
					out = append(out, campaign.TaskSummary{Task: t, Summary: sum})
				}
				return out
			}(),
		}
		sr.SortSummaries()
		return sr
	}
	var ckptMu sync.Mutex
	writeCkpt := func() error {
		if opts.Checkpoint == "" {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return campaign.WriteShard(opts.Checkpoint, snapshot())
	}
	var sinceCkpt atomic.Int64
	handle := func(task int, sum campaign.Summary) error {
		mu.Lock()
		have[task] = sum
		n := len(have)
		mu.Unlock()
		if opts.OnProgress != nil {
			opts.OnProgress(n, owned)
		}
		if opts.CheckpointEvery > 0 && sinceCkpt.Add(1) >= int64(opts.CheckpointEvery) {
			sinceCkpt.Store(0)
			return writeCkpt()
		}
		return nil
	}
	interrupted, err := s.runTasks(pending, handle, opts.Interrupt)
	if err != nil {
		return nil, err
	}
	if err := writeCkpt(); err != nil {
		return nil, err
	}
	sr := snapshot()
	if interrupted && !sr.Complete {
		return nil, ErrInterrupted
	}
	if paused {
		return nil, ErrPaused
	}
	return sr, nil
}

// MergeShards validates a complete shard set against this campaign and
// folds it, in global task order, into the same Result a serial run
// produces — byte-identical CSV included. Overlapping, missing,
// incomplete, or foreign shards fail with campaign.Err* named errors.
func (s *Sweeper) MergeShards(shards []*campaign.ShardResult) (*Result, error) {
	st, err := campaign.MergeShards(s.Layout(), len(s.cfg.Coverages), s.fingerprint, shards)
	if err != nil {
		return nil, err
	}
	return s.ResultFrom(st.Snapshot())
}

// runTasks fans the given task list over the worker pool. handle is
// called from worker goroutines with each completed task's summary.
// Returns whether interrupt fired (after draining in-flight tasks) and
// the first error.
func (s *Sweeper) runTasks(pending []int, handle func(task int, sum campaign.Summary) error, interrupt <-chan struct{}) (bool, error) {
	total := len(pending)
	if total == 0 {
		return false, nil
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	// Pre-filled buffered channel: no sender to block, so an erroring
	// worker can simply stop consuming.
	tasks := make(chan int, total)
	for _, t := range pending {
		tasks <- t
	}
	close(tasks)
	var (
		wg          sync.WaitGroup
		errOnce     sync.Once
		firstErr    error
		failed      atomic.Bool
		interrupted atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One ATE per (worker, workload), built on first use,
			// amortizes the good-machine pre-simulation across the
			// worker's replicates of that circuit.
			ates := make([]*tester.ATE, len(s.workloads))
			for t := range tasks {
				if failed.Load() || interrupted.Load() {
					return
				}
				if interrupt != nil {
					select {
					case <-interrupt:
						interrupted.Store(true)
						return
					default:
					}
				}
				wi := s.cells[t/s.cfg.Replicates].w
				if ates[wi] == nil {
					ate, err := s.workloads[wi].lr.NewATE()
					if err != nil {
						fail(err)
						return
					}
					ates[wi] = ate
				}
				sum, err := s.summarize(ates[wi], t)
				if err != nil {
					fail(err)
					return
				}
				if err := handle(t, sum); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return interrupted.Load(), firstErr
}

// ResultFrom renders per-cell folded state — a store snapshot, whether
// live, checkpointed, or shard-merged — into the report types. Partial
// snapshots render too (the daemon's incremental results endpoint);
// each cell's Replicates reflects its folded watermark, which equals
// the configured replicate count exactly when the campaign is done.
func (s *Sweeper) ResultFrom(snaps []campaign.CellSnapshot) (*Result, error) {
	if len(snaps) != len(s.cells) {
		return nil, fmt.Errorf("sweep: snapshot has %d cells, campaign has %d", len(snaps), len(s.cells))
	}
	res := &Result{Config: s.cfg}
	for _, wl := range s.workloads {
		prep := wl.lr.Prepared()
		res.Workloads = append(res.Workloads, WorkloadInfo{
			Spec:           wl.spec,
			Name:           wl.lr.Circuit().Name,
			Stats:          wl.lr.Stats(),
			FaultCount:     wl.lr.FaultCount(),
			PatternCount:   wl.lr.Patterns(),
			FinalCoverage:  wl.lr.FinalCoverage(),
			UniverseSize:   prep.UniverseSize,
			Sampled:        prep.Sampled,
			CoverageCILow:  prep.CoverageCILow,
			CoverageCIHigh: prep.CoverageCIHigh,
			ATPG:           prep.ATPG,
		})
	}
	for ci, cell := range s.cells {
		wl := s.workloads[cell.w]
		model, err := core.New(cell.y, cell.n0)
		if err != nil {
			return nil, err
		}
		snap := snaps[ci]
		cr := CellResult{
			Circuit:    wl.lr.Circuit().Name,
			Yield:      cell.y,
			N0:         cell.n0,
			Chips:      cell.chips,
			Replicates: snap.Done,
			Points:     make([]PointStat, len(wl.cuts)),
		}
		for j, c := range wl.cuts {
			rej := campaign.FromState(snap.Rej[j])
			esc := campaign.FromState(snap.Esc[j])
			pass := campaign.FromState(snap.Pass[j])
			lo, hi := rej.CI95()
			cr.Points[j] = PointStat{
				Target:      c.Target,
				Coverage:    c.Coverage,
				AnalyticR:   model.RejectRate(c.Coverage),
				MeanR:       rej.Mean(),
				StdR:        math.Sqrt(rej.Variance()),
				CILow:       math.Max(0, lo),
				CIHigh:      math.Min(1, hi),
				RejSamples:  rej.Count(),
				MeanEscapes: esc.Mean(),
				MeanPassed:  pass.Mean(),
			}
		}
		ty := campaign.FromState(snap.TestedYield)
		ly := campaign.FromState(snap.LotYield)
		tn := campaign.FromState(snap.TrueN0)
		ft := campaign.FromState(snap.FitN0)
		cr.MeanTestedYield = ty.Mean()
		cr.MeanLotYield = ly.Mean()
		cr.TrueN0Mean = tn.Mean()
		cr.FitN0Count = ft.Count()
		cr.FitN0Mean = ft.Mean()
		cr.FitN0CILow, cr.FitN0CIHigh = ft.CI95()
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}
