package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/tablefmt"
	"repro/internal/textplot"
)

// Table renders the sweep as a workload summary followed by one fallout
// table per grid cell.
func (r *Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Monte-Carlo reject-rate sweep — %d workload(s), replicates/cell: %d\n",
		len(r.Workloads), r.Config.Replicates)
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "  %s (%s): collapsed faults %d, patterns %d, final coverage %.4f\n",
			w.Name, w.Stats, w.FaultCount, w.PatternCount, w.FinalCoverage)
		if w.Sampled {
			fmt.Fprintf(&sb, "    sampled %d of %d fault classes; true coverage in [%.4f, %.4f] at 95%%\n",
				w.FaultCount, w.UniverseSize, w.CoverageCILow, w.CoverageCIHigh)
		}
		if w.ATPG.Untestable > 0 || w.ATPG.Aborted > 0 {
			fmt.Fprintf(&sb, "    ATPG: %d detected, %d untestable, %d aborted at the backtrack budget\n",
				w.ATPG.Detected, w.ATPG.Untestable, w.ATPG.Aborted)
		}
	}
	for _, cell := range r.Cells {
		fmt.Fprintf(&sb, "\ncell %s y=%.3g n0=%.3g chips=%d — tested yield %.4f (lot yield %.4f), fit n0 %.2f [%.2f, %.2f] over %d fits (truth %.2f)\n",
			cell.Circuit, cell.Yield, cell.N0, cell.Chips, cell.MeanTestedYield, cell.MeanLotYield,
			cell.FitN0Mean, cell.FitN0CILow, cell.FitN0CIHigh, cell.FitN0Count, cell.TrueN0Mean)
		tb := tablefmt.New("coverage", "analytic r", "mean r", "95% CI", "n", "escapes", "passed")
		for _, pt := range cell.Points {
			tb.AddRow(
				fmt.Sprintf("%.4f", pt.Coverage),
				fmt.Sprintf("%.6f", pt.AnalyticR),
				fmt.Sprintf("%.6f", pt.MeanR),
				fmt.Sprintf("[%.6f, %.6f]", pt.CILow, pt.CIHigh),
				pt.RejSamples,
				fmt.Sprintf("%.2f", pt.MeanEscapes),
				fmt.Sprintf("%.1f", pt.MeanPassed),
			)
		}
		sb.WriteString(tb.String())
	}
	return sb.String()
}

// CSV renders the sweep as one flat row per (cell, coverage cut); the
// golden test pins this byte-for-byte. The circuit column is the grid's
// newest axis.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("circuit,yield,n0,chips,replicates,target_coverage,coverage,analytic_r,mean_r,std_r,ci_lo,ci_hi,rej_samples,mean_escapes,mean_passed,mean_tested_yield,fit_n0_mean,true_n0_mean\n")
	for _, cell := range r.Cells {
		for _, pt := range cell.Points {
			fmt.Fprintf(&sb, "%s,%g,%g,%d,%d,%g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%d,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				cell.Circuit, cell.Yield, cell.N0, cell.Chips, cell.Replicates,
				pt.Target, pt.Coverage, pt.AnalyticR, pt.MeanR, pt.StdR,
				pt.CILow, pt.CIHigh, pt.RejSamples, pt.MeanEscapes, pt.MeanPassed,
				cell.MeanTestedYield, cell.FitN0Mean, cell.TrueN0Mean)
		}
	}
	return sb.String()
}

// JSON renders the whole result (config included, cache elided).
func (r *Result) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Plot overlays each cell's empirical reject-rate points (95% CI error
// bars) on the analytic Eq. 8 curve, log-scale like the paper's Fig. 1.
func (r *Result) Plot() string {
	var sb strings.Builder
	for _, cell := range r.Cells {
		model, err := core.New(cell.Yield, cell.N0)
		if err != nil {
			continue
		}
		p := textplot.Plot{
			Title: fmt.Sprintf("reject rate vs coverage — %s y=%.3g n0=%.3g chips=%d, %d replicates (| = 95%% CI)",
				cell.Circuit, cell.Yield, cell.N0, cell.Chips, cell.Replicates),
			XLabel: "fault coverage f",
			YLabel: "reject rate r(f), log scale",
			LogY:   true,
		}
		const samples = 61
		xs := make([]float64, samples)
		ys := make([]float64, samples)
		for i := range xs {
			xs[i] = float64(i) / float64(samples-1)
			ys[i] = model.RejectRate(xs[i])
		}
		p.Add(textplot.Series{Name: "Eq. 8", Marker: '.', X: xs, Y: ys})
		n := len(cell.Points)
		emp := textplot.Series{
			Name: "monte-carlo", Marker: '@',
			X:   make([]float64, n),
			Y:   make([]float64, n),
			YLo: make([]float64, n),
			YHi: make([]float64, n),
		}
		for i, pt := range cell.Points {
			emp.X[i] = pt.Coverage
			emp.Y[i] = pt.MeanR
			emp.YLo[i] = pt.CILow
			emp.YHi[i] = pt.CIHigh
		}
		p.Add(emp)
		sb.WriteString(p.Render())
		sb.WriteString("\n")
	}
	return sb.String()
}
