package sweep

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/circuits"
)

// crashConfig is the small two-circuit campaign the durability tests
// kill and resume: 2 cells x 3 replicates = 6 tasks, seconds total
// even when re-run once per kill point.
func crashConfig() Config {
	return Config{
		Circuits:       []string{"mul4", "cmp8"},
		Yields:         []float64{0.25},
		N0s:            []float64{3},
		LotSizes:       []int{60},
		Coverages:      []float64{0.3, 0.6},
		Replicates:     3,
		Workers:        2,
		RandomPatterns: 32,
		Seed:           19,
	}
}

// newSweeper builds a Sweeper over a shared cache so the durability
// loops don't re-run ATPG per kill point.
func newSweeper(t *testing.T, cfg Config, cache *circuits.Cache) *Sweeper {
	t.Helper()
	cfg.Cache = cache
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCrashResumeByteIdentical(t *testing.T) {
	// The crash/resume equivalence harness: run the two-circuit
	// campaign to completion for the golden CSV, then kill a fresh
	// campaign at EVERY task boundary k — cell boundaries (k a multiple
	// of Replicates) and mid-cell at replicate granularity — resume
	// each from its checkpoint, and require the final CSV byte-identical
	// to the uninterrupted golden.
	cache := circuits.NewCache()
	cfg := crashConfig()
	golden, err := newSweeper(t, cfg, cache).Run()
	if err != nil {
		t.Fatal(err)
	}
	goldenCSV := golden.CSV()
	total := len(golden.Cells) * cfg.Replicates
	if total != 6 {
		t.Fatalf("expected 6 tasks, got %d", total)
	}
	for kill := 1; kill < total; kill++ {
		ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
		// Phase 1: the doomed run — stops (the injected kill) after
		// exactly `kill` new tasks, checkpointing on the way out.
		s := newSweeper(t, cfg, cache)
		_, err := s.RunWith(RunOptions{Checkpoint: ckpt, MaxNewTasks: kill})
		if !errors.Is(err, ErrPaused) {
			t.Fatalf("kill=%d: err = %v, want ErrPaused", kill, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("kill=%d: no checkpoint written: %v", kill, err)
		}
		// Phase 2: resume from the checkpoint and finish.
		res, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
		if err != nil {
			t.Fatalf("kill=%d resume: %v", kill, err)
		}
		if got := res.CSV(); got != goldenCSV {
			t.Errorf("kill=%d: resumed CSV differs from uninterrupted run:\n--- resumed ---\n%s--- golden ---\n%s",
				kill, got, goldenCSV)
		}
	}
	// Resuming an already-complete checkpoint re-runs nothing and
	// still reports the same bytes.
	ckpt := filepath.Join(t.TempDir(), "done.ckpt")
	if _, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	res, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != goldenCSV {
		t.Error("resume of a complete checkpoint drifted")
	}
}

func TestCrashResumeWithFineCheckpointCadence(t *testing.T) {
	// Same equivalence with CheckpointEvery=1 (a checkpoint after every
	// replicate) and a many-worker pool: out-of-order completions leave
	// mid-cell watermarks, and resume still lands on the golden bytes.
	cache := circuits.NewCache()
	cfg := crashConfig()
	cfg.Workers = 8
	golden, err := newSweeper(t, cfg, cache).Run()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "fine.ckpt")
	s := newSweeper(t, cfg, cache)
	if _, err := s.RunWith(RunOptions{Checkpoint: ckpt, CheckpointEvery: 1, MaxNewTasks: 4}); !errors.Is(err, ErrPaused) {
		t.Fatalf("pause: %v", err)
	}
	res, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != golden.CSV() {
		t.Error("fine-cadence resume drifted from golden")
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	// A checkpoint written by a different grid config must be rejected
	// by name (with the file path), never silently resumed.
	cache := circuits.NewCache()
	cfg := crashConfig()
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	if _, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, MaxNewTasks: 2}); !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 77 // different lots, same shape: only the fingerprint can tell
	_, err := newSweeper(t, other, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
	if !errors.Is(err, campaign.ErrMismatch) {
		t.Fatalf("foreign checkpoint: err = %v, want campaign.ErrMismatch", err)
	}
	if !strings.Contains(err.Error(), ckpt) {
		t.Errorf("error does not name the checkpoint path: %v", err)
	}
	// Corruption on the resume path reports the file too.
	if err := os.WriteFile(ckpt, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
	if !errors.Is(err, campaign.ErrCorrupt) || !strings.Contains(err.Error(), ckpt) {
		t.Fatalf("corrupt checkpoint: err = %v", err)
	}
}

func TestInterruptDrainsAndResumes(t *testing.T) {
	// The graceful-shutdown path: an interrupt that fires immediately
	// drains whatever was in flight, checkpoints, and the resumed run
	// matches the golden bytes.
	cache := circuits.NewCache()
	cfg := crashConfig()
	golden, err := newSweeper(t, cfg, cache).Run()
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan struct{})
	close(interrupt)
	ckpt := filepath.Join(t.TempDir(), "int.ckpt")
	_, err = newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Interrupt: interrupt})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupt: err = %v, want ErrInterrupted", err)
	}
	res, err := newSweeper(t, cfg, cache).RunWith(RunOptions{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != golden.CSV() {
		t.Error("post-interrupt resume drifted from golden")
	}
}

func TestShardMergeByteIdenticalToSerial(t *testing.T) {
	// The multi-process story end to end, in process: split the grid
	// into n shards by global task index, run each shard separately,
	// merge, and require the merged CSV — Welford CI bounds included —
	// byte-identical to the serial run, for n in {2, 3, 8}.
	cache := circuits.NewCache()
	cfg := crashConfig()
	serial, err := newSweeper(t, cfg, cache).Run()
	if err != nil {
		t.Fatal(err)
	}
	serialCSV := serial.CSV()
	for _, n := range []int{2, 3, 8} {
		shards := make([]*campaign.ShardResult, n)
		for i := 0; i < n; i++ {
			sr, err := newSweeper(t, cfg, cache).RunShard(campaign.Shard{Index: i, Count: n}, RunOptions{})
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
			shards[i] = sr
		}
		merged, err := newSweeper(t, cfg, cache).MergeShards(shards)
		if err != nil {
			t.Fatalf("n=%d merge: %v", n, err)
		}
		if got := merged.CSV(); got != serialCSV {
			t.Errorf("n=%d: merged CSV differs from serial run:\n--- merged ---\n%s--- serial ---\n%s",
				n, got, serialCSV)
		}
		if !reflect.DeepEqual(merged.Cells, serial.Cells) {
			t.Errorf("n=%d: merged cells differ beyond the CSV projection", n)
		}
	}
}

func TestShardFilesRoundTripThroughDisk(t *testing.T) {
	// The cmd/sweep -shard/-merge flow without the CLI: shard runs
	// write their files (the checkpoint IS the output), a killed shard
	// resumes from its partial file, and merging the files reproduces
	// the serial bytes.
	cache := circuits.NewCache()
	cfg := crashConfig()
	serialCSV := func() string {
		res, err := newSweeper(t, cfg, cache).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.CSV()
	}()
	dir := t.TempDir()
	const n = 2
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		sh := campaign.Shard{Index: i, Count: n}
		if i == 0 {
			// Kill shard 0 mid-run, then resume it from its file.
			_, err := newSweeper(t, cfg, cache).RunShard(sh, RunOptions{Checkpoint: paths[i], MaxNewTasks: 1})
			if !errors.Is(err, ErrPaused) {
				t.Fatalf("shard 0 pause: %v", err)
			}
		}
		if _, err := newSweeper(t, cfg, cache).RunShard(sh, RunOptions{Checkpoint: paths[i], Resume: true}); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	shards := make([]*campaign.ShardResult, n)
	for i, p := range paths {
		sr, err := campaign.LoadShard(p)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sr
	}
	merged, err := newSweeper(t, cfg, cache).MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CSV() != serialCSV {
		t.Error("disk-merged CSV differs from serial run")
	}
	// Merging with one shard missing or duplicated fails by name.
	if _, err := newSweeper(t, cfg, cache).MergeShards(shards[:1]); !errors.Is(err, campaign.ErrShardMissing) {
		t.Errorf("missing shard: err = %v", err)
	}
	if _, err := newSweeper(t, cfg, cache).MergeShards([]*campaign.ShardResult{shards[0], shards[0]}); !errors.Is(err, campaign.ErrShardOverlap) {
		t.Errorf("overlapping shard: err = %v", err)
	}
}

func TestStreamingUpdatesTightenToFinal(t *testing.T) {
	// The incremental-results contract the daemon streams on: each
	// cell's watermark advances monotonically, every snapshot is the
	// exact prefix fold of that cell's replicate stream, and the last
	// snapshot per cell equals the final report (CIs have tightened all
	// the way to the published interval).
	cache := circuits.NewCache()
	cfg := crashConfig()
	cfg.Workers = 4
	type upd struct {
		done int
		snap campaign.CellSnapshot
	}
	got := map[int][]upd{}
	var mu sync.Mutex
	s := newSweeper(t, cfg, cache)
	res, err := s.RunWith(RunOptions{OnCellUpdate: func(cell int, snap campaign.CellSnapshot) {
		mu.Lock()
		got[cell] = append(got[cell], upd{done: snap.Done, snap: snap})
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Cells) {
		t.Fatalf("updates for %d cells, want %d", len(got), len(res.Cells))
	}
	for cell, ups := range got {
		prev := 0
		for _, u := range ups {
			if u.done <= prev {
				t.Fatalf("cell %d: watermark went %d -> %d", cell, prev, u.done)
			}
			prev = u.done
		}
		if prev != cfg.Replicates {
			t.Fatalf("cell %d: final watermark %d of %d", cell, prev, cfg.Replicates)
		}
		// The last streamed snapshot IS the final aggregate: its CI
		// bounds must match the published report exactly.
		last := ups[len(ups)-1].snap
		rej := campaign.FromState(last.Rej[0])
		lo, hi := rej.CI95()
		pt := res.Cells[cell].Points[0]
		if math.Max(0, lo) != pt.CILow || math.Min(1, hi) != pt.CIHigh {
			t.Fatalf("cell %d: streamed CI [%v,%v] vs final [%v,%v]", cell, lo, hi, pt.CILow, pt.CIHigh)
		}
	}
}

func TestFingerprintSeparatesCampaigns(t *testing.T) {
	base := crashConfig()
	fp := func(c Config) string {
		s, err := c.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	baseFP := fp(base)
	// Scheduling knobs don't change identity...
	same := base
	same.Workers = 13
	same.SimWorkers = 3
	if fp(same) != baseFP {
		t.Error("worker counts changed the fingerprint")
	}
	// ...every results-relevant axis does.
	for name, mutate := range map[string]func(*Config){
		"seed":       func(c *Config) { c.Seed++ },
		"yields":     func(c *Config) { c.Yields = []float64{0.3} },
		"n0s":        func(c *Config) { c.N0s = []float64{4} },
		"lot sizes":  func(c *Config) { c.LotSizes = []int{61} },
		"coverages":  func(c *Config) { c.Coverages = []float64{0.3} },
		"replicates": func(c *Config) { c.Replicates++ },
		"patterns":   func(c *Config) { c.RandomPatterns++ },
		"circuits":   func(c *Config) { c.Circuits = []string{"mul4"} },
	} {
		other := base
		mutate(&other)
		if fp(other) == baseFP {
			t.Errorf("%s change kept the fingerprint", name)
		}
	}
}
