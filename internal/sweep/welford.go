package sweep

import "repro/internal/campaign"

// Welford is the streaming mean/variance accumulator the sweep
// aggregates with. It moved to internal/campaign when the result store
// was extracted into the checkpoint/resume layer (its three words of
// state are exactly what a checkpoint persists); the alias keeps the
// sweep-level name every report field documents itself against.
type Welford = campaign.Welford
