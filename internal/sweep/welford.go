package sweep

import "math"

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable for long replicate streams, constant
// memory, and exact in the order the values are fed — the sweep feeds
// it in replicate-index order so aggregates are scheduling-independent.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 below two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// CI95 returns the normal-approximation 95% confidence interval on the
// mean. With fewer than two observations it degenerates to the mean.
func (w *Welford) CI95() (lo, hi float64) {
	const z = 1.959963984540054 // Phi^-1(0.975)
	se := w.StdErr()
	return w.mean - z*se, w.mean + z*se
}
