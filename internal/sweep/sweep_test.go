package sweep

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/tester"
)

// smallConfig is the fixed-seed two-circuit grid the golden and
// determinism tests share: two workloads × two yields × one n0 × one
// lot size, two cuts.
func smallConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Circuits:       []string{"mul4", "cmp8"},
		Yields:         []float64{0.2, 0.4},
		N0s:            []float64{3},
		LotSizes:       []int{80},
		Coverages:      []float64{0.3, 0.6},
		Replicates:     4,
		Workers:        2,
		RandomPatterns: 32,
		Seed:           7,
	}
}

func TestSweepGolden(t *testing.T) {
	// Byte-for-byte pin of the CSV on a small fixed-seed two-circuit
	// grid: any change to spec expansion, seed derivation, aggregation
	// order, lot generation, or the test-set construction shows up here
	// first.
	res, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const want = `circuit,yield,n0,chips,replicates,target_coverage,coverage,analytic_r,mean_r,std_r,ci_lo,ci_hi,rej_samples,mean_escapes,mean_passed,mean_tested_yield,fit_n0_mean,true_n0_mean
mul4,0.2,3,80,4,0.3,0.310714,0.596948,0.635218,0.123345,0.514341,0.756094,4,28.75,45,0.20625,2.33543,2.97942
mul4,0.2,3,80,4,0.6,0.610714,0.314627,0.439935,0.163475,0.279733,0.600138,4,12.75,29,0.20625,2.33543,2.97942
mul4,0.4,3,80,4,0.3,0.310714,0.357079,0.361577,0.0645611,0.298309,0.424846,4,18,49.75,0.396875,2.96777,2.91392
mul4,0.4,3,80,4,0.6,0.610714,0.146865,0.192155,0.0486393,0.14449,0.239821,4,7.5,39.25,0.396875,2.96777,2.91392
cmp8,0.2,3,80,4,0.3,0.354167,0.559898,0.563987,0.0211573,0.543253,0.58472,4,23,40.75,0.221875,2.74853,3.02508
cmp8,0.2,3,80,4,0.6,0.604167,0.321083,0.284264,0.0456202,0.239557,0.328971,4,7,24.75,0.221875,2.74853,3.02508
cmp8,0.4,3,80,4,0.3,0.354167,0.322986,0.44255,0.0445465,0.398895,0.486204,4,23,51.75,0.359375,2.97535,3.077
cmp8,0.4,3,80,4,0.6,0.604167,0.150635,0.162144,0.0736697,0.0899487,0.234339,4,5.75,34.5,0.359375,2.97535,3.077
`
	if got := res.CSV(); got != want {
		t.Errorf("golden CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	// The aggregates must be bit-identical no matter how the replicates
	// are scheduled — including across the circuit axis: per-replicate
	// seeds depend only on the global task index, and aggregation folds
	// in index order.
	var results []*Result
	var csvs []string
	for _, workers := range []int{1, 8} {
		cfg := smallConfig(t)
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		csvs = append(csvs, res.CSV())
	}
	if csvs[0] != csvs[1] {
		t.Errorf("CSV differs between -workers 1 and -workers 8:\n%s\nvs\n%s", csvs[0], csvs[1])
	}
	// Everything except the worker count itself must match exactly.
	if !reflect.DeepEqual(results[0].Cells, results[1].Cells) {
		t.Error("aggregated cells differ between worker counts")
	}
	if !reflect.DeepEqual(results[0].Workloads, results[1].Workloads) {
		t.Error("workload info differs between worker counts")
	}
}

func TestSweepDeterministicAcrossLotEngines(t *testing.T) {
	// The lot engine is a speed knob, never a results knob: the CSV must
	// be byte-identical across every (lot engine, worker count) pair —
	// the chip-parallel engine against the serial oracle, under both
	// serial and concurrent scheduling.
	var csvs []string
	var labels []string
	for _, e := range tester.LotEngines() {
		for _, workers := range []int{1, 8} {
			cfg := smallConfig(t)
			cfg.LotEngine = e
			cfg.Workers = workers
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			csvs = append(csvs, res.CSV())
			labels = append(labels, fmt.Sprintf("%v/workers=%d", e, workers))
		}
	}
	for i := 1; i < len(csvs); i++ {
		if csvs[i] != csvs[0] {
			t.Errorf("CSV differs between %s and %s:\n%s\nvs\n%s", labels[0], labels[i], csvs[0], csvs[i])
		}
	}
}

func TestSweepPreparesEachCircuitOnce(t *testing.T) {
	// The exactly-once guarantee of the campaign: however many cells,
	// replicates, and workers consume a circuit, its Prepared artifact
	// (ATPG + ramp) is built once. The counter-instrumented cache is
	// the proof.
	cache := circuits.NewCache()
	cfg := smallConfig(t)
	cfg.Cache = cache
	cfg.Workers = 8
	cfg.Replicates = 6
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got, want := cache.Builds(), len(cfg.Circuits); got != want {
		t.Errorf("campaign built %d artifacts for %d circuits", got, want)
	}
	// A second campaign over the same cache (same specs and params)
	// rebuilds nothing.
	cfg2 := smallConfig(t)
	cfg2.Cache = cache
	cfg2.Yields = []float64{0.3}
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if got, want := cache.Builds(), len(cfg.Circuits); got != want {
		t.Errorf("shared cache rebuilt artifacts: %d builds for %d circuits", got, want)
	}
}

func TestSweepValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no circuits", func(c *Config) { c.Circuits = nil }},
		{"unknown circuit", func(c *Config) { c.Circuits = []string{"mul4", "warp9"} }},
		{"no yields", func(c *Config) { c.Yields = nil }},
		{"no n0s", func(c *Config) { c.N0s = nil }},
		{"no lot sizes", func(c *Config) { c.LotSizes = nil }},
		{"no coverages", func(c *Config) { c.Coverages = nil }},
		{"coverage above 1", func(c *Config) { c.Coverages = []float64{1.5} }},
		{"zero coverage", func(c *Config) { c.Coverages = []float64{0} }},
		{"zero replicates", func(c *Config) { c.Replicates = 0 }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"bad yield in grid", func(c *Config) { c.Yields = []float64{0.2, 1.5} }},
		{"bad n0 in grid", func(c *Config) { c.N0s = []float64{-1} }},
		{"bad lot size in grid", func(c *Config) { c.LotSizes = []int{80, 0} }},
	}
	for _, tc := range cases {
		cfg := smallConfig(t)
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// An unreachable coverage target is an error naming the circuit,
	// not a silent skip.
	cfg := smallConfig(t)
	cfg.Coverages = []float64{0.9999999}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable target: err = %v", func() error { _, e := New(cfg); return e }())
	}
}

func TestSweepRendersAllFormats(t *testing.T) {
	res, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"Monte-Carlo", "2 workload(s)", "mul4", "cmp8", "analytic r", "95% CI", "fit n0"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	js, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"Workloads\"", "\"Cells\"", "\"Circuit\"", "\"AnalyticR\"", "\"CIHigh\""} {
		if !strings.Contains(js, want) {
			t.Errorf("json missing %q", want)
		}
	}
	if strings.Contains(js, "\"Gates\":null") || strings.Contains(js, "Fanin") {
		t.Error("json leaked the netlist")
	}
	plot := res.Plot()
	for _, want := range []string{"Eq. 8", "monte-carlo", "mul4", "cmp8"} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot missing %q:\n%s", want, plot)
		}
	}
}

func TestReplicateSeedsDecorrelated(t *testing.T) {
	// Neighbouring task indices and neighbouring base seeds must land
	// on distinct streams.
	seen := map[int64]bool{}
	for base := int64(0); base < 8; base++ {
		for task := 0; task < 256; task++ {
			s := replicateSeed(base, task)
			if seen[s] {
				t.Fatalf("seed collision at base=%d task=%d", base, task)
			}
			seen[s] = true
		}
	}
}

func TestWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2.5 + 10
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	// Against the naive two-pass computation.
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	wantVar := varSum / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-wantVar) > 1e-9 {
		t.Errorf("variance %v vs %v", w.Variance(), wantVar)
	}
	lo, hi := w.CI95()
	if !(lo < mean && mean < hi) {
		t.Errorf("CI [%v, %v] excludes mean %v", lo, hi, mean)
	}
	// Degenerate cases.
	var one Welford
	one.Add(5)
	if one.Variance() != 0 || one.StdErr() != 0 {
		t.Error("single observation should have zero variance")
	}
	lo, hi = one.CI95()
	if lo != 5 || hi != 5 {
		t.Errorf("single-observation CI [%v, %v]", lo, hi)
	}
}

// TestSweepBracketsPaperHeadline is the acceptance check: on the
// (y=0.07) column the Monte-Carlo 95% CI at f≈0.80 brackets r = 1% and
// at f≈0.94 brackets r = 0.1% (the paper's §7 headline pairs, stated
// for n0 = 8), and on the Table-1 slope estimate n0 = 8.8 the CI stays
// within a factor-two band of the Eq. 8 prediction at both points.
func TestSweepBracketsPaperHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second Monte-Carlo run")
	}
	cfg := Config{
		Circuits:       []string{"mul8"},
		Yields:         []float64{0.07},
		N0s:            []float64{8, 8.8},
		LotSizes:       []int{6000},
		Coverages:      []float64{0.80, 0.94},
		Replicates:     30,
		RandomPatterns: 192,
		Seed:           1981,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	// Cell 0: n0 = 8, the paper's headline operating points.
	paper := []float64{0.01, 0.001}
	for i, pt := range res.Cells[0].Points {
		if !(pt.CILow <= paper[i] && paper[i] <= pt.CIHigh) {
			t.Errorf("n0=8 f=%.3f: CI [%.5f, %.5f] does not bracket r=%v",
				pt.Coverage, pt.CILow, pt.CIHigh, paper[i])
		}
	}
	// Both cells: the CI must intersect a factor-two band around the
	// analytic Eq. 8 prediction at the achieved coverage (the urn-model
	// approximation and circuit detection correlations allow that much).
	for _, cell := range res.Cells {
		for _, pt := range cell.Points {
			if pt.CILow > 2*pt.AnalyticR || pt.CIHigh < pt.AnalyticR/2 {
				t.Errorf("n0=%.1f f=%.3f: CI [%.5f, %.5f] far from analytic %.5f",
					cell.N0, pt.Coverage, pt.CILow, pt.CIHigh, pt.AnalyticR)
			}
		}
		// The fitted n0 must recover the ground truth to within ~15%.
		if cell.FitN0Count < cfg.Replicates/2 {
			t.Errorf("n0=%.1f: only %d/%d fits converged", cell.N0, cell.FitN0Count, cfg.Replicates)
		}
		if rel := math.Abs(cell.FitN0Mean-cell.N0) / cell.N0; rel > 0.15 {
			t.Errorf("n0=%.1f: fitted %.2f (%.0f%% off)", cell.N0, cell.FitN0Mean, rel*100)
		}
	}
}

func TestZeroShippedReplicatesExcluded(t *testing.T) {
	// Two-chip lots at 7% yield frequently ship nothing once the test
	// program is long enough; those replicates have no reject rate and
	// must be excluded from the mean/CI (and counted in RejSamples),
	// not folded in as zeros.
	cfg := Config{
		Circuits:       []string{"mul4"},
		Yields:         []float64{0.07},
		N0s:            []float64{5},
		LotSizes:       []int{2},
		Coverages:      []float64{0.9},
		Replicates:     20,
		RandomPatterns: 32,
		Seed:           11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Cells[0].Points[0]
	if pt.RejSamples >= cfg.Replicates {
		t.Fatalf("expected some all-fail replicates, got RejSamples=%d of %d",
			pt.RejSamples, cfg.Replicates)
	}
	if pt.RejSamples == 0 {
		t.Fatal("expected some shipping replicates")
	}
	// Cross-check the mean against a hand count over the defined
	// replicates only.
	if !strings.Contains(res.CSV(), ",rej_samples,") {
		t.Error("CSV must surface the defined-sample count")
	}
}
