package sweep

import (
	"strings"
	"testing"

	"repro/internal/circuits"
)

// TestSweepColdWarmStoreByteIdentical is the cross-process acceptance
// contract of the Prepared store: a campaign run against a cold on-disk
// store and a second "process" (fresh cache, same directory) must emit
// byte-identical CSV — and the second run must not rebuild anything,
// pinned through the Builds/Loads counters.
func TestSweepColdWarmStoreByteIdentical(t *testing.T) {
	dir := t.TempDir()

	store1, err := circuits.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := circuits.NewCacheWithStore(store1)
	cfg := smallConfig(t)
	cfg.Cache = cold
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Builds() != len(cfg.Circuits) || cold.Loads() != 0 {
		t.Fatalf("cold run: builds=%d loads=%d, want %d/0", cold.Builds(), cold.Loads(), len(cfg.Circuits))
	}

	store2, err := circuits.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := circuits.NewCacheWithStore(store2)
	cfg2 := smallConfig(t)
	cfg2.Cache = warm
	cfg2.Workers = 7 // scheduling must stay irrelevant to the bytes
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Builds() != 0 || warm.Loads() != len(cfg.Circuits) {
		t.Fatalf("warm run: builds=%d loads=%d, want 0/%d", warm.Builds(), warm.Loads(), len(cfg.Circuits))
	}
	if csv1, csv2 := res1.CSV(), res2.CSV(); csv1 != csv2 {
		t.Errorf("warm-store CSV differs from cold:\n--- cold ---\n%s--- warm ---\n%s", csv1, csv2)
	}
}

// TestSweepPreparedDirConfig exercises the PreparedDir plumbing (the
// path the CLIs use): New builds the store-backed cache itself, and two
// sweeps over the same directory stay byte-identical.
func TestSweepPreparedDirConfig(t *testing.T) {
	dir := t.TempDir()
	csvs := make([]string, 2)
	for i := range csvs {
		cfg := smallConfig(t)
		cfg.Circuits = []string{"mul4"}
		cfg.PreparedDir = dir
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		csvs[i] = res.CSV()
	}
	if csvs[0] != csvs[1] {
		t.Errorf("PreparedDir runs differ:\n%s\nvs\n%s", csvs[0], csvs[1])
	}
}

// TestSweepSampledWorkloadInfo checks that fault sampling is carried
// into the campaign's workload report: sample size as the working
// universe, the full universe size alongside, and a non-degenerate
// whole-universe coverage interval.
func TestSweepSampledWorkloadInfo(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Circuits = []string{"mul4"}
	cfg.SampleFaults = 15
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 1 {
		t.Fatalf("%d workloads", len(res.Workloads))
	}
	w := res.Workloads[0]
	if !w.Sampled || w.FaultCount != 15 {
		t.Fatalf("sampled=%v faults=%d, want true/15", w.Sampled, w.FaultCount)
	}
	if w.UniverseSize <= w.FaultCount {
		t.Errorf("universe %d not larger than sample %d", w.UniverseSize, w.FaultCount)
	}
	if !(w.CoverageCILow < w.CoverageCIHigh) {
		t.Errorf("degenerate sampled coverage CI [%v, %v]", w.CoverageCILow, w.CoverageCIHigh)
	}
	if w.ATPG.Faults != 15 ||
		w.ATPG.Detected+w.ATPG.Untestable+w.ATPG.Aborted != w.ATPG.Faults {
		t.Errorf("ATPG tally does not partition the sample: %+v", w.ATPG)
	}
	// The sampling summary reaches the human-readable report but never
	// the CSV (whose golden bytes sampling-free campaigns pin).
	table := res.Table()
	if want := "sampled 15 of"; !strings.Contains(table, want) {
		t.Errorf("table missing %q:\n%s", want, table)
	}
	if strings.Contains(res.CSV(), "sampled") {
		t.Error("sampling info leaked into the CSV")
	}
}
