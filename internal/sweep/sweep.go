// Package sweep is the Monte-Carlo validation engine for the paper's
// headline claim: it replicates the §5 lot experiment R times per grid
// cell of (circuit, yield, n0, lot size), truncates every replicate's
// test program at a set of coverage points, and aggregates the
// empirical reject rate — escapes over shipped chips — with confidence
// intervals to overlay on the analytic Eq. 8 curve. The circuit axis is
// what turns single-circuit reproduction into a multi-workload
// campaign: the paper's claim is about defect statistics, not one lucky
// netlist, so the same grid runs over every workload spec given.
//
// The expensive once-per-circuit work (ATPG, the strobe-granular
// coverage ramp) happens exactly once per circuit, in a
// circuits.Prepared artifact shared by all replicates through a
// circuits.Cache; each worker goroutine clones only a tester.
// Per-replicate seeds are derived from the base seed with a splitmix64
// mix of the replicate's global task index (which spans the circuit
// axis too), and aggregation runs over replicates in index order, so
// results are bit-identical regardless of worker count or scheduling.
package sweep

import (
	"fmt"
	"sync"

	"repro/internal/atpg"
	"repro/internal/campaign"
	"repro/internal/circuits"
	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tester"
)

// Config parameterizes a sweep: the workloads, the shared test-program
// knobs (pattern budget, engine, seed), and the experiment grid.
type Config struct {
	// Circuits are the workload specs spanning the campaign's circuit
	// axis, resolved through the internal/circuits registry (builtins,
	// rand<seed>, bench: files, directories, globs). Each resolved
	// circuit is one slice of the grid. Must be non-empty.
	Circuits []string
	// Cache, when non-nil, shares Prepared artifacts (ATPG + ramp)
	// across campaigns; nil gives this sweep a private cache. Either
	// way each circuit is prepared exactly once per cache.
	// Excluded from JSON output — the cache is not a result.
	Cache *circuits.Cache `json:"-"`
	// Yields, N0s, and LotSizes span the grid; every combination (per
	// circuit) is one cell. Each must be non-empty.
	Yields   []float64
	N0s      []float64
	LotSizes []int
	// Coverages are the truncation targets: each replicate's test
	// program is cut at the first strobe reaching the target, and the
	// reject rate of the shipped (passing) chips is measured there.
	// Each must be in (0, 1] and reachable by every circuit's pattern
	// set.
	Coverages []float64
	// Replicates is the number of independent lots per cell.
	Replicates int
	// Workers sizes the replicate worker pool; 0 means GOMAXPROCS.
	// The aggregates do not depend on it.
	Workers int
	// RandomPatterns, Seed, Physical, Engine, and SimWorkers configure
	// the per-circuit test program exactly as in experiment.Table1Config.
	RandomPatterns int
	Seed           int64
	Physical       bool
	Engine         faultsim.Engine
	SimWorkers     int
	// BacktrackLimit bounds PODEM's per-fault search during cleanup
	// ATPG (0 = the generator's default); results-relevant, so part of
	// the campaign fingerprint.
	BacktrackLimit int
	// SampleFaults, when > 0, prepares each workload against a
	// deterministic random sample of at most this many collapsed fault
	// classes — the knob that makes ISCAS-scale circuits sweepable.
	// Results-relevant, so part of the campaign fingerprint.
	SampleFaults int
	// PreparedDir, when non-empty, backs this sweep's artifact cache
	// with an on-disk Prepared store: a warm store skips ATPG and
	// fault simulation entirely, and the results are byte-identical to
	// a cold run. Ignored when Cache is provided (the caller already
	// chose a caching policy). Not results-relevant: excluded from the
	// fingerprint and from JSON output.
	PreparedDir string `json:"-"`
	// LotEngine selects the ATE's lot-testing engine for every
	// replicate (chip-parallel by default, tester.Serial as the
	// opt-out oracle); the aggregates are bit-identical either way.
	LotEngine tester.LotEngine
}

// DefaultConfig returns the paper-matched single-cell sweep: the
// default workload's (y=0.07, n0=8.8) column at the §7 operating
// points.
func DefaultConfig() Config {
	return Config{
		Circuits:       []string{experiment.DefaultCircuitSpec},
		Yields:         []float64{0.07},
		N0s:            []float64{8.8},
		LotSizes:       []int{2000},
		Coverages:      []float64{0.50, 0.80, 0.94},
		Replicates:     20,
		RandomPatterns: 192,
		Seed:           1981,
	}
}

// table1 builds the lot-runner configuration for one grid point.
func (c Config) table1(y, n0 float64, chips int) experiment.Table1Config {
	return experiment.Table1Config{
		Chips:          chips,
		Yield:          y,
		N0:             n0,
		RandomPatterns: c.RandomPatterns,
		Seed:           c.Seed,
		Physical:       c.Physical,
		Engine:         c.Engine,
		SimWorkers:     c.SimWorkers,
		BacktrackLimit: c.BacktrackLimit,
		SampleFaults:   c.SampleFaults,
		LotEngine:      c.LotEngine,
	}
}

// Validate rejects empty or nonsense grids before any work happens.
// Every grid cell must form a valid experiment.Table1Config, and every
// circuit spec must expand (a typo fails here, not mid-campaign).
func (c Config) Validate() error {
	if _, err := c.expandUnits(); err != nil {
		return err
	}
	return c.validateGrid()
}

// expandUnits expands the circuit axis to unit specs.
func (c Config) expandUnits() ([]string, error) {
	if len(c.Circuits) == 0 {
		return nil, fmt.Errorf("sweep: need at least one circuit spec")
	}
	return circuits.ExpandAll(c.Circuits)
}

// validateGrid is Validate minus the spec expansion, so New — which
// needs the expanded unit list anyway — expands exactly once and runs
// the campaign over the same units it validated.
func (c Config) validateGrid() error {
	if len(c.Yields) == 0 {
		return fmt.Errorf("sweep: need at least one yield")
	}
	if len(c.N0s) == 0 {
		return fmt.Errorf("sweep: need at least one n0")
	}
	if len(c.LotSizes) == 0 {
		return fmt.Errorf("sweep: need at least one lot size")
	}
	if len(c.Coverages) == 0 {
		return fmt.Errorf("sweep: need at least one coverage target")
	}
	for _, f := range c.Coverages {
		if !(f > 0 && f <= 1) {
			return fmt.Errorf("sweep: coverage target must be in (0,1], got %v", f)
		}
	}
	if c.Replicates < 1 {
		return fmt.Errorf("sweep: need at least one replicate, got %d", c.Replicates)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sweep: worker count must be >= 0, got %d", c.Workers)
	}
	for _, y := range c.Yields {
		for _, n0 := range c.N0s {
			for _, chips := range c.LotSizes {
				if err := c.table1(y, n0, chips).Validate(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// workload is one circuit's slice of the campaign: its shared Prepared
// artifact, the lot runner over it, and the campaign's coverage targets
// resolved against this circuit's own ramp.
type workload struct {
	spec string // unit spec that produced the circuit
	lr   *experiment.LotRunner
	cuts []cut
}

// cellKey is one grid cell.
type cellKey struct {
	w     int // workload index
	y, n0 float64
	chips int
}

// cellList enumerates the grid in deterministic order: circuit
// outermost, then yield, n0, lot size.
func (s *Sweeper) cellList() []cellKey {
	var cells []cellKey
	for w := range s.workloads {
		for _, y := range s.cfg.Yields {
			for _, n0 := range s.cfg.N0s {
				for _, chips := range s.cfg.LotSizes {
					cells = append(cells, cellKey{w: w, y: y, n0: n0, chips: chips})
				}
			}
		}
	}
	return cells
}

// replicateSeed derives the per-replicate lot seed from the base seed
// and the replicate's global task index via the splitmix64 finalizer.
// Consecutive indices land on decorrelated streams, and the mapping
// depends only on (base, task) — never on which worker runs the task.
func replicateSeed(base int64, task int) int64 {
	z := uint64(base) + uint64(task+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// cut is one resolved truncation point of a workload's test program.
type cut struct {
	Target   float64 // requested coverage
	Coverage float64 // achieved coverage at the cut strobe
	Step     int     // last strobe index included in the truncated program
}

// Sweeper is a configured sweep with its once-per-circuit state built.
type Sweeper struct {
	cfg         Config
	workloads   []workload
	cells       []cellKey
	fingerprint string
}

// New validates the configuration, prepares every workload exactly once
// through the artifact cache (ATPG + coverage ramp), and resolves every
// coverage target to a strobe cut on each circuit's own ramp.
// Unreachable targets are an error naming the circuit, not a silent
// skip. The campaign runs over exactly the unit list that was
// validated — specs are expanded once, not re-read.
func New(cfg Config) (*Sweeper, error) {
	units, err := cfg.expandUnits()
	if err != nil {
		return nil, err
	}
	if err := cfg.validateGrid(); err != nil {
		return nil, err
	}
	cache := cfg.Cache
	if cache == nil {
		if cfg.PreparedDir != "" {
			store, err := circuits.NewStore(cfg.PreparedDir)
			if err != nil {
				return nil, err
			}
			cache = circuits.NewCacheWithStore(store)
		} else {
			cache = circuits.NewCache()
		}
	}
	// Any valid grid point serves for the runner's config validation,
	// and its PrepareParams is the preparation key every workload of
	// this sweep shares.
	t1 := cfg.table1(cfg.Yields[0], cfg.N0s[0], cfg.LotSizes[0])
	// Cold preparations are the expensive once-per-circuit work (ATPG +
	// coverage ramp); the cache serializes same-key builds and lets
	// distinct keys build in parallel, so fan the campaign's workloads
	// out instead of paying N sequential preps at startup. The first
	// error by unit index wins, keeping failures deterministic.
	preps := make([]*circuits.Prepared, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for i, unit := range units {
		wg.Add(1)
		go func(i int, unit string) {
			defer wg.Done()
			preps[i], errs[i] = cache.Get(unit, t1.PrepareParams())
		}(i, unit)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s := &Sweeper{cfg: cfg, workloads: make([]workload, len(units))}
	for i, unit := range units {
		lr, err := experiment.NewLotRunnerFrom(preps[i], t1)
		if err != nil {
			return nil, err
		}
		cuts, err := resolveCuts(preps[i], cfg.Coverages)
		if err != nil {
			return nil, err
		}
		s.workloads[i] = workload{spec: unit, lr: lr, cuts: cuts}
	}
	s.cells = s.cellList()
	s.fingerprint = fingerprint(units, cfg)
	return s, nil
}

// resolveCuts maps the requested coverage targets onto one circuit's
// strobe-granular ramp. Coverage only moves at the ramp's change
// points, so the first step reaching a target is always a change point
// — FirstReaching lands on exactly the strobe a dense scan would.
func resolveCuts(prep *circuits.Prepared, targets []float64) ([]cut, error) {
	cuts := make([]cut, len(targets))
	for i, target := range targets {
		pt, ok := prep.Curve.FirstReaching(target)
		if !ok {
			return nil, fmt.Errorf("sweep: coverage target %v unreachable on %s (pattern set tops out at %.4f)",
				target, prep.Circuit.Name, prep.FinalCoverage())
		}
		cuts[i] = cut{Target: target, Coverage: pt.Coverage, Step: pt.Pattern}
	}
	return cuts, nil
}

// Workloads returns the resolved circuit count (for reporting).
func (s *Sweeper) Workloads() int { return len(s.workloads) }

// Runner exposes a workload's LotRunner (for reporting circuit facts).
func (s *Sweeper) Runner(i int) *experiment.LotRunner { return s.workloads[i].lr }

// Run fans cells × replicates over the worker pool and aggregates. It
// is RunWith with no durability options: nothing checkpointed, nothing
// resumed — but the exact same store-fed fold, so the bytes match.
func (s *Sweeper) Run() (*Result, error) {
	return s.RunWith(RunOptions{})
}

// summarize manufactures and tests one replicate lot and reduces it to
// the per-replicate record the campaign store folds.
func (s *Sweeper) summarize(ate *tester.ATE, task int) (campaign.Summary, error) {
	cell := s.cells[task/s.cfg.Replicates]
	wl := s.workloads[cell.w]
	seed := replicateSeed(s.cfg.Seed, task)
	out, err := wl.lr.RunLotWith(ate, cell.y, cell.n0, cell.chips, seed)
	if err != nil {
		return campaign.Summary{}, err
	}
	sum := campaign.Summary{
		Passed:      make([]int, len(wl.cuts)),
		Escapes:     make([]int, len(wl.cuts)),
		TestedYield: out.TestedYield,
		LotYield:    out.LotYield,
		TrueN0:      out.TrueN0,
	}
	// A chip fails the program truncated at cut c iff its first failing
	// strobe is inside the prefix; everything else ships. Defective
	// shipped chips are the escapes the reject rate counts.
	for ci, c := range wl.cuts {
		failedChips := 0
		for _, ff := range out.FirstFail {
			if ff != tester.NeverFails && ff <= c.Step {
				failedChips++
			}
		}
		sum.Passed[ci] = cell.chips - failedChips
		sum.Escapes[ci] = sum.Passed[ci] - out.Good
	}
	if fit, err := estimate.FitN0(out.Curve, cell.y); err == nil {
		sum.FitOK = true
		sum.FitN0 = fit.N0
	}
	return sum, nil
}

// Run is the one-call convenience: New followed by Run.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// PointStat is the aggregated statistics at one (cell, coverage cut).
type PointStat struct {
	Target    float64 // requested coverage
	Coverage  float64 // achieved coverage at the cut
	AnalyticR float64 // Eq. 8 prediction at the achieved coverage
	MeanR     float64 // Monte-Carlo mean reject rate
	StdR      float64 // across-replicate standard deviation
	CILow     float64 // normal-approx 95% CI on the mean, clamped to [0,1]
	CIHigh    float64
	// RejSamples counts the replicates whose reject rate was defined
	// (at least one chip shipped); lots that ship nothing are excluded
	// from MeanR/StdR/CI rather than recorded as zero.
	RejSamples  int
	MeanEscapes float64
	MeanPassed  float64
}

// CellResult is one grid cell's aggregate.
type CellResult struct {
	Circuit    string // resolved circuit name of the cell's workload
	Yield      float64
	N0         float64
	Chips      int
	Replicates int
	Points     []PointStat
	// Whole-program statistics (no truncation).
	MeanTestedYield float64
	MeanLotYield    float64
	// n0 recovery: ground truth (lot mean) and the Fig. 5 curve fit,
	// aggregated over the replicates where the fit converged.
	TrueN0Mean  float64
	FitN0Count  int
	FitN0Mean   float64
	FitN0CILow  float64
	FitN0CIHigh float64
}

// WorkloadInfo is one circuit's preparation facts: what the campaign
// amortized across its cells and replicates.
type WorkloadInfo struct {
	Spec          string // unit spec the registry resolved
	Name          string // circuit name
	Stats         netlist.Stats
	FaultCount    int // working universe size (the sample when Sampled)
	PatternCount  int
	FinalCoverage float64
	// UniverseSize is the full collapsed fault universe; Sampled
	// reports whether FaultCount is a random sample of it, in which
	// case CoverageCILow/High bound the true whole-universe coverage
	// at 95% confidence.
	UniverseSize   int
	Sampled        bool
	CoverageCILow  float64
	CoverageCIHigh float64
	// ATPG tallies the per-fault PODEM outcomes (detected, untestable,
	// aborted at the backtrack budget).
	ATPG atpg.Tally
}

// Result is a finished sweep.
type Result struct {
	Config    Config
	Workloads []WorkloadInfo
	Cells     []CellResult
}
