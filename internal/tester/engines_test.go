package tester

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/defect"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

func TestParseLotEngine(t *testing.T) {
	for _, e := range LotEngines() {
		got, err := ParseLotEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round-trip %v: got %v, %v", e, got, err)
		}
		if !e.Known() {
			t.Errorf("%v not Known", e)
		}
	}
	if _, err := ParseLotEngine("warp"); err == nil {
		t.Error("unknown name should error")
	}
	if LotEngine(99).Known() {
		t.Error("bogus engine Known")
	}
	if _, err := NewEngine(netlist.C17(), []logicsim.Pattern{make(logicsim.Pattern, 5)}, LotEngine(99)); err == nil {
		t.Error("NewEngine with bogus engine should error")
	}
}

// TestLotEngineEquivalenceProperty is the randomized cross-engine pin:
// over random circuits, lots, and seeds, every registered lot engine
// must reproduce the Serial oracle's per-chip first-fail indices bit
// for bit, at both pattern and strobe granularity, along with every
// derived statistic. The loop iterates LotEngines(), so a new registry
// entry is pinned automatically.
func TestLotEngineEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1981))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		c, err := netlist.RandomCircuit(fmt.Sprintf("r%d", trial), 6+rng.Intn(6), 40+rng.Intn(120), 3+rng.Intn(6), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
		src, err := atpg.NewRandomSource(len(c.Inputs), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		patterns := atpg.Take(src, 48+rng.Intn(100))
		// Low yield and large-ish lots force multiple 63-lane batches
		// and several re-pack rounds through the chunk schedule.
		y := 0.05 + rng.Float64()*0.5
		n0 := 1 + rng.Float64()*7
		chips := 150 + rng.Intn(250)
		lot, err := defect.GenerateLotFromModel(y, n0, universe, chips, rng)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewEngine(c, patterns, Serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, steps := range []bool{false, true} {
			run := (*ATE).TestLot
			if steps {
				run = (*ATE).TestLotSteps
			}
			want, err := run(serial, lot)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range LotEngines() {
				if e == Serial {
					continue
				}
				par, err := NewEngine(c, patterns, e)
				if err != nil {
					t.Fatal(err)
				}
				got, err := run(par, lot)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d steps=%v: engines disagree\nserial: %+v\n%v: %+v",
						trial, steps, want, e, got)
				}
			}
		}
	}
}

func TestLotEnginesAgreeOnDoublePolarityChips(t *testing.T) {
	// A chip can carry both polarities of one site (distinct universe
	// entries); the last fault in the chip's list wins the site. Both
	// engines must apply the same order-dependent overwrite.
	c, universe, patterns := setup(t)
	var a, b int
	found := false
	for i := range universe {
		for j := i + 1; j < len(universe); j++ {
			if universe[i].Gate == universe[j].Gate && universe[i].Pin == universe[j].Pin &&
				universe[i].Stuck != universe[j].Stuck {
				a, b, found = i, j, true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no double-polarity site in the collapsed universe")
	}
	lot := defect.Lot{
		Universe: universe,
		Chips: []defect.Chip{
			{Faults: []int{a, b}},
			{Faults: []int{b, a}},
			{},
		},
	}
	serial, err := NewEngine(c, patterns, Serial)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TestLotSteps(lot)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range LotEngines() {
		if e == Serial {
			continue
		}
		par, err := NewEngine(c, patterns, e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.TestLotSteps(lot)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("double-polarity chips disagree: serial %+v, %v %+v", want, e, got)
		}
	}
}

func TestLotResultPassedConsistent(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	lot, err := defect.GenerateLotFromModel(0.25, 4, universe, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.TestLot(lot)
	if err != nil {
		t.Fatal(err)
	}
	passed := 0
	for _, ff := range res.FirstFail {
		if ff == NeverFails {
			passed++
		}
	}
	if res.Passed != passed {
		t.Errorf("Passed %d, hand count %d", res.Passed, passed)
	}
	if res.TestedYield != float64(passed)/400 {
		t.Errorf("TestedYield %v inconsistent with Passed %d", res.TestedYield, passed)
	}
	good := 0
	for _, ch := range lot.Chips {
		if !ch.Defective() {
			good++
		}
	}
	if res.Passed-good != res.Escapes {
		t.Errorf("Passed %d - good %d != Escapes %d", res.Passed, good, res.Escapes)
	}
}

func TestChipBadFaultIndexBothEngines(t *testing.T) {
	c, universe, patterns := setup(t)
	lot := defect.Lot{
		Universe: universe,
		Chips:    []defect.Chip{{Faults: []int{len(universe) + 3}}},
	}
	for _, e := range LotEngines() {
		a, err := NewEngine(c, patterns, e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.TestLot(lot); err == nil {
			t.Errorf("%v: out-of-universe fault index should error", e)
		}
	}
}

// TestConcurrentATEsShareCircuit exercises the contract the sweep's
// worker pool relies on: many goroutines with one ATE each over the
// *same* circuit and pattern set (sharing the circuit's cached
// levelization/cone state) must see identical results. Run under
// `make race`.
func TestConcurrentATEsShareCircuit(t *testing.T) {
	c, universe, patterns := setup(t)
	rng := rand.New(rand.NewSource(3))
	lot, err := defect.GenerateLotFromModel(0.2, 5, universe, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TestLotSteps(lot)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := ChipParallel
			switch w % 3 {
			case 1:
				e = Serial
			case 2:
				e = ChipParallel256
			}
			a, err := NewEngine(c, patterns, e)
			if err != nil {
				errs[w] = err
				return
			}
			for rep := 0; rep < 3; rep++ {
				got, err := a.TestLotSteps(lot)
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(want, got) {
					errs[w] = fmt.Errorf("worker %d rep %d: result drifted", w, rep)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
