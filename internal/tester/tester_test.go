package tester

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/defect"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

func setup(t *testing.T) (*netlist.Circuit, []fault.Fault, []logicsim.Pattern) {
	t.Helper()
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	src, err := atpg.NewRandomSource(len(c.Inputs), 11)
	if err != nil {
		t.Fatal(err)
	}
	return c, universe, atpg.Take(src, 128)
}

func TestNewErrors(t *testing.T) {
	c := netlist.C17()
	if _, err := New(c, nil); err == nil {
		t.Error("no patterns should error")
	}
}

func TestGoodChipNeverFails(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections(universe)
	ff, err := a.TestChip(defect.Chip{}, inj)
	if err != nil {
		t.Fatal(err)
	}
	if ff != NeverFails {
		t.Errorf("fault-free chip failed at %d", ff)
	}
	if a.Patterns() != len(patterns) {
		t.Error("Patterns() wrong")
	}
}

func injections(universe []fault.Fault) []logicsim.Injection {
	inj := make([]logicsim.Injection, len(universe))
	for i, f := range universe {
		inj[i] = logicsim.Injection{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}
	}
	return inj
}

func TestSingleFaultChipMatchesFaultSim(t *testing.T) {
	// A chip with exactly one fault must first-fail at exactly the
	// pattern the fault simulator says first detects that fault.
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faultsim.Run(c, universe, patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections(universe)
	for fi := 0; fi < len(universe); fi += 7 {
		ff, err := a.TestChip(defect.Chip{Faults: []int{fi}}, inj)
		if err != nil {
			t.Fatal(err)
		}
		want := res.FirstDetect[fi]
		if want == faultsim.NotDetected {
			want = NeverFails
		}
		if ff != want {
			t.Errorf("fault %d: ATE first-fail %d, fault sim %d", fi, ff, want)
		}
	}
}

func TestMultiFaultChipFailsNoLaterThanEasiestFault(t *testing.T) {
	// With several faults on board, the chip should usually fail at or
	// before the earliest single-fault detection (fault masking can
	// delay it in principle, but must be rare). We assert: at least 90%
	// of multi-fault chips fail no later than their easiest fault, and
	// none pass everything if any single fault is detectable.
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faultsim.Run(c, universe, patterns, faultsim.PPSFP)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections(universe)
	rng := rand.New(rand.NewSource(21))
	onTime, total := 0, 0
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(8)
		fidx := make([]int, 0, k)
		seen := make(map[int]bool)
		for len(fidx) < k {
			fi := rng.Intn(len(universe))
			if !seen[fi] {
				seen[fi] = true
				fidx = append(fidx, fi)
			}
		}
		easiest := math.MaxInt32
		for _, fi := range fidx {
			if d := res.FirstDetect[fi]; d != faultsim.NotDetected && d < easiest {
				easiest = d
			}
		}
		if easiest == math.MaxInt32 {
			continue
		}
		ff, err := a.TestChip(defect.Chip{Faults: fidx}, inj)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ff == NeverFails {
			t.Errorf("chip with detectable faults passed all patterns (faults %v)", fidx)
			continue
		}
		if ff <= easiest {
			onTime++
		}
	}
	if float64(onTime) < 0.9*float64(total) {
		t.Errorf("only %d/%d chips failed by their easiest fault", onTime, total)
	}
}

func TestTestLotStatistics(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	lot, err := defect.GenerateLotFromModel(0.3, 5, universe, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.TestLot(lot)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FirstFail) != 500 {
		t.Fatal("first-fail length")
	}
	if res.TrueYield != lot.Yield {
		t.Errorf("true yield %v != lot yield %v", res.TrueYield, lot.Yield)
	}
	// Tested yield >= true yield (escapes only add passes).
	if res.TestedYield < res.TrueYield {
		t.Errorf("tested yield %v below true yield %v", res.TestedYield, res.TrueYield)
	}
	wantEscapes := int(math.Round((res.TestedYield - res.TrueYield) * 500))
	if res.Escapes != wantEscapes {
		t.Errorf("escapes %d inconsistent with yields (want %d)", res.Escapes, wantEscapes)
	}
}

func TestFalloutTable(t *testing.T) {
	res := LotResult{FirstFail: []int{0, 0, 3, NeverFails, 7}}
	curve := make([]faultsim.CoveragePoint, 10)
	for i := range curve {
		curve[i] = faultsim.CoveragePoint{Pattern: i, Coverage: float64(i+1) / 10}
	}
	rows, err := FalloutTable(res, curve, []int{0, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	wantFailed := []int{2, 3, 4}
	wantCov := []float64{0.1, 0.4, 1.0}
	for i, row := range rows {
		if row.CumFailed != wantFailed[i] {
			t.Errorf("row %d failed = %d, want %d", i, row.CumFailed, wantFailed[i])
		}
		if math.Abs(row.Coverage-wantCov[i]) > 1e-12 {
			t.Errorf("row %d coverage = %v, want %v", i, row.Coverage, wantCov[i])
		}
		if math.Abs(row.CumFracton-float64(wantFailed[i])/5) > 1e-12 {
			t.Errorf("row %d fraction = %v", i, row.CumFracton)
		}
	}
}

func TestFalloutTableErrors(t *testing.T) {
	res := LotResult{FirstFail: []int{0}}
	if _, err := FalloutTable(res, nil, []int{0}); err == nil {
		t.Error("empty curve should error")
	}
	curve := []faultsim.CoveragePoint{{Pattern: 0, Coverage: 0.5}}
	if _, err := FalloutTable(res, curve, []int{5}); err == nil {
		t.Error("checkpoint beyond curve should error")
	}
}

func TestFirstFailCoverages(t *testing.T) {
	res := LotResult{FirstFail: []int{1, NeverFails}}
	curve := []faultsim.CoveragePoint{{Coverage: 0.1}, {Coverage: 0.3}}
	out, err := FirstFailCoverages(res, curve)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.3 {
		t.Errorf("coverage %v", out[0])
	}
	if !math.IsNaN(out[1]) {
		t.Error("never-fail should be NaN")
	}
}

func TestFirstFailCoveragesGranularityMismatch(t *testing.T) {
	// A strobe-granular first-fail record against a pattern-granular
	// curve used to index out of bounds and panic; it must error.
	res := LotResult{FirstFail: []int{7}}
	curve := []faultsim.CoveragePoint{{Coverage: 0.1}, {Coverage: 0.3}}
	if _, err := FirstFailCoverages(res, curve); err == nil {
		t.Error("out-of-curve first-fail index should error")
	}
	if _, err := FirstFailCoverages(LotResult{FirstFail: []int{-3}}, curve); err == nil {
		t.Error("negative non-sentinel index should error")
	}
}

func TestChipBadFaultIndex(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TestChip(defect.Chip{Faults: []int{len(universe) + 5}}, injections(universe)); err == nil {
		t.Error("out-of-universe fault index should error")
	}
}

func BenchmarkTestLot277(b *testing.B) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		b.Fatal(err)
	}
	universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	src, _ := atpg.NewRandomSource(len(c.Inputs), 11)
	patterns := atpg.Take(src, 128)
	a, err := New(c, patterns)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	lot, err := defect.GenerateLotFromModel(0.07, 8.8, universe, 277, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.TestLot(lot); err != nil {
			b.Fatal(err)
		}
	}
}
