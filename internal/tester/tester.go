// Package tester is the ATE (automatic test equipment) substrate: it
// applies an ordered pattern set to each chip of a lot, stops at the
// first failing pattern, and records that pattern's index — exactly the
// experiment §5 and §7 of the paper run on a Fairchild Sentry. The
// per-chip first-fail indices, joined with the fault simulator's
// cumulative-coverage ramp, give the fallout curve from which n0 is
// estimated.
package tester

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/defect"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// NeverFails marks a chip that passes the whole pattern set.
const NeverFails = -1

// ATE tests chips against a fixed circuit and ordered pattern set.
type ATE struct {
	c        *netlist.Circuit
	patterns []logicsim.Pattern
	blocks   []logicsim.PatternBlock
	good     [][]uint64 // good-machine outputs per block
	sim      *logicsim.Simulator
}

// New builds an ATE, pre-simulating the good machine once.
func New(c *netlist.Circuit, patterns []logicsim.Pattern) (*ATE, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("tester: no patterns")
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	a := &ATE{c: c, patterns: patterns, sim: sim}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return nil, err
		}
		good, err := sim.Run(block)
		if err != nil {
			return nil, err
		}
		a.blocks = append(a.blocks, block)
		a.good = append(a.good, append([]uint64(nil), good...))
	}
	return a, nil
}

// Patterns returns the number of patterns the ATE applies.
func (a *ATE) Patterns() int { return len(a.patterns) }

// TestChip returns the index of the first pattern the chip fails, or
// NeverFails. The chip's faults are injected simultaneously (a multi-
// fault machine), which is what physical testing actually observes.
func (a *ATE) TestChip(chip defect.Chip, universe []logicsim.Injection) (int, error) {
	if !chip.Defective() {
		return NeverFails, nil
	}
	inj, err := a.injections(chip, universe)
	if err != nil {
		return 0, err
	}
	for bi, block := range a.blocks {
		bad, err := a.sim.RunWithFaults(block, inj)
		if err != nil {
			return 0, err
		}
		var diff uint64
		for o := range bad {
			diff |= (bad[o] ^ a.good[bi][o]) & block.Mask()
		}
		if diff != 0 {
			return bi*64 + bits.TrailingZeros64(diff), nil
		}
	}
	return NeverFails, nil
}

// TestChipSteps returns the first failing *strobe* (pattern × output)
// step index, or NeverFails. This matches the Sentry's bookkeeping in
// Table 1 ("the first pattern at which the tester strobed the chip
// output"): step = pattern*numOutputs + outputIndex.
func (a *ATE) TestChipSteps(chip defect.Chip, universe []logicsim.Injection) (int, error) {
	if !chip.Defective() {
		return NeverFails, nil
	}
	inj, err := a.injections(chip, universe)
	if err != nil {
		return 0, err
	}
	nOut := len(a.c.Outputs)
	for bi, block := range a.blocks {
		bad, err := a.sim.RunWithFaults(block, inj)
		if err != nil {
			return 0, err
		}
		best := -1
		for o := range bad {
			diff := (bad[o] ^ a.good[bi][o]) & block.Mask()
			if diff == 0 {
				continue
			}
			p := bi*64 + bits.TrailingZeros64(diff)
			step := p*nOut + o
			if best < 0 || step < best {
				best = step
			}
		}
		if best >= 0 {
			return best, nil
		}
	}
	return NeverFails, nil
}

// injections maps a chip's fault indices into injectable faults.
func (a *ATE) injections(chip defect.Chip, universe []logicsim.Injection) ([]logicsim.Injection, error) {
	inj := make([]logicsim.Injection, len(chip.Faults))
	for i, fi := range chip.Faults {
		if fi < 0 || fi >= len(universe) {
			return nil, fmt.Errorf("tester: chip fault index %d out of universe", fi)
		}
		inj[i] = universe[fi]
	}
	return inj, nil
}

// LotResult is the record the paper's experiment produces.
type LotResult struct {
	// FirstFail[i] is chip i's first failing pattern, or NeverFails.
	FirstFail []int
	// TestedYield is the fraction of chips that passed every pattern
	// (what the line actually ships before field returns).
	TestedYield float64
	// TrueYield is the fraction of chips with no faults at all.
	TrueYield float64
	// Escapes counts defective chips that passed all patterns — the
	// bad chips shipped, whose fraction the reject-rate model predicts.
	Escapes int
}

// TestLot tests every chip and aggregates the lot statistics at
// pattern granularity.
func (a *ATE) TestLot(lot defect.Lot) (LotResult, error) {
	return a.testLot(lot, (*ATE).TestChip)
}

// TestLotSteps is TestLot at strobe granularity: FirstFail holds step
// indices (pattern*numOutputs + output).
func (a *ATE) TestLotSteps(lot defect.Lot) (LotResult, error) {
	return a.testLot(lot, (*ATE).TestChipSteps)
}

func (a *ATE) testLot(lot defect.Lot, test func(*ATE, defect.Chip, []logicsim.Injection) (int, error)) (LotResult, error) {
	universe := make([]logicsim.Injection, len(lot.Universe))
	for i, f := range lot.Universe {
		universe[i] = logicsim.Injection{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}
	}
	res := LotResult{FirstFail: make([]int, len(lot.Chips))}
	passed, trueGood := 0, 0
	for i, chip := range lot.Chips {
		ff, err := test(a, chip, universe)
		if err != nil {
			return LotResult{}, err
		}
		res.FirstFail[i] = ff
		if ff == NeverFails {
			passed++
			if chip.Defective() {
				res.Escapes++
			}
		}
		if !chip.Defective() {
			trueGood++
		}
	}
	n := float64(len(lot.Chips))
	res.TestedYield = float64(passed) / n
	res.TrueYield = float64(trueGood) / n
	return res, nil
}

// FalloutRow is one line of the paper's Table 1.
type FalloutRow struct {
	Coverage   float64 // cumulative fault coverage at the checkpoint
	CumFailed  int     // cumulative number of chips failed
	CumFracton float64 // cumulative fraction of chips failed
}

// FalloutTable reduces a lot result to Table 1 format at the given
// pattern checkpoints, using the coverage ramp from fault simulation.
// checkpoints are pattern indices (inclusive); the coverage column is
// the ramp value at that pattern.
func FalloutTable(res LotResult, curve []faultsim.CoveragePoint, checkpoints []int) ([]FalloutRow, error) {
	if len(curve) == 0 {
		return nil, fmt.Errorf("tester: empty coverage curve")
	}
	rows := make([]FalloutRow, 0, len(checkpoints))
	total := len(res.FirstFail)
	for _, cp := range checkpoints {
		if cp < 0 || cp >= len(curve) {
			return nil, fmt.Errorf("tester: checkpoint %d outside curve (%d patterns)", cp, len(curve))
		}
		failed := 0
		for _, ff := range res.FirstFail {
			if ff != NeverFails && ff <= cp {
				failed++
			}
		}
		rows = append(rows, FalloutRow{
			Coverage:   curve[cp].Coverage,
			CumFailed:  failed,
			CumFracton: float64(failed) / float64(total),
		})
	}
	return rows, nil
}

// FirstFailCoverages converts first-fail pattern indices to first-fail
// *coverages* using the ramp; chips that never fail map to NaN. This is
// the input format the estimate package's bootstrap consumes.
func FirstFailCoverages(res LotResult, curve []faultsim.CoveragePoint) []float64 {
	out := make([]float64, len(res.FirstFail))
	for i, ff := range res.FirstFail {
		if ff == NeverFails {
			out[i] = math.NaN()
		} else {
			out[i] = curve[ff].Coverage
		}
	}
	return out
}
