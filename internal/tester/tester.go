// Package tester is the ATE (automatic test equipment) substrate: it
// applies an ordered pattern set to each chip of a lot, stops at the
// first failing pattern, and records that pattern's index — exactly the
// experiment §5 and §7 of the paper run on a Fairchild Sentry. The
// per-chip first-fail indices, joined with the fault simulator's
// cumulative-coverage ramp, give the fallout curve from which n0 is
// estimated.
//
// Three lot engines share one result contract (identical FirstFail, bit
// for bit): Serial tests one chip at a time — the oracle —
// ChipParallel, the default, packs the good machine plus up to 63
// defective chips into the 64 bit-lanes of one word and evaluates them
// in a single circuit walk per pattern (see chipparallel.go), and
// ChipParallel256 widens that layout to 4-word lane blocks (255 chips
// per walk) over the flat struct-of-arrays core (see
// chipparallel256.go).
package tester

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/defect"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// NeverFails marks a chip that passes the whole pattern set.
const NeverFails = -1

// LotEngine selects how TestLot/TestLotSteps walk a lot. Both engines
// produce bit-identical results; they differ only in speed.
type LotEngine int

// Available lot engines. ChipParallel is the zero value on purpose: an
// unconfigured engine field selects the fast path, and Serial stays
// around as the per-chip oracle the equivalence tests pin it to.
const (
	ChipParallel LotEngine = iota
	Serial
	ChipParallel256
)

// lotEngineNames maps each engine to its CLI-stable name.
var lotEngineNames = map[LotEngine]string{
	ChipParallel:    "chip-parallel",
	Serial:          "serial",
	ChipParallel256: "chipparallel256",
}

// String names the lot engine.
func (e LotEngine) String() string {
	if n, ok := lotEngineNames[e]; ok {
		return n
	}
	return fmt.Sprintf("LotEngine(%d)", int(e))
}

// Known reports whether e is a registered lot engine, letting
// configuration layers fail fast instead of erroring mid-lot.
func (e LotEngine) Known() bool {
	_, ok := lotEngineNames[e]
	return ok
}

// ParseLotEngine maps an engine name (as printed by String and accepted
// by the CLIs) back to the LotEngine.
func ParseLotEngine(name string) (LotEngine, error) {
	for _, e := range LotEngines() {
		if lotEngineNames[e] == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("tester: unknown lot engine %q", name)
}

// LotEngines lists every registered lot engine in a stable order.
func LotEngines() []LotEngine {
	out := make([]LotEngine, 0, len(lotEngineNames))
	for e := range lotEngineNames {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ATE tests chips against a fixed circuit and ordered pattern set.
type ATE struct {
	c        *netlist.Circuit
	patterns []logicsim.Pattern
	blocks   []logicsim.PatternBlock
	good     [][]uint64 // good-machine outputs per block
	sim      *logicsim.Simulator
	engine   LotEngine

	// Universe→Injection conversion cache: campaigns share one fault
	// universe across thousands of lots, so the conversion is keyed by
	// slice identity and done once per ATE (see injectionsFor).
	univKey *fault.Fault
	univLen int
	univInj []logicsim.Injection

	pp    *chipParallelState    // lazily built chip-parallel scratch
	pp256 *chipParallel256State // lazily built chipparallel256 scratch
	tcOut []uint64              // TestChip/TestChipSteps output scratch
}

// New builds an ATE with the default (chip-parallel) lot engine,
// pre-simulating the good machine once.
func New(c *netlist.Circuit, patterns []logicsim.Pattern) (*ATE, error) {
	return NewEngine(c, patterns, ChipParallel)
}

// NewEngine is New with an explicit lot engine.
func NewEngine(c *netlist.Circuit, patterns []logicsim.Pattern, engine LotEngine) (*ATE, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("tester: no patterns")
	}
	if !engine.Known() {
		return nil, fmt.Errorf("tester: unknown lot engine %v", engine)
	}
	sim, err := logicsim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	a := &ATE{c: c, patterns: patterns, sim: sim, engine: engine}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := logicsim.PackPatterns(patterns[base:end])
		if err != nil {
			return nil, err
		}
		good, err := sim.Run(block)
		if err != nil {
			return nil, err
		}
		a.blocks = append(a.blocks, block)
		a.good = append(a.good, append([]uint64(nil), good...))
	}
	return a, nil
}

// Engine returns the lot engine TestLot/TestLotSteps dispatch to.
func (a *ATE) Engine() LotEngine { return a.engine }

// SetEngine switches the lot engine. Results are unaffected — the
// engines are bit-identical — so this is purely a speed/oracle knob.
func (a *ATE) SetEngine(e LotEngine) { a.engine = e }

// Patterns returns the number of patterns the ATE applies.
func (a *ATE) Patterns() int { return len(a.patterns) }

// TestChip returns the index of the first pattern the chip fails, or
// NeverFails. The chip's faults are injected simultaneously (a multi-
// fault machine), which is what physical testing actually observes.
func (a *ATE) TestChip(chip defect.Chip, universe []logicsim.Injection) (int, error) {
	if !chip.Defective() {
		return NeverFails, nil
	}
	inj, err := a.injections(chip, universe)
	if err != nil {
		return 0, err
	}
	for bi, block := range a.blocks {
		bad, err := a.sim.RunWithFaultsInto(block, inj, a.tcOut)
		if err != nil {
			return 0, err
		}
		a.tcOut = bad
		var diff uint64
		for o := range bad {
			diff |= (bad[o] ^ a.good[bi][o]) & block.Mask()
		}
		if diff != 0 {
			return bi*64 + bits.TrailingZeros64(diff), nil
		}
	}
	return NeverFails, nil
}

// TestChipSteps returns the first failing *strobe* (pattern × output)
// step index, or NeverFails. This matches the Sentry's bookkeeping in
// Table 1 ("the first pattern at which the tester strobed the chip
// output"): step = pattern*numOutputs + outputIndex.
func (a *ATE) TestChipSteps(chip defect.Chip, universe []logicsim.Injection) (int, error) {
	if !chip.Defective() {
		return NeverFails, nil
	}
	inj, err := a.injections(chip, universe)
	if err != nil {
		return 0, err
	}
	nOut := len(a.c.Outputs)
	for bi, block := range a.blocks {
		bad, err := a.sim.RunWithFaultsInto(block, inj, a.tcOut)
		if err != nil {
			return 0, err
		}
		a.tcOut = bad
		best := -1
		for o := range bad {
			diff := (bad[o] ^ a.good[bi][o]) & block.Mask()
			if diff == 0 {
				continue
			}
			p := bi*64 + bits.TrailingZeros64(diff)
			step := p*nOut + o
			if best < 0 || step < best {
				best = step
			}
		}
		if best >= 0 {
			return best, nil
		}
	}
	return NeverFails, nil
}

// injections maps a chip's fault indices into injectable faults.
func (a *ATE) injections(chip defect.Chip, universe []logicsim.Injection) ([]logicsim.Injection, error) {
	inj := make([]logicsim.Injection, len(chip.Faults))
	for i, fi := range chip.Faults {
		if fi < 0 || fi >= len(universe) {
			return nil, fmt.Errorf("tester: chip fault index %d out of universe", fi)
		}
		inj[i] = universe[fi]
	}
	return inj, nil
}

// injectionsFor converts a lot's fault universe to injectable form,
// cached by slice identity: campaigns share one universe (from a
// circuits.Prepared) across thousands of lots, so per-lot reconversion
// was pure waste. A different universe (or a same-length reallocation)
// misses and reconverts.
func (a *ATE) injectionsFor(universe []fault.Fault) []logicsim.Injection {
	if len(universe) == 0 {
		return nil
	}
	if a.univKey == &universe[0] && a.univLen == len(universe) {
		return a.univInj
	}
	inj := make([]logicsim.Injection, len(universe))
	for i, f := range universe {
		inj[i] = logicsim.Injection{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}
	}
	a.univKey, a.univLen, a.univInj = &universe[0], len(universe), inj
	return inj
}

// LotResult is the record the paper's experiment produces.
type LotResult struct {
	// FirstFail[i] is chip i's first failing pattern, or NeverFails.
	FirstFail []int
	// Passed counts chips that passed every pattern — the exact integer
	// the yields are derived from.
	Passed int
	// TestedYield is the fraction of chips that passed every pattern
	// (what the line actually ships before field returns).
	TestedYield float64
	// TrueYield is the fraction of chips with no faults at all.
	TrueYield float64
	// Escapes counts defective chips that passed all patterns — the
	// bad chips shipped, whose fraction the reject-rate model predicts.
	Escapes int
}

// TestLot tests every chip and aggregates the lot statistics at
// pattern granularity.
func (a *ATE) TestLot(lot defect.Lot) (LotResult, error) {
	return a.testLot(lot, false)
}

// TestLotSteps is TestLot at strobe granularity: FirstFail holds step
// indices (pattern*numOutputs + output).
func (a *ATE) TestLotSteps(lot defect.Lot) (LotResult, error) {
	return a.testLot(lot, true)
}

// testLot runs the configured lot engine and folds the per-chip
// first-fail record into the lot statistics.
func (a *ATE) testLot(lot defect.Lot, steps bool) (LotResult, error) {
	universe := a.injectionsFor(lot.Universe)
	var ff []int
	var err error
	switch a.engine {
	case Serial:
		ff, err = a.serialFirstFail(lot, universe, steps)
	case ChipParallel:
		ff, err = a.chipParallelFirstFail(lot, universe, steps)
	case ChipParallel256:
		ff, err = a.chipParallel256FirstFail(lot, universe, steps)
	default:
		err = fmt.Errorf("tester: unknown lot engine %v", a.engine)
	}
	if err != nil {
		return LotResult{}, err
	}
	res := LotResult{FirstFail: ff}
	trueGood := 0
	for i, chip := range lot.Chips {
		if ff[i] == NeverFails {
			res.Passed++
			if chip.Defective() {
				res.Escapes++
			}
		}
		if !chip.Defective() {
			trueGood++
		}
	}
	n := float64(len(lot.Chips))
	res.TestedYield = float64(res.Passed) / n
	res.TrueYield = float64(trueGood) / n
	return res, nil
}

// serialFirstFail is the oracle engine: one chip at a time through
// TestChip/TestChipSteps.
func (a *ATE) serialFirstFail(lot defect.Lot, universe []logicsim.Injection, steps bool) ([]int, error) {
	test := (*ATE).TestChip
	if steps {
		test = (*ATE).TestChipSteps
	}
	ff := make([]int, len(lot.Chips))
	for i, chip := range lot.Chips {
		f, err := test(a, chip, universe)
		if err != nil {
			return nil, err
		}
		ff[i] = f
	}
	return ff, nil
}

// FalloutRow is one line of the paper's Table 1.
type FalloutRow struct {
	Coverage   float64 // cumulative fault coverage at the checkpoint
	CumFailed  int     // cumulative number of chips failed
	CumFracton float64 // cumulative fraction of chips failed
}

// FalloutTable reduces a lot result to Table 1 format at the given
// pattern checkpoints, using the coverage ramp from fault simulation.
// checkpoints are pattern indices (inclusive); the coverage column is
// the ramp value at that pattern.
func FalloutTable(res LotResult, curve []faultsim.CoveragePoint, checkpoints []int) ([]FalloutRow, error) {
	if len(curve) == 0 {
		return nil, fmt.Errorf("tester: empty coverage curve")
	}
	rows := make([]FalloutRow, 0, len(checkpoints))
	total := len(res.FirstFail)
	for _, cp := range checkpoints {
		if cp < 0 || cp >= len(curve) {
			return nil, fmt.Errorf("tester: checkpoint %d outside curve (%d patterns)", cp, len(curve))
		}
		failed := 0
		for _, ff := range res.FirstFail {
			if ff != NeverFails && ff <= cp {
				failed++
			}
		}
		rows = append(rows, FalloutRow{
			Coverage:   curve[cp].Coverage,
			CumFailed:  failed,
			CumFracton: float64(failed) / float64(total),
		})
	}
	return rows, nil
}

// FalloutTableRamp is FalloutTable against a change-point-compressed
// coverage ramp (faultsim.SparseRamp): checkpoints are strobe step
// indices in [0, ramp.Steps), and the coverage column is the ramp
// value at that step. This is the LSI-scale path — the dense curve for
// a 7.5k-gate circuit is tens of millions of points, the sparse ramp a
// few thousand.
func FalloutTableRamp(res LotResult, ramp faultsim.Ramp, checkpoints []int) ([]FalloutRow, error) {
	if ramp.Steps == 0 {
		return nil, fmt.Errorf("tester: empty coverage ramp")
	}
	rows := make([]FalloutRow, 0, len(checkpoints))
	total := len(res.FirstFail)
	for _, cp := range checkpoints {
		if cp < 0 || cp >= ramp.Steps {
			return nil, fmt.Errorf("tester: checkpoint %d outside ramp (%d steps)", cp, ramp.Steps)
		}
		failed := 0
		for _, ff := range res.FirstFail {
			if ff != NeverFails && ff <= cp {
				failed++
			}
		}
		rows = append(rows, FalloutRow{
			Coverage:   ramp.At(cp).Coverage,
			CumFailed:  failed,
			CumFracton: float64(failed) / float64(total),
		})
	}
	return rows, nil
}

// FirstFailCoverages converts first-fail indices to first-fail
// *coverages* using the ramp; chips that never fail map to NaN. This is
// the input format the estimate package's bootstrap consumes. The
// result and the curve must share one granularity: a TestLotSteps
// result pairs with the strobe-granular ramp (pattern × output, e.g.
// faultsim.StepCoverageCurve), a TestLot result with the
// pattern-granular one. A first-fail index outside the curve is a
// granularity mismatch and returns an error instead of panicking.
func FirstFailCoverages(res LotResult, curve []faultsim.CoveragePoint) ([]float64, error) {
	out := make([]float64, len(res.FirstFail))
	for i, ff := range res.FirstFail {
		if ff == NeverFails {
			out[i] = math.NaN()
			continue
		}
		if ff < 0 || ff >= len(curve) {
			return nil, fmt.Errorf("tester: first-fail index %d outside the %d-point curve (granularity mismatch?)",
				ff, len(curve))
		}
		out[i] = curve[ff].Coverage
	}
	return out, nil
}
