package tester

import (
	"testing"

	"repro/internal/defect"
	"repro/internal/faultsim"
)

func TestTestChipStepsConsistent(t *testing.T) {
	// Strobe-granular first-fail must land inside the pattern that the
	// pattern-granular test reports.
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections(universe)
	nOut := len(c.Outputs)
	for fi := 0; fi < len(universe); fi += 11 {
		chip := defect.Chip{Faults: []int{fi}}
		byPattern, err := a.TestChip(chip, inj)
		if err != nil {
			t.Fatal(err)
		}
		bySteps, err := a.TestChipSteps(chip, inj)
		if err != nil {
			t.Fatal(err)
		}
		if (byPattern == NeverFails) != (bySteps == NeverFails) {
			t.Fatalf("fault %d: detection disagreement", fi)
		}
		if byPattern == NeverFails {
			continue
		}
		if bySteps < byPattern*nOut || bySteps >= (byPattern+1)*nOut {
			t.Errorf("fault %d: step %d outside pattern %d", fi, bySteps, byPattern)
		}
	}
}

func TestTestLotStepsMatchesStepFaultSim(t *testing.T) {
	// Single-fault chips through TestLotSteps must agree with
	// faultsim.RunSteps exactly.
	c, universe, patterns := setup(t)
	a, err := New(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	stepRes, err := faultsim.RunSteps(c, universe, patterns)
	if err != nil {
		t.Fatal(err)
	}
	lot := defect.Lot{Universe: universe}
	for fi := 0; fi < len(universe); fi += 13 {
		lot.Chips = append(lot.Chips, defect.Chip{Faults: []int{fi}})
	}
	res, err := a.TestLotSteps(lot)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for fi := 0; fi < len(universe); fi += 13 {
		want := stepRes.FirstDetect[fi]
		if want == faultsim.NotDetected {
			want = NeverFails
		}
		if res.FirstFail[i] != want {
			t.Errorf("fault %d: lot step %d, faultsim step %d", fi, res.FirstFail[i], want)
		}
		i++
	}
}
