package tester

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/defect"
)

// TestPP256BuildRejectsOverfullBatch is the compaction guard: a batch
// whose lanes do not fit the forcing table's width must be rejected
// with the named ErrBatchLanes instead of a lane-range error deep in
// the walk — the invariant a re-packed batch relies on.
func TestPP256BuildRejectsOverfullBatch(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := NewEngine(c, patterns, ChipParallel256)
	if err != nil {
		t.Fatal(err)
	}
	lot := defect.Lot{
		Universe: universe,
		Chips:    []defect.Chip{{Faults: []int{0}}},
	}
	inj := a.injectionsFor(universe)
	// Warm the per-width scratch so pp256Build can be driven directly.
	if _, err := a.chipParallel256FirstFail(lot, inj, false); err != nil {
		t.Fatal(err)
	}
	_, lf, err := a.pp256.at(1)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]ppItem, 64) // 64 chips + good machine > 64 lanes
	alive := make([]uint64, 1)
	if err := a.pp256Build(batch, lf, alive); !errors.Is(err, ErrBatchLanes) {
		t.Errorf("overfull batch error %v, want ErrBatchLanes", err)
	}
	if err := a.pp256Build(batch[:63], lf, alive); err != nil {
		t.Errorf("full batch rejected: %v", err)
	}
}

// TestPP256CompactionMatchesSerial forces the dead-lane compaction path
// hard — a shallow, wide-fanout circuit where most chips die within the
// first patterns — and pins the compacted engine to the serial oracle
// at both granularities.
func TestPP256CompactionMatchesSerial(t *testing.T) {
	c, universe, patterns := setup(t)
	rng := rand.New(rand.NewSource(256))
	// Very low yield: full 255-chip batches that thin out fast, walking
	// the 4→2→1 width ladder repeatedly across the chunk schedule.
	lot, err := defect.GenerateLotFromModel(0.02, 6, universe, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewEngine(c, patterns, Serial)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewEngine(c, patterns, ChipParallel256)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []bool{false, true} {
		run := (*ATE).TestLot
		if steps {
			run = (*ATE).TestLotSteps
		}
		want, err := run(serial, lot)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run(wide, lot)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("steps=%v: compacted engine disagrees with serial", steps)
		}
	}
}

// TestPP256BatchZeroAllocs pins the compacted batch step — the
// chipparallel256 inner loop, including the width ladder — to zero
// allocations once the per-width scratch is warm.
func TestPP256BatchZeroAllocs(t *testing.T) {
	c, universe, patterns := setup(t)
	a, err := NewEngine(c, patterns, ChipParallel256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	lot, err := defect.GenerateLotFromModel(0.05, 5, universe, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	inj := a.injectionsFor(universe)
	// One full run warms every width's walk state and the high-water
	// marks of the output and survivor buffers.
	ff, err := a.chipParallel256FirstFail(lot, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	var batch []ppItem
	for i, chip := range lot.Chips {
		if chip.Defective() {
			batch = append(batch, ppItem{chip: i, key: chip.Faults[0]})
		}
		if len(batch) == pp256Lanes {
			break
		}
	}
	if len(batch) < 130 {
		t.Fatalf("only %d defective chips; want enough to start multi-word", len(batch))
	}
	scratch := make([]ppItem, len(batch))
	next := make([]ppItem, 0, len(batch))
	if allocs := testing.AllocsPerRun(20, func() {
		copy(scratch, batch) // the batch is compacted in place; re-seed it
		var err error
		next, err = a.pp256Batch(scratch, 0, len(patterns), false, ff, next[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("pp256Batch allocates %v per run, want 0", allocs)
	}
}
