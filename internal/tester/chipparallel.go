package tester

import (
	"fmt"
	"math/bits"

	"repro/internal/defect"
	"repro/internal/logicsim"
)

// The chip-parallel lot engine transposes the ATE's word layout: where
// the serial oracle packs 64 patterns into a word and walks the circuit
// once per (chip, block), chip-parallel packs the good machine (lane 0)
// plus up to 63 defective chips (lanes 1..63) into one word and walks
// the circuit once per pattern for the whole batch. Each chip's faults
// are forced onto its lane through a shared logicsim.LaneForces table —
// v = (v &^ careMask) | forceBits per fault site — generalizing the
// fault simulator's fault-parallel engine to multi-fault lanes.
//
// First-fail extraction is exact at either granularity: at pattern p
// the lane word of each primary output is diffed against the broadcast
// of lane 0 (the good machine computed in the same walk), outputs in
// strobe order, so the first differing (pattern, output) pair per lane
// is the same strobe the serial oracle reports. A lane is dropped the
// moment its chip fails, and a batch exits as soon as every lane has
// failed.
//
// Scheduling is what makes the lanes earn their keep: patterns are
// processed in growing chunks (8, 16, 32, then 64), and after each
// chunk the survivors of *all* batches are re-packed into fresh full
// batches for the next chunk. Most defective chips fail within the
// first few patterns, so without re-packing a batch would idle 60+ dead
// lanes while its slowest chip (or an escape) walks the rest of the
// program; with it, the number of batches shrinks with the survivor
// count round after round. Within a round, surviving chips are ordered
// by their lowest fault-universe index — chips with overlapping fault
// sites fail at correlated times, so neighbours tend to die in the same
// chunk and lanes stay packed. The ordering affects only scheduling,
// never results.

const (
	// ppLanes is the number of chip lanes per batch (lane 0 is the good
	// machine).
	ppLanes = 63
	// ppChunkStart/ppChunkMax bound the growing pattern-chunk schedule:
	// small early chunks keep dead-lane waste low while the lot is
	// failing fast, and the cap keeps late rounds from re-packing
	// needlessly once only stragglers remain.
	ppChunkStart = 8
	ppChunkMax   = 64
)

// chipParallelState is the engine's per-ATE scratch, allocated once and
// reused across lots.
type chipParallelState struct {
	forces     *logicsim.LaneForces
	out        []uint64
	work, next []ppItem
	sort       ppSort
}

// ppItem is one defective chip awaiting testing: its lot index and its
// batching key (lowest fault-universe index).
type ppItem struct {
	chip, key int
}

// ppSort is the reusable scratch of sortWork, shared by both
// chip-parallel engines through their states.
type ppSort struct {
	count []int32
	tmp   []ppItem
}

// sortWork orders the lot's defective chips by batching key, chip index
// breaking ties — the deterministic schedule both chip-parallel engines
// share. Keys are fault-universe indexes, so instead of a comparison
// sort this is one stable counting pass over nKeys buckets: count the
// keys, prefix-sum the counts into bucket offsets, and place the items
// in their incoming (chip) order. On shallow circuits chips die within
// the first few patterns and scheduling overhead competes with
// simulation itself — the comparison sort this replaces was a fifth of
// lot wall time.
func (ps *ppSort) sortWork(work []ppItem, nKeys int) {
	if cap(ps.count) < nKeys+1 {
		ps.count = make([]int32, nKeys+1)
	}
	count := ps.count[:nKeys+1]
	clear(count)
	for _, it := range work {
		count[it.key]++
	}
	var sum int32
	for k := range count {
		sum, count[k] = sum+count[k], sum
	}
	ps.tmp = append(ps.tmp[:0], work...)
	for _, it := range ps.tmp {
		work[count[it.key]] = it
		count[it.key]++
	}
}

// chipParallelFirstFail computes the per-chip first-fail record of the
// lot — pattern indices, or strobe steps when steps is true —
// bit-identical to serialFirstFail.
func (a *ATE) chipParallelFirstFail(lot defect.Lot, universe []logicsim.Injection, steps bool) ([]int, error) {
	if a.pp == nil {
		a.pp = &chipParallelState{forces: logicsim.NewLaneForces(a.c)}
	}
	st := a.pp
	ff := make([]int, len(lot.Chips))
	work := st.work[:0]
	for i, chip := range lot.Chips {
		ff[i] = NeverFails
		if !chip.Defective() {
			continue
		}
		key := chip.Faults[0]
		for _, fi := range chip.Faults {
			if fi < 0 || fi >= len(universe) {
				return nil, fmt.Errorf("tester: chip fault index %d out of universe", fi)
			}
			if fi < key {
				key = fi
			}
		}
		work = append(work, ppItem{chip: i, key: key})
	}
	// Batch by fault-site overlap: equal-key chips keep lot order (the
	// chip index breaks ties), so the schedule — and everything else —
	// is deterministic.
	st.sort.sortWork(work, len(universe))
	spare := st.next[:0]
	base, chunk := 0, ppChunkStart
	for len(work) > 0 && base < len(a.patterns) {
		end := base + chunk
		if end > len(a.patterns) {
			end = len(a.patterns)
		}
		next := spare[:0]
		for lo := 0; lo < len(work); lo += ppLanes {
			hi := lo + ppLanes
			if hi > len(work) {
				hi = len(work)
			}
			var err error
			next, err = a.ppBatch(lot, universe, work[lo:hi], base, end, steps, ff, next)
			if err != nil {
				return nil, err
			}
		}
		work, spare = next, work
		base = end
		if chunk < ppChunkMax {
			chunk *= 2
		}
	}
	st.work, st.next = work, spare
	return ff, nil
}

// ppBatch walks patterns [base, end) for one batch of up to 63 chips,
// recording first fails and appending the survivors to next.
func (a *ATE) ppBatch(lot defect.Lot, universe []logicsim.Injection, batch []ppItem,
	base, end int, steps bool, ff []int, next []ppItem) ([]ppItem, error) {
	lf := a.pp.forces
	// build (re)fills the forcing table with the faults of the lanes
	// still alive. A dense table is what makes a lane walk expensive —
	// 63 multi-fault chips mark most of the circuit as forced sites — so
	// once enough lanes have died the table is rebuilt without them and
	// the walk cost tracks the survivor count instead of the batch size.
	build := func(lanes uint64) error {
		lf.Reset()
		for i, it := range batch {
			lane := uint64(1) << uint(i+1)
			if lanes&lane == 0 {
				continue
			}
			for _, fi := range lot.Chips[it.chip].Faults {
				if err := lf.Add(universe[fi], lane); err != nil {
					return err
				}
			}
		}
		return nil
	}
	alive := (uint64(1)<<uint(len(batch)+1) - 1) &^ 1 // chip lanes 1..len(batch)
	if err := build(alive); err != nil {
		return nil, err
	}
	built := len(batch)
	nOut := len(a.c.Outputs)
	out := a.pp.out
	for p := base; p < end && alive != 0; p++ {
		var err error
		out, err = a.sim.RunLaneForced(a.blocks[p/64], p%64, lf, out)
		if err != nil {
			return nil, err
		}
		if steps {
			// Outputs in strobe order: the first diff per lane is its
			// first failing strobe, exactly as the serial oracle sees it.
			for o := 0; o < nOut; o++ {
				d := (out[o] ^ -(out[o] & 1)) & alive
				for d != 0 {
					lane := bits.TrailingZeros64(d)
					d &^= 1 << uint(lane)
					alive &^= 1 << uint(lane)
					ff[batch[lane-1].chip] = p*nOut + o
				}
			}
		} else {
			var d uint64
			for o := 0; o < nOut; o++ {
				d |= out[o] ^ -(out[o] & 1)
			}
			d &= alive
			for d != 0 {
				lane := bits.TrailingZeros64(d)
				d &^= 1 << uint(lane)
				alive &^= 1 << uint(lane)
				ff[batch[lane-1].chip] = p
			}
		}
		// Prune the table once three quarters of the lanes it was built
		// for have failed; dead lanes' forces only slow the walk down,
		// but rebuilding too eagerly costs more in Adds than it saves.
		if n := bits.OnesCount64(alive); n > 0 && n*4 <= built && p+1 < end {
			if err := build(alive); err != nil {
				return nil, err
			}
			built = n
		}
	}
	a.pp.out = out
	for lane := 1; lane <= len(batch); lane++ {
		if alive>>uint(lane)&1 == 1 {
			next = append(next, batch[lane-1])
		}
	}
	return next, nil
}
