package tester

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/defect"
	"repro/internal/logicsim"
)

// The chipparallel256 lot engine is the chip-parallel engine widened
// onto the flat struct-of-arrays core: the good machine (lane 0) plus
// up to 255 defective chips ride the 256 bit-lanes of a 4-word lane
// block, and one flat walk per pattern (logicsim.WideSim.RunLaneForced)
// evaluates the whole batch. Scheduling is identical to chip-parallel —
// growing pattern chunks with cross-batch survivor re-packing, ordered
// by lowest fault-universe index, and force-table pruning once three
// quarters of a batch's lanes have died — just with 4x the lanes per
// walk and the flat core's cheaper per-gate step. First-fail extraction
// is exact at both granularities, bit-identical to the serial oracle.

const (
	// pp256Words is the lane-block width: 4 words = 256 lanes.
	pp256Words = 4
	// pp256Lanes is the number of chip lanes per batch (lane 0 is the
	// good machine).
	pp256Lanes = 64*pp256Words - 1
)

// chipParallel256State is the engine's per-ATE scratch, allocated once
// and reused across lots.
type chipParallel256State struct {
	sim        *logicsim.WideSim
	forces     *logicsim.WideLaneForces
	out        []uint64
	work, next []ppItem
}

// chipParallel256FirstFail computes the per-chip first-fail record of
// the lot — pattern indices, or strobe steps when steps is true —
// bit-identical to serialFirstFail.
func (a *ATE) chipParallel256FirstFail(lot defect.Lot, universe []logicsim.Injection, steps bool) ([]int, error) {
	if a.pp256 == nil {
		flat, err := logicsim.FlatFor(a.c)
		if err != nil {
			return nil, err
		}
		sim, err := logicsim.NewWideSim(flat, pp256Words)
		if err != nil {
			return nil, err
		}
		forces, err := logicsim.NewWideLaneForces(flat, pp256Words)
		if err != nil {
			return nil, err
		}
		a.pp256 = &chipParallel256State{sim: sim, forces: forces}
	}
	st := a.pp256
	ff := make([]int, len(lot.Chips))
	work := st.work[:0]
	for i, chip := range lot.Chips {
		ff[i] = NeverFails
		if !chip.Defective() {
			continue
		}
		key := chip.Faults[0]
		for _, fi := range chip.Faults {
			if fi < 0 || fi >= len(universe) {
				return nil, fmt.Errorf("tester: chip fault index %d out of universe", fi)
			}
			if fi < key {
				key = fi
			}
		}
		work = append(work, ppItem{chip: i, key: key})
	}
	slices.SortFunc(work, func(x, y ppItem) int {
		if x.key != y.key {
			return x.key - y.key
		}
		return x.chip - y.chip
	})
	spare := st.next[:0]
	base, chunk := 0, ppChunkStart
	for len(work) > 0 && base < len(a.patterns) {
		end := base + chunk
		if end > len(a.patterns) {
			end = len(a.patterns)
		}
		next := spare[:0]
		for lo := 0; lo < len(work); lo += pp256Lanes {
			hi := lo + pp256Lanes
			if hi > len(work) {
				hi = len(work)
			}
			var err error
			next, err = a.pp256Batch(lot, universe, work[lo:hi], base, end, steps, ff, next)
			if err != nil {
				return nil, err
			}
		}
		work, spare = next, work
		base = end
		if chunk < ppChunkMax {
			chunk *= 2
		}
	}
	st.work, st.next = work, spare
	return ff, nil
}

// pp256Batch walks patterns [base, end) for one batch of up to 255
// chips, recording first fails and appending the survivors to next.
func (a *ATE) pp256Batch(lot defect.Lot, universe []logicsim.Injection, batch []ppItem,
	base, end int, steps bool, ff []int, next []ppItem) ([]ppItem, error) {
	st := a.pp256
	lf := st.forces
	// build (re)fills the forcing table with the faults of the lanes
	// still alive, so the walk cost tracks the survivor count once the
	// 3/4-dead pruning threshold fires (same policy as chip-parallel).
	build := func(alive *[pp256Words]uint64) error {
		lf.Reset()
		for i := range batch {
			lane := i + 1
			if alive[lane>>6]>>uint(lane&63)&1 == 0 {
				continue
			}
			for _, fi := range lot.Chips[batch[i].chip].Faults {
				if err := lf.Add(universe[fi], lane); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// alive covers chip lanes 1..len(batch).
	var alive [pp256Words]uint64
	nLanes := len(batch) + 1
	for k := 0; k < pp256Words; k++ {
		lo := k * 64
		switch {
		case nLanes >= lo+64:
			alive[k] = ^uint64(0)
		case nLanes > lo:
			alive[k] = (uint64(1) << uint(nLanes-lo)) - 1
		}
	}
	alive[0] &^= 1 // lane 0 is the good machine
	if err := build(&alive); err != nil {
		return nil, err
	}
	built := len(batch)
	liveCount := func() int {
		n := 0
		for k := 0; k < pp256Words; k++ {
			n += bits.OnesCount64(alive[k])
		}
		return n
	}
	nOut := len(a.c.Outputs)
	out := st.out
	for p := base; p < end && liveCount() != 0; p++ {
		var err error
		out, err = st.sim.RunLaneForced(a.blocks[p/64], p%64, lf, out)
		if err != nil {
			return nil, err
		}
		for o := 0; o < nOut; o++ {
			ob := out[o*pp256Words : (o+1)*pp256Words]
			gb := -(ob[0] & 1) // broadcast the good machine (lane 0)
			anyDiff := false
			for k := 0; k < pp256Words; k++ {
				if (ob[k]^gb)&alive[k] != 0 {
					anyDiff = true
					break
				}
			}
			if !anyDiff {
				continue
			}
			for k := 0; k < pp256Words; k++ {
				d := (ob[k] ^ gb) & alive[k]
				for d != 0 {
					bit := bits.TrailingZeros64(d)
					d &^= uint64(1) << uint(bit)
					alive[k] &^= uint64(1) << uint(bit)
					lane := k*64 + bit
					if steps {
						ff[batch[lane-1].chip] = p*nOut + o
					} else {
						ff[batch[lane-1].chip] = p
					}
				}
			}
		}
		if n := liveCount(); n > 0 && n*4 <= built && p+1 < end {
			if err := build(&alive); err != nil {
				return nil, err
			}
			built = n
		}
	}
	st.out = out
	for lane := 1; lane <= len(batch); lane++ {
		if alive[lane>>6]>>uint(lane&63)&1 == 1 {
			next = append(next, batch[lane-1])
		}
	}
	return next, nil
}
