package tester

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/defect"
	"repro/internal/logicsim"
)

// The chipparallel256 lot engine is the chip-parallel engine widened
// onto the flat struct-of-arrays core: the good machine (lane 0) plus
// up to 255 defective chips ride the bit-lanes of a multi-word lane
// block, and one flat walk per pattern (logicsim.WideSim.RunLaneForced)
// evaluates the whole batch. Scheduling is identical to chip-parallel —
// growing pattern chunks with cross-batch survivor re-packing, ordered
// by lowest fault-universe index, and force-table pruning once three
// quarters of a batch's lanes have died — with one addition: dead-lane
// *compaction*. A batch starts at the narrowest width that holds its
// lanes and, whenever the survivors fit in at most half the current
// words, re-packs them into the low lanes of a narrower block and
// continues at that width. Shallow circuits kill most of a batch in the
// first few patterns, so without compaction the walk drags mostly-empty
// words for the batch's whole life — the documented cmp16 regression
// against the 1-word chip-parallel engine. With it the steady state
// collapses to the 1-word scalar kernel (logicsim wide1.go) while the
// opening patterns still retire 255 chips per walk. First-fail
// extraction is exact at both granularities, bit-identical to the
// serial oracle.

const (
	// pp256Words is the lane-block width a batch *starts* at (before
	// compaction narrows it): 4 words = 256 lanes.
	pp256Words = 4
	// pp256Lanes is the number of chip lanes per batch (lane 0 is the
	// good machine).
	pp256Lanes = 64*pp256Words - 1
)

// ErrBatchLanes marks a chip batch whose lanes do not fit the
// lane-block width the engine is about to walk — the guard that keeps a
// re-packed (compacted) batch from silently indexing lanes past the
// narrower forcing table.
var ErrBatchLanes = errors.New("tester: batch lanes exceed lane-block width")

// chipParallel256State is the engine's per-ATE scratch, allocated once
// and reused across lots. Walk state and forcing tables are per width,
// built lazily: a lot only pays for the widths its batches actually
// compact through (4 at the start, then 2 and 1 as lanes die).
type chipParallel256State struct {
	flat   *logicsim.Flat
	sims   [logicsim.MaxLaneWords + 1]*logicsim.WideSim
	forces [logicsim.MaxLaneWords + 1]*logicsim.WideLaneForces

	out        []uint64
	work, next []ppItem
	sort       ppSort
	// Per-lot CSR of resolved chip faults: chip c's injections live at
	// faults[faultAt[c]:faultAt[c+1]]. Table builds re-walk these lists
	// on every rebuild and prune, and the lot's per-chip []int slices
	// point all over the heap — flattening them once per lot turns each
	// rebuild into streaming reads of a contiguous array, with the
	// universe indirection already resolved away.
	faultAt []int32
	faults  []logicsim.SlotInjection
}

// at returns the walk state and forcing table of the given width,
// building both on first use.
func (st *chipParallel256State) at(words int) (*logicsim.WideSim, *logicsim.WideLaneForces, error) {
	if st.sims[words] == nil {
		sim, err := logicsim.NewWideSim(st.flat, words)
		if err != nil {
			return nil, nil, err
		}
		forces, err := logicsim.NewWideLaneForces(st.flat, words)
		if err != nil {
			return nil, nil, err
		}
		st.sims[words], st.forces[words] = sim, forces
	}
	return st.sims[words], st.forces[words], nil
}

// chipParallel256FirstFail computes the per-chip first-fail record of
// the lot — pattern indices, or strobe steps when steps is true —
// bit-identical to serialFirstFail.
func (a *ATE) chipParallel256FirstFail(lot defect.Lot, universe []logicsim.Injection, steps bool) ([]int, error) {
	if a.pp256 == nil {
		flat, err := logicsim.FlatFor(a.c)
		if err != nil {
			return nil, err
		}
		a.pp256 = &chipParallel256State{flat: flat}
	}
	st := a.pp256
	// Resolve the universe to slot space once, then flatten each chip's
	// fault list through it into the per-lot CSR: the batch builds below
	// re-add the same faults on every rebuild, and the flattened
	// resolved form makes each of those adds a validation-free
	// AddResolved fed by sequential reads (see chipParallel256State).
	resolved, err := st.flat.ResolveInjections(universe)
	if err != nil {
		return nil, err
	}
	ff := make([]int, len(lot.Chips))
	work := st.work[:0]
	st.faultAt = append(st.faultAt[:0], 0)
	st.faults = st.faults[:0]
	for i, chip := range lot.Chips {
		ff[i] = NeverFails
		key := len(universe)
		for _, fi := range chip.Faults {
			if fi < 0 || fi >= len(universe) {
				return nil, fmt.Errorf("tester: chip fault index %d out of universe", fi)
			}
			if fi < key {
				key = fi
			}
			st.faults = append(st.faults, resolved[fi])
		}
		st.faultAt = append(st.faultAt, int32(len(st.faults)))
		if chip.Defective() {
			work = append(work, ppItem{chip: i, key: key})
		}
	}
	st.sort.sortWork(work, len(universe))
	spare := st.next[:0]
	base, chunk := 0, ppChunkStart
	for len(work) > 0 && base < len(a.patterns) {
		end := base + chunk
		if end > len(a.patterns) {
			end = len(a.patterns)
		}
		next := spare[:0]
		for lo := 0; lo < len(work); lo += pp256Lanes {
			hi := lo + pp256Lanes
			if hi > len(work) {
				hi = len(work)
			}
			var err error
			next, err = a.pp256Batch(work[lo:hi], base, end, steps, ff, next)
			if err != nil {
				return nil, err
			}
		}
		work, spare = next, work
		base = end
		if chunk < ppChunkMax {
			chunk *= 2
		}
	}
	st.work, st.next = work, spare
	return ff, nil
}

// laneWordsFor returns the narrowest lane-block width holding the good
// machine plus n chip lanes.
func laneWordsFor(n int) int {
	return (n + 1 + 63) / 64
}

// pp256Build (re)fills a forcing table with the pre-resolved faults of
// the batch lanes still alive, validating that every lane fits the table's width:
// after a compaction the table is narrower than the one the batch
// started on, and a lane index surviving from the wide assignment must
// never reach it (ErrBatchLanes names that invariant instead of an
// opaque lane-range error deep in logicsim). The walk cost then tracks
// the survivor count, whether the rebuild came from the 3/4-dead
// pruning threshold or from a re-pack.
func (a *ATE) pp256Build(batch []ppItem, lf *logicsim.WideLaneForces, alive []uint64) error {
	if len(batch)+1 > lf.Lanes() {
		return errBatchLanes(len(batch), lf.Words())
	}
	st := a.pp256
	lf.Reset()
	for i := range batch {
		lane := i + 1
		if alive[lane>>6]>>uint(lane&63)&1 == 0 {
			continue
		}
		c := batch[i].chip
		for _, sf := range st.faults[st.faultAt[c]:st.faultAt[c+1]] {
			lf.AddResolved(sf, lane)
		}
	}
	return nil
}

// errBatchLanes builds the lane-overflow error outside the batch loop.
func errBatchLanes(chips, words int) error {
	return fmt.Errorf("tester: %d chip lanes into a %d-word block: %w", chips, words, ErrBatchLanes)
}

// pp256Batch walks patterns [base, end) for one batch of up to 255
// chips, recording first fails and appending the survivors to next. The
// batch slice is compacted in place as lanes die (its tail entries are
// dead storage afterwards; the caller's work buffer is rebuilt from
// next each chunk, so nothing reads them).
//
//repolint:hotpath
func (a *ATE) pp256Batch(batch []ppItem,
	base, end int, steps bool, ff []int, next []ppItem) ([]ppItem, error) {
	st := a.pp256
	words := laneWordsFor(len(batch))
	sim, lf, err := st.at(words)
	if err != nil {
		return nil, err
	}
	// alive covers chip lanes 1..len(batch); aliveArr keeps it off the
	// heap across the width changes.
	var aliveArr [logicsim.MaxLaneWords]uint64
	alive := aliveArr[:words]
	setAlive := func(nLanes int) {
		for k := 0; k < len(alive); k++ {
			lo := k * 64
			switch {
			case nLanes >= lo+64:
				alive[k] = ^uint64(0)
			case nLanes > lo:
				alive[k] = (uint64(1) << uint(nLanes-lo)) - 1
			default:
				alive[k] = 0
			}
		}
		alive[0] &^= 1 // lane 0 is the good machine
	}
	setAlive(len(batch) + 1)
	if err := a.pp256Build(batch, lf, alive); err != nil {
		return nil, err
	}
	built := len(batch)
	liveCount := func() int {
		n := 0
		for k := 0; k < len(alive); k++ {
			n += bits.OnesCount64(alive[k])
		}
		return n
	}
	nOut := len(a.c.Outputs)
	out := st.out
	for p := base; p < end; p++ {
		out, err = sim.RunLaneForced(a.blocks[p/64], p%64, lf, out)
		if err != nil {
			return nil, err
		}
		for o := 0; o < nOut; o++ {
			ob := out[o*words : (o+1)*words]
			gb := -(ob[0] & 1) // broadcast the good machine (lane 0)
			anyDiff := false
			for k := 0; k < words; k++ {
				if (ob[k]^gb)&alive[k] != 0 {
					anyDiff = true
					break
				}
			}
			if !anyDiff {
				continue
			}
			for k := 0; k < words; k++ {
				d := (ob[k] ^ gb) & alive[k]
				for d != 0 {
					bit := bits.TrailingZeros64(d)
					d &^= uint64(1) << uint(bit)
					alive[k] &^= uint64(1) << uint(bit)
					lane := k*64 + bit
					if steps {
						ff[batch[lane-1].chip] = p*nOut + o
					} else {
						ff[batch[lane-1].chip] = p
					}
				}
			}
		}
		n := liveCount()
		if n == 0 || p+1 >= end {
			break
		}
		if w2 := laneWordsFor(n); w2 <= words/2 {
			// ≥ half the words hold no live lane: re-pack the survivors
			// into the low lanes of a narrower block and continue there.
			// Survivor order is preserved, so the lowest-fault-index
			// ordering the scheduler relies on is untouched.
			n2 := 0
			for lane := 1; lane <= len(batch); lane++ {
				if alive[lane>>6]>>uint(lane&63)&1 == 1 {
					batch[n2] = batch[lane-1]
					n2++
				}
			}
			batch = batch[:n2]
			words = w2
			if sim, lf, err = st.at(words); err != nil {
				return nil, err
			}
			alive = aliveArr[:words]
			setAlive(n2 + 1)
			if err := a.pp256Build(batch, lf, alive); err != nil {
				return nil, err
			}
			built = n2
		} else if n*4 <= built {
			// Same-width prune: rebuild the force table over the
			// survivors so the staged evaluations stop paying for dead
			// lanes' faults.
			if err := a.pp256Build(batch, lf, alive); err != nil {
				return nil, err
			}
			built = n
		}
	}
	st.out = out
	for lane := 1; lane <= len(batch); lane++ {
		if alive[lane>>6]>>uint(lane&63)&1 == 1 {
			next = append(next, batch[lane-1])
		}
	}
	return next, nil
}
