// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper. Each benchmark regenerates the artifact's data
// series (and, once per run, prints headline numbers so `go test
// -bench=.` doubles as a reproduction log).
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/defect"
	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/sweep"
	"repro/internal/tester"
)

// once guards the one-time headline printouts so -benchtime doesn't
// repeat them.
var once sync.Once

func printHeadlines() {
	fmt.Println("=== reproduction headlines ===")
	m, _ := core.New(0.07, 8)
	f1, _ := m.RequiredCoverage(0.01)
	f2, _ := m.RequiredCoverage(0.001)
	fmt.Printf("§7: y=0.07 n0=8: f(r=1%%)=%.3f (paper ~0.80), f(r=0.1%%)=%.3f (paper ~0.95)\n", f1, f2)
	fit, _ := estimate.FitN0(estimate.PaperTable1.Curve, estimate.PaperTable1.Yield)
	slope, _ := estimate.SlopeN0(estimate.PaperTable1.Curve[:1], estimate.PaperTable1.Yield, 0.06)
	fmt.Printf("Fig. 5: fitted n0=%.2f (paper ~8), slope n0=%.2f (paper 8.8)\n", fit.N0, slope.N0)
}

// BenchmarkFig1 regenerates the Fig. 1 reject-rate curves.
func BenchmarkFig1(b *testing.B) {
	once.Do(printHeadlines)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates the required-coverage family at r = 0.01.
func BenchmarkFig2(b *testing.B) {
	benchReqCov(b, 0.01)
}

// BenchmarkFig3 regenerates the required-coverage family at r = 0.005.
func BenchmarkFig3(b *testing.B) {
	benchReqCov(b, 0.005)
}

// BenchmarkFig4 regenerates the required-coverage family at r = 0.001.
func BenchmarkFig4(b *testing.B) {
	benchReqCov(b, 0.001)
}

func benchReqCov(b *testing.B, r float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RequiredCoverageFigure(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Fit regenerates the Fig. 5 n0 determination from the
// paper's Table 1 data (curve fit + slope).
func BenchmarkFig5Fit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := estimate.FitN0(estimate.PaperTable1.Curve, estimate.PaperTable1.Yield); err != nil {
			b.Fatal(err)
		}
		if _, err := estimate.SlopeN0(estimate.PaperTable1.Curve[:1], estimate.PaperTable1.Yield, 0.06); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the q0(n) approximation comparison.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig6()
		if len(res.Curves) != 15 {
			b.Fatal("wrong curve count")
		}
	}
}

// BenchmarkEngines is the fault-simulation engine matrix: every engine
// against paper-scale circuits, 256 random patterns each, on the
// collapsed fault list. ppsfp-full is the pre-cone full-circuit
// reference path (the seed implementation); comparing it with ppsfp
// isolates what the cone restriction buys. The ns/fault-pattern metric
// is the engine-comparison number quoted in the README.
func BenchmarkEngines(b *testing.B) {
	circuits := []struct {
		name  string
		build func() (*netlist.Circuit, error)
	}{
		{"mul8", func() (*netlist.Circuit, error) { return netlist.ArrayMultiplier(8) }},
		{"cmp16", func() (*netlist.Circuit, error) { return netlist.Comparator(16) }},
	}
	type benchEngine struct {
		name   string
		engine faultsim.Engine
		opt    faultsim.Options
	}
	// Every registered engine is benchmarked automatically; ppsfp-full
	// is the seed full-circuit reference path kept for comparison.
	engines := []benchEngine{
		{"ppsfp-full", faultsim.PPSFP, faultsim.Options{FullCircuit: true}},
	}
	for _, e := range faultsim.Engines() {
		engines = append(engines, benchEngine{e.String(), e, faultsim.Options{}})
	}
	for _, en := range engines {
		for _, ce := range circuits {
			b.Run(en.name+"/"+ce.name, func(b *testing.B) {
				c, err := ce.build()
				if err != nil {
					b.Fatal(err)
				}
				reps := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
				rng := rand.New(rand.NewSource(1))
				patterns := make([]logicsim.Pattern, 256)
				for i := range patterns {
					p := make(logicsim.Pattern, len(c.Inputs))
					for j := range p {
						p[j] = rng.Intn(2) == 1
					}
					patterns[i] = p
				}
				// One warm-up run outside the timer so -benchtime=1x
				// still reports steady state (the per-circuit cone
				// set is built once and cached on the circuit).
				if _, err := faultsim.RunOpts(c, reps, patterns, en.engine, en.opt); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := faultsim.RunOpts(c, reps, patterns, en.engine, en.opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(
					float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(reps)*len(patterns)),
					"ns/fault-pattern")
				// Circuit scale travels with the measurement so bench
				// artifacts from different workload generations stay
				// comparable (benchjson records these as metadata).
				b.ReportMetric(float64(len(c.Gates)), "gates")
				b.ReportMetric(float64(len(reps)), "faults")
				b.ReportMetric(float64(len(patterns)), "patterns")
			})
		}
	}
}

// BenchmarkLotEngines is the ATE lot-engine matrix, the counterpart of
// BenchmarkEngines for the lot-testing path: every lot engine first-
// fail-tests the same paper-shaped lot (2000 chips, y=0.07, n0=8.8)
// against a production pattern set, at strobe granularity. The chips/s
// metric is the campaign-throughput number the chip-parallel engine is
// judged on (the acceptance bar is ≥2x serial on mul8).
func BenchmarkLotEngines(b *testing.B) {
	workloads := []struct {
		name  string
		build func() (*netlist.Circuit, error)
	}{
		{"mul8", func() (*netlist.Circuit, error) { return netlist.ArrayMultiplier(8) }},
		{"cmp16", func() (*netlist.Circuit, error) { return netlist.Comparator(16) }},
	}
	const chips = 2000
	for _, e := range tester.LotEngines() {
		for _, wl := range workloads {
			b.Run(e.String()+"/"+wl.name, func(b *testing.B) {
				c, err := wl.build()
				if err != nil {
					b.Fatal(err)
				}
				universe := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
				patterns, err := atpg.ProductionTests(c, 96, 96, 1981)
				if err != nil {
					b.Fatal(err)
				}
				a, err := tester.NewEngine(c, patterns, e)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				lot, err := defect.GenerateLotFromModel(0.07, 8.8, universe, chips, rng)
				if err != nil {
					b.Fatal(err)
				}
				// Warm-up outside the timer (cone/levelization caches,
				// universe-conversion cache).
				if _, err := a.TestLotSteps(lot); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := a.TestLotSteps(lot); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(chips*b.N)/b.Elapsed().Seconds(), "chips/s")
				b.ReportMetric(float64(len(c.Gates)), "gates")
				b.ReportMetric(float64(len(universe)), "faults")
				b.ReportMetric(float64(len(patterns)), "patterns")
			})
		}
	}
}

// BenchmarkTable1 runs the full synthetic lot experiment: circuit,
// fault collapsing, test generation, strobe-granular fault simulation,
// lot manufacture, ATE testing, fallout reduction and n0 recovery.
// This is the headline end-to-end benchmark.
func BenchmarkTable1(b *testing.B) {
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.DefaultTable1Config()
	cfg.Circuit = c
	cfg.RandomPatterns = 96
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Physical is BenchmarkTable1 with the lot generated
// through the physical-defect layer (ablation: defect clustering and
// fault multiplicity instead of the direct statistical model).
func BenchmarkTable1Physical(b *testing.B) {
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.DefaultTable1Config()
	cfg.Circuit = c
	cfg.RandomPatterns = 96
	cfg.Physical = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWadsackComparison regenerates the §7 model comparison.
func BenchmarkWadsackComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.WadsackComparison(0.07, 8, []float64{0.01, 0.005, 0.001}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShrinkStudy regenerates the §8 fine-line prediction.
func BenchmarkShrinkStudy(b *testing.B) {
	scales := []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ShrinkStudy(2.659, 0.5, 8, 0.001, scales); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateRejectRate runs the end-to-end Eq. 8 validation on
// a modest lot.
func BenchmarkValidateRejectRate(b *testing.B) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ValidateRejectRate(c, 0.3, 6, 2000, []float64{0.7}, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollapseStudy runs the fault-collapsing ablation.
func BenchmarkCollapseStudy(b *testing.B) {
	c, err := netlist.ArrayMultiplier(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CollapseStudy(c, 128, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorBias runs the estimator ablation (curve fit vs
// slope) over a small batch of synthetic lots.
func BenchmarkEstimatorBias(b *testing.B) {
	points := []struct{ Y, N0 float64 }{{0.07, 8.8}, {0.5, 8.8}}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EstimatorBias(points, 277, 10, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldN0Study runs the paper's proposed future-work
// experiment: the empirical yield↔n0 relationship over a defect-density
// sweep (smaller lots than the default to keep the benchmark quick).
func BenchmarkYieldN0Study(b *testing.B) {
	c, err := netlist.ArrayMultiplier(4)
	if err != nil {
		b.Fatal(err)
	}
	d0as := []float64{0.5, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.YieldN0Study(c, d0as, 3, 500, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepared measures what the circuits-layer artifact cache
// amortizes: "cold" is the full once-per-circuit preparation (fault
// collapsing, production ATPG, strobe-granular coverage ramp), "cached"
// is the hit path a campaign's lots, replicates, and workers actually
// take. The ratio is the per-circuit cost the multi-workload sweep
// pays exactly once.
func BenchmarkPrepared(b *testing.B) {
	params := circuits.Params{RandomPatterns: 64, Seed: 1981}
	const spec = "mul5"
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh cache each iteration forces the build.
			if _, err := circuits.NewCache().Get(spec, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := circuits.NewCache()
		if _, err := cache.Get(spec, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(spec, params); err != nil {
				b.Fatal(err)
			}
		}
		if cache.Builds() != 1 {
			b.Fatalf("cache rebuilt: %d builds", cache.Builds())
		}
	})
}

// BenchmarkSweep measures the Monte-Carlo sweep engine's replicate
// throughput as the worker pool scales: the once-per-circuit work
// (ATPG, coverage ramp) is excluded via a pre-built Sweeper, so the
// replicates/s metric isolates the fan-out hot path (lot manufacture,
// first-fail testing, per-cut reduction).
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sweep.Config{
				Circuits:       []string{"mul5"},
				Yields:         []float64{0.07},
				N0s:            []float64{8.8},
				LotSizes:       []int{500},
				Coverages:      []float64{0.5, 0.8},
				Replicates:     32,
				Workers:        workers,
				RandomPatterns: 64,
				Seed:           1981,
			}
			s, err := sweep.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Replicates*b.N)/b.Elapsed().Seconds(), "replicates/s")
		})
	}
}
