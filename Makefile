GO ?= go

.PHONY: verify build vet test smoke cover bench

# Tier-1 verification plus vet: what CI runs.
verify: build vet test smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast §7 headline check: the paper's numbers, nothing else.
smoke:
	$(GO) test -run 'TestHeadlines' ./internal/dist/

# Statement coverage of the probability substrate, enforcing the 90% floor.
cover:
	@$(GO) test -coverprofile=/tmp/dist.cover ./internal/dist/
	@$(GO) tool cover -func=/tmp/dist.cover | awk '/^total:/ { \
		pct = $$3 + 0; printf "internal/dist statement coverage: %s\n", $$3; \
		if (pct < 90) { print "FAIL: below the 90% floor"; exit 1 } }'

# Reproduction log: one benchmark per table/figure of the paper.
bench:
	$(GO) test -bench=. -benchtime=1x .
