GO ?= go

.PHONY: verify build vet test smoke lint cover bench bench-json bench-compare golden race sweep-smoke sweepd-smoke lsi-smoke

# Tier-1 verification plus vet and repolint: what CI runs.
verify: build vet lint test smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast §7 headline check: the paper's numbers, nothing else.
smoke:
	$(GO) test -run 'TestHeadlines' ./internal/dist/

# Repo-contract static analysis (stdlib-only, cmd/repolint): the
# determinism, registry, invalidation, hotpath, and sentinel-errors
# analyzers over every package. Nonzero exit on any finding.
lint:
	$(GO) run ./cmd/repolint

# Statement coverage of the probability substrate, enforcing the 90% floor.
cover:
	@$(GO) test -coverprofile=/tmp/dist.cover ./internal/dist/
	@$(GO) tool cover -func=/tmp/dist.cover | awk '/^total:/ { \
		pct = $$3 + 0; printf "internal/dist statement coverage: %s\n", $$3; \
		if (pct < 90) { print "FAIL: below the 90% floor"; exit 1 } }'

# Reproduction log: one benchmark per table/figure of the paper, plus
# the circuits-layer cold-vs-cached preparation pair (BenchmarkPrepared)
# and the sweep throughput matrix. CI runs this as its bench step.
bench:
	$(GO) test -bench=. -benchtime=1x .

# Persisted engine-matrix benchmark: runs the two engine suites and
# writes chips/s and fault-patterns/s per engine×circuit to
# BENCH_PR9.json (schema documented in cmd/benchjson). CI archives the
# file as a build artifact, so the BENCH trajectory is no longer
# ephemeral terminal scrollback.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkEngines|BenchmarkLotEngines' -benchtime 40x . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR9.json
	@echo "wrote BENCH_PR9.json"

# Soft regression gate over the persisted matrix: compares the fresh
# BENCH_PR9.json against the checked-in PR6 baseline and fails only on
# a >25% fault-patterns/s slide in the engines suite (lot-engines and
# smaller slips print as warnings — CI runners are noisy).
bench-compare:
	$(GO) run ./cmd/benchjson -in BENCH_PR9.json -baseline BENCH_PR6.json -fail-over 25

# Golden guard: the paper-number fixtures (sweep CSV, dist sample
# sequences) must stay byte-identical across engine ports. CI fails the
# build if an engine drifts them.
golden:
	$(GO) test -run 'Golden' ./internal/sweep/ ./internal/dist/

# Race-detect the whole module (-short skips the multi-second
# Monte-Carlo runs and the full-module lint sweep): the hand-picked
# package list this target used to carry kept silently aging as new
# concurrent layers appeared.
race:
	$(GO) test -race -short ./...

# Tiny end-to-end Monte-Carlo grid through the real CLI over a
# two-circuit campaign: seconds, not minutes, yet it exercises the
# workload registry, per-circuit ATPG + ramp (each prepared exactly
# once), the pool, and every format.
sweep-smoke:
	$(GO) run ./cmd/sweep -circuits mul4,cmp8 -random 32 -yields 0.2 -n0s 3 \
		-chips 80 -coverages 0.3,0.6 -replicates 4 -workers 2 -seed 7 -format table

# ISCAS-scale smoke: the embedded 1k-gate fixture end to end — sampled
# fault universe, budgeted ATPG with an outcome tally, and the on-disk
# Prepared store. The test half (skipped under -short, so `make race`
# stays fast) pins the zero-rebuild warm-store contract through the
# cache counters; the CLI half runs the same campaign cold then warm
# against $(PREPARED_DIR) and requires byte-identical CSV. CI caches
# the store directory, so later builds skip the cold ATPG entirely.
PREPARED_DIR ?= .prepared-store
lsi-smoke:
	$(GO) test -run TestLSIScaleStore ./internal/circuits/
	$(GO) run ./cmd/sweep -circuits lsi1k -random 48 -sample-faults 150 -backtrack-limit 50 \
		-yields 0.2 -n0s 3 -chips 60 -coverages 0.15,0.3 -replicates 2 -workers 2 -seed 7 \
		-prepared-dir $(PREPARED_DIR) -format csv > /tmp/lsi-cold.csv
	$(GO) run ./cmd/sweep -circuits lsi1k -random 48 -sample-faults 150 -backtrack-limit 50 \
		-yields 0.2 -n0s 3 -chips 60 -coverages 0.15,0.3 -replicates 2 -workers 7 -seed 7 \
		-prepared-dir $(PREPARED_DIR) -format csv > /tmp/lsi-warm.csv
	cmp /tmp/lsi-cold.csv /tmp/lsi-warm.csv
	@echo "lsi-smoke: cold and warm Prepared-store runs byte-identical"

# Daemon crash/resume smoke: build the real sweepd binary, start it,
# submit a two-circuit campaign, SIGKILL the process mid-run, restart it
# on the same checkpoint directory, resubmit, and diff the final CSV
# against an in-process run — byte-identical or the build fails.
sweepd-smoke:
	SWEEPD_E2E=1 $(GO) test -run TestE2ECrashResume -v ./cmd/sweepd/
