// fineline-shrink reproduces §8's prediction: migrating a design to
// finer design rules shrinks its area (yield rises, Eq. 3) while each
// physical defect hits more logic (n0 rises) — both effects lower the
// fault coverage required for a fixed shipped-quality target.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	// Base process: 2.659 defects per die (7% Poisson-equivalent
	// yield under Eq. 3 with λ=0.5 gives ~11%), n0 = 8, and a
	// 1-in-1000 quality target, swept over linear shrink factors.
	res, err := experiment.ShrinkStudy(
		2.659, // defects per die at scale 1.0
		0.5,   // Eq. 3 clustering parameter λ
		8,     // n0 at scale 1.0
		0.001, // target field reject rate
		[]float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	fmt.Printf("\nhalving the linear feature size: yield %.2f -> %.2f, n0 %.0f -> %.0f,\n",
		first.Yield, last.Yield, first.N0, last.N0)
	fmt.Printf("and the required coverage drops from %.3f to %.3f.\n",
		first.RequiredF, last.RequiredF)
}
