// diagnosis shows the fault-dictionary workflow that complements the
// paper's coverage analysis: the same fault simulator that grades a
// test set can pre-compute every fault's tester response, so a failing
// chip's datalog locates the defect — useful for the failure analysis
// that calibrates defect models in the first place.
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/logicsim"
)

func main() {
	c, err := circuits.Resolve("alu4")
	if err != nil {
		log.Fatal(err)
	}
	faults := fault.Reps(fault.CollapseEquivalence(c, fault.AllFaults(c)))
	patterns, err := atpg.HybridTests(c, 64, 9)
	if err != nil {
		log.Fatal(err)
	}
	dict, err := diagnose.Build(c, faults, patterns)
	if err != nil {
		log.Fatal(err)
	}
	classes, largest := dict.Resolution()
	fmt.Printf("DUT %s: %d faults, %d patterns\n", c.Name, len(faults), len(patterns))
	fmt.Printf("dictionary resolution: %d distinguishable classes (largest class %d)\n\n",
		classes, largest)

	// A chip comes back from the tester with fails. (Here we know the
	// truth: fault #17 was injected.)
	truth := faults[17]
	syn, err := dict.ObserveChip([]logicsim.Injection{
		{Gate: truth.Gate, Pin: truth.Pin, Stuck: truth.Stuck},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip first fails at pattern %d\n", syn.FirstFail())
	fmt.Printf("injected (hidden) fault: %s\n\n", truth.Name(c))

	fmt.Println("top diagnosis candidates:")
	for i, cand := range dict.Diagnose(syn, 5) {
		marker := ""
		if cand.Fault == truth {
			marker = "   <-- the actual defect"
		}
		fmt.Printf("  %d. %-28s distance %d%s\n", i+1, cand.Fault.Name(c), cand.Distance, marker)
	}
}
