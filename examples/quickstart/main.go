// Quickstart: the paper's core question answered in a few lines — how
// much fault coverage do my tests need for a target shipped quality?
package main

import (
	"fmt"
	"log"

	"repro/quality"
)

func main() {
	// An LSI chip: 7% yield, and a production-lot experiment said a
	// defective chip carries 8.8 faults on average (paper §7).
	m, err := quality.NewModel(0.07, 8.8)
	if err != nil {
		log.Fatal(err)
	}

	// What do we ship at 80% / 95% / 99% stuck-at coverage?
	for _, f := range []float64{0.80, 0.95, 0.99} {
		r := m.RejectRate(f)
		fmt.Printf("coverage %.0f%% -> field reject rate %.4f%% (%.0f DPM)\n",
			f*100, r*100, quality.DefectLevelDPM(r))
	}

	// And the inverse: coverage required for 1-in-1000 shipped rejects.
	f, err := m.RequiredCoverage(0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for 0.1%% reject rate: need %.1f%% coverage\n", f*100)

	// The pre-1981 answer (Wadsack's single-fault model) would have
	// demanded much more:
	paper, wadsack, savings, err := quality.CoverageSavings(m, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("this model %.1f%% vs Wadsack %.2f%% — %.1f points saved\n",
		paper*100, wadsack*100, savings*100)
}
