// test-grading drives the full substrate: synthesize a circuit, build
// an ordered production test program (bring-up + random + PODEM),
// fault-simulate its coverage ramp, and translate the achieved
// coverage into shipped quality for a given process — the complete
// workflow a test engineer runs before releasing a test program.
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/quality"
)

func main() {
	// The device under test: an 8-bit array multiplier (~3k faults).
	c, err := circuits.Resolve("mul8")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := c.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DUT %s: %s\n", c.Name, stats)

	// Fault universe: full list, then equivalence collapsing.
	u := fault.BuildUniverse(c)
	fmt.Printf("faults: %d total -> %d collapsed -> %d after dominance\n",
		len(u.All), len(u.Collapsed), len(u.Checkable))

	// Production test program.
	patterns, err := atpg.ProductionTests(c, 64, 64, 42)
	if err != nil {
		log.Fatal(err)
	}
	reps := fault.Reps(u.Collapsed)
	curve, res, err := faultsim.CoverageCurve(c, reps, patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test program: %d patterns, final coverage %.4f\n",
		len(patterns), res.Coverage())
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		i := int(frac*float64(len(curve))) - 1
		fmt.Printf("  after %3.0f%% of patterns: coverage %.4f\n", frac*100, curve[i].Coverage)
	}

	// Translate coverage into shipped quality on a 20%-yield process
	// where a defective die carries ~6 faults.
	m, err := quality.NewModel(0.20, 6)
	if err != nil {
		log.Fatal(err)
	}
	r := m.RejectRate(res.Coverage())
	fmt.Printf("\non a y=0.20, n0=6 process this test set ships %.0f DPM\n",
		quality.DefectLevelDPM(r))
	for _, target := range []float64{0.001, 0.0001} {
		f, err := m.RequiredCoverage(target)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MET"
		if res.Coverage() < f {
			verdict = "NOT met"
		}
		fmt.Printf("target %6.0f DPM needs coverage %.4f -> %s\n",
			quality.DefectLevelDPM(target), f, verdict)
	}
}
