// lsi-chip-study replays the paper's §7 case study end to end using
// the published Table 1 data: estimate n0 two ways, pick the coverage
// requirement for several quality targets, and compare against the
// Wadsack baseline that the paper argues is unachievably pessimistic.
package main

import (
	"fmt"
	"log"

	"repro/quality"
)

func main() {
	curve := quality.PaperTable1Curve()
	y := quality.PaperTable1Yield()
	fmt.Printf("Table 1: %d fallout points, yield %.2f\n\n", len(curve), y)

	// Method 1 (Fig. 5): least-squares fit against the P(f) family.
	fit, err := quality.FitN0(curve, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curve-fit n0 = %.2f (paper picks 8 from its integer family)\n", fit.N0)

	// Method 2 (Eq. 10): origin slope from the first table row.
	slope, err := quality.SlopeN0(curve[:1], y, 0.06)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slope n0     = %.2f (paper: 8.2/0.93 = 8.8)\n\n", slope.N0)

	// The paper proceeds with n0 = 8.
	m, err := quality.NewModel(y, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("required stuck-at coverage per quality target:")
	for _, target := range []float64{0.01, 0.005, 0.001} {
		f, err := m.RequiredCoverage(target)
		if err != nil {
			log.Fatal(err)
		}
		_, wadsack, _, err := quality.CoverageSavings(m, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  r = %-6g  this model %.1f%%   Wadsack %.2f%%\n",
			target, f*100, wadsack*100)
	}
	fmt.Println("\npaper's conclusion: ~80% for 1%, ~95% for 0.1% — not the 99%+ the")
	fmt.Println("single-fault model demands, which for LSI was 'almost unachievable'.")
}
