package quality_test

import (
	"math"
	"testing"

	"repro/quality"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// The §7 workflow through the public API only.
	curve := quality.PaperTable1Curve()
	y := quality.PaperTable1Yield()
	fit, err := quality.FitN0(curve, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.N0-8) > 1 {
		t.Errorf("fit n0 = %v", fit.N0)
	}
	slope, err := quality.SlopeN0(curve[:1], y, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope.N0-8.8) > 0.05 {
		t.Errorf("slope n0 = %v", slope.N0)
	}
	m, err := quality.NewModel(y, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.RequiredCoverage(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.80) > 0.02 {
		t.Errorf("required coverage %v", f)
	}
	paper, wadsack, savings, err := quality.CoverageSavings(m, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if savings <= 0 || paper >= wadsack {
		t.Errorf("savings %v paper %v wadsack %v", savings, paper, wadsack)
	}
}

func TestPublicQ0(t *testing.T) {
	exact := quality.Q0(5, 500, 1000, quality.EscapeExact)
	simple := quality.Q0(5, 500, 1000, quality.EscapeSimple)
	if exact > simple {
		t.Error("exact escape should not exceed simple approximation")
	}
	if math.Abs(simple-math.Pow(0.5, 5)) > 1e-12 {
		t.Errorf("simple q0 = %v", simple)
	}
}

func TestPublicModels(t *testing.T) {
	var models []quality.QualityModel
	m, err := quality.NewModel(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := quality.NewWadsack(0.07)
	if err != nil {
		t.Fatal(err)
	}
	g, err := quality.NewGriffin(0.07, 8)
	if err != nil {
		t.Fatal(err)
	}
	models = append(models, m, w, g)
	for i, qm := range models {
		if r := qm.RejectRate(0); math.Abs(r-0.93) > 1e-9 {
			t.Errorf("model %d r(0) = %v", i, r)
		}
	}
}

func TestPublicDPM(t *testing.T) {
	if quality.DefectLevelDPM(0.01) != 10000 {
		t.Error("DPM conversion")
	}
}

func TestPaperCurveIsACopy(t *testing.T) {
	a := quality.PaperTable1Curve()
	a[0].Fail = 0.999
	b := quality.PaperTable1Curve()
	if b[0].Fail == 0.999 {
		t.Error("PaperTable1Curve must return a copy")
	}
}

func TestPublicGoodnessOfFit(t *testing.T) {
	m, err := quality.NewModel(0.07, 8.66)
	if err != nil {
		t.Fatal(err)
	}
	curve := quality.PaperTable1Curve()
	gof, err := quality.GoodnessOfFit(m, curve.Coverages(), quality.PaperTable1Counts(),
		quality.PaperTable1Total(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if gof.DF < 1 || gof.PValue < 0 || gof.PValue > 1 {
		t.Errorf("gof = %+v", gof)
	}
}

func TestJointFit(t *testing.T) {
	m, err := quality.NewModel(0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	var curve quality.Curve
	for _, f := range []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1} {
		curve = append(curve, quality.FalloutPoint{F: f, Fail: m.Fallout(f)})
	}
	n0, y, err := quality.FitN0AndYield(curve)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-0.15) > 0.02 || math.Abs(n0-7) > 0.3 {
		t.Errorf("joint fit: n0 %v y %v", n0, y)
	}
}
