package quality_test

import (
	"fmt"
	"log"

	"repro/quality"
)

// Example reproduces the paper's §7 headline in four lines.
func Example() {
	m, err := quality.NewModel(0.07, 8) // yield 7%, n0 = 8
	if err != nil {
		log.Fatal(err)
	}
	f, err := m.RequiredCoverage(0.01) // 1% field reject rate
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("required coverage: %.0f%%\n", f*100)
	// Output: required coverage: 80%
}

// ExampleFitN0 characterizes n0 from the paper's own Table 1 data.
func ExampleFitN0() {
	fit, err := quality.FitN0(quality.PaperTable1Curve(), quality.PaperTable1Yield())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n0 ≈ %.0f\n", fit.N0)
	// Output: n0 ≈ 9
}

// ExampleSlopeN0 applies Eq. 10 to the first Table 1 row, reproducing
// the paper's 8.8.
func ExampleSlopeN0() {
	slope, err := quality.SlopeN0(quality.PaperTable1Curve()[:1], 0.07, 0.06)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n0 = %.1f\n", slope.N0)
	// Output: n0 = 8.8
}

// ExampleModel_RejectRate shows shipped quality at two coverages.
func ExampleModel_RejectRate() {
	m, err := quality.NewModel(0.07, 8.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f DPM at 80%%, %.0f DPM at 95%%\n",
		quality.DefectLevelDPM(m.RejectRate(0.80)),
		quality.DefectLevelDPM(m.RejectRate(0.95)))
	// Output: 5154 DPM at 80%, 402 DPM at 95%
}

// ExampleCoverageSavings quantifies the gap to the Wadsack baseline.
func ExampleCoverageSavings() {
	m, err := quality.NewModel(0.07, 8)
	if err != nil {
		log.Fatal(err)
	}
	paper, wadsack, _, err := quality.CoverageSavings(m, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("this model %.1f%%, Wadsack %.1f%%\n", paper*100, wadsack*100)
	// Output: this model 94.4%, Wadsack 99.9%
}
