// Package quality is the public API of this repository: the
// Agrawal-Seth-Agrawal (DAC 1981) model relating single-stuck-at fault
// coverage to shipped-product quality, together with the estimation
// procedure that characterizes the model from production test data.
//
// Quick start:
//
//	m, _ := quality.NewModel(0.07, 8.8)      // yield, n0
//	r := m.RejectRate(0.95)                  // defect level at 95% coverage
//	f, _ := m.RequiredCoverage(0.001)        // coverage for 1-in-1000
//
// To characterize n0 from a lot experiment (§5 of the paper), build a
// fallout curve of (cumulative coverage, cumulative fraction failed)
// points and fit it:
//
//	res, _ := quality.FitN0(curve, 0.07)
//
// The heavy substrates (netlist, logic/fault simulation, ATPG, the
// wafer/ATE simulation) live under internal/; the runnable experiment
// drivers are exposed through cmd/repro and the examples.
package quality

import (
	"repro/internal/core"
	"repro/internal/estimate"
)

// Model is the two-parameter quality model (Eq. 1-9 of the paper):
// Y is the chip yield and N0 the mean number of faults on a defective
// chip.
type Model = core.Model

// Wadsack is the single-fault baseline model of Wadsack (BSTJ 1978),
// the paper's reference [5]: r = (1-y)(1-f).
type Wadsack = core.Wadsack

// GriffinMixed is Griffin's mixed-Poisson comparator (ICCC 1980), the
// paper's reference [15].
type GriffinMixed = core.GriffinMixed

// QualityModel is the interface shared by all three models.
type QualityModel = core.QualityModel

// EscapeApprox selects the q0(n) approximation tier (Appendix A.1-A.3).
type EscapeApprox = core.EscapeApprox

// Escape approximation tiers.
const (
	EscapeExact     = core.EscapeExact
	EscapeCorrected = core.EscapeCorrected
	EscapeSimple    = core.EscapeSimple
)

// FalloutPoint is one lot-test observation: cumulative coverage F,
// cumulative fraction of chips failed Fail.
type FalloutPoint = estimate.FalloutPoint

// Curve is an ordered fallout curve.
type Curve = estimate.Curve

// Result reports an n0 estimate.
type Result = estimate.Result

// NewModel validates and constructs a Model: yield in (0,1), n0 >= 1.
func NewModel(y, n0 float64) (Model, error) { return core.New(y, n0) }

// NewWadsack constructs the baseline model.
func NewWadsack(y float64) (Wadsack, error) { return core.NewWadsack(y) }

// NewGriffin constructs the mixed-Poisson comparator.
func NewGriffin(y, theta float64) (GriffinMixed, error) { return core.NewGriffinMixed(y, theta) }

// Q0 returns the probability that a chip with n of total faults escapes
// a test covering m of them, under the chosen approximation.
func Q0(n, m, total int, approx EscapeApprox) float64 { return core.Q0(n, m, total, approx) }

// FitN0 estimates n0 by least-squares fit of the fallout curve
// (the Fig. 5 family-of-curves method). Yield must be known.
func FitN0(c Curve, yield float64) (Result, error) { return estimate.FitN0(c, yield) }

// SlopeN0 estimates n0 from the origin slope (Eq. 10) using the
// fallout points with coverage at most maxF. Pass yield = 0 when the
// yield is unknown; the estimate is then pessimistic (safe).
func SlopeN0(c Curve, yield, maxF float64) (Result, error) {
	return estimate.SlopeN0(c, yield, maxF)
}

// FitN0AndYield jointly estimates (n0, yield) from a fallout curve that
// extends far enough to expose the 1-y plateau.
func FitN0AndYield(c Curve) (n0, yield float64, err error) { return estimate.FitN0AndYield(c) }

// DefectLevelDPM converts a reject rate to defects-per-million.
func DefectLevelDPM(r float64) float64 { return core.DefectLevelDPM(r) }

// GoF is a chi-square goodness-of-fit report.
type GoF = estimate.GoF

// GoodnessOfFit tests a fitted model against binned lot counts:
// cumCounts[i] chips had first-failed by coverages[i], out of total.
// fittedParams is the number of parameters estimated from this data.
func GoodnessOfFit(m Model, coverages []float64, cumCounts []int, total, fittedParams int) (GoF, error) {
	return estimate.GoodnessOfFit(m, coverages, cumCounts, total, fittedParams)
}

// PaperTable1Counts returns the cumulative failed-chip counts of the
// paper's Table 1 (matching PaperTable1Curve's checkpoints).
func PaperTable1Counts() []int {
	return append([]int(nil), estimate.PaperTable1.Counts...)
}

// PaperTable1Total returns the lot size of the paper's experiment.
func PaperTable1Total() int { return estimate.PaperTable1.TotalChips }

// CoverageSavings compares the paper's model against Wadsack at the
// same yield and target reject rate.
func CoverageSavings(m Model, r float64) (paper, wadsack, savings float64, err error) {
	return core.CoverageSavings(m, r)
}

// PaperTable1Curve returns the paper's published Table 1 fallout data
// (277 chips, yield ≈ 0.07) for experimentation.
func PaperTable1Curve() Curve {
	return append(Curve(nil), estimate.PaperTable1.Curve...)
}

// PaperTable1Yield returns the yield of the paper's example chip.
func PaperTable1Yield() float64 { return estimate.PaperTable1.Yield }
