package main

import "testing"

func TestParseLine(t *testing.T) {
	row, ok := parseLine("BenchmarkEngines/pf256/mul8-4 \t 30\t   1885999 ns/op\t         5.547 ns/fault-pattern")
	if !ok {
		t.Fatal("engines line rejected")
	}
	if row.Suite != "engines" || row.Engine != "pf256" || row.Circuit != "mul8" {
		t.Errorf("row = %+v", row)
	}
	if row.Iterations != 30 || row.NsPerOp != 1885999 || row.NsPerFaultPattern != 5.547 {
		t.Errorf("metrics = %+v", row)
	}
	if want := 1e9 / 5.547; row.FaultPatternsPerSec != want {
		t.Errorf("fault-patterns/s = %g, want %g", row.FaultPatternsPerSec, want)
	}

	// Engine names containing '-' must survive the -P trim.
	row, ok = parseLine("BenchmarkLotEngines/chip-parallel/cmp16-8 \t 5\t 517391 ns/op\t 3865855 chips/s")
	if !ok || row.Engine != "chip-parallel" || row.Circuit != "cmp16" {
		t.Errorf("lot row = %+v ok=%v", row, ok)
	}
	if row.Suite != "lot-engines" || row.ChipsPerSec != 3865855 {
		t.Errorf("lot metrics = %+v", row)
	}

	for _, line := range []string{
		"goos: linux",
		"=== reproduction headlines ===",
		"BenchmarkFig1-4 \t 1 \t 123 ns/op",                 // wrong suite
		"BenchmarkEngines/pf256/mul8-4 \t x \t 123 ns/op",   // bad iteration count
		"BenchmarkEngines/pf256/mul8-4 \t 30 \t junk ns/op", // bad value
		"PASS",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line accepted: %q", line)
		}
	}
}
