package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	row, ok := parseLine("BenchmarkEngines/pf256/mul8-4 \t 30\t   1885999 ns/op\t 4064 gates\t 9216 faults\t 256 patterns\t         5.547 ns/fault-pattern")
	if !ok {
		t.Fatal("engines line rejected")
	}
	if row.Suite != "engines" || row.Engine != "pf256" || row.Circuit != "mul8" {
		t.Errorf("row = %+v", row)
	}
	if row.Iterations != 30 || row.NsPerOp != 1885999 || row.NsPerFaultPattern != 5.547 {
		t.Errorf("metrics = %+v", row)
	}
	if want := 1e9 / 5.547; row.FaultPatternsPerSec != want {
		t.Errorf("fault-patterns/s = %g, want %g", row.FaultPatternsPerSec, want)
	}
	if row.Gates != 4064 || row.Faults != 9216 || row.Patterns != 256 {
		t.Errorf("scale metadata = %+v", row)
	}

	// Engine names containing '-' must survive the -P trim.
	row, ok = parseLine("BenchmarkLotEngines/chip-parallel/cmp16-8 \t 5\t 517391 ns/op\t 3865855 chips/s")
	if !ok || row.Engine != "chip-parallel" || row.Circuit != "cmp16" {
		t.Errorf("lot row = %+v ok=%v", row, ok)
	}
	if row.Suite != "lot-engines" || row.ChipsPerSec != 3865855 {
		t.Errorf("lot metrics = %+v", row)
	}

	for _, line := range []string{
		"goos: linux",
		"=== reproduction headlines ===",
		"BenchmarkFig1-4 \t 1 \t 123 ns/op",                 // wrong suite
		"BenchmarkEngines/pf256/mul8-4 \t x \t 123 ns/op",   // bad iteration count
		"BenchmarkEngines/pf256/mul8-4 \t 30 \t junk ns/op", // bad value
		"PASS",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line accepted: %q", line)
		}
	}
}

func report(rows ...Row) Report { return Report{Schema: "bench/v1", Rows: rows} }

func engines(engine, circuit string, fps float64) Row {
	return Row{Suite: "engines", Engine: engine, Circuit: circuit, FaultPatternsPerSec: fps}
}

func TestCompareBudget(t *testing.T) {
	base := report(
		engines("ppsfp", "mul8", 1000),
		engines("serial", "mul8", 500),
		Row{Suite: "lot-engines", Engine: "chip-parallel", Circuit: "cmp16", ChipsPerSec: 4e6},
		engines("retired", "mul8", 100),
	)
	cur := report(
		engines("ppsfp", "mul8", 1500), // +50%: fine
		engines("serial", "mul8", 300), // -40%: over a 25% budget
		Row{Suite: "lot-engines", Engine: "chip-parallel", Circuit: "cmp16", ChipsPerSec: 1e6}, // -75%, but not engines suite
		engines("fresh", "mul8", 100), // new row, never fails
	)
	var buf bytes.Buffer
	worst, err := compare(&buf, base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if worst < 39.9 || worst > 40.1 {
		t.Errorf("worst regression = %g%%, want ~40%%", worst)
	}
	out := buf.String()
	for _, want := range []string{"+50.0%", "-40.0%", "over budget", "new", "gone", "-75.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The lot-engines slide must not be marked over budget.
	if strings.Count(out, "over budget") != 1 {
		t.Errorf("want exactly one over-budget mark:\n%s", out)
	}

	// Within budget (or budget disabled), worst stays zero.
	if worst, err := compare(io.Discard, base, cur, 50); err != nil || worst != 0 {
		t.Errorf("50%% budget: worst=%g err=%v, want 0", worst, err)
	}
	if worst, err := compare(io.Discard, base, cur, 0); err != nil || worst != 0 {
		t.Errorf("disabled budget: worst=%g err=%v, want 0", worst, err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := report(engines("ppsfp", "mul8", 1e8), Row{Suite: "lot-engines", Engine: "pf256", Circuit: "dec6", ChipsPerSec: 2e6})
	if err := writeReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"bench/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(bad); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := readReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
